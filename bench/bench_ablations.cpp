// Ablation studies for the design knobs DESIGN.md calls out:
//   (a) the eq. (2) governor epsilon — "it can be set to zero, but setting
//       it to a non-zero value will keep the protocol from running too
//       fast" (paper §3.5): throughput vs traffic trade-off;
//   (b) adaptive vs fixed Delta_bnd under a mis-estimated network delay
//       (paper §1: adapting to an unknown communication-delay bound);
//   (c) gossip push threshold — push-everything vs advertise-and-pull as a
//       function of block size (the ICC1 sub-layer's core decision);
//   (d) catch-up-package interval — rejoin delay of a recovering replica.
#include <cstdio>

#include "harness/cluster.hpp"

namespace {
using namespace icc;

// --- (a) epsilon governor ---------------------------------------------------

void ablation_epsilon() {
  std::printf("(a) governor epsilon sweep (ICC0, n = 7, delta = 10 ms fixed)\n");
  std::printf("    %10s | %10s | %14s\n", "epsilon", "blocks/s", "kB/s per node");
  for (int eps_ms : {0, 50, 200, 500, 1000}) {
    harness::ClusterOptions o;
    o.n = 7;
    o.t = 2;
    o.seed = 91;
    o.delta_bnd = sim::msec(300);
    o.epsilon = sim::msec(eps_ms);
    o.payload_size = 2048;
    o.record_payloads = false;
    o.prune_lag = 8;
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(10));
    };
    harness::Cluster c(o);
    c.run_for(sim::seconds(20));
    double bps = c.blocks_per_second(sim::seconds(20));
    double kbs = static_cast<double>(c.sim().network().metrics().bytes_sent[0]) / 20.0 / 1024;
    std::printf("    %7d ms | %10.2f | %14.1f\n", eps_ms, bps, kbs);
  }
  std::printf("    epsilon throttles the block rate (reciprocal throughput\n"
              "    2*delta + epsilon) and with it the per-node signalling traffic.\n\n");
}

// --- (b) adaptive delta ------------------------------------------------------

void ablation_adaptive() {
  std::printf("(b) Delta_bnd estimation (ICC0, n = 7, real delta = 25 ms)\n");
  std::printf("    %-22s | %10s | %12s | %12s\n", "configuration", "rounds",
              "finalized/rd", "local Delta");
  auto run = [](sim::Duration delta_bnd, bool adaptive, const char* label) {
    harness::ClusterOptions o;
    o.n = 7;
    o.t = 2;
    o.seed = 92;
    o.delta_bnd = delta_bnd;
    o.prune_lag = 8;
    o.record_payloads = false;
    o.adaptive.enabled = adaptive;
    o.adaptive.floor = sim::msec(1);
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(25));
    };
    harness::Cluster c(o);
    c.run_for(sim::seconds(30));
    double rounds = static_cast<double>(c.party(0)->current_round());
    double ratio = rounds > 0 ? c.party(0)->committed().size() / rounds : 0;
    std::printf("    %-22s | %10.0f | %12.2f | %9.0f ms\n", label, rounds, ratio,
                sim::to_ms(c.party(0)->delta_bound()));
  };
  run(sim::msec(2), false, "fixed, 12x too small");
  run(sim::msec(2), true, "adaptive from 2 ms");
  run(sim::msec(300), false, "fixed, well chosen");
  run(sim::msec(2000), false, "fixed, 80x too large");
  run(sim::msec(2000), true, "adaptive from 2 s");
  std::printf("    An underestimated fixed bound costs finalizations (rounds end\n"
              "    with multiple endorsed blocks); adaptation recovers it. An\n"
              "    overestimated bound is harmless when leaders are honest\n"
              "    (optimistic responsiveness) — adaptation merely tightens the\n"
              "    corrupt-leader penalty.\n\n");
}

// --- (c) gossip push threshold ----------------------------------------------

void ablation_gossip() {
  std::printf("(c) block dissemination strategy (n = 10, 128 kB blocks)\n");
  std::printf("    %-26s | %16s | %12s\n", "mode", "bottleneck kB/rd", "latency ms");
  auto run = [](harness::Protocol proto, size_t push_threshold, const char* label) {
    harness::ClusterOptions o;
    o.n = 10;
    o.t = 3;
    o.seed = 93;
    o.protocol = proto;
    o.delta_bnd = sim::msec(300);
    o.payload_size = 128 * 1024;
    o.record_payloads = false;
    o.prune_lag = 4;
    o.max_round = 12;
    o.gossip.push_threshold = push_threshold;
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(15));
    };
    harness::Cluster c(o);
    c.run_for(sim::seconds(30));
    size_t rounds = c.party(0)->current_round();
    double bottleneck =
        static_cast<double>(c.sim().network().metrics().max_bytes_sent()) / rounds / 1024;
    std::printf("    %-26s | %16.0f | %12.1f\n", label, bottleneck, c.avg_latency_ms());
  };
  run(harness::Protocol::kIcc0, 0, "ICC0: blind echo-push");
  run(harness::Protocol::kIcc1, SIZE_MAX, "ICC1: dedup push");
  run(harness::Protocol::kIcc1, 4096, "ICC1: advertise + pull");
  std::printf("    Content-addressed dedup alone removes the echo storm (each party\n"
              "    ships a block at most once); advert/pull additionally lets slow or\n"
              "    selective receivers fetch from *any* holder — same bottleneck here\n"
              "    on a homogeneous network, two extra hops of latency, but unlike\n"
              "    dedup-push it keeps the leader's upload bounded when receivers\n"
              "    re-request (see F-RBC for the cross-protocol comparison).\n\n");
}

// --- (d) CUP interval ---------------------------------------------------------

class PartitionOne final : public sim::DelayModel {
 public:
  PartitionOne(sim::PartyIndex victim, sim::Time heal_at, sim::Duration base)
      : victim_(victim), heal_at_(heal_at), base_(base) {}
  sim::Duration delay(sim::PartyIndex from, sim::PartyIndex to, sim::Time now, size_t,
                      Xoshiro256&) override {
    if ((from == victim_ || to == victim_) && now < heal_at_)
      return sim::seconds(100000);  // dropped
    return base_;
  }

 private:
  sim::PartyIndex victim_;
  sim::Time heal_at_;
  sim::Duration base_;
};

void ablation_cup() {
  std::printf("(d) catch-up packages: rejoin latency of a replica that lost 20 s of\n"
              "    history (n = 4, pruned pools, partition-era traffic dropped)\n");
  std::printf("    %-14s | %-26s\n", "CUPs", "time to reach the tip");
  for (types::Round interval : {10u, 0u}) {
    harness::ClusterOptions o;
    o.n = 4;
    o.t = 1;
    o.seed = 94;
    o.delta_bnd = sim::msec(100);
    o.cup_interval = interval;
    o.lag_threshold = 8;
    o.prune_lag = 4;
    o.delay_model = [](size_t, uint64_t) -> std::unique_ptr<sim::DelayModel> {
      return std::make_unique<PartitionOne>(3, sim::seconds(20), sim::msec(10));
    };
    harness::Cluster c(o);
    c.run_until(sim::seconds(20));  // partition heals here
    sim::Time rejoined = -1;
    for (sim::Time t = sim::seconds(20); t <= sim::seconds(40); t += sim::msec(100)) {
      c.run_until(t);
      long behind = static_cast<long>(c.party(0)->last_finalized_round()) -
                    static_cast<long>(c.party(3)->last_finalized_round());
      if (behind <= 5) {
        rejoined = t - sim::seconds(20);
        break;
      }
    }
    if (rejoined >= 0) {
      std::printf("    %-14s | %.1f s\n", interval ? "every 10 rds" : "disabled",
                  sim::to_sec(rejoined));
    } else {
      std::printf("    %-14s | never (stuck %ld rounds behind)\n",
                  interval ? "every 10 rds" : "disabled",
                  static_cast<long>(c.party(0)->last_finalized_round()) -
                      static_cast<long>(c.party(3)->last_finalized_round()));
    }
  }
  std::printf("    Without CUPs a rejoining replica can never validate blocks whose\n"
              "    ancestors were pruned everywhere; with them it is back at the tip\n"
              "    in seconds (request -> threshold-signed package -> live chase).\n");
}

}  // namespace

int main() {
  std::printf("Ablation studies (design choices; see DESIGN.md)\n"
              "=================================================\n\n");
  ablation_epsilon();
  ablation_adaptive();
  ablation_gossip();
  ablation_cup();
  return 0;
}
