// F-CRY: microbenchmarks of every cryptographic and coding primitive the
// protocols rely on (google-benchmark). Establishes that the from-scratch
// substrate is fast enough for the simulation workloads and documents the
// cost hierarchy (hashing << signatures << threshold-beacon operations).
#include <benchmark/benchmark.h>

#include "codec/merkle.hpp"
#include "codec/reed_solomon.hpp"
#include "crypto/beacon.hpp"
#include "crypto/multisig.hpp"
#include "crypto/provider.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "support/rng.hpp"

namespace {

using namespace icc;
using namespace icc::crypto;

void BM_Sha256(benchmark::State& state) {
  Xoshiro256 rng(1);
  Bytes data = rng.bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(Sha256::hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(1024 * 1024);

void BM_Sha512(benchmark::State& state) {
  Xoshiro256 rng(1);
  Bytes data = rng.bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(Sha512::hash(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024 * 1024);

void BM_Ed25519Sign(benchmark::State& state) {
  Xoshiro256 rng(2);
  Bytes seed = rng.bytes(32);
  auto kp = ed25519_keypair(seed.data());
  Bytes msg = rng.bytes(256);
  for (auto _ : state) benchmark::DoNotOptimize(ed25519_sign(kp, msg));
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  Xoshiro256 rng(3);
  Bytes seed = rng.bytes(32);
  auto kp = ed25519_keypair(seed.data());
  Bytes msg = rng.bytes(256);
  auto sig = ed25519_sign(kp, msg);
  for (auto _ : state)
    benchmark::DoNotOptimize(ed25519_verify(kp.public_key.data(), msg, sig.data()));
}
BENCHMARK(BM_Ed25519Verify);

void BM_PointMulBase(benchmark::State& state) {
  Xoshiro256 rng(4);
  Sc25519 k = random_scalar(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Point::mul_base(k));
}
BENCHMARK(BM_PointMulBase);

void BM_PointMulArbitrary(benchmark::State& state) {
  Xoshiro256 rng(5);
  Sc25519 k = random_scalar(rng);
  Point p = Point::mul_base(random_scalar(rng));
  for (auto _ : state) benchmark::DoNotOptimize(p.mul(k));
}
BENCHMARK(BM_PointMulArbitrary);

// --- Kernel comparison (F-KERN): each optimized kernel vs its reference. ---

void BM_PointMulNaive(benchmark::State& state) {
  Xoshiro256 rng(20);
  Sc25519 k = random_scalar(rng);
  Point p = Point::mul_base(random_scalar(rng));
  for (auto _ : state) benchmark::DoNotOptimize(p.mul_naive(k));
}
BENCHMARK(BM_PointMulNaive);

void BM_PointMulWNAF(benchmark::State& state) {
  Xoshiro256 rng(21);
  Sc25519 k = random_scalar(rng);
  Point p = Point::mul_base(random_scalar(rng));
  for (auto _ : state) benchmark::DoNotOptimize(p.mul(k));
}
BENCHMARK(BM_PointMulWNAF);

void BM_PointMulConstTime(benchmark::State& state) {
  Xoshiro256 rng(22);
  Sc25519 k = random_scalar(rng);
  Point p = Point::mul_base(random_scalar(rng));
  for (auto _ : state) benchmark::DoNotOptimize(p.mul_ct(k));
}
BENCHMARK(BM_PointMulConstTime);

void BM_MulBaseLadder(benchmark::State& state) {
  Xoshiro256 rng(23);
  Sc25519 k = random_scalar(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Point::mul_base_ladder(k));
}
BENCHMARK(BM_MulBaseLadder);

void BM_MulBaseComb(benchmark::State& state) {
  Xoshiro256 rng(24);
  Sc25519 k = random_scalar(rng);
  for (auto _ : state) benchmark::DoNotOptimize(Point::mul_base(k));
}
BENCHMARK(BM_MulBaseComb);

void BM_MulDoubleBase(benchmark::State& state) {
  Xoshiro256 rng(25);
  Sc25519 s = random_scalar(rng), k = random_scalar(rng);
  Point a = Point::mul_base(random_scalar(rng));
  for (auto _ : state) benchmark::DoNotOptimize(Point::mul_double_base(s, k, a));
}
BENCHMARK(BM_MulDoubleBase);

void BM_VerifyBatch(benchmark::State& state) {
  Xoshiro256 rng(26);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Ed25519KeyPair> kps;
  std::vector<Bytes> msgs;
  std::vector<std::array<uint8_t, 64>> sigs;
  for (size_t i = 0; i < n; ++i) {
    Bytes s = rng.bytes(32);
    kps.push_back(ed25519_keypair(s.data()));
    msgs.push_back(rng.bytes(64));
    sigs.push_back(ed25519_sign(kps.back(), msgs.back()));
  }
  std::vector<Ed25519BatchItem> items;
  for (size_t i = 0; i < n; ++i)
    items.push_back({BytesView(kps[i].public_key.data(), 32), BytesView(msgs[i]),
                     BytesView(sigs[i].data(), 64)});
  for (auto _ : state) benchmark::DoNotOptimize(ed25519_verify_batch(items));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_VerifyBatch)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_HashToPoint(benchmark::State& state) {
  Xoshiro256 rng(6);
  Bytes msg = rng.bytes(48);
  uint32_t i = 0;
  for (auto _ : state) {
    msg[0] = static_cast<uint8_t>(i++);
    benchmark::DoNotOptimize(hash_to_point("bench", msg));
  }
}
BENCHMARK(BM_HashToPoint);

void BM_BeaconSignShare(benchmark::State& state) {
  Xoshiro256 rng(7);
  auto keys = beacon_keygen(13, 4, rng);
  Bytes msg = rng.bytes(32);
  for (auto _ : state)
    benchmark::DoNotOptimize(beacon_sign_share(msg, 0, keys.secret_shares[0], keys.pub));
}
BENCHMARK(BM_BeaconSignShare);

void BM_BeaconVerifyShare(benchmark::State& state) {
  Xoshiro256 rng(8);
  auto keys = beacon_keygen(13, 4, rng);
  Bytes msg = rng.bytes(32);
  auto share = beacon_sign_share(msg, 0, keys.secret_shares[0], keys.pub);
  for (auto _ : state) benchmark::DoNotOptimize(beacon_verify_share(msg, share, keys.pub));
}
BENCHMARK(BM_BeaconVerifyShare);

void BM_BeaconCombine(benchmark::State& state) {
  Xoshiro256 rng(9);
  size_t n = static_cast<size_t>(state.range(0));
  size_t t = (n - 1) / 3;
  auto keys = beacon_keygen(n, t, rng);
  Bytes msg = rng.bytes(32);
  std::vector<BeaconShare> shares;
  for (size_t i = 0; i <= t; ++i)
    shares.push_back(beacon_sign_share(msg, static_cast<uint32_t>(i), keys.secret_shares[i],
                                       keys.pub));
  for (auto _ : state) benchmark::DoNotOptimize(beacon_combine(shares, keys.pub));
}
BENCHMARK(BM_BeaconCombine)->Arg(4)->Arg(13)->Arg(40);

void BM_MultisigVerify(benchmark::State& state) {
  Xoshiro256 rng(10);
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Ed25519KeyPair> kps;
  std::vector<std::array<uint8_t, 32>> pks;
  for (size_t i = 0; i < n; ++i) {
    Bytes s = rng.bytes(32);
    kps.push_back(ed25519_keypair(s.data()));
    pks.push_back(kps.back().public_key);
  }
  Bytes msg = rng.bytes(40);
  std::vector<MultiSigShare> shares;
  for (size_t i = 0; i < n; ++i)
    shares.push_back({static_cast<uint32_t>(i), ed25519_sign(kps[i], msg)});
  size_t h = n - (n - 1) / 3;
  auto ms = multisig_combine(shares, h, n);
  for (auto _ : state) benchmark::DoNotOptimize(multisig_verify(*ms, pks, msg, h));
}
BENCHMARK(BM_MultisigVerify)->Arg(13)->Arg(40);

void BM_FastProviderRoundTrip(benchmark::State& state) {
  auto p = make_fast_provider(40, 13, 1);
  Bytes msg = Bytes(40, 7);
  for (auto _ : state) {
    Bytes sig = p->sign(0, msg);
    benchmark::DoNotOptimize(p->verify(0, msg, sig));
  }
}
BENCHMARK(BM_FastProviderRoundTrip);

void BM_ReedSolomonEncode(benchmark::State& state) {
  Xoshiro256 rng(11);
  Bytes data = rng.bytes(static_cast<size_t>(state.range(0)));
  codec::ReedSolomon rs(14, 40);
  for (auto _ : state) benchmark::DoNotOptimize(rs.encode(data));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReedSolomonEncode)->Arg(128 * 1024)->Arg(1024 * 1024);

void BM_ReedSolomonDecode(benchmark::State& state) {
  Xoshiro256 rng(12);
  Bytes data = rng.bytes(static_cast<size_t>(state.range(0)));
  codec::ReedSolomon rs(14, 40);
  auto frags = rs.encode(data);
  // Worst case: all parity fragments.
  std::vector<codec::Fragment> subset(frags.begin() + 26, frags.end());
  for (auto _ : state) benchmark::DoNotOptimize(rs.decode(subset, data.size()));
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReedSolomonDecode)->Arg(128 * 1024)->Arg(1024 * 1024);

void BM_MerkleBuild(benchmark::State& state) {
  Xoshiro256 rng(13);
  std::vector<Bytes> leaves;
  for (int i = 0; i < 40; ++i) leaves.push_back(rng.bytes(32 * 1024));
  for (auto _ : state) benchmark::DoNotOptimize(codec::MerkleTree(leaves).root());
}
BENCHMARK(BM_MerkleBuild);

void BM_MerkleVerify(benchmark::State& state) {
  Xoshiro256 rng(14);
  std::vector<Bytes> leaves;
  for (int i = 0; i < 40; ++i) leaves.push_back(rng.bytes(1024));
  codec::MerkleTree tree(leaves);
  auto proof = tree.prove(17);
  for (auto _ : state)
    benchmark::DoNotOptimize(codec::MerkleTree::verify(tree.root(), 40, leaves[17], proof));
}
BENCHMARK(BM_MerkleVerify);

}  // namespace

BENCHMARK_MAIN();
