// F-INTERN: cluster-shared artifact interning (DESIGN.md §7).
//
// In a committee of n every broadcast artifact is decoded n times and its
// signature checked n times — once per receiving party — even though both
// results are pure functions of the bytes. The intern store collapses that
// cluster-wide redundancy to ~1 parse and ~1 real signature check per
// distinct artifact, while every per-party (logical) counter, commit and
// journal byte stays identical (tests/pipeline/intern_test.cpp).
//
// This bench sweeps n with the real Ed25519/DVRF provider and reports, with
// interning on vs off: real verifications per committed block, parses per
// delivered artifact and wall-clock throughput. Counters are exact because
// the run is pinned at 1 worker thread (the verdict-memo split is benignly
// racy under a pool; see src/pipeline/intern.hpp).
//
// `--json PATH` writes the icc-bench/v1 baseline (virtual-time + counter
// values only — machine-independent, gated by ci/bench_compare.py).
// `--corrupt-smoke` instead runs a fast-crypto cluster with an equivocating
// leader and a crashed party and exits non-zero unless the intern-on run
// commits the exact (round, hash) sequence of the intern-off run.
// `--runtime` attaches the wall-clock runtime profiler (obs.runtime) to
// every leg and prints a per-leg utilization / parse / verify line next to
// blk/s — NON-deterministic, informational only, never part of the JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "harness/cluster.hpp"
#include "support/log.hpp"

namespace {

using namespace icc;

bool g_runtime = false;

struct Leg {
  size_t blocks = 0;
  uint64_t logical_vfy = 0;  ///< per-party provider verifications (summed)
  uint64_t real_vfy = 0;     ///< crypto checks that actually ran cluster-wide
  uint64_t parses = 0;       ///< parse_message executions cluster-wide
  uint64_t decoded = 0;      ///< artifacts delivered past dedup (summed)
  double wall_s = 0;
  std::string runtime_line;  ///< --runtime: preformatted physical summary
};

Leg run_leg(size_t n, bool intern, sim::Duration sim_time) {
  harness::ClusterOptions o;
  o.n = n;
  o.t = (n - 1) / 3;
  o.seed = 42;
  o.crypto = harness::CryptoKind::kReal;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 512;
  o.record_payloads = false;
  o.prune_lag = 8;
  o.threads = 1;  // exact counters (see header comment)
  o.intern = intern;
  // --runtime: observation-only wall-clock profiling; the exact counters
  // above are unaffected (probes never mutate — tests/obs/runtime_test).
  o.obs.enabled = g_runtime;
  o.obs.runtime = g_runtime;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };

  timespec t0{}, t1{};
  clock_gettime(CLOCK_MONOTONIC, &t0);
  harness::Cluster c(o);
  c.run_for(sim_time);
  clock_gettime(CLOCK_MONOTONIC, &t1);

  Leg l;
  if (g_runtime) {
    const obs::RuntimeReport rep = c.runtime_report();
    const obs::RuntimeAnalysis a = obs::analyze_runtime(rep);
    int64_t parse_ns = 0, verify_ns = 0;
    uint64_t parse_spans = 0, verify_spans = 0;
    for (const auto& w : rep.workers) {
      const auto& p = w.tasks[static_cast<size_t>(obs::TaskKind::kInternParse)];
      const auto& v = w.tasks[static_cast<size_t>(obs::TaskKind::kVerifySlice)];
      parse_ns += p.exclusive_ns;
      parse_spans += p.count;
      verify_ns += v.exclusive_ns;
      verify_spans += v.count;
    }
    char buf[224];
    std::snprintf(buf, sizeof buf,
                  "       `- runtime (intern %-3s): util %5.1f %% (%s basis) | "
                  "parse %8.1f ms / %6llu spans | verify %8.1f ms / %6llu spans "
                  "| rss %lld kB",
                  intern ? "on" : "off", a.utilization * 100.0,
                  a.cpu_basis ? "cpu" : "wall",
                  static_cast<double>(parse_ns) / 1e6,
                  static_cast<unsigned long long>(parse_spans),
                  static_cast<double>(verify_ns) / 1e6,
                  static_cast<unsigned long long>(verify_spans),
                  static_cast<long long>(rep.rss_kb));
    l.runtime_line = buf;
  }
  l.blocks = c.min_honest_committed();
  l.logical_vfy = c.verifier_stats().provider_verifications;
  l.decoded = c.pipeline_stats().decoded;
  if (intern) {
    l.real_vfy = c.intern_stats().real_verifications;
    l.parses = c.intern_stats().parses;
  } else {
    // Without the store every party does its own crypto and its own parsing:
    // the real cluster-wide work IS the logical total, and every delivered
    // artifact is one parse.
    l.real_vfy = l.logical_vfy;
    l.parses = l.decoded;
  }
  l.wall_s = static_cast<double>(t1.tv_sec - t0.tv_sec) +
             static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
  return l;
}

struct BenchResult {
  std::string name;
  double value;
  const char* unit;
};

bool write_bench_json(const char* path, const std::vector<BenchResult>& results) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"schema\":\"icc-bench/v1\",\"bench\":\"ingress_intern\",\"config\":{"
      << "\"protocol\":\"icc0\",\"crypto\":\"real\",\"seed\":42,\"threads\":1,"
      << "\"payload\":512,\"ns\":[16,32,64,100],\"windows_s\":[1,2,1,0.5]},\"results\":[";
  char buf[64];
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) out << ",";
    std::snprintf(buf, sizeof buf, "%.3f", results[i].value);
    out << "\n  {\"name\":\"" << results[i].name << "\",\"value\":" << buf
        << ",\"unit\":\"" << results[i].unit << "\"}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

// Behaviour-neutrality smoke under faults, cheap enough for every CI run:
// an equivocating leader plus a crashed party, fast crypto, and the commit
// sequences of every honest party must match byte-for-byte across intern
// on/off. (The full matrix — journals, thread counts, all protocols — lives
// in tests/pipeline/intern_test.cpp; this guards the bench binary's own
// configuration path too.)
int corrupt_smoke_main() {
  auto committed = [](bool intern) {
    harness::ClusterOptions o;
    o.n = 16;
    o.t = 5;
    o.seed = 7;
    o.protocol = harness::Protocol::kIcc0;
    o.delta_bnd = sim::msec(300);
    o.payload_size = 256;
    o.intern = intern;
    o.threads = 1;
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(10));
    };
    consensus::ByzantineBehavior eq;
    eq.equivocate = true;
    o.corrupt = {{1, eq}, {4, harness::Crashed{}}};
    harness::Cluster c(o);
    c.run_for(sim::seconds(10));
    if (c.check_safety().has_value()) {
      std::fprintf(stderr, "corrupt-smoke: safety violation (intern %s)\n",
                   intern ? "on" : "off");
      std::exit(1);
    }
    std::vector<std::vector<std::pair<harness::Round, types::Hash>>> out;
    for (size_t i = 0; i < o.n; ++i) {
      std::vector<std::pair<harness::Round, types::Hash>> seq;
      if (c.is_honest(i) && c.party(i) != nullptr) {
        for (const auto& blk : c.party(i)->committed())
          seq.emplace_back(blk.round, blk.hash);
      }
      out.push_back(std::move(seq));
    }
    return out;
  };
  auto off = committed(false);
  auto on = committed(true);
  if (on != off) {
    std::fprintf(stderr,
                 "corrupt-smoke: FAIL — intern-on commit sequence differs from "
                 "intern-off under an equivocating leader\n");
    return 1;
  }
  size_t blocks = 0;
  for (const auto& seq : on) blocks = std::max(blocks, seq.size());
  std::printf("corrupt-smoke: OK — identical commit sequences (%zu blocks, "
              "equivocating leader + crash, intern on/off)\n", blocks);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--corrupt-smoke") == 0) return corrupt_smoke_main();
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    if (std::strcmp(argv[i], "--runtime") == 0) g_runtime = true;
  }

  std::printf("F-INTERN: cluster-shared artifact interning "
              "(ICC0, real Ed25519/DVRF, 1 thread, seed 42)\n");
  std::printf("%-6s | %-8s | %-16s | %-16s | %-8s | %-14s | %-20s\n", "n", "blocks",
              "real vfy/block", "real vfy/block", "intern", "parses per", "wall-clock blk/s");
  std::printf("%-6s | %-8s | %-16s | %-16s | %-8s | %-14s | %-20s\n", "", "",
              "  intern off", "  intern on", "speedup", "delivered", "  off -> on");
  std::printf("-------+----------+------------------+------------------+----------+"
              "----------------+---------------------\n");

  std::vector<BenchResult> results;
  bool ok = true;
  double n32_speedup = 0;
  for (size_t n : {16, 32, 64, 100}) {
    // Larger committees get a shorter window: the off leg's real crypto is
    // O(n^2) per round, and the sweep has to fit in a CI lane. n = 32 (the
    // gated point) keeps the longest window.
    const sim::Duration window =
        n == 32 ? sim::seconds(2) : n < 32 ? sim::seconds(1) : sim::msec(n == 64 ? 1000 : 500);
    Leg off = run_leg(n, false, window);
    Leg on = run_leg(n, true, window);

    // Neutrality check at bench level: virtual-time observables must agree.
    if (on.blocks != off.blocks || on.logical_vfy != off.logical_vfy ||
        on.decoded != off.decoded) {
      std::fprintf(stderr,
                   "F-INTERN: determinism violation at n=%zu: intern on/off "
                   "disagree on virtual-time observables\n", n);
      ok = false;
    }
    const double per_off =
        off.blocks ? static_cast<double>(off.real_vfy) / static_cast<double>(off.blocks) : 0;
    const double per_on =
        on.blocks ? static_cast<double>(on.real_vfy) / static_cast<double>(on.blocks) : 0;
    // Sign-and-prime seeds the shared memo at signing time, so an honest run
    // can legitimately reach *zero* real verifications — every receiver-side
    // check is answered by the signer's own priming.
    const double speedup = per_on > 0 ? per_off / per_on
                           : per_off > 0 ? std::numeric_limits<double>::infinity()
                                         : 0;
    const double parses_per =
        on.decoded ? static_cast<double>(on.parses) / static_cast<double>(on.decoded) : 0;
    if (n == 32) n32_speedup = speedup;
    std::printf("%4zu   | %8zu | %16.0f | %16.1f | %7.1fx | %14.3f | %7.1f -> %7.1f\n",
                n, on.blocks, per_off, per_on, speedup, parses_per,
                off.wall_s > 0 ? static_cast<double>(off.blocks) / off.wall_s : 0,
                on.wall_s > 0 ? static_cast<double>(on.blocks) / on.wall_s : 0);
    if (g_runtime) {
      // Line-atomic with any worker ICC_LOG output (support/log.hpp).
      std::lock_guard<std::mutex> lk(log_sink_mutex());
      std::printf("%s\n%s\n", off.runtime_line.c_str(), on.runtime_line.c_str());
    }

    std::string prefix = "n" + std::to_string(n);
    results.push_back({prefix + "/blocks", static_cast<double>(on.blocks), "count"});
    results.push_back({prefix + "/real_vfy_per_block", per_on, "count"});
    results.push_back({prefix + "/logical_vfy_per_block", per_off, "count"});
    results.push_back({prefix + "/parses_per_delivered", parses_per, "ratio"});
  }
  std::printf("\nreal vfy/block intern-off equals the per-party (logical) total: without\n"
              "the store every replica does its own crypto. Wall-clock is informational\n"
              "(host-dependent); every JSON value derives from virtual time + exact\n"
              "counters and is machine-independent.\n");

  if (!(n32_speedup >= 5.0)) {
    std::fprintf(stderr, "F-INTERN: FAIL — expected >= 5x fewer real verifications per "
                         "committed block at n=32, got %.1fx\n", n32_speedup);
    return 1;
  }
  if (!ok) return 1;
  if (json_path != nullptr) {
    if (!write_bench_json(json_path, results)) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
