// F-LAT: reciprocal throughput and latency vs network delay delta.
//
// Paper claims (Sections 1 and 1.1), for an honest leader on a synchronous
// network with per-link delay delta:
//   ICC0 / ICC1:  reciprocal throughput 2*delta, latency 3*delta
//   ICC2:         reciprocal throughput 3*delta, latency 4*delta
//   HotStuff:     reciprocal throughput 2*delta, latency 6*delta
//   Tendermint:   round time O(Delta_bnd) regardless of delta
//
// This bench sweeps delta with a fixed-delay network and prints measured
// round interval (reciprocal throughput) and propose->everyone-committed
// latency, next to the paper's formulas.
#include <cstdio>

#include "harness/baseline_cluster.hpp"
#include "harness/cluster.hpp"

namespace {

using namespace icc;

struct Measured {
  double recip_ms;    // avg time between consecutive commits
  double latency_ms;  // avg propose -> all honest committed
};

Measured run_icc(harness::Protocol proto, sim::Duration delta, sim::Duration delta_bnd) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.protocol = proto;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.prune_lag = 8;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::Cluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0)->committed().size();
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

Measured run_baseline(harness::BaselineKind kind, sim::Duration delta,
                      sim::Duration delta_bnd) {
  harness::BaselineOptions o;
  o.kind = kind;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::BaselineCluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0) ? c.party(0)->committed().size() : 0;
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

}  // namespace

int main() {
  const sim::Duration delta_bnd = sim::msec(600);
  std::printf("F-LAT: reciprocal throughput / latency vs delta "
              "(n = 7, honest, Delta_bnd = 600 ms)\n");
  std::printf("%-8s | %-19s | %-19s | %-19s | %-19s | %-19s\n", "delta", "ICC0 (2d / 3d)",
              "ICC1 (2d / 3d)", "ICC2 (3d / 4d)", "HotStuff (2d / 6d)",
              "Tendermint (O(D))");
  std::printf("---------+---------------------+---------------------+---------------------+"
              "---------------------+---------------------\n");
  for (int delta_ms : {5, 10, 20, 40, 80}) {
    sim::Duration delta = sim::msec(delta_ms);
    Measured icc0 = run_icc(harness::Protocol::kIcc0, delta, delta_bnd);
    Measured icc1 = run_icc(harness::Protocol::kIcc1, delta, delta_bnd);
    Measured icc2 = run_icc(harness::Protocol::kIcc2, delta, delta_bnd);
    Measured hs = run_baseline(harness::BaselineKind::kHotStuff, delta, delta_bnd);
    Measured tm = run_baseline(harness::BaselineKind::kTendermint, delta, delta_bnd);
    std::printf("%4d ms  | %7.1f / %7.1f ms | %7.1f / %7.1f ms | %7.1f / %7.1f ms | "
                "%7.1f / %7.1f ms | %7.1f / %7.1f ms\n",
                delta_ms, icc0.recip_ms, icc0.latency_ms, icc1.recip_ms, icc1.latency_ms,
                icc2.recip_ms, icc2.latency_ms, hs.recip_ms, hs.latency_ms, tm.recip_ms,
                tm.latency_ms);
  }
  std::printf("\nEach cell: reciprocal throughput / commit latency. Expected shapes:\n"
              "ICC0/ICC1 track 2d/3d, ICC2 3d/4d (one extra dispersal hop), HotStuff\n"
              "2d but ~6-7d latency (3-chain), Tendermint pinned at Delta_bnd-scale\n"
              "regardless of d (not optimistically responsive).\n");
  return 0;
}
