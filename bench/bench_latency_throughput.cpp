// F-LAT: reciprocal throughput and latency vs network delay delta.
//
// Paper claims (Sections 1 and 1.1), for an honest leader on a synchronous
// network with per-link delay delta:
//   ICC0 / ICC1:  reciprocal throughput 2*delta, latency 3*delta
//   ICC2:         reciprocal throughput 3*delta, latency 4*delta
//   HotStuff:     reciprocal throughput 2*delta, latency 6*delta
//   Tendermint:   round time O(Delta_bnd) regardless of delta
//
// This bench sweeps delta with a fixed-delay network and prints measured
// round interval (reciprocal throughput) and propose->everyone-committed
// latency, next to the paper's formulas.
//
// `--obs-overhead` runs the F-OBS smoke check instead: the same ICC1
// workload timed wall-clock with telemetry off and on (7 interleaved
// off/on pairs, median per-pair ratio); exits 1 if enabling telemetry
// costs >= 5%.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "harness/baseline_cluster.hpp"
#include "harness/cluster.hpp"

namespace {

using namespace icc;

struct Measured {
  double recip_ms;    // avg time between consecutive commits
  double latency_ms;  // avg propose -> all honest committed
};

Measured run_icc(harness::Protocol proto, sim::Duration delta, sim::Duration delta_bnd) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.protocol = proto;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.prune_lag = 8;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::Cluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0)->committed().size();
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

Measured run_baseline(harness::BaselineKind kind, sim::Duration delta,
                      sim::Duration delta_bnd) {
  harness::BaselineOptions o;
  o.kind = kind;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::BaselineCluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0) ? c.party(0)->committed().size() : 0;
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

// F-OBS: wall-clock cost of enabling telemetry on the F-LAT workload.
double timed_run_s(bool obs_enabled) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.protocol = harness::Protocol::kIcc1;
  o.delta_bnd = sim::msec(600);
  o.payload_size = 256;
  o.prune_lag = 8;
  o.record_payloads = false;
  o.obs.enabled = obs_enabled;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  // 60 s virtual (~3x the F-LAT window): short runs put the per-run noise
  // floor near the effect size, and the gate starts flaking.
  const auto start = std::chrono::steady_clock::now();
  harness::Cluster c(o);
  c.run_for(sim::seconds(60));
  const auto end = std::chrono::steady_clock::now();
  if (c.party(0)->committed().empty()) {
    std::fprintf(stderr, "obs-overhead run made no progress\n");
    std::exit(2);
  }
  return std::chrono::duration<double>(end - start).count();
}

int obs_overhead_main() {
  // Warm-up both variants (allocator, page cache, branch predictors).
  timed_run_s(false);
  timed_run_s(true);
  // Paired off/on runs: clock-frequency drift and thermal throttling move
  // slowly, so they hit both halves of a pair roughly equally and cancel in
  // the per-pair ratio. The median pair-ratio then discards the outliers a
  // min-vs-min comparison is vulnerable to.
  std::vector<double> ratios;
  double off_med = 0, on_med = 0;
  for (int i = 0; i < 7; ++i) {
    const double off = timed_run_s(false);
    const double on = timed_run_s(true);
    ratios.push_back(on / off);
    off_med += off;
    on_med += on;
  }
  std::sort(ratios.begin(), ratios.end());
  const double overhead_pct = (ratios[ratios.size() / 2] - 1.0) * 100.0;
  std::printf("F-OBS: telemetry overhead on the F-LAT ICC1 workload\n");
  std::printf("  telemetry off: %.3f s (mean of 7)\n", off_med / 7.0);
  std::printf("  telemetry on:  %.3f s (mean of 7)\n", on_med / 7.0);
  std::printf("  overhead:      %+.2f %%  (median pair-ratio; budget < 5 %%)\n",
              overhead_pct);
  return overhead_pct < 5.0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--obs-overhead") == 0) return obs_overhead_main();
  const sim::Duration delta_bnd = sim::msec(600);
  std::printf("F-LAT: reciprocal throughput / latency vs delta "
              "(n = 7, honest, Delta_bnd = 600 ms)\n");
  std::printf("%-8s | %-19s | %-19s | %-19s | %-19s | %-19s\n", "delta", "ICC0 (2d / 3d)",
              "ICC1 (2d / 3d)", "ICC2 (3d / 4d)", "HotStuff (2d / 6d)",
              "Tendermint (O(D))");
  std::printf("---------+---------------------+---------------------+---------------------+"
              "---------------------+---------------------\n");
  for (int delta_ms : {5, 10, 20, 40, 80}) {
    sim::Duration delta = sim::msec(delta_ms);
    Measured icc0 = run_icc(harness::Protocol::kIcc0, delta, delta_bnd);
    Measured icc1 = run_icc(harness::Protocol::kIcc1, delta, delta_bnd);
    Measured icc2 = run_icc(harness::Protocol::kIcc2, delta, delta_bnd);
    Measured hs = run_baseline(harness::BaselineKind::kHotStuff, delta, delta_bnd);
    Measured tm = run_baseline(harness::BaselineKind::kTendermint, delta, delta_bnd);
    std::printf("%4d ms  | %7.1f / %7.1f ms | %7.1f / %7.1f ms | %7.1f / %7.1f ms | "
                "%7.1f / %7.1f ms | %7.1f / %7.1f ms\n",
                delta_ms, icc0.recip_ms, icc0.latency_ms, icc1.recip_ms, icc1.latency_ms,
                icc2.recip_ms, icc2.latency_ms, hs.recip_ms, hs.latency_ms, tm.recip_ms,
                tm.latency_ms);
  }
  std::printf("\nEach cell: reciprocal throughput / commit latency. Expected shapes:\n"
              "ICC0/ICC1 track 2d/3d, ICC2 3d/4d (one extra dispersal hop), HotStuff\n"
              "2d but ~6-7d latency (3-chain), Tendermint pinned at Delta_bnd-scale\n"
              "regardless of d (not optimistically responsive).\n");
  return 0;
}
