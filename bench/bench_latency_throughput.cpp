// F-LAT: reciprocal throughput and latency vs network delay delta.
//
// Paper claims (Sections 1 and 1.1), for an honest leader on a synchronous
// network with per-link delay delta:
//   ICC0 / ICC1:  reciprocal throughput 2*delta, latency 3*delta
//   ICC2:         reciprocal throughput 3*delta, latency 4*delta
//   HotStuff:     reciprocal throughput 2*delta, latency 6*delta
//   Tendermint:   round time O(Delta_bnd) regardless of delta
//
// This bench sweeps delta with a fixed-delay network and prints measured
// round interval (reciprocal throughput) and propose->everyone-committed
// latency, next to the paper's formulas.
//
// `--obs-overhead` runs the F-OBS smoke check instead: the same ICC1
// workload timed wall-clock with telemetry off and on (7 interleaved
// off/on pairs, median per-pair ratio); exits 1 if enabling telemetry
// costs >= 5%.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/baseline_cluster.hpp"
#include "harness/cluster.hpp"

namespace {

using namespace icc;

struct Measured {
  double recip_ms;    // avg time between consecutive commits
  double latency_ms;  // avg propose -> all honest committed
};

Measured run_icc(harness::Protocol proto, sim::Duration delta, sim::Duration delta_bnd) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.protocol = proto;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.prune_lag = 8;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::Cluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0)->committed().size();
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

Measured run_baseline(harness::BaselineKind kind, sim::Duration delta,
                      sim::Duration delta_bnd) {
  harness::BaselineOptions o;
  o.kind = kind;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::BaselineCluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0) ? c.party(0)->committed().size() : 0;
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

// F-OBS: wall-clock cost of enabling telemetry on the F-LAT workload.
double timed_run_s(bool obs_enabled) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.protocol = harness::Protocol::kIcc1;
  o.delta_bnd = sim::msec(600);
  o.payload_size = 256;
  o.prune_lag = 8;
  o.record_payloads = false;
  // The "on" leg enables the full recorder stack — metrics, tracing AND the
  // event journal — so the <5% budget covers the flight recorder too.
  o.obs.enabled = obs_enabled;
  o.obs.journal = obs_enabled;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  // 60 s virtual (~3x the F-LAT window): short runs put the per-run noise
  // floor near the effect size, and the gate starts flaking.
  const auto start = std::chrono::steady_clock::now();
  harness::Cluster c(o);
  c.run_for(sim::seconds(60));
  const auto end = std::chrono::steady_clock::now();
  if (c.party(0)->committed().empty()) {
    std::fprintf(stderr, "obs-overhead run made no progress\n");
    std::exit(2);
  }
  return std::chrono::duration<double>(end - start).count();
}

int obs_overhead_main() {
  // Warm-up both variants (allocator, page cache, branch predictors).
  timed_run_s(false);
  timed_run_s(true);
  // Interleaved off/on runs (drift hits both legs alike), compared by
  // per-leg *minimum*. Scheduling noise on a shared machine is one-sided —
  // contention only ever adds time — so the minimum over 7 runs is the best
  // estimate of each leg's uncontended runtime. Ratio-of-means and median
  // pair-ratio both inherit the noise (observed ±5-10 % per run on CI-class
  // machines, the size of the budget itself); min-vs-min does not.
  std::vector<double> offs, ons;
  for (int i = 0; i < 7; ++i) {
    offs.push_back(timed_run_s(false));
    ons.push_back(timed_run_s(true));
  }
  const double off_min = *std::min_element(offs.begin(), offs.end());
  const double on_min = *std::min_element(ons.begin(), ons.end());
  const double overhead_pct = (on_min / off_min - 1.0) * 100.0;
  std::printf("F-OBS: telemetry overhead on the F-LAT ICC1 workload\n");
  std::printf("  telemetry off: %.3f s (min of 7)\n", off_min);
  std::printf("  telemetry on:  %.3f s (min of 7)\n", on_min);
  std::printf("  overhead:      %+.2f %%  (min-vs-min; budget < 5 %%)\n", overhead_pct);
  return overhead_pct < 5.0 ? 0 : 1;
}

/// One named scalar for the BENCH_*.json baseline (schema icc-bench/v1).
/// Values come from virtual time, so they are identical on any machine —
/// exactly what makes them gateable in CI (ci/bench_compare.py).
struct BenchResult {
  std::string name;
  double value;
  const char* unit;
};

bool write_bench_json(const char* path, const char* bench, const std::string& config,
                      const std::vector<BenchResult>& results) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"schema\":\"icc-bench/v1\",\"bench\":\"" << bench << "\",\"config\":{"
      << config << "},\"results\":[";
  char buf[64];
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) out << ",";
    std::snprintf(buf, sizeof buf, "%.3f", results[i].value);
    out << "\n  {\"name\":\"" << results[i].name << "\",\"value\":" << buf
        << ",\"unit\":\"" << results[i].unit << "\"}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--obs-overhead") == 0) return obs_overhead_main();
  const char* json_path = "BENCH_latency.json";
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  const sim::Duration delta_bnd = sim::msec(600);
  std::printf("F-LAT: reciprocal throughput / latency vs delta "
              "(n = 7, honest, Delta_bnd = 600 ms)\n");
  std::printf("%-8s | %-19s | %-19s | %-19s | %-19s | %-19s\n", "delta", "ICC0 (2d / 3d)",
              "ICC1 (2d / 3d)", "ICC2 (3d / 4d)", "HotStuff (2d / 6d)",
              "Tendermint (O(D))");
  std::printf("---------+---------------------+---------------------+---------------------+"
              "---------------------+---------------------\n");
  std::vector<BenchResult> results;
  auto record = [&](const char* proto, int delta_ms, const Measured& m) {
    std::string prefix = std::string(proto) + "/delta" + std::to_string(delta_ms);
    results.push_back({prefix + "/recip_ms", m.recip_ms, "ms"});
    results.push_back({prefix + "/latency_ms", m.latency_ms, "ms"});
  };
  for (int delta_ms : {5, 10, 20, 40, 80}) {
    sim::Duration delta = sim::msec(delta_ms);
    Measured icc0 = run_icc(harness::Protocol::kIcc0, delta, delta_bnd);
    Measured icc1 = run_icc(harness::Protocol::kIcc1, delta, delta_bnd);
    Measured icc2 = run_icc(harness::Protocol::kIcc2, delta, delta_bnd);
    Measured hs = run_baseline(harness::BaselineKind::kHotStuff, delta, delta_bnd);
    Measured tm = run_baseline(harness::BaselineKind::kTendermint, delta, delta_bnd);
    std::printf("%4d ms  | %7.1f / %7.1f ms | %7.1f / %7.1f ms | %7.1f / %7.1f ms | "
                "%7.1f / %7.1f ms | %7.1f / %7.1f ms\n",
                delta_ms, icc0.recip_ms, icc0.latency_ms, icc1.recip_ms, icc1.latency_ms,
                icc2.recip_ms, icc2.latency_ms, hs.recip_ms, hs.latency_ms, tm.recip_ms,
                tm.latency_ms);
    record("icc0", delta_ms, icc0);
    record("icc1", delta_ms, icc1);
    record("icc2", delta_ms, icc2);
    record("hotstuff", delta_ms, hs);
    record("tendermint", delta_ms, tm);
  }
  std::printf("\nEach cell: reciprocal throughput / commit latency. Expected shapes:\n"
              "ICC0/ICC1 track 2d/3d, ICC2 3d/4d (one extra dispersal hop), HotStuff\n"
              "2d but ~6-7d latency (3-chain), Tendermint pinned at Delta_bnd-scale\n"
              "regardless of d (not optimistically responsive).\n");
  if (!write_bench_json(json_path, "latency_throughput",
                        "\"n\":7,\"t\":2,\"seed\":11,\"window_s\":20,"
                        "\"deltas_ms\":[5,10,20,40,80]",
                        results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);
  return 0;
}
