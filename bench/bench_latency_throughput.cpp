// F-LAT: reciprocal throughput and latency vs network delay delta.
//
// Paper claims (Sections 1 and 1.1), for an honest leader on a synchronous
// network with per-link delay delta:
//   ICC0 / ICC1:  reciprocal throughput 2*delta, latency 3*delta
//   ICC2:         reciprocal throughput 3*delta, latency 4*delta
//   HotStuff:     reciprocal throughput 2*delta, latency 6*delta
//   Tendermint:   round time O(Delta_bnd) regardless of delta
//
// This bench sweeps delta with a fixed-delay network and prints measured
// round interval (reciprocal throughput) and propose->everyone-committed
// latency, next to the paper's formulas.
//
// `--obs-overhead` runs the F-OBS smoke check instead: the same ICC1
// workload timed in process CPU time with telemetry off and on
// (back-to-back off/on pairs, median of the within-pair ratios, 9–17
// pairs until the median stabilizes); exits 1 if enabling telemetry
// costs >= 5%.
//
// `--runtime-overhead` is the same gate for the wall-clock runtime
// profiler (obs.runtime) on top of an already-instrumented 2-thread run;
// `--parallel --runtime` adds a per-leg utilization / serial-fraction /
// Amdahl line to the F-PAR table (F-RUNTIME in EXPERIMENTS.md).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "harness/baseline_cluster.hpp"
#include "harness/cluster.hpp"
#include "support/log.hpp"

namespace {

using namespace icc;

struct Measured {
  double recip_ms;    // avg time between consecutive commits
  double latency_ms;  // avg propose -> all honest committed
};

// --threads N (0 = ICC_THREADS/default): worker pool for every simulated
// cluster in this process. All reported values derive from virtual time, so
// the thread count may change wall-clock but never a number in the output.
size_t g_threads = 0;
// --intern on|off (default on): cluster-shared artifact interning
// (DESIGN.md §7). Like the thread count, it may only move wall-clock —
// every virtual-time number is identical either way, which is exactly why
// the JSON baselines stay valid with either setting.
bool g_intern = true;
// --runtime (F-PAR only): wall-clock runtime profiler per leg. Prints the
// utilization / serial-fraction summary next to each row; the virtual-time
// columns (the CI gate) are unchanged — probes are observation-only.
bool g_runtime = false;

Measured run_icc(harness::Protocol proto, sim::Duration delta, sim::Duration delta_bnd) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.protocol = proto;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.prune_lag = 8;
  o.record_payloads = false;
  o.threads = g_threads;
  o.intern = g_intern;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::Cluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0)->committed().size();
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

Measured run_baseline(harness::BaselineKind kind, sim::Duration delta,
                      sim::Duration delta_bnd) {
  harness::BaselineOptions o;
  o.kind = kind;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.delta_bnd = delta_bnd;
  o.payload_size = 256;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::BaselineCluster c(o);
  sim::Duration window = sim::seconds(20);
  c.run_for(window);
  Measured m;
  size_t blocks = c.party(0) ? c.party(0)->committed().size() : 0;
  m.recip_ms = blocks > 1 ? sim::to_ms(window) / static_cast<double>(blocks) : 0;
  m.latency_ms = c.avg_latency_ms();
  return m;
}

// F-OBS: CPU cost of enabling telemetry on the F-LAT workload. Timed with
// CLOCK_PROCESS_CPUTIME_ID rather than wall-clock: the simulation is
// single-threaded and telemetry overhead is CPU work, so process CPU time
// measures exactly the quantity under test while excluding preemption by
// other tenants of a shared core — on a 1-CPU CI container, wall-clock
// minima still wander by more than the 5% budget when a neighbour bursts,
// CPU-time minima do not.
double timed_run_s(bool obs_enabled, bool runtime_enabled = false,
                   size_t threads = 0) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 11;
  o.protocol = harness::Protocol::kIcc1;
  o.delta_bnd = sim::msec(600);
  o.payload_size = 256;
  o.prune_lag = 8;
  o.record_payloads = false;
  o.threads = threads;
  // The "on" leg enables the full recorder stack — metrics, tracing, the
  // event journal AND the windowed time-series recorder — so the <5% budget
  // covers the flight recorder and the longitudinal stream too.
  o.obs.enabled = obs_enabled;
  o.obs.journal = obs_enabled;
  o.obs.series = obs_enabled;
  o.obs.runtime = runtime_enabled;
  // Fidelity mode, regardless of --intern: the budget is telemetry cost
  // relative to a real replica's CPU, and the shared intern store would
  // shrink the denominator (it is a different knob than the one under
  // test — DESIGN.md §7).
  o.intern = false;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  // 60 s virtual (~3x the F-LAT window): short runs put the per-run noise
  // floor near the effect size, and the gate starts flaking.
  timespec start{}, end{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &start);
  harness::Cluster c(o);
  c.run_for(sim::seconds(60));
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &end);
  if (c.party(0)->committed().empty()) {
    std::fprintf(stderr, "obs-overhead run made no progress\n");
    std::exit(2);
  }
  return static_cast<double>(end.tv_sec - start.tv_sec) +
         static_cast<double>(end.tv_nsec - start.tv_nsec) * 1e-9;
}

// Back-to-back off/on pairs, judged by the *median* of the within-pair
// ratios. Residual noise in CPU time (cache pollution from
// context-switch bursts on a shared core) arrives in sub-second bursts
// that hit whichever leg happens to be running — each pair's ratio is
// the true ratio perturbed symmetrically, so the median converges on
// the true overhead while averaging the noise down by ~1/sqrt(pairs).
// Order statistics do not: a per-leg minimum needs two independently
// lucky quiet runs and a quietest-pair needs one lucky 8 s window, and
// both were observed to misread by ±10% under sustained neighbour load
// when luck was uneven between the legs. The loop is adaptive: at least
// 9 pairs, then keep sampling until the running median has moved less
// than 0.3 pp over 3 straight pairs, hard-capped at 17. Shared by the
// F-OBS and F-RUNTIME gates, which differ only in what the two legs run.
struct PairedOverhead {
  double median_ratio;
  size_t pairs;
  double last_off_s;
};

template <typename OffLeg, typename OnLeg>
PairedOverhead paired_overhead(OffLeg off_leg, OnLeg on_leg) {
  // Warm-up both variants (allocator, page cache, branch predictors).
  off_leg();
  on_leg();
  std::vector<double> ratios;
  auto median = [&ratios] {
    std::vector<double> s = ratios;
    std::sort(s.begin(), s.end());
    const size_t n = s.size();
    return n % 2 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
  };
  int stable = 0;
  double med = 0, last_off = 0;
  while (ratios.size() < 9 || (stable < 3 && ratios.size() < 17)) {
    const double off = last_off = off_leg();
    const double on = on_leg();
    ratios.push_back(on / off);
    std::fprintf(stderr, "  pair %2zu: off %.3f on %.3f CPU s (%+.2f %%)\n",
                 ratios.size(), off, on, (on / off - 1.0) * 100.0);
    const double prev = med;
    med = median();
    if (ratios.size() > 9 && std::abs(med - prev) < 0.003)
      stable++;
    else
      stable = 0;
  }
  return {med, ratios.size(), last_off};
}

int obs_overhead_main() {
  const PairedOverhead r = paired_overhead([] { return timed_run_s(false); },
                                           [] { return timed_run_s(true); });
  const double overhead_pct = (r.median_ratio - 1.0) * 100.0;
  std::printf("F-OBS: telemetry overhead on the F-LAT ICC1 workload\n");
  std::printf("  median of %zu off/on pair ratios, ~%.1f CPU s per leg per run\n",
              r.pairs, r.last_off_s);
  std::printf("  overhead:      %+.2f %%  (median pair ratio; budget < 5 %%)\n",
              overhead_pct);
  return overhead_pct < 5.0 ? 0 : 1;
}

// F-RUNTIME gate: marginal CPU cost of the wall-clock runtime profiler on
// top of an already-instrumented run. Both legs enable the full telemetry
// stack (metrics + tracing + journal) at 2 worker threads so the executor,
// verifier-shard and intern-shard probe paths are actually exercised; only
// obs.runtime differs. Same median-of-pairs judgement and <5% budget as
// F-OBS.
int runtime_overhead_main() {
  const PairedOverhead r =
      paired_overhead([] { return timed_run_s(true, false, 2); },
                      [] { return timed_run_s(true, true, 2); });
  const double overhead_pct = (r.median_ratio - 1.0) * 100.0;
  std::printf("F-RUNTIME: runtime-profiler overhead on the instrumented "
              "F-LAT ICC1 workload (2 threads)\n");
  std::printf("  median of %zu off/on pair ratios, ~%.1f CPU s per leg per run\n",
              r.pairs, r.last_off_s);
  std::printf("  overhead:      %+.2f %%  (median pair ratio; budget < 5 %%)\n",
              overhead_pct);
  return overhead_pct < 5.0 ? 0 : 1;
}

/// One named scalar for the BENCH_*.json baseline (schema icc-bench/v1).
/// Values come from virtual time, so they are identical on any machine —
/// exactly what makes them gateable in CI (ci/bench_compare.py).
struct BenchResult {
  std::string name;
  double value;
  const char* unit;
};

bool write_bench_json(const char* path, const char* bench, const std::string& config,
                      const std::vector<BenchResult>& results) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << "{\"schema\":\"icc-bench/v1\",\"bench\":\"" << bench << "\",\"config\":{"
      << config << "},\"results\":[";
  char buf[64];
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) out << ",";
    std::snprintf(buf, sizeof buf, "%.3f", results[i].value);
    out << "\n  {\"name\":\"" << results[i].name << "\",\"value\":" << buf
        << ",\"unit\":\"" << results[i].unit << "\"}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

// F-PAR: multi-core scaling of the deterministic parallel runtime
// (DESIGN.md §6). One n = 32 real-crypto ICC0 workload, repeated at 1/2/4/8
// worker threads. Wall-clock per run is printed for the scaling curve but
// never gated (it depends on the host's core count — a 1-core CI container
// legitimately shows ~1x). What IS gated, via BENCH_parallel.json: every
// virtual-time observable must be identical at every thread count —
// parallelism that changed any of them would be a determinism bug, the
// whole point of the runtime.
int parallel_main(const char* json_path) {
  const int sim_seconds = 2;
  std::printf("F-PAR: deterministic parallel runtime scaling "
              "(ICC0, n = 32, t = 10, real Ed25519/DVRF, %d s sim)\n", sim_seconds);
  std::printf("%-8s | %-12s | %-10s | %-14s | %-14s | %-10s\n", "threads", "wall-clock",
              "speedup", "blocks (min)", "provider vfy", "messages");
  std::printf("---------+--------------+------------+----------------+----------------+"
              "-----------\n");
  std::vector<BenchResult> results;
  double base_wall = 0;
  bool identical = true;
  uint64_t ref_blocks = 0, ref_vfy = 0, ref_msgs = 0;
  double ref_latency = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    harness::ClusterOptions o;
    o.n = 32;
    o.t = 10;
    o.seed = 77;
    o.crypto = harness::CryptoKind::kReal;
    o.delta_bnd = sim::msec(300);
    o.payload_size = 256;
    o.record_payloads = false;
    o.prune_lag = 8;
    o.threads = threads;
    o.intern = g_intern;
    // --runtime: profile every leg identically (probes are observation-only,
    // so the virtual-time gate columns below cannot move — asserted by
    // tests/obs/runtime_test).
    o.obs.enabled = o.obs.enabled || g_runtime;
    o.obs.runtime = g_runtime;
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(10));
    };
    timespec t0{}, t1{};
    clock_gettime(CLOCK_MONOTONIC, &t0);
    harness::Cluster c(o);
    c.run_for(sim::seconds(sim_seconds));
    clock_gettime(CLOCK_MONOTONIC, &t1);
    const double wall = static_cast<double>(t1.tv_sec - t0.tv_sec) +
                        static_cast<double>(t1.tv_nsec - t0.tv_nsec) * 1e-9;
    if (threads == 1) base_wall = wall;
    const uint64_t blocks = c.min_honest_committed();
    const uint64_t vfy = c.verifier_stats().provider_verifications;
    const uint64_t msgs = c.sim().network().metrics().total_messages;
    const double latency = c.avg_latency_ms();
    std::printf("%5zu    | %9.2f s  | %7.2fx   | %14llu | %14llu | %10llu\n", threads,
                wall, wall > 0 ? base_wall / wall : 0, (unsigned long long)blocks,
                (unsigned long long)vfy, (unsigned long long)msgs);
    if (g_runtime) {
      // Wall-clock profile of the leg just finished: NON-deterministic,
      // informational only (never part of the JSON baseline). One line per
      // row so the serial fraction can be read next to the speedup it
      // explains; emitted under the log sink mutex so worker ICC_LOG lines
      // cannot split it.
      const obs::RuntimeReport rep = c.runtime_report();
      const obs::RuntimeAnalysis a = obs::analyze_runtime(rep);
      std::lock_guard<std::mutex> lk(log_sink_mutex());
      std::printf("         `- runtime: util %5.1f %% (%s basis) | serial f = %.4f "
                  "| Amdahl max %.2fx | parallel-region share %.1f %%\n",
                  a.utilization * 100.0, a.cpu_basis ? "cpu" : "wall",
                  a.serial_fraction, a.amdahl_max, a.parallel_region_share * 100.0);
    }
    if (threads == 1) {
      ref_blocks = blocks;
      ref_vfy = vfy;
      ref_msgs = msgs;
      ref_latency = latency;
    } else if (blocks != ref_blocks || vfy != ref_vfy || msgs != ref_msgs ||
               latency != ref_latency) {
      identical = false;
    }
    std::string prefix = "threads" + std::to_string(threads);
    results.push_back({prefix + "/blocks", static_cast<double>(blocks), "count"});
    results.push_back({prefix + "/provider_verifications", static_cast<double>(vfy),
                       "count"});
    results.push_back({prefix + "/total_messages", static_cast<double>(msgs), "count"});
    results.push_back({prefix + "/latency_ms", latency, "ms"});
  }
  std::printf("\nwall-clock scales with available cores (informational only); all\n"
              "virtual-time columns must agree across rows — they are the CI gate.\n");
  if (!identical) {
    std::fprintf(stderr, "F-PAR: DETERMINISM VIOLATION: virtual-time observables "
                         "differ across thread counts\n");
    return 1;
  }
  if (!write_bench_json(json_path, "parallel_scaling",
                        "\"n\":32,\"t\":10,\"seed\":77,\"crypto\":\"real\","
                        "\"window_s\":2,\"threads\":[1,2,4,8]",
                        results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--obs-overhead") == 0) return obs_overhead_main();
  if (argc > 1 && std::strcmp(argv[1], "--runtime-overhead") == 0)
    return runtime_overhead_main();
  bool parallel = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--intern") == 0 && i + 1 < argc) {
      g_intern = std::strcmp(argv[++i], "off") != 0;
    } else if (std::strcmp(argv[i], "--runtime") == 0) {
      g_runtime = true;
    } else if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel = true;
    }
  }
  if (parallel) return parallel_main(json_path != nullptr ? json_path : "BENCH_parallel.json");
  if (json_path == nullptr) json_path = "BENCH_latency.json";
  const sim::Duration delta_bnd = sim::msec(600);
  std::printf("F-LAT: reciprocal throughput / latency vs delta "
              "(n = 7, honest, Delta_bnd = 600 ms)\n");
  std::printf("%-8s | %-19s | %-19s | %-19s | %-19s | %-19s\n", "delta", "ICC0 (2d / 3d)",
              "ICC1 (2d / 3d)", "ICC2 (3d / 4d)", "HotStuff (2d / 6d)",
              "Tendermint (O(D))");
  std::printf("---------+---------------------+---------------------+---------------------+"
              "---------------------+---------------------\n");
  std::vector<BenchResult> results;
  auto record = [&](const char* proto, int delta_ms, const Measured& m) {
    std::string prefix = std::string(proto) + "/delta" + std::to_string(delta_ms);
    results.push_back({prefix + "/recip_ms", m.recip_ms, "ms"});
    results.push_back({prefix + "/latency_ms", m.latency_ms, "ms"});
  };
  for (int delta_ms : {5, 10, 20, 40, 80}) {
    sim::Duration delta = sim::msec(delta_ms);
    Measured icc0 = run_icc(harness::Protocol::kIcc0, delta, delta_bnd);
    Measured icc1 = run_icc(harness::Protocol::kIcc1, delta, delta_bnd);
    Measured icc2 = run_icc(harness::Protocol::kIcc2, delta, delta_bnd);
    Measured hs = run_baseline(harness::BaselineKind::kHotStuff, delta, delta_bnd);
    Measured tm = run_baseline(harness::BaselineKind::kTendermint, delta, delta_bnd);
    std::printf("%4d ms  | %7.1f / %7.1f ms | %7.1f / %7.1f ms | %7.1f / %7.1f ms | "
                "%7.1f / %7.1f ms | %7.1f / %7.1f ms\n",
                delta_ms, icc0.recip_ms, icc0.latency_ms, icc1.recip_ms, icc1.latency_ms,
                icc2.recip_ms, icc2.latency_ms, hs.recip_ms, hs.latency_ms, tm.recip_ms,
                tm.latency_ms);
    record("icc0", delta_ms, icc0);
    record("icc1", delta_ms, icc1);
    record("icc2", delta_ms, icc2);
    record("hotstuff", delta_ms, hs);
    record("tendermint", delta_ms, tm);
  }
  std::printf("\nEach cell: reciprocal throughput / commit latency. Expected shapes:\n"
              "ICC0/ICC1 track 2d/3d, ICC2 3d/4d (one extra dispersal hop), HotStuff\n"
              "2d but ~6-7d latency (3-chain), Tendermint pinned at Delta_bnd-scale\n"
              "regardless of d (not optimistically responsive).\n");
  if (!write_bench_json(json_path, "latency_throughput",
                        "\"n\":7,\"t\":2,\"seed\":11,\"window_s\":20,"
                        "\"deltas_ms\":[5,10,20,40,80]",
                        results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::printf("wrote %s\n", json_path);
  return 0;
}
