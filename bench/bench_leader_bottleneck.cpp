// F-BOT: the leader bottleneck as *latency*, under egress-bandwidth
// queueing (the observation of Mir-BFT [35] that motivates ICC1/ICC2:
// "it is not the communication complexity that is important, but the
// communication bottlenecks").
//
// Every party gets a 100 Mbit/s uplink through which its sends serialize.
// With ICC0, a proposer's broadcast of a large block is n-1 sequential
// uploads — at 1 MB and n = 13 that is ~1 s of wire time before the last
// peer even starts receiving, and every echoing party pays it again. ICC1's
// pull gossip and ICC2's erasure-coded dispersal cut the serialized volume
// per party to ~1 and ~n/k block equivalents respectively.
#include <cstdio>

#include "harness/cluster.hpp"

namespace {
using namespace icc;

double commit_latency_ms(harness::Protocol proto, size_t block_size) {
  harness::ClusterOptions o;
  o.n = 13;
  o.t = 4;
  o.seed = 97;
  o.protocol = proto;
  o.delta_bnd = sim::seconds(4);  // generous; we measure the happy path
  o.payload_size = block_size;
  o.record_payloads = false;
  o.prune_lag = 4;
  o.max_round = 10;
  o.delay_model = [](size_t n, uint64_t) {
    // 10 ms propagation + 100 Mbit/s (12.5 B/us) serialized uplink per party.
    return std::make_unique<sim::QueuedDelay>(
        std::make_unique<sim::FixedDelay>(sim::msec(10)), n, 12.5);
  };
  harness::Cluster c(o);
  c.run_for(sim::seconds(120));
  return c.avg_latency_ms();
}

}  // namespace

int main() {
  std::printf("F-BOT: commit latency with 100 Mbit/s per-party uplinks (n = 13)\n");
  std::printf("%10s | %12s | %12s | %12s\n", "block S", "ICC0 ms", "ICC1 ms", "ICC2 ms");
  std::printf("-----------+--------------+--------------+-------------\n");
  for (size_t s : {16u * 1024, 128u * 1024, 512u * 1024, 1024u * 1024}) {
    double icc0 = commit_latency_ms(harness::Protocol::kIcc0, s);
    double icc1 = commit_latency_ms(harness::Protocol::kIcc1, s);
    double icc2 = commit_latency_ms(harness::Protocol::kIcc2, s);
    std::printf("%7zu KB | %12.1f | %12.1f | %12.1f\n", s / 1024, icc0, icc1, icc2);
  }
  std::printf("\nExpected: at small S all protocols sit near their 3-4 hop floors;\n"
              "as S grows, ICC0's latency blows up with the n-1 sequential uploads\n"
              "per (re)broadcast, ICC1 grows like ~2 upload units (pull + serve),\n"
              "and ICC2 like ~n/k fragment uploads — the bottleneck argument of\n"
              "[35], reproduced as end-to-end latency.\n");
  return 0;
}
