// F-MSG: message complexity per round vs n.
//
// Paper (Section 1): in a synchronous round the expected message complexity
// is O(n^2) (with overwhelming probability over the beacon); the worst case
// over adversarial behaviour/asynchrony is O(n^3). This bench measures
// wire messages per round for a sweep of n, in three regimes:
//   sync      — honest parties, synchronous network;
//   byzantine — t equivocating + share-withholding corrupt parties;
//   reorder   — adversarial scheduling: per-message delays up to ~8x the
//               delay-function unit, so blocks of many ranks become eligible
//               and get proposed/echoed before any notarization completes
//               (the O(n^3)-trending regime).
// The printed msgs/round/n^2 column should stay ~constant in the sync
// column (that is the O(n^2)) and grow in the adversarial ones.
#include <cstdio>

#include "harness/cluster.hpp"

namespace {

using namespace icc;

double messages_per_round(harness::ClusterOptions o, bool reorder) {
  o.record_payloads = false;
  o.prune_lag = 8;
  o.payload_size = 128;
  if (reorder) {
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::UniformDelay>(sim::msec(10), sim::msec(2500));
    };
  } else {
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(10));
    };
  }
  harness::Cluster c(o);
  c.run_for(sim::seconds(20));
  size_t rounds = 0;
  for (size_t i = 0; i < o.n; ++i) {
    if (c.party(i)) rounds = std::max<size_t>(rounds, c.party(i)->current_round());
  }
  if (rounds == 0) return 0;
  return static_cast<double>(c.sim().network().metrics().total_messages) /
         static_cast<double>(rounds);
}

}  // namespace

int main() {
  std::printf("F-MSG: wire messages per round (n sweep, ICC0)\n");
  std::printf("%4s | %12s %12s | %12s %12s | %12s %12s\n", "n", "sync", "/n^2",
              "byzantine", "/n^2", "reorder", "/n^2");
  std::printf("-----+---------------------------+---------------------------+"
              "--------------------------\n");
  for (size_t n : {4, 7, 10, 13, 19, 28, 40}) {
    size_t t = (n - 1) / 3;
    harness::ClusterOptions base;
    base.n = n;
    base.t = t;
    base.seed = 21 + n;
    base.delta_bnd = sim::msec(150);

    double sync = messages_per_round(base, false);

    harness::ClusterOptions byz = base;
    consensus::ByzantineBehavior b;
    b.equivocate = true;
    b.withhold_finalization = true;
    for (size_t i = 0; i < t; ++i)
      byz.corrupt.emplace_back(static_cast<sim::PartyIndex>(3 * i + 1), b);
    double byzantine = messages_per_round(byz, false);

    double reorder = messages_per_round(base, true);

    double n2 = static_cast<double>(n) * static_cast<double>(n);
    std::printf("%4zu | %12.0f %12.2f | %12.0f %12.2f | %12.0f %12.2f\n", n, sync,
                sync / n2, byzantine, byzantine / n2, reorder, reorder / n2);
  }
  std::printf("\nFinding: the sync '/n^2' column is flat — O(n^2) with overwhelming\n"
              "probability, as claimed. Equivocating corrupt parties add ~8%% (extra\n"
              "echoes and disqualification traffic). Notably, even adversarial\n"
              "reordering barely inflates the count: the delay functions are\n"
              "self-clocked (a rank-r party waits 2*Delta*r on ITS OWN round clock\n"
              "before proposing), so higher ranks rarely inject blocks before some\n"
              "notarization completes. The O(n^3) bound is a loose worst case; the\n"
              "protocol's 'robust' design keeps real executions near the optimum.\n");
  return 0;
}
