// F-RBC: block dissemination cost — per-party bits per round vs block size.
//
// Paper (Section 1): with blocks of size S = Omega(n lambda log n), the
// total number of bits transmitted by each party per ICC2 round is O(S)
// (erasure-coded reliable broadcast), versus the leader transmitting
// O(n * S) under direct push (ICC0) — the bottleneck problem; ICC1's gossip
// also spreads the load but still moves ~S per party plus pull overhead.
//
// This bench sweeps S for n = 13 and n = 40 and reports, per protocol:
//   max-bytes-sent-per-party / S   (the bottleneck, in block-size units)
//   total-bytes / (n * S)          (aggregate dissemination efficiency)
#include <cstdio>

#include "harness/cluster.hpp"

namespace {
using namespace icc;

struct Cost {
  double bottleneck_over_s;
  double total_over_ns;
};

Cost run(harness::Protocol proto, size_t n, size_t t, size_t block_size) {
  harness::ClusterOptions o;
  o.n = n;
  o.t = t;
  o.seed = 51;
  o.protocol = proto;
  o.delta_bnd = sim::msec(400);
  o.payload_size = block_size;
  o.record_payloads = false;
  o.prune_lag = 4;
  o.max_round = 6;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(15));
  };
  harness::Cluster c(o);
  c.run_for(sim::seconds(30));
  size_t rounds = c.party(0)->current_round();
  if (rounds < 2) return {0, 0};
  const auto& m = c.sim().network().metrics();
  double per_round_bottleneck =
      static_cast<double>(m.max_bytes_sent()) / static_cast<double>(rounds);
  double per_round_total =
      static_cast<double>(m.total_bytes) / static_cast<double>(rounds);
  Cost cost;
  cost.bottleneck_over_s = per_round_bottleneck / static_cast<double>(block_size);
  cost.total_over_ns =
      per_round_total / (static_cast<double>(n) * static_cast<double>(block_size));
  return cost;
}
}  // namespace

int main() {
  for (auto [n, t] : {std::pair<size_t, size_t>{13, 4}, std::pair<size_t, size_t>{40, 13}}) {
    std::printf("F-RBC: n = %zu (k = n - 2t = %zu). Entries: bottleneck/S, total/(nS)\n",
                n, n - 2 * t);
    std::printf("%10s | %16s | %16s | %16s\n", "block S", "ICC0 (push)", "ICC1 (gossip)",
                "ICC2 (RS-RBC)");
    std::printf("-----------+------------------+------------------+------------------\n");
    for (size_t s : {64u * 1024, 256u * 1024, 1024u * 1024}) {
      Cost c0 = run(harness::Protocol::kIcc0, n, t, s);
      Cost c1 = run(harness::Protocol::kIcc1, n, t, s);
      Cost c2 = run(harness::Protocol::kIcc2, n, t, s);
      std::printf("%7zu KB | %7.1f, %6.2f | %7.1f, %6.2f | %7.1f, %6.2f\n", s / 1024,
                  c0.bottleneck_over_s, c0.total_over_ns, c1.bottleneck_over_s,
                  c1.total_over_ns, c2.bottleneck_over_s, c2.total_over_ns);
    }
    std::printf("\n");
  }
  std::printf("Expected: ICC0's bottleneck is ~n block-copies per round and grows\n"
              "with n (every party pushes the block it echoes to all peers); ICC1\n"
              "drops to a handful of copies at the busiest party, roughly flat in n;\n"
              "ICC2's bottleneck is ~n/k ~ 3 copies *independent of n*, and its\n"
              "total/(nS) stays ~n/k (the erasure-code rate) — the O(S)-per-party\n"
              "claim of the paper.\n");
  return 0;
}
