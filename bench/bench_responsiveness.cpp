// F-OPT: optimistic responsiveness — round time tracks the actual network
// delay delta, not the pessimistic bound Delta_bnd.
//
// Paper (Section 1): "the ICC protocols enjoy the property known as
// optimistic responsiveness [30], meaning that the protocol will run as fast
// as the network will allow in those rounds where the leader is honest."
// Tendermint is the contrast: its rounds take O(Delta_bnd) regardless.
//
// Sweep delta with Delta_bnd pinned at 300 ms; print mean round time.
#include <cstdio>

#include "harness/baseline_cluster.hpp"
#include "harness/cluster.hpp"

namespace {
using namespace icc;

double icc_round_ms(sim::Duration delta) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 61;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 128;
  o.record_payloads = false;
  o.prune_lag = 8;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::Cluster c(o);
  c.run_for(sim::seconds(20));
  size_t rounds = c.party(0)->current_round();
  return rounds > 1 ? 20000.0 / static_cast<double>(rounds) : 0;
}

double tendermint_round_ms(sim::Duration delta) {
  harness::BaselineOptions o;
  o.kind = harness::BaselineKind::kTendermint;
  o.n = 7;
  o.t = 2;
  o.seed = 61;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 128;
  o.record_payloads = false;
  o.delay_model = [delta](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(delta);
  };
  harness::BaselineCluster c(o);
  c.run_for(sim::seconds(20));
  size_t heights = c.party(0)->committed().size();
  return heights > 1 ? 20000.0 / static_cast<double>(heights) : 0;
}
}  // namespace

int main() {
  std::printf("F-OPT: mean round time with Delta_bnd = 300 ms fixed (n = 7, honest)\n");
  std::printf("%-10s | %-16s | %-20s\n", "delta", "ICC0 (~2*delta)", "Tendermint (~Delta_bnd)");
  std::printf("-----------+------------------+----------------------\n");
  for (int d : {2, 5, 10, 25, 50, 100}) {
    double icc = icc_round_ms(sim::msec(d));
    double tm = tendermint_round_ms(sim::msec(d));
    std::printf("%6d ms  | %12.1f ms  | %16.1f ms\n", d, icc, tm);
  }
  std::printf("\nExpected: the ICC column scales ~2x delta (plus scheduling slack);\n"
              "the Tendermint column is pinned near Delta_bnd + 3*delta — it cannot\n"
              "exploit a fast network (not optimistically responsive).\n");
  return 0;
}
