// F-ROB: robust consensus — graceful degradation under Byzantine behaviour.
//
// Paper (Section 1, "Robust consensus", citing Clement et al. [15]):
//   * a corrupt-leader round finishes in O(Delta_bnd) instead of O(delta) —
//     the *only* degradation ICC suffers;
//   * PBFT-style protocols see throughput collapse to ~zero under a silent
//     leader until a view change fires (and repeatedly so with several
//     corrupt parties in the leader schedule).
//
// Output: (a) windowed throughput time series for ICC0 and PBFT-lite with
// faults switching on at t = 10 s; (b) ICC round duration distribution split
// by honest-leader vs corrupt-leader rounds.
#include <cstdio>

#include "harness/baseline_cluster.hpp"
#include "harness/cluster.hpp"

namespace {
using namespace icc;

std::vector<double> windowed_throughput(const std::vector<sim::Time>& commits,
                                        sim::Duration window, sim::Time end) {
  std::vector<double> out;
  for (sim::Time t0 = 0; t0 < end; t0 += window) {
    size_t count = 0;
    for (sim::Time c : commits)
      if (c >= t0 && c < t0 + window) ++count;
    out.push_back(static_cast<double>(count) / sim::to_sec(window));
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  const sim::Duration window = sim::seconds(5);
  const sim::Time end = sim::seconds(40);
  // Optional sink for the ICC run's windowed series (icc-series/v1 JSONL).
  const char* series_path = argc > 1 ? argv[1] : nullptr;

  // --- (a) windowed throughput, faults from the start -------------------
  std::printf("F-ROB (a): committed blocks/s in 5-s windows, n = 7, t = 2 corrupt\n\n");

  // The ICC windows come from the obs::TimeSeries recorder (one window per
  // 5 s of virtual time) instead of an ad-hoc commit-time scan — the same
  // stream icc_soak emits, so the numbers here and a soak run's are
  // directly comparable.
  std::vector<double> icc_tp;
  {
    harness::ClusterOptions o;
    o.n = 7;
    o.t = 2;
    o.seed = 41;
    o.delta_bnd = sim::msec(300);
    o.payload_size = 128;
    o.record_payloads = false;
    o.prune_lag = 8;
    o.obs.enabled = true;
    o.obs.series = true;
    o.obs.series_window_us = window;
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(10));
    };
    consensus::ByzantineBehavior b;
    b.withhold_proposal = true;  // corrupt leaders propose nothing
    b.withhold_finalization = true;
    o.corrupt = {{1, b}, {4, b}};
    harness::Cluster c(o);
    if (series_path && !c.stream_series(series_path))
      std::fprintf(stderr, "cannot open series sink %s\n", series_path);
    c.run_for(end);
    const size_t honest = o.n - o.corrupt.size();
    for (const obs::SeriesWindow* w : c.series()->windows()) {
      uint64_t committed = 0;  // counter delta, summed over honest parties
      for (const auto& [name, delta] : w->counters)
        if (name == "consensus.blocks_committed") committed = delta;
      icc_tp.push_back(static_cast<double>(committed) / static_cast<double>(honest) /
                       sim::to_sec(window * static_cast<sim::Duration>(w->res)));
    }
    auto safety = c.check_safety();
    if (safety) std::fprintf(stderr, "SAFETY: %s\n", safety->c_str());
  }

  auto run_pbft = [&](bool crash_leaders, bool throttle_leader) {
    harness::BaselineOptions o;
    o.kind = harness::BaselineKind::kPbft;
    o.n = 7;
    o.t = 2;
    o.seed = 41;
    o.delta_bnd = sim::msec(300);
    o.payload_size = 128;
    o.record_payloads = false;
    if (crash_leaders) o.crashed = {0, 1};
    if (throttle_leader) {
      // Stay just under the 4 * Delta_bnd = 1200 ms view-change timeout:
      // undetectable, caps throughput at < 1 block/s forever ([15]).
      o.pbft_propose_delay[0] = sim::msec(1100);
    }
    harness::BaselineCluster c(o);
    c.run_for(end);
    std::vector<sim::Time> commits;
    for (const auto& blk : c.party(crash_leaders ? 2 : 3)->committed())
      commits.push_back(blk.committed_at);
    return commits;
  };

  auto pbft_crash_tp = windowed_throughput(run_pbft(true, false), window, end);
  auto pbft_slow_tp = windowed_throughput(run_pbft(false, true), window, end);
  std::printf("%-22s", "window");
  for (size_t i = 0; i < icc_tp.size(); ++i) std::printf(" %5zu-%zus", i * 5, i * 5 + 5);
  std::printf("\n%-22s", "ICC0 (2 withholding)");
  for (double v : icc_tp) std::printf(" %8.2f", v);
  std::printf("\n%-22s", "PBFT (leaders crash)");
  for (double v : pbft_crash_tp) std::printf(" %8.2f", v);
  std::printf("\n%-22s", "PBFT (slow leader)");
  for (double v : pbft_slow_tp) std::printf(" %8.2f", v);
  std::printf("\n\nICC degrades smoothly and keeps a steady rate forever (corrupt-leader\n"
              "rounds just take ~Delta_bnd). PBFT with crashed leaders stalls at ~0\n"
              "through its view changes, then races (a stable honest leader remains);\n"
              "but a *throttling* leader — the undetectable attack of [15] — caps PBFT\n"
              "below 1 block/s indefinitely, the \"throughput drops to zero\" failure\n"
              "mode the paper's robustness argument targets.\n\n");

  // --- (b) round duration by leader honesty -----------------------------
  std::printf("F-ROB (b): ICC0 round duration by round-leader honesty\n");
  {
    harness::ClusterOptions o;
    o.n = 7;
    o.t = 2;
    o.seed = 43;
    o.delta_bnd = sim::msec(300);
    o.payload_size = 128;
    o.record_payloads = false;
    o.prune_lag = 8;
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(10));
    };
    consensus::ByzantineBehavior b;
    b.withhold_proposal = true;
    o.corrupt = {{1, b}, {4, b}};

    // Round durations from party 0's commit times (P1: one block per round;
    // the duration distribution is bimodal — fast mode ~O(delta) when the
    // leader is honest, slow mode ~Delta_ntry(1) = 2*Delta_bnd when the
    // (withholding) corrupt leader's rank-1 backup steps in).
    std::vector<sim::Time> commit_at;
    o.on_commit = [&](sim::PartyIndex self, const consensus::CommittedBlock& blk) {
      if (self == 0) commit_at.push_back(blk.committed_at);
    };
    harness::Cluster c(o);
    c.run_for(sim::seconds(60));

    size_t fast = 0, slow = 0;
    double fast_sum = 0, slow_sum = 0;
    for (size_t i = 1; i < commit_at.size(); ++i) {
      double dur = sim::to_ms(commit_at[i] - commit_at[i - 1]);
      if (dur < 300.0) {
        fast++;
        fast_sum += dur;
      } else {
        slow++;
        slow_sum += dur;
      }
    }
    double slow_frac = (fast + slow) ? static_cast<double>(slow) / (fast + slow) : 0;
    std::printf("  fast rounds (honest leader):  %4zu, avg %6.1f ms  (O(delta) ~ 30 ms)\n",
                fast, fast ? fast_sum / fast : 0);
    std::printf("  slow rounds (corrupt leader): %4zu, avg %6.1f ms  (O(Delta_bnd) ~ 600 ms)\n",
                slow, slow ? slow_sum / slow : 0);
    std::printf("  slow fraction %.2f vs corrupt fraction 2/7 = %.2f — the beacon picks\n"
                "  a corrupt leader with exactly that probability.\n", slow_frac, 2.0 / 7.0);
  }
  return 0;
}
