// F-RND: round complexity — rounds until a block is finalized.
//
// Paper (Section 1): under a static adversary the number of rounds until a
// committed (finalized) block is O(1) in expectation and O(log n) w.h.p.
// Finalization in round k requires that no honest party notarization-shared
// two blocks in round k — an honest leader on a synchronous network gives
// this immediately, so gaps between finalized rounds are geometric with
// p >= 2/3.
//
// This bench runs ICC0 with t Byzantine parties (equivocating + withholding
// finalization — the behaviour that maximizes finalization gaps) and prints
// the distribution of gaps between consecutive finalized rounds.
#include <cstdio>
#include <map>

#include "harness/cluster.hpp"

namespace {
using namespace icc;
}

int main() {
  std::printf("F-RND: gaps between consecutive finalized rounds (ICC0, t Byzantine)\n");
  std::printf("%4s | %8s | %8s | %22s | gap histogram (1,2,3,4+)\n", "n", "rounds",
              "mean gap", "p99 gap (O(log n)?)");
  std::printf("-----+----------+----------+------------------------+------------------\n");

  for (size_t n : {4, 7, 13, 19, 31}) {
    size_t t = (n - 1) / 3;
    harness::ClusterOptions o;
    o.n = n;
    o.t = t;
    o.seed = 31 + n;
    o.delta_bnd = sim::msec(120);
    o.payload_size = 64;
    o.record_payloads = false;
    o.prune_lag = 8;
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(8));
    };
    consensus::ByzantineBehavior b;
    b.equivocate = true;
    b.withhold_finalization = true;
    for (size_t i = 0; i < t; ++i)
      o.corrupt.emplace_back(static_cast<sim::PartyIndex>(2 * i + 1), b);
    harness::Cluster c(o);
    c.run_for(sim::seconds(60));

    // Gap sequence from the first honest party's committed rounds.
    const consensus::Icc0Party* p = nullptr;
    for (size_t i = 0; i < n && !p; ++i)
      if (c.is_honest(i)) p = c.party(i);
    std::vector<uint32_t> finalized_rounds;
    // committed() lists every round (each round commits exactly one block);
    // a "finalized round" is one where the commit happened because of its own
    // finalization — approximate via commit-time grouping: all blocks sharing
    // one committed_at belong to one finalization.
    std::map<sim::Time, uint32_t> last_round_at;
    for (const auto& blk : p->committed()) {
      last_round_at[blk.committed_at] = std::max(last_round_at[blk.committed_at], blk.round);
    }
    std::vector<uint32_t> gaps;
    uint32_t prev = 0;
    for (const auto& [at, round] : last_round_at) {
      gaps.push_back(round - prev);
      prev = round;
    }
    if (gaps.empty()) {
      std::printf("%4zu | (no finalizations)\n", n);
      continue;
    }
    double mean = 0;
    std::map<uint32_t, size_t> hist;
    for (uint32_t g : gaps) {
      mean += g;
      hist[std::min<uint32_t>(g, 4)]++;
    }
    mean /= static_cast<double>(gaps.size());
    std::vector<uint32_t> sorted = gaps;
    std::sort(sorted.begin(), sorted.end());
    uint32_t p99 = sorted[(sorted.size() * 99) / 100];
    std::printf("%4zu | %8u | %8.2f | %22u | %zu, %zu, %zu, %zu\n", n, prev, mean, p99,
                hist[1], hist[2], hist[3], hist[4]);
  }
  std::printf("\nExpected: mean gap stays O(1) (< ~2) across n; the p99 gap grows at\n"
              "most logarithmically. Every round still adds one block to the chain\n"
              "(P1) — gaps only delay *when* rounds get finalized, not throughput.\n");
  return 0;
}
