// Table 1 reproduction: "Average block rate and sent traffic" for a small
// (13-node) and a large (40-node) subnet under three scenarios:
//   (a) without load           — blocks carry only management information,
//   (b) with load              — 100 state-changing requests/s of 1 KB each,
//   (c) with load and node failures — one third of the nodes silent.
//
// Setup mirrors Section 5: ICC1 with the gossip sub-layer over a WAN whose
// ping RTTs lie in 6-110 ms with loss < 0.001. Two knobs the paper does not
// publish are calibrated once, and documented in EXPERIMENTS.md:
//   * epsilon (the "governor" of eq. 2) — set per subnet size to land the
//     no-load block rate near the deployment's (1.09 / 0.41 blocks/s);
//   * per-block management payload (the deployment's blocks are never empty:
//     ingress metadata, signature batches, etc.).
// The absolute Mb/s cannot match the paper exactly (their numbers include
// client chatter, key resharing, logs and metrics; Section 5 says so); the
// comparison targets the paper's *shape*: load adds ~3 Mb/s of gossip
// traffic, failures cut the block rate ~2.5x and reduce traffic.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cluster.hpp"
#include "smr/smr.hpp"

namespace {

using namespace icc;

struct Scenario {
  const char* name;
  bool load;
  bool failures;
};

struct Row {
  double blocks_per_s;
  double mbps;
};

Row run_scenario(size_t n, size_t t, bool load, bool failures, sim::Duration window,
                 sim::Duration epsilon, sim::Duration delta_bnd) {
  std::vector<std::shared_ptr<smr::CommandQueue>> queues(n);
  std::vector<std::shared_ptr<smr::Replica>> replicas(n);
  for (size_t i = 0; i < n; ++i) {
    queues[i] = std::make_shared<smr::CommandQueue>();
    replicas[i] = std::make_shared<smr::Replica>(queues[i], std::make_shared<smr::KvStore>());
  }

  harness::ClusterOptions o;
  o.n = n;
  o.t = t;
  o.protocol = harness::Protocol::kIcc1;
  o.seed = 1234 + n;
  o.delta_bnd = delta_bnd;
  o.epsilon = epsilon;
  o.record_payloads = true;  // replicas need the command batches
  o.prune_lag = 8;
  o.delay_model = [](size_t num, uint64_t seed) {
    sim::WanDelay::Config wan;
    wan.n = num;
    wan.seed = seed;
    wan.loss_probability = 0.0005;
    return std::make_unique<sim::WanDelay>(wan);
  };
  o.payload_factory = [&](sim::PartyIndex i) { return queues[i]; };
  o.on_commit = [&](sim::PartyIndex self, const consensus::CommittedBlock& b) {
    replicas[self]->on_commit(b);
  };
  if (failures) {
    for (size_t i = 0; i < n / 3; ++i) {
      o.corrupt.emplace_back(static_cast<sim::PartyIndex>(3 * i + 2), harness::Crashed{});
    }
  }
  harness::Cluster cluster(o);

  // Every block carries management information (the deployment's no-load
  // blocks are far from empty); modeled as a fixed 48 KB command.
  uint64_t next_id = 1;
  const size_t kManagementBytes = 48 * 1024;
  std::function<void()> mgmt_pump = [&] {
    smr::Command cmd;
    cmd.id = next_id++;
    cmd.data.assign(kManagementBytes, 0x11);
    for (size_t p = 0; p < n; ++p) {
      if (replicas[p]) replicas[p]->submit(cmd);
    }
    if (cluster.sim().engine().now() < window) {
      cluster.sim().engine().schedule_after(sim::msec(500), mgmt_pump);
    }
  };
  cluster.sim().engine().schedule_at(0, mgmt_pump);

  // 100 requests/s x 1 KB, pumped every 100 ms. Ingress messages reach every
  // replica (the deployment gossips them subnet-wide), so whichever party
  // the beacon ranks first can include them. Declared at function scope:
  // scheduled events reference this object during run_for.
  std::function<void()> load_pump = [&] {
    for (int i = 0; i < 10; ++i) {
      smr::Command cmd;
      cmd.id = next_id++;
      cmd.data.assign(1024, 0x5a);
      for (size_t p = 0; p < n; ++p) replicas[p]->submit(cmd);
    }
    if (cluster.sim().engine().now() < window) {
      cluster.sim().engine().schedule_after(sim::msec(100), load_pump);
    }
  };
  if (load) cluster.sim().engine().schedule_at(0, load_pump);

  cluster.run_for(window);

  auto safety = cluster.check_safety();
  if (safety) std::fprintf(stderr, "SAFETY VIOLATION: %s\n", safety->c_str());

  const auto& m = cluster.sim().network().metrics();
  double secs = sim::to_sec(window);
  Row row;
  row.blocks_per_s = cluster.blocks_per_second(window);
  double sum = 0;
  size_t live = 0;
  for (size_t i = 0; i < n; ++i) {
    if (m.bytes_sent[i] == 0) continue;  // crashed nodes send nothing
    sum += static_cast<double>(m.bytes_sent[i]) * 8.0 / 1e6 / secs;
    live++;
  }
  row.mbps = live ? sum / static_cast<double>(live) : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  int window_s = 30;
  const char* json_path = "BENCH_table1.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      window_s = atoi(argv[i]);
    }
  }
  sim::Duration window = sim::seconds(window_s);

  const Scenario scenarios[] = {{"without load", false, false},
                                {"with load", true, false},
                                {"load + failures", true, true}};

  struct SubnetSpec {
    size_t n, t;
    sim::Duration epsilon;
    sim::Duration delta_bnd;
    double paper_rate[3];
    double paper_mbps[3];
  };
  // epsilon calibrated once to the deployment's no-load block rate;
  // delta_bnd grows with subnet size (larger subnets get more conservative
  // bounds, which is also what makes their failure scenario slower).
  const SubnetSpec subnets[] = {
      {13, 4, sim::msec(800), sim::msec(900), {1.09, 1.10, 0.45}, {1.64, 4.72, 4.39}},
      {40, 13, sim::msec(2300), sim::msec(2000), {0.41, 0.41, 0.16}, {4.63, 7.32, 5.06}},
  };

  std::printf("Table 1: average block rate and sent traffic (window %.0f s)\n",
              sim::to_sec(window));
  std::printf("%-10s %-18s %-24s %-24s\n", "subnet", "scenario", "blocks/s (paper)",
              "Mb/s per node (paper)");
  std::printf("--------------------------------------------------------------------------\n");
  // Named scalars for the committed BENCH_table1.json baseline (schema
  // icc-bench/v1). Virtual-time-derived, so identical on any machine.
  struct NamedResult {
    std::string name;
    double value;
    const char* unit;
  };
  std::vector<NamedResult> results;
  const char* scenario_key[] = {"no_load", "load", "load_failures"};
  for (const auto& sub : subnets) {
    for (int s = 0; s < 3; ++s) {
      Row r = run_scenario(sub.n, sub.t, scenarios[s].load, scenarios[s].failures, window,
                           sub.epsilon, sub.delta_bnd);
      std::printf("%2zu nodes   %-18s %6.2f   (%4.2f)        %6.2f   (%4.2f)\n", sub.n,
                  scenarios[s].name, r.blocks_per_s, sub.paper_rate[s], r.mbps,
                  sub.paper_mbps[s]);
      std::string prefix = "n" + std::to_string(sub.n) + "/" + scenario_key[s];
      results.push_back({prefix + "/blocks_per_s", r.blocks_per_s, "blocks/s"});
      results.push_back({prefix + "/mbps_per_node", r.mbps, "Mb/s"});
    }
  }
  std::printf("\nNotes: paper traffic includes non-consensus overhead (clients, key\n"
              "resharing, logs, metrics); this harness counts consensus + gossip\n"
              "traffic only. The shape to check: load adds ~3 Mb/s, failures cut\n"
              "block rate ~2.5x and reduce per-node traffic; larger subnets are\n"
              "slower but chattier.\n");

  std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  out << "{\"schema\":\"icc-bench/v1\",\"bench\":\"table1\",\"config\":{\"window_s\":"
      << window_s << ",\"subnets\":[13,40],\"seed_base\":1234},\"results\":[";
  char buf[64];
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) out << ",";
    std::snprintf(buf, sizeof buf, "%.3f", results[i].value);
    out << "\n  {\"name\":\"" << results[i].name << "\",\"value\":" << buf
        << ",\"unit\":\"" << results[i].unit << "\"}";
  }
  out << "\n]}\n";
  std::printf("wrote %s\n", json_path);
  return 0;
}
