// Staged ingress pipeline: real-crypto cost of a committed block with the
// dedup + memoization + batch-verification stages on vs off (DESIGN.md,
// "Staged ingress pipeline").
//
// Signature verification dominates BFT CPU budgets; in a committee of n
// every artifact is verified once per receiving party, and the echo-heavy
// dissemination of ICC means the same bytes arrive many times. The pipeline
// attacks this three ways: exact duplicates die on a hash before any crypto,
// repeated verifications of the same artifact are answered from a bounded
// verdict cache (own signatures are primed at signing time), and the
// remaining share checks are batched into one Ed25519 multi-exponentiation
// at combine time. This bench measures the end-to-end effect under the real
// Ed25519/DVRF provider at n = 16.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/cluster.hpp"

namespace {
using namespace icc;

// --threads N (0 = ICC_THREADS/default). Batch share verifications are
// sliced across the pool; every count below comes from virtual time, so
// only the wall-clock rows may move with N.
size_t g_threads = 0;
// --intern on|off (default on): cluster-shared artifact interning
// (DESIGN.md §7). Off models per-replica CPU honestly; on shows the
// cluster-wide cost. The per-party (logical) counters are identical
// either way — only the intern rows and wall clock move.
bool g_intern = true;

struct RunResult {
  size_t committed = 0;
  pipeline::Verifier::Stats verifier;
  pipeline::PipelineStats ingress;
  pipeline::InternStore::Stats intern;
  double wall_s = 0;
};

RunResult run(bool stages_on, sim::Duration sim_time) {
  harness::ClusterOptions o;
  o.n = 16;
  o.t = 5;
  o.seed = 42;
  o.crypto = harness::CryptoKind::kReal;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 512;
  o.record_payloads = false;
  o.prune_lag = 8;
  o.threads = g_threads;
  o.intern = g_intern;
  if (!stages_on) {
    o.pipeline.dedup = false;
    o.pipeline.cache = false;
    o.pipeline.batch = false;
  }
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };

  auto t0 = std::chrono::steady_clock::now();
  harness::Cluster c(o);
  c.run_for(sim_time);
  auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.committed = c.min_honest_committed();
  r.verifier = c.verifier_stats();
  r.ingress = c.pipeline_stats();
  r.intern = c.intern_stats();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // Real crypto is slow; keep the simulated window short but long enough
  // for a stable per-block cost. Override via the first positional
  // argument (seconds); `--threads N` sizes the worker pool.
  int sim_seconds = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      g_threads = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--intern") == 0 && i + 1 < argc)
      g_intern = std::strcmp(argv[++i], "off") != 0;
    else
      sim_seconds = std::atoi(argv[i]);
  }
  std::printf("Verification pipeline (ICC0, n = 16, t = 5, real Ed25519/DVRF, %d s sim, intern %s)\n"
              "=========================================================================\n\n",
              sim_seconds, g_intern ? "on" : "off");

  RunResult off = run(false, sim::seconds(sim_seconds));
  RunResult on = run(true, sim::seconds(sim_seconds));

  auto per_block = [](const RunResult& r) {
    return r.committed ? static_cast<double>(r.verifier.provider_verifications) /
                             static_cast<double>(r.committed)
                       : 0.0;
  };

  std::printf("%-34s | %12s | %12s\n", "", "stages off", "stages on");
  std::printf("%-34s | %12zu | %12zu\n", "blocks committed (min honest)", off.committed,
              on.committed);
  std::printf("%-34s | %12llu | %12llu\n", "provider (real) verifications",
              (unsigned long long)off.verifier.provider_verifications,
              (unsigned long long)on.verifier.provider_verifications);
  std::printf("%-34s | %12.0f | %12.0f\n", "  ...per committed block", per_block(off),
              per_block(on));
  std::printf("%-34s | %12llu | %12llu\n", "cache hits",
              (unsigned long long)off.verifier.cache_hits,
              (unsigned long long)on.verifier.cache_hits);
  std::printf("%-34s | %12llu | %12llu\n", "verdicts primed at sign time",
              (unsigned long long)off.verifier.primed,
              (unsigned long long)on.verifier.primed);
  std::printf("%-34s | %12llu | %12llu\n", "combine share re-checks skipped",
              (unsigned long long)off.verifier.combine_share_checks_skipped,
              (unsigned long long)on.verifier.combine_share_checks_skipped);
  std::printf("%-34s | %12llu | %12llu\n", "batch verify calls",
              (unsigned long long)off.verifier.batch_calls,
              (unsigned long long)on.verifier.batch_calls);
  std::printf("%-34s | %12llu | %12llu\n", "duplicates dropped pre-crypto",
              (unsigned long long)off.ingress.duplicates,
              (unsigned long long)on.ingress.duplicates);
  std::printf("%-34s | %12llu | %12llu\n", "intern: real verifications",
              (unsigned long long)off.intern.real_verifications,
              (unsigned long long)on.intern.real_verifications);
  std::printf("%-34s | %12llu | %12llu\n", "intern: parses",
              (unsigned long long)off.intern.parses,
              (unsigned long long)on.intern.parses);
  std::printf("%-34s | %9.1f s  | %9.1f s\n", "wall clock", off.wall_s, on.wall_s);

  double speedup = per_block(on) > 0 ? per_block(off) / per_block(on) : 0;
  std::printf("\nreal verifications per committed block: %.0fx fewer with the pipeline\n",
              speedup);
  std::printf("wall-clock: %.2fx faster\n", on.wall_s > 0 ? off.wall_s / on.wall_s : 0);
  if (speedup < 2.0) {
    std::printf("WARNING: expected >= 2x reduction\n");
    return 1;
  }
  return 0;
}
