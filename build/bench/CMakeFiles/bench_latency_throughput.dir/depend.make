# Empty dependencies file for bench_latency_throughput.
# This may be replaced when dependencies are built.
