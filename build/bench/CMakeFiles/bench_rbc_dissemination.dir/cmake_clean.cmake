file(REMOVE_RECURSE
  "CMakeFiles/bench_rbc_dissemination.dir/bench_rbc_dissemination.cpp.o"
  "CMakeFiles/bench_rbc_dissemination.dir/bench_rbc_dissemination.cpp.o.d"
  "bench_rbc_dissemination"
  "bench_rbc_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rbc_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
