# Empty compiler generated dependencies file for bench_rbc_dissemination.
# This may be replaced when dependencies are built.
