file(REMOVE_RECURSE
  "CMakeFiles/bench_round_complexity.dir/bench_round_complexity.cpp.o"
  "CMakeFiles/bench_round_complexity.dir/bench_round_complexity.cpp.o.d"
  "bench_round_complexity"
  "bench_round_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_round_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
