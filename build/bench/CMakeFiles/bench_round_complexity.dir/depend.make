# Empty dependencies file for bench_round_complexity.
# This may be replaced when dependencies are built.
