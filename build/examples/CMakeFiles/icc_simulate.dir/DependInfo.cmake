
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/icc_simulate.cpp" "examples/CMakeFiles/icc_simulate.dir/icc_simulate.cpp.o" "gcc" "examples/CMakeFiles/icc_simulate.dir/icc_simulate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/icc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/smr/CMakeFiles/icc_smr.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/icc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/icc_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/gossip/CMakeFiles/icc_gossip.dir/DependInfo.cmake"
  "/root/repo/build/src/rbc/CMakeFiles/icc_rbc.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/icc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/icc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/icc_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/icc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
