file(REMOVE_RECURSE
  "CMakeFiles/icc_simulate.dir/icc_simulate.cpp.o"
  "CMakeFiles/icc_simulate.dir/icc_simulate.cpp.o.d"
  "icc_simulate"
  "icc_simulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_simulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
