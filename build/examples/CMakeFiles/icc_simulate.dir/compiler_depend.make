# Empty compiler generated dependencies file for icc_simulate.
# This may be replaced when dependencies are built.
