file(REMOVE_RECURSE
  "CMakeFiles/subnet_simulation.dir/subnet_simulation.cpp.o"
  "CMakeFiles/subnet_simulation.dir/subnet_simulation.cpp.o.d"
  "subnet_simulation"
  "subnet_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subnet_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
