# Empty compiler generated dependencies file for subnet_simulation.
# This may be replaced when dependencies are built.
