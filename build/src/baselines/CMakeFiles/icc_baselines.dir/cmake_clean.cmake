file(REMOVE_RECURSE
  "CMakeFiles/icc_baselines.dir/hotstuff.cpp.o"
  "CMakeFiles/icc_baselines.dir/hotstuff.cpp.o.d"
  "CMakeFiles/icc_baselines.dir/pbft.cpp.o"
  "CMakeFiles/icc_baselines.dir/pbft.cpp.o.d"
  "CMakeFiles/icc_baselines.dir/tendermint.cpp.o"
  "CMakeFiles/icc_baselines.dir/tendermint.cpp.o.d"
  "libicc_baselines.a"
  "libicc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
