file(REMOVE_RECURSE
  "libicc_baselines.a"
)
