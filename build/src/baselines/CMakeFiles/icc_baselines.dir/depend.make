# Empty dependencies file for icc_baselines.
# This may be replaced when dependencies are built.
