file(REMOVE_RECURSE
  "CMakeFiles/icc_codec.dir/gf256.cpp.o"
  "CMakeFiles/icc_codec.dir/gf256.cpp.o.d"
  "CMakeFiles/icc_codec.dir/merkle.cpp.o"
  "CMakeFiles/icc_codec.dir/merkle.cpp.o.d"
  "CMakeFiles/icc_codec.dir/reed_solomon.cpp.o"
  "CMakeFiles/icc_codec.dir/reed_solomon.cpp.o.d"
  "libicc_codec.a"
  "libicc_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
