file(REMOVE_RECURSE
  "libicc_codec.a"
)
