# Empty compiler generated dependencies file for icc_codec.
# This may be replaced when dependencies are built.
