file(REMOVE_RECURSE
  "CMakeFiles/icc_consensus.dir/byzantine.cpp.o"
  "CMakeFiles/icc_consensus.dir/byzantine.cpp.o.d"
  "CMakeFiles/icc_consensus.dir/icc0.cpp.o"
  "CMakeFiles/icc_consensus.dir/icc0.cpp.o.d"
  "CMakeFiles/icc_consensus.dir/icc1.cpp.o"
  "CMakeFiles/icc_consensus.dir/icc1.cpp.o.d"
  "CMakeFiles/icc_consensus.dir/icc2.cpp.o"
  "CMakeFiles/icc_consensus.dir/icc2.cpp.o.d"
  "CMakeFiles/icc_consensus.dir/permutation.cpp.o"
  "CMakeFiles/icc_consensus.dir/permutation.cpp.o.d"
  "libicc_consensus.a"
  "libicc_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
