file(REMOVE_RECURSE
  "libicc_consensus.a"
)
