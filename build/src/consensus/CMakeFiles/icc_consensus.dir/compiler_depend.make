# Empty compiler generated dependencies file for icc_consensus.
# This may be replaced when dependencies are built.
