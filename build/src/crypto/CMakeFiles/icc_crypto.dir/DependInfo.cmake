
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/beacon.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/beacon.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/beacon.cpp.o.d"
  "/root/repo/src/crypto/dleq.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/dleq.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/dleq.cpp.o.d"
  "/root/repo/src/crypto/ed25519.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/ed25519.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/ed25519.cpp.o.d"
  "/root/repo/src/crypto/fe25519.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/fe25519.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/fe25519.cpp.o.d"
  "/root/repo/src/crypto/multisig.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/multisig.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/multisig.cpp.o.d"
  "/root/repo/src/crypto/provider.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/provider.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/provider.cpp.o.d"
  "/root/repo/src/crypto/sc25519.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/sc25519.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/sc25519.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/sha512.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/sha512.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/icc_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/icc_crypto.dir/shamir.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/icc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
