file(REMOVE_RECURSE
  "CMakeFiles/icc_crypto.dir/beacon.cpp.o"
  "CMakeFiles/icc_crypto.dir/beacon.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/dleq.cpp.o"
  "CMakeFiles/icc_crypto.dir/dleq.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/ed25519.cpp.o"
  "CMakeFiles/icc_crypto.dir/ed25519.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/fe25519.cpp.o"
  "CMakeFiles/icc_crypto.dir/fe25519.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/multisig.cpp.o"
  "CMakeFiles/icc_crypto.dir/multisig.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/provider.cpp.o"
  "CMakeFiles/icc_crypto.dir/provider.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/sc25519.cpp.o"
  "CMakeFiles/icc_crypto.dir/sc25519.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/sha256.cpp.o"
  "CMakeFiles/icc_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/sha512.cpp.o"
  "CMakeFiles/icc_crypto.dir/sha512.cpp.o.d"
  "CMakeFiles/icc_crypto.dir/shamir.cpp.o"
  "CMakeFiles/icc_crypto.dir/shamir.cpp.o.d"
  "libicc_crypto.a"
  "libicc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
