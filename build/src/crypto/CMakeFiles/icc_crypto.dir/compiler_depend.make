# Empty compiler generated dependencies file for icc_crypto.
# This may be replaced when dependencies are built.
