file(REMOVE_RECURSE
  "CMakeFiles/icc_gossip.dir/gossip.cpp.o"
  "CMakeFiles/icc_gossip.dir/gossip.cpp.o.d"
  "libicc_gossip.a"
  "libicc_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
