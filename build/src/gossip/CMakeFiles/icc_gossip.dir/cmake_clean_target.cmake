file(REMOVE_RECURSE
  "libicc_gossip.a"
)
