# Empty dependencies file for icc_gossip.
# This may be replaced when dependencies are built.
