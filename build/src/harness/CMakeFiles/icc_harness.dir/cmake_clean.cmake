file(REMOVE_RECURSE
  "CMakeFiles/icc_harness.dir/cluster.cpp.o"
  "CMakeFiles/icc_harness.dir/cluster.cpp.o.d"
  "libicc_harness.a"
  "libicc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
