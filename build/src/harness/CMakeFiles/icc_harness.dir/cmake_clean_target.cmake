file(REMOVE_RECURSE
  "libicc_harness.a"
)
