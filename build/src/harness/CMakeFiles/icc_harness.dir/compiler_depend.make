# Empty compiler generated dependencies file for icc_harness.
# This may be replaced when dependencies are built.
