file(REMOVE_RECURSE
  "CMakeFiles/icc_rbc.dir/rbc.cpp.o"
  "CMakeFiles/icc_rbc.dir/rbc.cpp.o.d"
  "libicc_rbc.a"
  "libicc_rbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_rbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
