file(REMOVE_RECURSE
  "libicc_rbc.a"
)
