# Empty compiler generated dependencies file for icc_rbc.
# This may be replaced when dependencies are built.
