file(REMOVE_RECURSE
  "CMakeFiles/icc_sim.dir/engine.cpp.o"
  "CMakeFiles/icc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/icc_sim.dir/network.cpp.o"
  "CMakeFiles/icc_sim.dir/network.cpp.o.d"
  "libicc_sim.a"
  "libicc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
