file(REMOVE_RECURSE
  "libicc_sim.a"
)
