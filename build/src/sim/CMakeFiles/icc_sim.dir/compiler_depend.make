# Empty compiler generated dependencies file for icc_sim.
# This may be replaced when dependencies are built.
