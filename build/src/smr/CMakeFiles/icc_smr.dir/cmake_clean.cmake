file(REMOVE_RECURSE
  "CMakeFiles/icc_smr.dir/smr.cpp.o"
  "CMakeFiles/icc_smr.dir/smr.cpp.o.d"
  "libicc_smr.a"
  "libicc_smr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_smr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
