file(REMOVE_RECURSE
  "libicc_smr.a"
)
