# Empty dependencies file for icc_smr.
# This may be replaced when dependencies are built.
