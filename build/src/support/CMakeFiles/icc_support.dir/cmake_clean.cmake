file(REMOVE_RECURSE
  "CMakeFiles/icc_support.dir/bytes.cpp.o"
  "CMakeFiles/icc_support.dir/bytes.cpp.o.d"
  "CMakeFiles/icc_support.dir/log.cpp.o"
  "CMakeFiles/icc_support.dir/log.cpp.o.d"
  "CMakeFiles/icc_support.dir/rng.cpp.o"
  "CMakeFiles/icc_support.dir/rng.cpp.o.d"
  "libicc_support.a"
  "libicc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
