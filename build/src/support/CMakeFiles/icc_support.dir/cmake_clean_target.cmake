file(REMOVE_RECURSE
  "libicc_support.a"
)
