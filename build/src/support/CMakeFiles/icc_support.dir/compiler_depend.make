# Empty compiler generated dependencies file for icc_support.
# This may be replaced when dependencies are built.
