file(REMOVE_RECURSE
  "CMakeFiles/icc_types.dir/block.cpp.o"
  "CMakeFiles/icc_types.dir/block.cpp.o.d"
  "CMakeFiles/icc_types.dir/messages.cpp.o"
  "CMakeFiles/icc_types.dir/messages.cpp.o.d"
  "CMakeFiles/icc_types.dir/pool.cpp.o"
  "CMakeFiles/icc_types.dir/pool.cpp.o.d"
  "libicc_types.a"
  "libicc_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
