file(REMOVE_RECURSE
  "libicc_types.a"
)
