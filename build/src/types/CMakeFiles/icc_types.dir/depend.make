# Empty dependencies file for icc_types.
# This may be replaced when dependencies are built.
