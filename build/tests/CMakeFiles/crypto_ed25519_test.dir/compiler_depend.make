# Empty compiler generated dependencies file for crypto_ed25519_test.
# This may be replaced when dependencies are built.
