file(REMOVE_RECURSE
  "CMakeFiles/crypto_provider_test.dir/crypto/provider_test.cpp.o"
  "CMakeFiles/crypto_provider_test.dir/crypto/provider_test.cpp.o.d"
  "crypto_provider_test"
  "crypto_provider_test.pdb"
  "crypto_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
