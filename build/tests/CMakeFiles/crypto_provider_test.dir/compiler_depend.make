# Empty compiler generated dependencies file for crypto_provider_test.
# This may be replaced when dependencies are built.
