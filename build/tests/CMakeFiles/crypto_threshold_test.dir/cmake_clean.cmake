file(REMOVE_RECURSE
  "CMakeFiles/crypto_threshold_test.dir/crypto/beacon_test.cpp.o"
  "CMakeFiles/crypto_threshold_test.dir/crypto/beacon_test.cpp.o.d"
  "CMakeFiles/crypto_threshold_test.dir/crypto/dleq_test.cpp.o"
  "CMakeFiles/crypto_threshold_test.dir/crypto/dleq_test.cpp.o.d"
  "CMakeFiles/crypto_threshold_test.dir/crypto/multisig_test.cpp.o"
  "CMakeFiles/crypto_threshold_test.dir/crypto/multisig_test.cpp.o.d"
  "CMakeFiles/crypto_threshold_test.dir/crypto/shamir_test.cpp.o"
  "CMakeFiles/crypto_threshold_test.dir/crypto/shamir_test.cpp.o.d"
  "crypto_threshold_test"
  "crypto_threshold_test.pdb"
  "crypto_threshold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_threshold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
