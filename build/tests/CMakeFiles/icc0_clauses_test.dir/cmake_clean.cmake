file(REMOVE_RECURSE
  "CMakeFiles/icc0_clauses_test.dir/consensus/icc0_clauses_test.cpp.o"
  "CMakeFiles/icc0_clauses_test.dir/consensus/icc0_clauses_test.cpp.o.d"
  "icc0_clauses_test"
  "icc0_clauses_test.pdb"
  "icc0_clauses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc0_clauses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
