file(REMOVE_RECURSE
  "CMakeFiles/icc0_test.dir/consensus/icc0_test.cpp.o"
  "CMakeFiles/icc0_test.dir/consensus/icc0_test.cpp.o.d"
  "CMakeFiles/icc0_test.dir/consensus/permutation_test.cpp.o"
  "CMakeFiles/icc0_test.dir/consensus/permutation_test.cpp.o.d"
  "icc0_test"
  "icc0_test.pdb"
  "icc0_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc0_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
