# Empty dependencies file for icc0_test.
# This may be replaced when dependencies are built.
