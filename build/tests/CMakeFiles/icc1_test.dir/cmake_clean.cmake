file(REMOVE_RECURSE
  "CMakeFiles/icc1_test.dir/consensus/icc1_test.cpp.o"
  "CMakeFiles/icc1_test.dir/consensus/icc1_test.cpp.o.d"
  "icc1_test"
  "icc1_test.pdb"
  "icc1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
