# Empty dependencies file for icc1_test.
# This may be replaced when dependencies are built.
