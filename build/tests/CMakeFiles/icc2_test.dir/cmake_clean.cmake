file(REMOVE_RECURSE
  "CMakeFiles/icc2_test.dir/consensus/icc2_test.cpp.o"
  "CMakeFiles/icc2_test.dir/consensus/icc2_test.cpp.o.d"
  "icc2_test"
  "icc2_test.pdb"
  "icc2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icc2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
