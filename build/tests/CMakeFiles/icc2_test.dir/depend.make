# Empty dependencies file for icc2_test.
# This may be replaced when dependencies are built.
