file(REMOVE_RECURSE
  "CMakeFiles/rbc_test.dir/rbc/rbc_test.cpp.o"
  "CMakeFiles/rbc_test.dir/rbc/rbc_test.cpp.o.d"
  "rbc_test"
  "rbc_test.pdb"
  "rbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
