# Empty dependencies file for rbc_test.
# This may be replaced when dependencies are built.
