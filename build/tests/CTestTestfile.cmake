# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_hash_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_field_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_ed25519_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_threshold_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_provider_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/types_test[1]_include.cmake")
include("/root/repo/build/tests/icc0_test[1]_include.cmake")
include("/root/repo/build/tests/icc1_test[1]_include.cmake")
include("/root/repo/build/tests/icc2_test[1]_include.cmake")
include("/root/repo/build/tests/rbc_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/smr_test[1]_include.cmake")
include("/root/repo/build/tests/gossip_test[1]_include.cmake")
include("/root/repo/build/tests/adversarial_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/icc0_clauses_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
