#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against a committed baseline.

Three input formats are understood, detected per file:

icc-bench/v1 (virtual-time harness benches — machine-independent):

    {"schema": "icc-bench/v1", "bench": "...", "config": {...},
     "results": [{"name": "...", "value": 1.234, "unit": "ms"}, ...]}

Values are compared directly by name.

google-benchmark JSON (wall-clock kernel benches, e.g. BENCH_kernels.json
from bench_crypto): the file has a top-level "benchmarks" array. Only the
"*_mean" aggregates are used (run with --benchmark_repetitions). Because
wall-clock µs depend on the host, absolute times are NOT compared; instead
each mean is normalised by the geometric mean of all means and the
comparison runs on those dimensionless ratios — the *shape* of the profile.
A kernel that regresses relative to its peers still trips the gate, a
uniformly slower CI machine does not.

icc-series/v1 JSONL (windowed soak telemetry from examples/icc_soak /
icc_observe --series): the first line is a meta object with
"schema": "icc-series/v1", followed by one "type":"w" window per line.
The stream is reduced to throughput aggregates — window count and the
geometric means of per-window committed blocks and rounds (decimated
windows are scaled by their res) — then gated exactly like icc-bench/v1.
The config is the meta line's (n, t, protocol, seed, window_us).

Relative deviation bands (defaults):
  warn  > ±10 %  -> reported, exit 0
  fail  > ±25 %  -> reported, exit 1

Missing or extra result names are failures: a renamed metric silently
dropping out of regression tracking is exactly the kind of drift this
gate exists to catch. Config mismatches (different window, n, seed)
are also failures — the numbers would not be comparable.

Usage:
  ci/bench_compare.py <baseline.json> <fresh.json> [--warn-pct 10] [--fail-pct 25]
"""

import argparse
import json
import math
import sys

_TIME_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_series(text, path):
    """Reduce an icc-series/v1 JSONL stream to icc-bench/v1 shape."""
    meta, windows = None, []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        if d.get("type") == "meta":
            meta = d
        elif d.get("type") == "w":
            windows.append(d)
    if meta is None or meta.get("schema") != "icc-series/v1":
        sys.exit(f"{path}: not an icc-series/v1 stream")
    if not windows:
        sys.exit(f"{path}: icc-series/v1 stream has no windows")

    def per_window(values):
        positive = [v for v in values if v > 0]
        if not positive:
            return 0.0
        return math.exp(sum(math.log(v) for v in positive) / len(positive))

    committed = [
        w.get("counters", {}).get("consensus.blocks_committed", 0) / w.get("res", 1)
        for w in windows
    ]
    rounds = [w.get("rounds", 0) / w.get("res", 1) for w in windows]
    return {
        "schema": "icc-bench/v1",
        "bench": "soak-series",
        "config": {k: meta.get(k) for k in ("n", "t", "protocol", "seed", "window_us")},
        "results": [
            {"name": "series.windows", "value": float(len(windows)), "unit": "count"},
            {
                "name": "series.committed_per_window_geomean",
                "value": per_window(committed),
                "unit": "blocks",
            },
            {
                "name": "series.rounds_per_window_geomean",
                "value": per_window(rounds),
                "unit": "rounds",
            },
        ],
    }


def load(path):
    with open(path) as f:
        text = f.read()
    first = text.lstrip().splitlines()[0] if text.strip() else ""
    if '"icc-series/v1"' in first:
        return load_series(text, path)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        # Tolerate human summary lines ahead of the document — e.g. a bench
        # invoked with --runtime prints its (non-deterministic) profiler
        # lines to stdout, and a pipeline that redirects stdout into the
        # artifact must still gate cleanly. The JSON document always starts
        # at the first line whose first character is '{'.
        start = text.find("\n{")
        if start < 0:
            raise
        doc = json.loads(text[start + 1 :])
    if "benchmarks" in doc:  # google-benchmark JSON
        return doc
    if doc.get("schema") != "icc-bench/v1":
        sys.exit(f"{path}: unsupported schema {doc.get('schema')!r}")
    return doc


def gbench_means(doc, path):
    """{run_name: cpu_time in ns} for the *_mean aggregates."""
    means = {}
    for b in doc["benchmarks"]:
        if b.get("aggregate_name") != "mean":
            continue
        unit = _TIME_NS.get(b.get("time_unit", "ns"))
        if unit is None:
            sys.exit(f"{path}: {b['name']}: unknown time_unit {b.get('time_unit')!r}")
        means[b["run_name"]] = b["cpu_time"] * unit
    if not means:
        sys.exit(
            f"{path}: no *_mean aggregates — run with --benchmark_repetitions=3"
        )
    return means


def normalized(means):
    """Each mean divided by the geometric mean of all means (shape profile)."""
    log_gm = sum(math.log(v) for v in means.values()) / len(means)
    gm = math.exp(log_gm)
    return {name: v / gm for name, v in means.items()}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--warn-pct", type=float, default=10.0)
    ap.add_argument("--fail-pct", type=float, default=25.0)
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures, warnings = [], []

    gbench = "benchmarks" in base
    if gbench != ("benchmarks" in fresh):
        sys.exit("cannot compare icc-bench/v1 against google-benchmark JSON")

    if gbench:
        # Wall-clock kernels: compare the shape of the profile, not µs.
        base_results = {
            n: {"name": n, "value": v}
            for n, v in normalized(gbench_means(base, args.baseline)).items()
        }
        fresh_results = {
            n: {"name": n, "value": v}
            for n, v in normalized(gbench_means(fresh, args.fresh)).items()
        }
        bench_label = "kernels (shape)"
    else:
        if base.get("bench") != fresh.get("bench"):
            failures.append(
                f"bench mismatch: baseline {base.get('bench')!r} vs fresh {fresh.get('bench')!r}"
            )
        if base.get("config") != fresh.get("config"):
            failures.append(
                f"config mismatch: baseline {base.get('config')} vs fresh {fresh.get('config')}"
            )
        base_results = {r["name"]: r for r in base.get("results", [])}
        fresh_results = {r["name"]: r for r in fresh.get("results", [])}
        bench_label = base.get("bench")

    for name in sorted(base_results.keys() - fresh_results.keys()):
        failures.append(f"{name}: present in baseline, missing from fresh run")
    for name in sorted(fresh_results.keys() - base_results.keys()):
        failures.append(f"{name}: new result not in baseline (re-commit the baseline)")

    for name in sorted(base_results.keys() & fresh_results.keys()):
        b, f = base_results[name]["value"], fresh_results[name]["value"]
        if b == 0.0 and f == 0.0:
            continue
        if b == 0.0:
            failures.append(f"{name}: baseline 0, fresh {f}")
            continue
        dev = (f - b) / abs(b) * 100.0
        line = f"{name}: baseline {b:g} -> fresh {f:g} ({dev:+.1f} %)"
        if abs(dev) > args.fail_pct:
            failures.append(line)
        elif abs(dev) > args.warn_pct:
            warnings.append(line)

    for w in warnings:
        print(f"WARN {w}")
    for f in failures:
        print(f"FAIL {f}")
    n = len(base_results)
    print(
        f"bench_compare: {bench_label}: {n} baseline results, "
        f"{len(warnings)} warnings (>{args.warn_pct:g} %), "
        f"{len(failures)} failures (>{args.fail_pct:g} %)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
