#!/usr/bin/env python3
"""Compare a freshly generated BENCH_*.json against a committed baseline.

Both files follow schema icc-bench/v1:

    {"schema": "icc-bench/v1", "bench": "...", "config": {...},
     "results": [{"name": "...", "value": 1.234, "unit": "ms"}, ...]}

Results are matched by name. Relative deviation bands (defaults):
  warn  > ±10 %  -> reported, exit 0
  fail  > ±25 %  -> reported, exit 1

Missing or extra result names are failures: a renamed metric silently
dropping out of regression tracking is exactly the kind of drift this
gate exists to catch. Config mismatches (different window, n, seed)
are also failures — the numbers would not be comparable.

Usage:
  ci/bench_compare.py <baseline.json> <fresh.json> [--warn-pct 10] [--fail-pct 25]
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "icc-bench/v1":
        sys.exit(f"{path}: unsupported schema {doc.get('schema')!r}")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--warn-pct", type=float, default=10.0)
    ap.add_argument("--fail-pct", type=float, default=25.0)
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    failures, warnings = [], []

    if base.get("bench") != fresh.get("bench"):
        failures.append(
            f"bench mismatch: baseline {base.get('bench')!r} vs fresh {fresh.get('bench')!r}"
        )
    if base.get("config") != fresh.get("config"):
        failures.append(
            f"config mismatch: baseline {base.get('config')} vs fresh {fresh.get('config')}"
        )

    base_results = {r["name"]: r for r in base.get("results", [])}
    fresh_results = {r["name"]: r for r in fresh.get("results", [])}

    for name in sorted(base_results.keys() - fresh_results.keys()):
        failures.append(f"{name}: present in baseline, missing from fresh run")
    for name in sorted(fresh_results.keys() - base_results.keys()):
        failures.append(f"{name}: new result not in baseline (re-commit the baseline)")

    for name in sorted(base_results.keys() & fresh_results.keys()):
        b, f = base_results[name]["value"], fresh_results[name]["value"]
        if b == 0.0 and f == 0.0:
            continue
        if b == 0.0:
            failures.append(f"{name}: baseline 0, fresh {f}")
            continue
        dev = (f - b) / abs(b) * 100.0
        line = f"{name}: baseline {b} -> fresh {f} ({dev:+.1f} %)"
        if abs(dev) > args.fail_pct:
            failures.append(line)
        elif abs(dev) > args.warn_pct:
            warnings.append(line)

    for w in warnings:
        print(f"WARN {w}")
    for f in failures:
        print(f"FAIL {f}")
    n = len(base_results)
    print(
        f"bench_compare: {base.get('bench')}: {n} baseline results, "
        f"{len(warnings)} warnings (>{args.warn_pct:g} %), "
        f"{len(failures)} failures (>{args.fail_pct:g} %)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
