#!/usr/bin/env bash
# Sanitizer lane: Debug build with AddressSanitizer + UndefinedBehaviorSanitizer,
# running the full tier-1 ctest suite. Catches the memory and UB bugs an
# optimized build hides (use-after-free in the event engine, OOB in the codec,
# signed overflow in timing arithmetic, ...).
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build-sanitize}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

cmake -S "$SOURCE_DIR" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error: any UBSan finding fails the lane instead of scrolling past.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
