#!/usr/bin/env bash
# Sanitizer lanes, selected by SANITIZER:
#
#   SANITIZER=asan (default)  Debug build with AddressSanitizer + UBSan over
#                             the full tier-1 ctest suite. Catches the memory
#                             and UB bugs an optimized build hides
#                             (use-after-free in the event engine, OOB in the
#                             codec, signed overflow in timing arithmetic).
#
#   SANITIZER=tsan            Debug build with ThreadSanitizer over the
#                             concurrency-bearing suites (support executor /
#                             defer queue, parallel sim engine, pipeline
#                             verifier slicing, shared intern store, obs
#                             journal + metrics), run
#                             with ICC_THREADS=8 so every guarded test
#                             actually exercises the worker pool. TSan and
#                             ASan cannot be combined in one binary, hence
#                             the separate lane.
set -euo pipefail

SANITIZER="${SANITIZER:-asan}"
BUILD_DIR="${BUILD_DIR:-build-sanitize-$SANITIZER}"
SOURCE_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

case "$SANITIZER" in
  asan)
    FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
    ;;
  tsan)
    FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
    ;;
  *)
    echo "unknown SANITIZER '$SANITIZER' (expected asan or tsan)" >&2
    exit 2
    ;;
esac

cmake -S "$SOURCE_DIR" -B "$BUILD_DIR" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$FLAGS"

cmake --build "$BUILD_DIR" -j "$JOBS"

if [ "$SANITIZER" = "tsan" ]; then
  # halt_on_error: the first race fails the lane. second_deadlock_stack helps
  # untangle lock-order reports from the sharded verifier cache.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  # Force the worker pool on for every test that honors the env default, and
  # run the suite binaries directly, one at a time: TSan's shadow memory is
  # heavy, and the interesting interleavings come from the pool's threads,
  # not from parallel test jobs. (ctest -R matches test names, not binaries,
  # and exits 0 on an empty match — direct invocation fails loudly instead.)
  export ICC_THREADS=8
  for suite in support_test sim_test pipeline_test intern_test obs_test journal_test causal_test; do
    echo "== $suite (TSan, ICC_THREADS=8) =="
    "$BUILD_DIR/tests/$suite"
  done
else
  # halt_on_error: any UBSan finding fails the lane instead of scrolling past.
  export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
fi
