// Byzantine playground: watch ICC degrade gracefully (the paper's "robust
// consensus" discussion, Section 1) under a menu of attacks, and compare
// with PBFT's collapse under a silent leader [15].
#include <cstdio>

#include "harness/baseline_cluster.hpp"
#include "harness/cluster.hpp"

namespace {

using namespace icc;

struct ScenarioResult {
  double blocks_per_s;
  double latency_ms;
  bool safe;
};

ScenarioResult run_icc(const char* name,
                       std::vector<std::pair<sim::PartyIndex, harness::CorruptBehavior>>
                           corrupt) {
  harness::ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 99;
  o.delta_bnd = sim::msec(300);
  o.payload_size = 256;
  o.corrupt = std::move(corrupt);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::UniformDelay>(sim::msec(5), sim::msec(25));
  };
  harness::Cluster c(o);
  c.run_for(sim::seconds(30));
  ScenarioResult r;
  r.blocks_per_s = c.blocks_per_second(sim::seconds(30));
  r.latency_ms = c.avg_latency_ms();
  r.safe = !c.check_safety().has_value() && !c.check_p2().has_value();
  std::printf("  %-28s %6.2f blocks/s   latency %7.1f ms   safety %s\n", name,
              r.blocks_per_s, r.latency_ms, r.safe ? "OK" : "VIOLATED");
  return r;
}

}  // namespace

int main() {
  using consensus::ByzantineBehavior;

  std::printf("ICC0, n = 7, t = 2, two corrupt parties per scenario\n");
  std::printf("----------------------------------------------------\n");

  run_icc("baseline (all honest)", {});

  run_icc("crashed", {{1, harness::Crashed{}}, {4, harness::Crashed{}}});

  ByzantineBehavior eq;
  eq.equivocate = true;
  run_icc("equivocating proposers", {{1, eq}, {4, eq}});

  ByzantineBehavior censor;
  censor.empty_payload = true;
  run_icc("censoring (empty blocks)", {{1, censor}, {4, censor}});

  ByzantineBehavior withhold;
  withhold.withhold_finalization = true;
  withhold.withhold_notarization = true;
  run_icc("withholding shares", {{1, withhold}, {4, withhold}});

  ByzantineBehavior mute;
  mute.mute_after = 20;
  run_icc("crash mid-run (round 20)", {{1, mute}, {4, mute}});

  std::printf("\nPBFT-lite under a silent leader (contrast, [15]):\n");
  std::printf("----------------------------------------------------\n");
  for (bool leader_dead : {false, true}) {
    harness::BaselineOptions o;
    o.kind = harness::BaselineKind::kPbft;
    o.n = 7;
    o.t = 2;
    o.seed = 99;
    o.delta_bnd = sim::msec(300);
    if (leader_dead) o.crashed = {0, 1};  // two consecutive leaders dead
    harness::BaselineCluster c(o);
    c.run_for(sim::seconds(30));
    std::printf("  %-28s %6.2f blocks/s\n",
                leader_dead ? "two leaders silent" : "all honest",
                static_cast<double>(c.min_honest_committed()) / 30.0);
  }

  std::printf("\nICC keeps committing at a steady rate in every scenario; PBFT\n"
              "stalls through each view-change timeout before recovering.\n");
  return 0;
}
