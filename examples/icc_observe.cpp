// icc_observe — run a fully instrumented cluster and export its telemetry.
//
//   icc_observe [options]
//     --protocol icc0|icc1|icc2      (default icc1)
//     --n <int>                      parties (default 16)
//     --t <int>                      corruption bound (default (n-1)/3)
//     --seconds <int>                virtual run time (default 20)
//     --delta-ms <int>               fixed one-way delay; 0 = WAN model (default 10)
//     --payload <bytes>              block payload size (default 4096)
//     --crash <int>                  # crashed parties (default 0)
//     --equivocate <int>             # equivocating parties (default 0)
//     --trace <path>                 Chrome trace_event output (default trace.json)
//     --metrics <path>               metrics snapshot output (default metrics.json)
//     --journal <path>               flight-recorder JSONL output; also runs the
//                                    offline safety audit inline (icc_audit
//                                    semantics) and folds it into the digest
//     --no-causal                    record a v1 journal without send/recv
//                                    edges (smaller; critical-path analysis
//                                    then impossible)
//     --critpath                     run the causal critical-path analysis
//                                    inline (icc_critpath semantics) and fold
//                                    the hop/latency decomposition into the
//                                    digest; implies --journal (default path
//                                    journal.jsonl if none given)
//     --runtime                      wall-clock runtime profiler
//                                    (obs/runtime.hpp): per-worker spans,
//                                    lock-wait sampling, executor health.
//                                    Writes an icc-runtime/v1 report (feed it
//                                    to tools/icc_runtime) and merges the
//                                    wall-clock worker lanes into the Chrome
//                                    trace. Output is NON-DETERMINISTIC;
//                                    journal/metrics bytes are unchanged.
//     --runtime-report <path>        report output (default runtime.json)
//     --trace-capacity <int>         span ring slots (default 65536)
//     --journal-capacity <int>       journal event bound (default 1<<22 here;
//                                    the causal layer records every transfer)
//     --stage-wall-timing            wall-clock decode/verify histograms
//     --series <path>                windowed time-series stream, icc-series/v1
//                                    JSONL (obs/timeseries.hpp) — analyze with
//                                    tools/icc_drift; deterministic bytes at
//                                    any thread count
//     --window-us <int>              series window length in virtual µs
//                                    (default 1000000; only meaningful with
//                                    --series)
//     --seed <int>                   run seed, echoed in the digest so a
//                                    failing run's journal/trace can be
//                                    reproduced exactly from the CLI
//
// The trace opens in chrome://tracing or https://ui.perfetto.dev: one
// process per party, with consensus rounds as spans and propose/finalize
// instants on lane 0, gossip fetches on lane 1. The metrics snapshot is a
// single JSON object; see DESIGN.md § Observability for the mapping from
// metric names to the paper's claims.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "harness/cluster.hpp"
#include "obs/audit.hpp"
#include "obs/causal.hpp"

int main(int argc, char** argv) {
  using namespace icc;

  harness::ClusterOptions o;
  o.n = 16;
  o.t = 0;  // resolved below
  o.protocol = harness::Protocol::kIcc1;
  o.seed = 42;
  o.delta_bnd = sim::msec(600);
  o.payload_size = 4096;
  o.obs.enabled = true;
  int seconds = 20;
  int delta_ms = 10;
  int crash = 0, equivocate = 0;
  // The causal layer records every wire transfer, so give the journal room
  // for long runs by default (excess events are counted, never silently
  // dropped — the meta line carries the drop count).
  o.obs.journal_capacity = size_t{1} << 22;
  const char* trace_path = "trace.json";
  const char* metrics_path = "metrics.json";
  const char* journal_path = nullptr;
  const char* runtime_path = "runtime.json";
  const char* series_path = nullptr;
  bool critpath = false;

  for (int i = 1; i < argc; ++i) {
    auto is = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0; };
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--protocol")) {
      const char* v = next();
      if (!std::strcmp(v, "icc0")) o.protocol = harness::Protocol::kIcc0;
      else if (!std::strcmp(v, "icc1")) o.protocol = harness::Protocol::kIcc1;
      else if (!std::strcmp(v, "icc2")) o.protocol = harness::Protocol::kIcc2;
      else {
        std::fprintf(stderr, "unknown protocol %s\n", v);
        return 2;
      }
    } else if (is("--n")) o.n = static_cast<size_t>(atoi(next()));
    else if (is("--t")) o.t = static_cast<size_t>(atoi(next()));
    else if (is("--seconds")) seconds = atoi(next());
    else if (is("--delta-ms")) delta_ms = atoi(next());
    else if (is("--payload")) o.payload_size = static_cast<size_t>(atoi(next()));
    else if (is("--crash")) crash = atoi(next());
    else if (is("--equivocate")) equivocate = atoi(next());
    else if (is("--trace")) trace_path = next();
    else if (is("--metrics")) metrics_path = next();
    else if (is("--journal")) {
      journal_path = next();
      o.obs.journal = true;
    }
    else if (is("--no-causal")) o.obs.journal_causal = false;
    else if (is("--runtime")) o.obs.runtime = true;
    else if (is("--runtime-report")) {
      runtime_path = next();
      o.obs.runtime = true;
    }
    else if (is("--critpath")) {
      critpath = true;
      o.obs.journal = true;
    }
    else if (is("--trace-capacity"))
      o.obs.trace_capacity = static_cast<size_t>(atoi(next()));
    else if (is("--journal-capacity"))
      o.obs.journal_capacity = static_cast<size_t>(atoll(next()));
    else if (is("--stage-wall-timing")) o.obs.stage_wall_timing = true;
    else if (is("--series")) {
      series_path = next();
      o.obs.series = true;
    }
    else if (is("--window-us")) o.obs.series_window_us = atoll(next());
    else if (is("--seed")) o.seed = static_cast<uint64_t>(atoll(next()));
    else {
      std::fprintf(stderr, "unknown flag %s (see header of examples/icc_observe.cpp)\n",
                   argv[i]);
      return 2;
    }
  }
  if (o.t == 0) o.t = (o.n - 1) / 3;

  size_t corrupted = 0;
  auto assign = [&](harness::CorruptBehavior b, int count) {
    for (int j = 0; j < count && corrupted < o.n; ++j) {
      o.corrupt.emplace_back(static_cast<sim::PartyIndex>(1 + 3 * corrupted % o.n), b);
      ++corrupted;
    }
  };
  assign(harness::Crashed{}, crash);
  consensus::ByzantineBehavior eq;
  eq.equivocate = true;
  assign(eq, equivocate);

  if (delta_ms > 0) {
    o.delay_model = [delta_ms](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(delta_ms));
    };
  } else {
    o.delay_model = [](size_t n, uint64_t seed) {
      sim::WanDelay::Config wan;
      wan.n = n;
      wan.seed = seed;
      return std::make_unique<sim::WanDelay>(wan);
    };
  }

  if (critpath && journal_path == nullptr) journal_path = "journal.jsonl";

  harness::Cluster cluster(o);
  const char* proto_name = o.protocol == harness::Protocol::kIcc0   ? "ICC0"
                           : o.protocol == harness::Protocol::kIcc1 ? "ICC1"
                                                                    : "ICC2";
  std::printf("icc_observe: %s, n=%zu t=%zu, %d s virtual, seed %llu, telemetry on\n",
              proto_name, o.n, o.t, seconds,
              static_cast<unsigned long long>(o.seed));
  if (series_path != nullptr && !cluster.stream_series(series_path)) {
    std::fprintf(stderr, "cannot open series sink %s\n", series_path);
    return 1;
  }
  cluster.run_for(sim::seconds(seconds));

  // --- console digest of the key metrics ---
  const obs::Registry& r = cluster.obs()->registry();
  auto counter = [&](const char* name) -> uint64_t {
    const obs::Counter* c = r.find_counter(name);
    return c ? c->value() : 0;
  };
  const size_t honest = o.n - corrupted;
  std::printf("\nrounds reached:      %zu\n", cluster.max_honest_round());
  std::printf("blocks committed:    %zu\n", cluster.min_honest_committed());
  std::printf("rounds observed:     %lu  (clean: %lu, on leader block: %lu)\n",
              static_cast<unsigned long>(counter("consensus.rounds") / honest),
              static_cast<unsigned long>(counter("consensus.rounds_clean") / honest),
              static_cast<unsigned long>(counter("consensus.rounds_leader_block") / honest));
  if (const obs::Histogram* h = r.find_histogram("consensus.finalize_us")) {
    if (h->count() > 0)
      std::printf("finalize latency ms: p50 %.1f   p99 %.1f   max %.1f\n",
                  static_cast<double>(h->percentile(0.5)) / 1000.0,
                  static_cast<double>(h->percentile(0.99)) / 1000.0,
                  static_cast<double>(h->max()) / 1000.0);
  }
  const auto& nm = cluster.sim().network().metrics();
  std::printf("wire messages:       %lu  (%lu MB)\n",
              static_cast<unsigned long>(nm.total_messages),
              static_cast<unsigned long>(nm.total_bytes >> 20));
  if (o.intern) {
    // PHYSICAL counters: the real/hit split depends on wall-clock arrival
    // interleaving, so these numbers are non-deterministic under threads>1 —
    // never diff them across runs (unlike every metric above).
    const auto is = cluster.intern_stats();
    std::printf("intern (physical):   %lu parses, %lu decode hits, %lu real "
                "verifications, %lu memo hits, %lu primed\n",
                static_cast<unsigned long>(is.parses),
                static_cast<unsigned long>(is.decode_hits),
                static_cast<unsigned long>(is.real_verifications),
                static_cast<unsigned long>(is.verdict_memo_hits),
                static_cast<unsigned long>(is.verdicts_primed));
  }
  std::printf("trace events:        %lu recorded, %lu dropped\n",
              static_cast<unsigned long>(cluster.obs()->tracer().recorded()),
              static_cast<unsigned long>(cluster.obs()->tracer().dropped()));
  if (cluster.obs()->tracer().dropped() > 0) {
    std::fprintf(stderr,
                 "\n*** WARNING: the span tracer dropped %lu events — the trace "
                 "is TRUNCATED and will look complete in the viewer.\n"
                 "*** Re-run with --trace-capacity > %lu (current %lu) or a "
                 "shorter --seconds to capture everything.\n\n",
                 static_cast<unsigned long>(cluster.obs()->tracer().dropped()),
                 static_cast<unsigned long>(cluster.obs()->tracer().recorded() +
                                            cluster.obs()->tracer().dropped()),
                 static_cast<unsigned long>(o.obs.trace_capacity));
  }

  // --- artifacts ---
  std::ofstream mf(metrics_path);
  if (!mf) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path);
    return 1;
  }
  mf << cluster.metrics_json() << "\n";
  mf.close();
  // With --runtime the trace file carries both clocks: virtual-time party
  // tracks plus wall-clock worker lanes, in one trace_event container.
  const bool trace_ok = o.obs.runtime ? cluster.dump_runtime_trace(trace_path)
                                      : cluster.dump_trace(trace_path);
  if (!trace_ok) {
    std::fprintf(stderr, "cannot write %s\n", trace_path);
    return 1;
  }
  std::printf("\nwrote %s and %s — open the trace in chrome://tracing or ui.perfetto.dev\n",
              metrics_path, trace_path);

  // --- windowed time-series (icc-series/v1 stream) ---
  if (series_path != nullptr) {
    obs::TimeSeries* ts = cluster.series();
    ts->flush();
    std::printf("series windows:      %lu closed -> %s  (analyze with tools/icc_drift)\n",
                static_cast<unsigned long>(ts->windows_closed()), series_path);
    if (ts->dropped() > 0)
      std::fprintf(stderr,
                   "*** WARNING: %lu series lines failed to write — %s is "
                   "TRUNCATED (disk full?) and icc_drift trends over it are "
                   "unreliable.\n",
                   static_cast<unsigned long>(ts->dropped()), series_path);
  }

  // --- wall-clock runtime profile (non-deterministic by design) ---
  if (o.obs.runtime) {
    const obs::RuntimeReport rep = cluster.runtime_report();
    obs::print_runtime_summary(stdout, rep, obs::analyze_runtime(rep));
    if (!cluster.dump_runtime_report(runtime_path)) {
      std::fprintf(stderr, "cannot write %s\n", runtime_path);
      return 1;
    }
    std::printf("wrote %s — analyze with tools/icc_runtime\n", runtime_path);
  }

  // --- flight recorder + inline offline audit (icc_audit semantics) ---
  size_t audit_violations = 0;
  if (journal_path != nullptr) {
    if (!cluster.dump_journal(journal_path)) {
      std::fprintf(stderr, "cannot write %s\n", journal_path);
      return 1;
    }
    const obs::Journal* j = cluster.journal();
    obs::AuditReport audit = obs::audit_journal(j->events(), j->meta(), true);
    audit_violations = audit.violations.size();
    std::printf("journal events:      %zu recorded, %lu dropped -> %s\n", j->size(),
                static_cast<unsigned long>(j->dropped()), journal_path);
    std::printf("audit violations:    %zu  (%lu rounds attributed, "
                "propose->finalize mean %.1f ms)\n",
                audit_violations, static_cast<unsigned long>(audit.finalized_rounds),
                static_cast<double>(audit.mean_propose_to_final_us) / 1000.0);
    for (const auto& v : audit.violations)
      std::fprintf(stderr, "audit VIOLATION %s round %lu: %s\n", v.invariant.c_str(),
                   static_cast<unsigned long>(v.round), v.detail.c_str());
    if (j->dropped() > 0)
      std::fprintf(stderr,
                   "*** WARNING: the journal dropped %lu events — audit and "
                   "critical-path results cover a TRUNCATED run. Re-run with "
                   "--journal-capacity > %lu.\n",
                   static_cast<unsigned long>(j->dropped()),
                   static_cast<unsigned long>(j->size() + j->dropped()));
  }

  // --- inline causal critical-path summary (icc_critpath semantics) ---
  bool critpath_error = false;
  if (critpath) {
    const obs::Journal* j = cluster.journal();
    obs::Journal::Parsed parsed;
    parsed.meta = j->meta();
    parsed.meta.dropped = j->dropped();
    parsed.has_meta = true;
    parsed.events = j->events();
    obs::CausalAnalyzer analyzer(std::move(parsed));
    const obs::CritPathReport& cp = analyzer.report();
    if (!cp.error.empty()) {
      std::fprintf(stderr, "critpath REJECTED: %s\n", cp.error.c_str());
      critpath_error = true;
    } else {
      std::printf("critical path:       %lu/%lu rounds complete, hops {",
                  static_cast<unsigned long>(cp.rounds_complete),
                  static_cast<unsigned long>(cp.rounds_analyzed));
      bool first = true;
      for (const auto& [hops, count] : cp.hop_histogram) {
        std::printf("%s%d: %lu", first ? "" : ", ", hops,
                    static_cast<unsigned long>(count));
        first = false;
      }
      std::printf("}\n");
      std::printf("commit latency:      p50 %.1f ms = network %.0f%% + queue %.0f%% "
                  "+ crypto %.0f%%\n",
                  static_cast<double>(cp.total.p50) / 1000.0, cp.network_share * 100.0,
                  cp.queue_share * 100.0, cp.crypto_share * 100.0);
      if (!cp.stragglers.empty()) {
        const obs::EdgeStat& s = cp.stragglers.front();
        std::printf("slowest link:        %u -> %u (%lu hops on critical paths, "
                    "max %.1f ms)\n",
                    s.from, s.to, static_cast<unsigned long>(s.count),
                    static_cast<double>(s.max_us) / 1000.0);
      }
    }
  }

  auto safety = cluster.check_safety();
  std::printf("safety:              %s\n", safety ? safety->c_str() : "OK");
  return (safety || audit_violations > 0 || critpath_error) ? 1 : 0;
}
