// icc_simulate — a parameterized simulation driver for the whole library.
//
//   icc_sim [options]
//     --protocol icc0|icc1|icc2      (default icc1)
//     --n <int>                      parties (default 13)
//     --t <int>                      corruption bound (default (n-1)/3)
//     --seconds <int>                virtual run time (default 30)
//     --delta-ms <int>               fixed one-way delay; 0 = WAN model (default 0)
//     --delta-bnd-ms <int>           partial-synchrony bound (default 600)
//     --epsilon-ms <int>             eq. 2 governor (default 0)
//     --payload <bytes>              block payload size (default 4096)
//     --crash <int>                  # crashed parties (default 0)
//     --equivocate <int>             # equivocating parties (default 0)
//     --censor <int>                 # empty-payload proposers (default 0)
//     --adaptive                     adaptive Delta_bnd
//     --cup <interval>               catch-up packages every <interval> rounds
//     --real-crypto                  Ed25519/DVRF instead of the fast oracle
//     --async <from_s> <to_s>        add an asynchrony window
//     --seed <int>
//
// Prints a run report: rounds, commits, latency percentiles, traffic, and
// the invariant checks. Exit code 1 on any invariant violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness/cluster.hpp"
#include "harness/stats.hpp"

int main(int argc, char** argv) {
  using namespace icc;

  harness::ClusterOptions o;
  o.n = 13;
  o.t = 0;  // resolved below
  o.protocol = harness::Protocol::kIcc1;
  o.seed = 42;
  o.delta_bnd = sim::msec(600);
  o.payload_size = 4096;
  o.prune_lag = 16;
  int seconds = 30;
  int delta_ms = 0;
  int crash = 0, equivocate = 0, censor = 0;
  std::vector<std::pair<int, int>> async_windows;

  for (int i = 1; i < argc; ++i) {
    auto is = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0; };
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--protocol")) {
      const char* v = next();
      if (!std::strcmp(v, "icc0")) o.protocol = harness::Protocol::kIcc0;
      else if (!std::strcmp(v, "icc1")) o.protocol = harness::Protocol::kIcc1;
      else if (!std::strcmp(v, "icc2")) o.protocol = harness::Protocol::kIcc2;
      else {
        std::fprintf(stderr, "unknown protocol %s\n", v);
        return 2;
      }
    } else if (is("--n")) o.n = static_cast<size_t>(atoi(next()));
    else if (is("--t")) o.t = static_cast<size_t>(atoi(next()));
    else if (is("--seconds")) seconds = atoi(next());
    else if (is("--delta-ms")) delta_ms = atoi(next());
    else if (is("--delta-bnd-ms")) o.delta_bnd = sim::msec(atoi(next()));
    else if (is("--epsilon-ms")) o.epsilon = sim::msec(atoi(next()));
    else if (is("--payload")) o.payload_size = static_cast<size_t>(atoi(next()));
    else if (is("--crash")) crash = atoi(next());
    else if (is("--equivocate")) equivocate = atoi(next());
    else if (is("--censor")) censor = atoi(next());
    else if (is("--adaptive")) o.adaptive.enabled = true;
    else if (is("--cup")) o.cup_interval = static_cast<types::Round>(atoi(next()));
    else if (is("--real-crypto")) o.crypto = harness::CryptoKind::kReal;
    else if (is("--seed")) o.seed = static_cast<uint64_t>(atoll(next()));
    else if (is("--async")) {
      int from = atoi(next());
      int to = atoi(next());
      async_windows.emplace_back(from, to);
    } else {
      std::fprintf(stderr, "unknown flag %s (see header of examples/icc_simulate.cpp)\n",
                   argv[i]);
      return 2;
    }
  }
  if (o.t == 0) o.t = (o.n - 1) / 3;

  // Corrupt slot assignment: spread the behaviours over distinct indices.
  size_t corrupted = 0;
  auto assign = [&](harness::CorruptBehavior b, int count) {
    for (int j = 0; j < count && corrupted < o.n; ++j) {
      o.corrupt.emplace_back(static_cast<sim::PartyIndex>(1 + 3 * corrupted % o.n), b);
      ++corrupted;
    }
  };
  assign(harness::Crashed{}, crash);
  consensus::ByzantineBehavior eq;
  eq.equivocate = true;
  assign(eq, equivocate);
  consensus::ByzantineBehavior cen;
  cen.empty_payload = true;
  assign(cen, censor);
  if (corrupted > o.t) {
    std::fprintf(stderr, "warning: %zu corrupt parties exceed t = %zu — the protocol's\n"
                         "guarantees no longer apply (running anyway)\n",
                 corrupted, o.t);
  }

  if (delta_ms > 0) {
    o.delay_model = [delta_ms](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(delta_ms));
    };
  } else {
    o.delay_model = [](size_t n, uint64_t seed) {
      sim::WanDelay::Config wan;
      wan.n = n;
      wan.seed = seed;
      return std::make_unique<sim::WanDelay>(wan);
    };
  }

  harness::Cluster cluster(o);
  for (auto [from, to] : async_windows) {
    cluster.sim().network().synchrony().add_async_window(sim::seconds(from),
                                                         sim::seconds(to));
  }

  const char* proto_name = o.protocol == harness::Protocol::kIcc0   ? "ICC0"
                           : o.protocol == harness::Protocol::kIcc1 ? "ICC1"
                                                                    : "ICC2";
  std::printf("icc_simulate: %s, n=%zu t=%zu, %d s virtual, %s network, %s crypto\n",
              proto_name, o.n, o.t, seconds, delta_ms > 0 ? "fixed-delay" : "WAN",
              o.crypto == harness::CryptoKind::kReal ? "real" : "fast");
  cluster.run_for(sim::seconds(seconds));

  // --- report ---
  harness::Summary latency;
  for (const auto& s : cluster.latencies()) latency.add(sim::to_ms(s.propose_to_commit));
  const auto& m = cluster.sim().network().metrics();
  double secs = static_cast<double>(seconds);

  std::printf("\nrounds reached:       %zu\n", cluster.max_honest_round());
  std::printf("blocks committed:     %zu  (%.2f blocks/s)\n",
              cluster.min_honest_committed(),
              static_cast<double>(cluster.min_honest_committed()) / secs);
  if (latency.count() > 0) {
    std::printf("commit latency ms:    p50 %.1f   p99 %.1f   max %.1f\n",
                latency.percentile(0.5), latency.percentile(0.99), latency.max());
  }
  std::printf("messages sent:        %lu  (%.0f /s)\n",
              static_cast<unsigned long>(m.total_messages),
              static_cast<double>(m.total_messages) / secs);
  std::printf("traffic per node:     %.2f Mb/s avg, %.2f Mb/s peak\n",
              static_cast<double>(m.total_bytes) * 8 / 1e6 / secs /
                  static_cast<double>(o.n),
              static_cast<double>(m.max_bytes_sent()) * 8 / 1e6 / secs);

  auto safety = cluster.check_safety();
  auto p2 = cluster.check_p2();
  std::printf("safety:               %s\n", safety ? safety->c_str() : "OK");
  std::printf("P2 (unique finality): %s\n", p2 ? p2->c_str() : "OK");
  return (safety || p2) ? 1 : 0;
}
