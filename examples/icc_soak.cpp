// icc_soak — long-horizon soak driver: millions of rounds under the windowed
// time-series recorder, watching for drift (ROADMAP item 5).
//
//   icc_soak [options]
//     --protocol icc0|icc1|icc2      (default icc0)
//     --n <int>                      parties (default 4)
//     --t <int>                      corruption bound (default (n-1)/3)
//     --rounds <int>                 target round count (default 1000000)
//     --seed <int>                   run seed, echoed in the digest
//     --delta-ms <int>               fixed one-way delay; 0 = WAN model (default 10)
//     --payload <bytes>              block payload size (default 256)
//     --threads <int>                worker threads (0 = ICC_THREADS; default)
//     --window-us <int>              series window length, virtual µs (default 1e6)
//     --series <path>                icc-series/v1 stream sink (default
//                                    soak-series.jsonl); windows append as
//                                    they close, flushed periodically
//     --full-res <int>               in-memory full-resolution windows (512)
//     --no-wall                      suppress the non-deterministic wall lines
//                                    (RSS); icc_drift then skips the RSS
//                                    detector
//     --committed-history <int>      per-party committed() bound (default 1024;
//                                    0 = unbounded — NOT advisable at 1M rounds)
//     --crash <int>                  # crashed parties (default 0)
//     --equivocate <int>             # equivocating parties (default 0)
//     --async <a>:<b>                asynchrony window [a, b) in virtual ms —
//                                    all traffic stalls until b; repeatable
//     --partition <a>:<b>:<k>        partition window [a, b) in virtual ms:
//                                    messages crossing the {<k} | {>=k} cut
//                                    are held until b (eventual delivery
//                                    preserved); repeatable
//
// The driver runs in virtual-time chunks until the target round is reached
// (or progress stops), flushing the series stream as it goes, then prints a
// digest and checks safety. Analyze the series with tools/icc_drift; the
// deterministic window lines are byte-identical for a given seed at any
// --threads value (wall lines are the labeled non-deterministic exemption).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "harness/cluster.hpp"

namespace {

/// Cross-group traffic inside a partition window is held until the window
/// closes (then travels with its normal delay) — the schedule-level analogue
/// of SynchronySchedule::add_async_window, restricted to the cut.
class PartitionDelay final : public icc::sim::DelayModel {
 public:
  struct Window {
    icc::sim::Time start, end;
    uint32_t split;  ///< parties < split vs >= split
  };
  PartitionDelay(std::unique_ptr<icc::sim::DelayModel> inner, std::vector<Window> windows)
      : inner_(std::move(inner)), windows_(std::move(windows)) {}

  icc::sim::Duration delay(icc::sim::PartyIndex from, icc::sim::PartyIndex to,
                           icc::sim::Time now, size_t bytes,
                           icc::Xoshiro256& rng) override {
    icc::sim::Duration hold = 0;
    for (const Window& w : windows_) {
      const bool cross = (from < w.split) != (to < w.split);
      if (cross && now >= w.start && now < w.end) hold = std::max(hold, w.end - now);
    }
    return hold + inner_->delay(from, to, now, bytes, rng);
  }

 private:
  std::unique_ptr<icc::sim::DelayModel> inner_;
  std::vector<Window> windows_;
};

int64_t rss_kb_now() {
  int64_t rss = -1;
#if defined(__linux__)
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr)
      if (std::strncmp(line, "VmRSS:", 6) == 0) rss = std::strtoll(line + 6, nullptr, 10);
    std::fclose(f);
  }
#endif
  return rss;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icc;

  harness::ClusterOptions o;
  o.n = 4;
  o.t = 0;  // resolved below
  o.protocol = harness::Protocol::kIcc0;
  o.crypto = harness::CryptoKind::kFast;
  o.seed = 42;
  o.payload_size = 256;
  o.record_payloads = false;
  o.record_latencies = false;
  o.committed_history = 1024;
  o.obs.enabled = true;
  o.obs.series = true;
  o.obs.series_wall = true;
  o.obs.trace_capacity = 0;  // no span ring: soak telemetry is the series

  uint64_t target_rounds = 1'000'000;
  int delta_ms = 10;
  int crash = 0, equivocate = 0;
  const char* series_path = "soak-series.jsonl";
  std::vector<std::pair<int64_t, int64_t>> async_windows;           // ms
  std::vector<std::tuple<int64_t, int64_t, uint32_t>> partitions;   // ms, ms, split

  for (int i = 1; i < argc; ++i) {
    auto is = [&](const char* flag) { return std::strcmp(argv[i], flag) == 0; };
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (is("--protocol")) {
      const char* v = next();
      if (!std::strcmp(v, "icc0")) o.protocol = harness::Protocol::kIcc0;
      else if (!std::strcmp(v, "icc1")) o.protocol = harness::Protocol::kIcc1;
      else if (!std::strcmp(v, "icc2")) o.protocol = harness::Protocol::kIcc2;
      else {
        std::fprintf(stderr, "unknown protocol %s\n", v);
        return 2;
      }
    } else if (is("--n")) o.n = static_cast<size_t>(atoi(next()));
    else if (is("--t")) o.t = static_cast<size_t>(atoi(next()));
    else if (is("--rounds")) target_rounds = static_cast<uint64_t>(atoll(next()));
    else if (is("--seed")) o.seed = static_cast<uint64_t>(atoll(next()));
    else if (is("--delta-ms")) delta_ms = atoi(next());
    else if (is("--payload")) o.payload_size = static_cast<size_t>(atoi(next()));
    else if (is("--threads")) o.threads = static_cast<size_t>(atoi(next()));
    else if (is("--window-us")) o.obs.series_window_us = atoll(next());
    else if (is("--series")) series_path = next();
    else if (is("--full-res")) o.obs.series_full_res = static_cast<size_t>(atoll(next()));
    else if (is("--no-wall")) o.obs.series_wall = false;
    else if (is("--committed-history"))
      o.committed_history = static_cast<consensus::Round>(atoll(next()));
    else if (is("--crash")) crash = atoi(next());
    else if (is("--equivocate")) equivocate = atoi(next());
    else if (is("--async")) {
      int64_t a = 0, b = 0;
      if (std::sscanf(next(), "%ld:%ld", &a, &b) != 2 || b <= a) {
        std::fprintf(stderr, "bad --async window (want start_ms:end_ms)\n");
        return 2;
      }
      async_windows.emplace_back(a, b);
    } else if (is("--partition")) {
      int64_t a = 0, b = 0;
      unsigned k = 0;
      if (std::sscanf(next(), "%ld:%ld:%u", &a, &b, &k) != 3 || b <= a || k == 0) {
        std::fprintf(stderr, "bad --partition window (want start_ms:end_ms:split)\n");
        return 2;
      }
      partitions.emplace_back(a, b, k);
    } else {
      std::fprintf(stderr, "unknown flag %s (see header of examples/icc_soak.cpp)\n",
                   argv[i]);
      return 2;
    }
  }
  if (o.t == 0) o.t = (o.n - 1) / 3;
  o.max_round = static_cast<consensus::Round>(target_rounds);

  size_t corrupted = 0;
  auto assign = [&](harness::CorruptBehavior b, int count) {
    for (int j = 0; j < count && corrupted < o.n; ++j) {
      o.corrupt.emplace_back(static_cast<sim::PartyIndex>(1 + 3 * corrupted % o.n), b);
      ++corrupted;
    }
  };
  assign(harness::Crashed{}, crash);
  consensus::ByzantineBehavior eq;
  eq.equivocate = true;
  assign(eq, equivocate);

  o.delay_model = [delta_ms, partitions](size_t n, uint64_t seed) {
    std::unique_ptr<sim::DelayModel> base;
    if (delta_ms > 0) {
      base = std::make_unique<sim::FixedDelay>(sim::msec(delta_ms));
    } else {
      sim::WanDelay::Config wan;
      wan.n = n;
      wan.seed = seed;
      base = std::make_unique<sim::WanDelay>(wan);
    }
    if (partitions.empty()) return base;
    std::vector<PartitionDelay::Window> ws;
    for (const auto& [a, b, k] : partitions)
      ws.push_back({sim::msec(a), sim::msec(b), k});
    return std::unique_ptr<sim::DelayModel>(
        std::make_unique<PartitionDelay>(std::move(base), std::move(ws)));
  };

  harness::Cluster cluster(o);
  for (const auto& [a, b] : async_windows)
    cluster.sim().network().synchrony().add_async_window(sim::msec(a), sim::msec(b));

  obs::TimeSeries* series = cluster.series();
  if (!cluster.stream_series(series_path)) {
    std::fprintf(stderr, "cannot open series sink %s\n", series_path);
    return 2;
  }

  const char* proto_name = o.protocol == harness::Protocol::kIcc0   ? "icc0"
                           : o.protocol == harness::Protocol::kIcc1 ? "icc1"
                                                                    : "icc2";
  std::fprintf(stderr,
               "icc_soak: %s, n=%zu t=%zu, target %llu rounds, window %lld us, "
               "seed %llu -> %s\n",
               proto_name, o.n, o.t, static_cast<unsigned long long>(target_rounds),
               static_cast<long long>(o.obs.series_window_us),
               static_cast<unsigned long long>(o.seed), series_path);

  const std::clock_t cpu0 = std::clock();
  const std::time_t wall0 = std::time(nullptr);
  const sim::Duration chunk = sim::seconds(30);
  uint64_t prev_round = 0;
  uint64_t chunks = 0;
  while (true) {
    cluster.run_for(chunk);
    series->flush();
    const uint64_t round = cluster.max_honest_round();
    if (++chunks % 20 == 0) {
      std::fprintf(stderr, "  round %llu / %llu  (windows %llu, rss %lld MB)\n",
                   static_cast<unsigned long long>(round),
                   static_cast<unsigned long long>(target_rounds),
                   static_cast<unsigned long long>(series->windows_closed()),
                   static_cast<long long>(rss_kb_now() >> 10));
    }
    if (round >= target_rounds) break;
    if (round == prev_round) {
      // A drained queue means every party stopped (max_round) or progress
      // genuinely halted — either way, running longer changes nothing.
      std::fprintf(stderr, "  progress stalled at round %llu; stopping\n",
                   static_cast<unsigned long long>(round));
      break;
    }
    prev_round = round;
  }
  series->flush();

  const double cpu_s =
      static_cast<double>(std::clock() - cpu0) / static_cast<double>(CLOCKS_PER_SEC);
  const double wall_s = std::difftime(std::time(nullptr), wall0);
  const uint64_t rounds = cluster.max_honest_round();
  const uint64_t committed = cluster.min_honest_committed();

  std::printf("rounds:            %llu\n", static_cast<unsigned long long>(rounds));
  std::printf("blocks committed:  %llu\n", static_cast<unsigned long long>(committed));
  std::printf("virtual time:      %lld s\n",
              static_cast<long long>(cluster.sim().engine().now() / 1'000'000));
  std::printf("windows closed:    %llu  (dropped %llu)\n",
              static_cast<unsigned long long>(series->windows_closed()),
              static_cast<unsigned long long>(series->dropped()));
  std::printf("wall / cpu:        %.0f s / %.0f s\n", wall_s, cpu_s);
  std::printf("rss:               %lld MB\n", static_cast<long long>(rss_kb_now() >> 10));
  std::printf("seed:              %llu\n", static_cast<unsigned long long>(o.seed));
  std::printf("series:            %s\n", series_path);
  if (series->dropped() > 0)
    std::fprintf(stderr,
                 "*** WARNING: %llu series lines failed to write — the stream "
                 "is TRUNCATED (disk full?).\n",
                 static_cast<unsigned long long>(series->dropped()));

  auto safety = cluster.check_safety();
  std::printf("safety:            %s\n", safety ? safety->c_str() : "OK");
  if (rounds < target_rounds)
    std::fprintf(stderr, "note: stopped %llu rounds short of the target\n",
                 static_cast<unsigned long long>(target_rounds - rounds));
  return safety ? 1 : 0;
}
