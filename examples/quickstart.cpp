// Quickstart: run a 4-party Internet Computer Consensus (ICC0) instance on a
// simulated network and watch blocks finalize.
//
//   $ ./examples/quickstart
//
// Shows the minimal embedding: build a Cluster, run virtual time forward,
// read the committed chain back from any party.
#include <cstdio>

#include "harness/cluster.hpp"

int main() {
  using namespace icc;

  harness::ClusterOptions options;
  options.n = 4;                          // parties
  options.t = 1;                          // tolerated corruptions (t < n/3)
  options.protocol = harness::Protocol::kIcc0;
  options.crypto = harness::CryptoKind::kReal;  // full Ed25519 + DVRF beacon
  options.seed = 2024;
  options.delta_bnd = sim::msec(300);     // partial-synchrony bound
  options.payload_size = 64;
  options.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::UniformDelay>(sim::msec(5), sim::msec(25));
  };

  harness::Cluster cluster(options);
  std::printf("running 4-party ICC0 for 10 s of virtual time "
              "(real Ed25519 signatures, DDH threshold beacon)...\n\n");
  cluster.run_for(sim::seconds(10));

  const auto& chain = cluster.party(0)->committed();
  std::printf("party 0 committed %zu blocks:\n", chain.size());
  for (size_t i = 0; i < chain.size() && i < 8; ++i) {
    const auto& b = chain[i];
    std::printf("  round %2u  proposer P%u  hash %02x%02x%02x%02x...  committed at %.1f ms\n",
                b.round, b.proposer, b.hash[0], b.hash[1], b.hash[2], b.hash[3],
                sim::to_ms(b.committed_at));
  }
  if (chain.size() > 8) std::printf("  ... and %zu more\n", chain.size() - 8);

  auto safety = cluster.check_safety();
  std::printf("\nsafety (all outputs prefix-consistent): %s\n",
              safety ? safety->c_str() : "OK");
  std::printf("average commit latency: %.1f ms\n", cluster.avg_latency_ms());
  std::printf("throughput: %.2f blocks/s\n",
              cluster.blocks_per_second(sim::seconds(10)));
  return safety ? 1 : 0;
}
