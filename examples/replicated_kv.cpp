// Replicated key-value store: state machine replication (the paper's framing
// of atomic broadcast, Section 1) on top of Protocol ICC1.
//
// Seven replicas, one crashed, clients submitting PUT/DEL commands to a
// quorum; at the end every live replica holds the same KV state.
#include <cstdio>

#include "harness/cluster.hpp"
#include "smr/smr.hpp"

int main() {
  using namespace icc;
  const size_t n = 7, t = 2;

  std::vector<std::shared_ptr<smr::CommandQueue>> queues;
  std::vector<std::shared_ptr<smr::Replica>> replicas;
  for (size_t i = 0; i < n; ++i) {
    auto q = std::make_shared<smr::CommandQueue>();
    queues.push_back(q);
    replicas.push_back(std::make_shared<smr::Replica>(q, std::make_shared<smr::KvStore>()));
  }

  harness::ClusterOptions options;
  options.n = n;
  options.t = t;
  options.protocol = harness::Protocol::kIcc1;  // gossip dissemination
  options.seed = 7;
  options.delta_bnd = sim::msec(200);
  options.corrupt = {{5, harness::Crashed{}}};  // one replica is down
  options.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::UniformDelay>(sim::msec(5), sim::msec(30));
  };
  options.payload_factory = [&](sim::PartyIndex i) { return queues[i]; };
  options.on_commit = [&](sim::PartyIndex self, const consensus::CommittedBlock& b) {
    replicas[self]->on_commit(b);
  };
  harness::Cluster cluster(options);

  // A client workload: 50 puts and a few deletes, submitted to n - t parties.
  uint64_t next_id = 1;
  auto submit_to_quorum = [&](const smr::Command& cmd) {
    for (size_t p = 0; p < n - t; ++p) replicas[p]->submit(cmd);
  };
  for (int i = 0; i < 50; ++i) {
    submit_to_quorum(smr::KvStore::put(next_id++, "user:" + std::to_string(i % 10),
                                       "balance=" + std::to_string(100 * i)));
  }
  submit_to_quorum(smr::KvStore::del(next_id++, "user:3"));
  submit_to_quorum(smr::KvStore::put(next_id++, "config/leader-policy", "random-beacon"));

  std::printf("running 7-replica ICC1 KV store (1 crashed) for 15 s...\n\n");
  cluster.run_for(sim::seconds(15));

  for (size_t p = 0; p < n; ++p) {
    if (p == 5) {
      std::printf("replica %zu: crashed\n", p);
      continue;
    }
    auto& kv = dynamic_cast<smr::KvStore&>(replicas[p]->state());
    auto digest = kv.digest();
    std::printf("replica %zu: %3zu keys, %3lu commands applied, state digest %02x%02x%02x%02x\n",
                p, kv.size(), static_cast<unsigned long>(kv.applied_count()), digest[0],
                digest[1], digest[2], digest[3]);
  }

  auto& kv0 = dynamic_cast<smr::KvStore&>(replicas[0]->state());
  std::printf("\nuser:4 -> %s\n", kv0.get("user:4").value_or("(missing)").c_str());
  std::printf("user:3 -> %s (deleted)\n", kv0.get("user:3").value_or("(missing)").c_str());
  std::printf("config/leader-policy -> %s\n",
              kv0.get("config/leader-policy").value_or("(missing)").c_str());

  auto safety = cluster.check_safety();
  std::printf("\nsafety: %s\n", safety ? safety->c_str() : "OK");
  return safety ? 1 : 0;
}
