// Subnet simulation: an Internet Computer-style subnet (13 nodes, WAN
// latencies of Section 5, gossip dissemination) under client load — the
// setting of the paper's Table 1, runnable as a demo.
#include <cstdio>

#include "harness/cluster.hpp"
#include "smr/smr.hpp"

int main() {
  using namespace icc;
  const size_t n = 13, t = 4;
  const sim::Duration run_time = sim::seconds(60);

  std::vector<std::shared_ptr<smr::CommandQueue>> queues;
  std::vector<std::shared_ptr<smr::Replica>> replicas;
  for (size_t i = 0; i < n; ++i) {
    auto q = std::make_shared<smr::CommandQueue>();
    queues.push_back(q);
    replicas.push_back(std::make_shared<smr::Replica>(q, std::make_shared<smr::KvStore>()));
  }

  harness::ClusterOptions o;
  o.n = n;
  o.t = t;
  o.protocol = harness::Protocol::kIcc1;
  o.seed = 33;
  o.delta_bnd = sim::msec(600);  // conservative WAN bound
  o.epsilon = sim::msec(200);    // governor (paper eq. 2)
  o.prune_lag = 8;
  o.delay_model = [](size_t num, uint64_t seed) {
    sim::WanDelay::Config wan;  // one-way 3..55 ms, matching the 6-110 ms RTTs
    wan.n = num;
    wan.seed = seed;
    return std::make_unique<sim::WanDelay>(wan);
  };
  o.payload_factory = [&](sim::PartyIndex i) { return queues[i]; };
  o.on_commit = [&](sim::PartyIndex self, const consensus::CommittedBlock& b) {
    replicas[self]->on_commit(b);
  };
  harness::Cluster cluster(o);

  // Client load: 100 state-changing requests/s of 1 KB each (the paper's
  // "with load" scenario), submitted to three gateway replicas.
  uint64_t next_id = 1;
  std::function<void()> pump = [&] {
    for (int i = 0; i < 10; ++i) {  // 10 requests per 100 ms tick
      smr::Command cmd;
      cmd.id = next_id++;
      cmd.data.push_back('P');
      std::string key = "req:" + std::to_string(cmd.id % 4096);
      cmd.data.push_back(static_cast<uint8_t>(key.size()));
      cmd.data.push_back(0);
      append(cmd.data, key);
      cmd.data.resize(1024, 0x5a);  // 1 KB total
      for (size_t p = 0; p < 3; ++p) replicas[p]->submit(cmd);
    }
    if (cluster.sim().engine().now() < run_time) {
      cluster.sim().engine().schedule_after(sim::msec(100), pump);
    }
  };
  cluster.sim().engine().schedule_at(0, pump);

  std::printf("simulating a 13-node subnet over a WAN (RTT 6-110 ms) with\n");
  std::printf("100 x 1 KB requests/s for 60 s of virtual time...\n\n");
  cluster.run_for(run_time);

  const auto& metrics = cluster.sim().network().metrics();
  double secs = sim::to_sec(run_time);
  size_t blocks = cluster.party(0)->committed().size();
  uint64_t total_cmds = replicas[0]->applied_commands();

  std::printf("blocks finalized:      %zu  (%.2f blocks/s)\n", blocks,
              static_cast<double>(blocks) / secs);
  std::printf("commands executed:     %lu  (%.1f req/s)\n",
              static_cast<unsigned long>(total_cmds),
              static_cast<double>(total_cmds) / secs);
  std::printf("avg commit latency:    %.1f ms\n", cluster.avg_latency_ms());
  double avg_mbps = 0;
  for (size_t i = 0; i < n; ++i)
    avg_mbps += static_cast<double>(metrics.bytes_sent[i]) * 8.0 / 1e6 / secs;
  avg_mbps /= static_cast<double>(n);
  std::printf("avg sent traffic/node: %.2f Mb/s\n", avg_mbps);
  std::printf("peak sender (bottleneck): %.2f Mb/s\n",
              static_cast<double>(metrics.max_bytes_sent()) * 8.0 / 1e6 / secs);

  auto safety = cluster.check_safety();
  std::printf("\nsafety: %s\n", safety ? safety->c_str() : "OK");
  return safety ? 1 : 0;
}
