// Common scaffolding for the baseline protocols (chained HotStuff,
// Tendermint-lite, PBFT-lite) the paper compares against in Section 1.1.
//
// The baselines share the ICC substrate (simulator, crypto provider, payload
// builder) so performance comparisons measure protocol structure, not
// implementation accidents. They are deliberately reduced to the mechanisms
// that drive the compared metrics — latency, reciprocal throughput,
// responsiveness, leader-failure robustness and traffic shape — and their
// simplifications are documented in DESIGN.md.
#pragma once

#include <vector>

#include "consensus/config.hpp"
#include "sim/network.hpp"

namespace icc::baselines {

using consensus::CommittedBlock;
using consensus::PartyConfig;
using types::Hash;
using types::PartyIndex;
using types::Round;

class BaselineParty : public sim::Process {
 public:
  virtual const std::vector<CommittedBlock>& committed() const = 0;
  virtual uint64_t current_height() const = 0;
};

}  // namespace icc::baselines
