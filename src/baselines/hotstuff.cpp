#include "baselines/hotstuff.hpp"

#include "crypto/sha256.hpp"
#include "support/serial.hpp"

namespace icc::baselines {

namespace {
constexpr uint8_t kTagProposal = 0x20;
constexpr uint8_t kTagVote = 0x21;
constexpr uint8_t kTagNewView = 0x22;

const types::Hash& genesis_hash() {
  static const types::Hash h = crypto::Sha256::hash("hotstuff-genesis");
  return h;
}
}  // namespace

Bytes HotStuffParty::Node::serialize() const {
  Writer w;
  w.u8(kTagProposal);
  w.u64(view);
  w.u32(proposer);
  w.raw(BytesView(parent.data(), parent.size()));
  w.bytes(payload);
  w.bytes(justify_qc);
  w.u64(justify_view);
  return std::move(w).take();
}

types::Hash HotStuffParty::Node::hash() const { return crypto::Sha256::hash(serialize()); }

HotStuffParty::HotStuffParty(PartyIndex self, const HotStuffConfig& config)
    : self_(self), config_(config), crypto_(config.crypto) {
  Node genesis;
  genesis.view = 0;
  nodes_.emplace(genesis_hash(), genesis);
  high_qc_block_ = genesis_hash();
}

Bytes HotStuffParty::vote_message(uint64_t view, const Hash& h) const {
  Writer w;
  w.u8(0x2F);  // vote domain
  w.u64(view);
  w.raw(BytesView(h.data(), h.size()));
  return std::move(w).take();
}

void HotStuffParty::start(sim::Context& ctx) {
  enter_view(ctx, 1);
}

void HotStuffParty::enter_view(sim::Context& ctx, uint64_t view) {
  if (view < view_) return;
  view_ = view;
  if (config_.max_view != 0 && view_ > config_.max_view) return;
  arm_pacemaker(ctx);
  // The happy-path leader proposes only once it holds the QC for the
  // previous view (it may enter the view earlier, when casting its own
  // vote); stale-QC proposals happen only on the pacemaker timeout path.
  if (leader_of(view_) == self_ && high_qc_view_ + 1 == view_) propose(ctx);
}

void HotStuffParty::arm_pacemaker(sim::Context& ctx) {
  const uint64_t epoch = ++pacemaker_epoch_;
  const uint64_t armed_view = view_;
  sim::Context c = ctx;
  ctx.set_timer(config_.view_timeout, [this, c, epoch, armed_view]() mutable {
    if (pacemaker_epoch_ != epoch || view_ != armed_view) return;  // progressed
    if (config_.max_view != 0 && view_ + 1 > config_.max_view) return;
    // View change: advance, ship our highest QC to the new leader.
    view_++;
    Writer w;
    w.u8(kTagNewView);
    w.u64(view_);
    w.u64(high_qc_view_);
    w.raw(BytesView(high_qc_block_.data(), high_qc_block_.size()));
    w.bytes(high_qc_);
    c.send(leader_of(view_), std::move(w).take());
    if (leader_of(view_) == self_) propose(c);
    arm_pacemaker(c);
  });
}

void HotStuffParty::propose(sim::Context& ctx) {
  if (last_proposed_view_ == view_) return;  // once per view
  last_proposed_view_ = view_;
  const Node* parent = &nodes_.at(high_qc_block_);
  Node n;
  n.view = view_;
  n.proposer = self_;
  n.parent = high_qc_block_;
  std::vector<const types::Block*> no_chain;
  n.payload = config_.payload->build(static_cast<Round>(view_), self_, no_chain);
  n.justify_qc = high_qc_;
  n.justify_view = high_qc_view_;
  (void)parent;

  Hash h = n.hash();
  proposal_times_[h] = ctx.now();
  if (config_.on_propose) config_.on_propose(self_, view_, h, ctx.now());
  ctx.broadcast(n.serialize());  // leader pushes the full block to everyone
}

void HotStuffParty::receive(sim::Context& ctx, sim::PartyIndex /*from*/, BytesView bytes) {
  if (bytes.empty()) return;
  if (config_.max_view != 0 && view_ > config_.max_view) return;
  switch (bytes[0]) {
    case kTagProposal: handle_proposal(ctx, bytes); break;
    case kTagVote: handle_vote(ctx, bytes); break;
    case kTagNewView: handle_new_view(ctx, bytes); break;
    default: break;
  }
}

void HotStuffParty::handle_proposal(sim::Context& ctx, BytesView bytes) {
  Node n;
  try {
    Reader r(bytes);
    r.u8();
    n.view = r.u64();
    n.proposer = r.u32();
    Bytes ph = r.raw(32);
    std::copy(ph.begin(), ph.end(), n.parent.begin());
    n.payload = r.bytes();
    n.justify_qc = r.bytes();
    n.justify_view = r.u64();
    r.expect_done();
  } catch (const ParseError&) {
    return;
  }
  if (n.proposer != leader_of(n.view)) return;
  if (n.view < view_) return;  // stale

  // Validate the justify QC (genesis needs none).
  if (n.justify_view == 0) {
    if (!(n.parent == genesis_hash())) return;
  } else {
    if (!crypto_->threshold_verify(crypto::Scheme::kNotary,
                                   vote_message(n.justify_view, n.parent), n.justify_qc)) {
      return;
    }
  }

  Hash h = n.hash();
  nodes_.emplace(h, n);
  if (n.justify_view > high_qc_view_) {
    high_qc_view_ = n.justify_view;
    high_qc_block_ = n.parent;
    high_qc_ = n.justify_qc;
  }
  try_commit(ctx, n.parent);

  // Vote, send to the next leader, advance.
  Bytes share = crypto_->threshold_sign_share(crypto::Scheme::kNotary, self_,
                                              vote_message(n.view, h));
  Writer w;
  w.u8(kTagVote);
  w.u64(n.view);
  w.raw(BytesView(h.data(), h.size()));
  w.u32(self_);
  w.bytes(share);
  ctx.send(leader_of(n.view + 1), std::move(w).take());
  enter_view(ctx, n.view + 1);
}

void HotStuffParty::handle_vote(sim::Context& ctx, BytesView bytes) {
  uint64_t view;
  Hash h;
  PartyIndex signer;
  Bytes share;
  try {
    Reader r(bytes);
    r.u8();
    view = r.u64();
    Bytes hb = r.raw(32);
    std::copy(hb.begin(), hb.end(), h.begin());
    signer = r.u32();
    share = r.bytes();
    r.expect_done();
  } catch (const ParseError&) {
    return;
  }
  if (leader_of(view + 1) != self_) return;
  if (!crypto_->threshold_verify_share(crypto::Scheme::kNotary, signer,
                                       vote_message(view, h), share)) {
    return;
  }
  auto it = vote_target_.find(view);
  if (it == vote_target_.end()) {
    vote_target_[view] = h;
  } else if (!(it->second == h)) {
    return;  // conflicting vote target; ignore
  }
  auto& shares = votes_[view];
  for (const auto& [s, _] : shares)
    if (s == signer) return;
  shares.emplace_back(signer, share);
  if (shares.size() < crypto_->quorum()) return;

  Bytes qc = crypto_->threshold_combine(crypto::Scheme::kNotary, vote_message(view, h), shares);
  if (qc.empty()) return;
  if (view > high_qc_view_) {
    high_qc_view_ = view;
    high_qc_block_ = h;
    high_qc_ = qc;
  }
  try_commit(ctx, h);
  // Responsiveness: the QC lets the next view start immediately.
  enter_view(ctx, view + 1);
}

void HotStuffParty::handle_new_view(sim::Context& ctx, BytesView bytes) {
  try {
    Reader r(bytes);
    r.u8();
    uint64_t view = r.u64();
    uint64_t qc_view = r.u64();
    Hash qc_block;
    Bytes hb = r.raw(32);
    std::copy(hb.begin(), hb.end(), qc_block.begin());
    Bytes qc = r.bytes();
    r.expect_done();
    if (qc_view > high_qc_view_ &&
        crypto_->threshold_verify(crypto::Scheme::kNotary, vote_message(qc_view, qc_block),
                                  qc)) {
      high_qc_view_ = qc_view;
      high_qc_block_ = qc_block;
      high_qc_ = qc;
    }
    (void)view;
    (void)ctx;
  } catch (const ParseError&) {
  }
}

void HotStuffParty::try_commit(sim::Context& ctx, const Hash& head) {
  // 3-chain rule: QC exists for `head` (= b2); if b2.parent = b1 and
  // b1.parent = b0 with consecutive views, b0 (and its ancestors) commit.
  auto it2 = nodes_.find(head);
  if (it2 == nodes_.end()) return;
  const Node& b2 = it2->second;
  auto it1 = nodes_.find(b2.parent);
  if (it1 == nodes_.end()) return;
  const Node& b1 = it1->second;
  if (b1.view + 1 != b2.view) return;
  auto it0 = nodes_.find(b1.parent);
  if (it0 == nodes_.end()) return;
  const Node& b0 = it0->second;
  if (b0.view + 1 != b1.view) return;
  if (b0.view <= last_committed_view_) return;

  // Collect the chain from b0 down to the last committed view.
  std::vector<const Node*> chain;
  const Node* cur = &b0;
  Hash cur_hash = b1.parent;
  while (cur->view > last_committed_view_) {
    chain.push_back(cur);
    if (cur->view == 0) break;
    auto pit = nodes_.find(cur->parent);
    if (pit == nodes_.end()) break;  // missing ancestry; commit what we have
    cur_hash = cur->parent;
    cur = &pit->second;
  }
  (void)cur_hash;
  for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
    const Node* node = *rit;
    if (node->view == 0) continue;
    CommittedBlock c;
    c.round = static_cast<Round>(node->view);
    c.proposer = node->proposer;
    // Recompute the hash (nodes_ key); cheap relative to block size.
    c.hash = node->hash();
    c.payload_size = node->payload.size();
    if (config_.record_payloads) c.payload = node->payload;
    c.committed_at = ctx.now();
    if (config_.on_commit) config_.on_commit(self_, c);
    committed_.push_back(std::move(c));
  }
  last_committed_view_ = b0.view;
}

}  // namespace icc::baselines
