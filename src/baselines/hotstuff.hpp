// Chained HotStuff baseline [36].
//
// One block per view; the leader of view v+1 collects votes on the view-v
// block into a quorum certificate (QC) and proposes the next block carrying
// that QC; a block commits under the 3-chain rule (three blocks with
// consecutive views chained by parent links commit the first). Leaders
// rotate round-robin; a pacemaker timer fires view changes when a view
// stalls (new-view messages carry the highest QC to the next leader).
//
// The properties the comparison benches exercise (Section 1.1 of the ICC
// paper): optimistic responsiveness, reciprocal throughput 2*delta but
// latency 6*delta (vs ICC0's 3*delta), leader-push block dissemination (the
// bottleneck ICC1/ICC2 remove), and no built-in reliable block dissemination.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>

#include "baselines/baseline.hpp"
#include "crypto/provider.hpp"
#include "types/block.hpp"

namespace icc::baselines {

struct HotStuffConfig {
  crypto::CryptoProvider* crypto = nullptr;
  std::shared_ptr<consensus::PayloadBuilder> payload;
  sim::Duration view_timeout = sim::msec(1200);  ///< pacemaker (~4 * delta_bnd)
  bool record_payloads = true;
  uint64_t max_view = 0;  ///< stop after this view (0 = unbounded)
  std::function<void(PartyIndex, const CommittedBlock&)> on_commit;
  std::function<void(PartyIndex, uint64_t view, const Hash&, sim::Time)> on_propose;
};

class HotStuffParty final : public BaselineParty {
 public:
  HotStuffParty(PartyIndex self, const HotStuffConfig& config);

  void start(sim::Context& ctx) override;
  void receive(sim::Context& ctx, sim::PartyIndex from, BytesView payload) override;

  const std::vector<CommittedBlock>& committed() const override { return committed_; }
  uint64_t current_height() const override { return view_; }

 private:
  struct Node {
    uint64_t view = 0;
    PartyIndex proposer = 0;
    Hash parent{};
    Bytes payload;
    Bytes justify_qc;      // QC over the parent (empty for the first block)
    uint64_t justify_view = 0;

    Bytes serialize() const;
    Hash hash() const;
  };

  PartyIndex leader_of(uint64_t view) const {
    return static_cast<PartyIndex>(view % config_.crypto->n());
  }

  void enter_view(sim::Context& ctx, uint64_t view);
  void propose(sim::Context& ctx);
  void handle_proposal(sim::Context& ctx, BytesView bytes);
  void handle_vote(sim::Context& ctx, BytesView bytes);
  void handle_new_view(sim::Context& ctx, BytesView bytes);
  void try_commit(sim::Context& ctx, const Hash& head);
  void arm_pacemaker(sim::Context& ctx);

  Bytes vote_message(uint64_t view, const Hash& h) const;

  PartyIndex self_;
  HotStuffConfig config_;
  crypto::CryptoProvider* crypto_;

  uint64_t view_ = 1;
  std::unordered_map<Hash, Node, types::HashHasher> nodes_;
  Hash high_qc_block_{};   // block certified by the highest known QC
  Bytes high_qc_;          // the QC itself
  uint64_t high_qc_view_ = 0;
  std::map<uint64_t, std::vector<std::pair<crypto::PartyIndex, Bytes>>> votes_;  // by view
  std::map<uint64_t, Hash> vote_target_;  // block being voted on per view
  uint64_t last_committed_view_ = 0;
  uint64_t last_proposed_view_ = 0;
  uint64_t pacemaker_epoch_ = 0;
  std::vector<CommittedBlock> committed_;
  std::unordered_map<Hash, sim::Time, types::HashHasher> proposal_times_;
};

}  // namespace icc::baselines
