#include "baselines/pbft.hpp"

#include "crypto/sha256.hpp"
#include "support/serial.hpp"

namespace icc::baselines {

namespace {
constexpr uint8_t kTagPrePrepare = 0x40;
constexpr uint8_t kTagPrepare = 0x41;
constexpr uint8_t kTagCommit = 0x42;
constexpr uint8_t kTagViewChange = 0x43;

types::Hash digest_of(uint64_t view, uint64_t seq, BytesView payload) {
  Writer w;
  w.u8(0x4F);
  w.u64(view);
  w.u64(seq);
  w.bytes(payload);
  return crypto::Sha256::hash(w.data());
}
}  // namespace

PbftParty::PbftParty(PartyIndex self, const PbftConfig& config)
    : self_(self), config_(config), crypto_(config.crypto) {}

void PbftParty::start(sim::Context& ctx) {
  arm_progress_timer(ctx);
  maybe_propose(ctx);
}

Bytes PbftParty::phase_msg(bool commit_phase, uint64_t view, uint64_t seq,
                           const Hash& h) const {
  Writer w;
  w.u8(commit_phase ? 0x4E : 0x4D);
  w.u64(view);
  w.u64(seq);
  w.raw(BytesView(h.data(), h.size()));
  return std::move(w).take();
}

void PbftParty::maybe_propose(sim::Context& ctx) {
  if (leader_of(view_) != self_) return;
  if (config_.max_seq != 0 && next_seq_ > config_.max_seq) return;
  if (states_.count({view_, next_seq_})) return;  // already proposed

  if (config_.propose_delay > 0 && !delay_pending_) {
    // Throttling leader: sit on the proposal for as long as the view-change
    // timer allows.
    delay_pending_ = true;
    const uint64_t seq = next_seq_;
    const uint64_t view = view_;
    sim::Context c = ctx;
    ctx.set_timer(config_.propose_delay, [this, c, seq, view]() mutable {
      delay_pending_ = false;
      if (view_ != view || next_seq_ != seq) return;
      sim::Duration saved = config_.propose_delay;
      config_.propose_delay = 0;
      maybe_propose(c);
      config_.propose_delay = saved;
    });
    return;
  }

  std::vector<const types::Block*> no_chain;
  Bytes payload = config_.payload->build(static_cast<Round>(next_seq_), self_, no_chain);
  Hash d = digest_of(view_, next_seq_, payload);
  if (config_.on_propose) config_.on_propose(self_, next_seq_, d, ctx.now());
  Writer w;
  w.u8(kTagPrePrepare);
  w.u64(view_);
  w.u64(next_seq_);
  w.u32(self_);
  w.bytes(payload);
  w.bytes(crypto_->sign(self_, Bytes(d.begin(), d.end())));
  ctx.broadcast(std::move(w).take());
}

void PbftParty::receive(sim::Context& ctx, sim::PartyIndex, BytesView bytes) {
  if (bytes.empty()) return;
  switch (bytes[0]) {
    case kTagPrePrepare: handle_preprepare(ctx, bytes); break;
    case kTagPrepare: handle_phase_vote(ctx, bytes, false); break;
    case kTagCommit: handle_phase_vote(ctx, bytes, true); break;
    case kTagViewChange: handle_view_change(ctx, bytes); break;
    default: break;
  }
}

void PbftParty::handle_preprepare(sim::Context& ctx, BytesView bytes) {
  uint64_t view, seq;
  PartyIndex proposer;
  Bytes payload, sig;
  try {
    Reader r(bytes);
    r.u8();
    view = r.u64();
    seq = r.u64();
    proposer = r.u32();
    payload = r.bytes();
    sig = r.bytes();
    r.expect_done();
  } catch (const ParseError&) {
    return;
  }
  if (view != view_ || proposer != leader_of(view)) return;
  if (seq != next_seq_) return;
  Hash d = digest_of(view, seq, payload);
  if (!crypto_->verify(proposer, Bytes(d.begin(), d.end()), sig)) return;

  SeqState& st = states_[{view, seq}];
  if (!st.payload.empty()) return;  // duplicate pre-prepare
  st.payload = std::move(payload);
  st.proposer = proposer;
  st.digest = d;

  Bytes share = crypto_->threshold_sign_share(crypto::Scheme::kNotary, self_,
                                              phase_msg(false, view, seq, d));
  Writer w;
  w.u8(kTagPrepare);
  w.u64(view);
  w.u64(seq);
  w.raw(BytesView(d.data(), d.size()));
  w.u32(self_);
  w.bytes(share);
  ctx.broadcast(std::move(w).take());
}

void PbftParty::handle_phase_vote(sim::Context& ctx, BytesView bytes, bool commit_phase) {
  uint64_t view, seq;
  Hash d;
  PartyIndex signer;
  Bytes share;
  try {
    Reader r(bytes);
    r.u8();
    view = r.u64();
    seq = r.u64();
    Bytes db = r.raw(32);
    std::copy(db.begin(), db.end(), d.begin());
    signer = r.u32();
    share = r.bytes();
    r.expect_done();
  } catch (const ParseError&) {
    return;
  }
  if (view != view_) return;
  if (!crypto_->threshold_verify_share(crypto::Scheme::kNotary, signer,
                                       phase_msg(commit_phase, view, seq, d), share)) {
    return;
  }
  SeqState& st = states_[{view, seq}];
  auto& bucket = commit_phase ? st.commits : st.prepares;
  for (const auto& [s, _] : bucket)
    if (s == signer) return;
  bucket.emplace_back(signer, share);

  if (!commit_phase) {
    if (st.prepared || st.prepares.size() < crypto_->quorum()) return;
    if (st.payload.empty() || !(st.digest == d)) return;  // need the pre-prepare body
    st.prepared = true;
    Bytes cshare = crypto_->threshold_sign_share(crypto::Scheme::kNotary, self_,
                                                 phase_msg(true, view, seq, d));
    Writer w;
    w.u8(kTagCommit);
    w.u64(view);
    w.u64(seq);
    w.raw(BytesView(d.data(), d.size()));
    w.u32(self_);
    w.bytes(cshare);
    ctx.broadcast(std::move(w).take());
    return;
  }

  if (st.committed || st.commits.size() < crypto_->quorum()) return;
  if (st.payload.empty() || !(st.digest == d) || seq != next_seq_) return;
  st.committed = true;

  CommittedBlock c;
  c.round = static_cast<Round>(seq);
  c.proposer = st.proposer;
  c.hash = d;
  c.payload_size = st.payload.size();
  if (config_.record_payloads) c.payload = st.payload;
  c.committed_at = ctx.now();
  if (config_.on_commit) config_.on_commit(self_, c);
  committed_.push_back(std::move(c));

  next_seq_ = seq + 1;
  arm_progress_timer(ctx);  // progress made: reset the view-change clock
  maybe_propose(ctx);
}

void PbftParty::arm_progress_timer(sim::Context& ctx) {
  const uint64_t epoch = ++timer_epoch_;
  if (config_.max_seq != 0 && next_seq_ > config_.max_seq) return;
  sim::Context c = ctx;
  ctx.set_timer(config_.view_timeout, [this, c, epoch]() mutable {
    if (timer_epoch_ != epoch) return;  // progress or later re-arm happened
    // No progress: demand a view change.
    Writer w;
    w.u8(kTagViewChange);
    w.u64(view_ + 1);
    w.u32(self_);
    w.bytes(c.rng().bytes(64));  // stand-in for a signed VC certificate
    c.broadcast(std::move(w).take());
    arm_progress_timer(c);
  });
}

void PbftParty::handle_view_change(sim::Context& ctx, BytesView bytes) {
  uint64_t new_view;
  PartyIndex voter;
  try {
    Reader r(bytes);
    r.u8();
    new_view = r.u64();
    voter = r.u32();
    (void)r.bytes();
    r.expect_done();
  } catch (const ParseError&) {
    return;
  }
  if (new_view <= view_) return;
  auto& votes = view_change_votes_[new_view];
  votes.insert(voter);
  if (votes.size() < crypto_->quorum()) return;
  view_ = new_view;
  arm_progress_timer(ctx);
  maybe_propose(ctx);
}

}  // namespace icc::baselines
