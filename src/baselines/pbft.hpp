// PBFT-lite baseline [13].
//
// Stable leader with pre-prepare / prepare / commit phases and a view-change
// triggered by a progress timeout. The robustness comparison (Section 1,
// "Robust consensus", citing [15]) is the point: a silent or slow Byzantine
// leader stalls PBFT for a full view-change timeout — repeatedly, if several
// consecutive leaders are corrupt — whereas ICC merely degrades one round.
//
// Simplifications (DESIGN.md): one outstanding sequence number at a time (no
// watermark window), view-change certificates carry only the new view number
// (our benches never need state transfer across view changes because a
// sequence commits before the next starts).
#pragma once

#include <map>
#include <set>

#include "baselines/baseline.hpp"
#include "crypto/provider.hpp"

namespace icc::baselines {

struct PbftConfig {
  crypto::CryptoProvider* crypto = nullptr;
  std::shared_ptr<consensus::PayloadBuilder> payload;
  sim::Duration view_timeout = sim::msec(1000);
  /// If this party is leader, delay each proposal by this much — the
  /// undetectable-throttling attack of Clement et al. [15]: staying just
  /// under the view-change timeout caps throughput indefinitely.
  sim::Duration propose_delay = 0;
  bool record_payloads = true;
  uint64_t max_seq = 0;
  std::function<void(PartyIndex, const CommittedBlock&)> on_commit;
  std::function<void(PartyIndex, uint64_t seq, const Hash&, sim::Time)> on_propose;
};

class PbftParty final : public BaselineParty {
 public:
  PbftParty(PartyIndex self, const PbftConfig& config);

  void start(sim::Context& ctx) override;
  void receive(sim::Context& ctx, sim::PartyIndex from, BytesView payload) override;

  const std::vector<CommittedBlock>& committed() const override { return committed_; }
  uint64_t current_height() const override { return next_seq_; }
  uint64_t view() const { return view_; }

 private:
  PartyIndex leader_of(uint64_t view) const {
    return static_cast<PartyIndex>(view % config_.crypto->n());
  }

  void maybe_propose(sim::Context& ctx);
  void handle_preprepare(sim::Context& ctx, BytesView bytes);
  void handle_phase_vote(sim::Context& ctx, BytesView bytes, bool commit_phase);
  void handle_view_change(sim::Context& ctx, BytesView bytes);
  void arm_progress_timer(sim::Context& ctx);
  Bytes phase_msg(bool commit_phase, uint64_t view, uint64_t seq, const Hash& h) const;

  PartyIndex self_;
  PbftConfig config_;
  crypto::CryptoProvider* crypto_;

  uint64_t view_ = 0;
  uint64_t next_seq_ = 1;  ///< lowest uncommitted sequence number
  uint64_t timer_epoch_ = 0;
  bool delay_pending_ = false;

  struct SeqState {
    Bytes payload;
    PartyIndex proposer = 0;
    Hash digest{};
    bool prepared = false;
    bool committed = false;
    std::vector<std::pair<crypto::PartyIndex, Bytes>> prepares;
    std::vector<std::pair<crypto::PartyIndex, Bytes>> commits;
  };
  std::map<std::pair<uint64_t, uint64_t>, SeqState> states_;  // by (view, seq)
  std::map<uint64_t, std::set<PartyIndex>> view_change_votes_;
  std::vector<CommittedBlock> committed_;
};

}  // namespace icc::baselines
