#include "baselines/tendermint.hpp"

#include "crypto/sha256.hpp"
#include "support/serial.hpp"

namespace icc::baselines {

namespace {
constexpr uint8_t kTagProposal = 0x30;
constexpr uint8_t kTagPrevote = 0x31;
constexpr uint8_t kTagPrecommit = 0x32;

types::Hash proposal_hash(uint64_t h, uint32_t r, PartyIndex proposer, BytesView payload) {
  Writer w;
  w.u8(0x3F);
  w.u64(h);
  w.u32(r);
  w.u32(proposer);
  w.bytes(payload);
  return crypto::Sha256::hash(w.data());
}
}  // namespace

TendermintParty::TendermintParty(PartyIndex self, const TendermintConfig& config)
    : self_(self), config_(config), crypto_(config.crypto) {}

void TendermintParty::start(sim::Context& ctx) { enter_round(ctx, 1, 0); }

Bytes TendermintParty::vote_msg(bool precommit, uint64_t h, uint32_t r,
                                const std::optional<Hash>& v) const {
  Writer w;
  w.u8(precommit ? 0x3E : 0x3D);
  w.u64(h);
  w.u32(r);
  w.u8(v.has_value() ? 1 : 0);
  if (v) w.raw(BytesView(v->data(), v->size()));
  return std::move(w).take();
}

void TendermintParty::enter_round(sim::Context& ctx, uint64_t height, uint32_t round) {
  if (config_.max_height != 0 && height > config_.max_height) return;
  height_ = height;
  round_ = round;
  step_ = Step::kPropose;
  prevoted_ = false;
  precommitted_ = false;
  const uint64_t epoch = ++timer_epoch_;

  if (proposer_of(height, round) == self_) {
    std::vector<const types::Block*> no_chain;
    Bytes payload = config_.payload->build(static_cast<Round>(height), self_, no_chain);
    Hash h = proposal_hash(height, round, self_, payload);
    if (config_.on_propose) config_.on_propose(self_, height, h, ctx.now());
    Writer w;
    w.u8(kTagProposal);
    w.u64(height);
    w.u32(round);
    w.u32(self_);
    w.bytes(payload);
    w.bytes(crypto_->sign(self_, Bytes(h.begin(), h.end())));
    ctx.broadcast(std::move(w).take());
  }

  // Prevote nil if no proposal shows up in time.
  sim::Context c = ctx;
  ctx.set_timer(config_.timeout_propose, [this, c, epoch]() mutable {
    if (timer_epoch_ != epoch || step_ != Step::kPropose) return;
    step_ = Step::kPrevote;
    broadcast_vote(c, false, std::nullopt);
  });
}

void TendermintParty::receive(sim::Context& ctx, sim::PartyIndex, BytesView bytes) {
  if (bytes.empty()) return;
  switch (bytes[0]) {
    case kTagProposal: handle_proposal(ctx, bytes); break;
    case kTagPrevote: handle_vote(ctx, bytes, false); break;
    case kTagPrecommit: handle_vote(ctx, bytes, true); break;
    default: break;
  }
}

void TendermintParty::handle_proposal(sim::Context& ctx, BytesView bytes) {
  uint64_t h;
  uint32_t r;
  PartyIndex proposer;
  Bytes payload, sig;
  try {
    Reader rd(bytes);
    rd.u8();
    h = rd.u64();
    r = rd.u32();
    proposer = rd.u32();
    payload = rd.bytes();
    sig = rd.bytes();
    rd.expect_done();
  } catch (const ParseError&) {
    return;
  }
  if (proposer != proposer_of(h, r)) return;
  Hash ph = proposal_hash(h, r, proposer, payload);
  if (!crypto_->verify(proposer, Bytes(ph.begin(), ph.end()), sig)) return;
  proposals_[{h, r}] = {payload, proposer};

  if (h == height_ && r == round_ && step_ == Step::kPropose && !prevoted_) {
    step_ = Step::kPrevote;
    prevoted_ = true;
    broadcast_vote(ctx, false, ph);
  }
}

void TendermintParty::broadcast_vote(sim::Context& ctx, bool precommit,
                                     const std::optional<Hash>& value) {
  Bytes canonical = vote_msg(precommit, height_, round_, value);
  Bytes share = crypto_->threshold_sign_share(crypto::Scheme::kNotary, self_, canonical);
  Writer w;
  w.u8(precommit ? kTagPrecommit : kTagPrevote);
  w.u64(height_);
  w.u32(round_);
  w.u8(value.has_value() ? 1 : 0);
  if (value) w.raw(BytesView(value->data(), value->size()));
  w.u32(self_);
  w.bytes(share);
  ctx.broadcast(std::move(w).take());
}

void TendermintParty::handle_vote(sim::Context& ctx, BytesView bytes, bool precommit) {
  uint64_t h;
  uint32_t r;
  std::optional<Hash> value;
  PartyIndex signer;
  Bytes share;
  try {
    Reader rd(bytes);
    rd.u8();
    h = rd.u64();
    r = rd.u32();
    if (rd.u8() == 1) {
      Bytes vb = rd.raw(32);
      Hash v;
      std::copy(vb.begin(), vb.end(), v.begin());
      value = v;
    }
    signer = rd.u32();
    share = rd.bytes();
    rd.expect_done();
  } catch (const ParseError&) {
    return;
  }
  if (!crypto_->threshold_verify_share(crypto::Scheme::kNotary, signer,
                                       vote_msg(precommit, h, r, value), share)) {
    return;
  }
  auto& shares = votes_[{h, r, precommit, value}];
  for (const auto& [s, _] : shares)
    if (s == signer) return;
  shares.emplace_back(signer, share);
  if (shares.size() < crypto_->quorum()) return;
  if (h != height_ || r != round_) return;

  if (!precommit) {
    if (step_ != Step::kPrevote && step_ != Step::kPropose) return;
    if (precommitted_) return;
    precommitted_ = true;
    step_ = Step::kPrecommit;
    broadcast_vote(ctx, true, value);
    return;
  }

  // Quorum of precommits.
  if (step_ == Step::kDone) return;
  if (value.has_value()) {
    commit(ctx, *value);
  } else {
    enter_round(ctx, height_, round_ + 1);  // nil round: try the next proposer
  }
}

void TendermintParty::commit(sim::Context& ctx, const Hash& h) {
  auto it = proposals_.find({height_, round_});
  if (it == proposals_.end()) return;  // body missing; will commit when it arrives
  const ProposalRecord& rec = it->second;
  if (!(proposal_hash(height_, round_, rec.proposer, rec.payload) == h)) return;
  step_ = Step::kDone;

  CommittedBlock c;
  c.round = static_cast<Round>(height_);
  c.proposer = rec.proposer;
  c.hash = h;
  c.payload_size = rec.payload.size();
  if (config_.record_payloads) c.payload = rec.payload;
  c.committed_at = ctx.now();
  if (config_.on_commit) config_.on_commit(self_, c);
  committed_.push_back(std::move(c));

  // The non-responsive wait: a fixed timeout_commit before the next height,
  // regardless of how fast the network actually was.
  const uint64_t next = height_ + 1;
  const uint64_t epoch = ++timer_epoch_;
  sim::Context ctx2 = ctx;
  ctx.set_timer(config_.timeout_commit, [this, ctx2, next, epoch]() mutable {
    if (timer_epoch_ != epoch) return;
    enter_round(ctx2, next, 0);
  });
}

}  // namespace icc::baselines
