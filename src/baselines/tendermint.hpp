// Tendermint-lite baseline [8].
//
// One block per height; rounds within a height rotate the proposer.
// propose -> prevote (all-to-all) -> precommit (all-to-all) -> commit, with
// nil votes driving round changes when the proposer fails. The property the
// ICC comparison highlights is *non-responsiveness*: Tendermint waits a
// fixed timeout (timeout_commit, a function of Delta_bnd) before starting
// the next height, so a round costs O(Delta_bnd) even with an honest
// proposer and a fast network.
//
// Simplifications (documented in DESIGN.md): no value locking (our
// comparison benches run it fault-free or with crash faults only, where
// locking never triggers), gossip replaced by direct broadcast.
#pragma once

#include <map>
#include <optional>

#include "baselines/baseline.hpp"
#include "crypto/provider.hpp"

namespace icc::baselines {

struct TendermintConfig {
  crypto::CryptoProvider* crypto = nullptr;
  std::shared_ptr<consensus::PayloadBuilder> payload;
  sim::Duration timeout_propose = sim::msec(300);  ///< ~Delta_bnd
  sim::Duration timeout_commit = sim::msec(300);   ///< ~Delta_bnd (the non-responsive wait)
  bool record_payloads = true;
  uint64_t max_height = 0;
  std::function<void(PartyIndex, const CommittedBlock&)> on_commit;
  std::function<void(PartyIndex, uint64_t height, const Hash&, sim::Time)> on_propose;
};

class TendermintParty final : public BaselineParty {
 public:
  TendermintParty(PartyIndex self, const TendermintConfig& config);

  void start(sim::Context& ctx) override;
  void receive(sim::Context& ctx, sim::PartyIndex from, BytesView payload) override;

  const std::vector<CommittedBlock>& committed() const override { return committed_; }
  uint64_t current_height() const override { return height_; }

 private:
  enum class Step { kPropose, kPrevote, kPrecommit, kDone };

  PartyIndex proposer_of(uint64_t height, uint32_t round) const {
    return static_cast<PartyIndex>((height + round) % config_.crypto->n());
  }

  void enter_round(sim::Context& ctx, uint64_t height, uint32_t round);
  void handle_proposal(sim::Context& ctx, BytesView bytes);
  void handle_vote(sim::Context& ctx, BytesView bytes, bool precommit);
  void broadcast_vote(sim::Context& ctx, bool precommit, const std::optional<Hash>& value);
  void commit(sim::Context& ctx, const Hash& h);
  Bytes vote_msg(bool precommit, uint64_t h, uint32_t r, const std::optional<Hash>& v) const;

  PartyIndex self_;
  TendermintConfig config_;
  crypto::CryptoProvider* crypto_;

  uint64_t height_ = 1;
  uint32_t round_ = 0;
  Step step_ = Step::kPropose;
  uint64_t timer_epoch_ = 0;

  struct ProposalRecord {
    Bytes payload;
    PartyIndex proposer;
  };
  std::map<std::pair<uint64_t, uint32_t>, ProposalRecord> proposals_;  // by (h, r)
  // Votes keyed by (h, r, precommit?, value-or-nil).
  struct VoteKey {
    uint64_t h;
    uint32_t r;
    bool precommit;
    std::optional<Hash> value;
    bool operator<(const VoteKey& o) const {
      if (h != o.h) return h < o.h;
      if (r != o.r) return r < o.r;
      if (precommit != o.precommit) return precommit < o.precommit;
      return value < o.value;
    }
  };
  std::map<VoteKey, std::vector<std::pair<crypto::PartyIndex, Bytes>>> votes_;
  bool prevoted_ = false;
  bool precommitted_ = false;
  std::vector<CommittedBlock> committed_;
};

}  // namespace icc::baselines
