#include "codec/gf256.hpp"

#include <stdexcept>

namespace icc::codec {

const GF256::Tables& GF256::tables() {
  static const Tables t = [] {
    Tables t{};
    // Build exp/log tables by repeated multiplication by the generator using
    // the carry-less "Russian peasant" multiply (no tables available yet).
    auto slow_mul = [](uint8_t a, uint8_t b) {
      uint8_t p = 0;
      while (b) {
        if (b & 1) p ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi) a ^= 0x1b;  // reduce by x^8 + x^4 + x^3 + x + 1
        b >>= 1;
      }
      return p;
    };
    uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      t.exp[i] = x;
      t.log[x] = static_cast<uint8_t>(i);
      x = slow_mul(x, kGenerator);
    }
    for (int i = 255; i < 512; ++i) t.exp[i] = t.exp[i - 255];
    t.log[0] = 0;  // undefined; guarded by callers
    return t;
  }();
  return t;
}

uint8_t GF256::mul(uint8_t a, uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

uint8_t GF256::div(uint8_t a, uint8_t b) {
  if (b == 0) throw std::domain_error("GF256: division by zero");
  if (a == 0) return 0;
  const auto& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

uint8_t GF256::inv(uint8_t a) {
  if (a == 0) throw std::domain_error("GF256: inverse of zero");
  const auto& t = tables();
  return t.exp[255 - t.log[a]];
}

uint8_t GF256::pow(uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  unsigned le = (static_cast<unsigned>(t.log[a]) * e) % 255;
  return t.exp[le];
}

}  // namespace icc::codec
