// GF(2^8) arithmetic with the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b).
//
// Backing field for the Reed–Solomon erasure codes used by Protocol ICC2's
// reliable broadcast. Log/antilog tables make multiplication a couple of
// table lookups, which is what makes erasure coding megabyte-sized blocks
// practical.
#pragma once

#include <array>
#include <cstdint>

namespace icc::codec {

class GF256 {
 public:
  static uint8_t add(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t sub(uint8_t a, uint8_t b) { return a ^ b; }
  static uint8_t mul(uint8_t a, uint8_t b);
  static uint8_t div(uint8_t a, uint8_t b);  ///< b must be non-zero
  static uint8_t inv(uint8_t a);             ///< a must be non-zero
  static uint8_t pow(uint8_t a, unsigned e);

  /// The generator used for the tables (3 generates the multiplicative group
  /// under the AES polynomial).
  static constexpr uint8_t kGenerator = 3;

 private:
  struct Tables {
    std::array<uint8_t, 256> log;
    std::array<uint8_t, 512> exp;  // doubled to skip a mod 255
  };
  static const Tables& tables();
};

}  // namespace icc::codec
