#include "codec/merkle.hpp"

#include <stdexcept>

#include "support/serial.hpp"

namespace icc::codec {

namespace {

crypto::Sha256Digest hash_pair(const crypto::Sha256Digest& a, const crypto::Sha256Digest& b) {
  crypto::Sha256 h;
  uint8_t prefix = 0x01;
  h.update(BytesView(&prefix, 1));
  h.update(BytesView(a.data(), a.size()));
  h.update(BytesView(b.data(), b.size()));
  return h.digest();
}

}  // namespace

crypto::Sha256Digest MerkleTree::hash_leaf(BytesView data) {
  crypto::Sha256 h;
  uint8_t prefix = 0x00;
  h.update(BytesView(&prefix, 1));
  h.update(data);
  return h.digest();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) {
  if (leaves.empty()) throw std::invalid_argument("MerkleTree: need >= 1 leaf");
  std::vector<crypto::Sha256Digest> level;
  level.reserve(leaves.size());
  for (const auto& leaf : leaves) level.push_back(hash_leaf(leaf));
  levels_.push_back(std::move(level));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<crypto::Sha256Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      const auto& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(hash_pair(prev[i], right));
    }
    levels_.push_back(std::move(next));
  }
}

MerkleProof MerkleTree::prove(size_t index) const {
  if (index >= levels_[0].size()) throw std::out_of_range("MerkleTree::prove");
  MerkleProof proof;
  proof.leaf_index = static_cast<uint32_t>(index);
  size_t idx = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& level = levels_[lvl];
    size_t sibling = (idx % 2 == 0) ? idx + 1 : idx - 1;
    if (sibling >= level.size()) sibling = idx;  // odd node pairs with itself
    proof.path.push_back(level[sibling]);
    idx /= 2;
  }
  return proof;
}

bool MerkleTree::verify(const MerkleRoot& root, size_t leaf_count, BytesView leaf_data,
                        const MerkleProof& proof) {
  if (leaf_count == 0 || proof.leaf_index >= leaf_count) return false;
  // Expected path length = tree height.
  size_t height = 0;
  for (size_t w = leaf_count; w > 1; w = (w + 1) / 2) ++height;
  if (proof.path.size() != height) return false;

  crypto::Sha256Digest acc = hash_leaf(leaf_data);
  size_t idx = proof.leaf_index;
  size_t width = leaf_count;
  for (const auto& sibling : proof.path) {
    // An odd node at the end of a level hashes with itself; enforce that the
    // prover supplied exactly that digest so proofs stay canonical.
    const bool self_pair = (idx % 2 == 0) && (idx + 1 >= width);
    if (self_pair && sibling != acc) return false;
    if (idx % 2 == 0) {
      acc = hash_pair(acc, sibling);
    } else {
      acc = hash_pair(sibling, acc);
    }
    idx /= 2;
    width = (width + 1) / 2;
  }
  return acc == root;
}

Bytes MerkleProof::serialize() const {
  Writer w;
  w.u32(leaf_index);
  w.u32(static_cast<uint32_t>(path.size()));
  for (const auto& d : path) w.raw(BytesView(d.data(), d.size()));
  return std::move(w).take();
}

std::optional<MerkleProof> MerkleProof::deserialize(BytesView bytes) {
  try {
    Reader r(bytes);
    MerkleProof p;
    p.leaf_index = r.u32();
    uint32_t len = r.u32();
    if (len > 64) return std::nullopt;  // trees deeper than 2^64 don't exist
    for (uint32_t i = 0; i < len; ++i) {
      Bytes d = r.raw(32);
      crypto::Sha256Digest dig;
      std::copy(d.begin(), d.end(), dig.begin());
      p.path.push_back(dig);
    }
    r.expect_done();
    return p;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace icc::codec
