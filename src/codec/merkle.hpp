// Binary Merkle trees over SHA-256.
//
// ICC2's reliable broadcast authenticates erasure-coded fragments against the
// proposer's block hash: the proposer Merkle-commits to the n fragments, and
// each fragment travels with its authentication path, so any party can check
// a fragment against the root before echoing it (preventing corrupt parties
// from poisoning reconstruction).
//
// Construction notes: leaves are hashed with a 0x00 prefix and interior nodes
// with 0x01 (domain separation prevents leaf/node confusion attacks); an odd
// node at any level is paired with itself.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace icc::codec {

using MerkleRoot = crypto::Sha256Digest;

struct MerkleProof {
  uint32_t leaf_index = 0;
  std::vector<crypto::Sha256Digest> path;  ///< sibling hashes, leaf level first

  Bytes serialize() const;
  static std::optional<MerkleProof> deserialize(BytesView bytes);
};

class MerkleTree {
 public:
  /// Build a tree over the given leaf payloads. Requires >= 1 leaf.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const MerkleRoot& root() const { return levels_.back()[0]; }
  size_t leaf_count() const { return levels_[0].size(); }

  /// Authentication path for leaf `index`.
  MerkleProof prove(size_t index) const;

  /// Verify `leaf_data` at `proof.leaf_index` against `root` for a tree of
  /// `leaf_count` leaves.
  static bool verify(const MerkleRoot& root, size_t leaf_count, BytesView leaf_data,
                     const MerkleProof& proof);

  static crypto::Sha256Digest hash_leaf(BytesView data);

 private:
  std::vector<std::vector<crypto::Sha256Digest>> levels_;  // [0] = leaves
};

}  // namespace icc::codec
