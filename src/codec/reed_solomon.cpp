#include "codec/reed_solomon.hpp"

#include <stdexcept>
#include <unordered_set>

#include "codec/gf256.hpp"

namespace icc::codec {

namespace {

/// Lagrange basis coefficient L_j(y) for interpolation points xs:
///   L_j(y) = prod_{m != j} (y - xs[m]) / (xs[j] - xs[m]).
uint8_t lagrange_coeff(const std::vector<uint8_t>& xs, size_t j, uint8_t y) {
  uint8_t num = 1, den = 1;
  for (size_t m = 0; m < xs.size(); ++m) {
    if (m == j) continue;
    num = GF256::mul(num, GF256::sub(y, xs[m]));
    den = GF256::mul(den, GF256::sub(xs[j], xs[m]));
  }
  return GF256::div(num, den);
}

}  // namespace

ReedSolomon::ReedSolomon(size_t k, size_t n) : k_(k), n_(n) {
  if (k == 0 || k > n || n > 255)
    throw std::invalid_argument("ReedSolomon: need 0 < k <= n <= 255");
}

std::vector<Fragment> ReedSolomon::encode(BytesView data) const {
  const size_t frag_len = fragment_size(data.size());
  // Zero-padded data matrix: k fragments of frag_len bytes.
  Bytes padded(k_ * frag_len, 0);
  std::copy(data.begin(), data.end(), padded.begin());

  std::vector<Fragment> out(n_);
  for (size_t i = 0; i < k_; ++i) {
    out[i].index = static_cast<uint32_t>(i);
    out[i].data.assign(padded.begin() + i * frag_len, padded.begin() + (i + 1) * frag_len);
  }
  if (n_ == k_) return out;

  // Parity coefficients: row j (fragment k+j) = [L_i(k+j)]_i over data
  // points 0..k-1. Independent of the column, so computed once.
  std::vector<uint8_t> data_points(k_);
  for (size_t i = 0; i < k_; ++i) data_points[i] = static_cast<uint8_t>(i);

  for (size_t j = k_; j < n_; ++j) {
    std::vector<uint8_t> coeff(k_);
    for (size_t i = 0; i < k_; ++i)
      coeff[i] = lagrange_coeff(data_points, i, static_cast<uint8_t>(j));
    Fragment& f = out[j];
    f.index = static_cast<uint32_t>(j);
    f.data.assign(frag_len, 0);
    for (size_t i = 0; i < k_; ++i) {
      const uint8_t c = coeff[i];
      if (c == 0) continue;
      const uint8_t* src = padded.data() + i * frag_len;
      for (size_t b = 0; b < frag_len; ++b)
        f.data[b] = GF256::add(f.data[b], GF256::mul(c, src[b]));
    }
  }
  return out;
}

std::optional<Bytes> ReedSolomon::decode(std::span<const Fragment> fragments) const {
  // Select k fragments with distinct, in-range indices and equal sizes.
  std::vector<const Fragment*> use;
  std::unordered_set<uint32_t> seen;
  size_t frag_len = 0;
  for (const auto& f : fragments) {
    if (f.index >= n_) continue;
    if (!seen.insert(f.index).second) continue;
    if (use.empty()) {
      frag_len = f.data.size();
    } else if (f.data.size() != frag_len) {
      continue;
    }
    use.push_back(&f);
    if (use.size() == k_) break;
  }
  if (use.size() < k_) return std::nullopt;

  std::vector<uint8_t> xs(k_);
  for (size_t j = 0; j < k_; ++j) xs[j] = static_cast<uint8_t>(use[j]->index);

  Bytes out(k_ * frag_len, 0);
  for (size_t target = 0; target < k_; ++target) {
    uint8_t* dst = out.data() + target * frag_len;
    // Fast path: the systematic fragment for this target is present.
    bool copied = false;
    for (size_t j = 0; j < k_; ++j) {
      if (use[j]->index == target) {
        std::copy(use[j]->data.begin(), use[j]->data.end(), dst);
        copied = true;
        break;
      }
    }
    if (copied) continue;
    for (size_t j = 0; j < k_; ++j) {
      const uint8_t c = lagrange_coeff(xs, j, static_cast<uint8_t>(target));
      if (c == 0) continue;
      const uint8_t* src = use[j]->data.data();
      for (size_t b = 0; b < frag_len; ++b) dst[b] = GF256::add(dst[b], GF256::mul(c, src[b]));
    }
  }
  return out;
}

std::optional<Bytes> ReedSolomon::decode(std::span<const Fragment> fragments,
                                         size_t data_len) const {
  auto padded = decode(fragments);
  if (!padded) return std::nullopt;
  if (padded->size() < data_len) return std::nullopt;
  padded->resize(data_len);
  return padded;
}

}  // namespace icc::codec
