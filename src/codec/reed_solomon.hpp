// Systematic Reed–Solomon erasure coding over GF(256).
//
// The ICC2 reliable-broadcast subprotocol (paper Section 1: "a subprotocol
// based on erasure codes") splits a block into k = n - 2t data fragments and
// n - k parity fragments; any k fragments reconstruct the block. We use a
// systematic Lagrange-interpolation code: data fragment i is the evaluation
// of the (per-byte-column) degree-(k-1) polynomial at point i, with data
// occupying points 0..k-1, so the first k fragments are the data itself.
//
// Limits: n <= 255 (field size); this covers every realistic subnet (the
// Internet Computer's largest subnets have 40 nodes).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "support/bytes.hpp"

namespace icc::codec {

struct Fragment {
  uint32_t index = 0;  ///< evaluation point / fragment id, in [0, n)
  Bytes data;
};

class ReedSolomon {
 public:
  /// Code with k data fragments out of n total. Requires 0 < k <= n <= 255.
  ReedSolomon(size_t k, size_t n);

  size_t k() const { return k_; }
  size_t n() const { return n_; }

  /// Split `data` into n fragments of equal size ceil(|data| / k). The
  /// original length is recoverable only if the caller records it (encode
  /// pads with zeros); fragment size is returned by fragment_size().
  std::vector<Fragment> encode(BytesView data) const;

  size_t fragment_size(size_t data_len) const { return (data_len + k_ - 1) / k_; }

  /// Reconstruct the padded data (k * fragment_size bytes) from any >= k
  /// fragments with distinct valid indices. Returns nullopt if fewer than k
  /// distinct usable fragments or inconsistent sizes.
  std::optional<Bytes> decode(std::span<const Fragment> fragments) const;

  /// Reconstruct and trim to the original length.
  std::optional<Bytes> decode(std::span<const Fragment> fragments, size_t data_len) const;

 private:
  size_t k_, n_;
};

}  // namespace icc::codec
