#include "consensus/byzantine.hpp"

namespace icc::consensus {

bool ByzantineParty::propose_block(sim::Context& ctx) {
  if (behavior_.withhold_proposal || muted()) return false;

  if (behavior_.empty_payload) {
    emit_proposal(ctx, Bytes{});
    return true;
  }

  if (behavior_.equivocate) {
    // Two conflicting blocks for the same (round, rank); half the parties
    // get block A, the other half block B. Honest parties that see both
    // will disqualify this rank (Fig. 1 clause (c)).
    auto parents = pool_.notarized_blocks_at(round_ - 1);
    if (parents.empty()) return false;
    const Hash parent = parents.front();
    std::vector<const types::Block*> chain;
    if (parent != types::root_hash()) chain = pool_.chain_to(parent);

    types::Block a, b;
    a.round = b.round = round_;
    a.proposer = b.proposer = self_;
    a.parent_hash = b.parent_hash = parent;
    a.payload = config_.payload->build(round_, self_, chain);
    b.payload = a.payload;
    b.payload.push_back(0xEE);  // any difference yields a distinct hash

    types::ProposalMsg pa = build_proposal(a);
    types::ProposalMsg pb = build_proposal(b);
    Bytes wire_a = types::serialize_message(types::Message{pa});
    Bytes wire_b = types::serialize_message(types::Message{pb});
    for (sim::PartyIndex i = 0; i < ctx.n(); ++i) {
      ctx.send(i, (i % 2 == 0) ? wire_a : wire_b);
    }
    pool_.add_proposal(pa);  // track one of them locally
    return true;
  }

  return Icc0Party::propose_block(ctx);
}

void ByzantineParty::disseminate(sim::Context& ctx, const types::Message& msg,
                                 bool is_block_bearing) {
  if (muted()) return;
  if (behavior_.withhold_notarization &&
      std::holds_alternative<types::NotarizationShareMsg>(msg)) {
    return;
  }
  if (behavior_.withhold_finalization &&
      std::holds_alternative<types::FinalizationShareMsg>(msg)) {
    return;
  }
  Icc0Party::disseminate(ctx, msg, is_block_bearing);
}

}  // namespace icc::consensus
