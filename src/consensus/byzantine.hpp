// Adversarial party implementations.
//
// The paper assumes a static adversary corrupting up to t < n/3 parties
// (Section 3.1) and distinguishes crash failures, "consistent" failures
// (not conspicuously incorrect) and full Byzantine behaviour. These process
// implementations realize the attacks the evaluation cares about:
//
//   * CrashParty        — never sends anything (also models the "one third
//                         of the nodes refuses to participate" scenario of
//                         Table 1);
//   * ByzantineParty    — an Icc0Party subclass with attack toggles:
//       - equivocate:             propose two different blocks, each to half
//                                 of the parties (rank disqualification path);
//       - empty_payload:          censorship — propose payload-free blocks;
//       - withhold_proposal:      never propose (consistent failure);
//       - withhold_notarization:  never send notarization shares;
//       - withhold_finalization:  never send finalization shares (delays
//                                 commits without violating safety);
//       - mute_after:             crash at a given round.
//
// All toggles compose; everything not toggled follows the honest protocol.
#pragma once

#include "consensus/icc0.hpp"

namespace icc::consensus {

class CrashParty final : public sim::Process {
 public:
  void start(sim::Context&) override {}
  void receive(sim::Context&, sim::PartyIndex, BytesView) override {}
};

struct ByzantineBehavior {
  bool equivocate = false;
  bool empty_payload = false;
  bool withhold_proposal = false;
  bool withhold_notarization = false;
  bool withhold_finalization = false;
  Round mute_after = 0;  ///< 0 = never mute
};

class ByzantineParty : public Icc0Party {
 public:
  ByzantineParty(PartyIndex self, const PartyConfig& config, const ByzantineBehavior& b)
      : Icc0Party(self, config), behavior_(b) {}

 protected:
  bool propose_block(sim::Context& ctx) override;
  void disseminate(sim::Context& ctx, const types::Message& msg,
                   bool is_block_bearing) override;

 private:
  bool muted() const { return behavior_.mute_after != 0 && round_ > behavior_.mute_after; }

  ByzantineBehavior behavior_;
};

}  // namespace icc::consensus
