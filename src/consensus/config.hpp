// Configuration shared by the ICC protocol parties.
#pragma once

#include <functional>
#include <memory>

#include "crypto/provider.hpp"
#include "obs/obs.hpp"
#include "pipeline/verifier.hpp"
#include "sim/time.hpp"
#include "support/executor.hpp"
#include "types/block.hpp"

namespace icc::pipeline {
class InternStore;
}

namespace icc::consensus {

using types::Block;
using types::Hash;
using types::PartyIndex;
using types::Round;

/// A block committed to a party's output queue (the atomic-broadcast output).
struct CommittedBlock {
  Round round = 0;
  PartyIndex proposer = 0;
  Hash hash{};
  Bytes payload;  ///< empty when PartyConfig::record_payloads is false
  size_t payload_size = 0;
  sim::Time committed_at = 0;
};

/// Application hook producing block payloads (paper: getPayload(B_p); "the
/// details of which are application dependent"). The chain root..parent is
/// provided so implementations can de-duplicate commands.
class PayloadBuilder {
 public:
  virtual ~PayloadBuilder() = default;
  virtual Bytes build(Round round, PartyIndex proposer,
                      const std::vector<const Block*>& chain) = 0;
};

/// Fixed-size filler payloads (benchmarks; size models batched commands).
class FixedSizePayload final : public PayloadBuilder {
 public:
  explicit FixedSizePayload(size_t size) : size_(size) {}
  Bytes build(Round round, PartyIndex proposer, const std::vector<const Block*>&) override {
    Bytes p(size_, 0);
    // Cheap deterministic content so equal-size payloads still hash apart.
    for (size_t i = 0; i < std::min<size_t>(size_, 16); ++i)
      p[i] = static_cast<uint8_t>((round >> (8 * (i % 4))) ^ (proposer + i));
    return p;
  }

 private:
  size_t size_;
};

/// Delay functions of Fig. 1, recommended instantiation (eq. 2):
///   Delta_prop(r) = 2 * Delta_bnd * r
///   Delta_ntry(r) = 2 * Delta_bnd * r + epsilon.
struct DelayFunctions {
  sim::Duration delta_bnd = sim::msec(300);
  sim::Duration epsilon = sim::msec(0);

  sim::Duration prop(size_t rank) const {
    return 2 * delta_bnd * static_cast<sim::Duration>(rank);
  }
  sim::Duration ntry(size_t rank) const {
    return 2 * delta_bnd * static_cast<sim::Duration>(rank) + epsilon;
  }
};

struct PartyConfig {
  crypto::CryptoProvider* crypto = nullptr;
  /// Staged ingress pipeline knobs (decode → dedup → verify → apply). The
  /// defaults enable dedup, memoization and batch verification; disable them
  /// individually to reproduce the pre-pipeline verify-on-insert behaviour.
  pipeline::PipelineOptions pipeline;
  DelayFunctions delays;
  std::shared_ptr<PayloadBuilder> payload;
  /// Telemetry sink (metrics registry + span tracer). Null disables every
  /// probe — the party then pays one pointer check per probe site.
  obs::Obs* obs = nullptr;
  /// Worker pool shared by the run (DESIGN.md §6). When set (and >1 thread)
  /// the party's Verifier slices batch verifications across it. Not owned.
  support::Executor* executor = nullptr;
  /// Cluster-shared artifact intern store (DESIGN.md §7): shared decode
  /// cache + cross-party verification memo. Null = per-party fidelity mode
  /// (every receiver parses and verifies independently). Not owned.
  pipeline::InternStore* intern = nullptr;
  /// Tags rounds by the actual corruption status of the rank-0 leader
  /// (only the harness knows the corrupt slots). Optional; without it the
  /// leader-honesty metrics fall back to the party-observable proxy
  /// (round finished on the rank-0 block).
  std::function<bool(PartyIndex)> party_honesty;
  /// Called on every commit, in output order.
  std::function<void(PartyIndex self, const CommittedBlock&)> on_commit;
  /// Called when this party proposes a block (latency instrumentation).
  std::function<void(PartyIndex self, Round round, const Hash& hash, sim::Time now)>
      on_propose;
  /// Keep full payload bytes in committed(); disable in long benchmarks to
  /// bound memory (payload_size is always recorded).
  bool record_payloads = true;
  /// Bound committed() to the newest this many blocks (0 = unbounded).
  /// committed_total() keeps the true count; on_commit still fires for every
  /// block. Soak runs set a small bound so a party's output history cannot
  /// grow without limit over millions of rounds.
  Round committed_history = 0;
  /// Prune the pool below (last finalized round - prune_lag); 0 disables.
  Round prune_lag = 16;
  /// Stop participating after this round (benchmark runs); 0 = unbounded.
  Round max_round = 0;

  /// Catch-up packages: every cup_interval-th finalized round, parties
  /// exchange threshold shares endorsing (round, block hash, beacon value);
  /// the combined package lets a lagging replica resume from that round
  /// without replaying (possibly pruned) history. 0 disables.
  Round cup_interval = 0;
  /// How many rounds behind (observed via live traffic for future rounds)
  /// before a party requests a CUP.
  Round lag_threshold = 8;

  /// Adaptive delay functions (paper Section 1: "the ICC protocols can be
  /// modified to adaptively adjust to an unknown communication-delay
  /// bound"). The local Delta_bnd grows multiplicatively whenever a round
  /// fails to finalize cleanly off the leader's block, and decays slowly on
  /// clean rounds. Only liveness depends on the bound, so adaptation cannot
  /// affect safety; the "care" the paper asks for is the cap (a Byzantine
  /// leader can force growth) and the slow decay (avoid oscillation).
  struct AdaptiveDelays {
    bool enabled = false;
    sim::Duration floor = sim::msec(10);
    sim::Duration cap = sim::seconds(4);
    double grow = 1.5;
    double decay = 0.95;
  };
  AdaptiveDelays adaptive;
};

}  // namespace icc::consensus
