#include "consensus/icc0.hpp"

#include <algorithm>

namespace icc::consensus {

using types::BeaconShareMsg;
using types::FinalizationMsg;
using types::FinalizationShareMsg;
using types::Message;
using types::NotarizationMsg;
using types::NotarizationShareMsg;
using types::ProposalMsg;

namespace {
template <class... Ts>
struct Overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overloaded(Ts...) -> Overloaded<Ts...>;
}  // namespace

Icc0Party::Icc0Party(PartyIndex self, const PartyConfig& config)
    : self_(self),
      config_(config),
      crypto_(config.crypto),
      verifier_(*config.crypto, config.pipeline),
      pool_(config.crypto->n(), config.crypto->quorum()),
      pipeline_(verifier_, config.pipeline, config.crypto->n()),
      delta_local_(config.delays.delta_bnd) {
  beacon_values_[0] = types::genesis_beacon();
  probe_.attach(config.obs, self, config.party_honesty);
  journal_.attach(config.obs, self);
  pipeline_.attach_obs(config.obs);
  verifier_.attach_obs(config.obs);
  verifier_.attach_executor(config.executor);
  verifier_.attach_runtime(config.obs != nullptr ? config.obs->runtime() : nullptr);
  // The shared verdict memo keys off the per-party cache keys; without the
  // cache stage it would never be consulted on the share paths, so the
  // store is only wired through the Verifier when the cache is on. The
  // decode side has no such dependency.
  pipeline_.attach_intern(config.intern);
  if (config.pipeline.cache) verifier_.attach_intern(config.intern);
}

void Icc0Party::start(sim::Context& ctx) {
  // Preamble of Fig. 1: broadcast a share of the round-1 random beacon.
  broadcast_beacon_share(ctx, 1);
  evaluate(ctx);
}

void Icc0Party::receive(sim::Context& ctx, sim::PartyIndex from, BytesView payload) {
  // View-based deliveries (tests driving a party directly) copy into a
  // fresh shared buffer; the network always uses receive_shared.
  on_wire(ctx, from, std::make_shared<const Bytes>(payload.begin(), payload.end()));
}

void Icc0Party::receive_shared(sim::Context& ctx, sim::PartyIndex from,
                               const std::shared_ptr<const Bytes>& payload) {
  on_wire(ctx, from, payload);
}

void Icc0Party::on_wire(sim::Context& ctx, sim::PartyIndex from,
                        const std::shared_ptr<const Bytes>& bytes) {
  // Stages 1-2: parse once (cluster-wide, when interning), drop malformed
  // and exact-duplicate payloads before any cryptography runs.
  types::SharedMessage msg = pipeline_.decode_shared(from, bytes);
  if (!msg) return;
  ingest(ctx, from, *msg, msg);
  evaluate(ctx);
}

void Icc0Party::disseminate(sim::Context& ctx, const Message& msg, bool /*is_block_bearing*/) {
  ctx.broadcast(types::serialize_message(msg));
}

bool Icc0Party::ingest(sim::Context& ctx, sim::PartyIndex from, const Message& msg,
                       const types::SharedMessage& origin) {
  return std::visit(
      Overloaded{
          [&](const ProposalMsg& m) {
            bool changed = ingest_proposal(m, origin);
            if ((probe_.on() || journal_.on()) && changed) {
              const Hash h = m.block.hash();
              if (pool_.block(h) != nullptr) {
                probe_.on_proposal_seen(m.block.round, ctx.now());
                journal_.proposal(m.block.round, m.block.proposer, h, ctx.now());
              }
            }
            return changed;
          },
          [&](const NotarizationShareMsg& m) { return ingest_notarization_share(m); },
          [&](const NotarizationMsg& m) {
            bool changed = ingest_notarization(m);
            // Signer sets are not recoverable from an already-combined wire
            // aggregate; record it as a latency/uniqueness witness only.
            if (changed)
              journal_.notar_agg(m.round, m.proposer, m.block_hash, {}, "wire", ctx.now());
            return changed;
          },
          [&](const FinalizationShareMsg& m) { return ingest_finalization_share(m); },
          [&](const FinalizationMsg& m) {
            bool changed = ingest_finalization(m);
            if (changed)
              journal_.final_agg(m.round, m.proposer, m.block_hash, {}, "wire", ctx.now());
            return changed;
          },
          [&](const BeaconShareMsg& m) {
            ingest_beacon_share(ctx, m);
            return true;
          },
          [&](const types::CupShareMsg& m) {
            handle_cup_share(ctx, m);
            return true;
          },
          [&](const types::CupRequestMsg& m) {
            handle_cup_request(ctx, from, m);
            return false;
          },
          [&](const types::CupMsg& m) { return adopt_cup(ctx, m); },
          // Gossip / RBC wire types are handled by the ICC1/ICC2 overrides.
          [&](const types::AdvertMsg&) { return false; },
          [&](const types::RequestMsg&) { return false; },
          [&](const types::RbcFragmentMsg&) { return false; },
      },
      msg);
}

// --- stage 3 + 4: verify (memoized) then apply to the crypto-free pool ---

bool Icc0Party::ingest_proposal(const ProposalMsg& msg, const types::SharedMessage& origin) {
  bool changed = false;
  // The bundled parent notarization is processed even when the block itself
  // is already known (an echo may carry the notarization we were missing).
  if (!msg.parent_notarization.empty()) {
    auto parsed = types::parse_message(msg.parent_notarization);
    if (parsed) {
      if (auto* nm = std::get_if<NotarizationMsg>(&*parsed))
        changed |= ingest_notarization(*nm);
    }
  }
  const Block& b = msg.block;
  if (b.round < 1 || b.proposer >= crypto_->n()) return changed;
  if (pool_.block(b.hash())) return changed;  // known: skip the crypto entirely
  if (!pipeline_.verify_proposal(msg)) return changed;
  // When the proposal is (part of) a shared parsed artifact, alias its
  // block into the pool instead of copying — one Block for all n pools.
  std::shared_ptr<const Block> shared_block;
  if (origin != nullptr) {
    if (const auto* pm = std::get_if<ProposalMsg>(origin.get()); pm == &msg)
      shared_block = std::shared_ptr<const Block>(origin, &pm->block);
  }
  return pool_.add_proposal(msg, std::move(shared_block)) || changed;
}

bool Icc0Party::ingest_notarization(const NotarizationMsg& msg) {
  if (pool_.notarization_for(msg.block_hash)) return false;  // duplicate
  if (!pipeline_.verify_notarization(msg)) return false;
  return pool_.add_notarization(msg);
}

bool Icc0Party::ingest_notarization_share(const NotarizationShareMsg& msg) {
  if (msg.signer >= crypto_->n()) return false;
  // Satiation early-out, before any crypto: once an aggregate exists or a
  // full quorum of distinct-signer shares is held, further shares for this
  // block are dead weight. (Identical whether the pipeline stages are on or
  // off, so on/off runs stay bit-identical.)
  if (pool_.notarization_for(msg.block_hash)) return false;
  if (pool_.notarization_share_count(msg.block_hash) >= crypto_->quorum()) return false;
  if (!pipeline_.verify_notarization_share(msg)) return false;
  return pool_.add_notarization_share(msg);
}

bool Icc0Party::ingest_finalization(const FinalizationMsg& msg) {
  if (pool_.finalization_for(msg.block_hash)) return false;  // duplicate
  if (!pipeline_.verify_finalization(msg)) return false;
  return pool_.add_finalization(msg);
}

bool Icc0Party::ingest_finalization_share(const FinalizationShareMsg& msg) {
  if (msg.signer >= crypto_->n()) return false;
  // Same satiation early-out as for notarization shares.
  if (pool_.finalization_for(msg.block_hash)) return false;
  if (pool_.finalization_share_count(msg.block_hash) >= crypto_->quorum()) return false;
  if (!pipeline_.verify_finalization_share(msg)) return false;
  return pool_.add_finalization_share(msg);
}

void Icc0Party::ingest_beacon_share(sim::Context& ctx, const BeaconShareMsg& msg) {
  if (msg.signer >= crypto_->n() || msg.round < 1) return;
  // Live traffic for a far-future round means we are lagging badly (e.g.
  // rejoining after a partition); ask for a catch-up package.
  if (config_.cup_interval != 0 && msg.round > round_ + config_.lag_threshold) {
    maybe_request_cup(ctx, msg.round);
  }
  if (beacon_values_.count(msg.round)) return;  // value already known
  auto prev = beacon_values_.find(msg.round - 1);
  if (prev == beacon_values_.end()) {
    // Cannot verify yet (R_{k-1} unknown) — buffer until the chain catches up.
    pending_beacon_shares_[msg.round].emplace(msg.signer, msg.share);
    return;
  }
  Bytes canonical = types::beacon_message(msg.round, prev->second);
  if (!verifier_.verify_beacon_share(msg.signer, canonical, msg.share)) return;
  auto& verified = verified_beacon_shares_[msg.round];
  for (const auto& [signer, _] : verified)
    if (signer == msg.signer) return;
  verified.emplace_back(msg.signer, msg.share);
}

void Icc0Party::drain_pending_beacon_shares(sim::Context& ctx, Round round) {
  auto it = pending_beacon_shares_.find(round);
  if (it == pending_beacon_shares_.end()) return;
  auto shares = std::move(it->second);
  pending_beacon_shares_.erase(it);
  for (auto& [signer, share] : shares)
    ingest_beacon_share(ctx, BeaconShareMsg{round, signer, std::move(share)});
}

void Icc0Party::broadcast_beacon_share(sim::Context& ctx, Round round) {
  if (!beacon_share_broadcast_.insert(round).second) return;
  const Bytes& prev = beacon_values_.at(round - 1);
  Bytes share = verifier_.beacon_sign_share(self_, types::beacon_message(round, prev));
  disseminate(ctx, BeaconShareMsg{round, self_, std::move(share)}, false);
  journal_.beacon_share(round, ctx.now());
}

void Icc0Party::evaluate(sim::Context& ctx) {
  for (;;) {
    check_finalization(ctx);
    if (config_.max_round != 0 && round_ > config_.max_round) return;
    if (!in_round_) {
      try_advance_beacon(ctx);
      if (!in_round_) return;  // still waiting for t+1 beacon shares
      continue;
    }
    if (fire_finish_round(ctx)) continue;   // Fig. 1 clause (a)
    if (fire_propose(ctx)) continue;        // Fig. 1 clause (b)
    if (fire_echo_notarize(ctx)) continue;  // Fig. 1 clause (c)
    return;
  }
}

void Icc0Party::try_advance_beacon(sim::Context& ctx) {
  if (!beacon_values_.count(round_)) {
    drain_pending_beacon_shares(ctx, round_);
    auto it = verified_beacon_shares_.find(round_);
    if (it == verified_beacon_shares_.end() ||
        it->second.size() < crypto_->beacon_threshold()) {
      return;
    }
    Bytes canonical = types::beacon_message(round_, beacon_values_.at(round_ - 1));
    Bytes value = verifier_.beacon_combine(canonical, it->second);
    if (value.empty()) return;
    journal_.beacon(round_, value, ctx.now());
    beacon_values_[round_] = std::move(value);
  }
  enter_round(ctx);
}

void Icc0Party::enter_round(sim::Context& ctx) {
  in_round_ = true;
  t0_ = ctx.now();
  probe_.on_enter_round(round_, t0_);
  journal_.round_enter(round_, t0_);
  proposed_ = false;
  notarized_set_.clear();
  disqualified_.clear();
  ranks_ = ranks_from_beacon(beacon_values_.at(round_), crypto_->n());

  // Pipelining (Section 3.5): having computed the round-k beacon, the party
  // immediately contributes its share of the round-(k+1) beacon.
  broadcast_beacon_share(ctx, round_ + 1);

  // Timers for the delay-function thresholds; stale timers just re-evaluate.
  sim::Context c = ctx;
  const uint32_t my_rank = ranks_.rank_of[self_];
  if (sim::Duration d = prop_delay(my_rank); d > 0) {
    ctx.set_timer(d, [this, c]() mutable { evaluate(c); });
  }
  for (size_t r = 0; r < crypto_->n(); ++r) {
    if (sim::Duration d = ntry_delay(r); d > 0) {
      ctx.set_timer(d, [this, c]() mutable { evaluate(c); });
    }
  }

  // Bound auxiliary maps (a real node checkpoints; Section 3.1).
  if (round_ > 64) {
    const Round floor = round_ - 64;
    beacon_values_.erase(beacon_values_.begin(), beacon_values_.lower_bound(floor));
    pending_beacon_shares_.erase(pending_beacon_shares_.begin(),
                                 pending_beacon_shares_.lower_bound(floor));
    verified_beacon_shares_.erase(verified_beacon_shares_.begin(),
                                  verified_beacon_shares_.lower_bound(floor));
    beacon_share_broadcast_.erase(beacon_share_broadcast_.begin(),
                                  beacon_share_broadcast_.lower_bound(floor));
  }
}

bool Icc0Party::fire_finish_round(sim::Context& ctx) {
  std::optional<Hash> target;
  auto notarized = pool_.notarized_blocks_at(round_);
  if (!notarized.empty()) {
    target = notarized.front();
  } else if (auto h = pool_.combinable_notarization_at(round_)) {
    const types::Block* b = pool_.block(*h);
    Bytes canonical = types::notarization_message(b->round, b->proposer, *h);
    auto shares = pool_.notarization_shares(*b);
    Bytes agg = verifier_.threshold_combine(crypto::Scheme::kNotary, canonical, shares);
    if (agg.empty()) return false;
    NotarizationMsg nm{b->round, b->proposer, *h, std::move(agg)};
    pool_.add_notarization(nm);
    if (journal_.on()) {
      std::vector<uint32_t> signers;
      signers.reserve(shares.size());
      for (const auto& [signer, _] : shares) signers.push_back(signer);
      journal_.notar_agg(b->round, b->proposer, *h, std::move(signers), "combined",
                         ctx.now());
    }
    target = *h;
  } else {
    return false;
  }

  const types::Block* b = pool_.block(*target);
  const NotarizationMsg* nm = pool_.notarization_for(*target);
  if (!b || !nm) return false;
  disseminate(ctx, *nm, false);

  // "if N ⊆ {B} then broadcast a finalization share for B".
  bool only_target = true;
  for (const auto& [h, rank] : notarized_set_) {
    if (h != *target) only_target = false;
  }
  if (only_target) {
    Bytes canonical = types::finalization_message(b->round, b->proposer, *target);
    Bytes share = verifier_.threshold_sign_share(crypto::Scheme::kFinal, self_, canonical);
    FinalizationShareMsg fm{b->round, b->proposer, *target, self_, std::move(share)};
    pool_.add_finalization_share(fm);
    journal_.final_share(b->round, b->proposer, *target, ctx.now());
    disseminate(ctx, fm, false);
  }

  // Adaptive delay bound: a round is "clean" when the leader's block was the
  // only one we endorsed — the signature of a well-calibrated bound.
  if (config_.adaptive.enabled) {
    const bool leader_block = ranks_.rank_of[b->proposer] == 0;
    adapt_delays(leader_block && only_target);
  }

  probe_.on_round_done(round_, ranks_.leader(), ranks_.rank_of[b->proposer] == 0,
                       only_target, ctx.now());

  // The round is done; proceed to the next one (its beacon first).
  round_ += 1;
  in_round_ = false;
  return true;
}

void Icc0Party::adapt_delays(bool clean_round) {
  const auto& a = config_.adaptive;
  double next = static_cast<double>(delta_local_) * (clean_round ? a.decay : a.grow);
  delta_local_ = std::clamp(static_cast<sim::Duration>(next), a.floor, a.cap);
}

// ---------------------------------------------------------------------------
// Catch-up packages
// ---------------------------------------------------------------------------

void Icc0Party::maybe_emit_cup_share(sim::Context& ctx, const CommittedBlock& block) {
  if (config_.cup_interval == 0 || block.round % config_.cup_interval != 0) return;
  auto beacon = beacon_values_.find(block.round);
  if (beacon == beacon_values_.end()) return;  // beacon already pruned; skip
  cup_round_info_[block.round] = {block.hash, beacon->second};

  Bytes canonical = types::cup_message(block.round, block.hash, beacon->second);
  Bytes share = verifier_.threshold_sign_share(crypto::Scheme::kFinal, self_, canonical);
  types::CupShareMsg msg{block.round, block.hash, beacon->second, self_, std::move(share)};
  handle_cup_share(ctx, msg);  // count our own share immediately
  disseminate(ctx, msg, false);

  // Bound the bookkeeping to recent checkpoints.
  while (cup_round_info_.size() > 4) cup_round_info_.erase(cup_round_info_.begin());
  while (cup_shares_.size() > 4) cup_shares_.erase(cup_shares_.begin());
}

void Icc0Party::handle_cup_share(sim::Context& /*ctx*/, const types::CupShareMsg& msg) {
  if (config_.cup_interval == 0) return;
  if (msg.signer >= crypto_->n() || msg.round % config_.cup_interval != 0) return;
  if (latest_cup_ && latest_cup_->round >= msg.round) return;
  // Only shares matching OUR committed (hash, beacon) tuple for that round
  // are counted; anything else cannot combine into a valid package anyway.
  auto info = cup_round_info_.find(msg.round);
  if (info == cup_round_info_.end()) return;
  const auto& [hash, beacon] = info->second;
  if (msg.block_hash != hash || msg.beacon_value != beacon) return;
  Bytes canonical = types::cup_message(msg.round, hash, beacon);
  if (!verifier_.verify_threshold_share(crypto::Scheme::kFinal, msg.signer, canonical,
                                        msg.share)) {
    return;
  }
  auto& shares = cup_shares_[msg.round];
  if (!shares.emplace(msg.signer, msg.share).second) return;
  if (shares.size() < crypto_->quorum()) return;

  // Assemble the package from our pool.
  const types::Block* block = pool_.block(hash);
  const types::NotarizationMsg* nm = pool_.notarization_for(hash);
  const types::FinalizationMsg* fm = pool_.finalization_for(hash);
  const Bytes* auth = pool_.authenticator_for(hash);
  if (!block || !nm || !fm || !auth) return;  // pruned already; next checkpoint
  std::vector<std::pair<crypto::PartyIndex, Bytes>> vec(shares.begin(), shares.end());
  Bytes agg = verifier_.threshold_combine(crypto::Scheme::kFinal, canonical, vec);
  if (agg.empty()) return;

  types::CupMsg cup;
  cup.round = msg.round;
  types::ProposalMsg pm;
  pm.block = *block;
  pm.authenticator = *auth;
  cup.proposal = types::serialize_message(Message{pm});
  cup.notarization = types::serialize_message(Message{*nm});
  cup.finalization = types::serialize_message(Message{*fm});
  cup.beacon_value = beacon;
  cup.aggregate = std::move(agg);
  latest_cup_ = std::move(cup);
}

void Icc0Party::maybe_request_cup(sim::Context& ctx, Round /*observed_round*/) {
  // Rate-limit: at most one request per second of simulated time.
  if (last_cup_request_ >= 0 && ctx.now() - last_cup_request_ < sim::seconds(1)) return;
  last_cup_request_ = ctx.now();
  disseminate(ctx, types::CupRequestMsg{round_}, false);
}

void Icc0Party::handle_cup_request(sim::Context& ctx, sim::PartyIndex from,
                                   const types::CupRequestMsg& msg) {
  if (from == self_) return;
  if (!latest_cup_ || latest_cup_->round <= msg.above_round) return;
  ctx.send(from, types::serialize_message(Message{*latest_cup_}));
}

bool Icc0Party::adopt_cup(sim::Context& ctx, const types::CupMsg& msg) {
  if (config_.cup_interval == 0) return false;
  // A CUP is useful if it advances the commit watermark OR our participation
  // round. (The two can diverge: live finalizations can carry k_max ahead
  // while the round loop is stuck missing one historic beacon value.)
  if (msg.round <= k_max_ && msg.round < round_) return false;

  auto proposal = types::parse_message(msg.proposal);
  auto notarization = types::parse_message(msg.notarization);
  auto finalization = types::parse_message(msg.finalization);
  if (!proposal || !std::holds_alternative<types::ProposalMsg>(*proposal)) return false;
  if (!notarization || !std::holds_alternative<types::NotarizationMsg>(*notarization))
    return false;
  if (!finalization || !std::holds_alternative<types::FinalizationMsg>(*finalization))
    return false;
  const auto& pm = std::get<types::ProposalMsg>(*proposal);
  if (pm.block.round != msg.round) return false;
  const Hash h = pm.block.hash();

  // The threshold signature binds round, block hash and beacon value: n - t
  // parties vouched for this checkpoint, at least n - 2t of them honest.
  Bytes canonical = types::cup_message(msg.round, h, msg.beacon_value);
  if (!verifier_.verify_threshold(crypto::Scheme::kFinal, canonical, msg.aggregate))
    return false;

  // The pool's install_checkpoint trusts its caller (pre-verified contract),
  // so each bundled piece must pass the verify stage here: the CUP aggregate
  // binds the block hash, but the pieces carry their own signatures.
  if (!pipeline_.verify_proposal(pm)) return false;
  if (!pipeline_.verify_notarization(std::get<types::NotarizationMsg>(*notarization)))
    return false;
  if (!pipeline_.verify_finalization(std::get<types::FinalizationMsg>(*finalization)))
    return false;

  if (!pool_.install_checkpoint(pm, std::get<types::NotarizationMsg>(*notarization),
                                std::get<types::FinalizationMsg>(*finalization))) {
    return false;
  }
  beacon_values_[msg.round] = msg.beacon_value;

  // Commit the checkpoint block (if it advances the watermark) and jump the
  // round state forward. The regular finalization loop takes over from here.
  if (msg.round > k_max_) {
    CommittedBlock c;
    c.round = pm.block.round;
    c.proposer = pm.block.proposer;
    c.hash = h;
    c.payload_size = pm.block.payload.size();
    if (config_.record_payloads) c.payload = pm.block.payload;
    c.committed_at = ctx.now();
    if (config_.on_commit) config_.on_commit(self_, c);
    probe_.on_commit(c.round, c.committed_at);
    journal_.commit(c.round, c.hash, c.committed_at);
    push_committed(std::move(c));
    k_max_ = msg.round;
  }

  if (round_ <= msg.round) {
    round_ = msg.round + 1;
    in_round_ = false;
    broadcast_beacon_share(ctx, round_);
  }
  if (config_.prune_lag != 0 && k_max_ > config_.prune_lag) {
    pool_.prune_below(k_max_ - config_.prune_lag);
    on_prune(k_max_ - config_.prune_lag);
  }
  return true;
}

bool Icc0Party::fire_propose(sim::Context& ctx) {
  if (proposed_) return false;
  const uint32_t my_rank = ranks_.rank_of[self_];
  if (ctx.now() < t0_ + prop_delay(my_rank)) return false;
  proposed_ = true;
  propose_block(ctx);
  return true;
}

bool Icc0Party::propose_block(sim::Context& ctx) {
  auto parents = pool_.notarized_blocks_at(round_ - 1);
  if (parents.empty()) return false;  // cannot happen after finishing round k-1
  const Hash parent = parents.front();
  std::vector<const types::Block*> chain;
  if (parent != types::root_hash()) chain = pool_.chain_to(parent);
  Bytes payload = config_.payload->build(round_, self_, chain);
  emit_proposal(ctx, payload);
  return true;
}

void Icc0Party::emit_proposal(sim::Context& ctx, const Bytes& payload) {
  auto parents = pool_.notarized_blocks_at(round_ - 1);
  if (parents.empty()) return;
  types::Block block;
  block.round = round_;
  block.proposer = self_;
  block.parent_hash = parents.front();
  block.payload = payload;

  ProposalMsg pm = build_proposal(block);
  const Hash h = block.hash();
  proposal_times_[h] = ctx.now();
  if (config_.on_propose) config_.on_propose(self_, round_, h, ctx.now());
  pool_.add_proposal(pm);
  probe_.on_proposed(round_, ctx.now());
  probe_.on_proposal_seen(round_, ctx.now());
  journal_.propose(round_, h, ctx.now());
  disseminate(ctx, pm, true);
}

types::ProposalMsg Icc0Party::build_proposal(const types::Block& block) {
  ProposalMsg pm;
  pm.block = block;
  const Hash h = block.hash();
  pm.authenticator =
      verifier_.sign_auth(self_, types::authenticator_message(block.round, block.proposer, h));
  if (block.round > 1) {
    const NotarizationMsg* parent_nm = pool_.notarization_for(block.parent_hash);
    if (parent_nm) pm.parent_notarization = types::serialize_message(Message{*parent_nm});
  }
  return pm;
}

bool Icc0Party::fire_echo_notarize(sim::Context& ctx) {
  auto valid = pool_.valid_blocks_at(round_);
  if (valid.empty()) return false;

  // Lowest non-disqualified rank among valid round-k blocks. Any block of
  // that rank is the (c)-candidate; lower ranks have no valid block, so the
  // "no better block" condition holds exactly for rank == best.
  uint32_t best = UINT32_MAX;
  for (const Hash& h : valid) {
    const types::Block* b = pool_.block(h);
    uint32_t r = ranks_.rank_of[b->proposer];
    if (disqualified_.count(r)) continue;
    best = std::min(best, r);
  }
  if (best == UINT32_MAX) return false;
  if (ctx.now() < t0_ + ntry_delay(best)) return false;

  const uint32_t my_rank = ranks_.rank_of[self_];
  for (const Hash& h : valid) {
    const types::Block* b = pool_.block(h);
    if (ranks_.rank_of[b->proposer] != best) continue;
    if (notarized_set_.count(h)) continue;

    // Echo B (+ authenticator + parent notarization) so every party gets the
    // chance to notarize or disqualify — unless it is our own block, which
    // we already broadcast when proposing.
    if (best != my_rank) {
      ProposalMsg echo;
      echo.block = *b;
      const Bytes* auth = pool_.authenticator_for(h);
      if (!auth) continue;
      echo.authenticator = *auth;
      if (b->round > 1) {
        const NotarizationMsg* parent_nm = pool_.notarization_for(b->parent_hash);
        if (parent_nm) echo.parent_notarization = types::serialize_message(Message{*parent_nm});
      }
      disseminate(ctx, echo, true);
    }

    bool rank_in_n = false;
    for (const auto& [nh, nr] : notarized_set_) {
      if (nr == best) rank_in_n = true;
    }
    if (rank_in_n) {
      // Second distinct block of this rank: the proposer equivocated.
      disqualified_.insert(best);
    } else {
      notarized_set_.emplace(h, best);
      Bytes canonical = types::notarization_message(b->round, b->proposer, h);
      Bytes share = verifier_.threshold_sign_share(crypto::Scheme::kNotary, self_, canonical);
      NotarizationShareMsg m{b->round, b->proposer, h, self_, std::move(share)};
      pool_.add_notarization_share(m);
      journal_.notar_share(b->round, b->proposer, h, ctx.now());
      disseminate(ctx, m, false);
    }
    return true;
  }
  return false;
}

void Icc0Party::check_finalization(sim::Context& ctx) {
  for (;;) {
    std::optional<Hash> target = pool_.finalized_above(k_max_);
    if (!target) {
      if (auto h = pool_.combinable_finalization_above(k_max_)) {
        const types::Block* b = pool_.block(*h);
        Bytes canonical = types::finalization_message(b->round, b->proposer, *h);
        auto shares = pool_.finalization_shares(*b);
        Bytes agg = verifier_.threshold_combine(crypto::Scheme::kFinal, canonical, shares);
        if (!agg.empty()) {
          FinalizationMsg fm{b->round, b->proposer, *h, std::move(agg)};
          pool_.add_finalization(fm);
          if (journal_.on()) {
            std::vector<uint32_t> signers;
            signers.reserve(shares.size());
            for (const auto& [signer, _] : shares) signers.push_back(signer);
            journal_.final_agg(b->round, b->proposer, *h, std::move(signers), "combined",
                               ctx.now());
          }
          target = *h;
        }
      }
    }
    if (!target) return;

    const types::Block* b = pool_.block(*target);
    const FinalizationMsg* fm = pool_.finalization_for(*target);
    if (!b || !fm) return;
    disseminate(ctx, *fm, false);

    // Commit the payloads of the chain suffix (k_max, round(B)]. A
    // checkpoint-installed block has no local ancestry; it commits alone
    // (its predecessors were committed by the parties that produced the CUP).
    auto chain = pool_.chain_to(*target, k_max_);
    if (chain.empty()) chain.push_back(b);
    for (const types::Block* cb : chain) {
      CommittedBlock c;
      c.round = cb->round;
      c.proposer = cb->proposer;
      c.hash = cb->hash();
      c.payload_size = cb->payload.size();
      if (config_.record_payloads) c.payload = cb->payload;
      c.committed_at = ctx.now();
      if (config_.on_commit) config_.on_commit(self_, c);
      maybe_emit_cup_share(ctx, c);
      probe_.on_commit(c.round, c.committed_at);
      journal_.commit(c.round, c.hash, c.committed_at);
      push_committed(std::move(c));
    }
    probe_.on_finalized(b->round, b->round - k_max_, ctx.now());
    journal_.finalized(b->round, *target, ctx.now());
    k_max_ = b->round;
    if (config_.prune_lag != 0 && k_max_ > config_.prune_lag) {
      pool_.prune_below(k_max_ - config_.prune_lag);
      on_prune(k_max_ - config_.prune_lag);
      // Proposal timestamps are keyed by hash; just bound the map.
      if (proposal_times_.size() > 4096) proposal_times_.clear();
    }
  }
}

}  // namespace icc::consensus
