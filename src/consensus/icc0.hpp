// Protocol ICC0 — the honest party (paper Section 3, Figures 1 and 2).
//
// The party is event-driven rather than thread-blocking: every pool change
// and every delay-function timer triggers evaluate(), which repeatedly fires
// whichever Fig. 1 clause is enabled until none is. This is an exact
// operational reading of the paper's "wait for" semantics (the pool is not
// modified while a clause executes).
//
// Dissemination is factored behind two virtual hooks so ICC1 (gossip) and
// ICC2 (erasure-coded reliable broadcast) can reuse the full consensus logic
// and replace only how large artifacts travel:
//   * disseminate(msg)      — how a consensus message reaches everyone;
//   * on_wire(from, bytes)  — how raw network bytes become consensus
//                             messages (base: parse + ingest directly).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "consensus/config.hpp"
#include "consensus/permutation.hpp"
#include "obs/obs.hpp"
#include "pipeline/pipeline.hpp"
#include "sim/network.hpp"
#include "types/messages.hpp"
#include "types/pool.hpp"

namespace icc::consensus {

class Icc0Party : public sim::Process {
 public:
  Icc0Party(PartyIndex self, const PartyConfig& config);

  void start(sim::Context& ctx) override;
  void receive(sim::Context& ctx, sim::PartyIndex from, BytesView payload) override;
  void receive_shared(sim::Context& ctx, sim::PartyIndex from,
                      const std::shared_ptr<const Bytes>& payload) override;

  // --- observability (tests, benches, examples) ---
  /// Retained output history: everything when PartyConfig::committed_history
  /// is 0, otherwise the newest blocks up to that bound.
  const std::vector<CommittedBlock>& committed() const { return committed_; }
  /// Total blocks ever committed (monotonic, unaffected by the history
  /// bound) — what throughput statistics should read.
  uint64_t committed_total() const { return committed_total_; }
  Round current_round() const { return round_; }
  Round last_finalized_round() const { return k_max_; }
  const types::Pool& pool() const { return pool_; }
  PartyIndex index() const { return self_; }

  /// Ingress-pipeline counters (decode/dedup stages).
  const pipeline::IngressPipeline& ingress() const { return pipeline_; }
  /// Verification counters (cache hits, provider calls, batching).
  const pipeline::Verifier& verifier() const { return verifier_; }
  /// Per-round telemetry probe (null-Obs when PartyConfig::obs is unset).
  const obs::PartyProbe& probe() const { return probe_; }

  /// Blocks this party notarization-shared in the current round (the set N
  /// of Fig. 1) — exposed for protocol-invariant tests.
  const std::map<Hash, uint32_t>& shared_blocks() const { return notarized_set_; }

 protected:
  // --- dissemination hooks (overridden by ICC1 / ICC2) ---
  /// Send a consensus message to all parties. `is_block_bearing` marks
  /// messages containing a full block (the expensive ones).
  virtual void disseminate(sim::Context& ctx, const types::Message& msg,
                           bool is_block_bearing);
  /// Translate a wire buffer into zero or more consensus messages, feeding
  /// them to ingest(). The buffer is the network's shared allocation — the
  /// ingress pipeline interns it cluster-wide when a store is attached. The
  /// base implementation decodes and ingests directly.
  virtual void on_wire(sim::Context& ctx, sim::PartyIndex from,
                       const std::shared_ptr<const Bytes>& bytes);

  /// Byzantine-behaviour hook: called instead of honest proposal logic when
  /// overridden (see byzantine.hpp). Returns true if a proposal was made.
  virtual bool propose_block(sim::Context& ctx);

  /// Called after the pool is pruned below `round` (sub-layers can drop
  /// their own per-round state).
  virtual void on_prune(Round round) { (void)round; }

  /// Insert a parsed message into the pool / beacon state. Returns true if
  /// state changed. `from` identifies the wire sender (used to answer
  /// catch-up requests point-to-point; untrusted otherwise). `origin`, when
  /// set, is the shared parsed artifact `msg` lives inside — it lets the
  /// proposal path alias the interned Block into the pool instead of
  /// copying it.
  bool ingest(sim::Context& ctx, sim::PartyIndex from, const types::Message& msg,
              const types::SharedMessage& origin = nullptr);

  /// Drive the protocol until no clause fires.
  void evaluate(sim::Context& ctx);

  /// Construct and disseminate a proposal extending a notarized round-(k-1)
  /// block. Used by propose_block and by Byzantine variants.
  void emit_proposal(sim::Context& ctx, const Bytes& payload);
  types::ProposalMsg build_proposal(const Block& block);

  // --- shared state (accessible to Byzantine subclasses) ---
  PartyIndex self_;
  PartyConfig config_;
  crypto::CryptoProvider* crypto_;
  pipeline::Verifier verifier_;        // stage 3: all signature checks
  types::Pool pool_;                   // stage 4: pre-verified artifacts only
  pipeline::IngressPipeline pipeline_; // stages 1-2: decode + dedup
  obs::PartyProbe probe_;              // telemetry (no-op when detached)
  obs::JournalScribe journal_;         // flight recorder (no-op when detached)

  // Verified ingest helpers (stage 3 + 4 for one artifact type each).
  bool ingest_proposal(const types::ProposalMsg& msg,
                       const types::SharedMessage& origin = nullptr);
  bool ingest_notarization(const types::NotarizationMsg& msg);
  bool ingest_notarization_share(const types::NotarizationShareMsg& msg);
  bool ingest_finalization(const types::FinalizationMsg& msg);
  bool ingest_finalization_share(const types::FinalizationShareMsg& msg);

  // Beacon pipeline.
  std::map<Round, Bytes> beacon_values_;  // beacon_values_[0] = genesis
  std::map<Round, std::map<PartyIndex, Bytes>> pending_beacon_shares_;
  std::map<Round, std::vector<std::pair<crypto::PartyIndex, Bytes>>> verified_beacon_shares_;
  std::set<Round> beacon_share_broadcast_;  // rounds whose share we already sent

  // Round state (Fig. 1).
  Round round_ = 1;
  bool in_round_ = false;  // false: awaiting the round_ beacon
  sim::Time t0_ = 0;
  bool proposed_ = false;
  RoundRanks ranks_;
  std::map<Hash, uint32_t> notarized_set_;  // N: block hash -> rank
  std::set<uint32_t> disqualified_;         // D

  // Finalization subprotocol (Fig. 2).
  Round k_max_ = 0;
  std::vector<CommittedBlock> committed_;
  uint64_t committed_total_ = 0;  ///< lifetime count (history may be bounded)

  /// Append to committed_ honouring PartyConfig::committed_history: trims
  /// the oldest half-bound in one move when the vector reaches 1.5× the
  /// bound, so the amortized cost per commit stays O(1).
  void push_committed(CommittedBlock c) {
    committed_total_++;
    committed_.push_back(std::move(c));
    const size_t bound = static_cast<size_t>(config_.committed_history);
    if (bound != 0 && committed_.size() > bound + bound / 2)
      committed_.erase(committed_.begin(),
                       committed_.begin() + static_cast<ptrdiff_t>(committed_.size() - bound));
  }

  // Proposal timestamps (for latency measurements; local blocks only).
  std::map<Hash, sim::Time> proposal_times_;

  // Adaptive delay bound (== config delta_bnd unless adaptation is on).
  sim::Duration delta_local_;

  // Catch-up packages.
  std::optional<types::CupMsg> latest_cup_;
  std::map<Round, std::pair<Hash, Bytes>> cup_round_info_;  // my (hash, beacon) per checkpoint
  std::map<Round, std::map<PartyIndex, Bytes>> cup_shares_;
  sim::Time last_cup_request_ = -1;

 public:
  /// Current local delay bound (for tests of the adaptive mode).
  sim::Duration delta_bound() const { return delta_local_; }
  /// Latest combined catch-up package held (for tests).
  const std::optional<types::CupMsg>& latest_cup() const { return latest_cup_; }

 private:
  sim::Duration prop_delay(size_t rank) const {
    return 2 * delta_local_ * static_cast<sim::Duration>(rank);
  }
  sim::Duration ntry_delay(size_t rank) const {
    return 2 * delta_local_ * static_cast<sim::Duration>(rank) + config_.delays.epsilon;
  }
  void adapt_delays(bool clean_round);

  void handle_cup_share(sim::Context& ctx, const types::CupShareMsg& msg);
  void handle_cup_request(sim::Context& ctx, sim::PartyIndex from,
                          const types::CupRequestMsg& msg);
  bool adopt_cup(sim::Context& ctx, const types::CupMsg& msg);
  void maybe_emit_cup_share(sim::Context& ctx, const CommittedBlock& block);
  void maybe_request_cup(sim::Context& ctx, Round observed_round);

  void try_advance_beacon(sim::Context& ctx);
  void enter_round(sim::Context& ctx);
  bool fire_finish_round(sim::Context& ctx);   // clause (a)
  bool fire_propose(sim::Context& ctx);        // clause (b)
  bool fire_echo_notarize(sim::Context& ctx);  // clause (c)
  void check_finalization(sim::Context& ctx);  // Fig. 2
  void broadcast_beacon_share(sim::Context& ctx, Round round);
  void ingest_beacon_share(sim::Context& ctx, const types::BeaconShareMsg& msg);
  void drain_pending_beacon_shares(sim::Context& ctx, Round round);
};

}  // namespace icc::consensus
