#include "consensus/icc1.hpp"

namespace icc::consensus {

void Icc1Party::disseminate(sim::Context& ctx, const types::Message& msg,
                            bool is_block_bearing) {
  Bytes raw = types::serialize_message(msg);
  if (!is_block_bearing) {
    // Small artifacts travel as in ICC0 (all-to-all push). The paper keeps
    // these pushes: they are never the byte bottleneck.
    ctx.broadcast(std::move(raw));
    return;
  }
  // Block-bearing artifact: hold the shared wire buffer and hand ourselves
  // the same handle (own pool). Small blocks are pushed whole (pulling costs
  // two extra hops); large ones are advertised and pulled on demand. One
  // allocation serves the gossip store, the self-delivery and every send.
  Round round = current_round();
  auto shared = std::make_shared<const Bytes>(std::move(raw));
  if (gossip_.store(shared, round, ctx.now())) {
    if (shared->size() <= gossip_.config().push_threshold) {
      ctx.broadcast(shared);  // includes self-delivery
      return;
    }
    ctx.send(ctx.self(), shared);  // immediate self-delivery
    ctx.broadcast(types::serialize_message(types::Message{gossip_.advert_for(*shared, round)}));
  }
}

void Icc1Party::on_wire(sim::Context& ctx, sim::PartyIndex from,
                        const std::shared_ptr<const Bytes>& bytes) {
  // Shared ingress stages: decode + dedup. Adverts and pull requests are
  // sender-scoped and bypass dedup inside decode, so the gossip handling
  // below sees every copy.
  types::SharedMessage msg = pipeline_.decode_shared(from, bytes);
  if (!msg) return;

  if (const auto* advert = std::get_if<types::AdvertMsg>(msg.get())) {
    gossip_.on_advert(ctx, from, *advert);
    return;
  }
  if (const auto* request = std::get_if<types::RequestMsg>(msg.get())) {
    gossip_.on_request(ctx, from, *request);
    return;
  }

  // A block body (pushed by ICC0-style echo of a peer, or pulled): become a
  // source for it and tell the others, then feed consensus as usual. The
  // gossip layer stores the delivered wire buffer itself — across parties
  // that is one shared allocation per artifact, not n copies.
  if (std::holds_alternative<types::ProposalMsg>(*msg)) {
    const auto& block = std::get<types::ProposalMsg>(*msg).block;
    if (gossip_.store(bytes, block.round, ctx.now())) {
      ctx.broadcast(
          types::serialize_message(types::Message{gossip_.advert_for(*bytes, block.round)}));
    }
  }

  ingest(ctx, from, *msg, msg);
  evaluate(ctx);
}

}  // namespace icc::consensus
