#include "consensus/icc1.hpp"

namespace icc::consensus {

void Icc1Party::disseminate(sim::Context& ctx, const types::Message& msg,
                            bool is_block_bearing) {
  Bytes raw = types::serialize_message(msg);
  if (!is_block_bearing) {
    // Small artifacts travel as in ICC0 (all-to-all push). The paper keeps
    // these pushes: they are never the byte bottleneck.
    ctx.broadcast(std::move(raw));
    return;
  }
  // Block-bearing artifact: hold it and hand ourselves a copy (own pool).
  // Small blocks are pushed whole (pulling costs two extra hops); large ones
  // are advertised and pulled on demand.
  Round round = current_round();
  if (gossip_.store(raw, round, ctx.now())) {
    if (raw.size() <= gossip_.config().push_threshold) {
      ctx.broadcast(std::move(raw));  // includes self-delivery
      return;
    }
    ctx.send(ctx.self(), raw);  // immediate self-delivery
    ctx.broadcast(types::serialize_message(types::Message{gossip_.advert_for(raw, round)}));
  }
}

void Icc1Party::on_wire(sim::Context& ctx, sim::PartyIndex from, BytesView bytes) {
  // Shared ingress stages: decode + dedup. Adverts and pull requests are
  // sender-scoped and bypass dedup inside decode, so the gossip handling
  // below sees every copy.
  auto msg = pipeline_.decode(from, bytes);
  if (!msg) return;

  if (auto* advert = std::get_if<types::AdvertMsg>(&*msg)) {
    gossip_.on_advert(ctx, from, *advert);
    return;
  }
  if (auto* request = std::get_if<types::RequestMsg>(&*msg)) {
    gossip_.on_request(ctx, from, *request);
    return;
  }

  // A block body (pushed by ICC0-style echo of a peer, or pulled): become a
  // source for it and tell the others, then feed consensus as usual.
  if (std::holds_alternative<types::ProposalMsg>(*msg)) {
    Bytes raw(bytes.begin(), bytes.end());
    const auto& block = std::get<types::ProposalMsg>(*msg).block;
    if (gossip_.store(raw, block.round, ctx.now())) {
      ctx.broadcast(
          types::serialize_message(types::Message{gossip_.advert_for(raw, block.round)}));
    }
  }

  ingest(ctx, from, *msg);
  evaluate(ctx);
}

}  // namespace icc::consensus
