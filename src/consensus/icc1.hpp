// Protocol ICC1 — ICC0 integrated with the peer-to-peer gossip sub-layer.
//
// Identical consensus logic (the paper: "only slightly more involved than
// ICC0" — the difference is dissemination). Small artifacts are pushed
// all-to-all as in ICC0; block-bearing artifacts are advertised by hash and
// pulled on demand through gossip::GossipLayer, which removes the
// communication bottleneck at the leader for large blocks.
#pragma once

#include "consensus/icc0.hpp"
#include "gossip/gossip.hpp"

namespace icc::consensus {

class Icc1Party : public Icc0Party {
 public:
  Icc1Party(PartyIndex self, const PartyConfig& config,
            const gossip::GossipConfig& gossip_config = {})
      : Icc0Party(self, config), gossip_(gossip_config, self) {
    gossip_.attach_obs(config.obs);
  }

  const gossip::GossipLayer& gossip() const { return gossip_; }

 protected:
  void disseminate(sim::Context& ctx, const types::Message& msg,
                   bool is_block_bearing) override;
  void on_wire(sim::Context& ctx, sim::PartyIndex from,
               const std::shared_ptr<const Bytes>& bytes) override;
  void on_prune(Round round) override { gossip_.prune_below(round); }

  gossip::GossipLayer gossip_;
};

}  // namespace icc::consensus
