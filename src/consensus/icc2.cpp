#include "consensus/icc2.hpp"

namespace icc::consensus {

void Icc2Party::disseminate(sim::Context& ctx, const types::Message& msg,
                            bool is_block_bearing) {
  if (!is_block_bearing) {
    ctx.broadcast(types::serialize_message(msg));
    return;
  }
  const auto& proposal = std::get<types::ProposalMsg>(msg);
  if (proposal.block.proposer == self_) {
    // Our own proposal: full dispersal. Our pool already holds it (the
    // caller ingests before disseminating).
    rbc_.broadcast_block(ctx, proposal);
  } else {
    // Echoing someone else's block (Fig. 1 clause (c)): the RBC's own
    // fragment echo already happened when we first saw a fragment, and a
    // reconstruction-path echo happens inside the RBC layer; re-dispersing
    // the whole block here would defeat the bandwidth bound, so we rely on
    // the subprotocol's totality guarantee instead.
  }
}

void Icc2Party::on_wire(sim::Context& ctx, sim::PartyIndex from, BytesView bytes) {
  // Shared ingress stages. Dedup also absorbs repeated copies of the same
  // fragment (a duplicate insert would be a no-op in the RBC layer anyway).
  auto msg = pipeline_.decode(from, bytes);
  if (!msg) return;
  if (auto* fragment = std::get_if<types::RbcFragmentMsg>(&*msg)) {
    rbc_.on_fragment(ctx, *fragment);
    return;
  }
  ingest(ctx, from, *msg);
  evaluate(ctx);
}

void Icc2Party::on_rbc_deliver(sim::Context& ctx, const Bytes& raw) {
  probe_.on_rbc_delivered(raw.size());
  auto msg = types::parse_message(raw);
  if (!msg) return;
  if (journal_.on()) {
    if (auto* proposal = std::get_if<types::ProposalMsg>(&*msg))
      journal_.rbc_phase(proposal->block.round, proposal->block.proposer,
                         proposal->block.hash(), "deliver", ctx.now());
  }
  ingest(ctx, ctx.self(), *msg);
  evaluate(ctx);
}

}  // namespace icc::consensus
