#include "consensus/icc2.hpp"

namespace icc::consensus {

void Icc2Party::disseminate(sim::Context& ctx, const types::Message& msg,
                            bool is_block_bearing) {
  if (!is_block_bearing) {
    ctx.broadcast(types::serialize_message(msg));
    return;
  }
  const auto& proposal = std::get<types::ProposalMsg>(msg);
  if (proposal.block.proposer == self_) {
    // Our own proposal: full dispersal. Our pool already holds it (the
    // caller ingests before disseminating).
    rbc_.broadcast_block(ctx, proposal);
  } else {
    // Echoing someone else's block (Fig. 1 clause (c)): the RBC's own
    // fragment echo already happened when we first saw a fragment, and a
    // reconstruction-path echo happens inside the RBC layer; re-dispersing
    // the whole block here would defeat the bandwidth bound, so we rely on
    // the subprotocol's totality guarantee instead.
  }
}

void Icc2Party::on_wire(sim::Context& ctx, sim::PartyIndex from,
                        const std::shared_ptr<const Bytes>& bytes) {
  // Shared ingress stages. Dedup also absorbs repeated copies of the same
  // fragment (a duplicate insert would be a no-op in the RBC layer anyway).
  types::SharedMessage msg = pipeline_.decode_shared(from, bytes);
  if (!msg) return;
  if (const auto* fragment = std::get_if<types::RbcFragmentMsg>(msg.get())) {
    rbc_.on_fragment(ctx, *fragment);
    return;
  }
  ingest(ctx, from, *msg, msg);
  evaluate(ctx);
}

void Icc2Party::on_rbc_deliver(sim::Context& ctx, const Bytes& raw) {
  probe_.on_rbc_delivered(raw.size());
  // Every party reconstructs byte-identical proposal bytes from its
  // fragments, so the parse (and the pool's Block) interns cluster-wide
  // even though the buffer was produced locally. Reconstruction is not
  // ingress — dedup/malformed counters stay untouched, as before.
  types::SharedMessage msg =
      pipeline_.parse_only(std::make_shared<const Bytes>(raw));
  if (!msg) return;
  if (journal_.on()) {
    if (const auto* proposal = std::get_if<types::ProposalMsg>(msg.get()))
      journal_.rbc_phase(proposal->block.round, proposal->block.proposer,
                         proposal->block.hash(), "deliver", ctx.now());
  }
  ingest(ctx, ctx.self(), *msg, msg);
  evaluate(ctx);
}

}  // namespace icc::consensus
