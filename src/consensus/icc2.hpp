// Protocol ICC2 — ICC1's consensus logic with block dissemination replaced
// by the erasure-coded reliable broadcast subprotocol (rbc::RbcLayer).
//
// Small artifacts remain all-to-all pushes. Proposals are dispersed as
// Reed–Solomon fragments; an *echo* of a block the party already
// reconstructed only re-broadcasts the party's own fragment (cheap), since
// the RBC itself guarantees totality of delivery.
#pragma once

#include "consensus/icc0.hpp"
#include "rbc/rbc.hpp"

namespace icc::consensus {

class Icc2Party : public Icc0Party {
 public:
  Icc2Party(PartyIndex self, const PartyConfig& config)
      : Icc0Party(self, config),
        rbc_(verifier_, self, [this](sim::Context& ctx, const Bytes& raw) {
          on_rbc_deliver(ctx, raw);
        }) {
    rbc_.attach_obs(config.obs);
  }

 protected:
  void disseminate(sim::Context& ctx, const types::Message& msg,
                   bool is_block_bearing) override;
  void on_wire(sim::Context& ctx, sim::PartyIndex from,
               const std::shared_ptr<const Bytes>& bytes) override;
  void on_prune(Round round) override { rbc_.prune_below(round); }

 private:
  void on_rbc_deliver(sim::Context& ctx, const Bytes& raw);

  rbc::RbcLayer rbc_;
};

}  // namespace icc::consensus
