#include "consensus/permutation.hpp"

#include <numeric>

#include "support/rng.hpp"

namespace icc::consensus {

RoundRanks ranks_from_beacon(BytesView beacon_value, size_t n) {
  // Seed a PRG from the beacon value. The beacon is already a hash output
  // (indistinguishable from random under the ROM argument of Section 2.3),
  // so folding it to 64 bits for xoshiro seeding preserves uniformity.
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < beacon_value.size(); ++i) {
    seed ^= static_cast<uint64_t>(beacon_value[i]) << (8 * (i % 8));
    if (i % 8 == 7) seed = seed * 0xff51afd7ed558ccdULL + 1;
  }
  Xoshiro256 rng(seed);

  RoundRanks ranks;
  ranks.by_rank.resize(n);
  std::iota(ranks.by_rank.begin(), ranks.by_rank.end(), 0);
  // Fisher–Yates.
  for (size_t i = n - 1; i > 0; --i) {
    size_t j = rng.below(i + 1);
    std::swap(ranks.by_rank[i], ranks.by_rank[j]);
  }
  ranks.rank_of.resize(n);
  for (size_t r = 0; r < n; ++r) ranks.rank_of[ranks.by_rank[r]] = static_cast<uint32_t>(r);
  return ranks;
}

}  // namespace icc::consensus
