// Rank assignment from the random beacon (paper Section 3.3).
//
// The round-k beacon value seeds a Fisher–Yates shuffle producing a
// permutation pi of the n parties; rank 0 is the leader. Every honest party
// derives the same permutation because the beacon value is unique.
#pragma once

#include <vector>

#include "support/bytes.hpp"
#include "types/block.hpp"

namespace icc::consensus {

struct RoundRanks {
  std::vector<types::PartyIndex> by_rank;  ///< by_rank[r] = party with rank r
  std::vector<uint32_t> rank_of;           ///< rank_of[party] = its rank

  types::PartyIndex leader() const { return by_rank[0]; }
};

/// Derive the round's ranks from the beacon value.
RoundRanks ranks_from_beacon(BytesView beacon_value, size_t n);

}  // namespace icc::consensus
