#include "crypto/beacon.hpp"

#include <stdexcept>
#include <unordered_set>

#include "crypto/sha256.hpp"

namespace icc::crypto {

namespace {
constexpr std::string_view kH2cDomain = "icc-beacon-h2c-v1";
}

Point beacon_message_point(BytesView message) { return hash_to_point(kH2cDomain, message); }

BeaconKeys beacon_keygen(size_t n, size_t t, Xoshiro256& rng) {
  if (t + 1 > n) throw std::invalid_argument("beacon_keygen: need t + 1 <= n");
  BeaconKeys keys;
  Sc25519 s = random_scalar(rng);
  auto shares = shamir_share(s, t, n, rng);
  keys.pub.group_pk = Point::mul_base(s);
  keys.pub.threshold = t + 1;
  keys.pub.share_pks.reserve(n);
  keys.secret_shares.reserve(n);
  for (const auto& sh : shares) {
    keys.secret_shares.push_back(sh.value);
    keys.pub.share_pks.push_back(Point::mul_base(sh.value));
  }
  return keys;
}

Bytes BeaconShare::serialize() const {
  Bytes out;
  put_u32le(out, signer);
  append(out, BytesView(sigma.compress().data(), 32));
  append(out, BytesView(proof.serialize()));
  return out;
}

std::optional<BeaconShare> BeaconShare::deserialize(BytesView bytes) {
  if (bytes.size() != 4 + 32 + 64) return std::nullopt;
  BeaconShare s;
  s.signer = get_u32le(bytes.data());
  auto sigma = Point::decompress(bytes.subspan(4, 32));
  if (!sigma) return std::nullopt;
  s.sigma = *sigma;
  auto proof = DleqProof::deserialize(bytes.subspan(36, 64));
  if (!proof) return std::nullopt;
  s.proof = *proof;
  return s;
}

BeaconShare beacon_sign_share(BytesView message, uint32_t signer, const Sc25519& share,
                              const BeaconPublic& pub) {
  if (signer >= pub.share_pks.size())
    throw std::invalid_argument("beacon_sign_share: bad signer");
  Point hm = beacon_message_point(message);
  BeaconShare out;
  out.signer = signer;
  out.sigma = hm.mul_ct(share);  // share is a long-lived secret
  out.proof = dleq_prove(Point::base(), pub.share_pks[signer], hm, out.sigma, share);
  return out;
}

bool beacon_verify_share(BytesView message, const BeaconShare& share,
                         const BeaconPublic& pub) {
  if (share.signer >= pub.share_pks.size()) return false;
  Point hm = beacon_message_point(message);
  return dleq_verify(Point::base(), pub.share_pks[share.signer], hm, share.sigma,
                     share.proof);
}

std::optional<Point> beacon_combine(std::span<const BeaconShare> shares,
                                    const BeaconPublic& pub) {
  // Pick the first `threshold` distinct signers.
  std::vector<const BeaconShare*> chosen;
  std::unordered_set<uint32_t> seen;
  for (const auto& s : shares) {
    if (seen.insert(s.signer).second) chosen.push_back(&s);
    if (chosen.size() == pub.threshold) break;
  }
  if (chosen.size() < pub.threshold) return std::nullopt;

  // Lagrange interpolation in the exponent at zero. Share evaluation points
  // are signer + 1 (Shamir indices are 1-based).
  std::vector<uint32_t> points;
  points.reserve(chosen.size());
  for (const auto* s : chosen) points.push_back(s->signer + 1);

  Point sigma;  // identity
  for (size_t j = 0; j < chosen.size(); ++j) {
    Sc25519 lambda = lagrange_at_zero(points, j);
    sigma = sigma + chosen[j]->sigma.mul(lambda);
  }
  return sigma;
}

Bytes beacon_value(const Point& sigma) {
  Bytes enc = sigma.compress_bytes();
  Bytes prefixed = str_bytes("icc-beacon-out-v1");
  append(prefixed, BytesView(enc));
  return sha256(prefixed);
}

}  // namespace icc::crypto
