// Threshold random beacon: a (t, t+1, n) unique threshold signature scheme
// (paper Section 2.3, approach (iii)).
//
// Construction (DDH-based distributed VRF; see DESIGN.md for the
// substitution rationale vs the paper's threshold BLS):
//   * a dealer Shamir-shares a group secret s; party i holds s_i and
//     publishes PK_i = s_i * B;
//   * a signature share on message m is sigma_i = s_i * H2C(m) together with
//     a DLEQ proof that log_B(PK_i) = log_{H2C(m)}(sigma_i);
//   * any t+1 verified shares combine (Lagrange in the exponent) to
//     sigma = s * H2C(m) — *unique* regardless of which shares were used;
//   * the beacon value is SHA-256 of the compressed sigma.
//
// Fewer than t+1 shares give no information about sigma (DDH), so the
// adversary (holding t shares) cannot predict the beacon without an honest
// party's share — exactly the property Section 2.3 demands.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "crypto/dleq.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/shamir.hpp"

namespace icc::crypto {

struct BeaconPublic {
  Point group_pk;                ///< s * B
  std::vector<Point> share_pks;  ///< s_i * B for party i (0-based)
  size_t threshold = 0;          ///< shares needed to combine = t + 1
};

struct BeaconKeys {
  BeaconPublic pub;
  std::vector<Sc25519> secret_shares;  ///< s_i for party i (0-based)
};

/// Trusted-dealer key generation (the paper likewise assumes a trusted setup
/// or a DKG for the correlated keys; Section 3.1).
BeaconKeys beacon_keygen(size_t n, size_t t, Xoshiro256& rng);

struct BeaconShare {
  uint32_t signer = 0;  ///< 0-based party index
  Point sigma;          ///< s_i * H2C(m)
  DleqProof proof;

  Bytes serialize() const;
  static std::optional<BeaconShare> deserialize(BytesView bytes);
};

/// Produce party `signer`'s share on `message`.
BeaconShare beacon_sign_share(BytesView message, uint32_t signer, const Sc25519& share,
                              const BeaconPublic& pub);

/// Publicly verify a share against the share public keys.
bool beacon_verify_share(BytesView message, const BeaconShare& share,
                         const BeaconPublic& pub);

/// Combine >= threshold verified shares into sigma = s * H2C(m).
/// Shares must have distinct signers; extras beyond threshold are ignored.
std::optional<Point> beacon_combine(std::span<const BeaconShare> shares,
                                    const BeaconPublic& pub);

/// The beacon value: SHA-256 of the compressed combined point.
Bytes beacon_value(const Point& sigma);

/// Hash-to-curve domain used by the beacon.
Point beacon_message_point(BytesView message);

}  // namespace icc::crypto
