#include "crypto/dleq.hpp"

#include "crypto/sha512.hpp"

namespace icc::crypto {

namespace {

Sc25519 challenge(const Point& g1, const Point& p1, const Point& g2, const Point& p2,
                  const Point& a1, const Point& a2) {
  Sha512 h;
  h.update("icc-dleq-v1");
  h.update(BytesView(g1.compress().data(), 32));
  h.update(BytesView(p1.compress().data(), 32));
  h.update(BytesView(g2.compress().data(), 32));
  h.update(BytesView(p2.compress().data(), 32));
  h.update(BytesView(a1.compress().data(), 32));
  h.update(BytesView(a2.compress().data(), 32));
  return Sc25519::from_bytes_wide(h.digest().data());
}

}  // namespace

Bytes DleqProof::serialize() const {
  Bytes out;
  append(out, BytesView(c.to_bytes()));
  append(out, BytesView(z.to_bytes()));
  return out;
}

std::optional<DleqProof> DleqProof::deserialize(BytesView bytes) {
  if (bytes.size() != 64) return std::nullopt;
  DleqProof p;
  p.c = Sc25519::from_bytes_mod_l(bytes.data());
  p.z = Sc25519::from_bytes_mod_l(bytes.data() + 32);
  return p;
}

DleqProof dleq_prove(const Point& g1, const Point& p1, const Point& g2, const Point& p2,
                     const Sc25519& secret) {
  // Derandomized nonce: k = H(secret || statement).
  Sha512 nh;
  nh.update("icc-dleq-nonce-v1");
  nh.update(BytesView(secret.to_bytes()));
  nh.update(BytesView(g2.compress().data(), 32));
  nh.update(BytesView(p2.compress().data(), 32));
  Sc25519 k = Sc25519::from_bytes_wide(nh.digest().data());

  // k is secret (it masks `secret` in z = k + c*s): constant-time kernel.
  Point a1 = g1.mul_ct(k);
  Point a2 = g2.mul_ct(k);
  DleqProof proof;
  proof.c = challenge(g1, p1, g2, p2, a1, a2);
  proof.z = k + proof.c * secret;
  return proof;
}

bool dleq_verify(const Point& g1, const Point& p1, const Point& g2, const Point& p2,
                 const DleqProof& proof) {
  // a1 = z G1 - c P1, a2 = z G2 - c P2; accept iff the challenge matches.
  // Each pair shares doublings via the Straus double-scalar kernel.
  Sc25519 neg_c = proof.c.negate();
  Point a1 = Point::mul_double(proof.z, g1, neg_c, p1);
  Point a2 = Point::mul_double(proof.z, g2, neg_c, p2);
  return challenge(g1, p1, g2, p2, a1, a2) == proof.c;
}

}  // namespace icc::crypto
