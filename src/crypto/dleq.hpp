// Chaum–Pedersen DLEQ proofs: a non-interactive zero-knowledge proof that
// two group elements share the same discrete logarithm with respect to two
// bases, i.e. log_{G1}(P1) = log_{G2}(P2).
//
// Beacon shares carry such a proof (statement: my share sigma_i on H(m) was
// produced with the same secret s_i that underlies my registered share
// public key), making shares publicly verifiable without pairings.
#pragma once

#include "crypto/ed25519.hpp"
#include "crypto/sc25519.hpp"

namespace icc::crypto {

struct DleqProof {
  Sc25519 c;  ///< Fiat–Shamir challenge
  Sc25519 z;  ///< response z = k + c * secret

  Bytes serialize() const;
  static std::optional<DleqProof> deserialize(BytesView bytes);
};

/// Prove log_{g1}(p1) = log_{g2}(p2) = secret. Deterministic (the nonce is
/// derived from the secret and the statement, RFC 6979-style).
DleqProof dleq_prove(const Point& g1, const Point& p1, const Point& g2, const Point& p2,
                     const Sc25519& secret);

/// Verify a DLEQ proof.
bool dleq_verify(const Point& g1, const Point& p1, const Point& g2, const Point& p2,
                 const DleqProof& proof);

}  // namespace icc::crypto
