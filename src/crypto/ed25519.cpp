#include "crypto/ed25519.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "crypto/sha512.hpp"

static_assert(std::endian::native == std::endian::little,
              "field/scalar serialization assumes a little-endian host");

namespace icc::crypto {

namespace {

// ---------------------------------------------------------------------------
// Scalar recodings.

/// Signed sliding-window (wNAF) recoding: rewrites the binary expansion of a
/// scalar into digits that are zero or odd with |digit| <= 2^pow - 1, such
/// that any two nonzero digits are at least pow+1 positions apart. Returns
/// the index of the highest nonzero digit, or -1 for zero.
///
/// Works on 64-bit limbs and jumps between set bits with countr_zero, so the
/// cost is proportional to the number of nonzero digits (~1/6 of the bits),
/// not to 256 — this runs once per scalar in every multi-scalar kernel, so
/// at batch sizes the recoding itself shows up in profiles.
/// Variable time — public scalars only.
int slide(int8_t r[256], const uint8_t kb[32], int pow) {
  std::memset(r, 0, 256);
  uint64_t x[5];  // 256 scalar bits + headroom for the +2^(bit+w) carries
  std::memcpy(x, kb, 32);
  x[4] = 0;
  const int w = pow + 1;
  const int64_t half = int64_t{1} << pow;
  const uint64_t wmask = (uint64_t{1} << w) - 1;
  int top = -1;
  int bit = 0;
  for (;;) {
    // Jump to the lowest set bit at or above `bit` (all lower bits are 0).
    int limb = bit >> 6;
    if (limb >= 5) break;
    const uint64_t cur = x[limb] >> (bit & 63);
    if (cur == 0) {
      do {
        if (++limb == 5) return top;
      } while (x[limb] == 0);
      bit = limb * 64 + std::countr_zero(x[limb]);
    } else {
      bit += std::countr_zero(cur);
    }
    if (bit >= 256) break;  // unreachable for scalars < 2^253 (defensive)
    // Take the w-bit window starting at the set bit; digit is odd.
    limb = bit >> 6;
    const int off = bit & 63;
    uint64_t v = x[limb] >> off;
    if (off + w > 64 && limb + 1 < 5) v |= x[limb + 1] << (64 - off);
    int64_t d = static_cast<int64_t>(v & wmask);
    x[limb] &= ~(wmask << off);
    if (off + w > 64 && limb + 1 < 5) x[limb + 1] &= ~(wmask >> (64 - off));
    if (d >= half) {
      // Use the negative digit d - 2^w and carry +1 into bit position bit+w.
      d -= int64_t{1} << w;
      int cl = (bit + w) >> 6;
      uint64_t add = uint64_t{1} << ((bit + w) & 63);
      while (cl < 5 && (x[cl] += add) < add) {
        add = 1;
        ++cl;
      }
    }
    r[bit] = static_cast<int8_t>(d);
    top = bit;
    bit += w;
  }
  return top;
}

/// Signed radix-16 recoding: 64 digits in [-8, 8] with
/// k = sum e[i] * 16^i. Constant time (no secret-dependent branches).
void recode_radix16(int8_t e[64], const uint8_t kb[32]) {
  for (int i = 0; i < 32; ++i) {
    e[2 * i] = static_cast<int8_t>(kb[i] & 15);
    e[2 * i + 1] = static_cast<int8_t>((kb[i] >> 4) & 15);
  }
  int8_t carry = 0;
  for (int i = 0; i < 63; ++i) {
    e[i] = static_cast<int8_t>(e[i] + carry);
    carry = static_cast<int8_t>((e[i] + 8) >> 4);
    e[i] = static_cast<int8_t>(e[i] - (carry << 4));
  }
  e[63] = static_cast<int8_t>(e[63] + carry);  // scalars < l < 2^253: no overflow
}

/// Extract the c-bit window of kb starting at bit position `bit`.
inline uint32_t window_digit(const uint8_t kb[32], int bit, int c) {
  uint64_t v = 0;
  const int byte = bit >> 3;
  std::memcpy(&v, kb + byte, std::min(8, 32 - byte));
  return static_cast<uint32_t>((v >> (bit & 7)) & ((1u << c) - 1));
}

// ---------------------------------------------------------------------------
// Half-size scalar splitting (Antipa et al., accelerated verification).

/// Bit length of a 4x64 little-endian value (0 for zero).
inline int u256_bitlen(const uint64_t a[4]) {
  for (int i = 3; i >= 0; --i)
    if (a[i]) return 64 * i + 64 - std::countl_zero(a[i]);
  return 0;
}

/// a < b on 4x64 little-endian values.
inline bool u256_less(const uint64_t a[4], const uint64_t b[4]) {
  for (int i = 3; i >= 0; --i)
    if (a[i] != b[i]) return a[i] < b[i];
  return false;
}

/// r = b << d (d in [0, 255]; bits shifted past 256 are dropped).
inline void u256_shl(uint64_t r[4], const uint64_t b[4], int d) {
  const int q = d >> 6, s = d & 63;
  for (int i = 3; i >= 0; --i) {
    uint64_t v = (i - q >= 0) ? b[i - q] << s : 0;
    if (s && i - q - 1 >= 0) v |= b[i - q - 1] >> (64 - s);
    r[i] = v;
  }
}

/// a -= b, assuming a >= b.
inline void u256_sub(uint64_t a[4], const uint64_t b[4]) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const uint64_t bi = b[i] + borrow;
    borrow = (bi < borrow) | (a[i] < bi);
    a[i] -= bi;
  }
}

/// a += b (mod 2^256).
inline void u256_add(uint64_t a[4], const uint64_t b[4]) {
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    a[i] += carry;
    carry = a[i] < carry;
    a[i] += b[i];
    carry |= a[i] < b[i];
  }
}

/// The group order l as 4x64 words.
constexpr uint64_t kOrder[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0,
                                0x1000000000000000ULL};

struct ScalarSplit {
  uint64_t u[4];  ///< ~127 bits, u >= 0
  uint64_t v[4];  ///< |v| ~< 2^128
  bool v_neg;
};

/// Truncated extended Euclid on (l, k): finds u, v with v k == u (mod l) and
/// |u|, |v| on the order of sqrt(l) ~ 2^126. The division steps are
/// subtractive with power-of-two quotient chunks (shift + subtract on 4x64
/// words), so no multi-precision division is needed. The Bezout coefficients
/// of consecutive remainders alternate in sign, which lets us track t0/t1 as
/// (magnitude, sign) pairs: every update is a plain magnitude addition.
/// Returns false (caller falls back to the unsplit kernel) in the measure-
/// zero event the coefficient bound is exceeded.
bool scalar_split(const Sc25519& k, ScalarSplit& out) {
  uint64_t r0[4], r1[4], t0[4] = {0, 0, 0, 0}, t1[4] = {1, 0, 0, 0};
  std::memcpy(r0, kOrder, 32);
  std::memcpy(r1, k.words().data(), 32);
  bool t0_neg = true, t1_neg = false;  // t0 empty; signs kept opposite
  for (int iter = 0; u256_bitlen(r1) > 127; ++iter) {
    if (iter >= 1200) return false;  // defensive: cannot happen
    int d = u256_bitlen(r0) - u256_bitlen(r1);
    uint64_t sh[4];
    u256_shl(sh, r1, d);
    if (u256_less(r0, sh)) u256_shl(sh, r1, --d);
    u256_sub(r0, sh);
    u256_shl(sh, t1, d);
    u256_add(t0, sh);  // t0 -= 2^d t1 in signed terms; signs are opposite
    t0_neg = !t1_neg;
    if (u256_less(r0, r1)) {
      std::swap_ranges(r0, r0 + 4, r1);
      std::swap_ranges(t0, t0 + 4, t1);
      std::swap(t0_neg, t1_neg);
    }
  }
  if (u256_bitlen(t1) > 140) return false;  // defensive: |v| <~ l / 2^127
  std::memcpy(out.u, r1, 32);
  std::memcpy(out.v, t1, 32);
  out.v_neg = t1_neg;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Group operations.

Point::Point() : x_(), y_(Fe25519::one()), z_(Fe25519::one()), t_() {}

const Point& Point::base() {
  static const Point b = [] {
    // Canonical compressed encoding of the RFC 8032 base point (y = 4/5,
    // x positive/even): 0x58 followed by 31 bytes of 0x66.
    uint8_t enc[32];
    enc[0] = 0x58;
    std::memset(enc + 1, 0x66, 31);
    auto p = Point::decompress(enc);
    if (!p) throw std::logic_error("base point decompression failed");
    return *p;
  }();
  return b;
}

// Unified addition, add-2008-hwcd-3. Complete for every curve point (a = -1
// is a square mod p and d is non-square), so torsion points are handled
// without exceptional cases.
Point Point::operator+(const Point& o) const {
  Point r;
  Fe25519 a = (y_ - x_) * (o.y_ - o.x_);
  Fe25519 b = (y_ + x_) * (o.y_ + o.x_);
  Fe25519 c = t_ * Fe25519::edwards_2d() * o.t_;
  Fe25519 d = (z_ + z_) * o.z_;
  Fe25519 e = b - a;
  Fe25519 f = d - c;
  Fe25519 g = d + c;
  Fe25519 h = b + a;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

// dbl-2008-hwcd with a = -1.
Point Point::dbl() const {
  Point r;
  Fe25519 a = x_.square();
  Fe25519 b = y_.square();
  Fe25519 zz = z_.square();
  Fe25519 c = zz + zz;
  Fe25519 d = a.negate();
  Fe25519 e = (x_ + y_).square() - a - b;
  Fe25519 g = d + b;
  Fe25519 f = g - c;
  Fe25519 h = d - b;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

Point Point::negate() const {
  Point r = *this;
  r.x_ = x_.negate();
  r.t_ = t_.negate();
  return r;
}

Point Point::P1P1::to_p3() const {
  Point r;
  r.x_ = e * f;
  r.y_ = g * h;
  r.z_ = f * g;
  r.t_ = e * h;
  return r;
}

Point::P2 Point::P1P1::to_p2() const { return {e * f, g * h, f * g}; }

Point::P1P1 Point::dbl_p2(const P2& p) {
  Fe25519 a = p.x.square();
  Fe25519 b = p.y.square();
  Fe25519 zz = p.z.square();
  Fe25519 c = zz + zz;
  Fe25519 d = a.negate();
  P1P1 r;
  r.e = (p.x + p.y).square() - a - b;
  r.g = d + b;
  r.f = r.g - c;
  r.h = d - b;
  return r;
}

Point::Cached Point::to_cached() const {
  Cached c;
  c.y_plus_x = y_ + x_;
  c.y_minus_x = y_ - x_;
  c.z = z_;
  c.t2d = t_ * Fe25519::edwards_2d();
  return c;
}

Point::Niels Point::to_niels() const {
  Niels n;
  Fe25519 zi = z_.invert();
  Fe25519 x = x_ * zi;
  Fe25519 y = y_ * zi;
  n.y_plus_x = y + x;
  n.y_minus_x = y - x;
  n.xy2d = x * y * Fe25519::edwards_2d();
  return n;
}

// Mixed addition against a Cached point: 8M (one fewer than point+point
// because 2d*T2 is precomputed).
Point Point::add(const Cached& o) const {
  Point r;
  Fe25519 a = (y_ - x_) * o.y_minus_x;
  Fe25519 b = (y_ + x_) * o.y_plus_x;
  Fe25519 c = t_ * o.t2d;
  Fe25519 d = (z_ + z_) * o.z;
  Fe25519 e = b - a;
  Fe25519 f = d - c;
  Fe25519 g = d + c;
  Fe25519 h = b + a;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

// Mixed subtraction: swap (Y+X, Y-X) of the cached operand and flip the
// sign of the T term.
Point Point::sub(const Cached& o) const {
  Point r;
  Fe25519 a = (y_ - x_) * o.y_plus_x;
  Fe25519 b = (y_ + x_) * o.y_minus_x;
  Fe25519 c = t_ * o.t2d;
  Fe25519 d = (z_ + z_) * o.z;
  Fe25519 e = b - a;
  Fe25519 f = d + c;
  Fe25519 g = d - c;
  Fe25519 h = b + a;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

// Addition against an affine (Niels) point: 7M, since Z2 == 1.
Point Point::add(const Niels& o) const {
  Point r;
  Fe25519 a = (y_ - x_) * o.y_minus_x;
  Fe25519 b = (y_ + x_) * o.y_plus_x;
  Fe25519 c = t_ * o.xy2d;
  Fe25519 d = z_ + z_;
  Fe25519 e = b - a;
  Fe25519 f = d - c;
  Fe25519 g = d + c;
  Fe25519 h = b + a;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

Point Point::sub(const Niels& o) const {
  Point r;
  Fe25519 a = (y_ - x_) * o.y_plus_x;
  Fe25519 b = (y_ + x_) * o.y_minus_x;
  Fe25519 c = t_ * o.xy2d;
  Fe25519 d = z_ + z_;
  Fe25519 e = b - a;
  Fe25519 f = d + c;
  Fe25519 g = d - c;
  Fe25519 h = b + a;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

// --- Static tables --------------------------------------------------------

const std::array<std::array<Point::Niels, 8>, 32>& Point::comb_table() {
  // tab[j][i] = (i+1) * 16^(2j) * B, in affine Niels form. One-time cost
  // (~2 ms, dominated by the 256 affine conversions).
  static const std::array<std::array<Niels, 8>, 32> table = [] {
    std::array<std::array<Niels, 8>, 32> t;
    Point cur = base();  // 16^(2j) * B
    for (int j = 0; j < 32; ++j) {
      Cached step = cur.to_cached();
      Point acc = cur;
      for (int i = 0; i < 8; ++i) {
        t[j][i] = acc.to_niels();
        if (i < 7) acc = acc.add(step);
      }
      for (int d = 0; d < 8; ++d) cur = cur.dbl();  // * 16^2
    }
    return t;
  }();
  return table;
}

const std::array<Point::Niels, 64>& Point::base_wnaf_table() {
  // tab[i] = (2i+1) * B, for the width-8 wNAF of the base-point half of
  // mul_double_base / mul_multi_base.
  static const std::array<Niels, 64> table = [] {
    std::array<Niels, 64> t;
    Point b2 = base().dbl();
    Cached step = b2.to_cached();
    Point cur = base();
    for (int i = 0; i < 64; ++i) {
      t[i] = cur.to_niels();
      if (i < 63) cur = cur.add(step);
    }
    return t;
  }();
  return table;
}

const std::array<Point::Niels, 64>& Point::base_shift_wnaf_table() {
  // tab[i] = (2i+1) * 2^127 B: the high-half static table of the split
  // verification kernel (mul_verify_scaled).
  static const std::array<Niels, 64> table = [] {
    Point d = base();
    for (int i = 0; i < 127; ++i) d = d.dbl();
    std::array<Niels, 64> t;
    Cached step = d.dbl().to_cached();
    Point cur = d;
    for (int i = 0; i < 64; ++i) {
      t[i] = cur.to_niels();
      if (i < 63) cur = cur.add(step);
    }
    return t;
  }();
  return table;
}

// --- Constant-time selection ----------------------------------------------

namespace {

/// |digit| for digit in [-8, 8], branchless.
inline uint8_t ct_abs(int8_t digit) {
  const uint8_t neg = static_cast<uint8_t>(digit) >> 7;
  return static_cast<uint8_t>((digit ^ -static_cast<int8_t>(neg)) + neg);
}

/// 1 when a == b (branchless byte compare).
inline uint64_t eq_byte(uint8_t a, uint8_t b) {
  uint64_t x = static_cast<uint64_t>(a ^ b);
  return (x - 1) >> 63;  // x == 0 -> (2^64 - 1) >> 63 = 1; else 0
}

}  // namespace

Point Point::mul_ct(const Sc25519& k) const {
  uint8_t kb[32];
  k.to_bytes(kb);
  int8_t e[64];
  recode_radix16(e, kb);

  // (i+1)P for i in 0..7, cached form.
  std::array<Cached, 8> tab;
  tab[0] = to_cached();
  Point cur = *this;
  for (int i = 1; i < 8; ++i) {
    cur = cur.add(tab[0]);
    tab[i] = cur.to_cached();
  }

  // Identity in cached form: Y+X = Y-X = Z = 1, 2dT = 0.
  const Cached id_cached = Point().to_cached();

  Point h;
  for (int i = 63; i >= 0; --i) {
    // h *= 16: four doublings, only the last of which materializes T. The
    // P2/P1P1 forms are computed unconditionally — no secret-dependent
    // control flow.
    P1P1 t = dbl_p2(h.to_p2());
    t = dbl_p2(t.to_p2());
    t = dbl_p2(t.to_p2());
    t = dbl_p2(t.to_p2());
    h = t.to_p3();
    // Uniform scan: select (|e|)P with cmov, then conditionally negate by
    // swapping Y+X / Y-X and negating the T term.
    const uint8_t babs = ct_abs(e[i]);
    const uint64_t bneg = static_cast<uint8_t>(e[i]) >> 7;
    Cached sel = id_cached;
    for (uint8_t j = 0; j < 8; ++j) {
      const uint64_t match = eq_byte(babs, static_cast<uint8_t>(j + 1));
      sel.y_plus_x.cmov(tab[j].y_plus_x, match);
      sel.y_minus_x.cmov(tab[j].y_minus_x, match);
      sel.z.cmov(tab[j].z, match);
      sel.t2d.cmov(tab[j].t2d, match);
    }
    Fe25519 swap_a = sel.y_plus_x;
    Fe25519 swap_b = sel.y_minus_x;
    sel.y_plus_x.cmov(swap_b, bneg);
    sel.y_minus_x.cmov(swap_a, bneg);
    sel.t2d.cmov(sel.t2d.negate(), bneg);
    h = h.add(sel);
  }
  return h;
}

Point Point::mul(const Sc25519& k) const {
  uint8_t kb[32];
  k.to_bytes(kb);
  int8_t naf[256];
  const int top = slide(naf, kb, 4);  // odd digits, |d| <= 15
  if (top < 0) return Point();

  std::array<Cached, 8> tab;  // {P, 3P, ..., 15P}
  tab[0] = to_cached();
  {
    Cached step = dbl().to_cached();
    Point cur = *this;
    for (int i = 1; i < 8; ++i) {
      cur = cur.add(step);
      tab[i] = cur.to_cached();
    }
  }

  // Doubling chain in P2 form; a full extended point is only materialized
  // at digit positions (to add) and at the end.
  P2 r2 = Point().to_p2();
  Point h;
  for (int i = top; i >= 0; --i) {
    P1P1 t = dbl_p2(r2);
    if (naf[i]) {
      Point u = t.to_p3();
      u = naf[i] > 0 ? u.add(tab[naf[i] >> 1]) : u.sub(tab[(-naf[i]) >> 1]);
      if (i) {
        r2 = u.to_p2();
      } else {
        h = u;
      }
    } else if (i) {
      r2 = t.to_p2();
    } else {
      h = t.to_p3();
    }
  }
  return h;
}

Point Point::mul_naive(const Sc25519& k) const {
  uint8_t kb[32];
  k.to_bytes(kb);
  Point result;  // identity
  for (int i = 255; i >= 0; --i) {
    result = result.dbl();
    if ((kb[i / 8] >> (i % 8)) & 1) result = result + *this;
  }
  return result;
}

Point Point::mul_base(const Sc25519& k) {
  uint8_t kb[32];
  k.to_bytes(kb);
  int8_t e[64];
  recode_radix16(e, kb);
  const auto& tab = comb_table();

  const Niels id_niels;  // identity

  auto select = [&](int row, int8_t digit) {
    const uint8_t babs = ct_abs(digit);
    const uint64_t bneg = static_cast<uint8_t>(digit) >> 7;
    Niels sel = id_niels;
    for (uint8_t j = 0; j < 8; ++j) {
      const uint64_t match = eq_byte(babs, static_cast<uint8_t>(j + 1));
      sel.y_plus_x.cmov(tab[row][j].y_plus_x, match);
      sel.y_minus_x.cmov(tab[row][j].y_minus_x, match);
      sel.xy2d.cmov(tab[row][j].xy2d, match);
    }
    Fe25519 swap_a = sel.y_plus_x;
    Fe25519 swap_b = sel.y_minus_x;
    sel.y_plus_x.cmov(swap_b, bneg);
    sel.y_minus_x.cmov(swap_a, bneg);
    sel.xy2d.cmov(sel.xy2d.negate(), bneg);
    return sel;
  };

  // Odd digits first (weights 16^(2j+1) = 16 * 16^(2j)), then multiply the
  // partial sum by 16 with four doublings, then the even digits.
  Point h;
  for (int i = 1; i < 64; i += 2) h = h.add(select(i >> 1, e[i]));
  {
    P1P1 t = dbl_p2(h.to_p2());
    t = dbl_p2(t.to_p2());
    t = dbl_p2(t.to_p2());
    t = dbl_p2(t.to_p2());
    h = t.to_p3();
  }
  for (int i = 0; i < 64; i += 2) h = h.add(select(i >> 1, e[i]));
  return h;
}

Point Point::mul_base_ladder(const Sc25519& k) {
  // Original kernel: precomputed 2^i * B, one conditional add per bit.
  static const std::vector<Point> table = [] {
    std::vector<Point> t;
    t.reserve(253);
    Point p = base();
    for (int i = 0; i < 253; ++i) {
      t.push_back(p);
      p = p.dbl();
    }
    return t;
  }();
  uint8_t kb[32];
  k.to_bytes(kb);
  Point result;
  for (int i = 0; i < 253; ++i) {
    if ((kb[i / 8] >> (i % 8)) & 1) result = result + table[i];
  }
  return result;
}

Point Point::mul_double_base(const Sc25519& s, const Sc25519& k, const Point& a) {
  uint8_t sb[32], kb[32];
  s.to_bytes(sb);
  k.to_bytes(kb);
  int8_t naf_s[256], naf_k[256];
  const int top_s = slide(naf_s, sb, 7);  // width-8 digits over the static table
  const int top_k = slide(naf_k, kb, 4);

  std::array<Cached, 8> tab;
  tab[0] = a.to_cached();
  {
    Cached step = a.dbl().to_cached();
    Point cur = a;
    for (int i = 1; i < 8; ++i) {
      cur = cur.add(step);
      tab[i] = cur.to_cached();
    }
  }
  const auto& btab = base_wnaf_table();

  P2 r2 = Point().to_p2();
  Point h;
  for (int i = std::max(top_s, top_k); i >= 0; --i) {
    P1P1 t = dbl_p2(r2);
    if (naf_s[i] | naf_k[i]) {
      Point u = t.to_p3();
      if (naf_s[i] > 0) {
        u = u.add(btab[naf_s[i] >> 1]);
      } else if (naf_s[i] < 0) {
        u = u.sub(btab[(-naf_s[i]) >> 1]);
      }
      if (naf_k[i] > 0) {
        u = u.add(tab[naf_k[i] >> 1]);
      } else if (naf_k[i] < 0) {
        u = u.sub(tab[(-naf_k[i]) >> 1]);
      }
      if (i) {
        r2 = u.to_p2();
      } else {
        h = u;
      }
    } else if (i) {
      r2 = t.to_p2();
    } else {
      h = t.to_p3();
    }
  }
  return h;
}

Point Point::mul_verify_scaled(const Sc25519& s, const Sc25519& k, const Point& a,
                               const Point& r) {
  ScalarSplit sp;
  if (!scalar_split(k, sp)) {
    // Defensive fallback (v = 1): the plain double-scalar kernel.
    return mul_double_base(s, k.negate(), a) - r;
  }

  // v as a scalar mod l, with its sign applied; then sv = v s.
  uint8_t vb[32];
  std::memcpy(vb, sp.v, 32);
  Sc25519 v_sc = Sc25519::from_bytes_mod_l(vb);
  if (sp.v_neg) v_sc = v_sc.negate();
  const Sc25519 sv = v_sc * s;

  // Split sv = sv_lo + 2^127 sv_hi so both base-point streams are
  // half-length over their static width-8 tables.
  uint8_t svb[32];
  sv.to_bytes(svb);
  uint64_t w[4];
  std::memcpy(w, svb, 32);
  const uint64_t lo[4] = {w[0], w[1] & 0x7fffffffffffffffULL, 0, 0};
  const uint64_t hi[4] = {(w[1] >> 63) | (w[2] << 1), (w[2] >> 63) | (w[3] << 1), w[3] >> 63,
                          0};
  uint8_t lob[32], hib[32], ub[32], vmb[32];
  std::memcpy(lob, lo, 32);
  std::memcpy(hib, hi, 32);
  std::memcpy(ub, sp.u, 32);
  std::memcpy(vmb, sp.v, 32);

  int8_t naf_lo[256], naf_hi[256], naf_u[256], naf_v[256];
  int top = slide(naf_lo, lob, 7);
  top = std::max(top, slide(naf_hi, hib, 7));
  top = std::max(top, slide(naf_u, ub, 4));
  top = std::max(top, slide(naf_v, vmb, 4));
  if (top < 0) return Point();

  // Per-point odd-multiple tables for A and R.
  std::array<Cached, 8> atab, rtab;
  atab[0] = a.to_cached();
  {
    Cached step = a.dbl().to_cached();
    Point cur = a;
    for (int i = 1; i < 8; ++i) {
      cur = cur.add(step);
      atab[i] = cur.to_cached();
    }
  }
  rtab[0] = r.to_cached();
  {
    Cached step = r.dbl().to_cached();
    Point cur = r;
    for (int i = 1; i < 8; ++i) {
      cur = cur.add(step);
      rtab[i] = cur.to_cached();
    }
  }
  const auto& btab = base_wnaf_table();
  const auto& dtab = base_shift_wnaf_table();

  // Accumulate (v s) B - u A - v R. The A and R streams carry negative
  // coefficients, so their digit signs are applied flipped; a negative v
  // flips the R stream back to additions.
  const bool sub_r = !sp.v_neg;
  P2 r2 = Point().to_p2();
  Point h;
  for (int i = top; i >= 0; --i) {
    P1P1 t = dbl_p2(r2);
    if (naf_lo[i] | naf_hi[i] | naf_u[i] | naf_v[i]) {
      Point x = t.to_p3();
      if (naf_lo[i] > 0) {
        x = x.add(btab[naf_lo[i] >> 1]);
      } else if (naf_lo[i] < 0) {
        x = x.sub(btab[(-naf_lo[i]) >> 1]);
      }
      if (naf_hi[i] > 0) {
        x = x.add(dtab[naf_hi[i] >> 1]);
      } else if (naf_hi[i] < 0) {
        x = x.sub(dtab[(-naf_hi[i]) >> 1]);
      }
      if (naf_u[i] > 0) {
        x = x.sub(atab[naf_u[i] >> 1]);
      } else if (naf_u[i] < 0) {
        x = x.add(atab[(-naf_u[i]) >> 1]);
      }
      if (naf_v[i] > 0) {
        x = sub_r ? x.sub(rtab[naf_v[i] >> 1]) : x.add(rtab[naf_v[i] >> 1]);
      } else if (naf_v[i] < 0) {
        x = sub_r ? x.add(rtab[(-naf_v[i]) >> 1]) : x.sub(rtab[(-naf_v[i]) >> 1]);
      }
      if (i) {
        r2 = x.to_p2();
      } else {
        h = x;
      }
    } else if (i) {
      r2 = t.to_p2();
    } else {
      h = t.to_p3();
    }
  }
  return h;
}

Point Point::mul_double(const Sc25519& k1, const Point& p1, const Sc25519& k2,
                        const Point& p2) {
  uint8_t b1[32], b2[32];
  k1.to_bytes(b1);
  k2.to_bytes(b2);
  int8_t naf1[256], naf2[256];
  const int top1 = slide(naf1, b1, 4);
  const int top2 = slide(naf2, b2, 4);

  auto build = [](const Point& p, std::array<Cached, 8>& tab) {
    tab[0] = p.to_cached();
    Cached step = p.dbl().to_cached();
    Point cur = p;
    for (int i = 1; i < 8; ++i) {
      cur = cur.add(step);
      tab[i] = cur.to_cached();
    }
  };
  std::array<Cached, 8> tab1, tab2;
  build(p1, tab1);
  build(p2, tab2);

  P2 r2 = Point().to_p2();
  Point h;
  for (int i = std::max(top1, top2); i >= 0; --i) {
    P1P1 t = dbl_p2(r2);
    if (naf1[i] | naf2[i]) {
      Point u = t.to_p3();
      if (naf1[i] > 0) {
        u = u.add(tab1[naf1[i] >> 1]);
      } else if (naf1[i] < 0) {
        u = u.sub(tab1[(-naf1[i]) >> 1]);
      }
      if (naf2[i] > 0) {
        u = u.add(tab2[naf2[i] >> 1]);
      } else if (naf2[i] < 0) {
        u = u.sub(tab2[(-naf2[i]) >> 1]);
      }
      if (i) {
        r2 = u.to_p2();
      } else {
        h = u;
      }
    } else if (i) {
      r2 = t.to_p2();
    } else {
      h = t.to_p3();
    }
  }
  return h;
}

Point Point::mul_multi_base(const Sc25519& s, std::span<const Sc25519> scalars,
                            std::span<const Point> points) {
  if (scalars.size() != points.size())
    throw std::invalid_argument("mul_multi_base: scalars/points size mismatch");
  if (points.empty()) return mul_base(s);  // degenerate; ct kernel is fine

  constexpr size_t kPippengerThreshold = 192;
  if (points.size() >= kPippengerThreshold) {
    // Pippenger's bucket method, preferable once the per-point wNAF tables
    // of Straus stop fitting in cache. Window width c grows with the input
    // size; cost ~ windows * (m + 2 * 2^c) additions with a working set of
    // just 2^c buckets + one cached point per input.
    const size_t m = scalars.size() + 1;  // + base-point term
    const int c = m < 600 ? 7 : (m < 2500 ? 8 : 10);
    const int windows = (253 + c - 1) / c;
    const uint32_t nbuckets = (1u << c) - 1;

    std::vector<std::array<uint8_t, 32>> kb(m);
    std::vector<Cached> cp;
    cp.reserve(m);
    s.to_bytes(kb[0].data());
    cp.push_back(base().to_cached());
    for (size_t i = 0; i < scalars.size(); ++i) {
      scalars[i].to_bytes(kb[i + 1].data());
      cp.push_back(points[i].to_cached());
    }

    Point result;
    std::vector<Point> buckets(nbuckets);
    std::vector<uint8_t> used(nbuckets);
    for (int w = windows - 1; w >= 0; --w) {
      {
        P2 r2 = result.to_p2();
        for (int d = 0; d + 1 < c; ++d) r2 = dbl_p2(r2).to_p2();
        result = dbl_p2(r2).to_p3();
      }
      std::fill(used.begin(), used.end(), 0);
      for (size_t i = 0; i < m; ++i) {
        const uint32_t digit = window_digit(kb[i].data(), w * c, c);
        if (!digit) continue;
        if (used[digit - 1]) {
          buckets[digit - 1] = buckets[digit - 1].add(cp[i]);
        } else {
          buckets[digit - 1] = Point().add(cp[i]);
          used[digit - 1] = 1;
        }
      }
      // Collapse: sum_d d * bucket[d] via a running suffix sum.
      Point running, window_sum;
      for (uint32_t d = nbuckets; d >= 1; --d) {
        if (used[d - 1]) running = running + buckets[d - 1];
        window_sum = window_sum + running;
      }
      result = result + window_sum;
    }
    return result;
  }

  // Straus: shared doublings, per-point width-5 wNAF tables, width-8 wNAF
  // for the base-point term over the static table.
  const size_t m = points.size();
  std::vector<std::array<Cached, 8>> tabs(m);
  std::vector<std::array<int8_t, 256>> nafs(m);
  std::vector<int> tops(m);
  uint8_t sb[32];
  s.to_bytes(sb);
  int8_t naf_s[256];
  int top = slide(naf_s, sb, 7);
  for (size_t i = 0; i < m; ++i) {
    uint8_t kb[32];
    scalars[i].to_bytes(kb);
    tops[i] = slide(nafs[i].data(), kb, 4);
    top = std::max(top, tops[i]);
    tabs[i][0] = points[i].to_cached();
    Cached step = points[i].dbl().to_cached();
    Point cur = points[i];
    for (int j = 1; j < 8; ++j) {
      cur = cur.add(step);
      tabs[i][j] = cur.to_cached();
    }
  }
  const auto& btab = base_wnaf_table();

  // Scan streams in descending order of their highest nonzero digit: a
  // stream is dead until the shared doubling index drops to its top, so the
  // per-row scans only touch the live prefix. Matters at batch sizes where
  // half the scalars are deliberately half-length (the 128-bit z_i).
  std::vector<uint32_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return tops[a] > tops[b]; });
  std::vector<const int8_t*> nafp(m);
  std::vector<const std::array<Cached, 8>*> tabp(m);
  std::vector<int> stop(m);
  for (size_t i = 0; i < m; ++i) {
    nafp[i] = nafs[order[i]].data();
    tabp[i] = &tabs[order[i]];
    stop[i] = tops[order[i]];
  }

  P2 r2 = Point().to_p2();
  Point h;
  size_t live = 0;
  for (int i = top; i >= 0; --i) {
    while (live < m && stop[live] >= i) ++live;
    P1P1 t = dbl_p2(r2);
    bool any = naf_s[i] != 0;
    for (size_t j = 0; j < live && !any; ++j) any = nafp[j][i] != 0;
    if (any) {
      Point u = t.to_p3();
      if (naf_s[i] > 0) {
        u = u.add(btab[naf_s[i] >> 1]);
      } else if (naf_s[i] < 0) {
        u = u.sub(btab[(-naf_s[i]) >> 1]);
      }
      for (size_t j = 0; j < live; ++j) {
        const int8_t d = nafp[j][i];
        if (d > 0) {
          u = u.add((*tabp[j])[d >> 1]);
        } else if (d < 0) {
          u = u.sub((*tabp[j])[(-d) >> 1]);
        }
      }
      if (i) {
        r2 = u.to_p2();
      } else {
        h = u;
      }
    } else if (i) {
      r2 = t.to_p2();
    } else {
      h = t.to_p3();
    }
  }
  return h;
}

std::array<uint8_t, 32> Point::compress() const {
  Fe25519 zi = z_.invert();
  Fe25519 x = x_ * zi;
  Fe25519 y = y_ * zi;
  std::array<uint8_t, 32> out;
  y.to_bytes(out.data());
  if (x.is_negative()) out[31] |= 0x80;
  return out;
}

Bytes Point::compress_bytes() const {
  auto a = compress();
  return Bytes(a.begin(), a.end());
}

std::optional<Point> Point::decompress(const uint8_t bytes[32]) {
  uint8_t yb[32];
  std::memcpy(yb, bytes, 32);
  const bool sign = (yb[31] & 0x80) != 0;
  yb[31] &= 0x7f;
  Fe25519 y = Fe25519::from_bytes(yb);

  // Recover x from y: x^2 = (y^2 - 1) / (d y^2 + 1).
  Fe25519 y2 = y.square();
  Fe25519 u = y2 - Fe25519::one();
  Fe25519 v = Fe25519::edwards_d() * y2 + Fe25519::one();

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  Fe25519 v3 = v.square() * v;
  Fe25519 v7 = v3.square() * v;
  Fe25519 x = u * v3 * (u * v7).pow_p58();

  Fe25519 vx2 = v * x.square();
  if (vx2 == u) {
    // ok
  } else if (vx2 == u.negate()) {
    x = x * Fe25519::sqrt_m1();
  } else {
    return std::nullopt;
  }

  if (x.is_zero() && sign) return std::nullopt;  // -0 is invalid
  if (x.is_negative() != sign) x = x.negate();

  Point p;
  p.x_ = x;
  p.y_ = y;
  p.z_ = Fe25519::one();
  p.t_ = x * y;
  return p;
}

std::optional<Point> Point::decompress(BytesView bytes) {
  if (bytes.size() != 32) return std::nullopt;
  return decompress(bytes.data());
}

bool Point::decompress_pair(const uint8_t a_bytes[32], const uint8_t b_bytes[32],
                            Point& a_out, Point& b_out) {
  // Same math as decompress(), split around the x^((p-5)/8) exponentiation
  // so both exponentiations can run interleaved.
  struct Pre {
    Fe25519 y, u, v, uv3, uv7;
    bool sign;
  };
  auto stage1 = [](const uint8_t bytes[32], Pre& o) {
    uint8_t yb[32];
    std::memcpy(yb, bytes, 32);
    o.sign = (yb[31] & 0x80) != 0;
    yb[31] &= 0x7f;
    o.y = Fe25519::from_bytes(yb);
    Fe25519 y2 = o.y.square();
    o.u = y2 - Fe25519::one();
    o.v = Fe25519::edwards_d() * y2 + Fe25519::one();
    Fe25519 v3 = o.v.square() * o.v;
    Fe25519 v7 = v3.square() * o.v;
    o.uv3 = o.u * v3;
    o.uv7 = o.u * v7;
  };
  auto stage2 = [](const Pre& p, const Fe25519& pw, Point& out) -> bool {
    Fe25519 x = p.uv3 * pw;
    Fe25519 vx2 = p.v * x.square();
    if (vx2 == p.u) {
      // principal root
    } else if (vx2 == p.u.negate()) {
      x = x * Fe25519::sqrt_m1();
    } else {
      return false;
    }
    if (x.is_zero() && p.sign) return false;  // -0 is invalid
    if (x.is_negative() != p.sign) x = x.negate();
    out.x_ = x;
    out.y_ = p.y;
    out.z_ = Fe25519::one();
    out.t_ = x * p.y;
    return true;
  };
  Pre pa, pb;
  stage1(a_bytes, pa);
  stage1(b_bytes, pb);
  Fe25519 wa, wb;
  Fe25519::pow_p58_2(pa.uv7, pb.uv7, wa, wb);
  return stage2(pa, wa, a_out) && stage2(pb, wb, b_out);
}

bool Point::is_identity() const {
  // (0, 1): x = 0 and y = z.
  return x_.is_zero() && y_ == z_;
}

bool Point::operator==(const Point& o) const {
  // Projective equality: X1 Z2 == X2 Z1 and Y1 Z2 == Y2 Z1.
  return (x_ * o.z_ == o.x_ * z_) && (y_ * o.z_ == o.y_ * z_);
}

// ---------------------------------------------------------------------------
// Signatures.

namespace {

Sc25519 sc_from_hash(const Sha512Digest& h) { return Sc25519::from_bytes_wide(h.data()); }

std::array<uint8_t, 32> clamp(const uint8_t h[32]) {
  std::array<uint8_t, 32> s;
  std::memcpy(s.data(), h, 32);
  s[0] &= 248;
  s[31] &= 127;
  s[31] |= 64;
  return s;
}

}  // namespace

Ed25519KeyPair ed25519_keypair(const uint8_t seed[32]) {
  Ed25519KeyPair kp;
  std::memcpy(kp.seed.data(), seed, 32);
  Sha512Digest h = Sha512::hash(BytesView(seed, 32));
  auto s_bytes = clamp(h.data());
  // Clamped scalars are < 2^255, so reduce mod l before the multiply. (The
  // reduction does not change the resulting point because B has order l.)
  Sc25519 s = Sc25519::from_bytes_mod_l(s_bytes.data());
  kp.public_key = Point::mul_base(s).compress();
  return kp;
}

std::array<uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp, BytesView message) {
  Sha512Digest h = Sha512::hash(BytesView(kp.seed.data(), 32));
  auto s_bytes = clamp(h.data());
  Sc25519 s = Sc25519::from_bytes_mod_l(s_bytes.data());

  // r = H(prefix || M)
  Sha512 rh;
  rh.update(BytesView(h.data() + 32, 32));
  rh.update(message);
  Sc25519 r = sc_from_hash(rh.digest());

  auto r_enc = Point::mul_base(r).compress();

  // k = H(R || A || M)
  Sha512 kh;
  kh.update(BytesView(r_enc.data(), 32));
  kh.update(BytesView(kp.public_key.data(), 32));
  kh.update(message);
  Sc25519 k = sc_from_hash(kh.digest());

  Sc25519 big_s = r + k * s;

  std::array<uint8_t, 64> sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  big_s.to_bytes(sig.data() + 32);
  return sig;
}

bool ed25519_verify(const uint8_t public_key[32], BytesView message,
                    const uint8_t signature[64]) {
  // Reject non-canonical S (S >= l) before doing any point work — a direct
  // 4-word compare, versus two point decompressions (~10 us) it used to
  // follow.
  if (!Sc25519::is_canonical(signature + 32)) return false;

  Point a, r;
  if (!Point::decompress_pair(public_key, signature, a, r)) return false;

  Sc25519 s = Sc25519::from_bytes_mod_l(signature + 32);

  Sha512 kh;
  kh.update(BytesView(signature, 32));
  kh.update(BytesView(public_key, 32));
  kh.update(message);
  Sc25519 k = sc_from_hash(kh.digest());

  // Cofactored check 8 S B == 8 R + 8 k A, evaluated as a single split
  // multi-scalar multiplication of 8 v (S B - k A - R) == identity for a
  // verifier-chosen v coprime to l (see mul_verify_scaled).
  Point t = Point::mul_verify_scaled(s, k, a, r);
  return t.mul_cofactor().is_identity();
}

bool ed25519_verify(BytesView public_key, BytesView message, BytesView signature) {
  if (public_key.size() != 32 || signature.size() != 64) return false;
  return ed25519_verify(public_key.data(), message, signature.data());
}

bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items) {
  if (items.empty()) return true;
  if (items.size() == 1)
    return ed25519_verify(items[0].public_key, items[0].message, items[0].signature);

  struct Parsed {
    Point a, r;
    Sc25519 s, k;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(items.size());

  // The coefficients z_i are derived Fiat-Shamir style from a transcript of
  // the whole batch: deterministic for a given batch (simulation replays
  // stay bit-identical) yet not controllable by any individual signer, so a
  // forged signature cannot be tuned to cancel out of the combined check.
  Sha512 transcript;
  for (const auto& it : items) {
    if (it.public_key.size() != 32 || it.signature.size() != 64) return false;
    // Non-canonical S rejects before any point work, as in single verify.
    if (!Sc25519::is_canonical(it.signature.data() + 32)) return false;
    Point a, r;
    if (!Point::decompress_pair(it.public_key.data(), it.signature.data(), a, r)) return false;

    Sc25519 s = Sc25519::from_bytes_mod_l(it.signature.data() + 32);

    Sha512 kh;
    kh.update(BytesView(it.signature.data(), 32));
    kh.update(it.public_key);
    kh.update(it.message);
    parsed.push_back({a, r, s, sc_from_hash(kh.digest())});

    uint8_t len_le[8];
    uint64_t len = it.message.size();
    for (int j = 0; j < 8; ++j) len_le[j] = static_cast<uint8_t>(len >> (8 * j));
    transcript.update(it.public_key);
    transcript.update(it.signature);
    transcript.update(BytesView(len_le, 8));
    transcript.update(it.message);
  }
  Sha512Digest seed = transcript.digest();

  // Check 8 (sum z_i S_i B - sum z_i R_i - sum z_i k_i A_i) == identity as
  // one multi-scalar multiplication. The z_i are truncated to 128 bits:
  // soundness of the random-linear-combination argument only needs the z_i
  // to be unpredictable and pairwise independent, and 2^-128 false-accept
  // probability matches the security level of the scheme itself — while
  // halving the wNAF length of every R_i term.
  const size_t n = parsed.size();
  Sc25519 s_sum;
  std::vector<Sc25519> scalars;
  std::vector<Point> pts;
  scalars.reserve(2 * n);
  pts.reserve(2 * n);
  Sha512Digest zd{};
  for (size_t i = 0; i < n; ++i) {
    // One 64-byte digest yields four 128-bit coefficients.
    if (i % 4 == 0) {
      uint8_t idx_le[8];
      const uint64_t blk = i / 4;
      for (int j = 0; j < 8; ++j) idx_le[j] = static_cast<uint8_t>(blk >> (8 * j));
      Sha512 zh;
      zh.update(BytesView(seed.data(), seed.size()));
      zh.update(BytesView(idx_le, 8));
      zd = zh.digest();
    }
    uint8_t zb[32] = {0};
    std::memcpy(zb, zd.data() + 16 * (i % 4), 16);
    Sc25519 z = Sc25519::from_bytes_mod_l(zb);
    s_sum = s_sum + z * parsed[i].s;
    scalars.push_back(z);
    pts.push_back(parsed[i].r.negate());
    scalars.push_back(z * parsed[i].k);
    pts.push_back(parsed[i].a.negate());
  }
  Point t = Point::mul_multi_base(s_sum, scalars, pts);
  return t.mul_cofactor().is_identity();
}

Point hash_to_point(std::string_view domain, BytesView message) {
  for (uint32_t ctr = 0;; ++ctr) {
    Sha512 h;
    h.update(domain);
    h.update(message);
    uint8_t ctr_le[4] = {static_cast<uint8_t>(ctr), static_cast<uint8_t>(ctr >> 8),
                         static_cast<uint8_t>(ctr >> 16), static_cast<uint8_t>(ctr >> 24)};
    h.update(BytesView(ctr_le, 4));
    Sha512Digest d = h.digest();
    auto p = Point::decompress(d.data());
    if (!p) continue;
    Point q = p->mul_cofactor();  // clear cofactor into the prime-order subgroup
    if (q.is_identity()) continue;
    return q;
  }
}

}  // namespace icc::crypto
