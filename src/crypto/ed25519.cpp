#include "crypto/ed25519.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "crypto/sha512.hpp"

static_assert(std::endian::native == std::endian::little,
              "field/scalar serialization assumes a little-endian host");

namespace icc::crypto {

Point::Point() : x_(), y_(Fe25519::one()), z_(Fe25519::one()), t_() {}

const Point& Point::base() {
  static const Point b = [] {
    // Canonical compressed encoding of the RFC 8032 base point (y = 4/5,
    // x positive/even): 0x58 followed by 31 bytes of 0x66.
    uint8_t enc[32];
    enc[0] = 0x58;
    std::memset(enc + 1, 0x66, 31);
    auto p = Point::decompress(enc);
    if (!p) throw std::logic_error("base point decompression failed");
    return *p;
  }();
  return b;
}

// Unified addition, add-2008-hwcd-3 (works for doubling too; complete for
// points in the prime-order subgroup).
Point Point::operator+(const Point& o) const {
  Point r;
  Fe25519 a = (y_ - x_) * (o.y_ - o.x_);
  Fe25519 b = (y_ + x_) * (o.y_ + o.x_);
  Fe25519 c = t_ * Fe25519::edwards_2d() * o.t_;
  Fe25519 d = (z_ + z_) * o.z_;
  Fe25519 e = b - a;
  Fe25519 f = d - c;
  Fe25519 g = d + c;
  Fe25519 h = b + a;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

// dbl-2008-hwcd with a = -1.
Point Point::dbl() const {
  Point r;
  Fe25519 a = x_.square();
  Fe25519 b = y_.square();
  Fe25519 zz = z_.square();
  Fe25519 c = zz + zz;
  Fe25519 d = a.negate();
  Fe25519 e = (x_ + y_).square() - a - b;
  Fe25519 g = d + b;
  Fe25519 f = g - c;
  Fe25519 h = d - b;
  r.x_ = e * f;
  r.y_ = g * h;
  r.t_ = e * h;
  r.z_ = f * g;
  return r;
}

Point Point::negate() const {
  Point r = *this;
  r.x_ = x_.negate();
  r.t_ = t_.negate();
  return r;
}

Point Point::mul(const Sc25519& k) const {
  uint8_t kb[32];
  k.to_bytes(kb);
  Point result;  // identity
  for (int i = 255; i >= 0; --i) {
    result = result.dbl();
    if ((kb[i / 8] >> (i % 8)) & 1) result = result + *this;
  }
  return result;
}

Point Point::mul_base(const Sc25519& k) {
  // Precomputed 2^i * B. 253 entries cover every canonical scalar.
  static const std::vector<Point> table = [] {
    std::vector<Point> t;
    t.reserve(253);
    Point p = base();
    for (int i = 0; i < 253; ++i) {
      t.push_back(p);
      p = p.dbl();
    }
    return t;
  }();
  uint8_t kb[32];
  k.to_bytes(kb);
  Point result;
  for (int i = 0; i < 253; ++i) {
    if ((kb[i / 8] >> (i % 8)) & 1) result = result + table[i];
  }
  return result;
}

std::array<uint8_t, 32> Point::compress() const {
  Fe25519 zi = z_.invert();
  Fe25519 x = x_ * zi;
  Fe25519 y = y_ * zi;
  std::array<uint8_t, 32> out;
  y.to_bytes(out.data());
  if (x.is_negative()) out[31] |= 0x80;
  return out;
}

Bytes Point::compress_bytes() const {
  auto a = compress();
  return Bytes(a.begin(), a.end());
}

std::optional<Point> Point::decompress(const uint8_t bytes[32]) {
  uint8_t yb[32];
  std::memcpy(yb, bytes, 32);
  const bool sign = (yb[31] & 0x80) != 0;
  yb[31] &= 0x7f;
  Fe25519 y = Fe25519::from_bytes(yb);

  // Recover x from y: x^2 = (y^2 - 1) / (d y^2 + 1).
  Fe25519 y2 = y.square();
  Fe25519 u = y2 - Fe25519::one();
  Fe25519 v = Fe25519::edwards_d() * y2 + Fe25519::one();

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  Fe25519 v3 = v.square() * v;
  Fe25519 v7 = v3.square() * v;
  Fe25519 x = u * v3 * (u * v7).pow_p58();

  Fe25519 vx2 = v * x.square();
  if (vx2 == u) {
    // ok
  } else if (vx2 == u.negate()) {
    x = x * Fe25519::sqrt_m1();
  } else {
    return std::nullopt;
  }

  if (x.is_zero() && sign) return std::nullopt;  // -0 is invalid
  if (x.is_negative() != sign) x = x.negate();

  Point p;
  p.x_ = x;
  p.y_ = y;
  p.z_ = Fe25519::one();
  p.t_ = x * y;
  return p;
}

std::optional<Point> Point::decompress(BytesView bytes) {
  if (bytes.size() != 32) return std::nullopt;
  return decompress(bytes.data());
}

bool Point::is_identity() const {
  // (0, 1): x = 0 and y = z.
  return x_.is_zero() && y_ == z_;
}

bool Point::operator==(const Point& o) const {
  // Projective equality: X1 Z2 == X2 Z1 and Y1 Z2 == Y2 Z1.
  return (x_ * o.z_ == o.x_ * z_) && (y_ * o.z_ == o.y_ * z_);
}

namespace {

Sc25519 sc_from_hash(const Sha512Digest& h) { return Sc25519::from_bytes_wide(h.data()); }

std::array<uint8_t, 32> clamp(const uint8_t h[32]) {
  std::array<uint8_t, 32> s;
  std::memcpy(s.data(), h, 32);
  s[0] &= 248;
  s[31] &= 127;
  s[31] |= 64;
  return s;
}

}  // namespace

Ed25519KeyPair ed25519_keypair(const uint8_t seed[32]) {
  Ed25519KeyPair kp;
  std::memcpy(kp.seed.data(), seed, 32);
  Sha512Digest h = Sha512::hash(BytesView(seed, 32));
  auto s_bytes = clamp(h.data());
  // Clamped scalars are < 2^255, so reduce mod l before the multiply. (The
  // reduction does not change the resulting point because B has order l.)
  Sc25519 s = Sc25519::from_bytes_mod_l(s_bytes.data());
  kp.public_key = Point::mul_base(s).compress();
  return kp;
}

std::array<uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp, BytesView message) {
  Sha512Digest h = Sha512::hash(BytesView(kp.seed.data(), 32));
  auto s_bytes = clamp(h.data());
  Sc25519 s = Sc25519::from_bytes_mod_l(s_bytes.data());

  // r = H(prefix || M)
  Sha512 rh;
  rh.update(BytesView(h.data() + 32, 32));
  rh.update(message);
  Sc25519 r = sc_from_hash(rh.digest());

  auto r_enc = Point::mul_base(r).compress();

  // k = H(R || A || M)
  Sha512 kh;
  kh.update(BytesView(r_enc.data(), 32));
  kh.update(BytesView(kp.public_key.data(), 32));
  kh.update(message);
  Sc25519 k = sc_from_hash(kh.digest());

  Sc25519 big_s = r + k * s;

  std::array<uint8_t, 64> sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  big_s.to_bytes(sig.data() + 32);
  return sig;
}

bool ed25519_verify(const uint8_t public_key[32], BytesView message,
                    const uint8_t signature[64]) {
  auto a = Point::decompress(public_key);
  if (!a) return false;
  auto r = Point::decompress(signature);
  if (!r) return false;

  // Reject non-canonical S (S >= l).
  Sc25519 s = Sc25519::from_bytes_mod_l(signature + 32);
  uint8_t s_canon[32];
  s.to_bytes(s_canon);
  if (std::memcmp(s_canon, signature + 32, 32) != 0) return false;

  Sha512 kh;
  kh.update(BytesView(signature, 32));
  kh.update(BytesView(public_key, 32));
  kh.update(message);
  Sc25519 k = sc_from_hash(kh.digest());

  // Cofactored check: 8 S B == 8 R + 8 k A.
  Point lhs = Point::mul_base(s).mul_cofactor();
  Point rhs = (*r + a->mul(k)).mul_cofactor();
  return lhs == rhs;
}

bool ed25519_verify(BytesView public_key, BytesView message, BytesView signature) {
  if (public_key.size() != 32 || signature.size() != 64) return false;
  return ed25519_verify(public_key.data(), message, signature.data());
}

bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items) {
  if (items.empty()) return true;
  if (items.size() == 1)
    return ed25519_verify(items[0].public_key, items[0].message, items[0].signature);

  struct Parsed {
    Point a, r;
    Sc25519 s, k;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(items.size());

  // The coefficients z_i are derived Fiat-Shamir style from a transcript of
  // the whole batch: deterministic for a given batch (simulation replays
  // stay bit-identical) yet not controllable by any individual signer, so a
  // forged signature cannot be tuned to cancel out of the combined check.
  Sha512 transcript;
  for (const auto& it : items) {
    if (it.public_key.size() != 32 || it.signature.size() != 64) return false;
    auto a = Point::decompress(it.public_key.data());
    if (!a) return false;
    auto r = Point::decompress(it.signature.data());
    if (!r) return false;

    // Reject non-canonical S (S >= l), as in single verification.
    Sc25519 s = Sc25519::from_bytes_mod_l(it.signature.data() + 32);
    uint8_t s_canon[32];
    s.to_bytes(s_canon);
    if (std::memcmp(s_canon, it.signature.data() + 32, 32) != 0) return false;

    Sha512 kh;
    kh.update(BytesView(it.signature.data(), 32));
    kh.update(it.public_key);
    kh.update(it.message);
    parsed.push_back({*a, *r, s, sc_from_hash(kh.digest())});

    uint8_t len_le[8];
    uint64_t len = it.message.size();
    for (int j = 0; j < 8; ++j) len_le[j] = static_cast<uint8_t>(len >> (8 * j));
    transcript.update(it.public_key);
    transcript.update(it.signature);
    transcript.update(BytesView(len_le, 8));
    transcript.update(it.message);
  }
  Sha512Digest seed = transcript.digest();

  // Check 8 (sum z_i S_i) B == sum z_i 8 R_i + sum (z_i k_i) 8 A_i.
  Sc25519 s_sum;
  Point rhs;  // identity
  for (size_t i = 0; i < parsed.size(); ++i) {
    uint8_t idx_le[8];
    for (int j = 0; j < 8; ++j) idx_le[j] = static_cast<uint8_t>(i >> (8 * j));
    Sha512 zh;
    zh.update(BytesView(seed.data(), seed.size()));
    zh.update(BytesView(idx_le, 8));
    Sc25519 z = sc_from_hash(zh.digest());
    s_sum = s_sum + z * parsed[i].s;
    rhs = rhs + parsed[i].r.mul(z) + parsed[i].a.mul(z * parsed[i].k);
  }
  return Point::mul_base(s_sum).mul_cofactor() == rhs.mul_cofactor();
}

Point hash_to_point(std::string_view domain, BytesView message) {
  for (uint32_t ctr = 0;; ++ctr) {
    Sha512 h;
    h.update(domain);
    h.update(message);
    uint8_t ctr_le[4] = {static_cast<uint8_t>(ctr), static_cast<uint8_t>(ctr >> 8),
                         static_cast<uint8_t>(ctr >> 16), static_cast<uint8_t>(ctr >> 24)};
    h.update(BytesView(ctr_le, 4));
    Sha512Digest d = h.digest();
    auto p = Point::decompress(d.data());
    if (!p) continue;
    Point q = p->mul_cofactor();  // clear cofactor into the prime-order subgroup
    if (q.is_identity()) continue;
    return q;
  }
}

}  // namespace icc::crypto
