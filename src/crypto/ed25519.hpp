// Ed25519 (RFC 8032) — group operations and signatures, from scratch.
//
// This provides:
//  * the twisted-Edwards group (extended coordinates) used by the signature
//    scheme, the DLEQ proofs and the threshold random beacon;
//  * RFC 8032 key generation / sign / verify, tested against the RFC test
//    vectors (tests/crypto/ed25519_test.cpp).
//
// The paper's `S_auth` (Section 3.2) is instantiated with these signatures.
#pragma once

#include <optional>

#include "crypto/fe25519.hpp"
#include "crypto/sc25519.hpp"
#include "support/bytes.hpp"

namespace icc::crypto {

/// A point on the Ed25519 curve in extended homogeneous coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
class Point {
 public:
  /// The identity element (0, 1).
  Point();

  static const Point& base();  ///< RFC 8032 base point B.

  Point operator+(const Point& o) const;
  Point dbl() const;
  Point negate() const;
  Point operator-(const Point& o) const { return *this + o.negate(); }

  /// Scalar multiplication, simple double-and-add.
  Point mul(const Sc25519& k) const;

  /// k * B using a precomputed table of 2^i * B (much faster than mul).
  static Point mul_base(const Sc25519& k);

  /// Multiply by the cofactor 8.
  Point mul_cofactor() const { return dbl().dbl().dbl(); }

  /// Compressed 32-byte encoding (y with the sign bit of x).
  std::array<uint8_t, 32> compress() const;
  Bytes compress_bytes() const;

  /// Decompress; returns nullopt if the encoding is not a curve point.
  static std::optional<Point> decompress(const uint8_t bytes[32]);
  static std::optional<Point> decompress(BytesView bytes);

  bool is_identity() const;
  bool operator==(const Point& o) const;

 private:
  Fe25519 x_, y_, z_, t_;
};

/// Ed25519 key pair. The 32-byte seed is the private key (RFC 8032).
struct Ed25519KeyPair {
  std::array<uint8_t, 32> seed;
  std::array<uint8_t, 32> public_key;
};

/// Derive a key pair from a 32-byte seed.
Ed25519KeyPair ed25519_keypair(const uint8_t seed[32]);

/// Sign a message; returns the 64-byte signature R || S.
std::array<uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp, BytesView message);

/// Verify a signature against a 32-byte public key.
bool ed25519_verify(const uint8_t public_key[32], BytesView message,
                    const uint8_t signature[64]);
bool ed25519_verify(BytesView public_key, BytesView message, BytesView signature);

/// One (public key, message, signature) triple of a batch.
struct Ed25519BatchItem {
  BytesView public_key;  ///< 32 bytes
  BytesView message;
  BytesView signature;  ///< 64 bytes
};

/// Batch verification (the standard random-linear-combination equation):
/// checks 8 (sum z_i S_i) B == sum z_i 8 R_i + sum (z_i k_i) 8 A_i for
/// coefficients z_i derived by Fiat-Shamir from the whole batch, so the
/// check is deterministic for a given batch yet unpredictable to a signer.
/// Returns true iff the combined equation holds — which, except with
/// negligible probability, means every signature in the batch is valid.
/// On false, callers re-verify per item to identify the bad ones.
bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items);

/// Hash an arbitrary message to a point in the prime-order subgroup
/// (try-and-increment + cofactor clearing). Deterministic; never returns the
/// identity. Domain-separated by `domain`.
Point hash_to_point(std::string_view domain, BytesView message);

}  // namespace icc::crypto
