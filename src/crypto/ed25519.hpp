// Ed25519 (RFC 8032) — group operations and signatures, from scratch.
//
// This provides:
//  * the twisted-Edwards group (extended coordinates) used by the signature
//    scheme, the DLEQ proofs and the threshold random beacon;
//  * RFC 8032 key generation / sign / verify, tested against the RFC test
//    vectors (tests/crypto/ed25519_test.cpp);
//  * a family of scalar-multiplication kernels (see DESIGN.md §Kernels):
//      - mul:        variable-time signed sliding-window wNAF (w = 5), for
//                    public scalars (verification);
//      - mul_ct:     constant-time fixed-window radix-16, for secret scalars
//                    applied to arbitrary points (beacon share evaluation,
//                    DLEQ proving);
//      - mul_base:   constant-time signed radix-16 comb over a precomputed
//                    affine (Niels) table of the base point, for secret
//                    scalars (signing, key generation);
//      - mul_double_base / mul_double: Straus (Shamir's trick) shared-
//                    doubling double-scalar kernels for verification
//                    equations of the form s B - k A;
//      - mul_multi_base: multi-scalar s B + sum k_i P_i — Straus for small
//                    batches, Pippenger's bucket method for large ones —
//                    backing ed25519_verify_batch;
//      - mul_naive / mul_base_ladder: the original bit-at-a-time kernels,
//                    retained as reference oracles for the randomized
//                    equivalence tests (tests/crypto/kernel_equivalence_*).
//
// The paper's `S_auth` (Section 3.2) is instantiated with these signatures.
#pragma once

#include <optional>
#include <span>

#include "crypto/fe25519.hpp"
#include "crypto/sc25519.hpp"
#include "support/bytes.hpp"

namespace icc::crypto {

/// A point on the Ed25519 curve in extended homogeneous coordinates
/// (X : Y : Z : T) with x = X/Z, y = Y/Z, T = XY/Z.
class Point {
 public:
  /// The identity element (0, 1).
  Point();

  static const Point& base();  ///< RFC 8032 base point B.

  Point operator+(const Point& o) const;
  Point dbl() const;
  Point negate() const;
  Point operator-(const Point& o) const { return *this + o.negate(); }

  /// Scalar multiplication for PUBLIC scalars: variable-time signed
  /// sliding-window wNAF, w = 5 (8 precomputed odd multiples). Roughly 3x
  /// the naive double-and-add. Do not use with secret scalars.
  Point mul(const Sc25519& k) const;

  /// Scalar multiplication for SECRET scalars: fixed-window radix-16 with
  /// uniform table scans and branchless conditional negation. Same memory
  /// access pattern and instruction trace for every scalar.
  Point mul_ct(const Sc25519& k) const;

  /// Reference oracle: the original bit-at-a-time double-and-add. Kept for
  /// the randomized kernel-equivalence tests; not used on hot paths.
  Point mul_naive(const Sc25519& k) const;

  /// k * B for SECRET scalars: signed radix-16 comb over a 32x8 precomputed
  /// Niels table, constant-time table selection. ~64 additions + 4
  /// doublings per multiplication.
  static Point mul_base(const Sc25519& k);

  /// Reference oracle: the original 2^i * B table walk (variable time).
  static Point mul_base_ladder(const Sc25519& k);

  /// s * B + k * A with shared doublings (Straus / Shamir's trick);
  /// variable time. The base-point half uses a width-8 wNAF over a static
  /// 64-entry odd-multiple table. This is the single-signature
  /// verification kernel.
  static Point mul_double_base(const Sc25519& s, const Sc25519& k, const Point& a);

  /// k1 * P1 + k2 * P2 with shared doublings; variable time (DLEQ checks).
  static Point mul_double(const Sc25519& k1, const Point& p1, const Sc25519& k2,
                          const Point& p2);

  /// s * B + sum scalars[i] * points[i]; variable time. Uses Straus with
  /// per-point wNAF tables for small inputs and Pippenger's bucket method
  /// beyond ~192 points. This is the batch-verification kernel.
  static Point mul_multi_base(const Sc25519& s, std::span<const Sc25519> scalars,
                              std::span<const Point> points);

  /// v * (s B - k A - R) for a verifier-chosen v with v != 0 (mod l):
  /// 8 * result == identity iff 8 * (s B - k A - R) == identity, so the
  /// result is a drop-in for the cofactored Ed25519 verification equation.
  /// A truncated extended Euclid splits k as u/v (mod l) with |u|, |v| of
  /// ~127 bits (Antipa et al., accelerated signature verification), turning
  /// the equation into (v s) B - u A - v R whose four half-length wNAF
  /// streams (v s split over static tables for B and 2^127 B, u over A, v
  /// over R) share a ~127-step doubling run instead of ~253. Variable time.
  static Point mul_verify_scaled(const Sc25519& s, const Sc25519& k, const Point& a,
                                 const Point& r);

  /// Multiply by the cofactor 8 (three doublings, kept in P2 form between).
  Point mul_cofactor() const {
    P2 r = dbl_p2(to_p2()).to_p2();
    r = dbl_p2(r).to_p2();
    return dbl_p2(r).to_p3();
  }

  /// Compressed 32-byte encoding (y with the sign bit of x).
  std::array<uint8_t, 32> compress() const;
  Bytes compress_bytes() const;

  /// Decompress; returns nullopt if the encoding is not a curve point.
  static std::optional<Point> decompress(const uint8_t bytes[32]);
  static std::optional<Point> decompress(BytesView bytes);

  /// Decompress two encodings at once, running the two square-root
  /// exponentiations in lockstep (Fe25519::pow_p58_2) so their serial
  /// squaring chains overlap. Returns false if either encoding is invalid
  /// (outputs are then unspecified). The verification paths always have a
  /// (public key, R) pair to decompress, which this makes ~20% cheaper.
  static bool decompress_pair(const uint8_t a_bytes[32], const uint8_t b_bytes[32],
                              Point& a_out, Point& b_out);

  bool is_identity() const;
  bool operator==(const Point& o) const;

 private:
  /// Precomputed form of a point for repeated mixed addition:
  /// (Y+X, Y-X, Z, 2dT). Addition against a Cached costs 8M.
  struct Cached {
    Fe25519 y_plus_x, y_minus_x, z, t2d;
  };

  /// Affine precomputed form (Z == 1 implied): (y+x, y-x, 2dxy).
  /// Addition against a Niels costs 7M; used for static tables.
  struct Niels {
    Fe25519 y_plus_x, y_minus_x, xy2d;
    Niels() : y_plus_x(Fe25519::one()), y_minus_x(Fe25519::one()), xy2d() {}
  };

  /// Projective (X : Y : Z) without the T coordinate. Doubling only needs
  /// (X, Y, Z), so runs of doublings between sparse additions stay in this
  /// form and skip the 1M spent computing T.
  struct P2 {
    Fe25519 x, y, z;
  };

  /// "Completed" point (E, F, G, H) with X = EF, Y = GH, Z = FG, T = EH —
  /// the common output form of the addition/doubling formulas before the
  /// final combination multiplies (ref10's ge_p1p1).
  struct P1P1 {
    Fe25519 e, f, g, h;
    Point to_p3() const;  ///< 4M: full extended point.
    P2 to_p2() const;     ///< 3M: enough for the next doubling.
  };

  static P1P1 dbl_p2(const P2& p);  ///< 4S, no multiplications.
  P2 to_p2() const { return {x_, y_, z_}; }

  Cached to_cached() const;
  Niels to_niels() const;  ///< Requires an inversion; table building only.
  Point add(const Cached& o) const;
  Point sub(const Cached& o) const;
  Point add(const Niels& o) const;
  Point sub(const Niels& o) const;

  static const std::array<std::array<Niels, 8>, 32>& comb_table();
  static const std::array<Niels, 64>& base_wnaf_table();
  static const std::array<Niels, 64>& base_shift_wnaf_table();  ///< odd i * 2^127 B

  Fe25519 x_, y_, z_, t_;
};

/// Ed25519 key pair. The 32-byte seed is the private key (RFC 8032).
struct Ed25519KeyPair {
  std::array<uint8_t, 32> seed;
  std::array<uint8_t, 32> public_key;
};

/// Derive a key pair from a 32-byte seed.
Ed25519KeyPair ed25519_keypair(const uint8_t seed[32]);

/// Sign a message; returns the 64-byte signature R || S.
std::array<uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp, BytesView message);

/// Verify a signature against a 32-byte public key.
bool ed25519_verify(const uint8_t public_key[32], BytesView message,
                    const uint8_t signature[64]);
bool ed25519_verify(BytesView public_key, BytesView message, BytesView signature);

/// One (public key, message, signature) triple of a batch.
struct Ed25519BatchItem {
  BytesView public_key;  ///< 32 bytes
  BytesView message;
  BytesView signature;  ///< 64 bytes
};

/// Batch verification (the standard random-linear-combination equation):
/// checks 8 (sum z_i S_i) B == sum z_i 8 R_i + sum (z_i k_i) 8 A_i for
/// coefficients z_i derived by Fiat-Shamir from the whole batch, so the
/// check is deterministic for a given batch yet unpredictable to a signer.
/// Returns true iff the combined equation holds — which, except with
/// negligible probability, means every signature in the batch is valid.
/// On false, callers re-verify per item to identify the bad ones.
bool ed25519_verify_batch(std::span<const Ed25519BatchItem> items);

/// Hash an arbitrary message to a point in the prime-order subgroup
/// (try-and-increment + cofactor clearing). Deterministic; never returns the
/// identity. Domain-separated by `domain`.
Point hash_to_point(std::string_view domain, BytesView message);

}  // namespace icc::crypto
