#include "crypto/fe25519.hpp"

#include <cstring>

namespace icc::crypto {

namespace {

constexpr uint64_t kMask = (1ULL << 51) - 1;
using u128 = unsigned __int128;

inline uint64_t load8(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only (asserted in ed25519.cpp)
}

/// Generic square-and-multiply with a little-endian 32-byte exponent.
Fe25519 pow_le(const Fe25519& base, const uint8_t exp_le[32]) {
  Fe25519 result = Fe25519::one();
  for (int i = 255; i >= 0; --i) {
    result = result.square();
    if ((exp_le[i / 8] >> (i % 8)) & 1) result = result * base;
  }
  return result;
}

}  // namespace

Fe25519 Fe25519::one() { return from_u64(1); }

Fe25519 Fe25519::from_u64(uint64_t x) {
  Fe25519 r;
  r.v_[0] = x & kMask;
  r.v_[1] = x >> 51;
  return r;
}

Fe25519 Fe25519::from_bytes(const uint8_t bytes[32]) {
  Fe25519 r;
  r.v_[0] = load8(bytes) & kMask;
  r.v_[1] = (load8(bytes + 6) >> 3) & kMask;
  r.v_[2] = (load8(bytes + 12) >> 6) & kMask;
  r.v_[3] = (load8(bytes + 19) >> 1) & kMask;
  r.v_[4] = (load8(bytes + 24) >> 12) & kMask;
  return r;
}

void Fe25519::carry() {
  uint64_t c;
  c = v_[0] >> 51; v_[0] &= kMask; v_[1] += c;
  c = v_[1] >> 51; v_[1] &= kMask; v_[2] += c;
  c = v_[2] >> 51; v_[2] &= kMask; v_[3] += c;
  c = v_[3] >> 51; v_[3] &= kMask; v_[4] += c;
  c = v_[4] >> 51; v_[4] &= kMask; v_[0] += 19 * c;
  c = v_[0] >> 51; v_[0] &= kMask; v_[1] += c;
}

void Fe25519::to_bytes(uint8_t out[32]) const {
  // Freeze: fully carry, then subtract p while the value is >= p.
  Fe25519 t = *this;
  t.carry();
  t.carry();
  constexpr uint64_t kP0 = kMask - 18;  // 2^51 - 19
  for (int pass = 0; pass < 2; ++pass) {
    bool ge = t.v_[4] == kMask && t.v_[3] == kMask && t.v_[2] == kMask &&
              t.v_[1] == kMask && t.v_[0] >= kP0;
    if (ge) {
      t.v_[0] -= kP0;
      t.v_[1] = t.v_[2] = t.v_[3] = t.v_[4] = 0;
    }
  }
  // Pack 5x51 bits into 32 bytes (255 bits, top bit zero).
  uint64_t w0 = t.v_[0] | (t.v_[1] << 51);
  uint64_t w1 = (t.v_[1] >> 13) | (t.v_[2] << 38);
  uint64_t w2 = (t.v_[2] >> 26) | (t.v_[3] << 25);
  uint64_t w3 = (t.v_[3] >> 39) | (t.v_[4] << 12);
  std::memcpy(out, &w0, 8);
  std::memcpy(out + 8, &w1, 8);
  std::memcpy(out + 16, &w2, 8);
  std::memcpy(out + 24, &w3, 8);
}

Bytes Fe25519::to_bytes() const {
  Bytes out(32);
  to_bytes(out.data());
  return out;
}

Fe25519 Fe25519::operator+(const Fe25519& o) const {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) r.v_[i] = v_[i] + o.v_[i];
  r.carry();
  return r;
}

Fe25519 Fe25519::operator-(const Fe25519& o) const {
  // Add 2p before subtracting so limbs never underflow (inputs < 2^52).
  Fe25519 r;
  r.v_[0] = v_[0] + ((kMask - 18) << 1) - o.v_[0];
  for (int i = 1; i < 5; ++i) r.v_[i] = v_[i] + (kMask << 1) - o.v_[i];
  r.carry();
  return r;
}

Fe25519 Fe25519::negate() const { return Fe25519::zero() - *this; }

Fe25519 Fe25519::operator*(const Fe25519& o) const {
  const uint64_t a0 = v_[0], a1 = v_[1], a2 = v_[2], a3 = v_[3], a4 = v_[4];
  const uint64_t b0 = o.v_[0], b1 = o.v_[1], b2 = o.v_[2], b3 = o.v_[3], b4 = o.v_[4];

  u128 r0 = (u128)a0 * b0 + (u128)19 * ((u128)a1 * b4 + (u128)a2 * b3 + (u128)a3 * b2 + (u128)a4 * b1);
  u128 r1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)19 * ((u128)a2 * b4 + (u128)a3 * b3 + (u128)a4 * b2);
  u128 r2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)19 * ((u128)a3 * b4 + (u128)a4 * b3);
  u128 r3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 + (u128)19 * ((u128)a4 * b4);
  u128 r4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 + (u128)a4 * b0;

  Fe25519 out;
  u128 c;
  c = r0 >> 51; r0 &= kMask; r1 += c;
  c = r1 >> 51; r1 &= kMask; r2 += c;
  c = r2 >> 51; r2 &= kMask; r3 += c;
  c = r3 >> 51; r3 &= kMask; r4 += c;
  c = r4 >> 51; r4 &= kMask; r0 += (u128)19 * c;
  c = r0 >> 51; r0 &= kMask; r1 += c;
  out.v_[0] = (uint64_t)r0;
  out.v_[1] = (uint64_t)r1;
  out.v_[2] = (uint64_t)r2;
  out.v_[3] = (uint64_t)r3;
  out.v_[4] = (uint64_t)r4;
  return out;
}

Fe25519 Fe25519::square() const { return *this * *this; }

Fe25519 Fe25519::invert() const {
  // Exponent p - 2 = 2^255 - 21, little-endian bytes.
  static constexpr uint8_t kExp[32] = {
      0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  return pow_le(*this, kExp);
}

Fe25519 Fe25519::pow_p58() const {
  // Exponent (p - 5) / 8 = 2^252 - 3, little-endian bytes.
  static constexpr uint8_t kExp[32] = {
      0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f};
  return pow_le(*this, kExp);
}

bool Fe25519::is_zero() const {
  uint8_t b[32];
  to_bytes(b);
  uint8_t acc = 0;
  for (uint8_t x : b) acc |= x;
  return acc == 0;
}

bool Fe25519::is_negative() const {
  uint8_t b[32];
  to_bytes(b);
  return (b[0] & 1) != 0;
}

bool Fe25519::operator==(const Fe25519& o) const {
  uint8_t a[32], b[32];
  to_bytes(a);
  o.to_bytes(b);
  return std::memcmp(a, b, 32) == 0;
}

const Fe25519& Fe25519::sqrt_m1() {
  // 2^((p-1)/4); computed once. (p-1)/4 = 2^253 - 5.
  static const Fe25519 value = [] {
    static constexpr uint8_t kExp[32] = {
        0xfb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
        0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f};
    return pow_le(Fe25519::from_u64(2), kExp);
  }();
  return value;
}

const Fe25519& Fe25519::edwards_d() {
  static const Fe25519 value =
      Fe25519::from_u64(121665).negate() * Fe25519::from_u64(121666).invert();
  return value;
}

const Fe25519& Fe25519::edwards_2d() {
  static const Fe25519 value = edwards_d() + edwards_d();
  return value;
}

}  // namespace icc::crypto
