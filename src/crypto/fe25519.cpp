#include "crypto/fe25519.hpp"

#include <cstring>

namespace icc::crypto {

namespace {

constexpr uint64_t kMaskLocal = (1ULL << 51) - 1;

inline uint64_t load8(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian hosts only (asserted in ed25519.cpp)
}

/// x^(2^n) by n successive squarings.
Fe25519 sqn(Fe25519 x, int n) {
  for (int i = 0; i < n; ++i) x = x.square();
  return x;
}

/// x^(2^250 - 1), the shared prefix of the inversion and sqrt addition
/// chains (both p - 2 and (p - 5)/8 are of the form (2^250 - 1)·2^k + c).
/// Also returns x^11 via `x11` for the inversion tail.
Fe25519 pow_2_250_m1(const Fe25519& x, Fe25519& x11) {
  Fe25519 t0 = x.square();                 // 2
  Fe25519 t1 = t0.square().square();       // 8
  Fe25519 x9 = x * t1;                     // 9
  x11 = t0 * x9;                           // 11
  Fe25519 t2 = x11.square();               // 22
  Fe25519 x31 = x9 * t2;                   // 2^5 - 1
  t2 = sqn(x31, 5);                        // 2^10 - 2^5
  Fe25519 x10 = t2 * x31;                  // 2^10 - 1
  t2 = sqn(x10, 10) * x10;                 // 2^20 - 1
  Fe25519 x40 = sqn(t2, 20) * t2;          // 2^40 - 1
  t2 = sqn(x40, 10) * x10;                 // 2^50 - 1
  Fe25519 x100 = sqn(t2, 50) * t2;         // 2^100 - 1
  Fe25519 x200 = sqn(x100, 100) * x100;    // 2^200 - 1
  return sqn(x200, 50) * t2;               // 2^250 - 1
}

}  // namespace

Fe25519 Fe25519::from_bytes(const uint8_t bytes[32]) {
  Fe25519 r;
  r.v_[0] = load8(bytes) & kMaskLocal;
  r.v_[1] = (load8(bytes + 6) >> 3) & kMaskLocal;
  r.v_[2] = (load8(bytes + 12) >> 6) & kMaskLocal;
  r.v_[3] = (load8(bytes + 19) >> 1) & kMaskLocal;
  r.v_[4] = (load8(bytes + 24) >> 12) & kMaskLocal;
  return r;
}

void Fe25519::to_bytes(uint8_t out[32]) const {
  // Freeze: fully carry, then subtract p while the value is >= p.
  Fe25519 t = *this;
  t.carry();
  t.carry();
  constexpr uint64_t kP0 = kMaskLocal - 18;  // 2^51 - 19
  for (int pass = 0; pass < 2; ++pass) {
    bool ge = t.v_[4] == kMaskLocal && t.v_[3] == kMaskLocal && t.v_[2] == kMaskLocal &&
              t.v_[1] == kMaskLocal && t.v_[0] >= kP0;
    if (ge) {
      t.v_[0] -= kP0;
      t.v_[1] = t.v_[2] = t.v_[3] = t.v_[4] = 0;
    }
  }
  // Pack 5x51 bits into 32 bytes (255 bits, top bit zero).
  uint64_t w0 = t.v_[0] | (t.v_[1] << 51);
  uint64_t w1 = (t.v_[1] >> 13) | (t.v_[2] << 38);
  uint64_t w2 = (t.v_[2] >> 26) | (t.v_[3] << 25);
  uint64_t w3 = (t.v_[3] >> 39) | (t.v_[4] << 12);
  std::memcpy(out, &w0, 8);
  std::memcpy(out + 8, &w1, 8);
  std::memcpy(out + 16, &w2, 8);
  std::memcpy(out + 24, &w3, 8);
}

Bytes Fe25519::to_bytes() const {
  Bytes out(32);
  to_bytes(out.data());
  return out;
}

Fe25519 Fe25519::invert() const {
  // p - 2 = (2^250 - 1)·2^5 + 11.
  Fe25519 x11;
  Fe25519 t = pow_2_250_m1(*this, x11);
  return sqn(t, 5) * x11;
}

Fe25519 Fe25519::pow_p58() const {
  // (p - 5)/8 = 2^252 - 3 = (2^250 - 1)·2^2 + 1.
  Fe25519 x11;
  Fe25519 t = pow_2_250_m1(*this, x11);
  return sqn(t, 2) * *this;
}

void Fe25519::pow_p58_2(const Fe25519& x0, const Fe25519& x1, Fe25519& r0, Fe25519& r1) {
  // Same addition chain as pow_p58, applied to both elements in lockstep so
  // the two (independent) squaring chains overlap in the pipeline.
  auto sqn2 = [](Fe25519& a, Fe25519& b, int n) {
    for (int i = 0; i < n; ++i) {
      a = a.square();
      b = b.square();
    }
  };
  Fe25519 t0a = x0.square(), t0b = x1.square();                    // 2
  Fe25519 t1a = t0a, t1b = t0b;
  sqn2(t1a, t1b, 2);                                               // 8
  Fe25519 x9a = x0 * t1a, x9b = x1 * t1b;                          // 9
  Fe25519 x11a = t0a * x9a, x11b = t0b * x9b;                      // 11
  Fe25519 t2a = x11a.square(), t2b = x11b.square();                // 22
  Fe25519 x31a = x9a * t2a, x31b = x9b * t2b;                      // 2^5 - 1
  t2a = x31a;
  t2b = x31b;
  sqn2(t2a, t2b, 5);
  Fe25519 x10a = t2a * x31a, x10b = t2b * x31b;                    // 2^10 - 1
  t2a = x10a;
  t2b = x10b;
  sqn2(t2a, t2b, 10);
  t2a = t2a * x10a;                                                // 2^20 - 1
  t2b = t2b * x10b;
  Fe25519 x40a = t2a, x40b = t2b;
  sqn2(x40a, x40b, 20);
  x40a = x40a * t2a;                                               // 2^40 - 1
  x40b = x40b * t2b;
  sqn2(x40a, x40b, 10);
  Fe25519 x50a = x40a * x10a, x50b = x40b * x10b;                  // 2^50 - 1
  Fe25519 x100a = x50a, x100b = x50b;
  sqn2(x100a, x100b, 50);
  x100a = x100a * x50a;                                            // 2^100 - 1
  x100b = x100b * x50b;
  Fe25519 x200a = x100a, x200b = x100b;
  sqn2(x200a, x200b, 100);
  x200a = x200a * x100a;                                           // 2^200 - 1
  x200b = x200b * x100b;
  sqn2(x200a, x200b, 50);
  Fe25519 ta = x200a * x50a, tb = x200b * x50b;                    // 2^250 - 1
  sqn2(ta, tb, 2);
  r0 = ta * x0;                                                    // 2^252 - 3
  r1 = tb * x1;
}

bool Fe25519::is_zero() const {
  uint8_t b[32];
  to_bytes(b);
  uint8_t acc = 0;
  for (uint8_t x : b) acc |= x;
  return acc == 0;
}

bool Fe25519::is_negative() const {
  uint8_t b[32];
  to_bytes(b);
  return (b[0] & 1) != 0;
}

bool Fe25519::operator==(const Fe25519& o) const {
  uint8_t a[32], b[32];
  to_bytes(a);
  o.to_bytes(b);
  return std::memcmp(a, b, 32) == 0;
}

const Fe25519& Fe25519::sqrt_m1() {
  // 2^((p-1)/4); computed once. (p-1)/4 = 2^253 - 5 = (2^250 - 1)·2^3 + 3.
  static const Fe25519 value = [] {
    Fe25519 two = Fe25519::from_u64(2);
    Fe25519 x11;
    Fe25519 t = pow_2_250_m1(two, x11);
    return sqn(t, 3) * two.square() * two;
  }();
  return value;
}

const Fe25519& Fe25519::edwards_d() {
  static const Fe25519 value =
      Fe25519::from_u64(121665).negate() * Fe25519::from_u64(121666).invert();
  return value;
}

const Fe25519& Fe25519::edwards_2d() {
  static const Fe25519 value = edwards_d() + edwards_d();
  return value;
}

}  // namespace icc::crypto
