// Field arithmetic in GF(2^255 - 19), the base field of Curve25519/Ed25519.
//
// Representation: five 51-bit limbs (radix 2^51), kept reduced so every limb
// is < 2^52 after each operation. Multiplication uses unsigned __int128
// accumulators. This is the classic "ref10/donna" layout; we favour clarity
// over constant-time tricks (the library runs inside a simulator, not on a
// network-facing host; see DESIGN.md).
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace icc::crypto {

class Fe25519 {
 public:
  /// Zero element.
  constexpr Fe25519() : v_{0, 0, 0, 0, 0} {}

  static Fe25519 zero() { return Fe25519(); }
  static Fe25519 one();
  static Fe25519 from_u64(uint64_t x);

  /// Deserialize 32 little-endian bytes; the top bit is ignored (RFC 7748
  /// convention). The value is not required to be < p.
  static Fe25519 from_bytes(const uint8_t bytes[32]);

  /// Serialize to 32 bytes, fully reduced mod p (canonical form).
  void to_bytes(uint8_t out[32]) const;
  Bytes to_bytes() const;

  Fe25519 operator+(const Fe25519& o) const;
  Fe25519 operator-(const Fe25519& o) const;
  Fe25519 operator*(const Fe25519& o) const;
  Fe25519 square() const;
  Fe25519 negate() const;

  /// Multiplicative inverse via Fermat (x^(p-2)); inverse of 0 is 0.
  Fe25519 invert() const;

  /// x^((p-5)/8), the core of the square-root computation used in point
  /// decompression (p = 5 mod 8).
  Fe25519 pow_p58() const;

  bool is_zero() const;
  /// "Negative" = least significant bit of the canonical encoding.
  bool is_negative() const;
  bool operator==(const Fe25519& o) const;

  /// sqrt(-1) mod p, a fixed constant needed during decompression.
  static const Fe25519& sqrt_m1();
  /// Edwards curve constant d = -121665/121666.
  static const Fe25519& edwards_d();
  /// 2*d.
  static const Fe25519& edwards_2d();

 private:
  explicit constexpr Fe25519(std::array<uint64_t, 5> v) : v_(v) {}

  void carry();

  std::array<uint64_t, 5> v_;
};

}  // namespace icc::crypto
