// Field arithmetic in GF(2^255 - 19), the base field of Curve25519/Ed25519.
//
// Representation: five 51-bit limbs (radix 2^51), kept reduced so every limb
// is < 2^52 after each operation. Multiplication uses unsigned __int128
// accumulators. This is the classic "ref10/donna" layout.
//
// The hot operations (add, sub, mul, square) are defined inline in this
// header: the scalar-multiplication kernels in ed25519.cpp execute thousands
// of field operations per point multiplication, and keeping them visible to
// the compiler in the caller's translation unit is worth ~30% end to end.
// Inversion and the square-root exponentiation use fixed addition chains
// (252 squarings + ~12 multiplications) instead of generic square-and-
// multiply, which roughly halves point decompression cost.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

#include "support/bytes.hpp"

namespace icc::crypto {

class Fe25519 {
 public:
  /// Zero element.
  constexpr Fe25519() : v_{0, 0, 0, 0, 0} {}

  static Fe25519 zero() { return Fe25519(); }
  static Fe25519 one() { return from_u64(1); }
  static Fe25519 from_u64(uint64_t x) {
    Fe25519 r;
    r.v_[0] = x & kMask;
    r.v_[1] = x >> 51;
    return r;
  }

  /// Deserialize 32 little-endian bytes; the top bit is ignored (RFC 7748
  /// convention). The value is not required to be < p.
  static Fe25519 from_bytes(const uint8_t bytes[32]);

  /// Serialize to 32 bytes, fully reduced mod p (canonical form).
  void to_bytes(uint8_t out[32]) const;
  Bytes to_bytes() const;

  // Lazy reduction: operator+ and operator- do NOT normalize their result.
  // A "+"/"-" result is *loose* (limbs up to ~2^55) and must next flow into
  // operator*, square(), negate(), to_bytes(), or a comparison — all of
  // which accept loose limbs and (except the adders) renormalize. Never
  // build an unbounded chain of +/- on the same value. The point-addition
  // and doubling formulas in ed25519.cpp maintain this invariant; the carry
  // chains saved this way are worth ~15% of a scalar multiplication.
  Fe25519 operator+(const Fe25519& o) const {
    Fe25519 r;
    for (int i = 0; i < 5; ++i) r.v_[i] = v_[i] + o.v_[i];
    return r;
  }

  Fe25519 operator-(const Fe25519& o) const {
    // Add 8p before subtracting so limbs never underflow. The subtrahend
    // may be loose up to one +/- level (< 2^54 - 152 per limb).
    Fe25519 r;
    r.v_[0] = v_[0] + ((kMask - 18) << 3) - o.v_[0];
    for (int i = 1; i < 5; ++i) r.v_[i] = v_[i] + (kMask << 3) - o.v_[i];
    return r;
  }

  Fe25519 operator*(const Fe25519& o) const {
    using u128 = unsigned __int128;
    const uint64_t a0 = v_[0], a1 = v_[1], a2 = v_[2], a3 = v_[3], a4 = v_[4];
    const uint64_t b0 = o.v_[0], b1 = o.v_[1], b2 = o.v_[2], b3 = o.v_[3], b4 = o.v_[4];
    // Pre-scale the wrapping operands by 19 once (four 64-bit multiplies)
    // instead of multiplying 128-bit partial sums by 19 (several ops each).
    // Loose inputs are < 2^56, so 19*b fits: 19 * 2^56 < 2^61.
    const uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

    u128 r0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 + (u128)a3 * b2_19 + (u128)a4 * b1_19;
    u128 r1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 + (u128)a3 * b3_19 + (u128)a4 * b2_19;
    u128 r2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 + (u128)a4 * b3_19;
    u128 r3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 + (u128)a4 * b4_19;
    u128 r4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 + (u128)a4 * b0;
    return carry_wide(r0, r1, r2, r3, r4);
  }

  /// Dedicated squaring: 15 word multiplications instead of 25.
  Fe25519 square() const {
    using u128 = unsigned __int128;
    const uint64_t a0 = v_[0], a1 = v_[1], a2 = v_[2], a3 = v_[3], a4 = v_[4];
    const uint64_t a0_2 = a0 * 2, a1_2 = a1 * 2, a2_2 = a2 * 2, a3_2 = a3 * 2;
    const uint64_t a3_19 = a3 * 19, a4_19 = a4 * 19;

    u128 r0 = (u128)a0 * a0 + (u128)a1_2 * a4_19 + (u128)a2_2 * a3_19;
    u128 r1 = (u128)a0_2 * a1 + (u128)a2_2 * a4_19 + (u128)a3 * a3_19;
    u128 r2 = (u128)a0_2 * a2 + (u128)a1 * a1 + (u128)a3_2 * a4_19;
    u128 r3 = (u128)a0_2 * a3 + (u128)a1_2 * a2 + (u128)a4 * a4_19;
    u128 r4 = (u128)a0_2 * a4 + (u128)a1_2 * a3 + (u128)a2 * a2;
    return carry_wide(r0, r1, r2, r3, r4);
  }

  /// Normalized negation (result is tight, < 2^52 per limb). Accepts loose
  /// inputs up to 2^55 per limb thanks to the 16p bias.
  Fe25519 negate() const {
    Fe25519 r;
    r.v_[0] = ((kMask - 18) << 4) - v_[0];
    for (int i = 1; i < 5; ++i) r.v_[i] = (kMask << 4) - v_[i];
    r.carry();
    return r;
  }

  /// Multiplicative inverse via Fermat (x^(p-2)); inverse of 0 is 0.
  Fe25519 invert() const;

  /// x^((p-5)/8), the core of the square-root computation used in point
  /// decompression (p = 5 mod 8).
  Fe25519 pow_p58() const;

  /// Two independent x^((p-5)/8) computations run in lockstep. The addition
  /// chain is a serial dependency of ~252 squarings; interleaving two
  /// independent chains lets them overlap in the multiplier pipeline (~20%
  /// faster than two sequential calls). Used by Point::decompress_pair.
  static void pow_p58_2(const Fe25519& x0, const Fe25519& x1, Fe25519& r0, Fe25519& r1);

  /// Constant-time conditional assignment: *this = o when b == 1 (b must be
  /// 0 or 1). Used for uniform table lookups with secret indices.
  void cmov(const Fe25519& o, uint64_t b) {
    const uint64_t mask = 0 - b;
    for (int i = 0; i < 5; ++i) v_[i] ^= mask & (v_[i] ^ o.v_[i]);
  }

  bool is_zero() const;
  /// "Negative" = least significant bit of the canonical encoding.
  bool is_negative() const;
  bool operator==(const Fe25519& o) const;

  /// sqrt(-1) mod p, a fixed constant needed during decompression.
  static const Fe25519& sqrt_m1();
  /// Edwards curve constant d = -121665/121666.
  static const Fe25519& edwards_d();
  /// 2*d.
  static const Fe25519& edwards_2d();

 private:
  static constexpr uint64_t kMask = (1ULL << 51) - 1;

  explicit constexpr Fe25519(std::array<uint64_t, 5> v) : v_(v) {}

  static Fe25519 carry_wide(unsigned __int128 r0, unsigned __int128 r1,
                            unsigned __int128 r2, unsigned __int128 r3,
                            unsigned __int128 r4) {
    using u128 = unsigned __int128;
    Fe25519 out;
    u128 c;
    c = r0 >> 51; r0 &= kMask; r1 += c;
    c = r1 >> 51; r1 &= kMask; r2 += c;
    c = r2 >> 51; r2 &= kMask; r3 += c;
    c = r3 >> 51; r3 &= kMask; r4 += c;
    c = r4 >> 51; r4 &= kMask; r0 += (u128)19 * c;
    c = r0 >> 51; r0 &= kMask; r1 += c;
    out.v_[0] = (uint64_t)r0;
    out.v_[1] = (uint64_t)r1;
    out.v_[2] = (uint64_t)r2;
    out.v_[3] = (uint64_t)r3;
    out.v_[4] = (uint64_t)r4;
    return out;
  }

  void carry() {
    uint64_t c;
    c = v_[0] >> 51; v_[0] &= kMask; v_[1] += c;
    c = v_[1] >> 51; v_[1] &= kMask; v_[2] += c;
    c = v_[2] >> 51; v_[2] &= kMask; v_[3] += c;
    c = v_[3] >> 51; v_[3] &= kMask; v_[4] += c;
    c = v_[4] >> 51; v_[4] &= kMask; v_[0] += 19 * c;
    c = v_[0] >> 51; v_[0] &= kMask; v_[1] += c;
  }

  std::array<uint64_t, 5> v_;
};

}  // namespace icc::crypto
