#include "crypto/multisig.hpp"

#include <algorithm>
#include <map>

#include "support/serial.hpp"

namespace icc::crypto {

size_t MultiSig::signer_count() const {
  return static_cast<size_t>(std::count(signers.begin(), signers.end(), true));
}

Bytes MultiSig::serialize() const {
  Writer w;
  w.u32(static_cast<uint32_t>(signers.size()));
  Bytes bitmap((signers.size() + 7) / 8, 0);
  for (size_t i = 0; i < signers.size(); ++i)
    if (signers[i]) bitmap[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  w.raw(bitmap);
  for (const auto& sig : signatures) w.raw(BytesView(sig.data(), sig.size()));
  return std::move(w).take();
}

std::optional<MultiSig> MultiSig::deserialize(BytesView bytes) {
  try {
    Reader r(bytes);
    uint32_t n = r.u32();
    if (n > 1u << 20) return std::nullopt;
    Bytes bitmap = r.raw((n + 7) / 8);
    MultiSig ms;
    ms.signers.resize(n, false);
    size_t count = 0;
    for (size_t i = 0; i < n; ++i) {
      if ((bitmap[i / 8] >> (i % 8)) & 1) {
        ms.signers[i] = true;
        ++count;
      }
    }
    ms.signatures.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      Bytes sig = r.raw(64);
      std::array<uint8_t, 64> a{};
      std::copy(sig.begin(), sig.end(), a.begin());
      ms.signatures.push_back(a);
    }
    r.expect_done();
    return ms;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

std::optional<MultiSig> multisig_combine(std::span<const MultiSigShare> shares, size_t h,
                                         size_t n) {
  std::map<uint32_t, const MultiSigShare*> by_signer;
  for (const auto& s : shares) {
    if (s.signer >= n) continue;
    by_signer.emplace(s.signer, &s);
    if (by_signer.size() == h) break;
  }
  if (by_signer.size() < h) return std::nullopt;

  MultiSig ms;
  ms.signers.resize(n, false);
  ms.signatures.reserve(by_signer.size());
  for (const auto& [signer, share] : by_signer) {
    ms.signers[signer] = true;
    ms.signatures.push_back(share->signature);
  }
  return ms;
}

bool multisig_verify(const MultiSig& ms, std::span<const std::array<uint8_t, 32>> pks,
                     BytesView message, size_t h) {
  if (ms.signers.size() != pks.size()) return false;
  if (ms.signer_count() != ms.signatures.size()) return false;
  if (ms.signer_count() < h) return false;
  // All-or-nothing acceptance: one batched random-linear-combination check
  // replaces signer_count() independent verifications.
  std::vector<Ed25519BatchItem> items;
  items.reserve(ms.signatures.size());
  size_t sig_idx = 0;
  for (size_t i = 0; i < ms.signers.size(); ++i) {
    if (!ms.signers[i]) continue;
    items.push_back({BytesView(pks[i].data(), 32), message,
                     BytesView(ms.signatures[sig_idx].data(), 64)});
    ++sig_idx;
  }
  return ed25519_verify_batch(items);
}

}  // namespace icc::crypto
