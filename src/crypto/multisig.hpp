// Aggregated multi-signatures with signer bitmaps.
//
// Instantiates the paper's (t, n-t, n)-threshold schemes S_notary and
// S_final using approach (i)/(ii) of Section 2.3: a "signature share" is an
// ordinary Ed25519 signature; the combined object is the set of >= h
// signatures plus a bitmap identifying the signatories. Unlike the BLS
// variant this identifies signers and is larger on the wire, which Section
// 2.3 explicitly calls out as an acceptable trade-off.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "crypto/ed25519.hpp"
#include "support/bytes.hpp"

namespace icc::crypto {

struct MultiSigShare {
  uint32_t signer = 0;
  std::array<uint8_t, 64> signature{};
};

struct MultiSig {
  std::vector<bool> signers;  ///< bitmap over [n]
  std::vector<std::array<uint8_t, 64>> signatures;  ///< in ascending signer order

  size_t signer_count() const;
  Bytes serialize() const;
  static std::optional<MultiSig> deserialize(BytesView bytes);
};

/// Combine shares from >= h distinct signers (extras ignored, duplicates
/// deduplicated). Returns nullopt if fewer than h distinct signers.
std::optional<MultiSig> multisig_combine(std::span<const MultiSigShare> shares, size_t h,
                                         size_t n);

/// Verify: at least h distinct signers, each listed signature valid under the
/// corresponding public key.
bool multisig_verify(const MultiSig& ms, std::span<const std::array<uint8_t, 32>> pks,
                     BytesView message, size_t h);

}  // namespace icc::crypto
