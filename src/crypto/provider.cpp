#include "crypto/provider.hpp"

#include <cstring>
#include <map>
#include <stdexcept>

#include "crypto/beacon.hpp"
#include "crypto/multisig.hpp"
#include "crypto/sha256.hpp"
#include "support/serial.hpp"

namespace icc::crypto {

std::vector<uint8_t> CryptoProvider::threshold_verify_share_batch(
    Scheme scheme, BytesView message,
    std::span<const std::pair<PartyIndex, Bytes>> shares) const {
  std::vector<uint8_t> out(shares.size(), 0);
  for (size_t i = 0; i < shares.size(); ++i) {
    out[i] = threshold_verify_share(scheme, shares[i].first, message, shares[i].second) ? 1 : 0;
  }
  return out;
}

Bytes CryptoProvider::threshold_combine_preverified(
    Scheme scheme, BytesView message,
    std::span<const std::pair<PartyIndex, Bytes>> shares) {
  return threshold_combine(scheme, message, shares);
}

Bytes CryptoProvider::beacon_combine_preverified(
    BytesView message, std::span<const std::pair<PartyIndex, Bytes>> shares) {
  return beacon_combine(message, shares);
}

namespace {

// ---------------------------------------------------------------------------
// RealCryptoProvider
// ---------------------------------------------------------------------------

class RealCryptoProvider final : public CryptoProvider {
 public:
  RealCryptoProvider(size_t n, size_t t, uint64_t seed) : n_(n), t_(t) {
    if (n == 0 || t >= n) throw std::invalid_argument("provider: need 0 <= t < n");
    Xoshiro256 rng(seed);
    keypairs_.reserve(n);
    public_keys_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Bytes s = rng.bytes(32);
      auto kp = ed25519_keypair(s.data());
      keypairs_.push_back(kp);
      public_keys_.push_back(kp.public_key);
    }
    beacon_ = beacon_keygen(n, t, rng);
  }

  size_t n() const override { return n_; }
  size_t t() const override { return t_; }

  WireSizes wire_sizes() const override {
    // Real sizes: Ed25519 sig = 64; multisig share = 64; aggregate =
    // 4 + bitmap + 64 * quorum; beacon share = 4 + 32 + 64; value = 32.
    return WireSizes{64, 64, 4 + (n_ + 7) / 8 + 64 * quorum(), 100, 32};
  }

  Bytes sign(PartyIndex signer, BytesView message) override {
    auto sig = ed25519_sign(kp(signer), message);
    return Bytes(sig.begin(), sig.end());
  }

  bool verify(PartyIndex signer, BytesView message, BytesView signature) const override {
    if (signer >= n_ || signature.size() != 64) return false;
    return ed25519_verify(public_keys_[signer].data(), message, signature.data());
  }

  Bytes threshold_sign_share(Scheme scheme, PartyIndex signer, BytesView message) override {
    // Domain-separate the two instances so a notarization share can never be
    // replayed as a finalization share.
    return sign(signer, tagged(scheme, message));
  }

  bool threshold_verify_share(Scheme scheme, PartyIndex signer, BytesView message,
                              BytesView share) const override {
    return verify(signer, tagged(scheme, message), share);
  }

  std::vector<uint8_t> threshold_verify_share_batch(
      Scheme scheme, BytesView message,
      std::span<const std::pair<PartyIndex, Bytes>> shares) const override {
    std::vector<uint8_t> out(shares.size(), 0);
    Bytes msg = tagged(scheme, message);
    std::vector<Ed25519BatchItem> items;
    std::vector<size_t> item_index;  // batch slot -> shares slot
    items.reserve(shares.size());
    for (size_t i = 0; i < shares.size(); ++i) {
      const auto& [signer, data] = shares[i];
      if (signer >= n_ || data.size() != 64) continue;  // stays 0
      items.push_back({BytesView(public_keys_[signer].data(), 32), BytesView(msg),
                       BytesView(data)});
      item_index.push_back(i);
    }
    if (ed25519_verify_batch(items)) {
      for (size_t i : item_index) out[i] = 1;
    } else {
      // At least one bad share: fall back per item to identify it.
      for (size_t j = 0; j < items.size(); ++j) {
        out[item_index[j]] = ed25519_verify(items[j].public_key, items[j].message,
                                            items[j].signature)
                                 ? 1
                                 : 0;
      }
    }
    return out;
  }

  Bytes threshold_combine(Scheme scheme, BytesView message,
                          std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    // Batch-verify all well-formed shares at once (the common case is that
    // every share is valid); fall back to per-share verification only when
    // the combined check fails, to identify and drop the bad ones.
    Bytes msg = tagged(scheme, message);
    std::vector<MultiSigShare> candidates;
    std::vector<Ed25519BatchItem> items;
    candidates.reserve(shares.size());
    items.reserve(shares.size());
    for (const auto& [signer, data] : shares) {
      if (signer >= n_ || data.size() != 64) continue;
      MultiSigShare s;
      s.signer = signer;
      std::memcpy(s.signature.data(), data.data(), 64);
      candidates.push_back(s);
      items.push_back({BytesView(public_keys_[signer].data(), 32), BytesView(msg),
                       BytesView(data)});
    }
    std::vector<MultiSigShare> ms_shares;
    if (ed25519_verify_batch(items)) {
      ms_shares = std::move(candidates);
    } else {
      ms_shares.reserve(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        if (ed25519_verify(items[i].public_key, items[i].message, items[i].signature))
          ms_shares.push_back(candidates[i]);
      }
    }
    auto ms = multisig_combine(ms_shares, quorum(), n_);
    if (!ms) return {};
    return ms->serialize();
  }

  Bytes threshold_combine_preverified(
      Scheme scheme, BytesView message,
      std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    (void)scheme;
    (void)message;
    std::vector<MultiSigShare> ms_shares;
    ms_shares.reserve(shares.size());
    for (const auto& [signer, data] : shares) {
      if (signer >= n_ || data.size() != 64) continue;
      MultiSigShare s;
      s.signer = signer;
      std::memcpy(s.signature.data(), data.data(), 64);
      ms_shares.push_back(s);
    }
    auto ms = multisig_combine(ms_shares, quorum(), n_);
    if (!ms) return {};
    return ms->serialize();
  }

  bool threshold_verify(Scheme scheme, BytesView message, BytesView aggregate) const override {
    auto ms = MultiSig::deserialize(aggregate);
    if (!ms) return false;
    return multisig_verify(*ms, public_keys_, tagged(scheme, message), quorum());
  }

  Bytes beacon_sign_share(PartyIndex signer, BytesView message) override {
    if (signer >= n_) throw std::invalid_argument("beacon_sign_share: bad signer");
    return icc::crypto::beacon_sign_share(message, signer, beacon_.secret_shares[signer],
                                          beacon_.pub)
        .serialize();
  }

  bool beacon_verify_share(PartyIndex signer, BytesView message,
                           BytesView share) const override {
    auto s = BeaconShare::deserialize(share);
    if (!s || s->signer != signer) return false;
    return icc::crypto::beacon_verify_share(message, *s, beacon_.pub);
  }

  Bytes beacon_combine(BytesView message,
                       std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    std::vector<BeaconShare> parsed;
    parsed.reserve(shares.size());
    for (const auto& [signer, data] : shares) {
      auto s = BeaconShare::deserialize(data);
      if (!s || s->signer != signer) continue;
      if (!icc::crypto::beacon_verify_share(message, *s, beacon_.pub)) continue;
      parsed.push_back(*s);
    }
    auto sigma = icc::crypto::beacon_combine(parsed, beacon_.pub);
    if (!sigma) return {};
    return icc::crypto::beacon_value(*sigma);
  }

  Bytes beacon_combine_preverified(
      BytesView message, std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    (void)message;
    std::vector<BeaconShare> parsed;
    parsed.reserve(shares.size());
    for (const auto& [signer, data] : shares) {
      auto s = BeaconShare::deserialize(data);
      if (!s || s->signer != signer) continue;  // no DLEQ re-check: caller vouches
      parsed.push_back(*s);
    }
    auto sigma = icc::crypto::beacon_combine(parsed, beacon_.pub);
    if (!sigma) return {};
    return icc::crypto::beacon_value(*sigma);
  }

  bool beacon_verify(BytesView message, BytesView value) const override {
    // Without pairings the combined value is not compactly verifiable; the
    // protocol always re-derives it from verified shares, so this check only
    // needs to confirm the value against the dealer's ground truth. We
    // recompute sigma from the dealt shares (dealer role; see header).
    std::vector<BeaconShare> shares;
    for (size_t i = 0; i < beacon_.pub.threshold; ++i) {
      shares.push_back(icc::crypto::beacon_sign_share(message, static_cast<uint32_t>(i),
                                                      beacon_.secret_shares[i], beacon_.pub));
    }
    auto sigma = icc::crypto::beacon_combine(shares, beacon_.pub);
    if (!sigma) return false;
    Bytes expect = icc::crypto::beacon_value(*sigma);
    return value.size() == expect.size() &&
           std::memcmp(value.data(), expect.data(), expect.size()) == 0;
  }

 private:
  const Ed25519KeyPair& kp(PartyIndex i) const {
    if (i >= n_) throw std::invalid_argument("provider: bad party index");
    return keypairs_[i];
  }

  static Bytes tagged(Scheme scheme, BytesView message) {
    Bytes out;
    out.push_back(scheme == Scheme::kNotary ? 0x01 : 0x02);
    append(out, message);
    return out;
  }

  size_t n_, t_;
  std::vector<Ed25519KeyPair> keypairs_;
  std::vector<std::array<uint8_t, 32>> public_keys_;
  BeaconKeys beacon_;
};

// ---------------------------------------------------------------------------
// FastCryptoProvider
// ---------------------------------------------------------------------------
//
// A simulation oracle: "signatures" are SHA-256 tags keyed by per-party
// secrets held inside the provider. Unforgeability holds *by construction*
// within a simulation because only the provider can compute tags, and party
// code only requests tags for its own index. Artifacts are padded/truncated
// to the configured wire sizes so traffic accounting matches the modeled
// deployment (compact BLS threshold signatures in the paper).

class FastCryptoProvider final : public CryptoProvider {
 public:
  FastCryptoProvider(size_t n, size_t t, uint64_t seed, const WireSizes& sizes)
      : n_(n), t_(t), sizes_(sizes) {
    if (n == 0 || t >= n) throw std::invalid_argument("provider: need 0 <= t < n");
    Xoshiro256 rng(seed);
    master_ = rng.bytes(32);
  }

  size_t n() const override { return n_; }
  size_t t() const override { return t_; }
  WireSizes wire_sizes() const override { return sizes_; }

  Bytes sign(PartyIndex signer, BytesView message) override {
    return tag("auth", signer, message, sizes_.signature);
  }
  bool verify(PartyIndex signer, BytesView message, BytesView signature) const override {
    return signer < n_ && matches(signature, tag("auth", signer, message, sizes_.signature));
  }

  Bytes threshold_sign_share(Scheme scheme, PartyIndex signer, BytesView message) override {
    return tag(scheme_name(scheme), signer, message, sizes_.threshold_share);
  }
  bool threshold_verify_share(Scheme scheme, PartyIndex signer, BytesView message,
                              BytesView share) const override {
    return signer < n_ &&
           matches(share, tag(scheme_name(scheme), signer, message, sizes_.threshold_share));
  }

  Bytes threshold_combine(Scheme scheme, BytesView message,
                          std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    std::map<PartyIndex, bool> distinct;
    for (const auto& [signer, data] : shares) {
      if (threshold_verify_share(scheme, signer, message, data)) distinct[signer] = true;
    }
    if (distinct.size() < quorum()) return {};
    // The aggregate tag is message-determined (models a unique threshold
    // signature); signer identities are deliberately not encoded so that the
    // aggregate is the same no matter which quorum produced it.
    return tag(scheme_name(scheme), 0xffffffffu, message, sizes_.threshold_agg);
  }

  Bytes threshold_combine_preverified(
      Scheme scheme, BytesView message,
      std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    std::map<PartyIndex, bool> distinct;
    for (const auto& [signer, data] : shares) {
      (void)data;  // caller vouches for validity; count distinct signers only
      if (signer < n_) distinct[signer] = true;
    }
    if (distinct.size() < quorum()) return {};
    return tag(scheme_name(scheme), 0xffffffffu, message, sizes_.threshold_agg);
  }

  bool threshold_verify(Scheme scheme, BytesView message, BytesView aggregate) const override {
    return matches(aggregate,
                   tag(scheme_name(scheme), 0xffffffffu, message, sizes_.threshold_agg));
  }

  Bytes beacon_sign_share(PartyIndex signer, BytesView message) override {
    return tag("beacon-share", signer, message, sizes_.beacon_share);
  }
  bool beacon_verify_share(PartyIndex signer, BytesView message,
                           BytesView share) const override {
    return signer < n_ &&
           matches(share, tag("beacon-share", signer, message, sizes_.beacon_share));
  }

  Bytes beacon_combine(BytesView message,
                       std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    std::map<PartyIndex, bool> distinct;
    for (const auto& [signer, data] : shares) {
      if (beacon_verify_share(signer, message, data)) distinct[signer] = true;
    }
    if (distinct.size() < beacon_threshold()) return {};
    return tag("beacon-value", 0xffffffffu, message, sizes_.beacon_value);
  }

  Bytes beacon_combine_preverified(
      BytesView message, std::span<const std::pair<PartyIndex, Bytes>> shares) override {
    std::map<PartyIndex, bool> distinct;
    for (const auto& [signer, data] : shares) {
      (void)data;
      if (signer < n_) distinct[signer] = true;
    }
    if (distinct.size() < beacon_threshold()) return {};
    return tag("beacon-value", 0xffffffffu, message, sizes_.beacon_value);
  }

  bool beacon_verify(BytesView message, BytesView value) const override {
    return matches(value, tag("beacon-value", 0xffffffffu, message, sizes_.beacon_value));
  }

 private:
  static const char* scheme_name(Scheme s) {
    return s == Scheme::kNotary ? "notary" : "final";
  }

  Bytes tag(std::string_view domain, PartyIndex signer, BytesView message,
            size_t size) const {
    Sha256 h;
    h.update(BytesView(master_));
    h.update(domain);
    uint8_t idx[4] = {static_cast<uint8_t>(signer), static_cast<uint8_t>(signer >> 8),
                      static_cast<uint8_t>(signer >> 16), static_cast<uint8_t>(signer >> 24)};
    h.update(BytesView(idx, 4));
    h.update(message);
    auto d = h.digest();
    Bytes out(size, 0);
    std::memcpy(out.data(), d.data(), std::min<size_t>(size, d.size()));
    return out;
  }

  static bool matches(BytesView a, const Bytes& b) {
    return a.size() == b.size() && std::memcmp(a.data(), b.data(), a.size()) == 0;
  }

  size_t n_, t_;
  WireSizes sizes_;
  Bytes master_;
};

}  // namespace

std::unique_ptr<CryptoProvider> make_real_provider(size_t n, size_t t, uint64_t seed) {
  return std::make_unique<RealCryptoProvider>(n, t, seed);
}

std::unique_ptr<CryptoProvider> make_fast_provider(size_t n, size_t t, uint64_t seed,
                                                   const WireSizes& sizes) {
  return std::make_unique<FastCryptoProvider>(n, t, seed, sizes);
}

std::unique_ptr<CryptoProvider> make_fast_provider(size_t n, size_t t, uint64_t seed) {
  // Defaults model the paper's deployment: 64-byte Ed25519 authenticators,
  // 48-byte BLS(-like) threshold shares and compact combined signatures.
  return make_fast_provider(n, t, seed, WireSizes{64, 48, 48, 48, 32});
}

}  // namespace icc::crypto
