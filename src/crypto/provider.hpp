// Pluggable cryptography for the consensus layer.
//
// The ICC protocols (Section 3.2) use four primitives: an individual
// signature scheme S_auth, two (t, n-t, n)-threshold schemes S_notary and
// S_final, and a (t, t+1, n) unique-threshold scheme S_beacon. Consensus
// code talks to them only through this interface, which lets the simulator
// swap between
//   * RealCryptoProvider — Ed25519 signatures, aggregated multi-signatures,
//     DDH-based threshold beacon (everything implemented in this repo,
//     no external libraries), and
//   * FastCryptoProvider — a simulation oracle producing SHA-256 tags with
//     *configurable wire sizes*; semantically equivalent for protocol logic
//     (unforgeable by construction inside the simulation, unique beacon),
//     but ~10^3x faster, enabling 40-node x hundreds-of-rounds experiments.
//
// A single provider instance holds the key material of ALL parties, playing
// the role of the paper's trusted dealer (Section 3.1). Party code only ever
// signs under its own index; adversarial code only under corrupt indices.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace icc::crypto {

using PartyIndex = uint32_t;

/// Which threshold instance a share belongs to.
enum class Scheme : uint8_t { kNotary = 0, kFinal = 1 };

/// Byte sizes of the artifacts a provider puts on the wire. Traffic
/// accounting in the simulator uses the *actual* serialized sizes, which
/// the providers guarantee to match these numbers.
struct WireSizes {
  size_t signature;        ///< S_auth signature
  size_t threshold_share;  ///< S_notary / S_final share
  size_t threshold_agg;    ///< combined notarization/finalization signature
  size_t beacon_share;
  size_t beacon_value;
};

class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  virtual size_t n() const = 0;
  virtual size_t t() const = 0;
  /// Shares required for S_notary / S_final: n - t.
  size_t quorum() const { return n() - t(); }
  /// Shares required for the beacon: t + 1.
  size_t beacon_threshold() const { return t() + 1; }

  virtual WireSizes wire_sizes() const = 0;

  // --- S_auth ---
  virtual Bytes sign(PartyIndex signer, BytesView message) = 0;
  virtual bool verify(PartyIndex signer, BytesView message, BytesView signature) const = 0;

  // --- S_notary / S_final ---
  virtual Bytes threshold_sign_share(Scheme scheme, PartyIndex signer,
                                     BytesView message) = 0;
  virtual bool threshold_verify_share(Scheme scheme, PartyIndex signer, BytesView message,
                                      BytesView share) const = 0;
  /// Batch-verify k shares over the SAME message in one call. out[i] is the
  /// verdict for shares[i]. Providers with a homomorphic check (Ed25519
  /// random-linear-combination) try one combined equation first and fall
  /// back to per-item verification only when it fails; the default is a
  /// per-item loop.
  virtual std::vector<uint8_t> threshold_verify_share_batch(
      Scheme scheme, BytesView message,
      std::span<const std::pair<PartyIndex, Bytes>> shares) const;

  /// Combine shares (signer, share-bytes) into an aggregate signature.
  /// Returns empty on failure (fewer than quorum() distinct valid signers).
  virtual Bytes threshold_combine(Scheme scheme, BytesView message,
                                  std::span<const std::pair<PartyIndex, Bytes>> shares) = 0;
  /// Like threshold_combine but the CALLER vouches that every share has
  /// already been verified (e.g. by the ingress pipeline's memoized
  /// verifier), so no per-share signature checks are repeated. Structural
  /// checks (share size, distinct signers, quorum count) still apply.
  /// Default falls back to the verifying combine.
  virtual Bytes threshold_combine_preverified(
      Scheme scheme, BytesView message,
      std::span<const std::pair<PartyIndex, Bytes>> shares);
  virtual bool threshold_verify(Scheme scheme, BytesView message,
                                BytesView aggregate) const = 0;

  // --- S_beacon ---
  virtual Bytes beacon_sign_share(PartyIndex signer, BytesView message) = 0;
  virtual bool beacon_verify_share(PartyIndex signer, BytesView message,
                                   BytesView share) const = 0;
  /// Combine beacon shares into the (unique) beacon value (32 bytes).
  /// Returns empty on failure.
  virtual Bytes beacon_combine(BytesView message,
                               std::span<const std::pair<PartyIndex, Bytes>> shares) = 0;
  /// Preverified variant of beacon_combine (see threshold_combine_preverified):
  /// skips the per-share DLEQ checks the caller already performed. Default
  /// falls back to the verifying combine.
  virtual Bytes beacon_combine_preverified(
      BytesView message, std::span<const std::pair<PartyIndex, Bytes>> shares);
  virtual bool beacon_verify(BytesView message, BytesView value) const = 0;
};

/// Full Ed25519 + multisig + DVRF provider (dealer keygen from `seed`).
std::unique_ptr<CryptoProvider> make_real_provider(size_t n, size_t t, uint64_t seed);

/// Simulation-oracle provider. `sizes` controls modeled wire sizes; defaults
/// approximate the compact BLS deployment of the paper (48-byte threshold
/// signatures, 64-byte Ed25519 authenticators).
std::unique_ptr<CryptoProvider> make_fast_provider(size_t n, size_t t, uint64_t seed);
std::unique_ptr<CryptoProvider> make_fast_provider(size_t n, size_t t, uint64_t seed,
                                                   const WireSizes& sizes);

}  // namespace icc::crypto
