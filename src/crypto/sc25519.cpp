#include "crypto/sc25519.hpp"

#include <cstring>
#include <stdexcept>

namespace icc::crypto {

namespace {

using u128 = unsigned __int128;

// l, little-endian 64-bit words.
constexpr std::array<uint64_t, 4> kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                        0x0000000000000000ULL, 0x1000000000000000ULL};

// Compare two 4-word little-endian numbers.
int cmp4(const std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// a -= b, assuming a >= b.
void sub4(std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t bi = b[i] + borrow;
    uint64_t nb = (bi < b[i]) || (a[i] < bi) ? 1 : 0;
    a[i] -= bi;
    borrow = nb;
  }
}

// Reduce an 8-word (512-bit) little-endian number mod l by binary long
// division: subtract l << i for i from high to low whenever it fits.
std::array<uint64_t, 4> reduce_wide(std::array<uint64_t, 8> r) {
  // l << i occupies bits [i, i+253). The value has at most 512 bits, so the
  // largest useful shift is 512 - 253 = 259.
  for (int shift = 259; shift >= 0; --shift) {
    const int word = shift / 64;
    const int bit = shift % 64;
    // Build l << bit as 5 words.
    uint64_t ls[5];
    if (bit == 0) {
      for (int i = 0; i < 4; ++i) ls[i] = kL[i];
      ls[4] = 0;
    } else {
      ls[0] = kL[0] << bit;
      for (int i = 1; i < 4; ++i) ls[i] = (kL[i] << bit) | (kL[i - 1] >> (64 - bit));
      ls[4] = kL[3] >> (64 - bit);
    }
    // Compare r[word .. word+4] (and everything above, which must be zero
    // for the subtraction to be allowed) against ls.
    bool higher_nonzero = false;
    for (int i = word + 5; i < 8; ++i) higher_nonzero |= (r[i] != 0);
    if (higher_nonzero) continue;  // cannot happen after earlier shifts, but be safe
    bool ge = true;
    for (int i = 4; i >= 0; --i) {
      uint64_t ri = (word + i < 8) ? r[word + i] : 0;
      if (ri != ls[i]) {
        ge = ri > ls[i];
        break;
      }
    }
    if (!ge) continue;
    // r[word..] -= ls
    uint64_t borrow = 0;
    for (int i = 0; i < 5 && word + i < 8; ++i) {
      uint64_t bi = ls[i] + borrow;
      uint64_t nb = (bi < ls[i]) || (r[word + i] < bi) ? 1 : 0;
      r[word + i] -= bi;
      borrow = nb;
    }
    // No borrow can remain because we checked r >= ls at this offset.
  }
  return {r[0], r[1], r[2], r[3]};
}

}  // namespace

Sc25519 Sc25519::from_u64(uint64_t x) {
  Sc25519 r;
  r.v_[0] = x;
  return r;
}

Sc25519 Sc25519::from_bytes_mod_l(const uint8_t bytes[32]) {
  std::array<uint64_t, 8> wide{};
  std::memcpy(wide.data(), bytes, 32);
  Sc25519 r;
  r.v_ = reduce_wide(wide);
  return r;
}

Sc25519 Sc25519::from_bytes_wide(const uint8_t bytes[64]) {
  std::array<uint64_t, 8> wide;
  std::memcpy(wide.data(), bytes, 64);
  Sc25519 r;
  r.v_ = reduce_wide(wide);
  return r;
}

Sc25519 Sc25519::from_bytes_wide(BytesView bytes) {
  if (bytes.size() < 64) throw std::invalid_argument("from_bytes_wide: need 64 bytes");
  return from_bytes_wide(bytes.data());
}

void Sc25519::to_bytes(uint8_t out[32]) const { std::memcpy(out, v_.data(), 32); }

Bytes Sc25519::to_bytes() const {
  Bytes out(32);
  to_bytes(out.data());
  return out;
}

Sc25519 Sc25519::operator+(const Sc25519& o) const {
  Sc25519 r;
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t s = v_[i] + carry;
    uint64_t c1 = s < carry ? 1 : 0;
    r.v_[i] = s + o.v_[i];
    carry = c1 + (r.v_[i] < s ? 1 : 0);
  }
  // Both inputs < l < 2^253, so the sum fits in 4 words (no carry out) and
  // one conditional subtraction reduces it.
  if (cmp4(r.v_, kL) >= 0) sub4(r.v_, kL);
  return r;
}

Sc25519 Sc25519::operator-(const Sc25519& o) const {
  Sc25519 r = *this;
  if (cmp4(r.v_, o.v_) >= 0) {
    sub4(r.v_, o.v_);
  } else {
    // r + l - o: add l first (fits: r < l so r + l < 2^254).
    uint64_t carry = 0;
    for (int i = 0; i < 4; ++i) {
      uint64_t s = r.v_[i] + kL[i] + carry;
      carry = (s < r.v_[i] || (carry && s == r.v_[i])) ? 1 : 0;
      r.v_[i] = s;
    }
    sub4(r.v_, o.v_);
  }
  return r;
}

Sc25519 Sc25519::negate() const { return Sc25519::zero() - *this; }

Sc25519 Sc25519::operator*(const Sc25519& o) const {
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = (u128)v_[i] * o.v_[j] + wide[i + j] + carry;
      wide[i + j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    wide[i + 4] = (uint64_t)carry;
  }
  Sc25519 r;
  r.v_ = reduce_wide(wide);
  return r;
}

Sc25519 Sc25519::invert() const {
  // Exponent l - 2, little-endian bytes.
  static const std::array<uint8_t, 32> kExp = [] {
    std::array<uint8_t, 32> e{};
    std::array<uint64_t, 4> lm2 = kL;
    lm2[0] -= 2;  // no borrow: kL[0] ends in ...ed
    std::memcpy(e.data(), lm2.data(), 32);
    return e;
  }();
  Sc25519 result = Sc25519::one();
  for (int i = 255; i >= 0; --i) {
    result = result * result;
    if ((kExp[i / 8] >> (i % 8)) & 1) result = result * *this;
  }
  return result;
}

bool Sc25519::is_zero() const { return v_[0] == 0 && v_[1] == 0 && v_[2] == 0 && v_[3] == 0; }

}  // namespace icc::crypto
