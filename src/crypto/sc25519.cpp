#include "crypto/sc25519.hpp"

#include <cstring>
#include <stdexcept>

namespace icc::crypto {

namespace {

using u128 = unsigned __int128;

// l, little-endian 64-bit words.
constexpr std::array<uint64_t, 4> kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                        0x0000000000000000ULL, 0x1000000000000000ULL};

// Compare two 4-word little-endian numbers.
int cmp4(const std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// a -= b, assuming a >= b.
void sub4(std::array<uint64_t, 4>& a, const std::array<uint64_t, 4>& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t bi = b[i] + borrow;
    uint64_t nb = (bi < b[i]) || (a[i] < bi) ? 1 : 0;
    a[i] -= bi;
    borrow = nb;
  }
}

// mu = floor(2^512 / l), the Barrett constant for 512-bit inputs (260 bits,
// five 64-bit little-endian words).
constexpr uint64_t kMu[5] = {0xed9ce5a30a2c131bULL, 0x2106215d086329a7ULL,
                             0xffffffffffffffebULL, 0xffffffffffffffffULL,
                             0x000000000000000fULL};

// out[na + nb] = a[na] * b[nb], schoolbook.
void mulw(const uint64_t* a, int na, const uint64_t* b, int nb, uint64_t* out) {
  for (int i = 0; i < na + nb; ++i) out[i] = 0;
  for (int i = 0; i < na; ++i) {
    u128 carry = 0;
    for (int j = 0; j < nb; ++j) {
      u128 cur = (u128)a[i] * b[j] + out[i + j] + carry;
      out[i + j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    out[i + nb] = (uint64_t)carry;
  }
}

// Reduce an 8-word (512-bit) little-endian number mod l by Barrett
// reduction: q3 = floor(floor(x / 2^192) * mu / 2^320) underestimates
// floor(x / l) by at most 2, so r = x - q3*l < 3l needs at most two
// conditional subtractions. ~45 word multiplications total, versus the
// 260-iteration shift-subtract division this replaces.
std::array<uint64_t, 4> reduce_wide(const std::array<uint64_t, 8>& x) {
  // q2 = (x >> 192) * mu; q3 = q2 >> 320.
  uint64_t q2[10];
  mulw(x.data() + 3, 5, kMu, 5, q2);
  const uint64_t* q3 = q2 + 5;

  // r2 = (q3 * l) mod 2^320.
  uint64_t prod[9];
  mulw(q3, 5, kL.data(), 4, prod);

  // r = (x - r2) mod 2^320. The true remainder is in [0, 3l), so the
  // wrap-around subtraction yields it exactly.
  uint64_t r[5];
  uint64_t borrow = 0;
  for (int i = 0; i < 5; ++i) {
    uint64_t bi = prod[i] + borrow;
    uint64_t nb = (bi < prod[i]) || (x[i] < bi) ? 1 : 0;
    r[i] = x[i] - bi;
    borrow = nb;
  }

  // At most two conditional subtractions of l.
  for (int pass = 0; pass < 2; ++pass) {
    bool ge = r[4] != 0;
    if (!ge) {
      ge = true;
      for (int i = 3; i >= 0; --i) {
        if (r[i] != kL[i]) {
          ge = r[i] > kL[i];
          break;
        }
      }
    }
    if (!ge) break;
    uint64_t b2 = 0;
    for (int i = 0; i < 5; ++i) {
      uint64_t li = (i < 4 ? kL[i] : 0) + b2;
      uint64_t nb = (i < 4 && li < kL[i]) || (r[i] < li) ? 1 : 0;
      r[i] -= li;
      b2 = nb;
    }
  }
  return {r[0], r[1], r[2], r[3]};
}

}  // namespace

Sc25519 Sc25519::from_u64(uint64_t x) {
  Sc25519 r;
  r.v_[0] = x;
  return r;
}

Sc25519 Sc25519::from_bytes_mod_l(const uint8_t bytes[32]) {
  std::array<uint64_t, 8> wide{};
  std::memcpy(wide.data(), bytes, 32);
  Sc25519 r;
  r.v_ = reduce_wide(wide);
  return r;
}

bool Sc25519::is_canonical(const uint8_t bytes[32]) {
  std::array<uint64_t, 4> w;
  std::memcpy(w.data(), bytes, 32);
  return cmp4(w, kL) < 0;
}

Sc25519 Sc25519::from_bytes_wide(const uint8_t bytes[64]) {
  std::array<uint64_t, 8> wide;
  std::memcpy(wide.data(), bytes, 64);
  Sc25519 r;
  r.v_ = reduce_wide(wide);
  return r;
}

Sc25519 Sc25519::from_bytes_wide(BytesView bytes) {
  if (bytes.size() < 64) throw std::invalid_argument("from_bytes_wide: need 64 bytes");
  return from_bytes_wide(bytes.data());
}

void Sc25519::to_bytes(uint8_t out[32]) const { std::memcpy(out, v_.data(), 32); }

Bytes Sc25519::to_bytes() const {
  Bytes out(32);
  to_bytes(out.data());
  return out;
}

Sc25519 Sc25519::operator+(const Sc25519& o) const {
  Sc25519 r;
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    uint64_t s = v_[i] + carry;
    uint64_t c1 = s < carry ? 1 : 0;
    r.v_[i] = s + o.v_[i];
    carry = c1 + (r.v_[i] < s ? 1 : 0);
  }
  // Both inputs < l < 2^253, so the sum fits in 4 words (no carry out) and
  // one conditional subtraction reduces it.
  if (cmp4(r.v_, kL) >= 0) sub4(r.v_, kL);
  return r;
}

Sc25519 Sc25519::operator-(const Sc25519& o) const {
  Sc25519 r = *this;
  if (cmp4(r.v_, o.v_) >= 0) {
    sub4(r.v_, o.v_);
  } else {
    // r + l - o: add l first (fits: r < l so r + l < 2^254).
    uint64_t carry = 0;
    for (int i = 0; i < 4; ++i) {
      uint64_t s = r.v_[i] + kL[i] + carry;
      carry = (s < r.v_[i] || (carry && s == r.v_[i])) ? 1 : 0;
      r.v_[i] = s;
    }
    sub4(r.v_, o.v_);
  }
  return r;
}

Sc25519 Sc25519::negate() const { return Sc25519::zero() - *this; }

Sc25519 Sc25519::operator*(const Sc25519& o) const {
  std::array<uint64_t, 8> wide{};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      u128 cur = (u128)v_[i] * o.v_[j] + wide[i + j] + carry;
      wide[i + j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    wide[i + 4] = (uint64_t)carry;
  }
  Sc25519 r;
  r.v_ = reduce_wide(wide);
  return r;
}

Sc25519 Sc25519::invert() const {
  // Exponent l - 2, little-endian bytes.
  static const std::array<uint8_t, 32> kExp = [] {
    std::array<uint8_t, 32> e{};
    std::array<uint64_t, 4> lm2 = kL;
    lm2[0] -= 2;  // no borrow: kL[0] ends in ...ed
    std::memcpy(e.data(), lm2.data(), 32);
    return e;
  }();
  Sc25519 result = Sc25519::one();
  for (int i = 255; i >= 0; --i) {
    result = result * result;
    if ((kExp[i / 8] >> (i % 8)) & 1) result = result * *this;
  }
  return result;
}

bool Sc25519::is_zero() const { return v_[0] == 0 && v_[1] == 0 && v_[2] == 0 && v_[3] == 0; }

}  // namespace icc::crypto
