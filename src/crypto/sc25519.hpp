// Scalar arithmetic modulo the Ed25519 group order
//   l = 2^252 + 27742317777372353535851937790883648493.
//
// Scalars are the exponent space of every signature, Shamir share and
// Lagrange coefficient in this library. Representation: four 64-bit
// little-endian words, always fully reduced (< l). Reduction of wide
// (512-bit) products uses binary shift-subtract long division — simple,
// obviously correct, and fast enough for a simulation-grade library.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace icc::crypto {

class Xoshiro256Ref;  // fwd not needed; scalars are sampled via bytes

class Sc25519 {
 public:
  /// Zero scalar.
  constexpr Sc25519() : v_{0, 0, 0, 0} {}

  static Sc25519 zero() { return Sc25519(); }
  static Sc25519 one() { return from_u64(1); }
  static Sc25519 from_u64(uint64_t x);

  /// Reduce a 32-byte little-endian value mod l.
  static Sc25519 from_bytes_mod_l(const uint8_t bytes[32]);
  /// True iff the 32-byte little-endian value is already canonical (< l).
  /// Much cheaper than a reduce-and-compare round trip; used to reject
  /// non-canonical signature S values before any point work.
  static bool is_canonical(const uint8_t bytes[32]);
  /// Reduce a 64-byte little-endian value mod l (hash outputs).
  static Sc25519 from_bytes_wide(const uint8_t bytes[64]);
  static Sc25519 from_bytes_wide(BytesView bytes);

  /// Serialize to 32 little-endian bytes (canonical, < l).
  void to_bytes(uint8_t out[32]) const;
  Bytes to_bytes() const;

  Sc25519 operator+(const Sc25519& o) const;
  Sc25519 operator-(const Sc25519& o) const;
  Sc25519 operator*(const Sc25519& o) const;
  Sc25519 negate() const;

  /// Multiplicative inverse via Fermat (undefined for zero; returns zero).
  Sc25519 invert() const;

  bool is_zero() const;
  bool operator==(const Sc25519& o) const = default;

  /// Word access for tests.
  const std::array<uint64_t, 4>& words() const { return v_; }

 private:
  std::array<uint64_t, 4> v_;
};

}  // namespace icc::crypto
