// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the collision-resistant hash `H` of the paper (Section 2.1): block
// hashes, message hashes, Merkle trees and the random-beacon output all go
// through it. Incremental (init/update/final) and one-shot APIs.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace icc::crypto {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  Sha256& update(BytesView data);
  Sha256& update(std::string_view data);

  /// Finalize and return the digest. The object must not be reused after.
  Sha256Digest digest();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data);
  static Sha256Digest hash(std::string_view data);

 private:
  void compress(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, 64> buffer_;
  uint64_t bit_len_ = 0;
  size_t buffer_len_ = 0;
};

/// Digest as a Bytes vector (convenient for serialization).
Bytes sha256(BytesView data);

}  // namespace icc::crypto
