// SHA-512 (FIPS 180-4), implemented from scratch. Required by Ed25519
// (RFC 8032 uses SHA-512 for key expansion and the Fiat–Shamir challenges).
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace icc::crypto {

using Sha512Digest = std::array<uint8_t, 64>;

class Sha512 {
 public:
  Sha512();

  Sha512& update(BytesView data);
  Sha512& update(std::string_view data);

  Sha512Digest digest();

  static Sha512Digest hash(BytesView data);

 private:
  void compress(const uint8_t* block);

  std::array<uint64_t, 8> state_;
  std::array<uint8_t, 128> buffer_;
  // Message length in bits; 64 bits of length is plenty for our inputs
  // (FIPS allows 128, but 2^64 bits = 2 exabytes).
  uint64_t bit_len_ = 0;
  size_t buffer_len_ = 0;
};

}  // namespace icc::crypto
