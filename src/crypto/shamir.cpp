#include "crypto/shamir.hpp"

#include <stdexcept>

namespace icc::crypto {

Sc25519 random_scalar(Xoshiro256& rng) {
  Bytes wide = rng.bytes(64);
  return Sc25519::from_bytes_wide(wide);
}

std::vector<ShamirShare> shamir_share(const Sc25519& secret, size_t t, size_t n,
                                      Xoshiro256& rng) {
  if (t >= n) throw std::invalid_argument("shamir_share: need t < n");
  // f(x) = secret + c1 x + ... + ct x^t
  std::vector<Sc25519> coeffs;
  coeffs.reserve(t + 1);
  coeffs.push_back(secret);
  for (size_t i = 0; i < t; ++i) coeffs.push_back(random_scalar(rng));

  std::vector<ShamirShare> shares;
  shares.reserve(n);
  for (size_t i = 1; i <= n; ++i) {
    // Horner evaluation at x = i.
    Sc25519 x = Sc25519::from_u64(i);
    Sc25519 acc = coeffs.back();
    for (size_t j = coeffs.size() - 1; j-- > 0;) acc = acc * x + coeffs[j];
    shares.push_back({static_cast<uint32_t>(i), acc});
  }
  return shares;
}

Sc25519 lagrange_at_zero(std::span<const uint32_t> points, size_t j) {
  if (j >= points.size()) throw std::invalid_argument("lagrange_at_zero: bad index");
  Sc25519 num = Sc25519::one();
  Sc25519 den = Sc25519::one();
  Sc25519 xj = Sc25519::from_u64(points[j]);
  for (size_t m = 0; m < points.size(); ++m) {
    if (m == j) continue;
    Sc25519 xm = Sc25519::from_u64(points[m]);
    num = num * xm;
    den = den * (xm - xj);
  }
  if (den.is_zero()) throw std::invalid_argument("lagrange_at_zero: duplicate points");
  return num * den.invert();
}

Sc25519 shamir_reconstruct(std::span<const ShamirShare> shares) {
  std::vector<uint32_t> points;
  points.reserve(shares.size());
  for (const auto& s : shares) points.push_back(s.index);
  Sc25519 secret;
  for (size_t j = 0; j < shares.size(); ++j) {
    secret = secret + shares[j].value * lagrange_at_zero(points, j);
  }
  return secret;
}

}  // namespace icc::crypto
