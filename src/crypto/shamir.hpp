// Shamir secret sharing over Z_l (the Ed25519 scalar field).
//
// Used to share the random-beacon group secret (paper Section 2.3, approach
// (iii)): a degree-t polynomial f with f(0) = secret; party i holds f(i+1).
// Any t+1 shares reconstruct via Lagrange interpolation at zero; t shares
// reveal nothing (information-theoretically).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sc25519.hpp"
#include "support/rng.hpp"

namespace icc::crypto {

struct ShamirShare {
  uint32_t index;  ///< evaluation point, >= 1 (party i holds index i+1)
  Sc25519 value;
};

/// Split `secret` into n shares with reconstruction threshold t+1
/// (degree-t polynomial). Requires t < n.
std::vector<ShamirShare> shamir_share(const Sc25519& secret, size_t t, size_t n,
                                      Xoshiro256& rng);

/// Lagrange coefficient lambda_j for interpolating at zero from the given
/// evaluation points: lambda_j = prod_{m != j} x_m / (x_m - x_j).
Sc25519 lagrange_at_zero(std::span<const uint32_t> points, size_t j);

/// Reconstruct the secret from any t+1 (or more) distinct shares.
Sc25519 shamir_reconstruct(std::span<const ShamirShare> shares);

/// Sample a uniformly random scalar.
Sc25519 random_scalar(Xoshiro256& rng);

}  // namespace icc::crypto
