#include "gossip/gossip.hpp"

namespace icc::gossip {

bool GossipLayer::store(std::shared_ptr<const Bytes> raw, Round round, sim::Time now) {
  Hash id = types::artifact_id(*raw);
  const size_t size = raw->size();
  auto [it, inserted] = artifacts_.emplace(id, Stored{std::move(raw), round});
  if (!inserted) return false;
  if (auto pit = pending_.find(id); pit != pending_.end()) {
    if (probe_.on() && now >= 0 && pit->second.first_advert_at >= 0)
      probe_.on_fetched(size, pit->second.first_advert_at, now);
    if (now >= 0) journal_.gossip_deliver(round, id, size, now);
    pending_.erase(pit);  // no longer waiting for it
    probe_.on_pending_depth(static_cast<int64_t>(pending_.size()));
  }
  return true;
}

types::AdvertMsg GossipLayer::advert_for(const Bytes& raw, Round round) const {
  types::AdvertMsg m;
  m.artifact_type = raw.empty() ? 0 : raw[0];
  m.round = round;
  m.artifact_id = types::artifact_id(raw);
  m.size_hint = static_cast<uint32_t>(raw.size());
  return m;
}

void GossipLayer::on_advert(sim::Context& ctx, sim::PartyIndex from,
                            const types::AdvertMsg& msg) {
  if (has(msg.artifact_id)) return;
  Pending& p = pending_[msg.artifact_id];
  p.round = msg.round;
  if (p.first_advert_at < 0) p.first_advert_at = ctx.now();
  for (sim::PartyIndex a : p.advertisers)
    if (a == from) return;  // duplicate advert
  p.advertisers.push_back(from);
  probe_.on_advert(static_cast<int64_t>(pending_.size()));
  if (p.request_scheduled) return;
  p.request_scheduled = true;
  // Journaled at the moment the pull timer is armed: the causal analyzer
  // attributes the advert → request gap to gossip jitter, not the network.
  journal_.gossip_advert(msg.round, msg.artifact_id, from, ctx.now());

  // Jittered pull: by the time the request fires, more advertisers may be
  // known, spreading load off the original proposer.
  sim::Duration jitter =
      config_.request_jitter > 0
          ? static_cast<sim::Duration>(
                ctx.rng().below(static_cast<uint64_t>(config_.request_jitter) + 1))
          : 0;
  sim::Context c = ctx;
  Hash id = msg.artifact_id;
  ctx.set_timer(jitter, [this, c, id]() mutable { try_request(c, id); });
}

void GossipLayer::try_request(sim::Context ctx, Hash id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return;  // delivered (or pruned) meanwhile
  Pending& p = it->second;
  if (p.attempts >= config_.max_attempts || p.advertisers.empty()) return;
  p.attempts++;
  probe_.on_request_sent(p.attempts > 1, ctx.now());

  // Rotate through advertisers, starting from a random position on the
  // first attempt so concurrent requesters pick different sources.
  if (p.attempts == 1) {
    p.next_advertiser = ctx.rng().below(p.advertisers.size());
  }
  sim::PartyIndex target = p.advertisers[p.next_advertiser % p.advertisers.size()];
  p.next_advertiser++;

  journal_.gossip_request(p.round, id, target, p.attempts, ctx.now());
  ctx.send(target, types::serialize_message(types::Message{types::RequestMsg{id}}));

  // Retry against another advertiser if the artifact does not arrive.
  sim::Context c = ctx;
  ctx.set_timer(config_.request_timeout, [this, c, id]() mutable { try_request(c, id); });
}

void GossipLayer::on_request(sim::Context& ctx, sim::PartyIndex from,
                             const types::RequestMsg& msg) {
  auto it = artifacts_.find(msg.artifact_id);
  if (it == artifacts_.end()) return;  // don't have it (or pruned)
  it->second.serves++;
  probe_.on_request_served(it->second.bytes->size());
  // Shared-buffer send: the serve re-uses the stored wire allocation.
  ctx.send(from, it->second.bytes);
}

void GossipLayer::prune_below(Round round) {
  for (auto it = artifacts_.begin(); it != artifacts_.end();) {
    if (it->second.round < round) {
      probe_.on_artifact_retired(it->second.serves);
      it = artifacts_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.round < round) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  probe_.on_pending_depth(static_cast<int64_t>(pending_.size()));
}

}  // namespace icc::gossip
