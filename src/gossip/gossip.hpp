// Peer-to-peer pull gossip for large artifacts (Protocol ICC1's sub-layer).
//
// Modeled on the Internet Computer's gossip network [17, 18]: small
// consensus artifacts (signature shares, notarizations, beacon shares) are
// pushed to all peers, while block-bearing artifacts are *advertised* by
// hash and pulled on demand:
//
//   holder  --advert(id, round, size)-->  everyone
//   peer    --request(id)------------->   one advertiser (jittered choice)
//   holder  --artifact bytes---------->   the requester
//   peer (now a holder) advertises too, becoming an alternative source.
//
// The jittered advertiser choice plus re-advertising is what removes the
// leader bottleneck the paper discusses: the block body crosses the network
// roughly once per party, with upload load spread over early receivers
// rather than concentrated at the proposer. Requests that go unanswered
// (corrupt holder) are retried against a different advertiser, preserving
// the eventual-delivery guarantee the consensus layer assumes.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"
#include "sim/network.hpp"
#include "types/messages.hpp"

namespace icc::gossip {

using types::Hash;
using types::Round;

struct GossipConfig {
  /// Random delay before requesting an advertised artifact. Spreads requests
  /// over advertisers that appear in the meantime.
  sim::Duration request_jitter = sim::msec(20);
  /// Re-request from a different advertiser if not delivered in time.
  sim::Duration request_timeout = sim::msec(500);
  int max_attempts = 6;
  /// Artifacts up to this size are pushed whole (advert/pull adds two hops,
  /// which only pays off for bodies that dominate the advert cost — the
  /// Internet Computer's gossip behaves the same way).
  size_t push_threshold = 4096;
};

class GossipLayer {
 public:
  GossipLayer(const GossipConfig& config, sim::PartyIndex self)
      : config_(config), self_(self) {}

  const GossipConfig& config() const { return config_; }

  /// Attach telemetry (queue depth, fetch latency, delivery fan-out) and the
  /// flight recorder (pulled-artifact delivery events).
  void attach_obs(obs::Obs* obs) {
    probe_.attach(obs, self_);
    journal_.attach(obs, self_);
  }

  /// Record an artifact we hold (originated or received). Returns true if it
  /// was new — the caller should then advertise it. `now` (virtual µs)
  /// stamps the fetch-latency probe; -1 skips it. The layer keeps the shared
  /// handle (typically the network's wire buffer), so n holders of one
  /// artifact share one allocation and serving it never copies.
  bool store(std::shared_ptr<const Bytes> raw, Round round, sim::Time now = -1);
  bool store(const Bytes& raw, Round round, sim::Time now = -1) {
    return store(std::make_shared<const Bytes>(raw), round, now);
  }

  bool has(const Hash& id) const { return artifacts_.count(id) > 0; }

  /// Build the advert message for an artifact we hold.
  types::AdvertMsg advert_for(const Bytes& raw, Round round) const;

  /// Peer announced an artifact. May schedule a pull.
  void on_advert(sim::Context& ctx, sim::PartyIndex from, const types::AdvertMsg& msg);

  /// Peer asked for an artifact; serve it if we hold it.
  void on_request(sim::Context& ctx, sim::PartyIndex from, const types::RequestMsg& msg);

  /// Drop artifact/pending state for rounds below `round`.
  void prune_below(Round round);

  // Introspection.
  size_t stored_count() const { return artifacts_.size(); }

 private:
  void try_request(sim::Context ctx, Hash id);

  struct Pending {
    Round round = 0;
    std::vector<sim::PartyIndex> advertisers;
    size_t next_advertiser = 0;  // rotation cursor
    bool request_scheduled = false;
    int attempts = 0;
    sim::Time first_advert_at = -1;  // telemetry: advert → stored latency
  };

  /// An artifact we hold, with the round it belongs to (for pruning).
  struct Stored {
    std::shared_ptr<const Bytes> bytes;
    Round round = 0;
    uint32_t serves = 0;  // telemetry: times we uploaded it (fan-out)
  };

  GossipConfig config_;
  sim::PartyIndex self_;
  obs::GossipProbe probe_;
  obs::JournalScribe journal_;
  std::unordered_map<Hash, Stored, types::HashHasher> artifacts_;
  std::unordered_map<Hash, Pending, types::HashHasher> pending_;
};

}  // namespace icc::gossip
