// Harness for the baseline protocols, mirroring Cluster for ICC so benches
// can compare like for like (same network models, same metrics).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "baselines/hotstuff.hpp"
#include "baselines/pbft.hpp"
#include "baselines/tendermint.hpp"
#include "consensus/byzantine.hpp"
#include "sim/simulation.hpp"

namespace icc::harness {

enum class BaselineKind { kHotStuff, kTendermint, kPbft };

struct BaselineOptions {
  BaselineKind kind = BaselineKind::kHotStuff;
  size_t n = 4;
  size_t t = 1;
  uint64_t seed = 1;
  sim::Duration delta_bnd = sim::msec(300);  ///< drives all protocol timeouts
  size_t payload_size = 256;
  bool record_payloads = true;
  uint64_t max_height = 0;
  std::function<std::unique_ptr<sim::DelayModel>(size_t n, uint64_t seed)> delay_model;
  std::set<sim::PartyIndex> crashed;
  /// PBFT only: per-party proposal throttling (the [15] attack).
  std::map<sim::PartyIndex, sim::Duration> pbft_propose_delay;
};

class BaselineCluster {
 public:
  explicit BaselineCluster(const BaselineOptions& options) : options_(options) {
    crypto_ = crypto::make_fast_provider(options.n, options.t, options.seed);
    auto model = options.delay_model
                     ? options.delay_model(options.n, options.seed)
                     : std::make_unique<sim::FixedDelay>(sim::msec(10));
    sim_ = std::make_unique<sim::Simulation>(options.n, std::move(model), options.seed);

    auto payload = std::make_shared<consensus::FixedSizePayload>(options.payload_size);
    auto on_commit = [this](types::PartyIndex self, const consensus::CommittedBlock& b) {
      record_commit(self, b);
    };
    auto on_propose = [this](types::PartyIndex, uint64_t height, const types::Hash& h,
                             sim::Time now) { proposed_[{height, h}] = now; };

    parties_.assign(options.n, nullptr);
    for (sim::PartyIndex i = 0; i < options.n; ++i) {
      if (options.crashed.count(i)) {
        sim_->network().set_process(i, std::make_unique<consensus::CrashParty>());
        continue;
      }
      std::unique_ptr<baselines::BaselineParty> p;
      switch (options.kind) {
        case BaselineKind::kHotStuff: {
          baselines::HotStuffConfig c;
          c.crypto = crypto_.get();
          c.payload = payload;
          c.view_timeout = 4 * options.delta_bnd;
          c.record_payloads = options.record_payloads;
          c.max_view = options.max_height;
          c.on_commit = on_commit;
          c.on_propose = on_propose;
          p = std::make_unique<baselines::HotStuffParty>(i, c);
          break;
        }
        case BaselineKind::kTendermint: {
          baselines::TendermintConfig c;
          c.crypto = crypto_.get();
          c.payload = payload;
          c.timeout_propose = options.delta_bnd;
          c.timeout_commit = options.delta_bnd;
          c.record_payloads = options.record_payloads;
          c.max_height = options.max_height;
          c.on_commit = on_commit;
          c.on_propose = on_propose;
          p = std::make_unique<baselines::TendermintParty>(i, c);
          break;
        }
        case BaselineKind::kPbft: {
          baselines::PbftConfig c;
          c.crypto = crypto_.get();
          c.payload = payload;
          c.view_timeout = 4 * options.delta_bnd;
          if (auto it = options.pbft_propose_delay.find(i);
              it != options.pbft_propose_delay.end()) {
            c.propose_delay = it->second;
          }
          c.record_payloads = options.record_payloads;
          c.max_seq = options.max_height;
          c.on_commit = on_commit;
          c.on_propose = on_propose;
          p = std::make_unique<baselines::PbftParty>(i, c);
          break;
        }
      }
      parties_[i] = p.get();
      sim_->network().set_process(i, std::move(p));
    }
    honest_count_ = options.n - options.crashed.size();
    sim_->start();
  }

  void run_for(sim::Duration d) { sim_->run_until(sim_->engine().now() + d); }

  sim::Simulation& sim() { return *sim_; }
  baselines::BaselineParty* party(size_t i) const { return parties_[i]; }

  size_t min_honest_committed() const {
    size_t m = SIZE_MAX;
    for (auto* p : parties_)
      if (p) m = std::min(m, p->committed().size());
    return m == SIZE_MAX ? 0 : m;
  }

  /// Prefix-compatibility of outputs across live parties.
  bool outputs_consistent() const {
    const baselines::BaselineParty* ref = nullptr;
    for (auto* p : parties_) {
      if (!p) continue;
      if (!ref) {
        ref = p;
        continue;
      }
      const auto& a = ref->committed();
      const auto& b = p->committed();
      for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        if (!(a[i].hash == b[i].hash)) return false;
      }
    }
    return true;
  }

  double avg_latency_ms() const {
    if (latencies_.empty()) return 0.0;
    double s = 0;
    for (auto d : latencies_) s += sim::to_ms(d);
    return s / static_cast<double>(latencies_.size());
  }
  const std::vector<sim::Duration>& latencies() const { return latencies_; }

 private:
  void record_commit(types::PartyIndex, const consensus::CommittedBlock& b) {
    auto& count = commit_count_[{b.round, b.hash}];
    count++;
    if (count == honest_count_) {
      auto it = proposed_.find({b.round, b.hash});
      if (it != proposed_.end()) latencies_.push_back(b.committed_at - it->second);
    }
  }

  BaselineOptions options_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  std::unique_ptr<sim::Simulation> sim_;
  std::vector<baselines::BaselineParty*> parties_;
  size_t honest_count_ = 0;
  std::map<std::pair<uint64_t, types::Hash>, sim::Time> proposed_;
  std::map<std::pair<uint64_t, types::Hash>, size_t> commit_count_;
  std::vector<sim::Duration> latencies_;
};

}  // namespace icc::harness
