#include "harness/cluster.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "consensus/icc1.hpp"
#include "consensus/icc2.hpp"
#include "support/defer.hpp"

namespace icc::harness {

using consensus::ByzantineParty;
using consensus::CrashParty;
using consensus::Icc0Party;
using consensus::PartyConfig;

Cluster::Cluster(const ClusterOptions& options) : options_(options) {
  crypto_ = options.crypto == CryptoKind::kReal
                ? crypto::make_real_provider(options.n, options.t, options.seed)
                : crypto::make_fast_provider(options.n, options.t, options.seed);

  auto model = options.delay_model
                   ? options.delay_model(options.n, options.seed)
                   : std::make_unique<sim::FixedDelay>(sim::msec(10));
  sim_ = std::make_unique<sim::Simulation>(options.n, std::move(model), options.seed);

  // Worker pool for party-parallel stepping and sliced batch verification.
  // A 1-thread run keeps the classic sequential engine path (no pool at all)
  // — results are bit-identical either way (DESIGN.md §6).
  size_t threads =
      options.threads != 0 ? options.threads : support::Executor::default_threads();
  if (threads > 1) {
    executor_ = std::make_unique<support::Executor>(threads);
    sim_->engine().set_executor(executor_.get());
  }

  if (options.intern) intern_ = std::make_unique<pipeline::InternStore>();

  if (options.obs.enabled) {
    obs_ = std::make_unique<obs::Obs>(options.obs);
    sim_->network().attach_obs(obs_.get());
    if (obs::RuntimeProfiler* rt = obs_->runtime()) {
      // Wall-clock observatory: executor health through the TaskProbe hook,
      // engine batch/region spans, intern shard lock sampling. Parties wire
      // their verifiers in icc0.cpp via pc.obs. Destruction order is safe:
      // obs_ is declared before executor_, so the pool (and its workers) is
      // torn down while the profiler is still alive.
      rt->set_threads(threads);
      if (executor_) executor_->set_probe(rt);
      sim_->engine().set_runtime(rt);
      if (intern_) intern_->set_runtime(rt);
    }
    if (obs::Journal* j = obs_->journal()) {
      const char* proto = options.protocol == Protocol::kIcc0   ? "icc0"
                          : options.protocol == Protocol::kIcc1 ? "icc1"
                                                                : "icc2";
      obs::JournalMeta meta{static_cast<uint32_t>(options.n),
                            static_cast<uint32_t>(options.t), proto, options.seed};
      meta.schema = options.obs.journal_causal ? obs::JournalMeta::kSchemaV2
                                               : obs::JournalMeta::kSchemaV1;
      j->set_meta(meta);
    }
    if (obs::TimeSeries* ts = obs_->series()) {
      obs::SeriesMeta& sm = ts->meta();
      sm.n = static_cast<uint32_t>(options.n);
      sm.t = static_cast<uint32_t>(options.t);
      sm.protocol = options.protocol == Protocol::kIcc0   ? "icc0"
                    : options.protocol == Protocol::kIcc1 ? "icc1"
                                                          : "icc2";
      sm.seed = options.seed;
      for (const auto& [slot, behaviour] : options.corrupt)
        sm.corrupt.push_back(static_cast<uint32_t>(slot));
      std::sort(sm.corrupt.begin(), sm.corrupt.end());
      // Window boundaries ride the engine's virtual-time tick: fired on the
      // coordinating thread between batches, never injecting events, so ids
      // and journal bytes are unchanged with the recorder on or off.
      sim_->engine().set_tick(options.obs.series_window_us,
                              [ts](sim::Time b) { ts->on_boundary(b); });
    }
  }

  PartyConfig pc;
  pc.crypto = crypto_.get();
  pc.delays.delta_bnd = options.delta_bnd;
  pc.delays.epsilon = options.epsilon;
  pc.payload = std::make_shared<consensus::FixedSizePayload>(options.payload_size);
  pc.record_payloads = options.record_payloads;
  pc.committed_history = options.committed_history;
  pc.prune_lag = options.prune_lag;
  pc.max_round = options.max_round;
  pc.cup_interval = options.cup_interval;
  pc.lag_threshold = options.lag_threshold;
  pc.adaptive = options.adaptive;
  pc.pipeline = options.pipeline;
  pc.executor = executor_.get();
  // Both callbacks mutate harness-shared state (pending_latency_, latencies_)
  // and so are deferred to the canonical replay point when fired from inside
  // a parallel engine batch (support/defer.hpp).
  pc.on_commit = [this](sim::PartyIndex self, const CommittedBlock& b) {
    if (support::DeferQueue::maybe_defer([this, self, b] { record_commit(self, b); }))
      return;
    record_commit(self, b);
  };
  pc.on_propose = [this](sim::PartyIndex self, Round round, const types::Hash& hash,
                         sim::Time now) {
    if (support::DeferQueue::maybe_defer(
            [this, self, round, hash, now] { record_propose(self, round, hash, now); }))
      return;
    record_propose(self, round, hash, now);
  };
  // Only the harness knows which slots are corrupt; probes use this oracle
  // to tag rounds by actual leader honesty (honest_ is final before start).
  pc.party_honesty = [this](consensus::PartyIndex p) {
    return p < honest_.size() && honest_[p];
  };

  parties_.assign(options.n, nullptr);
  honest_.assign(options.n, true);

  std::map<sim::PartyIndex, CorruptBehavior> corrupt(options.corrupt.begin(),
                                                     options.corrupt.end());
  for (sim::PartyIndex i = 0; i < options.n; ++i) {
    if (options.payload_factory) pc.payload = options.payload_factory(i);
    auto it = corrupt.find(i);
    std::unique_ptr<sim::Process> proc;
    if (options.custom_process && (proc = options.custom_process(i))) {
      honest_[i] = false;
      sim_->network().set_process(i, std::move(proc));
      continue;
    }
    // Probes attach to honest parties only, so aggregate metrics describe
    // honest behaviour (matching pipeline_stats()/verifier_stats()). The
    // intern store follows the same rule: a Byzantine party must not be able
    // to poison (or read) the honest parties' shared decode/verdict caches.
    pc.obs = it == corrupt.end() ? obs_.get() : nullptr;
    pc.intern = it == corrupt.end() ? intern_.get() : nullptr;
    if (it == corrupt.end()) {
      std::unique_ptr<Icc0Party> p;
      switch (options.protocol) {
        case Protocol::kIcc0:
          p = std::make_unique<Icc0Party>(i, pc);
          break;
        case Protocol::kIcc1:
          p = std::make_unique<consensus::Icc1Party>(i, pc, options.gossip);
          break;
        case Protocol::kIcc2:
          p = std::make_unique<consensus::Icc2Party>(i, pc);
          break;
      }
      parties_[i] = p.get();
      proc = std::move(p);
    } else if (std::holds_alternative<Crashed>(it->second)) {
      honest_[i] = false;
      proc = std::make_unique<CrashParty>();
    } else {
      honest_[i] = false;
      auto p = std::make_unique<ByzantineParty>(
          i, pc, std::get<consensus::ByzantineBehavior>(it->second));
      parties_[i] = p.get();
      proc = std::move(p);
    }
    sim_->network().set_process(i, std::move(proc));
  }
  honest_count_ = static_cast<size_t>(std::count(honest_.begin(), honest_.end(), true));
  sim_->start();
}

Cluster::~Cluster() = default;

void Cluster::run_for(sim::Duration d) { sim_->run_until(sim_->engine().now() + d); }
void Cluster::run_until(sim::Time t) { sim_->run_until(t); }

void Cluster::record_propose(sim::PartyIndex, Round round, const types::Hash& hash,
                             sim::Time now) {
  pending_latency_[{round, hash}].proposed_at = now;
}

void Cluster::record_commit(sim::PartyIndex self, const CommittedBlock& block) {
  if (!honest_[self]) return;
  auto it = pending_latency_.emplace(std::make_pair(block.round, block.hash),
                                     PendingLatency{})
                .first;
  PendingLatency& pending = it->second;
  pending.commits++;
  if (pending.commits == honest_count_) {
    if (options_.record_latencies && pending.proposed_at >= 0) {
      latencies_.push_back(
          LatencySample{block.round, block.committed_at - pending.proposed_at});
    }
    // Complete entries are done; stale ones (a proposal that never fully
    // committed, e.g. across a crash window) are swept once the frontier
    // has moved well past them. Both bounds keep soak-length runs flat.
    pending_latency_.erase(it);
  }
  while (!pending_latency_.empty() &&
         pending_latency_.begin()->first.first + 64 < block.round)
    pending_latency_.erase(pending_latency_.begin());
  if (options_.on_commit) options_.on_commit(self, block);
}

std::optional<std::string> Cluster::check_safety() const {
  // Each round commits exactly one block, so outputs are aligned by round:
  // every party's committed rounds are strictly increasing, and any two
  // parties agree on the block of every round they both committed. (A party
  // that state-synced via a catch-up package starts its history at the
  // checkpoint round instead of round 1 — prefix equality by index would be
  // too strict, round alignment is the invariant the paper guarantees.)
  std::map<Round, std::pair<types::Hash, size_t>> by_round;  // hash + first committer
  for (size_t i = 0; i < parties_.size(); ++i) {
    if (!honest_[i] || !parties_[i]) continue;
    const auto& out = parties_[i]->committed();
    Round prev = 0;
    bool first = true;
    for (const auto& blk : out) {
      if (!first && blk.round <= prev) {
        std::ostringstream os;
        os << "party " << i << " committed round " << blk.round
           << " out of order (after round " << prev << ")";
        return os.str();
      }
      prev = blk.round;
      first = false;
      auto [it, inserted] = by_round.emplace(blk.round, std::make_pair(blk.hash, i));
      if (!inserted && it->second.first != blk.hash) {
        std::ostringstream os;
        os << "safety violation at round " << blk.round << ": party " << i
           << " and party " << it->second.second << " committed different blocks";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> Cluster::check_p2() const {
  const Round max_round = static_cast<Round>(max_honest_round());
  for (Round k = 1; k <= max_round; ++k) {
    std::set<types::Hash> notarized, finalized;
    for (size_t i = 0; i < parties_.size(); ++i) {
      if (!honest_[i] || !parties_[i]) continue;
      const auto& pool = parties_[i]->pool();
      for (const auto& h : pool.notarized_blocks_at(k)) {
        notarized.insert(h);
        if (pool.finalization_for(h) != nullptr) finalized.insert(h);
      }
    }
    if (!finalized.empty() && notarized.size() > 1) {
      std::ostringstream os;
      os << "P2 violation at round " << k << ": " << finalized.size()
         << " finalized, " << notarized.size() << " notarized blocks";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> Cluster::check_progress(Round round) const {
  for (size_t i = 0; i < parties_.size(); ++i) {
    if (!honest_[i] || !parties_[i]) continue;
    if (parties_[i]->current_round() < round) {
      std::ostringstream os;
      os << "party " << i << " only reached round " << parties_[i]->current_round()
         << " (expected >= " << round << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

size_t Cluster::min_honest_committed() const {
  size_t m = SIZE_MAX;
  for (size_t i = 0; i < parties_.size(); ++i) {
    if (!honest_[i] || !parties_[i]) continue;
    m = std::min(m, static_cast<size_t>(parties_[i]->committed_total()));
  }
  return m == SIZE_MAX ? 0 : m;
}

size_t Cluster::max_honest_round() const {
  size_t m = 0;
  for (size_t i = 0; i < parties_.size(); ++i) {
    if (!honest_[i] || !parties_[i]) continue;
    m = std::max(m, static_cast<size_t>(parties_[i]->current_round()));
  }
  return m;
}

double Cluster::avg_latency_ms() const {
  if (latencies_.empty()) return 0.0;
  double sum = 0;
  for (const auto& s : latencies_) sum += sim::to_ms(s.propose_to_commit);
  return sum / static_cast<double>(latencies_.size());
}

pipeline::PipelineStats Cluster::pipeline_stats() const {
  pipeline::PipelineStats total;
  total.duplicates_from.assign(options_.n, 0);
  for (size_t i = 0; i < parties_.size(); ++i) {
    if (honest_[i] && parties_[i]) total += parties_[i]->ingress().stats();
  }
  return total;
}

pipeline::Verifier::Stats Cluster::verifier_stats() const {
  pipeline::Verifier::Stats total;
  for (size_t i = 0; i < parties_.size(); ++i) {
    if (honest_[i] && parties_[i]) total += parties_[i]->verifier().stats();
  }
  return total;
}

pipeline::InternStore::Stats Cluster::intern_stats() const {
  return intern_ ? intern_->stats() : pipeline::InternStore::Stats{};
}

std::string Cluster::metrics_json() {
  if (!obs_) return "{}";
  obs::Registry& r = obs_->registry();

  // Fold the existing stats structs in as gauges. Doing it at snapshot time
  // keeps the hot paths untouched, and gauges are last-write-wins so
  // repeated snapshots stay correct.
  const auto ps = pipeline_stats();
  r.gauge("pipeline.decoded").set(static_cast<int64_t>(ps.decoded));
  r.gauge("pipeline.malformed").set(static_cast<int64_t>(ps.malformed));
  r.gauge("pipeline.duplicates").set(static_cast<int64_t>(ps.duplicates));
  r.gauge("pipeline.dedup_exempt").set(static_cast<int64_t>(ps.dedup_exempt));

  const auto vs = verifier_stats();
  r.gauge("verify.provider_verifications")
      .set(static_cast<int64_t>(vs.provider_verifications));
  r.gauge("verify.cache_hits").set(static_cast<int64_t>(vs.cache_hits));
  r.gauge("verify.primed").set(static_cast<int64_t>(vs.primed));
  r.gauge("verify.batch_calls").set(static_cast<int64_t>(vs.batch_calls));
  r.gauge("verify.batch_fallbacks").set(static_cast<int64_t>(vs.batch_fallbacks));
  r.gauge("verify.combine_share_checks_skipped")
      .set(static_cast<int64_t>(vs.combine_share_checks_skipped));

  const auto& nm = sim_->network().metrics();
  r.gauge("net.total_messages").set(static_cast<int64_t>(nm.total_messages));
  r.gauge("net.total_bytes").set(static_cast<int64_t>(nm.total_bytes));
  r.gauge("net.max_bytes_sent").set(static_cast<int64_t>(nm.max_bytes_sent()));

  r.gauge("trace.recorded").set(static_cast<int64_t>(obs_->tracer().recorded()));
  r.gauge("trace.dropped").set(static_cast<int64_t>(obs_->tracer().dropped()));
  return r.snapshot_json();
}

std::string Cluster::trace_json() const { return obs_ ? obs_->tracer().to_json() : "{}"; }

bool Cluster::dump_trace(const std::string& path) const {
  return obs_ && obs_->tracer().write_json(path);
}

obs::RuntimeReport Cluster::runtime_report() const {
  const obs::RuntimeProfiler* rt = runtime();
  if (rt == nullptr) return {};
  obs::RuntimeReport rep = rt->make_report();
  if (intern_) {
    // Physical counters (benignly racy, scheduling-dependent): they belong
    // in this non-deterministic report, never in metrics_json().
    const auto is = intern_->stats();
    rep.has_intern = true;
    rep.intern_parses = is.parses;
    rep.intern_decode_hits = is.decode_hits;
    rep.intern_real_verifications = is.real_verifications;
    rep.intern_memo_hits = is.verdict_memo_hits;
    rep.intern_primed = is.verdicts_primed;
  }
  return rep;
}

std::string Cluster::runtime_report_json() const {
  if (runtime() == nullptr) return "{}";
  return obs::runtime_report_json(runtime_report());
}

bool Cluster::dump_runtime_report(const std::string& path) const {
  if (runtime() == nullptr) return false;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << runtime_report_json();
  return static_cast<bool>(out);
}

std::string Cluster::runtime_trace_json() const {
  const obs::RuntimeProfiler* rt = runtime();
  if (rt == nullptr) return "{}";
  return rt->trace_json(obs_ ? &obs_->tracer() : nullptr);
}

bool Cluster::dump_runtime_trace(const std::string& path) const {
  if (runtime() == nullptr) return false;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << runtime_trace_json();
  return static_cast<bool>(out);
}

obs::Journal* Cluster::journal() const {
  if (!obs_) return nullptr;
  // The causal scribe buffers compact records during the run; fold them into
  // the journal before anyone reads it (to_jsonl, audits, --critpath).
  sim_->network().flush_causal();
  return obs_->journal();
}

std::string Cluster::journal_jsonl() const {
  const obs::Journal* j = journal();
  return j ? j->to_jsonl() : std::string();
}

bool Cluster::dump_journal(const std::string& path) const {
  const obs::Journal* j = journal();
  return j && j->write_jsonl(path);
}

bool Cluster::stream_series(const std::string& path) {
  obs::TimeSeries* ts = series();
  return ts != nullptr && ts->open_stream(path);
}

std::string Cluster::series_jsonl() const {
  const obs::TimeSeries* ts = series();
  return ts ? ts->to_jsonl() : std::string();
}

bool Cluster::dump_series(const std::string& path) const {
  const obs::TimeSeries* ts = series();
  return ts != nullptr && ts->write_jsonl(path);
}

double Cluster::blocks_per_second(sim::Duration window) const {
  for (size_t i = 0; i < parties_.size(); ++i) {
    if (honest_[i] && parties_[i]) {
      return static_cast<double>(parties_[i]->committed_total()) / sim::to_sec(window);
    }
  }
  return 0.0;
}

}  // namespace icc::harness
