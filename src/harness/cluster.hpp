// Experiment harness: wire up n parties (honest / Byzantine / crashed) over
// a simulated network, run, and check the paper's invariants.
//
// Used by the integration tests, every bench binary and the examples, so
// that each experiment differs only in its declarative ClusterOptions.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "consensus/byzantine.hpp"
#include "consensus/icc0.hpp"
#include "gossip/gossip.hpp"
#include "obs/obs.hpp"
#include "pipeline/intern.hpp"
#include "sim/simulation.hpp"
#include "support/executor.hpp"

namespace icc::harness {

using consensus::CommittedBlock;
using consensus::Round;

enum class Protocol { kIcc0, kIcc1, kIcc2 };
enum class CryptoKind { kFast, kReal };

/// What a corrupt slot does.
struct Crashed {};
using CorruptBehavior = std::variant<Crashed, consensus::ByzantineBehavior>;

struct ClusterOptions {
  size_t n = 4;
  size_t t = 1;  ///< corruption bound used for thresholds (t < n/3)
  Protocol protocol = Protocol::kIcc0;
  CryptoKind crypto = CryptoKind::kFast;
  uint64_t seed = 1;

  sim::Duration delta_bnd = sim::msec(300);
  sim::Duration epsilon = sim::msec(0);
  size_t payload_size = 256;
  bool record_payloads = true;
  /// Keep per-block latency samples (latencies()). Soak drivers switch this
  /// off: a million-round run must not grow an unbounded sample vector.
  bool record_latencies = true;
  /// Bound each party's committed() history to the newest this many blocks
  /// (0 = unbounded). committed_total() still counts everything; safety
  /// checks compare the retained overlapping suffixes. Soak drivers set a
  /// small bound so RSS stays flat over millions of rounds.
  Round committed_history = 0;
  Round max_round = 0;
  Round prune_lag = 16;
  /// Worker threads for the run (engine party-parallel stepping + verifier
  /// batch slicing). 0 reads ICC_THREADS (default 1); 1 = fully sequential,
  /// no pool. Any value yields bit-identical results (DESIGN.md §6).
  size_t threads = 0;
  Round cup_interval = 0;   ///< catch-up packages; 0 disables
  Round lag_threshold = 8;  ///< rounds behind before a party requests a CUP
  consensus::PartyConfig::AdaptiveDelays adaptive;

  /// Network model factory; defaults to FixedDelay(10 ms).
  std::function<std::unique_ptr<sim::DelayModel>(size_t n, uint64_t seed)> delay_model;

  /// Gossip sub-layer tuning (ICC1 only).
  gossip::GossipConfig gossip;

  /// Ingress pipeline tuning (dedup / verification cache / batch verify).
  /// Defaults enable all stages; tests and benches flip them off to measure.
  pipeline::PipelineOptions pipeline;

  /// Cluster-shared artifact interning (DESIGN.md §7): honest parties share
  /// one decode per distinct wire payload and one real signature check per
  /// distinct (signer, message, signature) triple. Off = per-party fidelity
  /// mode (every party decodes and verifies on its own, as in real
  /// deployments where processes do not share memory). Either way the
  /// committed sequences, metrics and journal bytes are identical.
  bool intern = true;

  /// Telemetry (metrics + span tracing). Disabled by default; when enabled,
  /// probes are attached to honest parties and the network, and the cluster
  /// exposes metrics_json() / trace_json(). Enabling telemetry never changes
  /// protocol behaviour (probes are read-only; asserted by tests/obs).
  obs::ObsConfig obs;

  /// Corrupt slots: party index -> behaviour. Must have size <= t to match
  /// the protocol's fault assumption (not enforced — some experiments probe
  /// beyond-threshold behaviour deliberately).
  std::vector<std::pair<sim::PartyIndex, CorruptBehavior>> corrupt;

  /// Extra per-commit callback (e.g. benchmark statistics).
  std::function<void(sim::PartyIndex, const CommittedBlock&)> on_commit;

  /// Per-party payload builder (e.g. an smr::CommandQueue). Defaults to
  /// FixedSizePayload(payload_size).
  std::function<std::shared_ptr<consensus::PayloadBuilder>(sim::PartyIndex)>
      payload_factory;

  /// Fully custom process for a slot (returns nullptr to fall through to the
  /// normal honest/corrupt wiring). Lets tests inject arbitrary adversaries.
  std::function<std::unique_ptr<sim::Process>(sim::PartyIndex)> custom_process;
};

struct LatencySample {
  Round round;
  sim::Duration propose_to_commit;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);
  ~Cluster();

  void run_for(sim::Duration d);
  void run_until(sim::Time t);

  sim::Simulation& sim() { return *sim_; }
  crypto::CryptoProvider& crypto() { return *crypto_; }

  /// Honest party handles (null entries for corrupt slots implemented as
  /// CrashParty; Byzantine slots still expose their Icc0Party view).
  const std::vector<consensus::Icc0Party*>& parties() const { return parties_; }
  consensus::Icc0Party* party(size_t i) const { return parties_[i]; }
  bool is_honest(size_t i) const { return honest_[i]; }

  // --- invariants (paper Section 3.3 / Section 4) ---

  /// Safety: every pair of parties' outputs are prefix-compatible.
  /// Returns nullopt on success, a description on violation.
  std::optional<std::string> check_safety() const;

  /// Property P2: if any party holds a finalized round-k block, no party
  /// holds a different notarized round-k block.
  std::optional<std::string> check_p2() const;

  /// Property P1 (deadlock-freeness) proxy: every honest party reached at
  /// least `round` by now.
  std::optional<std::string> check_progress(Round round) const;

  // --- statistics ---
  size_t min_honest_committed() const;
  size_t max_honest_round() const;
  /// Commit latencies (proposal broadcast -> every honest party committed).
  const std::vector<LatencySample>& latencies() const { return latencies_; }
  double avg_latency_ms() const;
  /// Committed blocks per second of virtual time across the run, measured on
  /// the first honest party.
  double blocks_per_second(sim::Duration window) const;

  /// Ingress-pipeline counters summed over honest parties (decode/dedup).
  pipeline::PipelineStats pipeline_stats() const;
  /// Verification counters summed over honest parties (provider calls,
  /// cache hits, batch calls, ...).
  pipeline::Verifier::Stats verifier_stats() const;
  /// Cluster-shared intern store counters (parses, decode hits, real provider
  /// verifications, shared-verdict hits). Zeroes when interning is off.
  /// Deliberately NOT folded into metrics_json(): the real/hit split depends
  /// on cross-party arrival interleaving under multi-thread runs, and the
  /// journal/metrics byte-identity contract (DESIGN.md §6) must hold at any
  /// thread count. Benches read it directly (threads=1 for exact numbers).
  pipeline::InternStore::Stats intern_stats() const;

  // --- telemetry (ClusterOptions::obs.enabled) ---
  /// The run's telemetry sink; null when telemetry is disabled.
  obs::Obs* obs() { return obs_.get(); }
  /// Metrics snapshot as JSON. Folds the pipeline/verifier/network stats
  /// structs into the registry as gauges first (idempotent — gauges are
  /// last-write-wins), so one document carries every number the run
  /// produced. Returns "{}" when telemetry is disabled.
  std::string metrics_json();
  /// Chrome trace_event JSON of the span ring ("{}" when disabled).
  std::string trace_json() const;
  /// Write trace_json() to `path`; false when disabled or on I/O error.
  bool dump_trace(const std::string& path) const;

  // --- wall-clock runtime profiling (ClusterOptions::obs.runtime) ---
  /// The live profiler; null unless obs.enabled && obs.runtime. Its output
  /// is NON-DETERMINISTIC (obs/runtime.hpp) and never feeds metrics_json()
  /// or the journal.
  obs::RuntimeProfiler* runtime() const { return obs_ ? obs_->runtime() : nullptr; }
  /// Report of the run so far, with the intern store's physical counters
  /// folded in (labeled physical — scheduling-dependent). Call at a
  /// quiescent point (between runs). Meaningless when profiling is off.
  obs::RuntimeReport runtime_report() const;
  /// runtime_report() as an icc-runtime/v1 document; "{}" when off.
  std::string runtime_report_json() const;
  /// Write runtime_report_json() to `path`; false when off or on I/O error.
  bool dump_runtime_report(const std::string& path) const;
  /// Merged Chrome trace: wall-clock worker lanes next to the virtual-time
  /// tracer spans in one container. "{}" when profiling is off.
  std::string runtime_trace_json() const;
  bool dump_runtime_trace(const std::string& path) const;

  // --- flight recorder (ClusterOptions::obs.journal) ---
  /// The run's event journal; null unless obs.enabled && obs.journal. Meta
  /// (n, t, protocol, seed) is stamped at construction.
  obs::Journal* journal() const;
  /// Deterministic JSONL export; empty string when journaling is disabled.
  std::string journal_jsonl() const;
  /// Write journal_jsonl() to `path`; false when disabled or on I/O error.
  bool dump_journal(const std::string& path) const;

  // --- windowed time-series (ClusterOptions::obs.series) ---
  /// The run's longitudinal recorder; null unless obs.enabled && obs.series.
  /// Windows close at virtual-time boundaries (deterministic bytes at any
  /// thread count); obs.series_wall adds labeled non-deterministic wall
  /// lines. Meta (n, t, protocol, seed, corrupt slots) is stamped at
  /// construction.
  obs::TimeSeries* series() const { return obs_ ? obs_->series() : nullptr; }
  /// Open the append-only icc-series/v1 stream sink (call before running);
  /// false when the recorder is off or on I/O error.
  bool stream_series(const std::string& path);
  /// Decimated in-memory series as icc-series/v1 JSONL; "" when off.
  std::string series_jsonl() const;
  /// Write series_jsonl() to `path`; false when off or on I/O error.
  bool dump_series(const std::string& path) const;

 private:
  void record_propose(sim::PartyIndex self, Round round, const types::Hash& hash,
                      sim::Time now);
  void record_commit(sim::PartyIndex self, const CommittedBlock& block);

  ClusterOptions options_;
  std::unique_ptr<crypto::CryptoProvider> crypto_;
  std::unique_ptr<obs::Obs> obs_;  ///< null unless options.obs.enabled
  /// Cluster-shared intern store (null when options.intern is off). Declared
  /// before sim_: parties hold raw pointers into it.
  std::unique_ptr<pipeline::InternStore> intern_;
  /// Declared before sim_: parties and the engine hold raw pointers into the
  /// pool, so it must be destroyed after them.
  std::unique_ptr<support::Executor> executor_;  ///< null when threads <= 1
  std::unique_ptr<sim::Simulation> sim_;
  std::vector<consensus::Icc0Party*> parties_;
  std::vector<bool> honest_;
  size_t honest_count_ = 0;

  struct PendingLatency {
    sim::Time proposed_at = -1;
    size_t commits = 0;
  };
  std::map<std::pair<Round, types::Hash>, PendingLatency> pending_latency_;
  std::vector<LatencySample> latencies_;
};

}  // namespace icc::harness
