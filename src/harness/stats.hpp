// Small descriptive-statistics helpers for benches and tools.
//
// Summary keeps every sample (exact order statistics, O(n) memory, a sort
// per percentile query). For high-volume streams where bucket resolution is
// enough, record into an obs::Histogram instead — O(buckets) memory, O(log
// buckets) insert — or convert a finished Summary via to_histogram().
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"

namespace icc::harness {

class Summary {
 public:
  void add(double v) { values_.push_back(v); }
  template <typename It>
  void add(It begin, It end) {
    for (auto it = begin; it != end; ++it) add(static_cast<double>(*it));
  }

  size_t count() const { return values_.size(); }

  double mean() const {
    if (values_.empty()) return 0;
    double s = 0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  double stddev() const {
    if (values_.size() < 2) return 0;
    double m = mean(), s = 0;
    for (double v : values_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values_.size() - 1));
  }

  /// q in [0, 1]; linear interpolation between the two nearest order
  /// statistics (the "exclusive" method most plotting libraries use). The
  /// result is generally *not* one of the samples; use
  /// percentile_nearest_rank() when an actually-observed value is needed.
  double percentile(double q) const {
    if (values_.empty()) return 0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    double idx = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

  /// q in (0, 1]; classic nearest-rank definition — the smallest sample
  /// such that at least ceil(q * n) samples are <= it. Always returns an
  /// observed value.
  double percentile_nearest_rank(double q) const {
    if (values_.empty()) return 0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    auto rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank > 0) rank--;  // 1-based rank -> index (q = 0 maps to the min)
    return sorted[std::min(rank, sorted.size() - 1)];
  }

  double min() const {
    return values_.empty() ? 0 : *std::min_element(values_.begin(), values_.end());
  }
  double max() const {
    return values_.empty() ? 0 : *std::max_element(values_.begin(), values_.end());
  }

  /// Bucket the samples into an obs::Histogram (rounded toward zero) — the
  /// cheap hand-off when a bench wants to keep a distribution but drop the
  /// per-sample storage.
  obs::Histogram to_histogram(std::vector<int64_t> bounds) const {
    obs::Histogram h(std::move(bounds));
    for (double v : values_) h.record(static_cast<int64_t>(v));
    return h;
  }

 private:
  std::vector<double> values_;
};

}  // namespace icc::harness
