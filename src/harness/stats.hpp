// Small descriptive-statistics helpers for benches and tools.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

namespace icc::harness {

class Summary {
 public:
  void add(double v) { values_.push_back(v); }
  template <typename It>
  void add(It begin, It end) {
    for (auto it = begin; it != end; ++it) add(static_cast<double>(*it));
  }

  size_t count() const { return values_.size(); }

  double mean() const {
    if (values_.empty()) return 0;
    double s = 0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  double stddev() const {
    if (values_.size() < 2) return 0;
    double m = mean(), s = 0;
    for (double v : values_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values_.size() - 1));
  }

  /// q in [0, 1]; nearest-rank on a sorted copy.
  double percentile(double q) const {
    if (values_.empty()) return 0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    double idx = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(idx);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
  }

  double min() const {
    return values_.empty() ? 0 : *std::min_element(values_.begin(), values_.end());
  }
  double max() const {
    return values_.empty() ? 0 : *std::max_element(values_.begin(), values_.end());
  }

 private:
  std::vector<double> values_;
};

}  // namespace icc::harness
