#include "obs/audit.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "obs/metrics.hpp"  // json_escape

namespace icc::obs {

namespace {

// Invariant names, in report order. Every name appears in the report's
// "checks" object even at count zero — the report certifies coverage.
constexpr const char* kInvariants[] = {
    "unique-finalization",       "quorum-size",
    "final-implies-unique-notar", "beacon-unique",
    "no-conflicting-notar-share", "final-share-exclusive",
    "monotonic-commit",
};

std::string short_hash(const std::string& h) {
  return h.size() > 12 ? h.substr(0, 12) : h;
}

}  // namespace

AuditReport audit_journal(const std::vector<JournalEvent>& events, const JournalMeta& meta,
                          bool has_meta) {
  using namespace journal_type;

  AuditReport report;
  report.meta = meta;
  report.has_meta = has_meta;
  report.events = events.size();
  for (const char* inv : kInvariants) report.by_invariant[inv] = 0;

  auto flag = [&](const char* invariant, uint64_t round, std::string detail) {
    report.violations.push_back({invariant, round, std::move(detail)});
    report.by_invariant[invariant]++;
  };

  // --- single pass: index the history -------------------------------------
  std::set<uint32_t> parties;
  std::set<uint64_t> rounds;
  // round -> finalized hash -> earliest ts (from finalized + final_agg).
  std::map<uint64_t, std::map<std::string, int64_t>> finalized;
  // round -> notarized hash -> earliest aggregate ts.
  std::map<uint64_t, std::map<std::string, int64_t>> notarized;
  // round -> beacon value -> first recording party (uniqueness witness).
  std::map<uint64_t, std::map<std::string, uint32_t>> beacons;
  // (party, round, proposer) -> distinct notar-share hashes.
  std::map<std::tuple<uint32_t, uint64_t, uint32_t>, std::set<std::string>> notar_shares;
  // (party, round) -> all notar-share hashes (for final-share exclusivity).
  std::map<std::pair<uint32_t, uint64_t>, std::set<std::string>> notar_shares_by_round;
  // (party, round) -> final-share hashes.
  std::map<std::pair<uint32_t, uint64_t>, std::set<std::string>> final_shares;
  // party -> last committed round (monotonicity watermark).
  std::map<uint32_t, uint64_t> last_commit;
  // (round, hash) -> earliest propose/proposal sighting; round/hash-matched
  // share and aggregate minima for latency attribution.
  std::map<std::pair<uint64_t, std::string>, int64_t> propose_ts;
  std::map<std::pair<uint64_t, std::string>, int64_t> share_ts;

  auto keep_min = [](std::map<std::pair<uint64_t, std::string>, int64_t>& m,
                     uint64_t round, const std::string& hash, int64_t ts) {
    auto [it, fresh] = m.emplace(std::make_pair(round, hash), ts);
    if (!fresh && ts < it->second) it->second = ts;
  };

  for (const JournalEvent& ev : events) {
    if (ev.party != JournalEvent::kNoParty) parties.insert(ev.party);
    if (ev.round != 0) rounds.insert(ev.round);

    if (ev.type == kNotarAgg || ev.type == kFinalAgg) {
      // quorum-size: structural checks always; threshold/range checks need
      // the meta record (n, t). Empty signer sets mean the aggregate arrived
      // combined over the wire — signer recovery is crypto-provider-specific,
      // so those are latency witnesses only, never quorum evidence.
      if (!ev.signers.empty()) {
        std::set<uint32_t> distinct(ev.signers.begin(), ev.signers.end());
        if (distinct.size() != ev.signers.size())
          flag("quorum-size", ev.round,
               std::string(ev.type) + " for " + short_hash(ev.hash_hex()) +
                   " lists duplicate signers");
        if (has_meta) {
          if (distinct.size() < meta.quorum()) {
            std::ostringstream os;
            os << ev.type << " for " << short_hash(ev.hash_hex()) << " carries "
               << distinct.size() << " distinct signers, quorum is " << meta.quorum();
            flag("quorum-size", ev.round, os.str());
          }
          for (uint32_t s : distinct)
            if (s >= meta.n) {
              std::ostringstream os;
              os << ev.type << " for " << short_hash(ev.hash_hex()) << " lists signer " << s
                 << " outside 0.." << meta.n - 1;
              flag("quorum-size", ev.round, os.str());
            }
        }
      }
    }

    if (ev.type == kNotarAgg) {
      auto [it, fresh] = notarized[ev.round].emplace(ev.hash_hex(), ev.ts);
      if (!fresh && ev.ts < it->second) it->second = ev.ts;
    } else if (ev.type == kFinalAgg || ev.type == kFinalized) {
      auto [it, fresh] = finalized[ev.round].emplace(ev.hash_hex(), ev.ts);
      if (!fresh && ev.ts < it->second) it->second = ev.ts;
    } else if (ev.type == kBeacon) {
      beacons[ev.round].emplace(ev.hash_hex(), ev.party);
    } else if (ev.type == kNotarShare) {
      notar_shares[{ev.party, ev.round, ev.proposer}].insert(ev.hash_hex());
      notar_shares_by_round[{ev.party, ev.round}].insert(ev.hash_hex());
      keep_min(share_ts, ev.round, ev.hash_hex(), ev.ts);
    } else if (ev.type == kFinalShare) {
      final_shares[{ev.party, ev.round}].insert(ev.hash_hex());
    } else if (ev.type == kPropose || ev.type == kProposal) {
      keep_min(propose_ts, ev.round, ev.hash_hex(), ev.ts);
    } else if (ev.type == kCommit) {
      auto [it, fresh] = last_commit.emplace(ev.party, ev.round);
      if (!fresh) {
        if (ev.round <= it->second) {
          std::ostringstream os;
          os << "party " << ev.party << " committed round " << ev.round
             << " after round " << it->second;
          flag("monotonic-commit", ev.round, os.str());
        }
        it->second = ev.round;
      }
    }
  }

  report.parties_seen = parties.size();
  report.rounds_seen = rounds.size();
  report.finalized_rounds = finalized.size();

  // --- invariants over the indexes -----------------------------------------

  // unique-finalization: at most one finalized hash per round (Lemma 7).
  for (const auto& [round, hashes] : finalized) {
    if (hashes.size() > 1) {
      std::ostringstream os;
      os << hashes.size() << " distinct finalized blocks:";
      for (const auto& [h, ts] : hashes) os << " " << short_hash(h);
      flag("unique-finalization", round, os.str());
    }
  }

  // final-implies-unique-notar: a finalization in round r rules out any
  // other notarized round-r block (Lemmas 5-6 / property P2).
  for (const auto& [round, hashes] : finalized) {
    const std::string& fin = hashes.begin()->first;
    auto notar = notarized.find(round);
    if (notar == notarized.end()) continue;
    for (const auto& [h, ts] : notar->second)
      if (h != fin)
        flag("final-implies-unique-notar", round,
             "finalized " + short_hash(fin) + " but " + short_hash(h) +
                 " is also notarized");
  }

  // beacon-unique: the beacon is a unique-threshold scheme — every honest
  // party must combine the same round value.
  for (const auto& [round, values] : beacons) {
    if (values.size() > 1) {
      std::ostringstream os;
      os << values.size() << " distinct beacon values:";
      for (const auto& [v, party] : values)
        os << " " << short_hash(v) << "(party " << party << ")";
      flag("beacon-unique", round, os.str());
    }
  }

  // no-conflicting-notar-share: one (party, round, proposer) never signs two
  // different block hashes — Fig. 1 (c) disqualifies equivocating ranks
  // instead of signing both sides.
  for (const auto& [key, hashes] : notar_shares) {
    if (hashes.size() > 1) {
      auto [party, round, proposer] = key;
      std::ostringstream os;
      os << "party " << party << " signed " << hashes.size()
         << " different blocks by proposer " << proposer << ":";
      for (const auto& h : hashes) os << " " << short_hash(h);
      flag("no-conflicting-notar-share", round, os.str());
    }
  }

  // final-share-exclusive: Fig. 2 casts a finalization share for B only when
  // the party's round-r notarization shares are exactly {B} (N ⊆ {B}).
  for (const auto& [key, fins] : final_shares) {
    auto [party, round] = key;
    if (fins.size() > 1) {
      std::ostringstream os;
      os << "party " << party << " cast finalization shares for " << fins.size()
         << " blocks";
      flag("final-share-exclusive", round, os.str());
      continue;
    }
    const std::string& fin = *fins.begin();
    auto it = notar_shares_by_round.find(key);
    if (it == notar_shares_by_round.end()) continue;
    for (const auto& h : it->second)
      if (h != fin)
        flag("final-share-exclusive", round,
             "party " + std::to_string(party) + " finalization-shared " +
                 short_hash(fin) + " but notarization-shared " + short_hash(h));
  }

  // --- latency attribution (3δ decomposition, §1.1) ------------------------
  int64_t sum_ps = 0, sum_sq = 0, sum_qf = 0, sum_pf = 0;
  uint64_t complete = 0;
  for (const auto& [round, hashes] : finalized) {
    RoundLatency lat;
    lat.round = round;
    lat.hash = hashes.begin()->first;
    auto key = std::make_pair(round, lat.hash);
    lat.finalized_ts = hashes.begin()->second;
    if (auto it = propose_ts.find(key); it != propose_ts.end()) lat.propose_ts = it->second;
    if (auto it = share_ts.find(key); it != share_ts.end()) lat.first_share_ts = it->second;
    if (auto notar = notarized.find(round); notar != notarized.end())
      if (auto it = notar->second.find(lat.hash); it != notar->second.end())
        lat.quorum_ts = it->second;
    if (lat.complete()) {
      complete++;
      sum_ps += lat.first_share_ts - lat.propose_ts;
      sum_sq += lat.quorum_ts - lat.first_share_ts;
      sum_qf += lat.finalized_ts - lat.quorum_ts;
      sum_pf += lat.finalized_ts - lat.propose_ts;
    }
    report.round_latencies.push_back(std::move(lat));
  }
  if (complete) {
    report.mean_propose_to_share_us = sum_ps / static_cast<int64_t>(complete);
    report.mean_share_to_quorum_us = sum_sq / static_cast<int64_t>(complete);
    report.mean_quorum_to_final_us = sum_qf / static_cast<int64_t>(complete);
    report.mean_propose_to_final_us = sum_pf / static_cast<int64_t>(complete);
  }

  return report;
}

AuditReport audit_jsonl(const std::string& text) {
  Journal::Parsed parsed = Journal::parse_jsonl(text);
  return audit_journal(parsed.events, parsed.meta, parsed.has_meta);
}

std::string AuditReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"icc-audit/v1\",\"ok\":" << (ok() ? "true" : "false");
  os << ",\"meta\":{\"present\":" << (has_meta ? "true" : "false");
  if (has_meta) {
    os << ",\"n\":" << meta.n << ",\"t\":" << meta.t << ",\"quorum\":" << meta.quorum()
       << ",\"protocol\":\"" << json_escape(meta.protocol) << "\",\"seed\":" << meta.seed;
  }
  os << "},\"events\":" << events << ",\"parties\":" << parties_seen
     << ",\"rounds\":" << rounds_seen << ",\"finalized_rounds\":" << finalized_rounds;
  os << ",\"checks\":{";
  bool first = true;
  for (const auto& [name, count] : by_invariant) {
    if (!first) os << ",";
    first = false;
    os << "\"" << name << "\":" << count;
  }
  os << "},\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i) os << ",";
    os << "{\"invariant\":\"" << json_escape(violations[i].invariant)
       << "\",\"round\":" << violations[i].round << ",\"detail\":\""
       << json_escape(violations[i].detail) << "\"}";
  }
  os << "],\"latency\":{\"attributed_rounds\":";
  uint64_t complete = 0;
  for (const auto& lat : round_latencies)
    if (lat.complete()) complete++;
  os << complete << ",\"mean_propose_to_share_us\":" << mean_propose_to_share_us
     << ",\"mean_share_to_quorum_us\":" << mean_share_to_quorum_us
     << ",\"mean_quorum_to_final_us\":" << mean_quorum_to_final_us
     << ",\"mean_propose_to_final_us\":" << mean_propose_to_final_us << ",\"rounds\":[";
  for (size_t i = 0; i < round_latencies.size(); ++i) {
    const RoundLatency& lat = round_latencies[i];
    if (i) os << ",";
    os << "{\"round\":" << lat.round << ",\"hash\":\"" << json_escape(lat.hash)
       << "\",\"propose_ts\":" << lat.propose_ts
       << ",\"first_share_ts\":" << lat.first_share_ts
       << ",\"quorum_ts\":" << lat.quorum_ts << ",\"finalized_ts\":" << lat.finalized_ts
       << "}";
  }
  os << "]}}";
  return os.str();
}

std::string AuditReport::rounds_csv() const {
  std::ostringstream os;
  os << "round,hash,propose_ts,first_share_ts,quorum_ts,finalized_ts,propose_to_final_us\n";
  for (const RoundLatency& lat : round_latencies) {
    os << lat.round << "," << lat.hash << "," << lat.propose_ts << ","
       << lat.first_share_ts << "," << lat.quorum_ts << "," << lat.finalized_ts << ",";
    if (lat.propose_ts >= 0 && lat.finalized_ts >= 0)
      os << (lat.finalized_ts - lat.propose_ts);
    else
      os << -1;
    os << "\n";
  }
  return os.str();
}

}  // namespace icc::obs
