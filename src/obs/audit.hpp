// Offline safety auditor for flight-recorder journals.
//
// Replays a journal (obs/journal.hpp) and mechanically re-checks the safety
// and accountability invariants the paper proves, entirely from the recorded
// history — the point is that a third party holding only the journal can
// verify a run, independent of the live pool state. Invariant-to-lemma map
// (paper: Internet Computer Consensus, §3.3/§4; full table in DESIGN.md §5):
//
//   unique-finalization       At most one finalized block hash per round
//                             (Theorem, via Lemma 7: two finalized round-k
//                             blocks would need two n-t quorums intersecting
//                             in an honest party that signed both).
//   quorum-size               Every recorded quorum aggregation lists >= n-t
//                             distinct in-range signers (the definition of a
//                             notarization/finalization, §3.2).
//   final-implies-unique-notar  A finalization in round r means no other
//                             round-r block is notarized (Property P2 /
//                             Lemmas 5-6 — the basis of safety).
//   beacon-unique             One beacon value per round (S_beacon is a
//                             (t, t+1, n) *unique* threshold scheme, §3.2).
//   no-conflicting-notar-share  No party casts notarization shares for two
//                             different blocks of the same (round, proposer)
//                             — an honest party disqualifies an equivocating
//                             rank instead (Fig. 1 clause (c)).
//   final-share-exclusive     A party that cast a finalization share for B
//                             in round r cast no round-r notarization share
//                             for any other block (Fig. 2: N ⊆ {B}).
//   monotonic-commit          Each party's committed rounds strictly
//                             increase (atomic-broadcast output order).
//
// The auditor also attributes each finalized round's latency to phases —
// propose → first share → quorum → finalized — which is exactly the paper's
// 3δ latency decomposition (§1.1): each phase is one network hop ≈ δ on the
// honest fast path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/journal.hpp"

namespace icc::obs {

struct AuditViolation {
  std::string invariant;  ///< one of the names above
  uint64_t round = 0;
  std::string detail;     ///< human-readable specifics
};

/// Per-finalized-round phase attribution (virtual µs; -1 = event missing,
/// e.g. the journal was truncated or the round finalized via catch-up).
struct RoundLatency {
  uint64_t round = 0;
  std::string hash;
  int64_t propose_ts = -1;      ///< earliest propose/proposal sighting
  int64_t first_share_ts = -1;  ///< earliest notarization share cast
  int64_t quorum_ts = -1;       ///< earliest notarization aggregate
  int64_t finalized_ts = -1;    ///< earliest finalized record
  bool complete() const {
    return propose_ts >= 0 && first_share_ts >= 0 && quorum_ts >= 0 && finalized_ts >= 0;
  }
};

struct AuditReport {
  JournalMeta meta;
  bool has_meta = false;

  uint64_t events = 0;
  uint64_t parties_seen = 0;
  uint64_t rounds_seen = 0;      ///< distinct rounds with any event
  uint64_t finalized_rounds = 0;

  std::vector<AuditViolation> violations;
  /// Violation count per invariant name (zero-count invariants included, so
  /// the report certifies what was checked, not just what failed).
  std::map<std::string, uint64_t> by_invariant;

  std::vector<RoundLatency> round_latencies;  ///< ascending round order
  /// Mean per-phase µs over rounds with complete attribution (0 if none).
  int64_t mean_propose_to_share_us = 0;
  int64_t mean_share_to_quorum_us = 0;
  int64_t mean_quorum_to_final_us = 0;
  int64_t mean_propose_to_final_us = 0;

  bool ok() const { return violations.empty(); }

  /// Machine-readable run report (single JSON object, deterministic).
  std::string to_json() const;
  /// Per-round time series: round,hash,propose_ts,first_share_ts,quorum_ts,
  /// finalized_ts,propose_to_final_us — one CSV row per finalized round.
  std::string rounds_csv() const;
};

/// Run every invariant over `events`. `meta` supplies n and t (quorum) —
/// without a meta record the quorum-size check degrades to structural
/// checks only (distinctness, signer range unchecked), and says so in the
/// report.
AuditReport audit_journal(const std::vector<JournalEvent>& events, const JournalMeta& meta,
                          bool has_meta);

/// Convenience: parse a JSONL document then audit it.
AuditReport audit_jsonl(const std::string& text);

}  // namespace icc::obs
