#include "obs/causal.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"  // json_escape
#include "obs/obs.hpp"
#include "support/defer.hpp"
#include "support/fingerprint.hpp"

namespace icc::obs {

namespace {

using journal_type::kGossipAdvert;
using journal_type::kGossipDeliver;
using journal_type::kGossipRequest;
using journal_type::kPropose;
using journal_type::kRecv;
using journal_type::kRoundEnter;
using journal_type::kSend;

bool is_transfer(const JournalEvent& e) { return e.type == kSend || e.type == kRecv; }

bool same_hash(const JournalEvent& a, const JournalEvent& b) {
  return a.hash_len != 0 && a.hash_len == b.hash_len &&
         std::memcmp(a.hash.data(), b.hash.data(), a.hash_len) == 0;
}

int64_t percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(sorted.size()) + 0.5);
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

LatencyStat latency_stat(std::vector<int64_t> values) {
  LatencyStat s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.p50 = percentile(values, 0.50);
  s.p90 = percentile(values, 0.90);
  s.p99 = percentile(values, 0.99);
  s.max = values.back();
  double sum = 0;
  for (int64_t v : values) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

const char* kind_name(PathSegment::Kind k) {
  switch (k) {
    case PathSegment::Kind::kNetwork: return "network";
    case PathSegment::Kind::kQueue: return "queue";
    case PathSegment::Kind::kCrypto: return "crypto";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// CausalScribe
// ---------------------------------------------------------------------------

void CausalScribe::attach(Obs* obs, size_t n) {
  journal_ = (obs && obs->config().journal_causal) ? obs->journal() : nullptr;
  n_ = n;
  link_seq_.assign(n * n, 0);
  flush_seq_.assign(n * n, 0);
  flush_delivered_.assign(n, 0);
  fp_payload_.assign(n, nullptr);
  fp_cache_.assign(n, 0);
  buffer_.clear();
  if (journal_) {
    // The buffer can hold at most `capacity` records (reserve_external gates
    // every push), so one up-front reservation removes every realloc copy
    // from the timed path. Clamped: pages are only committed when touched,
    // but an absurd user-set capacity should not reserve terabytes.
    buffer_.reserve(std::min<size_t>(journal_->capacity(), size_t{1} << 22));
  }
}

namespace {

/// Edge-id fingerprint, shared with the artifact intern store. Edge
/// uniqueness never depends on it (seq is the per-link message index); the
/// fingerprint only ties the edge to its payload content.
using support::fingerprint64;

}  // namespace

CausalEdge CausalScribe::on_send(uint32_t from, uint32_t to,
                                 const std::shared_ptr<const Bytes>& payload,
                                 int64_t now) {
  CausalEdge edge;
  if (!journal_) return edge;
  // Edge identity is computed synchronously (the caller needs it now): the
  // fingerprint cache and the link-seq row are indexed by `from`, so under
  // parallel execution each is touched only by its owner's events.
  if (payload != fp_payload_[from]) {
    fp_cache_[from] = fingerprint64(payload->data(), payload->size());
    fp_payload_[from] = payload;
  }
  edge.fp = fp_cache_[from];
  edge.seq = ++link_seq_[from * n_ + to];
  // The capacity reservation and the buffer push mutate shared state; defer
  // them so the reservation's order key (journal size at reserve time) is
  // taken at the canonical sequential point.
  const uint32_t size = static_cast<uint32_t>(payload->size());
  auto record = [this, now, fp = edge.fp, size, from, to] {
    if (!journal_->reserve_external()) return;
    buffer_.push_back(Rec{now, fp, static_cast<uint32_t>(journal_->size()), size,
                          static_cast<uint16_t>(from), static_cast<uint16_t>(to), 0});
  };
  if (!support::DeferQueue::maybe_defer(record)) record();
  return edge;
}

void CausalScribe::on_recv(uint32_t from, uint32_t to, const CausalEdge& edge,
                           int64_t now) {
  if (!journal_) return;
  auto record = [this, now, fp = edge.fp, seq = edge.seq, from, to] {
    if (!journal_->reserve_external()) return;
    buffer_.push_back(Rec{now, fp, static_cast<uint32_t>(journal_->size()),
                          static_cast<uint32_t>(seq), static_cast<uint16_t>(to),
                          static_cast<uint16_t>(from), 1});
  };
  if (!support::DeferQueue::maybe_defer(record)) record();
}

void CausalScribe::flush() {
  if (!journal_ || buffer_.empty()) return;
  std::vector<std::pair<uint64_t, JournalEvent>> evs;
  evs.reserve(buffer_.size());
  for (const Rec& r : buffer_) {
    JournalEvent ev;
    ev.ts = r.ts;
    ev.party = r.party;
    ev.peer = r.peer;
    ev.set_hash(reinterpret_cast<const uint8_t*>(&r.fp), kEdgeHashLen);
    if (r.recv) {
      ev.type = journal_type::kRecv;
      ev.edge = r.value;  // matched send's seq, captured at delivery
      ev.value = static_cast<int64_t>(++flush_delivered_[r.party]);
    } else {
      ev.type = journal_type::kSend;
      ev.edge = ++flush_seq_[r.party * n_ + r.peer];
      ev.value = static_cast<int64_t>(r.value);  // payload size
    }
    evs.emplace_back(r.order, std::move(ev));
  }
  buffer_.clear();
  journal_->merge_external(std::move(evs));
}

// ---------------------------------------------------------------------------
// CritPathReport
// ---------------------------------------------------------------------------

int CritPathReport::expected_hops(const std::string& protocol) {
  if (protocol == "icc0" || protocol == "icc1") return 3;
  if (protocol == "icc2") return 4;
  return -1;
}

bool CritPathReport::check_hops(int expected, std::string* violation) const {
  if (!error.empty()) {
    if (violation) *violation = error;
    return false;
  }
  if (rounds_complete == 0) {
    if (violation) *violation = "no complete rounds to check";
    return false;
  }
  for (const RoundPath& rp : rounds) {
    if (!rp.complete) continue;
    if (rp.hops != expected) {
      if (violation) {
        std::ostringstream os;
        os << "round " << rp.round << ": " << rp.hops << " hops, expected " << expected;
        *violation = os.str();
      }
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// CausalAnalyzer
// ---------------------------------------------------------------------------

CausalAnalyzer::CausalAnalyzer(Journal::Parsed parsed) : parsed_(std::move(parsed)) {
  report_.meta = parsed_.meta;
  report_.has_meta = parsed_.has_meta;
  report_.truncated = parsed_.has_meta && parsed_.meta.dropped > 0;
  index();
  validate();
  if (report_.error.empty()) analyze();
}

void CausalAnalyzer::index() {
  const auto& ev = parsed_.events;
  uint32_t max_party = 0;
  for (const auto& e : ev)
    if (e.party != JournalEvent::kNoParty && e.party > max_party) max_party = e.party;
  party_events_.assign(static_cast<size_t>(max_party) + 1, {});
  party_pos_.assign(ev.size(), SIZE_MAX);
  for (size_t gi = 0; gi < ev.size(); ++gi) {
    if (ev[gi].party == JournalEvent::kNoParty) continue;
    party_pos_[gi] = party_events_[ev[gi].party].size();
    party_events_[ev[gi].party].push_back(gi);
  }
  for (size_t gi = 0; gi < ev.size(); ++gi) {
    if (ev[gi].type != kSend) continue;
    send_by_edge_.emplace(
        std::make_tuple(ev[gi].party, ev[gi].peer, ev[gi].hash, ev[gi].edge), gi);
  }
}

void CausalAnalyzer::validate() {
  const auto& ev = parsed_.events;
  bool any_edges = !send_by_edge_.empty();
  std::vector<int64_t> expected_index(party_events_.size(), 0);
  std::ostringstream err;

  for (size_t gi = 0; gi < ev.size(); ++gi) {
    const JournalEvent& e = ev[gi];
    if (e.type == kRecv) any_edges = true;
    if (e.type != kRecv) continue;

    auto it = send_by_edge_.find(std::make_tuple(e.peer, e.party, e.hash, e.edge));
    if (it == send_by_edge_.end()) {
      if (!report_.truncated) {
        err << "causal-missing-send: recv at party " << e.party << " ts " << e.ts
            << " (from " << e.peer << ", edge " << e.edge
            << ") has no matching send event";
        report_.error = err.str();
        return;
      }
    } else {
      if (ev[it->second].ts > e.ts && !report_.truncated) {
        err << "causal-time-travel: recv at party " << e.party << " ts " << e.ts
            << " precedes its send (ts " << ev[it->second].ts << ")";
        report_.error = err.str();
        return;
      }
      recv_to_send_.emplace(gi, it->second);
    }

    // Delivery indices are 1-based and contiguous per receiver; a deleted
    // recv line leaves a gap here even when other receptions share its
    // timestamp (fixed-delay runs deliver whole quorums at one instant).
    if (!report_.truncated && e.party < expected_index.size()) {
      int64_t want = ++expected_index[e.party];
      if (e.value != want) {
        err << "causal-missing-recv: party " << e.party << " delivery index "
            << (e.value == JournalEvent::kNoValue ? -1 : e.value) << " at ts " << e.ts
            << ", expected " << want << " (recv event missing or reordered)";
        report_.error = err.str();
        return;
      }
    }
  }

  if (!any_edges) {
    report_.error =
        "causal-no-edges: journal has no send/recv layer (icc-journal/v1?); "
        "re-record with causal tracing enabled";
  }
}

RoundPath CausalAnalyzer::walk_round(uint64_t round, size_t finalized_gi) {
  const auto& ev = parsed_.events;
  RoundPath rp;
  rp.round = round;
  rp.finalizer = ev[finalized_gi].party;
  rp.finalized_ts = ev[finalized_gi].ts;
  rp.path_events.push_back(finalized_gi);

  size_t cur = finalized_gi;
  // Index into rp.segments of the last network segment whose sender-side
  // protocol anchor is still unknown (patched when the walk lands there).
  size_t pending_from = SIZE_MAX;

  for (int steps = 0; steps < 512; ++steps) {
    const uint32_t p = ev[cur].party;
    const int64_t ts = ev[cur].ts;

    // One activation = contiguous same-party, same-timestamp run; it starts
    // at its gating recv (deliveries) or has none (timers, self-delivery).
    size_t run_start = cur;
    size_t anchor = is_transfer(ev[cur]) ? SIZE_MAX : cur;
    size_t gating = SIZE_MAX, terminator = SIZE_MAX;
    for (size_t gi = cur; gi-- > 0;) {
      const JournalEvent& e = ev[gi];
      if (e.party != p || e.ts != ts) break;
      if (e.type == kPropose && e.round == round) {
        terminator = gi;
        break;
      }
      if (e.type == kRecv) {
        gating = gi;
        break;
      }
      run_start = gi;
      // The earliest protocol event of the activation anchors incoming
      // edges (sends interleave with protocol events and are skipped).
      if (!is_transfer(e)) anchor = gi;
    }
    if (pending_from != SIZE_MAX && anchor != SIZE_MAX) {
      rp.segments[pending_from].from_event = anchor;
      pending_from = SIZE_MAX;
    }
    if (anchor != SIZE_MAX && anchor != cur) rp.path_events.push_back(anchor);

    if (terminator != SIZE_MAX) {
      if (pending_from != SIZE_MAX) {
        rp.segments[pending_from].from_event = terminator;
        pending_from = SIZE_MAX;
      }
      rp.proposer = ev[terminator].party;
      rp.propose_ts = ev[terminator].ts;
      rp.complete = true;
      rp.path_events.push_back(terminator);
      break;
    }

    if (gating != SIZE_MAX) {
      auto it = recv_to_send_.find(gating);
      if (it == recv_to_send_.end()) break;  // truncated journal: stop here
      const size_t sgi = it->second;
      PathSegment seg;
      seg.kind = PathSegment::Kind::kNetwork;
      seg.from = ev[sgi].party;
      seg.to = p;
      seg.start = ev[sgi].ts;
      seg.end = ev[gating].ts;
      seg.label = anchor != SIZE_MAX ? ev[anchor].type : "deliver";
      seg.to_event = anchor;
      rp.segments.push_back(seg);
      pending_from = rp.segments.size() - 1;
      rp.path_events.push_back(gating);
      rp.path_events.push_back(sgi);
      cur = sgi;
      continue;
    }

    // No gating recv: a timer (or self-delivery) activation. Bridge the gap
    // to the nearest earlier same-party cause — a gossip event for the same
    // artifact (pull jitter/retry), or the round's nearest protocol event
    // (clause timers are armed at round entry) — and book it as queue time.
    size_t pred = SIZE_MAX;
    const char* qlabel = "timer";
    const JournalEvent& ref = ev[anchor != SIZE_MAX ? anchor : run_start];
    if (party_pos_[run_start] != SIZE_MAX) {
      const auto& mine = party_events_[p];
      for (size_t k = party_pos_[run_start]; k-- > 0;) {
        const JournalEvent& e = ev[mine[k]];
        if (is_transfer(e)) continue;
        if ((e.type == kGossipAdvert || e.type == kGossipRequest ||
             e.type == kGossipDeliver) &&
            same_hash(e, ref)) {
          pred = mine[k];
          qlabel = "gossip_wait";
          break;
        }
        if (e.round == round) {
          pred = mine[k];
          break;
        }
      }
    }
    if (pred == SIZE_MAX) break;  // origin unrecorded (corrupt leader, truncation)

    PathSegment seg;
    seg.kind = PathSegment::Kind::kQueue;
    seg.from = p;
    seg.to = p;
    seg.start = ev[pred].ts;
    seg.end = ts;
    seg.label = qlabel;
    seg.from_event = pred;
    seg.to_event = anchor;
    rp.segments.push_back(seg);
    rp.path_events.push_back(pred);
    if (ev[pred].type == kPropose && ev[pred].round == round) {
      rp.proposer = ev[pred].party;
      rp.propose_ts = ev[pred].ts;
      rp.complete = true;
      break;
    }
    if (ev[pred].type == kRoundEnter) break;  // path origin predates propose
    cur = pred;
  }

  std::reverse(rp.segments.begin(), rp.segments.end());
  for (const PathSegment& s : rp.segments) {
    const int64_t d = s.end - s.start;
    switch (s.kind) {
      case PathSegment::Kind::kNetwork:
        rp.hops++;
        rp.network_us += d;
        break;
      case PathSegment::Kind::kQueue: rp.queue_us += d; break;
      case PathSegment::Kind::kCrypto: rp.crypto_us += d; break;
    }
  }
  if (!rp.complete && !rp.segments.empty()) rp.propose_ts = rp.segments.front().start;
  return rp;
}

void CausalAnalyzer::analyze() {
  const auto& ev = parsed_.events;
  // First `finalized` per round, in journal (= virtual-time) order.
  std::map<uint64_t, size_t> first_finalized;
  for (size_t gi = 0; gi < ev.size(); ++gi)
    if (ev[gi].type == journal_type::kFinalized && ev[gi].round != 0)
      first_finalized.emplace(ev[gi].round, gi);

  std::map<std::pair<uint32_t, uint32_t>, EdgeStat> links;
  std::vector<int64_t> totals, networks, queues, cryptos;
  double net_share = 0, queue_share = 0, crypto_share = 0;

  for (const auto& [round, gi] : first_finalized) {
    RoundPath rp = walk_round(round, gi);
    report_.rounds_analyzed++;
    if (rp.complete) {
      report_.rounds_complete++;
      report_.hop_histogram[rp.hops]++;
      const int64_t total = rp.finalized_ts - rp.propose_ts;
      totals.push_back(total);
      networks.push_back(rp.network_us);
      queues.push_back(rp.queue_us);
      cryptos.push_back(rp.crypto_us);
      if (total > 0) {
        net_share += static_cast<double>(rp.network_us) / static_cast<double>(total);
        queue_share += static_cast<double>(rp.queue_us) / static_cast<double>(total);
        crypto_share += static_cast<double>(rp.crypto_us) / static_cast<double>(total);
      }
      for (const PathSegment& s : rp.segments) {
        if (s.kind != PathSegment::Kind::kNetwork) continue;
        EdgeStat& es = links[{s.from, s.to}];
        es.from = s.from;
        es.to = s.to;
        es.count++;
        es.total_us += s.end - s.start;
        es.max_us = std::max(es.max_us, s.end - s.start);
      }
    }
    report_.rounds.push_back(std::move(rp));
  }

  report_.total = latency_stat(totals);
  report_.network = latency_stat(networks);
  report_.queue = latency_stat(queues);
  report_.crypto = latency_stat(cryptos);
  if (report_.rounds_complete > 0) {
    const double n = static_cast<double>(report_.rounds_complete);
    report_.network_share = net_share / n;
    report_.queue_share = queue_share / n;
    report_.crypto_share = crypto_share / n;
  }
  for (const auto& [key, es] : links) report_.stragglers.push_back(es);
  std::sort(report_.stragglers.begin(), report_.stragglers.end(),
            [](const EdgeStat& a, const EdgeStat& b) {
              if (a.total_us != b.total_us) return a.total_us > b.total_us;
              return std::make_pair(a.from, a.to) < std::make_pair(b.from, b.to);
            });
}

// ---------------------------------------------------------------------------
// Report serialization
// ---------------------------------------------------------------------------

namespace {

void latency_json(std::ostringstream& os, const char* name, const LatencyStat& s) {
  os << "\"" << name << "\":{\"p50\":" << s.p50 << ",\"p90\":" << s.p90
     << ",\"p99\":" << s.p99 << ",\"max\":" << s.max << ",\"mean\":" << s.mean << "}";
}

}  // namespace

std::string CritPathReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"icc-critpath/v1\"";
  if (has_meta) {
    os << ",\"protocol\":\"" << json_escape(meta.protocol) << "\",\"n\":" << meta.n
       << ",\"t\":" << meta.t << ",\"seed\":" << meta.seed << ",\"journal_schema\":\""
       << json_escape(meta.schema) << "\"";
  }
  if (!error.empty()) os << ",\"error\":\"" << json_escape(error) << "\"";
  if (truncated) os << ",\"truncated\":true";
  os << ",\"rounds_analyzed\":" << rounds_analyzed
     << ",\"rounds_complete\":" << rounds_complete;

  os << ",\"hop_histogram\":{";
  bool first = true;
  for (const auto& [hops, count] : hop_histogram) {
    if (!first) os << ",";
    first = false;
    os << "\"" << hops << "\":" << count;
  }
  os << "}";

  os << ",\"latency_us\":{";
  latency_json(os, "total", total);
  os << ",";
  latency_json(os, "network", network);
  os << ",";
  latency_json(os, "queue", queue);
  os << ",";
  latency_json(os, "crypto", crypto);
  os << ",\"share\":{\"network\":" << network_share << ",\"queue\":" << queue_share
     << ",\"crypto\":" << crypto_share << "}}";

  os << ",\"stragglers\":[";
  for (size_t i = 0; i < stragglers.size(); ++i) {
    const EdgeStat& e = stragglers[i];
    if (i) os << ",";
    os << "{\"from\":" << e.from << ",\"to\":" << e.to << ",\"count\":" << e.count
       << ",\"total_us\":" << e.total_us << ",\"max_us\":" << e.max_us << "}";
  }
  os << "]";

  os << ",\"rounds\":[";
  for (size_t i = 0; i < rounds.size(); ++i) {
    const RoundPath& rp = rounds[i];
    if (i) os << ",";
    os << "{\"round\":" << rp.round;
    if (rp.proposer != JournalEvent::kNoParty) os << ",\"proposer\":" << rp.proposer;
    if (rp.finalizer != JournalEvent::kNoParty) os << ",\"finalizer\":" << rp.finalizer;
    os << ",\"propose_ts\":" << rp.propose_ts << ",\"finalized_ts\":" << rp.finalized_ts
       << ",\"total_us\":" << (rp.finalized_ts - rp.propose_ts) << ",\"hops\":" << rp.hops
       << ",\"network_us\":" << rp.network_us << ",\"queue_us\":" << rp.queue_us
       << ",\"crypto_us\":" << rp.crypto_us
       << ",\"complete\":" << (rp.complete ? "true" : "false") << ",\"segments\":[";
    for (size_t j = 0; j < rp.segments.size(); ++j) {
      const PathSegment& s = rp.segments[j];
      if (j) os << ",";
      os << "{\"kind\":\"" << kind_name(s.kind) << "\",\"from\":" << s.from
         << ",\"to\":" << s.to << ",\"start\":" << s.start << ",\"end\":" << s.end
         << ",\"us\":" << (s.end - s.start) << ",\"label\":\""
         << json_escape(s.label ? s.label : "") << "\"}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Graphviz export
// ---------------------------------------------------------------------------

std::string CausalAnalyzer::to_dot(uint64_t round) const {
  const auto& ev = parsed_.events;
  const RoundPath* rp = nullptr;
  for (const RoundPath& r : report_.rounds)
    if (r.round == round) rp = &r;

  // Nodes: this round's protocol events (transfers become edges, not nodes),
  // plus everything the critical path touches.
  std::vector<char> is_node(ev.size(), 0);
  for (size_t gi = 0; gi < ev.size(); ++gi)
    if (!is_transfer(ev[gi]) && ev[gi].round == round &&
        ev[gi].party != JournalEvent::kNoParty)
      is_node[gi] = 1;
  std::vector<char> on_path(ev.size(), 0);
  if (rp) {
    for (size_t gi : rp->path_events) {
      on_path[gi] = 1;
      if (!is_transfer(ev[gi]) && ev[gi].party != JournalEvent::kNoParty)
        is_node[gi] = 1;
    }
  }

  std::ostringstream os;
  os << "digraph round_" << round << " {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, fontsize=9, fontname=\"monospace\"];\n"
     << "  edge [fontsize=8, fontname=\"monospace\"];\n";

  // Per-party clusters, program-order chains.
  for (size_t p = 0; p < party_events_.size(); ++p) {
    std::vector<size_t> nodes;
    for (size_t gi : party_events_[p])
      if (is_node[gi]) nodes.push_back(gi);
    if (nodes.empty()) continue;
    os << "  subgraph cluster_p" << p << " {\n"
       << "    label=\"party " << p << "\"; color=gray80;\n";
    for (size_t gi : nodes) {
      os << "    e" << gi << " [label=\"" << ev[gi].type;
      if (ev[gi].has_detail()) os << "/" << ev[gi].detail;
      os << "\\n@" << ev[gi].ts << "us\"";
      if (on_path[gi]) os << ", color=red, penwidth=2";
      os << "];\n";
    }
    for (size_t i = 1; i < nodes.size(); ++i)
      os << "    e" << nodes[i - 1] << " -> e" << nodes[i]
         << " [color=gray70, arrowsize=0.5];\n";
    os << "  }\n";
  }

  // Derived delivery edges: a recv whose activation contains a round event
  // happened-before that event; anchor the sender side at its nearest
  // preceding protocol event for this round.
  for (size_t gi = 0; gi < ev.size(); ++gi) {
    if (ev[gi].type != kRecv) continue;
    auto it = recv_to_send_.find(gi);
    if (it == recv_to_send_.end()) continue;
    // Consumer: first round-`round` protocol node in the recv's activation.
    size_t consumer = SIZE_MAX;
    for (size_t j = gi + 1; j < ev.size(); ++j) {
      if (ev[j].party != ev[gi].party || ev[j].ts != ev[gi].ts || ev[j].type == kRecv)
        break;
      if (is_node[j]) {
        consumer = j;
        break;
      }
    }
    if (consumer == SIZE_MAX) continue;
    // Sender anchor: nearest earlier protocol node at the sender.
    const size_t sgi = it->second;
    size_t anchor = SIZE_MAX;
    if (party_pos_[sgi] != SIZE_MAX) {
      const auto& mine = party_events_[ev[sgi].party];
      for (size_t k = party_pos_[sgi]; k-- > 0;) {
        if (is_node[mine[k]]) {
          anchor = mine[k];
          break;
        }
        if (ev[mine[k]].ts < ev[sgi].ts && !is_transfer(ev[mine[k]])) break;
      }
    }
    if (anchor == SIZE_MAX) continue;
    const bool path_edge = on_path[gi] && on_path[sgi];
    os << "  e" << anchor << " -> e" << consumer << " [label=\""
       << (ev[gi].ts - ev[sgi].ts) << "us\"";
    if (path_edge)
      os << ", color=red, penwidth=2";
    else
      os << ", color=gray55, style=dashed, arrowsize=0.6";
    os << "];\n";
  }

  // Queue segments on the path (timer / gossip-jitter waits).
  if (rp) {
    for (const PathSegment& s : rp->segments) {
      if (s.kind != PathSegment::Kind::kQueue) continue;
      if (s.from_event == SIZE_MAX || s.to_event == SIZE_MAX) continue;
      if (!is_node[s.from_event] || !is_node[s.to_event]) continue;
      os << "  e" << s.from_event << " -> e" << s.to_event << " [label=\"" << s.label
         << " " << (s.end - s.start) << "us\", color=red, style=dotted, penwidth=2];\n";
    }
  }

  os << "}\n";
  return os.str();
}

CritPathReport analyze_journal_jsonl(const std::string& text) {
  CausalAnalyzer analyzer(Journal::parse_jsonl(text));
  return analyzer.report();
}

}  // namespace icc::obs
