// Cross-party causal tracing: happens-before edges and critical-path
// analysis of commit latency.
//
// The paper's latency claims are *path* claims: ICC0/ICC1 commit in 3δ and
// ICC2 in 4δ because one specific chain of messages — propose → notarization
// shares → finalization shares (plus the erasure-coded echo hop in ICC2) —
// crosses the network a fixed number of times (§1.1, §5). The per-party
// journal (journal.hpp) records what each party did but not *why now*: it
// has no edges between parties, so a slow round cannot be attributed to the
// hop that actually stalled it. This module adds that causal layer:
//
//   * CausalScribe — recorder. Every wire transfer gets a deterministic
//     edge id (sender, receiver, payload fingerprint, per-link seq) journaled as
//     a `send` event at dispatch and a `recv` event at delivery, stamped
//     with the simulator's virtual times. The pair reconstructs the exact
//     network delay of every hop from the journal alone (schema
//     icc-journal/v2; v1 journals still parse and audit).
//
//   * CausalAnalyzer — offline. Rebuilds the cross-party happens-before DAG
//     from a journal and, per finalized round, walks backward from the first
//     `finalized` event to the leader's `propose`, attributing every segment
//     of the critical path to network delay, crypto/verification time, or
//     queueing (timer waits, gossip pull jitter). Emits a per-round report,
//     a hop-count histogram (the structural form of the 3δ/4δ claims), a
//     per-link straggler ranking, and a percentile decomposition of commit
//     latency; `to_dot` renders one round's DAG with the critical path
//     highlighted.
//
// The walk leans on two journal properties: append order equals execution
// order (one global journal, callbacks are atomic), and every event inside
// one delivery activation carries the same virtual timestamp. An activation
// is therefore a contiguous same-party, same-timestamp run starting at its
// `recv`; the consuming protocol events follow it directly. Activations
// with no gating recv (timers, self-deliveries) are bridged by a documented
// gap rule: the nearest earlier same-party event for the same artifact or
// the same round, attributed as queue time.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/journal.hpp"
#include "support/bytes.hpp"

namespace icc::obs {

class Obs;

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Identity of one wire transfer, computed at send time and replayed at
/// delivery so both journal events agree byte-for-byte. `seq` is the
/// 1-based message index on the (sender, receiver) link, so the id is
/// unique even across retransmissions of the same artifact.
///
/// The fingerprint is a fast 64-bit payload digest, NOT a cryptographic
/// one: it runs once per wire message, inside the F-OBS < 5% telemetry
/// budget (sha256 here measured +37% on the gate workload). Matching is
/// exact regardless of collisions because the recv side replays the edge
/// struct computed at send time and seq counters are monotonic. Kept to 16
/// bytes — the network captures one per in-flight message.
struct CausalEdge {
  uint64_t fp = 0;   ///< payload fingerprint (the journal `hash` field)
  uint64_t seq = 0;
};

/// Journaled length of the edge fingerprint (16 hex chars in the JSONL).
inline constexpr size_t kEdgeHashLen = 8;

/// Network-side scribe following the null-probe pattern: one pointer check
/// per wire message when the causal layer is off. Owned by sim::Network,
/// which calls on_send when a message is dispatched and on_recv just before
/// the receiving process runs.
///
/// Recording is two-phase to stay inside the F-OBS budget: the hot path
/// reserves a journal capacity slot and pushes a compact POD record; the
/// full JournalEvents (three times the bytes, plus a std::vector member)
/// are materialized only by flush() at export time and spliced back into
/// exact append order, so the JSONL is byte-identical to in-place appends.
class CausalScribe {
 public:
  CausalScribe() = default;

  /// Wires the scribe to the cluster journal when journaling *and* the
  /// causal sub-switch are on; null otherwise. `n` sizes the per-receiver
  /// delivery counters.
  void attach(Obs* obs, size_t n);
  bool on() const { return journal_ != nullptr; }

  /// Record a `send` event and return the edge id to replay at delivery.
  /// Takes the network's shared payload handle so a broadcast fans one
  /// fingerprint out to every peer instead of recomputing it per link (the
  /// one-entry cache below pins the buffer, making pointer identity a
  /// sound proxy for content identity).
  CausalEdge on_send(uint32_t from, uint32_t to,
                     const std::shared_ptr<const Bytes>& payload, int64_t now);
  /// Record the matching `recv` event. Its value carries a per-receiver
  /// 1-based contiguous delivery index so a deleted recv line is detectable
  /// offline (the indices gap).
  void on_recv(uint32_t from, uint32_t to, const CausalEdge& edge, int64_t now);
  /// Materialize buffered records into the journal (idempotent; called by
  /// the harness before any journal read).
  void flush();

 private:
  /// One buffered wire-transfer event, kept to 32 bytes — the buffer is the
  /// single biggest memory stream on the record path. `order` is the merge
  /// key (stored journal size at reserve time). `value` is the payload size
  /// for sends but the *edge seq* for recvs: a recv's seq names the matched
  /// send, which jittered (non-FIFO) links make unreplayable. The send seq
  /// and the recv delivery index are both replayable — sends increment
  /// per-link counters in record order, delivery indices per-receiver
  /// counters in arrival order, and recording stops exactly when capacity
  /// drops begin — so flush() reproduces them instead of storing them.
  struct Rec {
    int64_t ts;
    uint64_t fp;
    uint32_t order;
    uint32_t value;
    uint16_t party;
    uint16_t peer;
    uint8_t recv;
  };
  static_assert(sizeof(Rec) <= 32, "Rec is the record-path memory stream");

  Journal* journal_ = nullptr;
  size_t n_ = 0;
  /// Per-(sender, receiver) send counters: seq is the 1-based message index
  /// on that link, so (from, to, seq) alone is unique and the hot path is
  /// one array increment (a hash-map here costs a node allocation per
  /// distinct payload — measured well over the F-OBS budget).
  std::vector<uint64_t> link_seq_;
  std::vector<Rec> buffer_;
  /// One-entry fingerprint cache *per sender*: while the handle is held, no
  /// other Bytes can occupy the same address, so pointer equality ⇒
  /// identical (immutable) payload. Broadcasts hit it n−1 times. Per-sender
  /// because parallel mode (DESIGN.md §6) runs distinct senders
  /// concurrently — each cache is then touched only by its owner's events.
  std::vector<std::shared_ptr<const Bytes>> fp_payload_;
  std::vector<uint64_t> fp_cache_;
  /// Replay counters for flush(): per-link send seq and per-receiver
  /// delivery index, persistent across flushes so repeated partial flushes
  /// continue where the previous one stopped.
  std::vector<uint64_t> flush_seq_;
  std::vector<uint64_t> flush_delivered_;
};

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

/// One segment of a round's critical path, in causal (propose → finalized)
/// order. `from`/`to` are parties (equal for non-network segments).
struct PathSegment {
  enum class Kind { kNetwork, kQueue, kCrypto };
  Kind kind = Kind::kNetwork;
  uint32_t from = 0;
  uint32_t to = 0;
  int64_t start = 0;  ///< virtual µs
  int64_t end = 0;
  /// Network: the event type the hop enabled; queue: the wait reason
  /// ("timer", "gossip_wait").
  const char* label = "";
  /// Global journal indices of the protocol events the segment connects
  /// (SIZE_MAX when unresolved). Used by to_dot; not serialized.
  size_t from_event = SIZE_MAX;
  size_t to_event = SIZE_MAX;
};

/// Critical path of one finalized round.
struct RoundPath {
  uint64_t round = 0;
  uint32_t proposer = JournalEvent::kNoParty;  ///< party of the origin propose
  uint32_t finalizer = JournalEvent::kNoParty; ///< first party to finalize
  int64_t propose_ts = 0;
  int64_t finalized_ts = 0;
  int hops = 0;  ///< network segments on the path
  int64_t network_us = 0;
  int64_t queue_us = 0;
  int64_t crypto_us = 0;
  /// True when the walk reached the round's `propose`. False for rounds
  /// whose origin is unrecorded (corrupt leader — corrupt parties carry no
  /// scribes) or a truncated journal; incomplete rounds are excluded from
  /// the hop histogram and the structural check.
  bool complete = false;
  std::vector<PathSegment> segments;     ///< propose → finalized order
  std::vector<size_t> path_events;       ///< global event indices on the path
};

/// Aggregate per-link delay on critical paths (straggler ranking).
struct EdgeStat {
  uint32_t from = 0;
  uint32_t to = 0;
  uint64_t count = 0;
  int64_t total_us = 0;
  int64_t max_us = 0;
};

/// Nearest-rank percentiles of one latency component across complete rounds.
struct LatencyStat {
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;
  int64_t max = 0;
  double mean = 0.0;
};

struct CritPathReport {
  JournalMeta meta;
  bool has_meta = false;
  /// Named analysis error; analysis stops when set. Names:
  ///   causal-no-edges     — journal carries no send/recv layer (v1)
  ///   causal-missing-send — a recv references an unjournaled send
  ///   causal-missing-recv — a receiver's delivery indices gap (deleted line)
  ///   causal-time-travel  — matched send is later than its recv
  std::string error;
  bool truncated = false;  ///< journal dropped events; strict checks skipped

  std::vector<RoundPath> rounds;
  uint64_t rounds_analyzed = 0;
  uint64_t rounds_complete = 0;
  std::map<int, uint64_t> hop_histogram;     ///< complete rounds only
  std::vector<EdgeStat> stragglers;          ///< sorted by total_us desc
  LatencyStat total, network, queue, crypto; ///< complete rounds only
  double network_share = 0.0;  ///< mean fraction of commit latency
  double queue_share = 0.0;
  double crypto_share = 0.0;

  /// Expected critical-path hop count for a protocol ("icc0"/"icc1" → 3,
  /// "icc2" → 4 — the paper's 3δ/4δ claims in structural form); -1 unknown.
  static int expected_hops(const std::string& protocol);
  /// True when every complete round has exactly `expected` hops (and at
  /// least one round is complete). `violation` names the first offender.
  bool check_hops(int expected, std::string* violation = nullptr) const;

  std::string to_json() const;
};

/// Happens-before DAG reconstruction + critical-path extraction. Holds the
/// parsed journal so `to_dot` can render rounds after analysis.
class CausalAnalyzer {
 public:
  explicit CausalAnalyzer(Journal::Parsed parsed);

  const CritPathReport& report() const { return report_; }

  /// Graphviz dot of one round's happens-before DAG: per-party clusters of
  /// the round's protocol events in program order, derived cross-party
  /// delivery edges, critical path in red.
  std::string to_dot(uint64_t round) const;

 private:
  void index();
  void validate();
  void analyze();
  RoundPath walk_round(uint64_t round, size_t finalized_gi);

  Journal::Parsed parsed_;
  CritPathReport report_;
  std::vector<std::vector<size_t>> party_events_;       ///< gi lists per party
  std::vector<size_t> party_pos_;                       ///< gi → index in its list
  std::map<std::tuple<uint32_t, uint32_t, std::array<uint8_t, 32>, uint64_t>, size_t>
      send_by_edge_;                                    ///< edge id → send gi
  std::unordered_map<size_t, size_t> recv_to_send_;     ///< recv gi → send gi
};

/// Convenience: parse + analyze a JSONL document.
CritPathReport analyze_journal_jsonl(const std::string& text);

}  // namespace icc::obs
