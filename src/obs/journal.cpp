#include "obs/journal.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"  // json_escape
#include "obs/obs.hpp"
#include "support/defer.hpp"

namespace icc::obs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

/// Intern a parsed string onto the static journal constants (event types,
/// provenance/phase literals) so recorded and parsed events compare equal by
/// pointer; unknown strings are copied into a small leak-free-enough static
/// pool (parsing happens in offline tools).
const char* intern_string(const std::string& s) {
  using namespace journal_type;
  static constexpr const char* kKnown[] = {
      kRoundEnter, kProposal,   kPropose,       kNotarShare,   kNotarAgg,
      kFinalShare, kFinalAgg,   kFinalized,     kCommit,       kBeaconShare,
      kBeacon,     kRbcPhase,   kGossipDeliver, kSend,         kRecv,
      kGossipAdvert, kGossipRequest,            "combined",    "wire",
      "disperse",  "echo",      "reconstruct",  "deliver",     "reject"};
  for (const char* k : kKnown)
    if (s == k) return k;
  static std::vector<std::unique_ptr<std::string>>* pool =
      new std::vector<std::unique_ptr<std::string>>();
  for (const auto& p : *pool)
    if (*p == s) return p->c_str();
  pool->push_back(std::make_unique<std::string>(s));
  return pool->back()->c_str();
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Find `"key":` in `line` and return the character offset just past the
/// colon, or npos. Good enough for the journal's own output format (keys
/// are never substrings of string values thanks to the quoted-colon form).
size_t value_offset(const std::string& line, const char* key) {
  std::string pat = std::string("\"") + key + "\":";
  size_t at = line.find(pat);
  return at == std::string::npos ? std::string::npos : at + pat.size();
}

bool parse_u64(const std::string& line, const char* key, uint64_t* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos) return false;
  *out = std::strtoull(line.c_str() + at, nullptr, 10);
  return true;
}

bool parse_i64(const std::string& line, const char* key, int64_t* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos) return false;
  *out = std::strtoll(line.c_str() + at, nullptr, 10);
  return true;
}

bool parse_string(const std::string& line, const char* key, std::string* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') return false;
  size_t end = line.find('"', at + 1);
  if (end == std::string::npos) return false;
  *out = line.substr(at + 1, end - at - 1);
  return true;
}

bool parse_u32_array(const std::string& line, const char* key, std::vector<uint32_t>* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '[') return false;
  size_t end = line.find(']', at);
  if (end == std::string::npos) return false;
  out->clear();
  const char* p = line.c_str() + at + 1;
  const char* stop = line.c_str() + end;
  while (p < stop) {
    char* next = nullptr;
    unsigned long v = std::strtoul(p, &next, 10);
    if (next == p) break;
    out->push_back(static_cast<uint32_t>(v));
    p = next;
    while (p < stop && (*p == ',' || *p == ' ')) ++p;
  }
  return true;
}

}  // namespace

std::string hash_hex(const std::array<uint8_t, 32>& h) {
  return bytes_hex(h.data(), h.size());
}

void JournalEvent::set_hash(const uint8_t* data, size_t len) {
  hash_len = static_cast<uint8_t>(len < hash.size() ? len : hash.size());
  std::memcpy(hash.data(), data, hash_len);
}

std::string JournalEvent::hash_hex() const {
  return bytes_hex(hash.data(), hash_len);
}

std::string bytes_hex(const uint8_t* data, size_t len) {
  std::string s(len * 2, '0');
  for (size_t i = 0; i < len; ++i) {
    s[2 * i] = kHexDigits[data[i] >> 4];
    s[2 * i + 1] = kHexDigits[data[i] & 0xf];
  }
  return s;
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

void Journal::append(JournalEvent ev) {
  if (capacity_ == 0) return;
  // Inside a parallel region (support/defer.hpp) the append rides the defer
  // queue: the event store mutates only on the coordinating thread, in
  // canonical event order, so the JSONL stays byte-identical at any thread
  // count. The sequential path pays one thread-local load.
  // (The lambda must not steal `ev` before we know a queue is installed.)
  if (support::DeferQueue* q = support::DeferQueue::current()) {
    q->push([this, ev = std::move(ev)]() mutable { append_in_order(std::move(ev)); });
    return;
  }
  append_in_order(std::move(ev));
}

void Journal::append_in_order(JournalEvent ev) {
  if (events_.size() + external_ >= capacity_) {
    dropped_++;
    return;
  }
  events_.push_back(std::move(ev));
}

void Journal::merge_external(std::vector<std::pair<uint64_t, JournalEvent>>&& recs) {
  if (recs.empty()) return;
  external_ -= std::min<uint64_t>(external_, recs.size());
  std::vector<JournalEvent> merged;
  merged.reserve(events_.size() + recs.size());
  size_t r = 0;
  for (size_t i = 0; i < events_.size(); ++i) {
    while (r < recs.size() && recs[r].first <= i)
      merged.push_back(std::move(recs[r++].second));
    merged.push_back(std::move(events_[i]));
  }
  while (r < recs.size()) merged.push_back(std::move(recs[r++].second));
  events_ = std::move(merged);
}

std::string Journal::meta_json(const JournalMeta& meta, uint64_t event_count,
                               uint64_t dropped) {
  std::ostringstream os;
  os << "{\"type\":\"meta\",\"schema\":\""
     << json_escape(meta.schema.empty() ? JournalMeta::kSchemaV1 : meta.schema)
     << "\",\"n\":" << meta.n
     << ",\"t\":" << meta.t << ",\"quorum\":" << meta.quorum() << ",\"protocol\":\""
     << json_escape(meta.protocol) << "\",\"seed\":" << meta.seed
     << ",\"events\":" << event_count << ",\"dropped\":" << dropped << "}";
  return os.str();
}

std::string Journal::event_json(const JournalEvent& ev, uint64_t seq) {
  std::ostringstream os;
  os << "{\"seq\":" << seq << ",\"type\":\"" << json_escape(ev.type ? ev.type : "")
     << "\",\"ts\":" << ev.ts;
  if (ev.party != JournalEvent::kNoParty) os << ",\"party\":" << ev.party;
  if (ev.peer != JournalEvent::kNoParty) os << ",\"peer\":" << ev.peer;
  if (ev.round != 0) os << ",\"round\":" << ev.round;
  if (ev.proposer != JournalEvent::kNoParty) os << ",\"proposer\":" << ev.proposer;
  if (ev.edge != 0) os << ",\"edge\":" << ev.edge;
  if (ev.hash_len != 0) {
    os << ",\"hash\":\"";
    for (uint8_t i = 0; i < ev.hash_len; ++i)
      os << kHexDigits[ev.hash[i] >> 4] << kHexDigits[ev.hash[i] & 0xf];
    os << "\"";
  }
  if (!ev.signers.empty()) {
    os << ",\"signers\":[";
    for (size_t i = 0; i < ev.signers.size(); ++i) {
      if (i) os << ",";
      os << ev.signers[i];
    }
    os << "]";
  }
  if (ev.has_detail()) os << ",\"detail\":\"" << json_escape(ev.detail) << "\"";
  if (ev.value != JournalEvent::kNoValue) os << ",\"value\":" << ev.value;
  os << "}";
  return os.str();
}

std::string Journal::to_jsonl() const {
  std::ostringstream os;
  os << meta_json(meta_, events_.size(), dropped_) << "\n";
  uint64_t seq = 1;
  for (const JournalEvent& ev : events_) os << event_json(ev, seq++) << "\n";
  return os.str();
}

bool Journal::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

std::optional<JournalEvent> Journal::parse_event_line(const std::string& line) {
  std::string type;
  if (!parse_string(line, "type", &type) || type.empty() || type == "meta")
    return std::nullopt;
  JournalEvent ev;
  ev.type = intern_string(type);
  parse_i64(line, "ts", &ev.ts);
  uint64_t u = 0;
  if (parse_u64(line, "party", &u)) ev.party = static_cast<uint32_t>(u);
  if (parse_u64(line, "peer", &u)) ev.peer = static_cast<uint32_t>(u);
  parse_u64(line, "round", &ev.round);
  if (parse_u64(line, "proposer", &u)) ev.proposer = static_cast<uint32_t>(u);
  parse_u64(line, "edge", &ev.edge);
  std::string hex;
  if (parse_string(line, "hash", &hex)) {
    for (size_t i = 0; i + 1 < hex.size() && ev.hash_len < ev.hash.size(); i += 2) {
      int hi = hex_nibble(hex[i]), lo = hex_nibble(hex[i + 1]);
      if (hi < 0 || lo < 0) break;
      ev.hash[ev.hash_len++] = static_cast<uint8_t>(hi << 4 | lo);
    }
  }
  parse_u32_array(line, "signers", &ev.signers);
  std::string detail;
  if (parse_string(line, "detail", &detail) && !detail.empty())
    ev.detail = intern_string(detail);
  parse_i64(line, "value", &ev.value);
  return ev;
}

std::optional<JournalMeta> Journal::parse_meta_line(const std::string& line) {
  std::string type;
  if (!parse_string(line, "type", &type) || type != "meta") return std::nullopt;
  JournalMeta m;
  uint64_t u = 0;
  if (parse_u64(line, "n", &u)) m.n = static_cast<uint32_t>(u);
  if (parse_u64(line, "t", &u)) m.t = static_cast<uint32_t>(u);
  parse_string(line, "protocol", &m.protocol);
  parse_u64(line, "seed", &m.seed);
  std::string schema;
  if (parse_string(line, "schema", &schema) && !schema.empty()) m.schema = schema;
  parse_u64(line, "dropped", &m.dropped);
  return m;
}

Journal::Parsed Journal::parse_jsonl(const std::string& text) {
  Parsed out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (!out.has_meta) {
      if (auto meta = parse_meta_line(line)) {
        out.meta = *meta;
        out.has_meta = true;
        continue;
      }
    }
    if (auto ev = parse_event_line(line)) out.events.push_back(std::move(*ev));
  }
  return out;
}

// ---------------------------------------------------------------------------
// JournalScribe
// ---------------------------------------------------------------------------

void JournalScribe::attach(Obs* obs, uint32_t party) {
  journal_ = obs ? obs->journal() : nullptr;
  party_ = party;
}

void JournalScribe::round_enter(uint64_t round, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kRoundEnter;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  journal_->append(std::move(ev));
}

void JournalScribe::proposal(uint64_t round, uint32_t proposer,
                             const std::array<uint8_t, 32>& hash, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kProposal;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.proposer = proposer;
  ev.set_hash(hash.data(), hash.size());
  journal_->append(std::move(ev));
}

void JournalScribe::propose(uint64_t round, const std::array<uint8_t, 32>& hash,
                            int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kPropose;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.proposer = party_;
  ev.set_hash(hash.data(), hash.size());
  journal_->append(std::move(ev));
}

void JournalScribe::notar_share(uint64_t round, uint32_t proposer,
                                const std::array<uint8_t, 32>& hash, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kNotarShare;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.proposer = proposer;
  ev.set_hash(hash.data(), hash.size());
  journal_->append(std::move(ev));
}

void JournalScribe::notar_agg(uint64_t round, uint32_t proposer,
                              const std::array<uint8_t, 32>& hash,
                              std::vector<uint32_t> signers, const char* provenance,
                              int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kNotarAgg;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.proposer = proposer;
  ev.set_hash(hash.data(), hash.size());
  ev.signers = std::move(signers);
  ev.detail = provenance;
  journal_->append(std::move(ev));
}

void JournalScribe::final_share(uint64_t round, uint32_t proposer,
                                const std::array<uint8_t, 32>& hash, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kFinalShare;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.proposer = proposer;
  ev.set_hash(hash.data(), hash.size());
  journal_->append(std::move(ev));
}

void JournalScribe::final_agg(uint64_t round, uint32_t proposer,
                              const std::array<uint8_t, 32>& hash,
                              std::vector<uint32_t> signers, const char* provenance,
                              int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kFinalAgg;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.proposer = proposer;
  ev.set_hash(hash.data(), hash.size());
  ev.signers = std::move(signers);
  ev.detail = provenance;
  journal_->append(std::move(ev));
}

void JournalScribe::finalized(uint64_t round, const std::array<uint8_t, 32>& hash,
                              int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kFinalized;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.set_hash(hash.data(), hash.size());
  journal_->append(std::move(ev));
}

void JournalScribe::commit(uint64_t round, const std::array<uint8_t, 32>& hash,
                           int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kCommit;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.set_hash(hash.data(), hash.size());
  journal_->append(std::move(ev));
}

void JournalScribe::beacon_share(uint64_t round, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kBeaconShare;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  journal_->append(std::move(ev));
}

void JournalScribe::beacon(uint64_t round, const std::vector<uint8_t>& value,
                           int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kBeacon;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.set_hash(value.data(), value.size());
  journal_->append(std::move(ev));
}

void JournalScribe::rbc_phase(uint64_t round, uint32_t proposer,
                              const std::array<uint8_t, 32>& hash, const char* phase,
                              int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kRbcPhase;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.proposer = proposer;
  ev.set_hash(hash.data(), hash.size());
  ev.detail = phase;
  journal_->append(std::move(ev));
}

void JournalScribe::gossip_deliver(uint64_t round, const std::array<uint8_t, 32>& artifact_id,
                                   uint64_t bytes, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kGossipDeliver;
  ev.ts = now;
  ev.party = party_;
  ev.round = round;
  ev.set_hash(artifact_id.data(), artifact_id.size());
  ev.value = static_cast<int64_t>(bytes);
  journal_->append(std::move(ev));
}

void JournalScribe::gossip_advert(uint64_t round, const std::array<uint8_t, 32>& artifact_id,
                                  uint32_t advertiser, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kGossipAdvert;
  ev.ts = now;
  ev.party = party_;
  ev.peer = advertiser;
  ev.round = round;
  ev.set_hash(artifact_id.data(), artifact_id.size());
  journal_->append(std::move(ev));
}

void JournalScribe::gossip_request(uint64_t round, const std::array<uint8_t, 32>& artifact_id,
                                   uint32_t target, int64_t attempt, int64_t now) {
  if (!journal_) return;
  JournalEvent ev;
  ev.type = journal_type::kGossipRequest;
  ev.ts = now;
  ev.party = party_;
  ev.peer = target;
  ev.round = round;
  ev.set_hash(artifact_id.data(), artifact_id.size());
  ev.value = attempt;
  journal_->append(std::move(ev));
}

}  // namespace icc::obs
