// Consensus flight recorder: an append-only, structured event journal.
//
// Where the metrics Registry answers "how many / how fast" in aggregate, the
// journal answers the accountability question behind the paper's safety
// lemmas: *which* quorum notarized block B in round r, and was it valid?
// Every honest party records typed protocol events — proposals entering the
// pool, notarization/finalization shares cast, quorums aggregated (with
// signer sets), beacon values, RBC phase transitions, gossip deliveries —
// stamped with virtual time, into one per-cluster journal.
//
// Export is deterministic JSONL (one event per line, fixed key order, no
// floats): the same seed produces a byte-identical file, which makes the
// journal diffable across runs and lets `tools/icc_audit` mechanically
// re-check the safety invariants offline (see obs/audit.hpp for the
// invariant-to-lemma mapping).
//
// Recording discipline matches the probes (obs.hpp): parties hold a
// JournalScribe that is null-attached when the journal is off, so a probe
// site costs one pointer check; enabling the journal never changes protocol
// behaviour (scribes only read protocol state).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace icc::obs {

/// One recorded protocol event. Fields that do not apply to an event type
/// keep their sentinel and are omitted from the JSONL line. `type` and
/// `detail` point at static strings (the journal_type constants below and
/// provenance/phase literals); parsed events alias the same constants so
/// pointer identity works for comparisons. The layout is deliberately flat —
/// recording an event must not allocate (the F-OBS <5% overhead budget
/// covers the journal): the hash is raw bytes, hex-encoded only at export.
struct JournalEvent {
  static constexpr uint32_t kNoParty = UINT32_MAX;
  static constexpr int64_t kNoValue = INT64_MIN;

  const char* type = "";
  const char* detail = nullptr;    ///< provenance / RBC phase; nullptr = n/a
  int64_t ts = 0;                  ///< virtual µs
  int64_t value = kNoValue;        ///< generic numeric payload (bytes, ...)
  uint64_t round = 0;              ///< 0 = not round-scoped
  uint64_t edge = 0;               ///< causal edge seq (send/recv); 0 = n/a
  uint32_t party = kNoParty;       ///< recording party
  uint32_t peer = kNoParty;        ///< other endpoint of a send/recv edge
  uint32_t proposer = kNoParty;    ///< proposer of the referenced block
  uint8_t hash_len = 0;            ///< bytes used in `hash`; 0 = n/a
  std::array<uint8_t, 32> hash{};  ///< block/artifact hash or beacon value
  std::vector<uint32_t> signers;   ///< quorum signer set; empty = n/a

  void set_hash(const uint8_t* data, size_t len);
  /// Lowercase hex of the hash bytes; "" when absent. Export/audit only —
  /// allocates, never called on the record path.
  std::string hash_hex() const;
  bool has_detail() const { return detail != nullptr && detail[0] != '\0'; }
};

/// Event type tags (the JSONL "type" values). Parsed journals intern
/// unknown types as-is, so the auditor degrades gracefully on future types.
namespace journal_type {
inline constexpr char kRoundEnter[] = "round_enter";     ///< beacon ready, clauses armed
inline constexpr char kProposal[] = "proposal";          ///< proposal entered the pool
inline constexpr char kPropose[] = "propose";            ///< this party proposed
inline constexpr char kNotarShare[] = "notar_share";     ///< notarization share cast
inline constexpr char kNotarAgg[] = "notar_agg";         ///< notarization quorum held
inline constexpr char kFinalShare[] = "final_share";     ///< finalization share cast
inline constexpr char kFinalAgg[] = "final_agg";         ///< finalization quorum held
inline constexpr char kFinalized[] = "finalized";        ///< block finalized (watermark)
inline constexpr char kCommit[] = "commit";              ///< block entered output queue
inline constexpr char kBeaconShare[] = "beacon_share";   ///< beacon share broadcast
inline constexpr char kBeacon[] = "beacon";              ///< beacon value combined (hash)
inline constexpr char kRbcPhase[] = "rbc_phase";         ///< ICC2 RBC transition (detail)
inline constexpr char kGossipDeliver[] = "gossip_deliver";  ///< pulled artifact arrived
// Causal layer (schema icc-journal/v2, obs/causal.hpp). A send/recv pair
// shares (party↔peer, hash, edge) and carries the virtual send/arrival time,
// so each network hop's exact delay is recoverable from the journal alone.
inline constexpr char kSend[] = "send";                  ///< wire message left `party`
inline constexpr char kRecv[] = "recv";                  ///< wire message reached `party`
inline constexpr char kGossipAdvert[] = "gossip_advert";    ///< advert seen, pull queued
inline constexpr char kGossipRequest[] = "gossip_request";  ///< pull request dispatched
}  // namespace journal_type

/// Run-identifying header, written as the first JSONL line. The auditor
/// needs n and t to know the quorum size an aggregate must reach.
struct JournalMeta {
  uint32_t n = 0;
  uint32_t t = 0;
  std::string protocol;  ///< "icc0" | "icc1" | "icc2" | free-form
  uint64_t seed = 0;
  /// "icc-journal/v1" (protocol events only) or "icc-journal/v2" (adds the
  /// causal send/recv layer). v1 journals still parse and audit; only the
  /// critical-path analyzer requires v2.
  std::string schema = kSchemaV1;
  /// Export-side drop count, filled when *parsing* a meta line (the writer
  /// passes the live count to meta_json instead). A nonzero value tells
  /// offline analyzers the journal is truncated.
  uint64_t dropped = 0;
  uint32_t quorum() const { return n - t; }

  static constexpr const char* kSchemaV1 = "icc-journal/v1";
  static constexpr const char* kSchemaV2 = "icc-journal/v2";
};

/// Append-only event store with a capacity bound (events past the bound are
/// counted, not stored — the meta line reports the drop count so exports
/// are never silently partial, mirroring the trace ring).
class Journal {
 public:
  /// capacity 0 disables recording entirely (append() is a no-op).
  explicit Journal(size_t capacity) : capacity_(capacity) {
    // Reserve up front (clamped; pages commit only when touched) so the
    // recording path never pays realloc-doubling copies mid-run.
    events_.reserve(std::min<size_t>(capacity_, size_t{1} << 22));
  }

  bool enabled() const { return capacity_ != 0; }
  size_t capacity() const { return capacity_; }
  /// Reserve a capacity slot for an event buffered outside the journal (the
  /// causal scribe keeps compact POD records and materializes them only at
  /// export, so the per-wire-message hot path never builds a JournalEvent).
  /// Counts against capacity immediately — drop accounting is identical to
  /// appending in place. False (drop counted) when full.
  bool reserve_external() {
    if (events_.size() + external_ >= capacity_) {
      if (capacity_ != 0) dropped_++;
      return false;
    }
    external_++;
    return true;
  }
  /// Splice reserved external events into append order. `recs[i].first` is
  /// size() at the time the slot was reserved: the event sorts before the
  /// stored event at that index, and ties keep their buffer order — the
  /// merged stream is byte-identical to having appended in place.
  void merge_external(std::vector<std::pair<uint64_t, JournalEvent>>&& recs);
  void set_meta(const JournalMeta& meta) { meta_ = meta; }
  const JournalMeta& meta() const { return meta_; }

  void append(JournalEvent ev);

  const std::vector<JournalEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  uint64_t dropped() const { return dropped_; }

  /// Deterministic JSONL: meta line, then one line per event in append
  /// order, with seq numbers. Same seed ⇒ byte-identical string.
  std::string to_jsonl() const;
  /// Write to_jsonl() to `path`; false on I/O error.
  bool write_jsonl(const std::string& path) const;

  /// One event as a JSON object (fixed key order, absent fields omitted).
  static std::string event_json(const JournalEvent& ev, uint64_t seq);
  /// Meta header line.
  static std::string meta_json(const JournalMeta& meta, uint64_t event_count,
                               uint64_t dropped);

  // --- parsing (tools/icc_audit, tests) ---
  /// Parse one JSONL line into an event; nullopt for the meta line, blank
  /// lines, or lines without a "type" key.
  static std::optional<JournalEvent> parse_event_line(const std::string& line);
  /// Parse a meta line; nullopt if `line` is not a meta record.
  static std::optional<JournalMeta> parse_meta_line(const std::string& line);
  /// Parse a whole JSONL document (as produced by to_jsonl, or tampered
  /// variants of it). Returns events plus the meta if present.
  struct Parsed {
    JournalMeta meta;
    bool has_meta = false;
    std::vector<JournalEvent> events;
  };
  static Parsed parse_jsonl(const std::string& text);

 private:
  /// The store mutation behind append(), applied at the canonical point
  /// (inline when sequential, via the defer queue replay when parallel).
  void append_in_order(JournalEvent ev);

  size_t capacity_;
  JournalMeta meta_;
  std::vector<JournalEvent> events_;
  uint64_t dropped_ = 0;
  uint64_t external_ = 0;  ///< slots reserved but not yet merged
};

/// Lowercase hex of a 32-byte digest (types::Hash without the dependency).
std::string hash_hex(const std::array<uint8_t, 32>& h);
/// Lowercase hex of arbitrary bytes (beacon values).
std::string bytes_hex(const uint8_t* data, size_t len);

class Obs;  // obs.hpp owns the Journal alongside the Registry and Tracer

/// Per-subsystem emitter following the null-probe pattern: attach() wires it
/// to the cluster journal when (and only when) journaling is on; every
/// record method returns on its first branch otherwise. The scribe owns the
/// event-shaping so instrumented call sites stay one-liners.
class JournalScribe {
 public:
  JournalScribe() = default;

  void attach(Obs* obs, uint32_t party);
  bool on() const { return journal_ != nullptr; }

  void round_enter(uint64_t round, int64_t now);
  /// A proposal for `round` by `proposer` entered the pool (first sighting).
  void proposal(uint64_t round, uint32_t proposer, const std::array<uint8_t, 32>& hash,
                int64_t now);
  /// This party proposed.
  void propose(uint64_t round, const std::array<uint8_t, 32>& hash, int64_t now);
  void notar_share(uint64_t round, uint32_t proposer, const std::array<uint8_t, 32>& hash,
                   int64_t now);
  /// A notarization aggregate entered the pool. `signers` is the quorum set
  /// when this party combined it itself ("combined"); empty when the
  /// aggregate arrived combined over the wire ("wire" — signer sets are not
  /// recoverable from oracle-crypto aggregates).
  void notar_agg(uint64_t round, uint32_t proposer, const std::array<uint8_t, 32>& hash,
                 std::vector<uint32_t> signers, const char* provenance, int64_t now);
  void final_share(uint64_t round, uint32_t proposer, const std::array<uint8_t, 32>& hash,
                   int64_t now);
  void final_agg(uint64_t round, uint32_t proposer, const std::array<uint8_t, 32>& hash,
                 std::vector<uint32_t> signers, const char* provenance, int64_t now);
  void finalized(uint64_t round, const std::array<uint8_t, 32>& hash, int64_t now);
  void commit(uint64_t round, const std::array<uint8_t, 32>& hash, int64_t now);
  void beacon_share(uint64_t round, int64_t now);
  void beacon(uint64_t round, const std::vector<uint8_t>& value, int64_t now);
  /// ICC2 reliable-broadcast phase transition; `phase` is one of
  /// "disperse", "echo", "reconstruct", "deliver", "reject".
  void rbc_phase(uint64_t round, uint32_t proposer, const std::array<uint8_t, 32>& hash,
                 const char* phase, int64_t now);
  /// A pulled gossip artifact arrived (advert → stored completed).
  void gossip_deliver(uint64_t round, const std::array<uint8_t, 32>& artifact_id,
                      uint64_t bytes, int64_t now);
  /// First advert for a not-yet-held artifact: the jittered pull timer was
  /// armed. Lets the causal analyzer attribute advert → request gaps to the
  /// gossip jitter queue rather than to the network.
  void gossip_advert(uint64_t round, const std::array<uint8_t, 32>& artifact_id,
                     uint32_t advertiser, int64_t now);
  /// A pull request was dispatched to `target` (value = attempt number).
  void gossip_request(uint64_t round, const std::array<uint8_t, 32>& artifact_id,
                      uint32_t target, int64_t attempt, int64_t now);

 private:
  Journal* journal_ = nullptr;
  uint32_t party_ = 0;
};

}  // namespace icc::obs
