#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "support/defer.hpp"

namespace icc::obs {

void Gauge::set(int64_t v) {
  // Last-write-wins: inside a parallel region the "last" write must be the
  // last in canonical event order, so the store rides the defer queue.
  if (support::DeferQueue::maybe_defer(
          [this, v] { value_.store(v, std::memory_order_relaxed); }))
    return;
  value_.store(v, std::memory_order_relaxed);
}

namespace {
/// Commutative atomic min/max (CAS loop; relaxed — see header contract).
void atomic_min(std::atomic<int64_t>& slot, int64_t v) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
void atomic_max(std::atomic<int64_t>& slot, int64_t v) {
  int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds not ascending");
  buckets_ = std::vector<std::atomic<uint64_t>>(bounds_.size());
}

void Histogram::record(int64_t v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::merge(const Histogram& o) {
  if (o.bounds_ != bounds_) throw std::invalid_argument("Histogram::merge: bound mismatch");
  if (o.count() == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i].fetch_add(o.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  overflow_.fetch_add(o.overflow(), std::memory_order_relaxed);
  atomic_min(min_, o.min());
  atomic_max(max_, o.max());
  sum_.fetch_add(o.sum(), std::memory_order_relaxed);
  count_.fetch_add(o.count(), std::memory_order_relaxed);
}

int64_t Histogram::percentile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  // Nearest-rank: the value of the ceil(q*n)-th smallest sample, resolved
  // to its bucket's upper bound.
  auto rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
  rank = std::max<uint64_t>(1, std::min(rank, n));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    // Clamp to the exact max: the bucket's upper bound can overshoot it.
    if (seen >= rank) return std::min(bounds_[i], max());
  }
  return max();  // rank falls in the overflow bucket
}

std::vector<int64_t> Histogram::exponential(int64_t start, double factor, size_t count) {
  std::vector<int64_t> b;
  b.reserve(count);
  double v = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    auto bound = static_cast<int64_t>(v);
    if (!b.empty() && bound <= b.back()) bound = b.back() + 1;  // keep strictly ascending
    b.push_back(bound);
    v *= factor;
  }
  return b;
}

std::vector<int64_t> Histogram::linear(int64_t step, size_t count) {
  std::vector<int64_t> b;
  b.reserve(count);
  for (size_t i = 1; i <= count; ++i) b.push_back(step * static_cast<int64_t>(i));
  return b;
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<int64_t> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void Registry::merge(const Registry& o) {
  for (const auto& [name, c] : o.counters_) counter(name).merge(*c);
  for (const auto& [name, g] : o.gauges_) gauge(name).set(g->value());
  for (const auto& [name, h] : o.histograms_) histogram(name, h->bounds()).merge(*h);
}

void Registry::visit_counters(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  for (const auto& [name, c] : counters_) fn(name, *c);
}

void Registry::visit_gauges(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, g] : gauges_) fn(name, *g);
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Registry::snapshot_json() const {
  std::ostringstream os;
  os << "{";

  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << c->value();
  }
  os << "},";

  os << "\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << g->value();
  }
  os << "},";

  os << "\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{"
       << "\"count\":" << h->count() << ",\"sum\":" << h->sum() << ",\"min\":" << h->min()
       << ",\"max\":" << h->max() << ",\"buckets\":[";
    const auto& bounds = h->bounds();
    const auto& counts = h->bucket_counts();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i) os << ",";
      os << "[" << bounds[i] << "," << counts[i] << "]";
    }
    os << "],\"overflow\":" << h->overflow() << "}";
  }
  os << "}";

  os << "}";
  return os.str();
}

}  // namespace icc::obs
