#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace icc::obs {

Histogram::Histogram(std::vector<int64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: no bounds");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds not ascending");
  buckets_.assign(bounds_.size(), 0);
}

void Histogram::record(int64_t v) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end()) {
    overflow_++;
  } else {
    buckets_[static_cast<size_t>(it - bounds_.begin())]++;
  }
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  count_++;
}

void Histogram::merge(const Histogram& o) {
  if (o.bounds_ != bounds_) throw std::invalid_argument("Histogram::merge: bound mismatch");
  if (o.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  overflow_ += o.overflow_;
  min_ = count_ ? std::min(min_, o.min_) : o.min_;
  max_ = count_ ? std::max(max_, o.max_) : o.max_;
  sum_ += o.sum_;
  count_ += o.count_;
}

int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  // Nearest-rank: the value of the ceil(q*n)-th smallest sample, resolved
  // to its bucket's upper bound.
  auto rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_)));
  rank = std::max<uint64_t>(1, std::min(rank, count_));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    // Clamp to the exact max: the bucket's upper bound can overshoot it.
    if (seen >= rank) return std::min(bounds_[i], max_);
  }
  return max_;  // rank falls in the overflow bucket
}

std::vector<int64_t> Histogram::exponential(int64_t start, double factor, size_t count) {
  std::vector<int64_t> b;
  b.reserve(count);
  double v = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    auto bound = static_cast<int64_t>(v);
    if (!b.empty() && bound <= b.back()) bound = b.back() + 1;  // keep strictly ascending
    b.push_back(bound);
    v *= factor;
  }
  return b;
}

std::vector<int64_t> Histogram::linear(int64_t step, size_t count) {
  std::vector<int64_t> b;
  b.reserve(count);
  for (size_t i = 1; i <= count; ++i) b.push_back(step * static_cast<int64_t>(i));
  return b;
}

Counter& Registry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<int64_t> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

void Registry::merge(const Registry& o) {
  for (const auto& [name, c] : o.counters_) counter(name).merge(*c);
  for (const auto& [name, g] : o.gauges_) gauge(name).set(g->value());
  for (const auto& [name, h] : o.histograms_) histogram(name, h->bounds()).merge(*h);
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Registry::snapshot_json() const {
  std::ostringstream os;
  os << "{";

  os << "\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << c->value();
  }
  os << "},";

  os << "\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":" << g->value();
  }
  os << "},";

  os << "\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(name) << "\":{"
       << "\"count\":" << h->count() << ",\"sum\":" << h->sum() << ",\"min\":" << h->min()
       << ",\"max\":" << h->max() << ",\"buckets\":[";
    const auto& bounds = h->bounds();
    const auto& counts = h->bucket_counts();
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i) os << ",";
      os << "[" << bounds[i] << "," << counts[i] << "]";
    }
    os << "],\"overflow\":" << h->overflow() << "}";
  }
  os << "}";

  os << "}";
  return os.str();
}

}  // namespace icc::obs
