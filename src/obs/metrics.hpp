// Low-overhead metrics: counters, gauges, fixed-bucket histograms, and a
// Registry that snapshots everything to JSON.
//
// Hot-path discipline (same as support/log.hpp): a probe that fires on every
// simulated message must cost a handful of instructions. Counter::add and
// Gauge::add are single relaxed atomic adds; Histogram::record is one binary
// search over a small fixed bound vector plus a few relaxed atomic updates.
//
// Memory-order contract (DESIGN.md §6 "Threading model"):
//
//   * Hot-path updates (Counter::add, Gauge::add, Histogram::record) are
//     std::memory_order_relaxed read-modify-writes. They are *commutative*:
//     the final value depends only on the multiset of updates, never on the
//     interleaving — which is what keeps metrics snapshots bit-identical
//     across thread counts when the parallel engine (sim/engine.hpp) steps
//     parties concurrently. Relaxed suffices because no metric value is used
//     to synchronize anything: readers only run at quiescent points.
//   * Gauge::set is last-write-wins and therefore NOT commutative; inside a
//     parallel region it routes through the engine's deterministic defer
//     queue (support/defer.hpp), so the "last" write is the last one in
//     canonical event order, not in wall-clock order.
//   * Registration (Registry::counter/gauge/histogram) and reads
//     (value()/snapshot_json()/merge()) are NOT thread-safe; they run on the
//     coordinating thread before the run starts or after it quiesces. Only
//     the update methods above may be called concurrently.
//
// Metric objects are owned by the Registry and have stable addresses for the
// lifetime of the Registry, so probes cache raw pointers and never pay the
// name lookup after attachment.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace icc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(uint64_t d = 1) { value_.fetch_add(d, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void merge(const Counter& o) { add(o.value()); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depths, watermarks). add() is
/// safe from concurrent probes; set() defers inside parallel regions (see
/// the memory-order contract above).
class Gauge {
 public:
  void set(int64_t v);
  void add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram over int64 samples (virtual-time durations in µs,
/// sizes, counts). Bucket i counts samples <= bounds[i] (cumulative-style
/// "le" upper bounds, first matching bucket wins); samples above the last
/// bound land in the overflow bucket. Sum/min/max are exact regardless of
/// bucket resolution. All of record()'s updates commute (adds plus CAS
/// min/max), so concurrent recording yields the same final state as any
/// sequential ordering of the same samples.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);
  /// Move = relaxed snapshot of the scalar cells (atomics are immovable);
  /// only used at quiescent points (e.g. harness::Stats::to_histogram).
  Histogram(Histogram&& o) noexcept
      : bounds_(std::move(o.bounds_)),
        buckets_(std::move(o.buckets_)),
        overflow_(o.overflow_.load(std::memory_order_relaxed)),
        count_(o.count_.load(std::memory_order_relaxed)),
        sum_(o.sum_.load(std::memory_order_relaxed)),
        min_(o.min_.load(std::memory_order_relaxed)),
        max_(o.max_.load(std::memory_order_relaxed)) {}

  void record(int64_t v);
  void merge(const Histogram& o);  ///< requires identical bounds

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const { return count() ? min_.load(std::memory_order_relaxed) : 0; }
  int64_t max() const { return count() ? max_.load(std::memory_order_relaxed) : 0; }
  double mean() const {
    const uint64_t c = count();
    return c ? static_cast<double>(sum()) / static_cast<double>(c) : 0.0;
  }
  /// q in [0, 1]; nearest-rank over the bucket upper bounds (resolution is
  /// the bucket width; exact min/max are available separately).
  int64_t percentile(double q) const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  /// Snapshot of the per-bucket counts (by value: the live buckets are
  /// atomics). Quiescent-point API, like every reader here.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t overflow() const { return overflow_.load(std::memory_order_relaxed); }

  /// Exponential bucket bounds: start, start*factor, ... (count bounds).
  static std::vector<int64_t> exponential(int64_t start, double factor, size_t count);
  /// Linear bucket bounds: step, 2*step, ... (count bounds).
  static std::vector<int64_t> linear(int64_t step, size_t count);

 private:
  std::vector<int64_t> bounds_;                 // ascending "le" upper bounds
  std::vector<std::atomic<uint64_t>> buckets_;  // one per bound
  std::atomic<uint64_t> overflow_{0};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// Named metric store. Lookup is by exact name; re-registering a name
/// returns the existing metric (so n parties naturally share aggregate
/// metrics). Snapshot order is deterministic (name-sorted). Registration
/// and snapshots are coordinating-thread-only; see the header contract.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only on first registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<int64_t> bounds);

  /// Merge every metric of `o` into this registry (same-name histograms
  /// must have identical bounds; gauges take the other's value).
  void merge(const Registry& o);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string snapshot_json() const;

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Visit every counter / gauge in name order. Coordinating-thread-only,
  /// like every reader here; the time-series recorder (obs/timeseries.hpp)
  /// diffs successive visits at window boundaries.
  void visit_counters(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void visit_gauges(const std::function<void(const std::string&, const Gauge&)>& fn) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

}  // namespace icc::obs
