// Low-overhead metrics: counters, gauges, fixed-bucket histograms, and a
// Registry that snapshots everything to JSON.
//
// Hot-path discipline (same as support/log.hpp): a probe that fires on every
// simulated message must cost a handful of instructions. Counter::add and
// Gauge::set are single-word writes; Histogram::record is one binary search
// over a small fixed bound vector plus three word updates. The simulator is
// single-threaded by design (sim/engine.hpp), so plain words — not atomics —
// are the correct monotonic storage; nothing here may be shared across
// threads (benches that run clusters on several threads give each cluster
// its own Registry).
//
// Metric objects are owned by the Registry and have stable addresses for the
// lifetime of the Registry, so probes cache raw pointers and never pay the
// name lookup after attachment.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace icc::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(uint64_t d = 1) { value_ += d; }
  uint64_t value() const { return value_; }
  void merge(const Counter& o) { value_ += o.value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depths, watermarks).
class Gauge {
 public:
  void set(int64_t v) { value_ = v; }
  void add(int64_t d) { value_ += d; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

/// Fixed-bucket histogram over int64 samples (virtual-time durations in µs,
/// sizes, counts). Bucket i counts samples <= bounds[i] (cumulative-style
/// "le" upper bounds, first matching bucket wins); samples above the last
/// bound land in the overflow bucket. Sum/min/max are exact regardless of
/// bucket resolution.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  void record(int64_t v);
  void merge(const Histogram& o);  ///< requires identical bounds

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return min_; }
  int64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }
  /// q in [0, 1]; nearest-rank over the bucket upper bounds (resolution is
  /// the bucket width; exact min/max are available separately).
  int64_t percentile(double q) const;

  const std::vector<int64_t>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }
  uint64_t overflow() const { return overflow_; }

  /// Exponential bucket bounds: start, start*factor, ... (count bounds).
  static std::vector<int64_t> exponential(int64_t start, double factor, size_t count);
  /// Linear bucket bounds: step, 2*step, ... (count bounds).
  static std::vector<int64_t> linear(int64_t step, size_t count);

 private:
  std::vector<int64_t> bounds_;    // ascending "le" upper bounds
  std::vector<uint64_t> buckets_;  // one per bound
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Named metric store. Lookup is by exact name; re-registering a name
/// returns the existing metric (so n parties naturally share aggregate
/// metrics). Snapshot order is deterministic (name-sorted).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is used only on first registration of `name`.
  Histogram& histogram(const std::string& name, std::vector<int64_t> bounds);

  /// Merge every metric of `o` into this registry (same-name histograms
  /// must have identical bounds; gauges take the other's value).
  void merge(const Registry& o);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string snapshot_json() const;

  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(const std::string& s);

}  // namespace icc::obs
