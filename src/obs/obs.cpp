#include "obs/obs.hpp"

namespace icc::obs {

std::vector<int64_t> duration_bounds() {
  // 100 µs … ~14 s in ×1.7 steps (28 buckets) — spans the 2δ fast-round
  // floor (a few ms) through Δ_ntry of a corrupt-leader round (seconds).
  return Histogram::exponential(100, 1.7, 28);
}

// ---------------------------------------------------------------------------
// PartyProbe
// ---------------------------------------------------------------------------

void PartyProbe::attach(Obs* obs, uint32_t party, std::function<bool(uint32_t)> honesty) {
  obs_ = obs;
  if (!obs_) return;
  party_ = party;
  honesty_ = std::move(honesty);
  Registry& r = obs_->registry();
  rounds_ = &r.counter("consensus.rounds");
  rounds_leader_block_ = &r.counter("consensus.rounds_leader_block");
  rounds_clean_ = &r.counter("consensus.rounds_clean");
  rounds_honest_leader_ = &r.counter("consensus.rounds_honest_leader");
  rounds_corrupt_leader_ = &r.counter("consensus.rounds_corrupt_leader");
  proposals_ = &r.counter("consensus.proposals_made");
  commits_ = &r.counter("consensus.blocks_committed");
  finalized_ = &r.counter("consensus.blocks_finalized");
  rbc_delivered_ = &r.counter("rbc.blocks_delivered");
  rbc_bytes_ = &r.counter("rbc.delivered_bytes");
  propose_us_ = &r.histogram("consensus.propose_us", duration_bounds());
  notarize_us_ = &r.histogram("consensus.notarize_us", duration_bounds());
  finalize_us_ = &r.histogram("consensus.finalize_us", duration_bounds());
  round_us_honest_ = &r.histogram("consensus.round_us_honest_leader", duration_bounds());
  round_us_corrupt_ = &r.histogram("consensus.round_us_corrupt_leader", duration_bounds());
  finalize_gap_ = &r.histogram("consensus.finalize_gap_rounds", Histogram::linear(1, 16));
}

PartyProbe::RoundState* PartyProbe::state(uint64_t round) {
  auto it = round_state_.find(round);
  return it == round_state_.end() ? nullptr : &it->second;
}

void PartyProbe::on_enter_round(uint64_t round, int64_t now) {
  if (!obs_) return;
  round_state_[round].start = now;
  // Bound the bookkeeping the same way the party bounds its beacon maps.
  while (!round_state_.empty() && round_state_.begin()->first + 64 < round)
    round_state_.erase(round_state_.begin());
}

void PartyProbe::on_proposal_seen(uint64_t round, int64_t now) {
  if (!obs_) return;
  RoundState* s = state(round);
  if (!s || s->proposal_seen || s->start < 0) return;
  s->proposal_seen = true;
  propose_us_->record(now - s->start);
}

void PartyProbe::on_proposed(uint64_t round, int64_t now) {
  if (!obs_) return;
  proposals_->add();
  obs_->tracer().instant("propose", "consensus", party_, kLaneConsensus, now, "round",
                         static_cast<int64_t>(round));
}

void PartyProbe::on_round_done(uint64_t round, uint32_t leader, bool leader_block,
                               bool clean, int64_t now) {
  if (!obs_) return;
  rounds_->add();
  if (leader_block) rounds_leader_block_->add();
  if (clean) rounds_clean_->add();
  const bool honest = honesty_ ? honesty_(leader) : leader_block;
  (honest ? rounds_honest_leader_ : rounds_corrupt_leader_)->add();
  // Beacon-bias feed for the windowed time-series (dedup by round inside).
  if (TimeSeries* ts = obs_->series())
    ts->on_round(round, leader, honest, leader_block, clean);

  RoundState* s = state(round);
  if (s && s->start >= 0) {
    const int64_t dur = now - s->start;
    notarize_us_->record(dur);
    (honest ? round_us_honest_ : round_us_corrupt_)->record(dur);
    obs_->tracer().complete("round", "consensus", party_, kLaneConsensus, s->start, dur,
                            "round", static_cast<int64_t>(round), "leader",
                            static_cast<int64_t>(leader));
  }
}

void PartyProbe::on_finalized(uint64_t round, uint64_t gap, int64_t now) {
  if (!obs_) return;
  finalized_->add();
  finalize_gap_->record(static_cast<int64_t>(gap));
  RoundState* s = state(round);
  if (s && s->start >= 0) finalize_us_->record(now - s->start);
  obs_->tracer().instant("finalize", "consensus", party_, kLaneConsensus, now, "round",
                         static_cast<int64_t>(round));
}

void PartyProbe::on_commit(uint64_t /*round*/, int64_t /*now*/) {
  if (!obs_) return;
  commits_->add();
}

void PartyProbe::on_rbc_delivered(uint64_t bytes) {
  if (!obs_) return;
  rbc_delivered_->add();
  rbc_bytes_->add(bytes);
}

// ---------------------------------------------------------------------------
// GossipProbe
// ---------------------------------------------------------------------------

void GossipProbe::attach(Obs* obs, uint32_t party) {
  obs_ = obs;
  if (!obs_) return;
  party_ = party;
  Registry& r = obs_->registry();
  adverts_ = &r.counter("gossip.adverts");
  requests_ = &r.counter("gossip.requests_sent");
  retries_ = &r.counter("gossip.request_retries");
  served_ = &r.counter("gossip.requests_served");
  served_bytes_ = &r.counter("gossip.served_bytes");
  pending_ = &r.gauge("gossip.pending_depth");
  fetch_us_ = &r.histogram("gossip.fetch_us", duration_bounds());
  fanout_ = &r.histogram("gossip.artifact_fanout", Histogram::linear(1, 32));
}

void GossipProbe::on_advert(int64_t pending_depth) {
  if (!obs_) return;
  adverts_->add();
  pending_->set(pending_depth);
}

void GossipProbe::on_request_sent(bool retry, int64_t now) {
  if (!obs_) return;
  requests_->add();
  if (retry) {
    retries_->add();
    obs_->tracer().instant("pull-retry", "gossip", party_, kLaneGossip, now);
  }
}

void GossipProbe::on_request_served(uint64_t bytes) {
  if (!obs_) return;
  served_->add();
  served_bytes_->add(bytes);
}

void GossipProbe::on_fetched(uint64_t bytes, int64_t first_advert_at, int64_t now) {
  if (!obs_) return;
  if (first_advert_at >= 0) {
    fetch_us_->record(now - first_advert_at);
    obs_->tracer().complete("fetch", "gossip", party_, kLaneGossip, first_advert_at,
                            now - first_advert_at, "bytes", static_cast<int64_t>(bytes));
  }
}

void GossipProbe::on_artifact_retired(uint64_t serves) {
  if (!obs_) return;
  fanout_->record(static_cast<int64_t>(serves));
}

void GossipProbe::on_pending_depth(int64_t depth) {
  if (!obs_) return;
  pending_->set(depth);
}

// ---------------------------------------------------------------------------
// NetProbe
// ---------------------------------------------------------------------------

void NetProbe::attach(Obs* obs, size_t n) {
  obs_ = obs;
  if (!obs_) return;
  sample_.assign(n, 0);
  Registry& r = obs_->registry();
  in_flight_ = &r.gauge("net.in_flight");
  delay_us_ = &r.histogram("net.delay_us", duration_bounds());
}

void NetProbe::on_send(uint32_t from, uint64_t /*wire_bytes*/, int64_t delay_us) {
  if (!obs_) return;
  in_flight_->add(1);
  if ((sample_[from]++ & 3) == 0) delay_us_->record(delay_us);
}

void NetProbe::on_deliver() {
  if (!obs_) return;
  in_flight_->add(-1);
}

}  // namespace icc::obs
