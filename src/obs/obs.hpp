// Run-level telemetry: one Obs object per cluster bundles a metrics
// Registry and a virtual-time span Tracer behind a single enable switch.
//
// Probes follow the support/log.hpp discipline: disabled telemetry costs a
// null-pointer check at each probe site (parties are handed a null Obs*, so
// every probe method returns on its first branch), and enabling it must not
// change protocol behaviour — probes only read protocol state, never mutate
// it (asserted by the on/off determinism test in tests/obs/).
//
// The probe classes below concentrate the metric names, bucket layouts and
// per-round bookkeeping so the instrumented subsystems (consensus parties,
// gossip layer, network) stay one-liner call sites. Metric objects live in
// the Registry and are shared by name: n parties bumping
// "consensus.rounds" produce the aggregate directly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "obs/journal.hpp"
#include "obs/metrics.hpp"
#include "obs/runtime.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace icc::obs {

struct ObsConfig {
  bool enabled = false;          ///< master switch; false = all probes off
  size_t trace_capacity = 1 << 16;  ///< span-tracer ring slots (0 = no tracing)
  /// Wall-clock histograms for the ingress-pipeline decode/verify stages
  /// (~2 steady_clock reads per payload — opt-in so default telemetry stays
  /// within the <5% overhead budget; see EXPERIMENTS.md F-OBS).
  bool stage_wall_timing = false;
  /// Structured event journal (flight recorder, obs/journal.hpp). Opt-in on
  /// top of `enabled` — journaling records per-event history, not
  /// aggregates, so it has its own switch and capacity bound.
  bool journal = false;
  size_t journal_capacity = 1 << 20;  ///< max recorded events (excess counted)
  /// Causal layer on top of the journal: every wire transfer records a
  /// send/recv event pair with a deterministic edge id (schema
  /// icc-journal/v2; obs/causal.hpp). On by default when the journal is on;
  /// switch off to produce byte-light v1 journals.
  bool journal_causal = true;
  /// Wall-clock runtime profiler (obs/runtime.hpp). Opt-in on top of
  /// `enabled`; its output is explicitly NON-DETERMINISTIC (steady_clock
  /// spans, lock waits, executor health) and never feeds journal or metrics
  /// bytes — the determinism matrices stay green with it on.
  bool runtime = false;
  size_t runtime_span_capacity = 1 << 15;  ///< span-ring slots per lane
  /// Longitudinal windowed time-series (obs/timeseries.hpp). Opt-in on top
  /// of `enabled`; windows close at virtual-time boundaries (engine tick),
  /// so the series bytes are deterministic like the journal. series_wall
  /// additionally emits explicitly-labeled NON-deterministic wall lines
  /// (RSS, stream drops) — the runtime-profiler exemption, never mixed into
  /// the deterministic window records.
  bool series = false;
  int64_t series_window_us = 1'000'000;  ///< window length (virtual µs)
  size_t series_full_res = 512;          ///< full-resolution windows kept
  bool series_wall = false;              ///< wall lines (soak drivers only)
};

class Obs {
 public:
  explicit Obs(const ObsConfig& config)
      : config_(config),
        tracer_(config.enabled ? config.trace_capacity : 0),
        journal_((config.enabled && config.journal) ? config.journal_capacity : 0) {
    if (config.enabled && config.runtime)
      runtime_ = std::make_unique<RuntimeProfiler>(config.runtime_span_capacity);
    if (config.enabled && config.series) {
      SeriesConfig sc;
      sc.window_us = config.series_window_us;
      sc.full_res = config.series_full_res;
      sc.wall = config.series_wall;
      series_ = std::make_unique<TimeSeries>(&registry_, sc);
    }
  }

  bool enabled() const { return config_.enabled; }
  const ObsConfig& config() const { return config_; }
  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  /// Cluster-wide flight recorder; null when journaling is off, so scribes
  /// (JournalScribe::attach) null-attach exactly like probes do.
  Journal* journal() { return journal_.enabled() ? &journal_ : nullptr; }
  const Journal* journal() const { return journal_.enabled() ? &journal_ : nullptr; }
  /// Wall-clock profiler; null when off, so instrumentation sites null-check
  /// exactly like every other probe.
  RuntimeProfiler* runtime() { return runtime_.get(); }
  const RuntimeProfiler* runtime() const { return runtime_.get(); }
  /// Windowed time-series recorder; null when off (probe sites null-check).
  TimeSeries* series() { return series_.get(); }
  const TimeSeries* series() const { return series_.get(); }

 private:
  ObsConfig config_;
  Registry registry_;
  Tracer tracer_;
  Journal journal_;
  std::unique_ptr<RuntimeProfiler> runtime_;
  std::unique_ptr<TimeSeries> series_;
};

// ---------------------------------------------------------------------------
// Consensus probe (per party; wired through icc0/icc1/icc2)
// ---------------------------------------------------------------------------

/// Per-round protocol timings and leader-honesty tags. The paper's claims
/// these metrics quantify: reciprocal throughput 2δ / latency 3δ (§1,
/// F-LAT), O(1)-expected rounds to finalize (§1, F-RND), and the
/// O(δ)-honest / O(Δ_bnd)-corrupt round split (§1 "Robust consensus",
/// F-ROB). See DESIGN.md § Observability for the full mapping.
class PartyProbe {
 public:
  PartyProbe() = default;

  /// `honesty` tags rounds by the actual corruption status of the rank-0
  /// leader (supplied by the harness, which knows the corrupt slots);
  /// without it rounds are tagged by the party-observable proxy only.
  void attach(Obs* obs, uint32_t party, std::function<bool(uint32_t)> honesty);
  bool on() const { return obs_ != nullptr; }

  /// Beacon ready, round started (Fig. 1 clause evaluation begins).
  void on_enter_round(uint64_t round, int64_t now);
  /// First valid proposal for `round` entered the pool.
  void on_proposal_seen(uint64_t round, int64_t now);
  /// This party proposed (clause (b)).
  void on_proposed(uint64_t round, int64_t now);
  /// Round finished (clause (a)): a round-`round` notarization exists.
  /// `leader` is the rank-0 party; `leader_block` whether the notarized
  /// block is the leader's; `clean` whether N ⊆ {B} held (finalization
  /// share broadcast).
  void on_round_done(uint64_t round, uint32_t leader, bool leader_block, bool clean,
                     int64_t now);
  /// A round-`round` block finalized; `gap` = rounds since the previous
  /// finalized round (the paper's rounds-to-finalize).
  void on_finalized(uint64_t round, uint64_t gap, int64_t now);
  /// A block entered this party's output queue.
  void on_commit(uint64_t round, int64_t now);
  /// ICC2 only: the reliable-broadcast sub-layer reconstructed and delivered
  /// a full block-bearing artifact to the consensus layer.
  void on_rbc_delivered(uint64_t bytes);

 private:
  struct RoundState {
    int64_t start = -1;
    bool proposal_seen = false;
  };
  RoundState* state(uint64_t round);

  Obs* obs_ = nullptr;
  uint32_t party_ = 0;
  std::function<bool(uint32_t)> honesty_;

  Counter* rounds_ = nullptr;
  Counter* rounds_leader_block_ = nullptr;
  Counter* rounds_clean_ = nullptr;
  Counter* rounds_honest_leader_ = nullptr;
  Counter* rounds_corrupt_leader_ = nullptr;
  Counter* proposals_ = nullptr;
  Counter* commits_ = nullptr;
  Counter* finalized_ = nullptr;
  Counter* rbc_delivered_ = nullptr;
  Counter* rbc_bytes_ = nullptr;
  Histogram* propose_us_ = nullptr;
  Histogram* notarize_us_ = nullptr;
  Histogram* finalize_us_ = nullptr;
  Histogram* round_us_honest_ = nullptr;
  Histogram* round_us_corrupt_ = nullptr;
  Histogram* finalize_gap_ = nullptr;

  std::map<uint64_t, RoundState> round_state_;  // bounded (pruned on entry)
};

// ---------------------------------------------------------------------------
// Gossip probe (queue depth, delivery fan-out, fetch latency)
// ---------------------------------------------------------------------------

class GossipProbe {
 public:
  GossipProbe() = default;
  void attach(Obs* obs, uint32_t party);
  bool on() const { return obs_ != nullptr; }

  void on_advert(int64_t pending_depth);
  void on_request_sent(bool retry, int64_t now);
  /// We uploaded an artifact to a requester (delivery fan-out).
  void on_request_served(uint64_t bytes);
  /// A pending artifact arrived; first-advert → stored is the fetch latency.
  void on_fetched(uint64_t bytes, int64_t first_advert_at, int64_t now);
  /// An artifact left the store (pruned); `serves` = how many requesters we
  /// uploaded it to over its lifetime — the per-artifact delivery fan-out.
  void on_artifact_retired(uint64_t serves);
  void on_pending_depth(int64_t depth);

 private:
  Obs* obs_ = nullptr;
  uint32_t party_ = 0;
  Counter* adverts_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* retries_ = nullptr;
  Counter* served_ = nullptr;
  Counter* served_bytes_ = nullptr;
  Gauge* pending_ = nullptr;
  Histogram* fetch_us_ = nullptr;
  Histogram* fanout_ = nullptr;  // serves per party snapshotted coarsely
};

// ---------------------------------------------------------------------------
// Network probe (in-flight depth, per-delivery delay)
// ---------------------------------------------------------------------------

/// The send path is the simulator's hottest probe site (every wire message).
/// Message/byte totals are NOT duplicated here — sim::NetworkMetrics already
/// counts them unconditionally, and the harness folds them into the registry
/// at snapshot time. The live probe only maintains what the always-on
/// accounting cannot: the in-flight depth and a delay histogram (sampled
/// 1-in-4, deterministically — link delays are strongly repetitive). The
/// sampling counters are per *sender*: each counter then advances in its
/// owner's program order, so the sampled multiset — and the histogram
/// snapshot — is identical at any thread count (a shared counter would make
/// "every 4th send" depend on how senders interleave).
class NetProbe {
 public:
  NetProbe() = default;
  void attach(Obs* obs, size_t n);
  bool on() const { return obs_ != nullptr; }

  void on_send(uint32_t from, uint64_t wire_bytes, int64_t delay_us);
  void on_deliver();

 private:
  Obs* obs_ = nullptr;
  Gauge* in_flight_ = nullptr;
  Histogram* delay_us_ = nullptr;
  std::vector<uint64_t> sample_;  ///< per-sender 1-in-4 sampling counters
};

/// Shared duration bucket layout: 100 µs … ~14 s, exponential.
std::vector<int64_t> duration_bounds();

}  // namespace icc::obs
