#include "obs/runtime.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"  // json_escape
#include "obs/trace.hpp"
#include "support/log.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#endif

namespace icc::obs {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;

const char* const kTaskNames[kTaskKinds] = {
    "engine_batch", "parallel_region", "party_group",
    "defer_replay", "verify_slice",    "intern_parse",
};
const char* const kLockNames[kLockSites] = {
    "executor_queue",
    "verifier_cache",
    "intern_artifacts",
    "intern_verdicts",
};

uint64_t os_thread_id() {
#if defined(__linux__)
  return static_cast<uint64_t>(::syscall(SYS_gettid));
#else
  return 0;
#endif
}

int64_t thread_cpu_ns() {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return -1;
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
#else
  return -1;
#endif
}

/// Total CPU (utime + stime) of thread `tid` since it started, via
/// /proc/self/task/<tid>/stat. -1 when unavailable. Tick-granular (~10 ms),
/// which is plenty against multi-second profiling windows.
int64_t proc_thread_cpu_ns(uint64_t tid) {
#if defined(__linux__)
  char path[64];
  std::snprintf(path, sizeof path, "/proc/self/task/%" PRIu64 "/stat", tid);
  std::ifstream in(path);
  if (!in) return -1;
  std::string line;
  std::getline(in, line);
  // Field 2 (comm) may contain spaces; skip to the closing paren first.
  const size_t close = line.rfind(')');
  if (close == std::string::npos) return -1;
  std::istringstream is(line.substr(close + 1));
  std::string tok;
  // Fields 3..13 precede utime (field 14) and stime (field 15).
  for (int f = 3; f <= 13; ++f) {
    if (!(is >> tok)) return -1;
  }
  uint64_t utime = 0, stime = 0;
  if (!(is >> utime >> stime)) return -1;
  const long hz = ::sysconf(_SC_CLK_TCK);
  if (hz <= 0) return -1;
  return static_cast<int64_t>((utime + stime) * (1'000'000'000ULL / static_cast<uint64_t>(hz)));
#else
  (void)tid;
  return -1;
#endif
}

/// VmRSS / VmHWM in kB from /proc/self/status; -1 when unavailable.
void proc_rss_kb(int64_t* rss_kb, int64_t* peak_kb) {
  *rss_kb = -1;
  *peak_kb = -1;
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    int64_t* dst = nullptr;
    if (line.rfind("VmRSS:", 0) == 0) dst = rss_kb;
    else if (line.rfind("VmHWM:", 0) == 0) dst = peak_kb;
    if (dst != nullptr) *dst = std::strtoll(line.c_str() + 6, nullptr, 10);
  }
#endif
}

}  // namespace

const char* task_kind_name(TaskKind kind) {
  const size_t i = static_cast<size_t>(kind);
  return i < kTaskKinds ? kTaskNames[i] : "?";
}

const char* lock_site_name(LockSite site) {
  const size_t i = static_cast<size_t>(site);
  return i < kLockSites ? kLockNames[i] : "?";
}

int64_t RuntimeProfiler::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RuntimeProfiler::RuntimeProfiler(size_t span_capacity)
    : span_capacity_(span_capacity), lanes_(new Lane[kMaxLanes]) {
  start_ns_ = now_ns();
  // The constructing thread is the coordinator: registering it here pins it
  // to lane 0 ("main") and starts its window with the profiler's.
  (void)lane();
}

RuntimeProfiler::~RuntimeProfiler() = default;

RuntimeProfiler::Lane& RuntimeProfiler::register_lane() {
  uint32_t slot = next_lane_.fetch_add(1, kRelaxed);
  if (slot >= kMaxLanes) slot = kMaxLanes - 1;  // overflow lane (see kMaxLanes)
  Lane& l = lanes_[slot];
  l.start_ns = now_ns();
  l.tid = os_thread_id();
  l.cpu_start_ns = thread_cpu_ns();
  if (span_capacity_ > 0) l.spans.resize(span_capacity_);
  l.used.store(true, std::memory_order_release);
  return l;
}

RuntimeProfiler::Lane& RuntimeProfiler::lane() {
  struct TlsRef {
    RuntimeProfiler* owner = nullptr;
    Lane* lane = nullptr;
  };
  thread_local TlsRef tls;
  if (tls.owner != this) {
    tls.owner = this;
    tls.lane = &register_lane();
  }
  return *tls.lane;
}

void RuntimeProfiler::record_span(TaskKind kind, int64_t t0_ns, int64_t t1_ns,
                                  uint64_t arg0, uint64_t arg1) {
  Lane& l = lane();
  if (l.spans.empty()) return;
  Span& s = l.spans[l.spans_recorded % l.spans.size()];
  s.t0_ns = t0_ns;
  s.t1_ns = t1_ns;
  s.arg0 = arg0;
  s.arg1 = arg1;
  s.kind = kind;
  l.spans_recorded++;
}

void RuntimeProfiler::lock_sample(LockSite site, int64_t wait_ns) {
  Lane& l = lane();
  LockStat& st = l.locks[static_cast<size_t>(site)];
  st.acquisitions++;
  if (wait_ns > 0) {
    st.contended++;
    st.wait_ns += wait_ns;
    if (wait_ns > st.max_wait_ns) st.max_wait_ns = wait_ns;
  }
}

void RuntimeProfiler::idle_begin(bool worker) {
  Lane& l = lane();
  if (worker) l.is_worker.store(true, kRelaxed);
  l.wait_since_ns.store(now_ns(), kRelaxed);
}

void RuntimeProfiler::idle_end() {
  Lane& l = lane();
  const int64_t since = l.wait_since_ns.load(kRelaxed);
  if (since == 0) return;
  l.wait_since_ns.store(0, kRelaxed);
  l.idle_ns.fetch_add(now_ns() - since, kRelaxed);
}

void RuntimeProfiler::slice(bool stolen) {
  Lane& l = lane();
  if (stolen) {
    l.stolen++;
  } else {
    l.claimed++;
  }
}

RuntimeReport RuntimeProfiler::make_report() const {
  const int64_t now = now_ns();
  RuntimeReport rep;
  rep.threads = static_cast<uint32_t>(threads_);
  rep.wall_ns = now - start_ns_;
  rep.defer_high_water = defer_high_water_;
  proc_rss_kb(&rep.rss_kb, &rep.peak_rss_kb);

  const uint32_t lanes = std::min<uint32_t>(next_lane_.load(kRelaxed), kMaxLanes);
  for (uint32_t i = 0; i < lanes; ++i) {
    const Lane& l = lanes_[i];
    if (!l.used.load(std::memory_order_acquire)) continue;
    WorkerReport w;
    w.name = i == 0                      ? "main"
             : l.is_worker.load(kRelaxed) ? "worker-" + std::to_string(i)
                                          : "thread-" + std::to_string(i);
    // Idle = completed waits plus the still-open wait of a parked thread
    // (workers sit in cv_.wait between runs and at export time).
    int64_t idle = l.idle_ns.load(kRelaxed);
    if (const int64_t since = l.wait_since_ns.load(kRelaxed); since != 0)
      idle += now - since;
    const int64_t window = now - l.start_ns;
    w.idle_ns = std::min(idle, window);
    w.busy_ns = window - w.idle_ns;
    if (l.cpu_start_ns >= 0 && l.tid != 0) {
      const int64_t cpu_end = proc_thread_cpu_ns(l.tid);
      if (cpu_end >= 0) w.cpu_ns = std::max<int64_t>(0, cpu_end - l.cpu_start_ns);
    }
    w.claimed = l.claimed;
    w.stolen = l.stolen;
    w.spans_recorded = l.spans_recorded;
    w.spans_dropped =
        l.spans.empty() || l.spans_recorded <= l.spans.size() ? 0
                                                              : l.spans_recorded - l.spans.size();
    w.locks = l.locks;

    // Per-kind aggregation with exclusive time: spans on one lane are
    // properly nested (RAII scopes), so each span's direct parent is the
    // innermost enclosing one — subtract children from it. A ring that
    // overwrote (spans_dropped > 0) can present orphaned children; the
    // clamp below keeps exclusive totals sane rather than negative.
    const size_t live = std::min<uint64_t>(l.spans_recorded, l.spans.size());
    std::vector<const Span*> spans;
    spans.reserve(live);
    for (size_t k = 0; k < live; ++k) spans.push_back(&l.spans[k]);
    std::sort(spans.begin(), spans.end(), [](const Span* a, const Span* b) {
      if (a->t0_ns != b->t0_ns) return a->t0_ns < b->t0_ns;
      return a->t1_ns > b->t1_ns;
    });
    std::vector<std::pair<const Span*, int64_t>> stack;  // (span, child time)
    auto close_top = [&] {
      auto [sp, child_ns] = stack.back();
      stack.pop_back();
      const int64_t dur = sp->t1_ns - sp->t0_ns;
      TaskAgg& agg = w.tasks[static_cast<size_t>(sp->kind)];
      agg.exclusive_ns += std::max<int64_t>(0, dur - child_ns);
    };
    for (const Span* sp : spans) {
      const int64_t dur = std::max<int64_t>(0, sp->t1_ns - sp->t0_ns);
      TaskAgg& agg = w.tasks[static_cast<size_t>(sp->kind)];
      agg.count++;
      agg.total_ns += dur;
      if (dur > agg.max_ns) agg.max_ns = dur;
      while (!stack.empty() && stack.back().first->t1_ns <= sp->t0_ns) close_top();
      if (!stack.empty()) stack.back().second += dur;
      stack.emplace_back(sp, 0);
    }
    while (!stack.empty()) close_top();

    rep.workers.push_back(std::move(w));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Chrome trace export (merged with the virtual-time tracer)
// ---------------------------------------------------------------------------

std::string RuntimeProfiler::trace_json(const Tracer* virtual_tracer) const {
  // One process for all wall-clock lanes, far above any party index the
  // virtual tracer uses as pid.
  constexpr uint32_t kRuntimePid = 1'000'000;
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& ev) {
    if (!first) os << ",\n";
    first = false;
    os << ev;
  };
  if (virtual_tracer != nullptr) {
    std::string inner = virtual_tracer->events_json();
    if (!inner.empty()) {
      os << inner;
      first = false;
    }
  }
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(kRuntimePid) +
       ",\"tid\":0,\"args\":{\"name\":\"icc-runtime (wall-clock, non-deterministic)\"}}");

  uint64_t recorded = 0, dropped = 0;
  const uint32_t lanes = std::min<uint32_t>(next_lane_.load(kRelaxed), kMaxLanes);
  for (uint32_t i = 0; i < lanes; ++i) {
    const Lane& l = lanes_[i];
    if (!l.used.load(std::memory_order_acquire)) continue;
    const std::string lane_name =
        i == 0 ? "main" : (l.is_worker.load(kRelaxed) ? "worker-" : "thread-") + std::to_string(i);
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(kRuntimePid) +
         ",\"tid\":" + std::to_string(i) + ",\"args\":{\"name\":\"" + lane_name + "\"}}");
    recorded += l.spans_recorded;
    const size_t live = std::min<uint64_t>(l.spans_recorded, l.spans.size());
    if (l.spans_recorded > live) dropped += l.spans_recorded - live;
    for (size_t k = 0; k < live; ++k) {
      const Span& s = l.spans[k];
      std::ostringstream ev;
      ev << "{\"name\":\"" << task_kind_name(s.kind) << "\",\"cat\":\"runtime\",\"ph\":\"X\""
         << ",\"ts\":" << (s.t0_ns - start_ns_) / 1000
         << ",\"dur\":" << std::max<int64_t>(0, s.t1_ns - s.t0_ns) / 1000
         << ",\"pid\":" << kRuntimePid << ",\"tid\":" << i << ",\"args\":{\"arg0\":" << s.arg0
         << ",\"arg1\":" << s.arg1 << "}}";
      emit(ev.str());
    }
  }
  os << "],\"metadata\":{";
  if (virtual_tracer != nullptr) {
    os << "\"recorded\":" << virtual_tracer->recorded()
       << ",\"dropped\":" << virtual_tracer->dropped()
       << ",\"capacity\":" << virtual_tracer->capacity() << ",";
  }
  os << "\"runtime\":{\"recorded\":" << recorded << ",\"dropped\":" << dropped
     << ",\"lane_capacity\":" << span_capacity_ << "}},\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

// ---------------------------------------------------------------------------
// icc-runtime/v1 JSON serialization
// ---------------------------------------------------------------------------

std::string runtime_report_json(const RuntimeReport& rep) {
  std::ostringstream os;
  os << "{\"schema\":\"icc-runtime/v1\",\"nondeterministic\":true"
     << ",\"threads\":" << rep.threads << ",\"wall_ns\":" << rep.wall_ns
     << ",\"defer_high_water\":" << rep.defer_high_water << ",\"rss_kb\":" << rep.rss_kb
     << ",\"peak_rss_kb\":" << rep.peak_rss_kb;
  if (rep.has_intern) {
    os << ",\"intern\":{\"physical\":true,\"parses\":" << rep.intern_parses
       << ",\"decode_hits\":" << rep.intern_decode_hits
       << ",\"real_verifications\":" << rep.intern_real_verifications
       << ",\"memo_hits\":" << rep.intern_memo_hits << ",\"primed\":" << rep.intern_primed
       << "}";
  }
  os << ",\"workers\":[";
  for (size_t i = 0; i < rep.workers.size(); ++i) {
    const WorkerReport& w = rep.workers[i];
    if (i) os << ",";
    os << "\n {\"name\":\"" << json_escape(w.name) << "\",\"busy_ns\":" << w.busy_ns
       << ",\"idle_ns\":" << w.idle_ns << ",\"cpu_ns\":" << w.cpu_ns
       << ",\"claimed\":" << w.claimed << ",\"stolen\":" << w.stolen
       << ",\"spans_recorded\":" << w.spans_recorded
       << ",\"spans_dropped\":" << w.spans_dropped << ",\"tasks\":[";
    bool first = true;
    for (size_t k = 0; k < kTaskKinds; ++k) {
      const TaskAgg& t = w.tasks[k];
      if (t.count == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"kind\":\"" << kTaskNames[k] << "\",\"count\":" << t.count
         << ",\"total_ns\":" << t.total_ns << ",\"exclusive_ns\":" << t.exclusive_ns
         << ",\"max_ns\":" << t.max_ns << "}";
    }
    os << "],\"locks\":[";
    first = true;
    for (size_t k = 0; k < kLockSites; ++k) {
      const LockStat& s = w.locks[k];
      if (s.acquisitions == 0) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"site\":\"" << kLockNames[k] << "\",\"acquisitions\":" << s.acquisitions
         << ",\"contended\":" << s.contended << ",\"wait_ns\":" << s.wait_ns
         << ",\"max_wait_ns\":" << s.max_wait_ns << "}";
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

// --- minimal recursive-descent parser for exactly this schema ---

namespace {

struct Cursor {
  const char* p;
  const char* end;
  std::string* err;

  bool fail(const std::string& msg) {
    if (err != nullptr && err->empty()) {
      *err = msg + " at offset " + std::to_string(pos_);
    }
    return false;
  }
  size_t pos_ = 0;
  void advance(size_t k) {
    p += k;
    pos_ += k;
  }
  void skip_ws() {
    while (p < end && (std::isspace(static_cast<unsigned char>(*p)) != 0)) advance(1);
  }
  bool lit(char c) {
    skip_ws();
    if (p >= end || *p != c) return fail(std::string("expected '") + c + "'");
    advance(1);
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return p < end && *p == c;
  }
};

bool parse_string(Cursor& c, std::string* out) {
  if (!c.lit('"')) return false;
  out->clear();
  while (c.p < c.end && *c.p != '"') {
    if (*c.p == '\\') {
      c.advance(1);
      if (c.p >= c.end) return c.fail("truncated escape");
    }
    out->push_back(*c.p);
    c.advance(1);
  }
  if (c.p >= c.end) return c.fail("unterminated string");
  c.advance(1);
  return true;
}

bool parse_i64(Cursor& c, int64_t* out) {
  c.skip_ws();
  char* endp = nullptr;
  const long long v = std::strtoll(c.p, &endp, 10);
  if (endp == c.p || endp > c.end) return c.fail("expected integer");
  c.advance(static_cast<size_t>(endp - c.p));
  *out = v;
  return true;
}

bool skip_value(Cursor& c);

bool skip_composite(Cursor& c, char open, char close) {
  if (!c.lit(open)) return false;
  if (c.peek(close)) return c.lit(close);
  for (;;) {
    if (open == '{') {
      std::string key;
      if (!parse_string(c, &key) || !c.lit(':')) return false;
    }
    if (!skip_value(c)) return false;
    if (c.peek(',')) {
      c.lit(',');
      continue;
    }
    return c.lit(close);
  }
}

bool skip_value(Cursor& c) {
  c.skip_ws();
  if (c.p >= c.end) return c.fail("truncated value");
  switch (*c.p) {
    case '{': return skip_composite(c, '{', '}');
    case '[': return skip_composite(c, '[', ']');
    case '"': {
      std::string s;
      return parse_string(c, &s);
    }
    default: {
      const char* start = c.p;
      while (c.p < c.end && std::strchr(",]}\n\r\t ", *c.p) == nullptr) c.advance(1);
      if (c.p == start) return c.fail("truncated value");
      return true;
    }
  }
}

/// Parse an object, dispatching each key to `field(key)`; `field` must
/// consume the value (or return false on error). Unknown keys are skipped by
/// the caller returning skip_value.
template <typename FieldFn>
bool parse_object(Cursor& c, FieldFn&& field) {
  if (!c.lit('{')) return false;
  if (c.peek('}')) return c.lit('}');
  for (;;) {
    std::string key;
    if (!parse_string(c, &key) || !c.lit(':')) return false;
    if (!field(key)) return false;
    if (c.peek(',')) {
      c.lit(',');
      continue;
    }
    return c.lit('}');
  }
}

template <typename ItemFn>
bool parse_array(Cursor& c, ItemFn&& item) {
  if (!c.lit('[')) return false;
  if (c.peek(']')) return c.lit(']');
  for (;;) {
    if (!item()) return false;
    if (c.peek(',')) {
      c.lit(',');
      continue;
    }
    return c.lit(']');
  }
}

int kind_index(const std::string& name) {
  for (size_t k = 0; k < kTaskKinds; ++k) {
    if (name == kTaskNames[k]) return static_cast<int>(k);
  }
  return -1;
}

int site_index(const std::string& name) {
  for (size_t k = 0; k < kLockSites; ++k) {
    if (name == kLockNames[k]) return static_cast<int>(k);
  }
  return -1;
}

bool parse_worker(Cursor& c, WorkerReport* w) {
  return parse_object(c, [&](const std::string& key) -> bool {
    int64_t v = 0;
    if (key == "name") return parse_string(c, &w->name);
    if (key == "busy_ns") return parse_i64(c, &w->busy_ns);
    if (key == "idle_ns") return parse_i64(c, &w->idle_ns);
    if (key == "cpu_ns") return parse_i64(c, &w->cpu_ns);
    if (key == "claimed") {
      if (!parse_i64(c, &v)) return false;
      w->claimed = static_cast<uint64_t>(v);
      return true;
    }
    if (key == "stolen") {
      if (!parse_i64(c, &v)) return false;
      w->stolen = static_cast<uint64_t>(v);
      return true;
    }
    if (key == "spans_recorded") {
      if (!parse_i64(c, &v)) return false;
      w->spans_recorded = static_cast<uint64_t>(v);
      return true;
    }
    if (key == "spans_dropped") {
      if (!parse_i64(c, &v)) return false;
      w->spans_dropped = static_cast<uint64_t>(v);
      return true;
    }
    if (key == "tasks") {
      return parse_array(c, [&]() -> bool {
        std::string kind;
        TaskAgg agg;
        if (!parse_object(c, [&](const std::string& tk) -> bool {
              int64_t tv = 0;
              if (tk == "kind") return parse_string(c, &kind);
              if (tk == "count") {
                if (!parse_i64(c, &tv)) return false;
                agg.count = static_cast<uint64_t>(tv);
                return true;
              }
              if (tk == "total_ns") return parse_i64(c, &agg.total_ns);
              if (tk == "exclusive_ns") return parse_i64(c, &agg.exclusive_ns);
              if (tk == "max_ns") return parse_i64(c, &agg.max_ns);
              return skip_value(c);
            }))
          return false;
        const int idx = kind_index(kind);
        if (idx >= 0) w->tasks[static_cast<size_t>(idx)] = agg;
        return true;  // unknown kinds: forward compatibility, ignore
      });
    }
    if (key == "locks") {
      return parse_array(c, [&]() -> bool {
        std::string site;
        LockStat st;
        if (!parse_object(c, [&](const std::string& lk) -> bool {
              int64_t lv = 0;
              if (lk == "site") return parse_string(c, &site);
              if (lk == "acquisitions") {
                if (!parse_i64(c, &lv)) return false;
                st.acquisitions = static_cast<uint64_t>(lv);
                return true;
              }
              if (lk == "contended") {
                if (!parse_i64(c, &lv)) return false;
                st.contended = static_cast<uint64_t>(lv);
                return true;
              }
              if (lk == "wait_ns") return parse_i64(c, &st.wait_ns);
              if (lk == "max_wait_ns") return parse_i64(c, &st.max_wait_ns);
              return skip_value(c);
            }))
          return false;
        const int idx = site_index(site);
        if (idx >= 0) w->locks[static_cast<size_t>(idx)] = st;
        return true;
      });
    }
    return skip_value(c);
  });
}

}  // namespace

std::optional<RuntimeReport> parse_runtime_report(const std::string& json,
                                                  std::string* error) {
  std::string local_err;
  std::string* err = error != nullptr ? error : &local_err;
  err->clear();
  Cursor c{json.data(), json.data() + json.size(), err};
  RuntimeReport rep;
  bool saw_schema = false;
  const bool ok = parse_object(c, [&](const std::string& key) -> bool {
    int64_t v = 0;
    if (key == "schema") {
      std::string s;
      if (!parse_string(c, &s)) return false;
      if (s != "icc-runtime/v1") return c.fail("unsupported schema \"" + s + "\"");
      saw_schema = true;
      return true;
    }
    if (key == "threads") {
      if (!parse_i64(c, &v)) return false;
      rep.threads = static_cast<uint32_t>(v);
      return true;
    }
    if (key == "wall_ns") return parse_i64(c, &rep.wall_ns);
    if (key == "defer_high_water") {
      if (!parse_i64(c, &v)) return false;
      rep.defer_high_water = static_cast<uint64_t>(v);
      return true;
    }
    if (key == "rss_kb") return parse_i64(c, &rep.rss_kb);
    if (key == "peak_rss_kb") return parse_i64(c, &rep.peak_rss_kb);
    if (key == "intern") {
      rep.has_intern = true;
      return parse_object(c, [&](const std::string& ik) -> bool {
        int64_t iv = 0;
        auto u64 = [&](uint64_t* dst) {
          if (!parse_i64(c, &iv)) return false;
          *dst = static_cast<uint64_t>(iv);
          return true;
        };
        if (ik == "parses") return u64(&rep.intern_parses);
        if (ik == "decode_hits") return u64(&rep.intern_decode_hits);
        if (ik == "real_verifications") return u64(&rep.intern_real_verifications);
        if (ik == "memo_hits") return u64(&rep.intern_memo_hits);
        if (ik == "primed") return u64(&rep.intern_primed);
        return skip_value(c);
      });
    }
    if (key == "workers") {
      return parse_array(c, [&]() -> bool {
        WorkerReport w;
        if (!parse_worker(c, &w)) return false;
        rep.workers.push_back(std::move(w));
        return true;
      });
    }
    return skip_value(c);
  });
  if (!ok) return std::nullopt;
  if (!saw_schema) {
    c.fail("missing schema field");
    return std::nullopt;
  }
  if (rep.wall_ns <= 0) {
    c.fail("non-positive wall_ns");
    return std::nullopt;
  }
  if (rep.threads == 0) {
    c.fail("zero threads");
    return std::nullopt;
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Parallel-efficiency analysis
// ---------------------------------------------------------------------------

RuntimeAnalysis analyze_runtime(const RuntimeReport& rep) {
  RuntimeAnalysis a;
  const double wall = static_cast<double>(rep.wall_ns);
  const double threads = std::max<uint32_t>(1, rep.threads);
  if (wall <= 0 || rep.workers.empty()) return a;

  // CPU basis when every lane reported a per-thread CPU delta: wall-minus-
  // idle overcounts busy on an oversubscribed host (runnable-but-descheduled
  // looks busy), while CPU time stays honest there.
  a.cpu_basis = std::all_of(rep.workers.begin(), rep.workers.end(),
                            [](const WorkerReport& w) { return w.cpu_ns >= 0; });
  double total_busy = 0;
  double region_ns = 0;
  for (const WorkerReport& w : rep.workers) {
    const double busy = static_cast<double>(a.cpu_basis ? w.cpu_ns : w.busy_ns);
    total_busy += std::clamp(busy, 0.0, wall);
    region_ns +=
        static_cast<double>(w.tasks[static_cast<size_t>(TaskKind::kParallelRegion)].total_ns);
  }
  total_busy = std::min(total_busy, threads * wall);
  a.utilization = total_busy / (threads * wall);
  // Single-run Amdahl estimate: with T threads over wall W, perfectly
  // parallel work would keep all T busy; every idle thread-second is serial
  // section exposure. f = (T*W - sum busy) / ((T-1) * W), clamped into
  // (0, 1] so downstream projections stay finite.
  if (rep.threads <= 1) {
    a.serial_fraction = 1.0;
  } else {
    a.serial_fraction =
        std::clamp((threads * wall - total_busy) / ((threads - 1.0) * wall), 1e-6, 1.0);
  }
  a.amdahl_max = 1.0 / a.serial_fraction;
  a.parallel_region_share = std::clamp(region_ns / wall, 0.0, 1.0);
  return a;
}

void print_runtime_summary(std::FILE* out, const RuntimeReport& rep,
                           const RuntimeAnalysis& a) {
  // One block under the log sink mutex: pool workers may still emit ICC_LOG
  // lines (their own dtor-time warnings, say) and those must not interleave
  // mid-summary. Nothing below may itself use ICC_LOG (the sink mutex is not
  // recursive).
  std::lock_guard<std::mutex> lk(log_sink_mutex());
  std::fprintf(out,
               "runtime: wall %.2f s, %u threads, utilization %.0f%% (%s basis), "
               "serial fraction f=%.3f -> Amdahl max %.2fx\n",
               static_cast<double>(rep.wall_ns) * 1e-9, rep.threads, a.utilization * 100.0,
               a.cpu_basis ? "cpu" : "wall", a.serial_fraction, a.amdahl_max);
  for (const WorkerReport& w : rep.workers) {
    std::fprintf(out,
                 "  %-10s busy %8.3f s  idle %8.3f s  cpu %8.3f s  "
                 "claimed %8llu  stolen %8llu%s\n",
                 w.name.c_str(), static_cast<double>(w.busy_ns) * 1e-9,
                 static_cast<double>(w.idle_ns) * 1e-9,
                 w.cpu_ns >= 0 ? static_cast<double>(w.cpu_ns) * 1e-9 : 0.0,
                 static_cast<unsigned long long>(w.claimed),
                 static_cast<unsigned long long>(w.stolen),
                 w.spans_dropped > 0 ? "  [ring overflowed]" : "");
  }
  // Contention hot-list, aggregated across lanes, worst wait first.
  struct Hot {
    size_t site;
    LockStat total;
    uint32_t holders = 0;
  };
  std::vector<Hot> hot;
  for (size_t k = 0; k < kLockSites; ++k) {
    Hot h{k, {}, 0};
    for (const WorkerReport& w : rep.workers) {
      const LockStat& s = w.locks[k];
      if (s.acquisitions == 0) continue;
      h.holders++;
      h.total.acquisitions += s.acquisitions;
      h.total.contended += s.contended;
      h.total.wait_ns += s.wait_ns;
      h.total.max_wait_ns = std::max(h.total.max_wait_ns, s.max_wait_ns);
    }
    if (h.total.acquisitions > 0) hot.push_back(h);
  }
  std::sort(hot.begin(), hot.end(),
            [](const Hot& x, const Hot& y) { return x.total.wait_ns > y.total.wait_ns; });
  for (const Hot& h : hot) {
    std::fprintf(out,
                 "  lock %-16s %10llu acq, %8llu contended, %9.3f ms waited "
                 "(max %.3f ms, %u holders)\n",
                 kLockNames[h.site], static_cast<unsigned long long>(h.total.acquisitions),
                 static_cast<unsigned long long>(h.total.contended),
                 static_cast<double>(h.total.wait_ns) * 1e-6,
                 static_cast<double>(h.total.max_wait_ns) * 1e-6, h.holders);
  }
  std::fflush(out);
}

}  // namespace icc::obs
