// Wall-clock runtime observatory (DESIGN.md §5.3).
//
// Everything else under src/obs/ lives in *virtual* time and is part of the
// byte-determinism contract: journals, metrics and traces must be identical
// at any thread count. This file is the deliberate exception. The
// RuntimeProfiler answers the questions virtual time cannot — where does
// wall-clock go across worker threads, which shard locks contend, how far
// from linear is the executor — and its output is therefore explicitly
// NON-DETERMINISTIC: timestamps come from steady_clock, counters depend on
// OS scheduling, and nothing here is ever mixed into journal or metrics
// bytes (asserted by tests/obs/runtime_test.cpp). Diffing two runtime
// reports across runs or thread counts is a category error.
//
// Recording model:
//   * Per-thread *lanes*, registered lazily through a thread_local cache the
//     first time a thread touches the profiler. Each lane owns a
//     fixed-capacity span ring (kind, start, end, two numeric args) — an
//     overflowing ring overwrites its oldest spans and counts them in
//     `spans_dropped`, it never corrupts or reallocates.
//   * Lock-wait sampling is try_lock-first (SampledLock): an uncontended
//     acquisition costs the try_lock plus one counter bump and reads no
//     clock; only the contended path pays two steady_clock reads to time
//     the blocking lock().
//   * Executor health flows in through support::TaskProbe (support/ cannot
//     depend on obs/, so the executor sees only that interface): idle
//     windows, slices claimed vs stolen per thread. The engine adds
//     defer-queue depth high-water; RSS gauges are read from /proc at
//     export time.
//
// Disabled cost: every instrumentation site is a single pointer check
// (profiler absent = null), the same null-probe discipline as obs.hpp.
//
// Exports: an `icc-runtime/v1` JSON report (parse_runtime_report /
// analyze_runtime round-trip it, tools/icc_runtime consumes it offline) and
// a Chrome trace with one track per lane that trace_json() places
// side-by-side with the virtual-time Tracer output in one trace container.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "support/executor.hpp"

namespace icc::obs {

class Tracer;

/// Span kinds recorded by the instrumented subsystems. Order is the wire
/// order of the report's per-kind arrays — append only.
enum class TaskKind : uint8_t {
  kEngineBatch = 0,  ///< coordinating thread: one run_batch (arg0 = batch id, arg1 = events)
  kParallelRegion,   ///< coordinating thread: inside executor->parallel_for (arg0 = groups)
  kPartyGroup,       ///< worker: one owner group's events (arg0 = owner, arg1 = events)
  kDeferReplay,      ///< coordinating thread: deferred side-effect replay (arg0 = closures)
  kVerifySlice,      ///< worker: one batch-verification slice (arg0 = shares)
  kInternParse,      ///< worker: parse of a new interned payload (arg0 = bytes)
  kCount
};
constexpr size_t kTaskKinds = static_cast<size_t>(TaskKind::kCount);
const char* task_kind_name(TaskKind kind);

/// Sampled lock sites. The journal has no reservation mutex to sample —
/// journal appends ride the DeferQueue onto the coordinating thread
/// (DESIGN.md §6) — so the executor's batch-queue mutex stands in as the
/// coordination lock alongside the sharded caches.
enum class LockSite : uint8_t {
  kExecutorQueue = 0,  ///< support::Executor batch deque mutex
  kVerifierCache,      ///< per-party verdict-cache shard mutexes
  kInternArtifacts,    ///< InternStore artifact shard mutexes
  kInternVerdicts,     ///< InternStore verdict-memo shard mutexes
  kCount
};
constexpr size_t kLockSites = static_cast<size_t>(LockSite::kCount);
const char* lock_site_name(LockSite site);

// ---------------------------------------------------------------------------
// Report structures (what the JSON serializes; tools/icc_runtime's model)
// ---------------------------------------------------------------------------

struct LockStat {
  uint64_t acquisitions = 0;  ///< sampled acquisitions (uncontended + contended)
  uint64_t contended = 0;     ///< acquisitions that had to block
  int64_t wait_ns = 0;        ///< total blocked time
  int64_t max_wait_ns = 0;    ///< worst single wait
};

struct TaskAgg {
  uint64_t count = 0;
  int64_t total_ns = 0;      ///< inclusive wall time
  int64_t exclusive_ns = 0;  ///< total minus same-lane nested spans
  int64_t max_ns = 0;
};

struct WorkerReport {
  std::string name;           ///< "main", "worker-K" or "thread-K"
  int64_t busy_ns = 0;        ///< lane window minus measured idle
  int64_t idle_ns = 0;        ///< blocked waiting for work (cv / join waits)
  int64_t cpu_ns = -1;        ///< per-thread CPU over the window; -1 = unknown
  uint64_t claimed = 0;       ///< slices run from batches this thread published
  uint64_t stolen = 0;        ///< slices run from batches another thread published
  uint64_t spans_recorded = 0;
  uint64_t spans_dropped = 0;  ///< ring overwrites (report is then partial)
  std::array<TaskAgg, kTaskKinds> tasks{};
  std::array<LockStat, kLockSites> locks{};
};

struct RuntimeReport {
  uint32_t threads = 1;      ///< configured pool size (including the caller)
  int64_t wall_ns = 0;       ///< profiler construction -> export
  uint64_t defer_high_water = 0;  ///< deepest per-event defer queue seen
  int64_t rss_kb = -1;       ///< VmRSS at export; -1 = unknown
  int64_t peak_rss_kb = -1;  ///< VmHWM at export; -1 = unknown
  // Cluster-shared intern store physical counters (filled by the harness;
  // absent when interning is off). PHYSICAL means benignly racy and
  // scheduling-dependent — never compare across runs or thread counts.
  bool has_intern = false;
  uint64_t intern_parses = 0;
  uint64_t intern_decode_hits = 0;
  uint64_t intern_real_verifications = 0;
  uint64_t intern_memo_hits = 0;
  uint64_t intern_primed = 0;
  std::vector<WorkerReport> workers;
};

/// Derived parallel-efficiency numbers (the analysis tools/icc_runtime
/// prints; shared here so benches can print the same summary in-process).
struct RuntimeAnalysis {
  /// Basis for busy time: per-thread CPU when the platform provides it
  /// (machine-honest on oversubscribed hosts), else wall-minus-idle.
  bool cpu_basis = false;
  double utilization = 0;      ///< sum(busy) / (threads * wall)
  double serial_fraction = 1;  ///< Amdahl f from one run; clamped to (0, 1]
  double amdahl_max = 1;       ///< 1 / f
  /// Wall share of the coordinator covered by parallel regions: a
  /// host-independent structural bound on the parallelizable fraction.
  double parallel_region_share = 0;
  /// Amdahl projection S(p) = 1 / (f + (1-f)/p).
  double projected_speedup(double p) const {
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / p);
  }
};

RuntimeAnalysis analyze_runtime(const RuntimeReport& report);

/// Serialize to the icc-runtime/v1 JSON document.
std::string runtime_report_json(const RuntimeReport& report);
/// Parse an icc-runtime/v1 document; nullopt (with *error set) on malformed
/// or truncated input. Exact inverse of runtime_report_json for every field
/// the analysis consumes.
std::optional<RuntimeReport> parse_runtime_report(const std::string& json,
                                                  std::string* error);

// ---------------------------------------------------------------------------
// The live profiler
// ---------------------------------------------------------------------------

class RuntimeProfiler final : public support::TaskProbe {
 public:
  /// `span_capacity` = ring slots per lane (0 keeps lanes but records no
  /// spans — lock/executor accounting still works).
  explicit RuntimeProfiler(size_t span_capacity);
  ~RuntimeProfiler() override;

  RuntimeProfiler(const RuntimeProfiler&) = delete;
  RuntimeProfiler& operator=(const RuntimeProfiler&) = delete;

  /// Configured pool size for utilization math (set by the harness; defaults
  /// to 1).
  void set_threads(size_t threads) { threads_ = threads; }

  static int64_t now_ns();

  // --- spans (called by engine / verifier / intern; null-checked by SpanScope) ---
  void record_span(TaskKind kind, int64_t t0_ns, int64_t t1_ns, uint64_t arg0,
                   uint64_t arg1);

  // --- lock sampling (called by SampledLock) ---
  void lock_sample(LockSite site, int64_t wait_ns);

  // --- engine health (coordinating thread only) ---
  void defer_depth(size_t depth) {
    if (depth > defer_high_water_) defer_high_water_ = depth;
  }

  // --- support::TaskProbe (executor health) ---
  void idle_begin(bool worker) override;
  void idle_end() override;
  void slice(bool stolen) override;
  void queue_lock_wait(int64_t wait_ns) override {
    lock_sample(LockSite::kExecutorQueue, wait_ns);
  }

  /// Snapshot everything into a report. Call at a quiescent point (no batch
  /// in flight); parked workers' open idle windows are folded in.
  RuntimeReport make_report() const;

  /// Chrome trace of the span rings: one pid ("icc-runtime"), one tid per
  /// lane, wall-clock µs since profiler start. When `virtual_tracer` is
  /// non-null its virtual-time events are merged into the same
  /// {"traceEvents": ...} container (distinct pids), so one file shows both
  /// clocks side by side.
  std::string trace_json(const Tracer* virtual_tracer) const;

 private:
  struct Span {
    int64_t t0_ns = 0;
    int64_t t1_ns = 0;
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
    TaskKind kind = TaskKind::kEngineBatch;
  };

  /// Per-thread recording lane. Non-atomic fields are written only by the
  /// owning thread during slices, whose effects are ordered before the
  /// coordinator's export by the batch join; the atomics are the fields a
  /// parked worker may still touch (or the exporter read) outside that
  /// happens-before edge.
  struct alignas(64) Lane {
    std::atomic<bool> used{false};
    std::atomic<bool> is_worker{false};
    int64_t start_ns = 0;             ///< registration time (lane window start)
    uint64_t tid = 0;                 ///< OS thread id (0 = unknown)
    int64_t cpu_start_ns = -1;        ///< thread CPU clock at registration
    std::atomic<int64_t> idle_ns{0};  ///< completed idle windows
    std::atomic<int64_t> wait_since_ns{0};  ///< open idle window start (0 = none)
    uint64_t claimed = 0;
    uint64_t stolen = 0;
    std::vector<Span> spans;  ///< ring; sized on registration
    uint64_t spans_recorded = 0;
    std::array<LockStat, kLockSites> locks{};
  };

  /// Bounded lane table: Executor clamps ICC_THREADS to 256; a few extra
  /// slots absorb stray registrations (test drivers, nested callers). A
  /// thread past the bound shares the overflow lane — counters stay sane,
  /// spans are dropped there by capacity accounting like everywhere else.
  static constexpr size_t kMaxLanes = 260;

  Lane& lane();
  Lane& register_lane();

  size_t span_capacity_;
  size_t threads_ = 1;
  int64_t start_ns_ = 0;
  std::atomic<uint32_t> next_lane_{0};
  std::unique_ptr<Lane[]> lanes_;
  uint64_t defer_high_water_ = 0;  ///< coordinating thread only
};

/// RAII span: two steady_clock reads when a profiler is attached, a single
/// pointer check when not.
class SpanScope {
 public:
  SpanScope(RuntimeProfiler* rt, TaskKind kind, uint64_t arg0 = 0, uint64_t arg1 = 0)
      : rt_(rt), kind_(kind), arg0_(arg0), arg1_(arg1) {
    if (rt_ != nullptr) t0_ = RuntimeProfiler::now_ns();
  }
  ~SpanScope() {
    if (rt_ != nullptr) rt_->record_span(kind_, t0_, RuntimeProfiler::now_ns(), arg0_, arg1_);
  }
  /// For args only known at scope exit (e.g. closures replayed).
  void set_arg0(uint64_t v) { arg0_ = v; }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  RuntimeProfiler* rt_;
  TaskKind kind_;
  uint64_t arg0_, arg1_;
  int64_t t0_ = 0;
};

/// Try-lock-first sampled mutex guard: uncontended acquisitions count but
/// never read a clock; contended ones time the blocking lock(). With a null
/// profiler this is exactly a lock_guard plus one pointer check.
class SampledLock {
 public:
  SampledLock(std::mutex& mu, RuntimeProfiler* rt, LockSite site) : mu_(mu) {
    if (rt == nullptr) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      rt->lock_sample(site, 0);
      return;
    }
    const int64_t t0 = RuntimeProfiler::now_ns();
    mu_.lock();
    rt->lock_sample(site, RuntimeProfiler::now_ns() - t0);
  }
  ~SampledLock() { mu_.unlock(); }
  SampledLock(const SampledLock&) = delete;
  SampledLock& operator=(const SampledLock&) = delete;

 private:
  std::mutex& mu_;
};

/// fprintf the analysis the way tools/icc_runtime does, as one block under
/// the line-atomic log sink mutex so pool-worker ICC_LOG lines cannot
/// interleave mid-summary (support/log.hpp).
void print_runtime_summary(std::FILE* out, const RuntimeReport& report,
                           const RuntimeAnalysis& analysis);

}  // namespace icc::obs
