#include "obs/timeseries.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "support/defer.hpp"

namespace icc::obs {

namespace {

/// VmRSS / VmHWM in kB from /proc/self/status; -1 when unavailable.
void proc_rss_kb(int64_t* rss_kb, int64_t* peak_kb) {
  *rss_kb = -1;
  *peak_kb = -1;
#if defined(__linux__)
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    int64_t* dst = nullptr;
    if (line.rfind("VmRSS:", 0) == 0) dst = rss_kb;
    else if (line.rfind("VmHWM:", 0) == 0) dst = peak_kb;
    if (dst != nullptr) *dst = std::strtoll(line.c_str() + 6, nullptr, 10);
  }
#endif
}

// --- line parsing (same convention as obs/journal.cpp: good enough for the
// recorder's own output — keys always carry the quoted-colon form) ---

size_t value_offset(const std::string& line, const char* key) {
  std::string pat = std::string("\"") + key + "\":";
  size_t at = line.find(pat);
  return at == std::string::npos ? std::string::npos : at + pat.size();
}

bool parse_u64(const std::string& line, const char* key, uint64_t* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos) return false;
  *out = std::strtoull(line.c_str() + at, nullptr, 10);
  return true;
}

bool parse_i64(const std::string& line, const char* key, int64_t* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos) return false;
  *out = std::strtoll(line.c_str() + at, nullptr, 10);
  return true;
}

bool parse_string(const std::string& line, const char* key, std::string* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '"') return false;
  size_t end = line.find('"', at + 1);
  if (end == std::string::npos) return false;
  *out = line.substr(at + 1, end - at - 1);
  return true;
}

/// Substring of the {...} or [...] value starting at `at` (depth-matched,
/// delimiters included); empty on malformed input.
std::string nested_span(const std::string& line, size_t at) {
  if (at == std::string::npos || at >= line.size()) return {};
  const char open = line[at];
  const char close = open == '{' ? '}' : open == '[' ? ']' : '\0';
  if (close == '\0') return {};
  int depth = 0;
  for (size_t i = at; i < line.size(); ++i) {
    if (line[i] == open) depth++;
    else if (line[i] == close && --depth == 0) return line.substr(at, i - at + 1);
  }
  return {};
}

/// Parse a flat {"name":int,...} object into name/value pairs.
template <typename Int>
void parse_flat_map(const std::string& span,
                    std::vector<std::pair<std::string, Int>>* out) {
  size_t p = 0;
  while ((p = span.find('"', p)) != std::string::npos) {
    size_t end = span.find('"', p + 1);
    if (end == std::string::npos) return;
    std::string name = span.substr(p + 1, end - p - 1);
    size_t colon = span.find(':', end);
    if (colon == std::string::npos) return;
    out->emplace_back(std::move(name),
                      static_cast<Int>(std::strtoll(span.c_str() + colon + 1, nullptr, 10)));
    p = span.find(',', colon);
    if (p == std::string::npos) return;
  }
}

/// Parse [[a,b],...] into pairs.
void parse_pair_array(const std::string& span,
                      std::vector<std::pair<uint32_t, uint64_t>>* out) {
  size_t p = 0;
  while ((p = span.find('[', p + 1)) != std::string::npos) {
    char* next = nullptr;
    const uint32_t a =
        static_cast<uint32_t>(std::strtoul(span.c_str() + p + 1, &next, 10));
    if (next == span.c_str() + p + 1 || *next != ',') return;
    const uint64_t b = std::strtoull(next + 1, nullptr, 10);
    out->emplace_back(a, b);
    p = span.find(']', p);
    if (p == std::string::npos) return;
  }
}

bool parse_u32_array(const std::string& line, const char* key, std::vector<uint32_t>* out) {
  size_t at = value_offset(line, key);
  if (at == std::string::npos || at >= line.size() || line[at] != '[') return false;
  size_t end = line.find(']', at);
  if (end == std::string::npos) return false;
  out->clear();
  const char* p = line.c_str() + at + 1;
  const char* stop = line.c_str() + end;
  while (p < stop) {
    char* next = nullptr;
    unsigned long v = std::strtoul(p, &next, 10);
    if (next == p) break;
    out->push_back(static_cast<uint32_t>(v));
    p = next;
    while (p < stop && (*p == ',' || *p == ' ')) ++p;
  }
  return true;
}

}  // namespace

TimeSeries::TimeSeries(Registry* registry, SeriesConfig config)
    : registry_(registry), config_(std::move(config)) {
  if (config_.window_us <= 0) config_.window_us = 1'000'000;
  // Decimation merges exactly 10 windows at a time; a tiny full_res would
  // leave the level unable to shed windows.
  config_.full_res = std::max<uint64_t>(config_.full_res, 16);
  meta_.window_us = config_.window_us;
  meta_.full_res = config_.full_res;
  meta_.wall = config_.wall;
  levels_.emplace_back();
}

bool TimeSeries::open_stream(const std::string& path) {
  stream_.open(path, std::ios::binary | std::ios::trunc);
  if (!stream_) return false;
  stream_ << meta_json() << "\n";
  return static_cast<bool>(stream_);
}

void TimeSeries::flush() {
  if (stream_.is_open()) stream_.flush();
}

void TimeSeries::on_round(uint64_t round, uint32_t leader, bool honest, bool leader_block,
                          bool clean) {
  // Shared tallies mutate non-commutatively (first report of a round wins),
  // so the update rides the defer queue to the canonical replay point —
  // exactly the Gauge::set discipline.
  if (support::DeferQueue::maybe_defer([this, round, leader, honest, leader_block, clean] {
        on_round_in_order(round, leader, honest, leader_block, clean);
      }))
    return;
  on_round_in_order(round, leader, honest, leader_block, clean);
}

void TimeSeries::on_round_in_order(uint64_t round, uint32_t leader, bool honest,
                                   bool leader_block, bool clean) {
  // Every honest party reports each round; count it once. The set is pruned
  // well behind the frontier (parties lag by at most the prune/CUP bounds).
  if (!seen_rounds_.insert(round).second) return;
  while (!seen_rounds_.empty() && *seen_rounds_.begin() + 256 < *seen_rounds_.rbegin())
    seen_rounds_.erase(seen_rounds_.begin());
  open_rounds_++;
  open_leaders_[leader]++;
  if (leader_block) open_leader_block_++;
  if (clean) open_clean_++;
  (honest ? open_honest_ : open_corrupt_)++;
}

void TimeSeries::on_boundary(int64_t boundary_us) {
  close_window(boundary_us);
  decimate();
}

void TimeSeries::close_window(int64_t boundary_us) {
  SeriesWindow w;
  w.seq = next_seq_++;
  w.start_us = last_boundary_;
  w.end_us = boundary_us;
  last_boundary_ = boundary_us;

  w.rounds = open_rounds_;
  w.leader_block = open_leader_block_;
  w.clean = open_clean_;
  w.honest_leader = open_honest_;
  w.corrupt_leader = open_corrupt_;
  w.leaders.assign(open_leaders_.begin(), open_leaders_.end());
  open_rounds_ = open_leader_block_ = open_clean_ = open_honest_ = open_corrupt_ = 0;
  open_leaders_.clear();

  // Counter deltas against the previous boundary. Names registered mid-run
  // diff against an implicit 0; zero deltas are omitted to keep lines lean.
  registry_->visit_counters([&](const std::string& name, const Counter& c) {
    const uint64_t cur = c.value();
    uint64_t& prev = prev_counters_[name];
    if (cur != prev) w.counters.emplace_back(name, cur - prev);
    prev = cur;
  });

  registry_->visit_gauges([&](const std::string& name, const Gauge& g) {
    w.gauges.emplace_back(name, g.value());
  });

  // Windowed histograms: cumulative snapshot diffing, never a reset — the
  // final metrics snapshot is byte-identical with the recorder on or off.
  for (const std::string& name : config_.hist_names) {
    const Histogram* h = registry_->find_histogram(name);
    if (h == nullptr) continue;
    const std::vector<uint64_t> cur = h->bucket_counts();
    HistPrev& prev = prev_hists_[name];
    if (prev.buckets.size() != cur.size()) prev.buckets.assign(cur.size(), 0);
    SeriesHist sh;
    sh.count = h->count() - prev.count;
    sh.sum = h->sum() - prev.sum;
    sh.overflow = h->overflow() - prev.overflow;
    sh.buckets.resize(cur.size());
    for (size_t i = 0; i < cur.size(); ++i) sh.buckets[i] = cur[i] - prev.buckets[i];
    prev.buckets = cur;
    prev.overflow = h->overflow();
    prev.count = h->count();
    prev.sum = h->sum();
    if (sh.count == 0) continue;
    resolve_hist(&sh, h->bounds());
    w.hists.emplace_back(name, std::move(sh));
  }

  if (stream_.is_open()) {
    stream_ << window_json(w) << "\n";
    if (!stream_) dropped_++;
  }
  if (config_.wall) {
    SeriesWall ws;
    ws.seq = w.seq;
    proc_rss_kb(&ws.rss_kb, &ws.peak_rss_kb);
    ws.dropped = dropped_;
    if (stream_.is_open()) {
      stream_ << wall_json(ws) << "\n";
      if (!stream_) dropped_++;
    }
    wall_.push_back(ws);
    while (wall_.size() > (size_t{1} << 16)) wall_.pop_front();
  }
  levels_[0].push_back(std::move(w));
}

void TimeSeries::resolve_hist(SeriesHist* h, const std::vector<int64_t>& bounds) {
  const uint64_t total = h->count;
  if (total == 0) return;
  auto pct = [&](double q) -> int64_t {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total) + 0.999999);
    rank = std::max<uint64_t>(1, std::min(rank, total));
    uint64_t seen = 0;
    for (size_t i = 0; i < h->buckets.size() && i < bounds.size(); ++i) {
      seen += h->buckets[i];
      if (seen >= rank) return bounds[i];
    }
    return bounds.empty() ? 0 : bounds.back();  // rank in the overflow bucket
  };
  h->p50 = pct(0.50);
  h->p90 = pct(0.90);
  h->p99 = pct(0.99);
  h->max_le = 0;
  for (size_t i = 0; i < h->buckets.size() && i < bounds.size(); ++i)
    if (h->buckets[i] != 0) h->max_le = bounds[i];
  if (h->overflow != 0 && !bounds.empty()) h->max_le = bounds.back();
}

void TimeSeries::decimate() {
  for (size_t lvl = 0; lvl < levels_.size(); ++lvl) {
    while (levels_[lvl].size() > config_.full_res) {
      SeriesWindow merged = merge_windows(levels_[lvl], 10);
      if (lvl + 1 == levels_.size()) levels_.emplace_back();
      levels_[lvl + 1].push_back(std::move(merged));
    }
  }
}

SeriesWindow TimeSeries::merge_windows(std::deque<SeriesWindow>& level, size_t count) {
  count = std::min(count, level.size());
  SeriesWindow out = std::move(level.front());
  level.pop_front();
  std::map<std::string, uint64_t> counters(out.counters.begin(), out.counters.end());
  std::map<uint32_t, uint64_t> leaders(out.leaders.begin(), out.leaders.end());
  std::map<std::string, SeriesHist> hists;
  for (auto& [name, h] : out.hists) hists.emplace(name, std::move(h));

  for (size_t k = 1; k < count; ++k) {
    SeriesWindow w = std::move(level.front());
    level.pop_front();
    out.end_us = w.end_us;
    out.res += w.res;
    out.rounds += w.rounds;
    out.leader_block += w.leader_block;
    out.clean += w.clean;
    out.honest_leader += w.honest_leader;
    out.corrupt_leader += w.corrupt_leader;
    for (auto& [p, c] : w.leaders) leaders[p] += c;
    for (auto& [name, v] : w.counters) counters[name] += v;
    out.gauges = std::move(w.gauges);  // gauge = instantaneous: newest wins
    for (auto& [name, h] : w.hists) {
      auto it = hists.find(name);
      if (it == hists.end()) {
        hists.emplace(name, std::move(h));
        continue;
      }
      SeriesHist& dst = it->second;
      dst.count += h.count;
      dst.sum += h.sum;
      dst.overflow += h.overflow;
      if (dst.buckets.size() < h.buckets.size()) dst.buckets.resize(h.buckets.size(), 0);
      for (size_t i = 0; i < h.buckets.size(); ++i) dst.buckets[i] += h.buckets[i];
    }
  }
  out.counters.assign(counters.begin(), counters.end());
  out.leaders.assign(leaders.begin(), leaders.end());
  out.hists.clear();
  for (auto& [name, h] : hists) {
    const Histogram* live = registry_->find_histogram(name);
    if (live != nullptr) resolve_hist(&h, live->bounds());
    out.hists.emplace_back(name, std::move(h));
  }
  return out;
}

std::vector<const SeriesWindow*> TimeSeries::windows() const {
  std::vector<const SeriesWindow*> out;
  // Higher levels hold strictly older data (merges always take the oldest),
  // so deepest-first front-to-back is time order.
  for (size_t lvl = levels_.size(); lvl-- > 0;)
    for (const SeriesWindow& w : levels_[lvl]) out.push_back(&w);
  return out;
}

std::string TimeSeries::meta_json() const {
  std::ostringstream os;
  os << "{\"type\":\"meta\",\"schema\":\"" << SeriesMeta::kSchema << "\",\"n\":" << meta_.n
     << ",\"t\":" << meta_.t << ",\"protocol\":\"" << json_escape(meta_.protocol)
     << "\",\"seed\":" << meta_.seed << ",\"window_us\":" << meta_.window_us
     << ",\"full_res\":" << meta_.full_res << ",\"wall\":" << (meta_.wall ? 1 : 0)
     << ",\"corrupt\":[";
  for (size_t i = 0; i < meta_.corrupt.size(); ++i) {
    if (i) os << ",";
    os << meta_.corrupt[i];
  }
  os << "]}";
  return os.str();
}

std::string TimeSeries::window_json(const SeriesWindow& w) {
  std::ostringstream os;
  os << "{\"type\":\"w\",\"seq\":" << w.seq << ",\"start_us\":" << w.start_us
     << ",\"end_us\":" << w.end_us << ",\"res\":" << w.res << ",\"rounds\":" << w.rounds
     << ",\"leader_block\":" << w.leader_block << ",\"clean\":" << w.clean
     << ",\"honest_leader\":" << w.honest_leader
     << ",\"corrupt_leader\":" << w.corrupt_leader << ",\"leaders\":[";
  for (size_t i = 0; i < w.leaders.size(); ++i) {
    if (i) os << ",";
    os << "[" << w.leaders[i].first << "," << w.leaders[i].second << "]";
  }
  os << "],\"counters\":{";
  for (size_t i = 0; i < w.counters.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(w.counters[i].first) << "\":" << w.counters[i].second;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < w.gauges.size(); ++i) {
    if (i) os << ",";
    os << "\"" << json_escape(w.gauges[i].first) << "\":" << w.gauges[i].second;
  }
  os << "},\"hist\":{";
  for (size_t i = 0; i < w.hists.size(); ++i) {
    if (i) os << ",";
    const SeriesHist& h = w.hists[i].second;
    os << "\"" << json_escape(w.hists[i].first) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"p50\":" << h.p50 << ",\"p90\":" << h.p90
       << ",\"p99\":" << h.p99 << ",\"max_le\":" << h.max_le << "}";
  }
  os << "}}";
  return os.str();
}

std::string TimeSeries::wall_json(const SeriesWall& w) {
  std::ostringstream os;
  os << "{\"type\":\"wall\",\"seq\":" << w.seq << ",\"rss_kb\":" << w.rss_kb
     << ",\"peak_rss_kb\":" << w.peak_rss_kb << ",\"dropped\":" << w.dropped << "}";
  return os.str();
}

std::string TimeSeries::to_jsonl() const {
  std::ostringstream os;
  os << meta_json() << "\n";
  for (const SeriesWindow* w : windows()) os << window_json(*w) << "\n";
  if (config_.wall)
    for (const SeriesWall& ws : wall_) os << wall_json(ws) << "\n";
  return os.str();
}

bool TimeSeries::write_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_jsonl();
  return static_cast<bool>(out);
}

TimeSeries::Parsed TimeSeries::parse_jsonl(const std::string& text) {
  Parsed out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string type;
    if (!parse_string(line, "type", &type)) continue;
    if (type == "meta") {
      SeriesMeta& m = out.meta;
      uint64_t u = 0;
      if (parse_u64(line, "n", &u)) m.n = static_cast<uint32_t>(u);
      if (parse_u64(line, "t", &u)) m.t = static_cast<uint32_t>(u);
      parse_string(line, "protocol", &m.protocol);
      parse_u64(line, "seed", &m.seed);
      parse_i64(line, "window_us", &m.window_us);
      parse_u64(line, "full_res", &m.full_res);
      if (parse_u64(line, "wall", &u)) m.wall = u != 0;
      parse_u32_array(line, "corrupt", &m.corrupt);
      out.has_meta = true;
    } else if (type == "w") {
      SeriesWindow w;
      uint64_t u = 0;
      parse_u64(line, "seq", &w.seq);
      parse_i64(line, "start_us", &w.start_us);
      parse_i64(line, "end_us", &w.end_us);
      if (parse_u64(line, "res", &u)) w.res = static_cast<uint32_t>(u);
      parse_u64(line, "rounds", &w.rounds);
      parse_u64(line, "leader_block", &w.leader_block);
      parse_u64(line, "clean", &w.clean);
      parse_u64(line, "honest_leader", &w.honest_leader);
      parse_u64(line, "corrupt_leader", &w.corrupt_leader);
      parse_pair_array(nested_span(line, value_offset(line, "leaders")), &w.leaders);
      parse_flat_map(nested_span(line, value_offset(line, "counters")), &w.counters);
      parse_flat_map(nested_span(line, value_offset(line, "gauges")), &w.gauges);
      const std::string hists = nested_span(line, value_offset(line, "hist"));
      size_t p = 0;
      while (p + 1 < hists.size() && (p = hists.find('"', p + 1)) != std::string::npos) {
        size_t end = hists.find('"', p + 1);
        if (end == std::string::npos) break;
        std::string name = hists.substr(p + 1, end - p - 1);
        size_t brace = hists.find('{', end);
        if (brace == std::string::npos) break;
        const std::string span = nested_span(hists, brace);
        if (span.empty()) break;
        SeriesHist h;
        parse_u64(span, "count", &h.count);
        parse_i64(span, "sum", &h.sum);
        parse_i64(span, "p50", &h.p50);
        parse_i64(span, "p90", &h.p90);
        parse_i64(span, "p99", &h.p99);
        parse_i64(span, "max_le", &h.max_le);
        w.hists.emplace_back(std::move(name), std::move(h));
        p = brace + span.size();
      }
      out.windows.push_back(std::move(w));
    } else if (type == "wall") {
      SeriesWall ws;
      parse_u64(line, "seq", &ws.seq);
      parse_i64(line, "rss_kb", &ws.rss_kb);
      parse_i64(line, "peak_rss_kb", &ws.peak_rss_kb);
      parse_u64(line, "dropped", &ws.dropped);
      out.wall.push_back(ws);
    }
  }
  return out;
}

}  // namespace icc::obs
