// Longitudinal telemetry: a windowed time-series recorder over the metrics
// Registry.
//
// Every other telemetry artifact (metrics snapshot, journal, critical path,
// runtime profile) describes a run at exit; the time-series gives it a time
// axis. At every fixed VIRTUAL-TIME window boundary (the engine's tick hook,
// sim/engine.hpp::set_tick) the recorder closes a window capturing
//
//   * per-window deltas of every Registry counter (zero deltas omitted),
//   * gauge samples at the boundary,
//   * windowed snapshots of a configured histogram set (commit latency,
//     round time, finalize gap) — diffed cumulatively, never reset, so the
//     final metrics snapshot is unchanged by recording,
//   * per-round leader identity + outcome tallies (the beacon-bias feed:
//     rounds led per party, honest/corrupt-leader, leader-block, clean).
//
// Determinism contract (same as the journal, DESIGN.md §6): window
// boundaries are virtual time, counter updates are commutative, gauge sets
// and the round feed ride the defer queue, so the same seed produces a
// byte-identical series at any thread count, with the recorder on or off.
// The ONE exemption — mirroring obs/runtime.hpp — is the opt-in "wall"
// lines (RSS, stream drop counters): explicitly labeled non-deterministic,
// emitted as separate `"type":"wall"` records that never mix into the
// deterministic window bytes.
//
// Bounded memory for long-horizon (soak) runs comes from hierarchical
// decimation: the last `full_res` windows are kept at full resolution; when
// a level overflows, its 10 oldest windows merge into one 10× coarser
// window on the next level (counters add, histogram buckets add and
// re-resolve, gauges keep the newest sample), cascading upward. A window's
// `res` field says how many base windows it covers. Independently of the
// in-memory hierarchy, an optional append-only stream sink receives every
// full-resolution window as it closes (schema icc-series/v1 JSONL), so a
// million-round soak holds O(full_res · log) windows in RAM while the file
// keeps everything.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace icc::obs {

/// Run-identifying header, written as the first icc-series/v1 line. The
/// corrupt slot list lets offline analyzers (tools/icc_drift) restrict the
/// leader-uniformity test to honest parties.
struct SeriesMeta {
  uint32_t n = 0;
  uint32_t t = 0;
  std::string protocol;
  uint64_t seed = 0;
  int64_t window_us = 0;
  uint64_t full_res = 0;
  bool wall = false;  ///< run emits non-deterministic wall lines
  std::vector<uint32_t> corrupt;
  static constexpr const char* kSchema = "icc-series/v1";
};

/// Windowed view of one histogram: the delta of the cumulative bucket state
/// across the window. Percentiles are nearest-rank over bucket upper bounds
/// (integer µs/values — no floats anywhere in the deterministic bytes);
/// `max_le` is the upper bound of the highest non-empty bucket.
struct SeriesHist {
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;
  int64_t max_le = 0;
  /// In-memory only (decimation merges re-resolve percentiles from these);
  /// not exported, empty on parsed windows.
  std::vector<uint64_t> buckets;
  uint64_t overflow = 0;
};

/// One closed window. `seq` is the index of the first base window covered;
/// `res` how many base windows were merged in (1 = full resolution).
struct SeriesWindow {
  uint64_t seq = 0;
  int64_t start_us = 0;
  int64_t end_us = 0;
  uint32_t res = 1;
  uint64_t rounds = 0;        ///< rounds completed in the window
  uint64_t leader_block = 0;  ///< ... finishing on the leader's block
  uint64_t clean = 0;         ///< ... with N ⊆ {B} (finalization share cast)
  uint64_t honest_leader = 0;
  uint64_t corrupt_leader = 0;
  std::vector<std::pair<uint32_t, uint64_t>> leaders;  ///< party → rounds led
  std::vector<std::pair<std::string, uint64_t>> counters;  ///< deltas, name-sorted
  std::vector<std::pair<std::string, int64_t>> gauges;     ///< boundary samples
  std::vector<std::pair<std::string, SeriesHist>> hists;
};

/// One non-deterministic wall-clock sample (opt-in; see header comment).
struct SeriesWall {
  uint64_t seq = 0;
  int64_t rss_kb = -1;
  int64_t peak_rss_kb = -1;
  uint64_t dropped = 0;  ///< stream-sink window lines dropped so far (I/O)
};

struct SeriesConfig {
  int64_t window_us = 1'000'000;  ///< window length (virtual µs)
  uint64_t full_res = 512;        ///< full-resolution windows kept (min 16)
  bool wall = false;              ///< emit wall lines (non-deterministic)
  /// Histograms windowed per boundary. Defaults cover the soak questions:
  /// commit latency (finalize_us), round time (notarize_us), finalize gap.
  std::vector<std::string> hist_names = {
      "consensus.finalize_us", "consensus.notarize_us", "consensus.finalize_gap_rounds"};
};

/// The recorder. Not owned by the Registry: benches build one over their own
/// registry and drive boundaries by hand; the harness builds one inside Obs
/// and drives it from the engine tick. All methods except on_round() are
/// coordinating-thread-only (quiescent points); on_round() defers itself.
class TimeSeries {
 public:
  TimeSeries(Registry* registry, SeriesConfig config);

  SeriesMeta& meta() { return meta_; }
  const SeriesMeta& meta() const { return meta_; }
  const SeriesConfig& config() const { return config_; }

  /// Open the append-only stream sink: writes the meta line now, then every
  /// full-resolution window (plus its wall line when configured) as it
  /// closes. Set the meta first. False on I/O error.
  bool open_stream(const std::string& path);
  bool streaming() const { return stream_.is_open(); }
  void flush();

  /// Per-round leader/outcome feed (PartyProbe::on_round_done). Every honest
  /// party reports each round; the first report in canonical order wins
  /// (deduplicated by round number), so the tallies are deterministic.
  /// Defers itself inside parallel regions, like Gauge::set.
  void on_round(uint64_t round, uint32_t leader, bool honest, bool leader_block,
                bool clean);

  /// Close the window ending at `boundary_us` (engine tick hook). Reads the
  /// registry, appends the window, streams it, decimates.
  void on_boundary(int64_t boundary_us);

  uint64_t windows_closed() const { return next_seq_; }
  /// Stream-sink lines that failed to write (I/O); exports are never
  /// silently partial — icc_observe warns loudly when nonzero.
  uint64_t dropped() const { return dropped_; }

  /// Decimated in-memory windows, oldest → newest.
  std::vector<const SeriesWindow*> windows() const;

  // --- export (deterministic except wall lines) ---
  std::string meta_json() const;
  static std::string window_json(const SeriesWindow& w);
  static std::string wall_json(const SeriesWall& w);
  /// Meta + decimated windows (+ retained wall lines when configured).
  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

  // --- parsing (tools/icc_drift, ci, tests) ---
  struct Parsed {
    SeriesMeta meta;
    bool has_meta = false;
    std::vector<SeriesWindow> windows;
    std::vector<SeriesWall> wall;
  };
  static Parsed parse_jsonl(const std::string& text);

 private:
  void on_round_in_order(uint64_t round, uint32_t leader, bool honest, bool leader_block,
                         bool clean);
  void close_window(int64_t boundary_us);
  void decimate();
  /// Merge (and pop) the `count` oldest windows of `level` into one coarser
  /// window; histogram percentiles are re-resolved from the merged buckets.
  SeriesWindow merge_windows(std::deque<SeriesWindow>& level, size_t count);
  static void resolve_hist(SeriesHist* h, const std::vector<int64_t>& bounds);

  Registry* registry_;
  SeriesConfig config_;
  SeriesMeta meta_;

  // Cumulative snapshots from the previous boundary (diffed, never reset).
  std::map<std::string, uint64_t> prev_counters_;
  struct HistPrev {
    std::vector<uint64_t> buckets;
    uint64_t overflow = 0;
    uint64_t count = 0;
    int64_t sum = 0;
  };
  std::map<std::string, HistPrev> prev_hists_;

  // Current (open) window's round tallies.
  std::map<uint32_t, uint64_t> open_leaders_;
  uint64_t open_rounds_ = 0, open_leader_block_ = 0, open_clean_ = 0;
  uint64_t open_honest_ = 0, open_corrupt_ = 0;
  std::set<uint64_t> seen_rounds_;  ///< dedup (pruned 256 behind the max)

  // Decimation hierarchy: levels_[0] = full resolution, levels_[k] = 10^k.
  std::vector<std::deque<SeriesWindow>> levels_;
  uint64_t next_seq_ = 0;
  int64_t last_boundary_ = 0;

  std::deque<SeriesWall> wall_;  ///< retained wall samples (bounded)
  std::ofstream stream_;
  uint64_t dropped_ = 0;
};

}  // namespace icc::obs
