#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"  // json_escape
#include "support/defer.hpp"

namespace icc::obs {

Tracer::Tracer(size_t capacity) { ring_.resize(capacity); }

void Tracer::record(const TraceEvent& ev) {
  if (ring_.empty()) return;
  // Ring writes are deferred inside parallel regions: the slot index comes
  // from a shared cursor and the export is order-sensitive, so the write
  // must land in canonical event order (support/defer.hpp).
  if (support::DeferQueue::maybe_defer([this, ev] {
        ring_[recorded_ % ring_.size()] = ev;
        recorded_++;
      }))
    return;
  ring_[recorded_ % ring_.size()] = ev;
  recorded_++;
}

size_t Tracer::size() const { return std::min<uint64_t>(recorded_, ring_.size()); }

uint64_t Tracer::dropped() const {
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::string Tracer::events_json() const {
  // Collect the live slots and restore time order (the ring wraps, and
  // events are recorded at their *end* for 'X' spans, so ts is not
  // monotone even without wrapping).
  std::vector<const TraceEvent*> events;
  events.reserve(size());
  for (size_t i = 0; i < size(); ++i) events.push_back(&ring_[i]);
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent* a, const TraceEvent* b) { return a->ts < b->ts; });

  std::ostringstream os;
  bool first = true;
  for (const TraceEvent* ev : events) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"" << json_escape(ev->name ? ev->name : "") << "\",\"cat\":\""
       << json_escape(ev->cat ? ev->cat : "") << "\",\"ph\":\"" << ev->ph
       << "\",\"ts\":" << ev->ts;
    if (ev->ph == 'X') os << ",\"dur\":" << ev->dur;
    os << ",\"pid\":" << ev->pid << ",\"tid\":" << ev->tid;
    if (ev->ph == 'i') os << ",\"s\":\"t\"";  // instant scope: thread
    if (ev->arg0_key) {
      os << ",\"args\":{\"" << json_escape(ev->arg0_key) << "\":" << ev->arg0;
      if (ev->arg1_key) os << ",\"" << json_escape(ev->arg1_key) << "\":" << ev->arg1;
      os << "}";
    }
    os << "}";
  }
  return os.str();
}

std::string Tracer::to_json() const {
  std::ostringstream os;
  // Self-describing ring accounting: exported files say whether (and how
  // much) the ring overwrote without needing the live Tracer.
  os << "{\"traceEvents\":[" << events_json() << "],\"metadata\":{\"recorded\":" << recorded_
     << ",\"dropped\":" << dropped() << ",\"capacity\":" << ring_.size()
     << "},\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace icc::obs
