// Ring-buffer span tracer stamped with simulation virtual time, exporting
// Chrome trace_event JSON (the format chrome://tracing and Perfetto open).
//
// Events carry static-string names/categories — recording an event is a
// struct copy into a preallocated ring, no allocation, no formatting. The
// ring overwrites the oldest events when full (a long run keeps its tail,
// which is usually what a latency investigation wants); `dropped()` reports
// how many were overwritten so exports are never silently partial.
//
// Mapping to the trace_event model: pid = simulated party index, tid =
// subsystem lane within the party (consensus / gossip / pipeline), ts/dur =
// virtual microseconds (sim::Time is already µs, so traces line up exactly
// with the simulator's clock).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace icc::obs {

struct TraceEvent {
  const char* name = nullptr;  ///< static string (never freed before export)
  const char* cat = nullptr;   ///< static string category
  char ph = 'X';               ///< 'X' complete, 'i' instant, 'C' counter
  int64_t ts = 0;              ///< virtual µs
  int64_t dur = 0;             ///< virtual µs ('X' only)
  uint32_t pid = 0;            ///< party index
  uint32_t tid = 0;            ///< subsystem lane (see Lane)
  // Up to two small numeric args, rendered into "args": {...}.
  const char* arg0_key = nullptr;
  int64_t arg0 = 0;
  const char* arg1_key = nullptr;
  int64_t arg1 = 0;
};

/// Subsystem lanes (trace tid per party).
enum Lane : uint32_t { kLaneConsensus = 0, kLaneGossip = 1, kLanePipeline = 2 };

class Tracer {
 public:
  /// capacity 0 disables recording entirely (record() is a no-op).
  explicit Tracer(size_t capacity);

  void record(const TraceEvent& ev);

  void complete(const char* name, const char* cat, uint32_t pid, uint32_t tid, int64_t ts,
                int64_t dur, const char* arg0_key = nullptr, int64_t arg0 = 0,
                const char* arg1_key = nullptr, int64_t arg1 = 0) {
    record(TraceEvent{name, cat, 'X', ts, dur, pid, tid, arg0_key, arg0, arg1_key, arg1});
  }

  void instant(const char* name, const char* cat, uint32_t pid, uint32_t tid, int64_t ts,
               const char* arg0_key = nullptr, int64_t arg0 = 0) {
    record(TraceEvent{name, cat, 'i', ts, 0, pid, tid, arg0_key, arg0, nullptr, 0});
  }

  size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity).
  size_t size() const;
  /// Events overwritten because the ring was full.
  uint64_t dropped() const;
  uint64_t recorded() const { return recorded_; }

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — events sorted by ts.
  std::string to_json() const;
  /// The comma-joined event objects alone (no envelope), sorted by ts —
  /// for embedding into a merged trace container (obs/runtime.hpp places
  /// wall-clock lanes next to these virtual-time events in one file).
  std::string events_json() const;
  /// Write to_json() to `path`; false on I/O error.
  bool write_json(const std::string& path) const;

 private:
  std::vector<TraceEvent> ring_;
  uint64_t recorded_ = 0;  // total record() calls; ring slot = recorded_ % capacity
};

}  // namespace icc::obs
