#include "pipeline/intern.hpp"

#include <algorithm>

#include "obs/runtime.hpp"
#include "support/fingerprint.hpp"

namespace icc::pipeline {

namespace {

bool same_bytes(const Bytes& a, const Bytes& b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

const InternedArtifact* find_in(
    const std::unordered_map<uint64_t, std::vector<std::shared_ptr<const InternedArtifact>>>&
        gen,
    uint64_t fp, const Bytes& payload, std::shared_ptr<const InternedArtifact>* out) {
  auto it = gen.find(fp);
  if (it == gen.end()) return nullptr;
  for (const auto& entry : it->second) {
    if (same_bytes(*entry->bytes, payload)) {
      *out = entry;
      return out->get();
    }
  }
  return nullptr;
}

}  // namespace

std::shared_ptr<const InternedArtifact> InternStore::intern(
    const std::shared_ptr<const Bytes>& payload) {
  const uint64_t fp = support::fingerprint64(payload->data(), payload->size());
  ArtifactShard& s = artifact_shard(fp);
  obs::SampledLock lk(s.mu, runtime_, obs::LockSite::kInternArtifacts);
  std::shared_ptr<const InternedArtifact> hit;
  if (find_in(s.current, fp, *payload, &hit) || find_in(s.previous, fp, *payload, &hit)) {
    stats_.decode_hits.fetch_add(1, kRelaxed);
    return hit;
  }

  // New payload: decode once, under the shard lock. Serializing the parse
  // here is what makes `parses` exact at any thread count (concurrent
  // receivers of the same broadcast block briefly and then share the one
  // entry) and publishes the Block hash memo with a happens-before edge.
  obs::SpanScope parse_span(runtime_, obs::TaskKind::kInternParse, payload->size());
  auto entry = std::make_shared<InternedArtifact>();
  entry->bytes = payload;
  entry->artifact_id = types::artifact_id(*payload);
  entry->sender_scoped = types::sender_scoped_wire(*payload);
  if (auto parsed = types::parse_message(*payload)) {
    auto msg = std::make_shared<types::Message>(std::move(*parsed));
    if (const auto* pm = std::get_if<types::ProposalMsg>(msg.get()))
      pm->block.hash();  // stamp the memo before the entry escapes the lock
    entry->msg = std::move(msg);
  }
  stats_.parses.fetch_add(1, kRelaxed);

  if (options_.artifact_capacity > 0 &&
      s.current_entries >= std::max<size_t>(1, options_.artifact_capacity / (2 * kShards))) {
    s.previous = std::move(s.current);
    s.current.clear();
    s.current_entries = 0;
  }
  s.current[fp].push_back(entry);
  s.current_entries++;
  return entry;
}

std::optional<bool> InternStore::verdict(const types::Hash& key) const {
  const VerdictShard& s = verdict_shard(key);
  obs::SampledLock lk(s.mu, runtime_, obs::LockSite::kInternVerdicts);
  if (auto it = s.current.find(key); it != s.current.end()) return it->second;
  if (auto it = s.previous.find(key); it != s.previous.end()) return it->second;
  return std::nullopt;
}

void InternStore::remember_verdict(const types::Hash& key, bool verdict) {
  if (options_.verdict_capacity == 0) return;
  VerdictShard& s = verdict_shard(key);
  obs::SampledLock lk(s.mu, runtime_, obs::LockSite::kInternVerdicts);
  if (s.current.size() >= std::max<size_t>(1, options_.verdict_capacity / (2 * kShards))) {
    s.previous = std::move(s.current);
    s.current.clear();
  }
  s.current[key] = verdict;
}

void InternStore::prime_verdict(const types::Hash& key) {
  remember_verdict(key, true);
  stats_.verdicts_primed.fetch_add(1, kRelaxed);
}

InternStore::Stats InternStore::stats() const {
  Stats s;
  s.parses = stats_.parses.load(kRelaxed);
  s.decode_hits = stats_.decode_hits.load(kRelaxed);
  s.real_verifications = stats_.real_verifications.load(kRelaxed);
  s.verdict_memo_hits = stats_.verdict_memo_hits.load(kRelaxed);
  s.verdicts_primed = stats_.verdicts_primed.load(kRelaxed);
  return s;
}

size_t InternStore::interned_artifacts() const {
  size_t total = 0;
  for (const ArtifactShard& s : artifacts_) {
    std::lock_guard<std::mutex> lk(s.mu);
    for (const auto& [fp, chain] : s.current) total += chain.size();
    for (const auto& [fp, chain] : s.previous) total += chain.size();
  }
  return total;
}

size_t InternStore::cached_verdicts() const {
  size_t total = 0;
  for (const VerdictShard& s : verdicts_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.current.size() + s.previous.size();
  }
  return total;
}

}  // namespace icc::pipeline
