// Cluster-wide artifact interning (DESIGN.md §7).
//
// A broadcast payload is delivered to n receivers as one shared buffer
// (sim/network), but before this layer every receiver still parsed, hashed
// and signature-checked those bytes independently — O(n) redundant decodes
// and O(n) redundant verifies per artifact, O(n²) per round. Decode results
// and signature verdicts are pure functions of the bytes, so one
// cluster-shared store can answer all n receivers:
//
//   * the *artifact table* interns (wire bytes → parsed types::Message):
//     parse_message runs once per distinct payload, under the owning shard's
//     lock, and every receiver gets the same immutable
//     std::shared_ptr<const Message>. Entries are keyed by the same 64-bit
//     content fingerprint the causal layer stamps on edges, with full
//     byte-equality chained behind it — so a fingerprint collision costs a
//     bucket scan, never a wrong answer, and two *different* payloads from
//     the same sender (equivocation) can never conflate.
//   * the *verdict memo* shares (domain ‖ signer ‖ message ‖ signature)
//     verification verdicts across all honest parties' Verifiers: a
//     broadcast share costs ~1 real verification cluster-wide instead of n.
//     Per-party Verifier stats stay *logical* (they count what a lone party
//     would have verified), so F-PIPE/Table 1 reporting and the journal are
//     byte-identical with interning on or off.
//
// Both tables are sharded (mutex per shard, two-generation rotation) like
// the PR 6 per-party verdict cache. The artifact table's counters are exact
// at any thread count because creation happens under the shard lock; the
// verdict memo's real/memo-hit counters may differ by the few verifies that
// race between check and remember — they are reported by benches (F-INTERN)
// but deliberately kept out of metrics_json and the journal.
//
// Fidelity: real deployments cannot share caches across machines. The store
// only changes *wall-clock* cost — virtual-time behaviour, commits, metrics
// and journals are identical with interning on or off (tested in
// tests/pipeline/intern_test.cpp) — but wall-clock benches that model
// per-replica CPU honestly must run with ClusterOptions::intern = false.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "types/messages.hpp"

namespace icc::obs {
class RuntimeProfiler;
}

namespace icc::pipeline {

/// One interned wire payload. Immutable after publication (the shard lock
/// that created it is the happens-before edge to every later reader).
struct InternedArtifact {
  std::shared_ptr<const Bytes> bytes;  ///< the exact wire bytes
  types::Hash artifact_id{};           ///< SHA-256, identical to per-party dedup ids
  bool sender_scoped = false;          ///< types::sender_scoped_wire(*bytes)
  types::SharedMessage msg;            ///< parsed once; null = malformed payload
};

class InternStore {
 public:
  struct Options {
    size_t artifact_capacity = 1 << 14;  ///< interned payloads (two-generation bound)
    size_t verdict_capacity = 1 << 16;   ///< shared verdict memo entries
  };

  struct Stats {
    uint64_t parses = 0;             ///< distinct payloads decoded (exact, any thread count)
    uint64_t decode_hits = 0;        ///< intern() calls answered by an existing entry
    uint64_t real_verifications = 0; ///< crypto checks that actually ran, cluster-wide
    uint64_t verdict_memo_hits = 0;  ///< checks answered by the shared memo
    uint64_t verdicts_primed = 0;    ///< verdicts inserted at sign/combine time
  };

  InternStore() = default;
  explicit InternStore(const Options& options) : options_(options) {}

  /// Look up (or create) the interned artifact for `payload`. The parse of
  /// a new payload runs under the owning shard's lock, so `parses` counts
  /// distinct payloads exactly, independent of thread interleaving, and the
  /// contained Block's hash memo is stamped before the entry is published.
  std::shared_ptr<const InternedArtifact> intern(const std::shared_ptr<const Bytes>& payload);

  // --- shared verification memo (keys are Verifier::cache_key digests) ---
  std::optional<bool> verdict(const types::Hash& key) const;
  void remember_verdict(const types::Hash& key, bool verdict);
  /// remember_verdict(key, true) + the primed counter: used by the
  /// sign-and-prime and combine paths, whose artifacts are valid by
  /// construction.
  void prime_verdict(const types::Hash& key);

  // --- F-INTERN accounting (bench-only; see header comment) ---
  void count_real(uint64_t n) { stats_.real_verifications.fetch_add(n, kRelaxed); }
  void count_memo_hit(uint64_t n = 1) { stats_.verdict_memo_hits.fetch_add(n, kRelaxed); }

  Stats stats() const;
  size_t interned_artifacts() const;
  size_t cached_verdicts() const;

  /// Attach the wall-clock profiler (obs/runtime.hpp): shard lock waits are
  /// sampled and first-parse work gets wall-time spans. Observation only —
  /// interning results and counters are unchanged. Not owned.
  void set_runtime(obs::RuntimeProfiler* runtime) { runtime_ = runtime; }

 private:
  static constexpr auto kRelaxed = std::memory_order_relaxed;
  static constexpr size_t kShards = 8;

  /// Fingerprint-keyed bucket chain; full byte equality decides membership.
  using Chain = std::vector<std::shared_ptr<const InternedArtifact>>;
  struct ArtifactShard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Chain> current;
    std::unordered_map<uint64_t, Chain> previous;
    size_t current_entries = 0;  ///< artifacts (not buckets) in current
  };
  struct VerdictShard {
    mutable std::mutex mu;
    std::unordered_map<types::Hash, bool, types::HashHasher> current;
    std::unordered_map<types::Hash, bool, types::HashHasher> previous;
  };

  ArtifactShard& artifact_shard(uint64_t fp) { return artifacts_[fp % kShards]; }
  const ArtifactShard& artifact_shard(uint64_t fp) const { return artifacts_[fp % kShards]; }
  VerdictShard& verdict_shard(const types::Hash& key) { return verdicts_[key[0] % kShards]; }
  const VerdictShard& verdict_shard(const types::Hash& key) const {
    return verdicts_[key[0] % kShards];
  }

  Options options_;
  obs::RuntimeProfiler* runtime_ = nullptr;
  std::array<ArtifactShard, kShards> artifacts_;
  std::array<VerdictShard, kShards> verdicts_;

  struct StatsCells {
    std::atomic<uint64_t> parses{0};
    std::atomic<uint64_t> decode_hits{0};
    std::atomic<uint64_t> real_verifications{0};
    std::atomic<uint64_t> verdict_memo_hits{0};
    std::atomic<uint64_t> verdicts_primed{0};
  };
  mutable StatsCells stats_;
};

}  // namespace icc::pipeline
