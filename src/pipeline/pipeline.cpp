#include "pipeline/pipeline.hpp"

namespace icc::pipeline {

PipelineStats& PipelineStats::operator+=(const PipelineStats& o) {
  decoded += o.decoded;
  malformed += o.malformed;
  duplicates += o.duplicates;
  dedup_exempt += o.dedup_exempt;
  if (duplicates_from.size() < o.duplicates_from.size())
    duplicates_from.resize(o.duplicates_from.size(), 0);
  for (size_t i = 0; i < o.duplicates_from.size(); ++i)
    duplicates_from[i] += o.duplicates_from[i];
  return *this;
}

std::optional<types::Message> IngressPipeline::decode(uint32_t from, BytesView bytes) {
  if (options_.dedup) {
    if (types::sender_scoped_wire(bytes)) {
      stats_.dedup_exempt++;
    } else {
      types::Hash id = types::artifact_id(bytes);
      if (seen_.count(id)) {
        stats_.duplicates++;
        if (from < stats_.duplicates_from.size()) stats_.duplicates_from[from]++;
        return std::nullopt;
      }
      seen_.insert(id);
      seen_order_.push_back(id);
      while (seen_order_.size() > options_.dedup_capacity) {
        seen_.erase(seen_order_.front());
        seen_order_.pop_front();
      }
    }
  }
  auto msg = types::parse_message(bytes);
  if (!msg) {
    stats_.malformed++;
    return std::nullopt;
  }
  stats_.decoded++;
  return msg;
}

bool IngressPipeline::verify_proposal(const types::ProposalMsg& m) {
  const types::Hash h = m.block.hash();
  return verifier_->verify_auth(
      m.block.proposer, types::authenticator_message(m.block.round, m.block.proposer, h),
      m.authenticator);
}

bool IngressPipeline::verify_notarization_share(const types::NotarizationShareMsg& m) {
  return verifier_->verify_threshold_share(
      crypto::Scheme::kNotary, m.signer,
      types::notarization_message(m.round, m.proposer, m.block_hash), m.share);
}

bool IngressPipeline::verify_notarization(const types::NotarizationMsg& m) {
  return verifier_->verify_threshold(
      crypto::Scheme::kNotary, types::notarization_message(m.round, m.proposer, m.block_hash),
      m.aggregate);
}

bool IngressPipeline::verify_finalization_share(const types::FinalizationShareMsg& m) {
  return verifier_->verify_threshold_share(
      crypto::Scheme::kFinal, m.signer,
      types::finalization_message(m.round, m.proposer, m.block_hash), m.share);
}

bool IngressPipeline::verify_finalization(const types::FinalizationMsg& m) {
  return verifier_->verify_threshold(
      crypto::Scheme::kFinal, types::finalization_message(m.round, m.proposer, m.block_hash),
      m.aggregate);
}

}  // namespace icc::pipeline
