#include "pipeline/pipeline.hpp"

#include <chrono>

#include "pipeline/intern.hpp"

namespace icc::pipeline {
namespace {

/// Records elapsed wall-clock nanoseconds into a histogram on scope exit.
/// A null histogram (stage timing off) costs one branch, no clock reads.
class StageTimer {
 public:
  explicit StageTimer(obs::Histogram* h) : h_(h) {
    if (h_) start_ = std::chrono::steady_clock::now();
  }
  ~StageTimer() {
    if (h_) {
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
      h_->record(static_cast<int64_t>(ns));
    }
  }

 private:
  obs::Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

void IngressPipeline::attach_obs(obs::Obs* obs) {
  if (obs == nullptr || !obs->enabled() || !obs->config().stage_wall_timing) return;
  // 64 ns … ~1 s, exponential.
  decode_wall_ns_ = &obs->registry().histogram("pipeline.decode_wall_ns",
                                               obs::Histogram::exponential(64, 2.0, 24));
  verify_wall_ns_ = &obs->registry().histogram("pipeline.verify_wall_ns",
                                               obs::Histogram::exponential(64, 2.0, 24));
}

PipelineStats& PipelineStats::operator+=(const PipelineStats& o) {
  decoded += o.decoded;
  malformed += o.malformed;
  duplicates += o.duplicates;
  dedup_exempt += o.dedup_exempt;
  if (duplicates_from.size() < o.duplicates_from.size())
    duplicates_from.resize(o.duplicates_from.size(), 0);
  for (size_t i = 0; i < o.duplicates_from.size(); ++i)
    duplicates_from[i] += o.duplicates_from[i];
  return *this;
}

bool IngressPipeline::dedup_admit(uint32_t from, const types::Hash& id) {
  if (seen_.count(id)) {
    stats_.duplicates++;
    if (from < stats_.duplicates_from.size()) stats_.duplicates_from[from]++;
    return false;
  }
  seen_.insert(id);
  seen_order_.push_back(id);
  while (seen_order_.size() > options_.dedup_capacity) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return true;
}

std::optional<types::Message> IngressPipeline::decode(uint32_t from, BytesView bytes) {
  StageTimer timer(decode_wall_ns_);
  if (options_.dedup) {
    if (types::sender_scoped_wire(bytes)) {
      stats_.dedup_exempt++;
    } else if (!dedup_admit(from, types::artifact_id(bytes))) {
      return std::nullopt;
    }
  }
  auto msg = types::parse_message(bytes);
  if (!msg) {
    stats_.malformed++;
    return std::nullopt;
  }
  stats_.decoded++;
  return msg;
}

types::SharedMessage IngressPipeline::decode_shared(
    uint32_t from, const std::shared_ptr<const Bytes>& payload) {
  StageTimer timer(decode_wall_ns_);
  if (intern_ != nullptr) {
    // The entry carries the same artifact id / sender-scoping the per-party
    // path computes, so the dedup window sees identical ids in identical
    // order — stats and eviction cannot diverge between the two modes.
    auto entry = intern_->intern(payload);
    if (options_.dedup) {
      if (entry->sender_scoped) {
        stats_.dedup_exempt++;
      } else if (!dedup_admit(from, entry->artifact_id)) {
        return nullptr;
      }
    }
    if (!entry->msg) {
      stats_.malformed++;
      return nullptr;
    }
    stats_.decoded++;
    return entry->msg;
  }
  BytesView bytes(*payload);
  if (options_.dedup) {
    if (types::sender_scoped_wire(bytes)) {
      stats_.dedup_exempt++;
    } else if (!dedup_admit(from, types::artifact_id(bytes))) {
      return nullptr;
    }
  }
  auto msg = types::parse_message(bytes);
  if (!msg) {
    stats_.malformed++;
    return nullptr;
  }
  stats_.decoded++;
  return std::make_shared<const types::Message>(std::move(*msg));
}

types::SharedMessage IngressPipeline::parse_only(const std::shared_ptr<const Bytes>& payload) {
  if (intern_ != nullptr) return intern_->intern(payload)->msg;
  auto msg = types::parse_message(*payload);
  if (!msg) return nullptr;
  return std::make_shared<const types::Message>(std::move(*msg));
}

bool IngressPipeline::verify_proposal(const types::ProposalMsg& m) {
  StageTimer timer(verify_wall_ns_);
  const types::Hash h = m.block.hash();
  return verifier_->verify_auth(
      m.block.proposer, types::authenticator_message(m.block.round, m.block.proposer, h),
      m.authenticator);
}

bool IngressPipeline::verify_notarization_share(const types::NotarizationShareMsg& m) {
  StageTimer timer(verify_wall_ns_);
  return verifier_->verify_threshold_share(
      crypto::Scheme::kNotary, m.signer,
      types::notarization_message(m.round, m.proposer, m.block_hash), m.share);
}

bool IngressPipeline::verify_notarization(const types::NotarizationMsg& m) {
  StageTimer timer(verify_wall_ns_);
  return verifier_->verify_threshold(
      crypto::Scheme::kNotary, types::notarization_message(m.round, m.proposer, m.block_hash),
      m.aggregate);
}

bool IngressPipeline::verify_finalization_share(const types::FinalizationShareMsg& m) {
  StageTimer timer(verify_wall_ns_);
  return verifier_->verify_threshold_share(
      crypto::Scheme::kFinal, m.signer,
      types::finalization_message(m.round, m.proposer, m.block_hash), m.share);
}

bool IngressPipeline::verify_finalization(const types::FinalizationMsg& m) {
  StageTimer timer(verify_wall_ns_);
  return verifier_->verify_threshold(
      crypto::Scheme::kFinal, types::finalization_message(m.round, m.proposer, m.block_hash),
      m.aggregate);
}

}  // namespace icc::pipeline
