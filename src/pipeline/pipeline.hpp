// Staged ingress pipeline shared by ICC0/ICC1/ICC2.
//
// Every wire payload a party receives passes through four explicit stages:
//
//   1. decode — parse the bytes once into a typed artifact (malformed =
//      adversarial, dropped);
//   2. dedup  — drop exact-duplicate wire artifacts, keyed by content hash,
//      *before any cryptography runs*. Echo-heavy honest traffic (the same
//      notarization broadcast by n parties, the same share re-gossiped) and
//      Byzantine duplicate-floods are absorbed here for the price of one
//      SHA-256. Sender-scoped messages (adverts, pull requests, CUP
//      requests) are exempt: their meaning depends on who sent them.
//   3. verify — all signature checks, centralized in pipeline::Verifier
//      (memoized + batched; see verifier.hpp);
//   4. apply  — insertion into the now crypto-free types::Pool.
//
// This file implements stages 1-2 and the type-specific verify helpers of
// stage 3; the consensus party drives the stages and owns stage 4.
#pragma once

#include <deque>
#include <unordered_set>

#include "obs/obs.hpp"
#include "pipeline/verifier.hpp"
#include "types/messages.hpp"

namespace icc::pipeline {

struct PipelineStats {
  uint64_t decoded = 0;       ///< payloads parsed into a typed artifact
  uint64_t malformed = 0;     ///< payloads dropped in decode
  uint64_t duplicates = 0;    ///< payloads dropped in dedup
  uint64_t dedup_exempt = 0;  ///< sender-scoped payloads that bypassed dedup
  std::vector<uint64_t> duplicates_from;  ///< per sending party

  PipelineStats& operator+=(const PipelineStats& o);
};

class IngressPipeline {
 public:
  IngressPipeline(Verifier& verifier, const PipelineOptions& options, size_t n_parties)
      : verifier_(&verifier), options_(options) {
    stats_.duplicates_from.assign(n_parties, 0);
  }

  /// Stages 1+2: parse `bytes` from party `from`, dropping malformed and
  /// exact-duplicate payloads. Returns the typed artifact, or nullopt if the
  /// payload was dropped.
  std::optional<types::Message> decode(uint32_t from, BytesView bytes);

  /// Shared-buffer variant of decode(): with an attached InternStore the
  /// parse (and artifact hash) happens once per distinct payload
  /// cluster-wide; without one this is decode() plus a per-party allocation
  /// of the result. Stats (decoded/malformed/duplicates/dedup_exempt), the
  /// per-party dedup window and its eviction order are identical either way.
  types::SharedMessage decode_shared(uint32_t from,
                                     const std::shared_ptr<const Bytes>& payload);

  /// Stage-1-only parse of a locally reconstructed buffer (ICC2's RBC
  /// output): interned by content when a store is attached, else parsed
  /// per-party. Touches no pipeline stats — reconstruction is not ingress.
  types::SharedMessage parse_only(const std::shared_ptr<const Bytes>& payload);

  /// Attach the cluster-shared intern store (also see Verifier::attach_intern).
  void attach_intern(InternStore* intern) { intern_ = intern; }

  // --- stage 3: type-specific verification (memoized via the Verifier) ---
  /// Authenticator check for a proposal/echo. The bundled parent
  /// notarization is NOT covered — parse it and route it through
  /// verify_notarization like any other artifact.
  bool verify_proposal(const types::ProposalMsg& m);
  bool verify_notarization_share(const types::NotarizationShareMsg& m);
  bool verify_notarization(const types::NotarizationMsg& m);
  bool verify_finalization_share(const types::FinalizationShareMsg& m);
  bool verify_finalization(const types::FinalizationMsg& m);

  Verifier& verifier() { return *verifier_; }
  const PipelineStats& stats() const { return stats_; }
  size_t dedup_entries() const { return seen_.size(); }

  /// Attach telemetry. Wall-clock decode/verify stage histograms are only
  /// armed when ObsConfig::stage_wall_timing is set (they cost ~2
  /// steady_clock reads per payload).
  void attach_obs(obs::Obs* obs);

 private:
  /// Stage 2 for one artifact id: true = admit (and record), false = drop.
  bool dedup_admit(uint32_t from, const types::Hash& id);

  Verifier* verifier_;
  PipelineOptions options_;
  InternStore* intern_ = nullptr;
  PipelineStats stats_;
  obs::Histogram* decode_wall_ns_ = nullptr;
  obs::Histogram* verify_wall_ns_ = nullptr;

  // Bounded FIFO set of recently seen wire-artifact content hashes.
  std::unordered_set<types::Hash, types::HashHasher> seen_;
  std::deque<types::Hash> seen_order_;
};

}  // namespace icc::pipeline
