#include "pipeline/verifier.hpp"

namespace icc::pipeline {

types::Hash Verifier::cache_key(Domain domain, crypto::PartyIndex signer, BytesView message,
                                BytesView signature) {
  crypto::Sha256 h;
  uint8_t header[5] = {static_cast<uint8_t>(domain), static_cast<uint8_t>(signer),
                       static_cast<uint8_t>(signer >> 8), static_cast<uint8_t>(signer >> 16),
                       static_cast<uint8_t>(signer >> 24)};
  h.update(BytesView(header, sizeof(header)));
  // Length-prefix the message so (message, signature) boundaries are
  // unambiguous — without it, moving bytes across the boundary would alias.
  uint8_t len[8];
  for (int i = 0; i < 8; ++i) len[i] = static_cast<uint8_t>(message.size() >> (8 * i));
  h.update(BytesView(len, sizeof(len)));
  h.update(message);
  h.update(signature);
  return h.digest();
}

std::optional<bool> Verifier::lookup(const types::Hash& key) {
  if (!options_.cache) return std::nullopt;
  if (auto it = current_.find(key); it != current_.end()) return it->second;
  if (auto it = previous_.find(key); it != previous_.end()) return it->second;
  return std::nullopt;
}

void Verifier::remember(const types::Hash& key, bool verdict) {
  if (!options_.cache || options_.cache_capacity == 0) return;
  if (current_.size() >= std::max<size_t>(1, options_.cache_capacity / 2)) {
    previous_ = std::move(current_);
    current_.clear();
  }
  current_[key] = verdict;
}

template <typename Check>
bool Verifier::memoized(Domain domain, crypto::PartyIndex signer, BytesView message,
                        BytesView signature, Check&& check) {
  if (!options_.cache) {
    stats_.provider_verifications++;
    return check();
  }
  types::Hash key = cache_key(domain, signer, message, signature);
  if (auto verdict = lookup(key)) {
    stats_.cache_hits++;
    return *verdict;
  }
  stats_.provider_verifications++;
  bool verdict = check();
  remember(key, verdict);
  return verdict;
}

bool Verifier::verify_auth(crypto::PartyIndex signer, BytesView message,
                           BytesView signature) {
  return memoized(Domain::kAuth, signer, message, signature,
                  [&] { return provider_->verify(signer, message, signature); });
}

bool Verifier::verify_threshold_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                                      BytesView message, BytesView share) {
  return memoized(share_domain(scheme), signer, message, share, [&] {
    return provider_->threshold_verify_share(scheme, signer, message, share);
  });
}

bool Verifier::verify_threshold(crypto::Scheme scheme, BytesView message,
                                BytesView aggregate) {
  // Aggregates have no single signer; index 0xffffffff marks "combined".
  return memoized(agg_domain(scheme), 0xffffffffu, message, aggregate,
                  [&] { return provider_->threshold_verify(scheme, message, aggregate); });
}

bool Verifier::verify_beacon_share(crypto::PartyIndex signer, BytesView message,
                                   BytesView share) {
  return memoized(Domain::kBeaconShare, signer, message, share,
                  [&] { return provider_->beacon_verify_share(signer, message, share); });
}

Bytes Verifier::sign_auth(crypto::PartyIndex signer, BytesView message) {
  Bytes sig = provider_->sign(signer, message);
  if (options_.cache) {
    remember(cache_key(Domain::kAuth, signer, message, sig), true);
    stats_.primed++;
  }
  return sig;
}

Bytes Verifier::threshold_sign_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                                     BytesView message) {
  Bytes share = provider_->threshold_sign_share(scheme, signer, message);
  if (options_.cache) {
    remember(cache_key(share_domain(scheme), signer, message, share), true);
    stats_.primed++;
  }
  return share;
}

Bytes Verifier::beacon_sign_share(crypto::PartyIndex signer, BytesView message) {
  Bytes share = provider_->beacon_sign_share(signer, message);
  if (options_.cache) {
    remember(cache_key(Domain::kBeaconShare, signer, message, share), true);
    stats_.primed++;
  }
  return share;
}

std::vector<uint8_t> Verifier::verify_shares_batch(
    crypto::Scheme scheme, BytesView message,
    std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  std::vector<uint8_t> verdicts(shares.size(), 0);
  std::vector<size_t> misses;  // indices not answered by the cache
  std::vector<types::Hash> miss_keys;
  for (size_t i = 0; i < shares.size(); ++i) {
    const auto& [signer, share] = shares[i];
    types::Hash key = cache_key(share_domain(scheme), signer, message, share);
    if (auto verdict = lookup(key)) {
      stats_.cache_hits++;
      verdicts[i] = *verdict ? 1 : 0;
    } else {
      misses.push_back(i);
      miss_keys.push_back(key);
    }
  }
  if (misses.empty()) return verdicts;

  if (options_.batch && misses.size() > 1) {
    std::vector<std::pair<crypto::PartyIndex, Bytes>> pending;
    pending.reserve(misses.size());
    for (size_t i : misses) pending.push_back(shares[i]);
    stats_.batch_calls++;
    if (batch_size_hist_) batch_size_hist_->record(static_cast<int64_t>(pending.size()));
    stats_.provider_verifications += pending.size();
    std::vector<uint8_t> batch = provider_->threshold_verify_share_batch(scheme, message, pending);
    bool all_ok = true;
    for (size_t j = 0; j < misses.size(); ++j) {
      verdicts[misses[j]] = batch[j];
      remember(miss_keys[j], batch[j] != 0);
      all_ok = all_ok && batch[j];
    }
    // The combined equation fails iff some share is invalid, in which case
    // the provider fell back to per-item checks to identify it.
    if (!all_ok) stats_.batch_fallbacks++;
    return verdicts;
  }
  for (size_t j = 0; j < misses.size(); ++j) {
    const auto& [signer, share] = shares[misses[j]];
    stats_.provider_verifications++;
    bool ok = provider_->threshold_verify_share(scheme, signer, message, share);
    remember(miss_keys[j], ok);
    verdicts[misses[j]] = ok ? 1 : 0;
  }
  return verdicts;
}

Bytes Verifier::threshold_combine(
    crypto::Scheme scheme, BytesView message,
    std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  if (!options_.cache) {
    // Without memoization the provider's own verify-and-combine is exactly
    // the pre-pipeline behaviour.
    stats_.provider_verifications += shares.size();
    return provider_->threshold_combine(scheme, message, shares);
  }
  std::vector<uint8_t> verdicts = verify_shares_batch(scheme, message, shares);
  std::vector<std::pair<crypto::PartyIndex, Bytes>> valid;
  valid.reserve(shares.size());
  for (size_t i = 0; i < shares.size(); ++i) {
    if (verdicts[i]) valid.push_back(shares[i]);
  }
  stats_.combine_share_checks_skipped += valid.size();
  Bytes agg = provider_->threshold_combine_preverified(scheme, message, valid);
  if (!agg.empty()) {
    // Prime the aggregate's verdict: our own broadcast of it echoes back.
    remember(cache_key(agg_domain(scheme), 0xffffffffu, message, agg), true);
    stats_.primed++;
  }
  return agg;
}

Bytes Verifier::beacon_combine(
    BytesView message, std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  if (!options_.cache) {
    stats_.provider_verifications += shares.size();
    return provider_->beacon_combine(message, shares);
  }
  std::vector<std::pair<crypto::PartyIndex, Bytes>> valid;
  valid.reserve(shares.size());
  for (const auto& s : shares) {
    if (verify_beacon_share(s.first, message, s.second)) valid.push_back(s);
  }
  stats_.combine_share_checks_skipped += valid.size();
  return provider_->beacon_combine_preverified(message, valid);
}

void Verifier::attach_obs(obs::Obs* obs) {
  if (obs == nullptr || !obs->enabled()) return;
  batch_size_hist_ =
      &obs->registry().histogram("verify.batch_size", obs::Histogram::linear(1, 64));
}

}  // namespace icc::pipeline
