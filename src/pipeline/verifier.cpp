#include "pipeline/verifier.hpp"

namespace icc::pipeline {

namespace {
// Relaxed suffices for all counter cells: they are commutative increments
// read only at quiescent points (obs/metrics.hpp memory-order contract).
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

types::Hash Verifier::cache_key(Domain domain, crypto::PartyIndex signer, BytesView message,
                                BytesView signature) {
  crypto::Sha256 h;
  uint8_t header[5] = {static_cast<uint8_t>(domain), static_cast<uint8_t>(signer),
                       static_cast<uint8_t>(signer >> 8), static_cast<uint8_t>(signer >> 16),
                       static_cast<uint8_t>(signer >> 24)};
  h.update(BytesView(header, sizeof(header)));
  // Length-prefix the message so (message, signature) boundaries are
  // unambiguous — without it, moving bytes across the boundary would alias.
  uint8_t len[8];
  for (int i = 0; i < 8; ++i) len[i] = static_cast<uint8_t>(message.size() >> (8 * i));
  h.update(BytesView(len, sizeof(len)));
  h.update(message);
  h.update(signature);
  return h.digest();
}

std::optional<bool> Verifier::lookup(const types::Hash& key) {
  if (!options_.cache) return std::nullopt;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  if (auto it = s.current.find(key); it != s.current.end()) return it->second;
  if (auto it = s.previous.find(key); it != s.previous.end()) return it->second;
  return std::nullopt;
}

void Verifier::remember(const types::Hash& key, bool verdict) {
  if (!options_.cache || options_.cache_capacity == 0) return;
  Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.current.size() >= rotate_threshold()) {
    s.previous = std::move(s.current);
    s.current.clear();
  }
  s.current[key] = verdict;
}

template <typename Check>
bool Verifier::memoized(Domain domain, crypto::PartyIndex signer, BytesView message,
                        BytesView signature, Check&& check) {
  if (!options_.cache) {
    stats_.provider_verifications.fetch_add(1, kRelaxed);
    return check();
  }
  types::Hash key = cache_key(domain, signer, message, signature);
  if (auto verdict = lookup(key)) {
    stats_.cache_hits.fetch_add(1, kRelaxed);
    return *verdict;
  }
  stats_.provider_verifications.fetch_add(1, kRelaxed);
  bool verdict = check();
  remember(key, verdict);
  return verdict;
}

bool Verifier::verify_auth(crypto::PartyIndex signer, BytesView message,
                           BytesView signature) {
  return memoized(Domain::kAuth, signer, message, signature,
                  [&] { return provider_->verify(signer, message, signature); });
}

bool Verifier::verify_threshold_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                                      BytesView message, BytesView share) {
  return memoized(share_domain(scheme), signer, message, share, [&] {
    return provider_->threshold_verify_share(scheme, signer, message, share);
  });
}

bool Verifier::verify_threshold(crypto::Scheme scheme, BytesView message,
                                BytesView aggregate) {
  // Aggregates have no single signer; index 0xffffffff marks "combined".
  return memoized(agg_domain(scheme), 0xffffffffu, message, aggregate,
                  [&] { return provider_->threshold_verify(scheme, message, aggregate); });
}

bool Verifier::verify_beacon_share(crypto::PartyIndex signer, BytesView message,
                                   BytesView share) {
  return memoized(Domain::kBeaconShare, signer, message, share,
                  [&] { return provider_->beacon_verify_share(signer, message, share); });
}

Bytes Verifier::sign_auth(crypto::PartyIndex signer, BytesView message) {
  Bytes sig = provider_->sign(signer, message);
  if (options_.cache) {
    remember(cache_key(Domain::kAuth, signer, message, sig), true);
    stats_.primed.fetch_add(1, kRelaxed);
  }
  return sig;
}

Bytes Verifier::threshold_sign_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                                     BytesView message) {
  Bytes share = provider_->threshold_sign_share(scheme, signer, message);
  if (options_.cache) {
    remember(cache_key(share_domain(scheme), signer, message, share), true);
    stats_.primed.fetch_add(1, kRelaxed);
  }
  return share;
}

Bytes Verifier::beacon_sign_share(crypto::PartyIndex signer, BytesView message) {
  Bytes share = provider_->beacon_sign_share(signer, message);
  if (options_.cache) {
    remember(cache_key(Domain::kBeaconShare, signer, message, share), true);
    stats_.primed.fetch_add(1, kRelaxed);
  }
  return share;
}

std::vector<uint8_t> Verifier::verify_shares_batch(
    crypto::Scheme scheme, BytesView message,
    std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  std::vector<uint8_t> verdicts(shares.size(), 0);
  std::vector<size_t> misses;  // indices not answered by the cache
  std::vector<types::Hash> miss_keys;
  for (size_t i = 0; i < shares.size(); ++i) {
    const auto& [signer, share] = shares[i];
    types::Hash key = cache_key(share_domain(scheme), signer, message, share);
    if (auto verdict = lookup(key)) {
      stats_.cache_hits.fetch_add(1, kRelaxed);
      verdicts[i] = *verdict ? 1 : 0;
    } else {
      misses.push_back(i);
      miss_keys.push_back(key);
    }
  }
  if (misses.empty()) return verdicts;

  if (options_.batch && misses.size() > 1) {
    std::vector<std::pair<crypto::PartyIndex, Bytes>> pending;
    pending.reserve(misses.size());
    for (size_t i : misses) pending.push_back(shares[i]);
    // Stats are accounted *logically* — one batch call, miss-count provider
    // verifications, one histogram sample — whether or not the work is
    // sliced below. Metrics therefore cannot depend on the thread count.
    stats_.batch_calls.fetch_add(1, kRelaxed);
    if (batch_size_hist_) batch_size_hist_->record(static_cast<int64_t>(pending.size()));
    stats_.provider_verifications.fetch_add(pending.size(), kRelaxed);

    std::vector<uint8_t> batch;
    size_t slices = 1;
    if (executor_ != nullptr && executor_->threads() > 1)
      slices = std::min(executor_->threads(), pending.size() / kMinSliceShares);
    if (slices > 1) {
      // Slice the pending set into near-equal contiguous chunks; each pool
      // job runs the provider's batch equation over its chunk and writes
      // verdicts into a disjoint range. Crypto providers are stateless
      // after construction, so concurrent calls are safe.
      batch.resize(pending.size());
      const size_t base = pending.size() / slices;
      const size_t extra = pending.size() % slices;
      std::vector<size_t> begin(slices + 1, 0);
      for (size_t c = 0; c < slices; ++c)
        begin[c + 1] = begin[c] + base + (c < extra ? 1 : 0);
      std::span<const std::pair<crypto::PartyIndex, Bytes>> all(pending);
      executor_->parallel_for(slices, [&](size_t c) {
        auto chunk = all.subspan(begin[c], begin[c + 1] - begin[c]);
        std::vector<uint8_t> out =
            provider_->threshold_verify_share_batch(scheme, message, chunk);
        std::copy(out.begin(), out.end(), batch.begin() + static_cast<ptrdiff_t>(begin[c]));
      });
    } else {
      batch = provider_->threshold_verify_share_batch(scheme, message, pending);
    }

    // Merge and memoize on the calling thread, in submission order — cache
    // rotation stays deterministic across thread counts.
    bool all_ok = true;
    for (size_t j = 0; j < misses.size(); ++j) {
      verdicts[misses[j]] = batch[j];
      remember(miss_keys[j], batch[j] != 0);
      all_ok = all_ok && batch[j];
    }
    // The combined equation fails iff some share is invalid, in which case
    // the provider fell back to per-item checks to identify it.
    if (!all_ok) stats_.batch_fallbacks.fetch_add(1, kRelaxed);
    return verdicts;
  }
  for (size_t j = 0; j < misses.size(); ++j) {
    const auto& [signer, share] = shares[misses[j]];
    stats_.provider_verifications.fetch_add(1, kRelaxed);
    bool ok = provider_->threshold_verify_share(scheme, signer, message, share);
    remember(miss_keys[j], ok);
    verdicts[misses[j]] = ok ? 1 : 0;
  }
  return verdicts;
}

Bytes Verifier::threshold_combine(
    crypto::Scheme scheme, BytesView message,
    std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  if (!options_.cache) {
    // Without memoization the provider's own verify-and-combine is exactly
    // the pre-pipeline behaviour.
    stats_.provider_verifications.fetch_add(shares.size(), kRelaxed);
    return provider_->threshold_combine(scheme, message, shares);
  }
  std::vector<uint8_t> verdicts = verify_shares_batch(scheme, message, shares);
  std::vector<std::pair<crypto::PartyIndex, Bytes>> valid;
  valid.reserve(shares.size());
  for (size_t i = 0; i < shares.size(); ++i) {
    if (verdicts[i]) valid.push_back(shares[i]);
  }
  stats_.combine_share_checks_skipped.fetch_add(valid.size(), kRelaxed);
  Bytes agg = provider_->threshold_combine_preverified(scheme, message, valid);
  if (!agg.empty()) {
    // Prime the aggregate's verdict: our own broadcast of it echoes back.
    remember(cache_key(agg_domain(scheme), 0xffffffffu, message, agg), true);
    stats_.primed.fetch_add(1, kRelaxed);
  }
  return agg;
}

Bytes Verifier::beacon_combine(
    BytesView message, std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  if (!options_.cache) {
    stats_.provider_verifications.fetch_add(shares.size(), kRelaxed);
    return provider_->beacon_combine(message, shares);
  }
  std::vector<std::pair<crypto::PartyIndex, Bytes>> valid;
  valid.reserve(shares.size());
  for (const auto& s : shares) {
    if (verify_beacon_share(s.first, message, s.second)) valid.push_back(s);
  }
  stats_.combine_share_checks_skipped.fetch_add(valid.size(), kRelaxed);
  return provider_->beacon_combine_preverified(message, valid);
}

Verifier::Stats Verifier::stats() const {
  Stats s;
  s.provider_verifications = stats_.provider_verifications.load(kRelaxed);
  s.cache_hits = stats_.cache_hits.load(kRelaxed);
  s.primed = stats_.primed.load(kRelaxed);
  s.batch_calls = stats_.batch_calls.load(kRelaxed);
  s.batch_fallbacks = stats_.batch_fallbacks.load(kRelaxed);
  s.combine_share_checks_skipped = stats_.combine_share_checks_skipped.load(kRelaxed);
  return s;
}

size_t Verifier::cached_verdicts() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    total += s.current.size() + s.previous.size();
  }
  return total;
}

void Verifier::attach_obs(obs::Obs* obs) {
  if (obs == nullptr || !obs->enabled()) return;
  batch_size_hist_ =
      &obs->registry().histogram("verify.batch_size", obs::Histogram::linear(1, 64));
}

}  // namespace icc::pipeline
