#include "pipeline/verifier.hpp"

#include "pipeline/intern.hpp"

namespace icc::pipeline {

namespace {
// Relaxed suffices for all counter cells: they are commutative increments
// read only at quiescent points (obs/metrics.hpp memory-order contract).
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

types::Hash Verifier::cache_key(Domain domain, crypto::PartyIndex signer, BytesView message,
                                BytesView signature) {
  crypto::Sha256 h;
  uint8_t header[5] = {static_cast<uint8_t>(domain), static_cast<uint8_t>(signer),
                       static_cast<uint8_t>(signer >> 8), static_cast<uint8_t>(signer >> 16),
                       static_cast<uint8_t>(signer >> 24)};
  h.update(BytesView(header, sizeof(header)));
  // Length-prefix the message so (message, signature) boundaries are
  // unambiguous — without it, moving bytes across the boundary would alias.
  uint8_t len[8];
  for (int i = 0; i < 8; ++i) len[i] = static_cast<uint8_t>(message.size() >> (8 * i));
  h.update(BytesView(len, sizeof(len)));
  h.update(message);
  h.update(signature);
  return h.digest();
}

std::optional<bool> Verifier::lookup(const types::Hash& key) {
  if (!options_.cache) return std::nullopt;
  Shard& s = shard_for(key);
  obs::SampledLock lk(s.mu, runtime_, obs::LockSite::kVerifierCache);
  if (auto it = s.current.find(key); it != s.current.end()) return it->second;
  if (auto it = s.previous.find(key); it != s.previous.end()) return it->second;
  return std::nullopt;
}

void Verifier::remember(const types::Hash& key, bool verdict) {
  if (!options_.cache || options_.cache_capacity == 0) return;
  Shard& s = shard_for(key);
  obs::SampledLock lk(s.mu, runtime_, obs::LockSite::kVerifierCache);
  if (s.current.size() >= rotate_threshold()) {
    s.previous = std::move(s.current);
    s.current.clear();
  }
  s.current[key] = verdict;
}

template <typename Check>
bool Verifier::memoized(Domain domain, crypto::PartyIndex signer, BytesView message,
                        BytesView signature, Check&& check) {
  if (!options_.cache) {
    stats_.provider_verifications.fetch_add(1, kRelaxed);
    return check();
  }
  types::Hash key = cache_key(domain, signer, message, signature);
  if (auto verdict = lookup(key)) {
    stats_.cache_hits.fetch_add(1, kRelaxed);
    return *verdict;
  }
  // Logical accounting first: a lone party would verify here, and the
  // per-party stats must not depend on whether the shared memo answers.
  stats_.provider_verifications.fetch_add(1, kRelaxed);
  bool verdict;
  if (intern_ != nullptr) {
    if (auto shared = intern_->verdict(key)) {
      intern_->count_memo_hit();
      verdict = *shared;
    } else {
      intern_->count_real(1);
      verdict = check();
      intern_->remember_verdict(key, verdict);
    }
  } else {
    verdict = check();
  }
  remember(key, verdict);
  return verdict;
}

bool Verifier::verify_auth(crypto::PartyIndex signer, BytesView message,
                           BytesView signature) {
  return memoized(Domain::kAuth, signer, message, signature,
                  [&] { return provider_->verify(signer, message, signature); });
}

bool Verifier::verify_threshold_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                                      BytesView message, BytesView share) {
  return memoized(share_domain(scheme), signer, message, share, [&] {
    return provider_->threshold_verify_share(scheme, signer, message, share);
  });
}

bool Verifier::verify_threshold(crypto::Scheme scheme, BytesView message,
                                BytesView aggregate) {
  // Aggregates have no single signer; index 0xffffffff marks "combined".
  return memoized(agg_domain(scheme), 0xffffffffu, message, aggregate,
                  [&] { return provider_->threshold_verify(scheme, message, aggregate); });
}

bool Verifier::verify_beacon_share(crypto::PartyIndex signer, BytesView message,
                                   BytesView share) {
  return memoized(Domain::kBeaconShare, signer, message, share,
                  [&] { return provider_->beacon_verify_share(signer, message, share); });
}

Bytes Verifier::sign_auth(crypto::PartyIndex signer, BytesView message) {
  Bytes sig = provider_->sign(signer, message);
  if (options_.cache) {
    types::Hash key = cache_key(Domain::kAuth, signer, message, sig);
    remember(key, true);
    stats_.primed.fetch_add(1, kRelaxed);
    // Sign-and-prime the shared memo too: our signature is valid by
    // construction, so no party in the cluster ever re-verifies it.
    if (intern_ != nullptr) intern_->prime_verdict(key);
  }
  return sig;
}

Bytes Verifier::threshold_sign_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                                     BytesView message) {
  Bytes share = provider_->threshold_sign_share(scheme, signer, message);
  if (options_.cache) {
    types::Hash key = cache_key(share_domain(scheme), signer, message, share);
    remember(key, true);
    stats_.primed.fetch_add(1, kRelaxed);
    if (intern_ != nullptr) intern_->prime_verdict(key);
  }
  return share;
}

Bytes Verifier::beacon_sign_share(crypto::PartyIndex signer, BytesView message) {
  Bytes share = provider_->beacon_sign_share(signer, message);
  if (options_.cache) {
    types::Hash key = cache_key(Domain::kBeaconShare, signer, message, share);
    remember(key, true);
    stats_.primed.fetch_add(1, kRelaxed);
    if (intern_ != nullptr) intern_->prime_verdict(key);
  }
  return share;
}

std::vector<uint8_t> Verifier::verify_shares_batch(
    crypto::Scheme scheme, BytesView message,
    std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  std::vector<uint8_t> verdicts(shares.size(), 0);
  std::vector<size_t> misses;  // indices not answered by the cache
  std::vector<types::Hash> miss_keys;
  for (size_t i = 0; i < shares.size(); ++i) {
    const auto& [signer, share] = shares[i];
    types::Hash key = cache_key(share_domain(scheme), signer, message, share);
    if (auto verdict = lookup(key)) {
      stats_.cache_hits.fetch_add(1, kRelaxed);
      verdicts[i] = *verdict ? 1 : 0;
    } else {
      misses.push_back(i);
      miss_keys.push_back(key);
    }
  }
  if (misses.empty()) return verdicts;

  if (options_.batch && misses.size() > 1) {
    std::vector<std::pair<crypto::PartyIndex, Bytes>> pending;
    pending.reserve(misses.size());
    for (size_t i : misses) pending.push_back(shares[i]);
    // Stats are accounted *logically* — one batch call, miss-count provider
    // verifications, one histogram sample — whether or not the work is
    // sliced or partially answered by the shared memo below. Metrics
    // therefore cannot depend on the thread count or on interning.
    stats_.batch_calls.fetch_add(1, kRelaxed);
    if (batch_size_hist_) batch_size_hist_->record(static_cast<int64_t>(pending.size()));
    stats_.provider_verifications.fetch_add(pending.size(), kRelaxed);

    std::vector<uint8_t> batch(misses.size(), 0);
    if (intern_ != nullptr) {
      // Answer what the cluster has already verified; batch only the rest.
      std::vector<size_t> real_idx;
      for (size_t j = 0; j < misses.size(); ++j) {
        if (auto shared = intern_->verdict(miss_keys[j])) {
          intern_->count_memo_hit();
          batch[j] = *shared ? 1 : 0;
        } else {
          real_idx.push_back(j);
        }
      }
      if (!real_idx.empty()) {
        std::vector<std::pair<crypto::PartyIndex, Bytes>> real_pending;
        real_pending.reserve(real_idx.size());
        for (size_t j : real_idx) real_pending.push_back(pending[j]);
        intern_->count_real(real_pending.size());
        std::vector<uint8_t> out = run_share_batch(scheme, message, real_pending);
        for (size_t k = 0; k < real_idx.size(); ++k) {
          batch[real_idx[k]] = out[k];
          intern_->remember_verdict(miss_keys[real_idx[k]], out[k] != 0);
        }
      }
    } else {
      batch = run_share_batch(scheme, message, pending);
    }

    // Merge and memoize on the calling thread, in submission order — cache
    // rotation stays deterministic across thread counts.
    bool all_ok = true;
    for (size_t j = 0; j < misses.size(); ++j) {
      verdicts[misses[j]] = batch[j];
      remember(miss_keys[j], batch[j] != 0);
      all_ok = all_ok && batch[j];
    }
    // The combined equation fails iff some share is invalid, in which case
    // the provider fell back to per-item checks to identify it. (Logical:
    // counted over all misses even when the memo answered some.)
    if (!all_ok) stats_.batch_fallbacks.fetch_add(1, kRelaxed);
    return verdicts;
  }
  for (size_t j = 0; j < misses.size(); ++j) {
    const auto& [signer, share] = shares[misses[j]];
    stats_.provider_verifications.fetch_add(1, kRelaxed);
    bool ok;
    if (intern_ != nullptr) {
      if (auto shared = intern_->verdict(miss_keys[j])) {
        intern_->count_memo_hit();
        ok = *shared;
      } else {
        intern_->count_real(1);
        ok = provider_->threshold_verify_share(scheme, signer, message, share);
        intern_->remember_verdict(miss_keys[j], ok);
      }
    } else {
      ok = provider_->threshold_verify_share(scheme, signer, message, share);
    }
    remember(miss_keys[j], ok);
    verdicts[misses[j]] = ok ? 1 : 0;
  }
  return verdicts;
}

std::vector<uint8_t> Verifier::run_share_batch(
    crypto::Scheme scheme, BytesView message,
    std::span<const std::pair<crypto::PartyIndex, Bytes>> pending) {
  size_t slices = 1;
  if (executor_ != nullptr && executor_->threads() > 1)
    slices = std::min(executor_->threads(), pending.size() / kMinSliceShares);
  if (slices <= 1) {
    obs::SpanScope span(runtime_, obs::TaskKind::kVerifySlice, pending.size());
    return provider_->threshold_verify_share_batch(scheme, message, pending);
  }
  // Slice the pending set into near-equal contiguous chunks; each pool
  // job runs the provider's batch equation over its chunk and writes
  // verdicts into a disjoint range. Crypto providers are stateless
  // after construction, so concurrent calls are safe.
  std::vector<uint8_t> batch(pending.size(), 0);
  const size_t base = pending.size() / slices;
  const size_t extra = pending.size() % slices;
  std::vector<size_t> begin(slices + 1, 0);
  for (size_t c = 0; c < slices; ++c) begin[c + 1] = begin[c] + base + (c < extra ? 1 : 0);
  executor_->parallel_for(slices, [&](size_t c) {
    auto chunk = pending.subspan(begin[c], begin[c + 1] - begin[c]);
    obs::SpanScope span(runtime_, obs::TaskKind::kVerifySlice, chunk.size());
    std::vector<uint8_t> out = provider_->threshold_verify_share_batch(scheme, message, chunk);
    std::copy(out.begin(), out.end(), batch.begin() + static_cast<ptrdiff_t>(begin[c]));
  });
  return batch;
}

Bytes Verifier::threshold_combine(
    crypto::Scheme scheme, BytesView message,
    std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  if (!options_.cache) {
    // Without memoization the provider's own verify-and-combine is exactly
    // the pre-pipeline behaviour (the shared memo keys off the per-party
    // cache keys, so it is not consulted either; the real checks inside the
    // provider still count toward F-INTERN).
    stats_.provider_verifications.fetch_add(shares.size(), kRelaxed);
    if (intern_ != nullptr) intern_->count_real(shares.size());
    return provider_->threshold_combine(scheme, message, shares);
  }
  std::vector<uint8_t> verdicts = verify_shares_batch(scheme, message, shares);
  std::vector<std::pair<crypto::PartyIndex, Bytes>> valid;
  valid.reserve(shares.size());
  for (size_t i = 0; i < shares.size(); ++i) {
    if (verdicts[i]) valid.push_back(shares[i]);
  }
  stats_.combine_share_checks_skipped.fetch_add(valid.size(), kRelaxed);
  Bytes agg = provider_->threshold_combine_preverified(scheme, message, valid);
  if (!agg.empty()) {
    // Prime the aggregate's verdict: our own broadcast of it echoes back.
    // Threshold signatures are unique, so every party combining the same
    // quorum produces these bytes — priming the shared memo saves the
    // aggregate check for the whole cluster.
    types::Hash key = cache_key(agg_domain(scheme), 0xffffffffu, message, agg);
    remember(key, true);
    stats_.primed.fetch_add(1, kRelaxed);
    if (intern_ != nullptr) intern_->prime_verdict(key);
  }
  return agg;
}

Bytes Verifier::beacon_combine(
    BytesView message, std::span<const std::pair<crypto::PartyIndex, Bytes>> shares) {
  if (!options_.cache) {
    stats_.provider_verifications.fetch_add(shares.size(), kRelaxed);
    if (intern_ != nullptr) intern_->count_real(shares.size());
    return provider_->beacon_combine(message, shares);
  }
  std::vector<std::pair<crypto::PartyIndex, Bytes>> valid;
  valid.reserve(shares.size());
  for (const auto& s : shares) {
    if (verify_beacon_share(s.first, message, s.second)) valid.push_back(s);
  }
  stats_.combine_share_checks_skipped.fetch_add(valid.size(), kRelaxed);
  return provider_->beacon_combine_preverified(message, valid);
}

Verifier::Stats Verifier::stats() const {
  Stats s;
  s.provider_verifications = stats_.provider_verifications.load(kRelaxed);
  s.cache_hits = stats_.cache_hits.load(kRelaxed);
  s.primed = stats_.primed.load(kRelaxed);
  s.batch_calls = stats_.batch_calls.load(kRelaxed);
  s.batch_fallbacks = stats_.batch_fallbacks.load(kRelaxed);
  s.combine_share_checks_skipped = stats_.combine_share_checks_skipped.load(kRelaxed);
  return s;
}

size_t Verifier::cached_verdicts() const {
  size_t total = 0;
  for (const Shard& s : shards_) {
    obs::SampledLock lk(s.mu, runtime_, obs::LockSite::kVerifierCache);
    total += s.current.size() + s.previous.size();
  }
  return total;
}

void Verifier::attach_obs(obs::Obs* obs) {
  if (obs == nullptr || !obs->enabled()) return;
  batch_size_hist_ =
      &obs->registry().histogram("verify.batch_size", obs::Histogram::linear(1, 64));
}

}  // namespace icc::pipeline
