// Centralized signature verification for the ingress pipeline.
//
// Every signature check of the consensus layer flows through a Verifier
// wrapping the crypto::CryptoProvider. The wrapper adds what the raw
// provider deliberately does not have:
//
//   * a bounded memoization cache keyed on H(domain ‖ signer ‖ message ‖
//     signature). In committee-based BFT the same artifact reaches a party
//     many times (echoes, share floods, combine-time re-checks), and
//     signature verification dominates CPU (Li–Sonnino–Jovanovic, PAPERS.md);
//     a cache hit replaces an Ed25519 verification with one SHA-256. Both
//     verdicts are cached, so a replayed *invalid* artifact is also free.
//     Keys cover the signature bytes, so equivocation (same message, a
//     different signature) can never be conflated with a cached verdict.
//   * sign-and-prime helpers: a party's own signatures are inserted into the
//     cache at creation time, making the self-delivery of its broadcasts and
//     the combine-time re-check of its own shares free.
//   * a batch API: k pending shares over one message are checked in a single
//     provider call (Ed25519 batch equation under kReal); if the batch
//     fails, a per-item pass identifies the bad shares. With an attached
//     support::Executor the pending shares are additionally sliced into
//     near-equal chunks verified concurrently on the pool, with verdicts
//     merged back in submission order — and with *logical* stats accounting
//     (one batch call, one histogram sample, miss-count verifications)
//     independent of the slicing, so metrics stay identical at any thread
//     count.
//   * combine wrappers that pass only cache-validated shares to the
//     provider's *_preverified combine, eliminating the second full
//     verification of every share that the plain combine performs.
//
// The cache is per-party (each simulated party owns one Verifier), bounded
// by two-generation rotation, and *sharded*: the key's first byte selects
// one of kCacheShards shards, each with its own mutex and generation pair,
// so concurrent pool workers never serialize on a single cache lock
// (DESIGN.md §6). Cache mutations on the batch path happen on the calling
// thread after the parallel join, in submission order — shard rotation (and
// therefore eviction, hit counts, and every downstream metric) is
// deterministic regardless of thread count. Stats are relaxed atomics
// (commutative increments; same contract as obs/metrics.hpp).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "crypto/provider.hpp"
#include "crypto/sha256.hpp"
#include "obs/obs.hpp"
#include "support/executor.hpp"
#include "types/block.hpp"

namespace icc::pipeline {

class InternStore;

/// Tuning knobs for the staged ingress pipeline (decode → dedup → verify →
/// apply). Lives here so crypto-layer consumers need not pull in the
/// pipeline itself.
struct PipelineOptions {
  bool dedup = true;            ///< drop exact-duplicate wire artifacts
  bool cache = true;            ///< memoize verification verdicts
  bool batch = true;            ///< batch-verify pending shares at combine
  size_t dedup_capacity = 8192;   ///< recent wire hashes remembered per party
  size_t cache_capacity = 16384;  ///< cached verdicts per party
};

class Verifier {
 public:
  struct Stats {
    uint64_t provider_verifications = 0;  ///< checks that reached real crypto
    uint64_t cache_hits = 0;              ///< checks answered from the cache
    uint64_t primed = 0;                  ///< verdicts inserted at sign time
    uint64_t batch_calls = 0;             ///< batch verifications issued
    uint64_t batch_fallbacks = 0;         ///< batches that failed per-item
    uint64_t combine_share_checks_skipped = 0;  ///< combine re-checks avoided

    Stats& operator+=(const Stats& o) {
      provider_verifications += o.provider_verifications;
      cache_hits += o.cache_hits;
      primed += o.primed;
      batch_calls += o.batch_calls;
      batch_fallbacks += o.batch_fallbacks;
      combine_share_checks_skipped += o.combine_share_checks_skipped;
      return *this;
    }
  };

  Verifier(crypto::CryptoProvider& provider, const PipelineOptions& options)
      : provider_(&provider), options_(options) {}

  crypto::CryptoProvider& provider() { return *provider_; }
  size_t n() const { return provider_->n(); }
  size_t t() const { return provider_->t(); }
  size_t quorum() const { return provider_->quorum(); }
  size_t beacon_threshold() const { return provider_->beacon_threshold(); }

  // --- memoized verification ---
  bool verify_auth(crypto::PartyIndex signer, BytesView message, BytesView signature);
  bool verify_threshold_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                              BytesView message, BytesView share);
  bool verify_threshold(crypto::Scheme scheme, BytesView message, BytesView aggregate);
  bool verify_beacon_share(crypto::PartyIndex signer, BytesView message, BytesView share);

  // --- sign-and-prime (our own artifacts never need re-verification) ---
  Bytes sign_auth(crypto::PartyIndex signer, BytesView message);
  Bytes threshold_sign_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                             BytesView message);
  Bytes beacon_sign_share(crypto::PartyIndex signer, BytesView message);

  /// Verify k shares over one message. Returns one verdict per share. All
  /// cache misses go to the provider as a single batch (sliced across the
  /// attached executor's pool when profitable); a failed batch falls back to
  /// per-item verification to identify the bad shares.
  std::vector<uint8_t> verify_shares_batch(
      crypto::Scheme scheme, BytesView message,
      std::span<const std::pair<crypto::PartyIndex, Bytes>> shares);

  // --- combine without the provider's second per-share verification ---
  Bytes threshold_combine(crypto::Scheme scheme, BytesView message,
                          std::span<const std::pair<crypto::PartyIndex, Bytes>> shares);
  Bytes beacon_combine(BytesView message,
                       std::span<const std::pair<crypto::PartyIndex, Bytes>> shares);

  /// Snapshot of the counters (by value: the live cells are atomics).
  Stats stats() const;
  size_t cached_verdicts() const;

  /// Attach telemetry: a batch-size histogram recorded per batch call.
  void attach_obs(obs::Obs* obs);

  /// Attach a worker pool; batch verifications with enough cache misses are
  /// then sliced into pool jobs. Null (or a 1-thread pool) keeps the
  /// single-call path. The verifier does not own the executor.
  void attach_executor(support::Executor* executor) { executor_ = executor; }

  /// Attach the wall-clock profiler (obs/runtime.hpp): verdict-shard lock
  /// waits are sampled and batch slices get wall-time spans. Observation
  /// only — verdicts, stats and rotation are unchanged. Not owned.
  void attach_runtime(obs::RuntimeProfiler* runtime) { runtime_ = runtime; }

  /// Attach the cluster-shared intern store (DESIGN.md §7). Its verdict memo
  /// is consulted *after* a per-party cache miss and filled alongside every
  /// real verification / sign-time prime, so one party's work answers every
  /// other party's check. The per-party logical stats above are computed
  /// before the memo is consulted and are byte-identical with or without it.
  /// Requires options.cache (the memo shares the per-party cache keys); the
  /// harness only attaches it when the verdict cache stage is on.
  void attach_intern(InternStore* intern) { intern_ = intern; }

 private:
  // Verdict-cache key domains (distinct per signature scheme/usage).
  enum class Domain : uint8_t {
    kAuth = 1,
    kNotaryShare = 2,
    kFinalShare = 3,
    kNotaryAgg = 4,
    kFinalAgg = 5,
    kBeaconShare = 6,
  };
  static Domain share_domain(crypto::Scheme s) {
    return s == crypto::Scheme::kNotary ? Domain::kNotaryShare : Domain::kFinalShare;
  }
  static Domain agg_domain(crypto::Scheme s) {
    return s == crypto::Scheme::kNotary ? Domain::kNotaryAgg : Domain::kFinalAgg;
  }

  static types::Hash cache_key(Domain domain, crypto::PartyIndex signer, BytesView message,
                               BytesView signature);

  /// Cache lookup; nullopt on miss (or cache disabled).
  std::optional<bool> lookup(const types::Hash& key);
  void remember(const types::Hash& key, bool verdict);

  /// Memoize `check()` under (domain, signer, message, signature).
  template <typename Check>
  bool memoized(Domain domain, crypto::PartyIndex signer, BytesView message,
                BytesView signature, Check&& check);

  /// Minimum misses per pool slice: below this the slicing overhead (and
  /// the lost batch-equation amortization) outweighs the parallelism.
  static constexpr size_t kMinSliceShares = 8;

  /// Run the provider's (possibly executor-sliced) batch equation over
  /// `pending`; one verdict per entry. Wall-clock only — callers account
  /// logical stats themselves.
  std::vector<uint8_t> run_share_batch(
      crypto::Scheme scheme, BytesView message,
      std::span<const std::pair<crypto::PartyIndex, Bytes>> pending);

  crypto::CryptoProvider* provider_;
  PipelineOptions options_;
  support::Executor* executor_ = nullptr;
  InternStore* intern_ = nullptr;
  obs::RuntimeProfiler* runtime_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;

  struct StatsCells {
    std::atomic<uint64_t> provider_verifications{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> primed{0};
    std::atomic<uint64_t> batch_calls{0};
    std::atomic<uint64_t> batch_fallbacks{0};
    std::atomic<uint64_t> combine_share_checks_skipped{0};
  };
  StatsCells stats_;

  /// One cache shard: a mutex plus a two-generation bounded map. Inserts
  /// fill current_; when it reaches half the shard's capacity share, it
  /// rotates into previous_ (whose entries remain visible until the next
  /// rotation evicts them). The shard index is the key's first hash byte,
  /// so SHA-256 spreads load uniformly.
  static constexpr size_t kCacheShards = 8;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<types::Hash, bool, types::HashHasher> current;
    std::unordered_map<types::Hash, bool, types::HashHasher> previous;
  };
  std::array<Shard, kCacheShards> shards_;

  /// Tiny capacities collapse to one shard so the global bound
  /// (cached_verdicts() <= cache_capacity) holds with the same slack the
  /// unsharded two-generation scheme had.
  size_t shard_count() const {
    return options_.cache_capacity >= 2 * kCacheShards ? kCacheShards : 1;
  }
  size_t rotate_threshold() const {
    return std::max<size_t>(1, options_.cache_capacity / (2 * shard_count()));
  }
  Shard& shard_for(const types::Hash& key) { return shards_[key[0] % shard_count()]; }
};

}  // namespace icc::pipeline
