// Centralized signature verification for the ingress pipeline.
//
// Every signature check of the consensus layer flows through a Verifier
// wrapping the crypto::CryptoProvider. The wrapper adds what the raw
// provider deliberately does not have:
//
//   * a bounded memoization cache keyed on H(domain ‖ signer ‖ message ‖
//     signature). In committee-based BFT the same artifact reaches a party
//     many times (echoes, share floods, combine-time re-checks), and
//     signature verification dominates CPU (Li–Sonnino–Jovanovic, PAPERS.md);
//     a cache hit replaces an Ed25519 verification with one SHA-256. Both
//     verdicts are cached, so a replayed *invalid* artifact is also free.
//     Keys cover the signature bytes, so equivocation (same message, a
//     different signature) can never be conflated with a cached verdict.
//   * sign-and-prime helpers: a party's own signatures are inserted into the
//     cache at creation time, making the self-delivery of its broadcasts and
//     the combine-time re-check of its own shares free.
//   * a batch API: k pending shares over one message are checked in a single
//     provider call (Ed25519 batch equation under kReal); if the batch
//     fails, a per-item pass identifies the bad shares.
//   * combine wrappers that pass only cache-validated shares to the
//     provider's *_preverified combine, eliminating the second full
//     verification of every share that the plain combine performs.
//
// The cache is per-party (each simulated party owns one Verifier), bounded
// by two-generation rotation: inserts go to the current generation, and when
// it fills, it becomes the previous generation and lookups still see it.
#pragma once

#include <unordered_map>

#include "crypto/provider.hpp"
#include "crypto/sha256.hpp"
#include "obs/obs.hpp"
#include "types/block.hpp"

namespace icc::pipeline {

/// Tuning knobs for the staged ingress pipeline (decode → dedup → verify →
/// apply). Lives here so crypto-layer consumers need not pull in the
/// pipeline itself.
struct PipelineOptions {
  bool dedup = true;            ///< drop exact-duplicate wire artifacts
  bool cache = true;            ///< memoize verification verdicts
  bool batch = true;            ///< batch-verify pending shares at combine
  size_t dedup_capacity = 8192;   ///< recent wire hashes remembered per party
  size_t cache_capacity = 16384;  ///< cached verdicts per party
};

class Verifier {
 public:
  struct Stats {
    uint64_t provider_verifications = 0;  ///< checks that reached real crypto
    uint64_t cache_hits = 0;              ///< checks answered from the cache
    uint64_t primed = 0;                  ///< verdicts inserted at sign time
    uint64_t batch_calls = 0;             ///< batch verifications issued
    uint64_t batch_fallbacks = 0;         ///< batches that failed per-item
    uint64_t combine_share_checks_skipped = 0;  ///< combine re-checks avoided

    Stats& operator+=(const Stats& o) {
      provider_verifications += o.provider_verifications;
      cache_hits += o.cache_hits;
      primed += o.primed;
      batch_calls += o.batch_calls;
      batch_fallbacks += o.batch_fallbacks;
      combine_share_checks_skipped += o.combine_share_checks_skipped;
      return *this;
    }
  };

  Verifier(crypto::CryptoProvider& provider, const PipelineOptions& options)
      : provider_(&provider), options_(options) {}

  crypto::CryptoProvider& provider() { return *provider_; }
  size_t n() const { return provider_->n(); }
  size_t t() const { return provider_->t(); }
  size_t quorum() const { return provider_->quorum(); }
  size_t beacon_threshold() const { return provider_->beacon_threshold(); }

  // --- memoized verification ---
  bool verify_auth(crypto::PartyIndex signer, BytesView message, BytesView signature);
  bool verify_threshold_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                              BytesView message, BytesView share);
  bool verify_threshold(crypto::Scheme scheme, BytesView message, BytesView aggregate);
  bool verify_beacon_share(crypto::PartyIndex signer, BytesView message, BytesView share);

  // --- sign-and-prime (our own artifacts never need re-verification) ---
  Bytes sign_auth(crypto::PartyIndex signer, BytesView message);
  Bytes threshold_sign_share(crypto::Scheme scheme, crypto::PartyIndex signer,
                             BytesView message);
  Bytes beacon_sign_share(crypto::PartyIndex signer, BytesView message);

  /// Verify k shares over one message. Returns one verdict per share. All
  /// cache misses go to the provider as a single batch; a failed batch falls
  /// back to per-item verification to identify the bad shares.
  std::vector<uint8_t> verify_shares_batch(
      crypto::Scheme scheme, BytesView message,
      std::span<const std::pair<crypto::PartyIndex, Bytes>> shares);

  // --- combine without the provider's second per-share verification ---
  Bytes threshold_combine(crypto::Scheme scheme, BytesView message,
                          std::span<const std::pair<crypto::PartyIndex, Bytes>> shares);
  Bytes beacon_combine(BytesView message,
                       std::span<const std::pair<crypto::PartyIndex, Bytes>> shares);

  const Stats& stats() const { return stats_; }
  size_t cached_verdicts() const { return current_.size() + previous_.size(); }

  /// Attach telemetry: a batch-size histogram recorded per batch call.
  void attach_obs(obs::Obs* obs);

 private:
  // Verdict-cache key domains (distinct per signature scheme/usage).
  enum class Domain : uint8_t {
    kAuth = 1,
    kNotaryShare = 2,
    kFinalShare = 3,
    kNotaryAgg = 4,
    kFinalAgg = 5,
    kBeaconShare = 6,
  };
  static Domain share_domain(crypto::Scheme s) {
    return s == crypto::Scheme::kNotary ? Domain::kNotaryShare : Domain::kFinalShare;
  }
  static Domain agg_domain(crypto::Scheme s) {
    return s == crypto::Scheme::kNotary ? Domain::kNotaryAgg : Domain::kFinalAgg;
  }

  static types::Hash cache_key(Domain domain, crypto::PartyIndex signer, BytesView message,
                               BytesView signature);

  /// Cache lookup; nullopt on miss (or cache disabled).
  std::optional<bool> lookup(const types::Hash& key);
  void remember(const types::Hash& key, bool verdict);

  /// Memoize `check()` under (domain, signer, message, signature).
  template <typename Check>
  bool memoized(Domain domain, crypto::PartyIndex signer, BytesView message,
                BytesView signature, Check&& check);

  crypto::CryptoProvider* provider_;
  PipelineOptions options_;
  Stats stats_;
  obs::Histogram* batch_size_hist_ = nullptr;

  // Two-generation bounded cache: inserts fill current_; when it reaches
  // half the capacity, it rotates into previous_ (whose entries remain
  // visible until the next rotation evicts them).
  std::unordered_map<types::Hash, bool, types::HashHasher> current_;
  std::unordered_map<types::Hash, bool, types::HashHasher> previous_;
};

}  // namespace icc::pipeline
