#include "rbc/rbc.hpp"

#include <algorithm>

namespace icc::rbc {

RbcLayer::RbcLayer(pipeline::Verifier& verifier, sim::PartyIndex self,
                   std::function<void(sim::Context&, const Bytes&)> deliver)
    : verifier_(&verifier),
      self_(self),
      n_(verifier.n()),
      k_(verifier.n() - 2 * verifier.t() > 0 ? verifier.n() - 2 * verifier.t() : 1),
      deliver_(std::move(deliver)) {}

types::RbcFragmentMsg RbcLayer::make_fragment(const Dispersal& d, uint32_t index,
                                              const codec::Fragment& frag,
                                              const codec::MerkleTree& tree) const {
  types::RbcFragmentMsg m;
  m.round = d.round;
  m.proposer = d.proposer;
  m.block_hash = d.block_hash;
  m.merkle_root = d.merkle_root;
  m.block_len = d.block_len;
  m.fragment_index = index;
  m.fragment = frag.data;
  m.merkle_proof = tree.prove(index).serialize();
  m.authenticator = d.authenticator;
  m.parent_notarization = d.parent_notarization;
  return m;
}

void RbcLayer::broadcast_block(sim::Context& ctx, const types::ProposalMsg& proposal) {
  const Bytes data = types::serialize_message(types::Message{proposal});
  const Hash block_hash = proposal.block.hash();

  codec::ReedSolomon rs(k_, n_);
  auto fragments = rs.encode(data);
  std::vector<Bytes> leaves;
  leaves.reserve(n_);
  for (const auto& f : fragments) leaves.push_back(f.data);
  codec::MerkleTree tree(leaves);

  Dispersal d;
  d.round = proposal.block.round;
  d.proposer = proposal.block.proposer;
  d.block_hash = block_hash;
  d.merkle_root = tree.root();
  d.block_len = static_cast<uint32_t>(data.size());
  d.authenticator = proposal.authenticator;
  d.parent_notarization = proposal.parent_notarization;

  journal_.rbc_phase(d.round, d.proposer, d.block_hash, "disperse", ctx.now());

  for (uint32_t i = 0; i < n_; ++i) {
    types::RbcFragmentMsg m = make_fragment(d, i, fragments[i], tree);
    if (i == self_) {
      // Handle our own fragment like a received one: registers the
      // dispersal and broadcasts the echo.
      on_fragment(ctx, m);
    } else {
      ctx.send(i, types::serialize_message(types::Message{m}));
    }
  }
}

void RbcLayer::on_fragment(sim::Context& ctx, const types::RbcFragmentMsg& msg) {
  if (msg.proposer >= n_ || msg.fragment_index >= n_ || msg.round < 1) return;

  // The authenticator binds (round, proposer, block_hash): fragments that
  // are not rooted in a real proposal by `proposer` are dropped here, so
  // third parties cannot fabricate dispersals in someone else's name. All n
  // fragments of a dispersal carry the same authenticator, so only the
  // first check per dispersal reaches real crypto.
  if (!verifier_->verify_auth(
          msg.proposer, types::authenticator_message(msg.round, msg.proposer, msg.block_hash),
          msg.authenticator)) {
    return;
  }

  // Fragment must be committed under the claimed Merkle root.
  auto proof = codec::MerkleProof::deserialize(msg.merkle_proof);
  if (!proof || proof->leaf_index != msg.fragment_index) return;
  if (!codec::MerkleTree::verify(msg.merkle_root, n_, msg.fragment, *proof)) return;

  auto key = std::make_pair(msg.block_hash, msg.merkle_root);
  Dispersal& d = dispersals_[key];
  if (d.done) return;
  if (d.fragments.empty()) {
    d.round = msg.round;
    d.proposer = msg.proposer;
    d.block_hash = msg.block_hash;
    d.merkle_root = msg.merkle_root;
    d.block_len = msg.block_len;
    d.authenticator = msg.authenticator;
    d.parent_notarization = msg.parent_notarization;
  } else if (d.round != msg.round || d.proposer != msg.proposer ||
             d.block_len != msg.block_len) {
    return;  // inconsistent metadata under the same commitment
  }
  if (!d.fragments.emplace(msg.fragment_index, msg).second) return;

  // Echo our own fragment to everyone the first time we see it.
  if (msg.fragment_index == self_ && !d.own_echoed) {
    d.own_echoed = true;
    journal_.rbc_phase(d.round, d.proposer, d.block_hash, "echo", ctx.now());
    ctx.broadcast(types::serialize_message(types::Message{msg}));
  }

  if (d.fragments.size() >= k_) try_reconstruct(ctx, d);
}

void RbcLayer::try_reconstruct(sim::Context& ctx, Dispersal& d) {
  std::vector<codec::Fragment> frags;
  frags.reserve(d.fragments.size());
  for (const auto& [idx, m] : d.fragments) frags.push_back({idx, m.fragment});

  codec::ReedSolomon rs(k_, n_);
  auto data = rs.decode(frags, d.block_len);
  if (!data) return;

  // Dispersal-consistency check: re-encode and verify the commitment. A
  // corrupt proposer whose fragments don't lie on one degree-(k-1)
  // polynomial is detected here, and — because the root pins all fragments —
  // detected identically by every honest party.
  auto reencoded = rs.encode(*data);
  std::vector<Bytes> leaves;
  leaves.reserve(n_);
  for (const auto& f : reencoded) leaves.push_back(f.data);
  codec::MerkleTree tree(leaves);
  if (!(tree.root() == d.merkle_root)) {
    d.done = true;  // provably malformed; ignore forever
    journal_.rbc_phase(d.round, d.proposer, d.block_hash, "reject", ctx.now());
    return;
  }

  // The payload must be the proposal it claims to be.
  auto parsed = types::parse_message(*data);
  if (!parsed || !std::holds_alternative<types::ProposalMsg>(*parsed)) {
    d.done = true;
    journal_.rbc_phase(d.round, d.proposer, d.block_hash, "reject", ctx.now());
    return;
  }
  const auto& proposal = std::get<types::ProposalMsg>(*parsed);
  if (proposal.block.round != d.round || proposal.block.proposer != d.proposer ||
      !(proposal.block.hash() == d.block_hash)) {
    d.done = true;
    journal_.rbc_phase(d.round, d.proposer, d.block_hash, "reject", ctx.now());
    return;
  }

  // Totality: if the proposer never sent us our fragment, derive it from the
  // re-encoding and echo it so lagging parties can reconstruct too.
  if (!d.own_echoed) {
    d.own_echoed = true;
    journal_.rbc_phase(d.round, d.proposer, d.block_hash, "echo", ctx.now());
    types::RbcFragmentMsg mine = make_fragment(d, self_, reencoded[self_], tree);
    ctx.broadcast(types::serialize_message(types::Message{mine}));
  }

  d.done = true;
  d.fragments.clear();  // free fragment memory; the proposal is delivered
  journal_.rbc_phase(d.round, d.proposer, d.block_hash, "reconstruct", ctx.now());
  deliver_(ctx, *data);
}

void RbcLayer::prune_below(Round round) {
  for (auto it = dispersals_.begin(); it != dispersals_.end();) {
    if (it->second.round < round) {
      it = dispersals_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace icc::rbc
