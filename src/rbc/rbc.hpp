// Erasure-coded reliable broadcast for Protocol ICC2.
//
// The paper replaces ICC1's gossip sub-layer with "a low-communication
// reliable broadcast subprotocol ... based on erasure codes" (introduced in
// [11] Cachin–Tessaro AVID; the paper's variant has better latency). Our
// implementation:
//
//   1. The proposer Reed–Solomon-encodes the serialized proposal into n
//      fragments with reconstruction threshold k = n - 2t, Merkle-commits to
//      the fragment vector, and sends fragment i (+ authentication path and
//      the proposer's S_auth authenticator) to party i.           [1 hop]
//   2. Party i verifies the Merkle path + authenticator and broadcasts its
//      own fragment to everyone.                                  [1 hop]
//   3. Any party holding k root-consistent fragments reconstructs, then
//      *re-encodes and recomputes the Merkle root*. A root mismatch proves
//      a malformed encoding by a corrupt proposer and the proposal is
//      rejected — identically by every honest party, since the root pins
//      every fragment (this is the dispersal-consistency check of AVID).
//      A party that reconstructs but never received its own fragment
//      derives it from the re-encoding and broadcasts it, giving totality:
//      once one honest party delivers, all n - t >= k eventually do.
//
// Per-party traffic per block of size S: receive <= n fragments of S/k, send
// one fragment to n parties = O(S) for k = Theta(n) — the paper's claim.
// Latency: proposer -> fragments -> echoes -> reconstruct = 2 network hops,
// one more than direct push, which is exactly why ICC2's reciprocal
// throughput is 3*delta and latency 4*delta instead of 2/3.
//
// Signature checks go through the party's pipeline::Verifier: all n
// fragments of one dispersal carry the SAME authenticator, so after the
// first fragment every further check is a cache hit.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>

#include "codec/merkle.hpp"
#include "codec/reed_solomon.hpp"
#include "obs/obs.hpp"
#include "pipeline/verifier.hpp"
#include "sim/network.hpp"
#include "types/messages.hpp"

namespace icc::rbc {

using types::Hash;
using types::Round;

class RbcLayer {
 public:
  /// `deliver` is invoked exactly once per reconstructed-and-verified
  /// proposal (the serialized ProposalMsg bytes).
  RbcLayer(pipeline::Verifier& verifier, sim::PartyIndex self,
           std::function<void(sim::Context&, const Bytes&)> deliver);

  /// Disperse a proposal we originate.
  void broadcast_block(sim::Context& ctx, const types::ProposalMsg& proposal);

  /// Handle an incoming fragment.
  void on_fragment(sim::Context& ctx, const types::RbcFragmentMsg& msg);

  /// Drop per-round state below `round`.
  void prune_below(Round round);

  /// Record RBC phase transitions (disperse/echo/reconstruct/reject/deliver)
  /// into the cluster flight recorder; no-op when journaling is off.
  void attach_obs(obs::Obs* obs) { journal_.attach(obs, self_); }

  size_t k() const { return k_; }

 private:
  struct Dispersal {
    Round round = 0;
    sim::PartyIndex proposer = 0;
    Hash block_hash{};
    Hash merkle_root{};
    uint32_t block_len = 0;
    Bytes authenticator;
    Bytes parent_notarization;
    std::map<uint32_t, types::RbcFragmentMsg> fragments;
    bool own_echoed = false;
    bool done = false;  // delivered or rejected
  };

  void try_reconstruct(sim::Context& ctx, Dispersal& d);
  types::RbcFragmentMsg make_fragment(const Dispersal& d, uint32_t index,
                                      const codec::Fragment& frag,
                                      const codec::MerkleTree& tree) const;

  pipeline::Verifier* verifier_;
  sim::PartyIndex self_;
  obs::JournalScribe journal_;
  size_t n_, k_;
  std::function<void(sim::Context&, const Bytes&)> deliver_;
  // Keyed by (block_hash, merkle_root) — a corrupt proposer may start
  // several dispersals; each is tracked independently and consensus
  // disqualifies the rank as usual.
  std::map<std::pair<Hash, Hash>, Dispersal> dispersals_;
};

}  // namespace icc::rbc
