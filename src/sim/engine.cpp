#include "sim/engine.hpp"

namespace icc::sim {

EventId Engine::schedule_at(Time at, EventFn fn) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  if (callbacks_.size() <= id) callbacks_.resize(id + 1);
  callbacks_[id] = std::move(fn);
  queue_.push(Event{at, id});
  return id;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      callbacks_[ev.id] = nullptr;
      continue;
    }
    now_ = ev.at;
    EventFn fn = std::move(callbacks_[ev.id]);
    callbacks_[ev.id] = nullptr;
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(Time deadline) {
  while (!queue_.empty()) {
    // Peek past cancelled events without running anything.
    Event ev = queue_.top();
    if (cancelled_.count(ev.id)) {
      queue_.pop();
      cancelled_.erase(ev.id);
      callbacks_[ev.id] = nullptr;
      continue;
    }
    if (ev.at > deadline) break;
    step();
  }
  if (now_ < deadline && deadline != kTimeMax) now_ = deadline;
}

}  // namespace icc::sim
