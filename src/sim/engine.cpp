#include "sim/engine.hpp"

namespace icc::sim {

EventId Engine::schedule_at(Time at, EventFn fn) {
  if (at < now_) at = now_;
  EventId id = next_id_++;
  callbacks_.emplace(id, std::move(fn));
  queue_.push(Event{at, id});
  return id;
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled: reap silently
    now_ = ev.at;
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(Time deadline) {
  while (!queue_.empty()) {
    // Peek past cancelled events without running anything.
    Event ev = queue_.top();
    if (!callbacks_.count(ev.id)) {
      queue_.pop();
      continue;
    }
    if (ev.at > deadline) break;
    step();
  }
  if (now_ < deadline && deadline != kTimeMax) now_ = deadline;
}

}  // namespace icc::sim
