#include "sim/engine.hpp"

#include <stdexcept>

#include "obs/runtime.hpp"

namespace icc::sim {

EventId Engine::schedule_at(Time at, EventFn fn, uint32_t owner) {
  if (at < now_) at = now_;
  EventId id;
  if (ExecSlot* slot = tl_slot()) {
    // Parallel mode: ids come from the execution's pre-assigned block, so
    // the value depends only on which event schedules (batch order) and on
    // its program order — never on thread interleaving.
    if (slot->next_local >= (uint32_t{1} << kIdBlockBits))
      throw std::logic_error("Engine: event scheduled too many events");
    id = slot->id_base + slot->next_local++;
  } else {
    id = next_id_++;
  }
  auto apply = [this, at, id, owner, fn = std::move(fn)]() mutable {
    callbacks_.emplace(id, Callback{std::move(fn), owner});
    queue_.push(Event{at, id});
  };
  if (support::DeferQueue* q = support::DeferQueue::current()) {
    q->push(std::move(apply));
  } else {
    apply();
  }
  return id;
}

void Engine::cancel(EventId id) {
  if (tl_slot() != nullptr && batch_index_ != nullptr) {
    // The target may be an unfired event of the batch being executed right
    // now (its callback already left callbacks_). Same-owner events run in
    // batch order on one thread, so the flag is set before the target's
    // turn exactly when the classic loop would have erased it in time.
    if (auto it = batch_index_->find(id); it != batch_index_->end()) {
      (*batch_)[it->second].skip.store(true, std::memory_order_release);
      return;
    }
  }
  if (support::DeferQueue::maybe_defer([this, id] { callbacks_.erase(id); })) return;
  callbacks_.erase(id);
}

bool Engine::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled: reap silently
    now_ = ev.at;
    EventFn fn = std::move(it->second.fn);
    callbacks_.erase(it);
    fn();
    return true;
  }
  return false;
}

void Engine::run_until(Time deadline) {
  if (executor_ != nullptr && executor_->threads() > 1) {
    run_until_parallel(deadline);
    return;
  }
  while (!queue_.empty()) {
    // Peek past cancelled events without running anything.
    Event ev = queue_.top();
    if (!callbacks_.count(ev.id)) {
      queue_.pop();
      continue;
    }
    if (ev.at > deadline) break;
    // A boundary at exactly ev.at closes before the event runs: events at
    // time B belong to the window starting at B.
    fire_ticks(ev.at);
    step();
  }
  if (deadline != kTimeMax) fire_ticks(deadline);
  if (now_ < deadline && deadline != kTimeMax) now_ = deadline;
}

void Engine::run_until_parallel(Time deadline) {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (!callbacks_.count(ev.id)) {
      queue_.pop();
      continue;
    }
    if (ev.at > deadline) break;
    // Between batches is a quiescent point: deferred effects of the previous
    // batch are already replayed, so the hook observes canonical state.
    fire_ticks(ev.at);
    run_batch(ev.at);
  }
  if (deadline != kTimeMax) fire_ticks(deadline);
  if (now_ < deadline && deadline != kTimeMax) now_ = deadline;
}

void Engine::exec_slot(ExecSlot& slot, bool defer) {
  ExecSlot*& tls = tl_slot();
  ExecSlot* prev = tls;
  tls = &slot;
  EventFn fn = std::move(slot.fn);
  if (defer) {
    support::DeferQueue::Scope scope(&slot.defers);
    fn();
  } else {
    fn();
  }
  tls = prev;
}

void Engine::run_batch(Time t) {
  now_ = t;
  const int64_t rb_t0 = runtime_ != nullptr ? obs::RuntimeProfiler::now_ns() : 0;

  // Extract every live event at t in (time, id) order — the exact firing
  // order of the classic loop — and give each execution its deterministic
  // id block, carved out of the monotonic counter in that same order.
  std::deque<ExecSlot> batch;
  std::unordered_map<EventId, size_t> index;
  while (!queue_.empty() && queue_.top().at == t) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;
    batch.emplace_back();
    ExecSlot& slot = batch.back();
    slot.id = ev.id;
    slot.owner = it->second.owner;
    slot.fn = std::move(it->second.fn);
    callbacks_.erase(it);
    index.emplace(ev.id, batch.size() - 1);
  }
  const uint64_t epoch = next_id_;
  for (size_t k = 0; k < batch.size(); ++k)
    batch[k].id_base = epoch + ((static_cast<uint64_t>(k) + 1) << kIdBlockBits);
  next_id_ = epoch + ((static_cast<uint64_t>(batch.size()) + 1) << kIdBlockBits);

  batch_ = &batch;
  batch_index_ = &index;

  size_t i = 0;
  while (i < batch.size()) {
    if (batch[i].owner == kNoOwner) {
      // Barrier: ownerless events may touch anything; run solo, effects
      // apply inline (this is the canonical point in the replay order).
      if (!batch[i].skip.load(std::memory_order_acquire)) exec_slot(batch[i], false);
      ++i;
      continue;
    }
    // Maximal run of owned events: group by owner (batch order preserved
    // within each group), step the groups concurrently, then replay every
    // deferred side effect in batch order — the sequential order.
    size_t j = i;
    while (j < batch.size() && batch[j].owner != kNoOwner) ++j;
    std::vector<std::vector<size_t>> groups;
    std::unordered_map<uint32_t, size_t> owner_group;
    for (size_t k = i; k < j; ++k) {
      auto [it, inserted] = owner_group.emplace(batch[k].owner, groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(k);
    }
    {
      obs::SpanScope region(runtime_, obs::TaskKind::kParallelRegion, groups.size());
      executor_->parallel_for(groups.size(), [&](size_t g) {
        obs::SpanScope span(runtime_, obs::TaskKind::kPartyGroup,
                            batch[groups[g][0]].owner, groups[g].size());
        for (size_t k : groups[g]) {
          if (batch[k].skip.load(std::memory_order_acquire)) continue;
          exec_slot(batch[k], true);
        }
      });
    }
    uint64_t replayed = 0;
    obs::SpanScope replay_span(runtime_, obs::TaskKind::kDeferReplay);
    for (size_t k = i; k < j; ++k) {
      // Replay with the event's slot reinstalled (but no defer queue), so a
      // deferred closure that itself schedules — a harness commit callback,
      // say — draws ids from the same block it would have used inline.
      if (runtime_ != nullptr) {
        replayed += batch[k].defers.size();
        runtime_->defer_depth(batch[k].defers.size());
      }
      ExecSlot*& tls = tl_slot();
      tls = &batch[k];
      batch[k].defers.replay();
      tls = nullptr;
    }
    replay_span.set_arg0(replayed);
    i = j;
  }

  batch_ = nullptr;
  batch_index_ = nullptr;
  if (runtime_ != nullptr) {
    runtime_->record_span(obs::TaskKind::kEngineBatch, rb_t0,
                          obs::RuntimeProfiler::now_ns(), batch_seq_, batch.size());
  }
  batch_seq_++;
}

}  // namespace icc::sim
