// Deterministic discrete-event engine.
//
// A single-threaded event loop over a priority queue of (time, sequence,
// callback). Ties in time are broken by insertion order, which makes every
// run with the same seed and inputs bit-identical — the foundation for the
// reproducibility of every experiment in EXPERIMENTS.md.
//
// Memory stays proportional to the number of PENDING events: callbacks live
// in a map keyed by id and are erased when an event fires or is cancelled,
// and a cancelled id simply vanishes from the map (the queue entry is
// skipped when popped). Long simulations that schedule and cancel millions
// of timers therefore run in bounded space (see engine_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "sim/time.hpp"

namespace icc::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class Engine {
 public:
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(Time at, EventFn fn);

  /// Schedule `fn` after a relative delay.
  EventId schedule_after(Duration delay, EventFn fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timers race with the events that obsolete them).
  void cancel(EventId id) { callbacks_.erase(id); }

  /// Run a single event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  /// Events scheduled at exactly `deadline` still run.
  void run_until(Time deadline);

  /// Run until the queue drains.
  void run() { run_until(kTimeMax); }

  /// Number of queued events (cancelled-but-not-yet-reaped entries included).
  size_t pending() const { return queue_.size(); }

  /// Number of events that still hold a callback (pending minus cancelled).
  /// This is what bounds memory; tests assert it stays proportional to the
  /// genuinely outstanding work.
  size_t live_callbacks() const { return callbacks_.size(); }

 private:
  struct Event {
    Time at;
    EventId id;
    // Ordering for std::priority_queue (max-heap): invert.
    bool operator<(const Event& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event> queue_;
  // id -> callback for pending events; an id absent here but still in the
  // queue is a cancelled event awaiting reap.
  std::unordered_map<EventId, EventFn> callbacks_;
};

}  // namespace icc::sim
