// Deterministic discrete-event engine, optionally multi-core.
//
// The classic mode is a single-threaded event loop over a priority queue of
// (time, id, callback). Ties in time are broken by insertion order, which
// makes every run with the same seed and inputs bit-identical — the
// foundation for the reproducibility of every experiment in EXPERIMENTS.md.
//
// With an attached support::Executor (set_executor), run_until() switches to
// a batch-parallel mode that preserves that bit-identical guarantee at any
// thread count (DESIGN.md §6 "Threading model"):
//
//   * All live events at the minimum queued time form a *batch*, ordered by
//     id — exactly the order the classic loop would fire them in.
//   * Each event carries an owner party (deliveries → recipient, timers →
//     the party that set them). Maximal runs of owned events are grouped by
//     owner and the groups run concurrently on the pool; events inside one
//     group run in batch order on one thread, so a party always observes its
//     own program order. Ownerless events are barriers and run solo.
//   * Side effects on shared state are not applied in place: schedules and
//     cancels are captured per event execution (support/defer.hpp) and
//     replayed on the coordinating thread in batch order after the group
//     join. Instrumented subsystems (journal, tracer, harness callbacks)
//     defer through the same queue, so the global mutation order is the
//     classic sequential order, reproduced exactly.
//   * Event ids assigned during parallel execution come from per-execution
//     id blocks carved out of the monotonic counter in batch order, so an
//     id — and therefore the (time, id) tie-break of everything scheduled —
//     never depends on wall-clock interleaving.
//
// Memory stays proportional to the number of PENDING events: callbacks live
// in a map keyed by id and are erased when an event fires or is cancelled,
// and a cancelled id simply vanishes from the map (the queue entry is
// skipped when popped). Long simulations that schedule and cancel millions
// of timers therefore run in bounded space (see engine_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"
#include "support/defer.hpp"
#include "support/executor.hpp"

namespace icc::obs {
class RuntimeProfiler;
}

namespace icc::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

/// Periodic virtual-time boundary hook (set_tick); receives the boundary
/// timestamp k*interval being crossed.
using TickFn = std::function<void(Time boundary)>;

class Engine {
 public:
  /// Owner tag for events tied to no party: such events are barriers in
  /// parallel mode (they run alone, never concurrently with anything).
  static constexpr uint32_t kNoOwner = UINT32_MAX;

  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now()).
  /// Returns an id usable with cancel(). `owner` is the party whose state
  /// the callback touches; kNoOwner forces a barrier in parallel mode.
  EventId schedule_at(Time at, EventFn fn, uint32_t owner = kNoOwner);

  /// Schedule `fn` after a relative delay.
  EventId schedule_after(Duration delay, EventFn fn, uint32_t owner = kNoOwner) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn), owner);
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timers race with the events that obsolete them).
  void cancel(EventId id);

  /// Attach a worker pool; run_until() then steps same-time events of
  /// distinct owners concurrently. Null (or a 1-thread executor) restores
  /// the classic sequential loop. The engine does not own the executor.
  void set_executor(support::Executor* executor) { executor_ = executor; }
  support::Executor* executor() const { return executor_; }

  /// Install a periodic virtual-time hook: `fn(k*interval)` fires once for
  /// every boundary k*interval (k = 1, 2, ...) that a run crosses, on the
  /// coordinating thread, at a quiescent point — after every event strictly
  /// before the boundary has run (and its deferred effects replayed) and
  /// before any event at or after it. The hook never injects events, so id
  /// assignment, tie-breaking and the journal byte stream are unchanged
  /// whether a tick is installed or not; the firing sequence is a pure
  /// function of virtual time, hence identical at any thread count. Interval
  /// <= 0 (or a null fn) uninstalls. Boundaries the engine has already moved
  /// past are not retro-fired.
  void set_tick(Duration interval, TickFn fn) {
    if (interval <= 0 || !fn) {
      tick_interval_ = 0;
      tick_fn_ = nullptr;
      return;
    }
    tick_interval_ = interval;
    tick_fn_ = std::move(fn);
    next_tick_ = (now_ / interval + 1) * interval;
  }

  /// Attach the wall-clock profiler (obs/runtime.hpp); null detaches. Spans
  /// record batch/region/group/replay wall time — observation only, never
  /// simulation state, so virtual-time outcomes are unchanged (the probe
  /// discipline of obs.hpp). Not owned.
  void set_runtime(obs::RuntimeProfiler* runtime) { runtime_ = runtime; }

  /// Run a single event (classic sequential path). Returns false when the
  /// queue is empty.
  bool step();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  /// Events scheduled at exactly `deadline` still run.
  void run_until(Time deadline);

  /// Run until the queue drains.
  void run() { run_until(kTimeMax); }

  /// Number of queued events (cancelled-but-not-yet-reaped entries included).
  size_t pending() const { return queue_.size(); }

  /// Number of events that still hold a callback (pending minus cancelled).
  /// This is what bounds memory; tests assert it stays proportional to the
  /// genuinely outstanding work.
  size_t live_callbacks() const { return callbacks_.size(); }

 private:
  struct Callback {
    EventFn fn;
    uint32_t owner = kNoOwner;
  };

  struct Event {
    Time at;
    EventId id;
    // Ordering for std::priority_queue (max-heap): invert.
    bool operator<(const Event& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  /// One extracted event execution in a parallel batch. Holds the deferred
  /// side effects and the deterministic id block for events it schedules.
  /// Lives in a deque: the skip flag is an atomic (set by same-owner
  /// cancels), which makes the slot immovable.
  struct ExecSlot {
    EventFn fn;
    EventId id = 0;
    uint32_t owner = kNoOwner;
    std::atomic<bool> skip{false};
    support::DeferQueue defers;
    uint64_t id_base = 0;      ///< first id this execution may assign
    uint32_t next_local = 0;   ///< ids handed out so far (< kIdBlock)
  };

  /// Ids assignable by one event execution: id_base + [0, kIdBlock).
  static constexpr uint32_t kIdBlockBits = 24;

  /// The slot of the event execution running on this thread (parallel mode
  /// only); drives deterministic id assignment and same-batch cancels.
  static ExecSlot*& tl_slot() {
    thread_local ExecSlot* slot = nullptr;
    return slot;
  }

  /// Fire every installed tick boundary <= `upto` that has not fired yet.
  /// Called from the run loops only (coordinating thread, between events).
  void fire_ticks(Time upto) {
    if (tick_interval_ <= 0) return;
    while (next_tick_ <= upto) {
      const Time b = next_tick_;
      next_tick_ += tick_interval_;
      tick_fn_(b);
    }
  }

  void run_until_parallel(Time deadline);
  /// Execute every live event at time `t` (they are already the queue
  /// minimum) in owner-parallel segments, then replay deferred effects.
  void run_batch(Time t);
  /// Run one extracted event with its slot installed. `defer` selects
  /// whether shared-state effects queue up (group execution on the pool) or
  /// apply inline (solo barrier events on the coordinating thread).
  void exec_slot(ExecSlot& slot, bool defer);

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event> queue_;
  // id -> callback for pending events; an id absent here but still in the
  // queue is a cancelled event awaiting reap.
  std::unordered_map<EventId, Callback> callbacks_;
  support::Executor* executor_ = nullptr;
  obs::RuntimeProfiler* runtime_ = nullptr;
  Duration tick_interval_ = 0;  ///< 0 = no tick installed
  Time next_tick_ = 0;          ///< next unfired boundary (k * tick_interval_)
  TickFn tick_fn_;
  uint64_t batch_seq_ = 0;  ///< run_batch invocations (profiler span arg)

  // Valid only while run_batch executes a segment: lets cancel() reach
  // not-yet-run events of the current batch (read-only map; the atomic skip
  // flags carry the cross-thread signal).
  std::deque<ExecSlot>* batch_ = nullptr;
  const std::unordered_map<EventId, size_t>* batch_index_ = nullptr;
};

}  // namespace icc::sim
