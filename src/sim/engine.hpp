// Deterministic discrete-event engine.
//
// A single-threaded event loop over a priority queue of (time, sequence,
// callback). Ties in time are broken by insertion order, which makes every
// run with the same seed and inputs bit-identical — the foundation for the
// reproducibility of every experiment in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace icc::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class Engine {
 public:
  Time now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now()).
  /// Returns an id usable with cancel().
  EventId schedule_at(Time at, EventFn fn);

  /// Schedule `fn` after a relative delay.
  EventId schedule_after(Duration delay, EventFn fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// no-op (timers race with the events that obsolete them).
  void cancel(EventId id) { cancelled_.insert(id); }

  /// Run a single event. Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or virtual time would exceed `deadline`.
  /// Events scheduled at exactly `deadline` still run.
  void run_until(Time deadline);

  /// Run until the queue drains.
  void run() { run_until(kTimeMax); }

  /// Number of queued events (cancelled-but-not-yet-reaped events included).
  size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    Time at;
    EventId id;
    // Ordering for std::priority_queue (max-heap): invert.
    bool operator<(const Event& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event> queue_;
  std::vector<EventFn> callbacks_;  // indexed by id (grow-only)
  std::unordered_set<EventId> cancelled_;
};

}  // namespace icc::sim
