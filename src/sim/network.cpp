#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace icc::sim {

// ---------------------------------------------------------------------------
// Delay models
// ---------------------------------------------------------------------------

UniformDelay::UniformDelay(Duration min, Duration max, double bandwidth_bytes_per_us)
    : min_(min), max_(max), bandwidth_(bandwidth_bytes_per_us) {
  if (min < 0 || max < min) throw std::invalid_argument("UniformDelay: bad range");
}

Duration UniformDelay::delay(PartyIndex, PartyIndex, Time, size_t bytes, Xoshiro256& rng) {
  Duration base = min_ + static_cast<Duration>(rng.below(static_cast<uint64_t>(max_ - min_) + 1));
  return base + static_cast<Duration>(static_cast<double>(bytes) / bandwidth_);
}

WanDelay::WanDelay(const Config& config) : config_(config) {
  Xoshiro256 rng(config.seed);
  base_.assign(config.n, std::vector<Duration>(config.n, 0));
  for (size_t i = 0; i < config.n; ++i) {
    for (size_t j = i + 1; j < config.n; ++j) {
      Duration d = config.min_base +
                   static_cast<Duration>(rng.below(
                       static_cast<uint64_t>(config.max_base - config.min_base) + 1));
      base_[i][j] = base_[j][i] = d;
    }
  }
}

Duration WanDelay::delay(PartyIndex from, PartyIndex to, Time, size_t bytes,
                         Xoshiro256& rng) {
  Duration d = base_[from][to];
  if (config_.jitter > 0)
    d += static_cast<Duration>(rng.below(static_cast<uint64_t>(config_.jitter) + 1));
  d += static_cast<Duration>(static_cast<double>(bytes) / config_.bandwidth_bytes_per_us);
  // Loss -> transport retransmission after one RTT.
  while (rng.unit() < config_.loss_probability) d += 2 * base_[from][to] + msec(10);
  return d;
}

Duration WanDelay::max_base() const {
  Duration m = 0;
  for (const auto& row : base_)
    for (Duration d : row) m = std::max(m, d);
  return m;
}

// ---------------------------------------------------------------------------
// SynchronySchedule
// ---------------------------------------------------------------------------

void SynchronySchedule::add_async_window(Time start, Time end) {
  if (end <= start) throw std::invalid_argument("async window: end <= start");
  windows_.emplace_back(start, end);
}

Time SynchronySchedule::release_time(Time sent) const {
  Time release = sent;
  // Windows may chain (message released into a later window gets held again).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : windows_) {
      if (release >= a && release < b) {
        release = b;
        changed = true;
      }
    }
  }
  return release;
}

bool SynchronySchedule::is_async_at(Time t) const {
  for (const auto& [a, b] : windows_)
    if (t >= a && t < b) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

Time Context::now() const { return net_->engine().now(); }
size_t Context::n() const { return net_->n(); }
void Context::broadcast(Bytes payload) { net_->broadcast(self_, std::move(payload)); }
void Context::broadcast(std::shared_ptr<const Bytes> payload) {
  net_->broadcast(self_, std::move(payload));
}
void Context::send(PartyIndex to, Bytes payload) { net_->send(self_, to, std::move(payload)); }
void Context::send(PartyIndex to, std::shared_ptr<const Bytes> payload) {
  net_->send(self_, to, std::move(payload));
}

EventId Context::set_timer(Duration delay, std::function<void()> fn) {
  // Timers touch only the arming party's state: tag them with its index so
  // parallel mode may step them concurrently with other parties' events.
  return net_->engine().schedule_after(delay, std::move(fn), self_);
}

void Context::cancel_timer(EventId id) { net_->engine().cancel(id); }

Xoshiro256& Context::rng() { return net_->rng(self_); }

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

void NetworkMetrics::reset() {
  std::fill(messages_sent.begin(), messages_sent.end(), 0);
  std::fill(bytes_sent.begin(), bytes_sent.end(), 0);
  total_messages.store(0, std::memory_order_relaxed);
  total_bytes.store(0, std::memory_order_relaxed);
}

uint64_t NetworkMetrics::max_bytes_sent() const {
  uint64_t m = 0;
  for (uint64_t b : bytes_sent) m = std::max(m, b);
  return m;
}

Network::Network(Engine& engine, size_t n, std::unique_ptr<DelayModel> model, uint64_t seed)
    : engine_(&engine), model_(std::move(model)) {
  processes_.resize(n);
  Xoshiro256 root(seed);
  Xoshiro256 net_root(seed ^ 0x5eedf00dULL);
  contexts_.reserve(n);
  rngs_.reserve(n);
  net_rngs_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    contexts_.emplace_back(*this, static_cast<PartyIndex>(i));
    rngs_.push_back(root.fork(i));
    net_rngs_.push_back(net_root.fork(i));
  }
  metrics_.messages_sent.assign(n, 0);
  metrics_.bytes_sent.assign(n, 0);
}

void Network::set_process(PartyIndex i, std::unique_ptr<Process> p) {
  processes_.at(i) = std::move(p);
}

void Network::start_all() {
  for (size_t i = 0; i < processes_.size(); ++i) {
    if (!processes_[i]) throw std::logic_error("Network: process not set");
    processes_[i]->start(contexts_[i]);
  }
}

void Network::deliver(PartyIndex from, PartyIndex to,
                      const std::shared_ptr<const Bytes>& payload) {
  const Time now = engine_->now();
  const size_t wire = payload->size() + frame_overhead_;
  metrics_.messages_sent[from]++;
  metrics_.bytes_sent[from] += wire;
  metrics_.total_messages.fetch_add(1, std::memory_order_relaxed);
  metrics_.total_bytes.fetch_add(wire, std::memory_order_relaxed);

  Duration d = model_->delay(from, to, now, wire, net_rngs_[from]);
  Time arrive = std::max(now + d, synchrony_.release_time(now));
  probe_.on_send(from, wire, arrive - now);
  // Causal edge: the id is computed once at send time and replayed at
  // delivery, so the journal's send/recv pair agrees byte-for-byte. The
  // recv is recorded *before* the process runs — consuming protocol events
  // follow their gating recv in journal order, which is what the offline
  // critical-path walk (obs/causal.hpp) relies on. Self-deliveries never
  // reach deliver(), so no zero-length edges are recorded.
  const bool causal = causal_.on();
  obs::CausalEdge edge;
  if (causal) edge = causal_.on_send(from, to, payload, now);
  // The delivery runs the *recipient's* code: tag it with `to` so parallel
  // mode can step deliveries to distinct parties concurrently.
  engine_->schedule_at(
      arrive,
      [this, from, to, payload, causal, edge] {
        probe_.on_deliver();
        if (causal) causal_.on_recv(from, to, edge, engine_->now());
        processes_[to]->receive_shared(contexts_[to], from, payload);
      },
      to);
}

void Network::broadcast(PartyIndex from, std::shared_ptr<const Bytes> payload) {
  auto shared = std::move(payload);
  // Self-delivery: immediate, free (own pool).
  engine_->schedule_after(
      0,
      [this, from, shared] { processes_[from]->receive_shared(contexts_[from], from, shared); },
      from);
  for (PartyIndex to = 0; to < processes_.size(); ++to) {
    if (to == from) continue;
    deliver(from, to, shared);
  }
}

void Network::send(PartyIndex from, PartyIndex to, std::shared_ptr<const Bytes> payload) {
  auto shared = std::move(payload);
  if (to == from) {
    engine_->schedule_after(
        0,
        [this, from, shared] { processes_[from]->receive_shared(contexts_[from], from, shared); },
        from);
    return;
  }
  deliver(from, to, shared);
}

}  // namespace icc::sim
