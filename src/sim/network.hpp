// Simulated networks: delay models, partial synchrony, adversarial control.
//
// The paper's model (Section 1/3.1): the only communication primitive is an
// unauthenticated broadcast ("send the same message to all parties"), message
// scheduling is adversary-controlled, and every message between honest
// parties is eventually delivered. Liveness additionally needs
// delta-synchrony over short windows (Section 4, Definition). This module
// provides:
//   * DelayModel        — pluggable per-link latency (uniform, WAN matrix);
//   * Synchronyschedule — async windows during which delivery stalls until
//                         the window closes (the adversary "holds" traffic);
//   * Network           — delivery, per-party byte/message accounting, and
//                         per-recipient sends so *corrupt* parties can
//                         equivocate (honest code only ever broadcasts).
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "obs/causal.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "support/bytes.hpp"
#include "support/rng.hpp"

namespace icc::sim {

using PartyIndex = uint32_t;

// ---------------------------------------------------------------------------
// Delay models
// ---------------------------------------------------------------------------

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// One-way delivery delay for `bytes` from `from` to `to` at time `now`.
  virtual Duration delay(PartyIndex from, PartyIndex to, Time now, size_t bytes,
                         Xoshiro256& rng) = 0;
};

/// Uniform random delay in [min, max], plus transmission time bytes/bandwidth.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Duration min, Duration max, double bandwidth_bytes_per_us = 125.0);
  Duration delay(PartyIndex from, PartyIndex to, Time now, size_t bytes,
                 Xoshiro256& rng) override;

 private:
  Duration min_, max_;
  double bandwidth_;
};

/// WAN model: a fixed per-pair base latency matrix sampled once (uniform in
/// [min_base, max_base], symmetric), small per-message jitter, loss modeled
/// as a retransmission delay (paper Section 5: ping RTT 6-110 ms, loss
/// < 0.001 — lost packets are retransmitted by the transport, so they arrive
/// late rather than never, preserving eventual delivery).
class WanDelay final : public DelayModel {
 public:
  struct Config {
    size_t n = 4;
    Duration min_base = msec(3);   ///< one-way, = RTT 6 ms / 2
    Duration max_base = msec(55);  ///< one-way, = RTT 110 ms / 2
    Duration jitter = msec(1);
    double loss_probability = 0.0005;
    double bandwidth_bytes_per_us = 125.0;  ///< 1 Gbit/s
    uint64_t seed = 1;
  };

  explicit WanDelay(const Config& config);
  Duration delay(PartyIndex from, PartyIndex to, Time now, size_t bytes,
                 Xoshiro256& rng) override;

  Duration base(PartyIndex from, PartyIndex to) const { return base_[from][to]; }
  Duration max_base() const;

 private:
  Config config_;
  std::vector<std::vector<Duration>> base_;
};

/// Fixed delay for every link (handy for analytic latency experiments where
/// the paper's 2-delta / 3-delta claims should reproduce exactly).
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Duration d) : d_(d) {}
  Duration delay(PartyIndex, PartyIndex, Time, size_t, Xoshiro256&) override { return d_; }

 private:
  Duration d_;
};

/// Egress-bandwidth queueing on top of an inner model: every sender owns an
/// uplink of `bytes_per_us` through which its transmissions serialize FIFO
/// (a broadcast of a large block is n-1 *sequential* uploads). This is the
/// physical mechanism behind the leader bottleneck that Mir-BFT [35]
/// measured and that ICC1/ICC2 are designed to avoid: with queueing, the
/// bottleneck shows up as *latency*, not just as a byte counter.
class QueuedDelay final : public DelayModel {
 public:
  QueuedDelay(std::unique_ptr<DelayModel> inner, size_t n, double bytes_per_us)
      : inner_(std::move(inner)), free_at_(n, 0), bandwidth_(bytes_per_us) {}

  Duration delay(PartyIndex from, PartyIndex to, Time now, size_t bytes,
                 Xoshiro256& rng) override {
    const auto tx = static_cast<Duration>(static_cast<double>(bytes) / bandwidth_);
    Time start = std::max(now, free_at_[from]);
    free_at_[from] = start + tx;
    // Propagation (inner model) begins once the upload finishes.
    return (start - now) + tx + inner_->delay(from, to, now, bytes, rng);
  }

 private:
  std::unique_ptr<DelayModel> inner_;
  std::vector<Time> free_at_;
  double bandwidth_;
};

// ---------------------------------------------------------------------------
// Partial synchrony
// ---------------------------------------------------------------------------

/// Time windows during which the adversary stalls all traffic: a message
/// sent at time s inside a window [a, b) is delivered no earlier than b
/// (plus its normal delay). Messages are never dropped — matching the
/// paper's eventual-delivery assumption.
class SynchronySchedule {
 public:
  void add_async_window(Time start, Time end);

  /// Earliest permissible delivery time for a message sent at `sent`.
  Time release_time(Time sent) const;

  bool is_async_at(Time t) const;

 private:
  std::vector<std::pair<Time, Time>> windows_;
};

// ---------------------------------------------------------------------------
// Processes
// ---------------------------------------------------------------------------

class Network;

/// Per-party capability handle. Honest protocol code uses broadcast() and
/// timers only; send() exists for gossip/RBC point-to-point traffic and for
/// Byzantine equivocation.
class Context {
 public:
  Context(Network& net, PartyIndex self) : net_(&net), self_(self) {}

  Time now() const;
  PartyIndex self() const { return self_; }
  size_t n() const;

  /// Send `payload` to every party. Self-delivery is immediate and free
  /// (a party always has its own messages in its pool).
  void broadcast(Bytes payload);
  /// Shared-buffer broadcast: re-sends an already-materialized wire buffer
  /// (gossip push/serve) without copying it per recipient.
  void broadcast(std::shared_ptr<const Bytes> payload);

  /// Point-to-point send (also delivers to self immediately if to == self).
  void send(PartyIndex to, Bytes payload);
  void send(PartyIndex to, std::shared_ptr<const Bytes> payload);

  /// One-shot timer.
  EventId set_timer(Duration delay, std::function<void()> fn);
  void cancel_timer(EventId id);

  Xoshiro256& rng();

 private:
  Network* net_;
  PartyIndex self_;
};

/// A simulated party. The harness wires one Process per index; Byzantine
/// behaviours are just alternative Process implementations.
class Process {
 public:
  virtual ~Process() = default;
  virtual void start(Context& ctx) = 0;
  virtual void receive(Context& ctx, PartyIndex from, BytesView payload) = 0;

  /// Shared-buffer delivery: the network hands every receiver the *same*
  /// immutable wire buffer (one allocation per broadcast, and the key the
  /// artifact intern store of DESIGN.md §7 is built on). The default
  /// forwards to receive(), so simple processes (tests, Byzantine
  /// behaviours) only implement the view-based hook.
  virtual void receive_shared(Context& ctx, PartyIndex from,
                              const std::shared_ptr<const Bytes>& payload) {
    receive(ctx, from, *payload);
  }
};

// ---------------------------------------------------------------------------
// Network + metrics
// ---------------------------------------------------------------------------

struct NetworkMetrics {
  std::vector<uint64_t> messages_sent;  ///< per party (wire messages, excl. self)
  std::vector<uint64_t> bytes_sent;     ///< per party
  // Cross-party totals are relaxed atomics: parallel mode (DESIGN.md §6)
  // steps distinct senders concurrently, and increments commute — the final
  // values are identical at any thread count. The per-party vectors stay
  // plain words because each sender only writes its own slot.
  std::atomic<uint64_t> total_messages{0};
  std::atomic<uint64_t> total_bytes{0};

  NetworkMetrics() = default;
  /// Copy = relaxed snapshot (atomics are not copyable); callers that copy
  /// do so at quiescent points, where relaxed loads see the final values.
  NetworkMetrics(const NetworkMetrics& o)
      : messages_sent(o.messages_sent),
        bytes_sent(o.bytes_sent),
        total_messages(o.total_messages.load(std::memory_order_relaxed)),
        total_bytes(o.total_bytes.load(std::memory_order_relaxed)) {}
  NetworkMetrics& operator=(const NetworkMetrics&) = delete;

  void reset();
  uint64_t max_bytes_sent() const;  ///< the "bottleneck" measure of [35]
};

class Network {
 public:
  Network(Engine& engine, size_t n, std::unique_ptr<DelayModel> model, uint64_t seed);

  void set_process(PartyIndex i, std::unique_ptr<Process> p);
  Process& process(PartyIndex i) { return *processes_[i]; }

  /// Calls start() on every process (at current virtual time).
  void start_all();

  void broadcast(PartyIndex from, Bytes payload) {
    broadcast(from, std::make_shared<const Bytes>(std::move(payload)));
  }
  void broadcast(PartyIndex from, std::shared_ptr<const Bytes> payload);
  void send(PartyIndex from, PartyIndex to, Bytes payload) {
    send(from, to, std::make_shared<const Bytes>(std::move(payload)));
  }
  void send(PartyIndex from, PartyIndex to, std::shared_ptr<const Bytes> payload);

  SynchronySchedule& synchrony() { return synchrony_; }

  Engine& engine() { return *engine_; }
  size_t n() const { return processes_.size(); }
  NetworkMetrics& metrics() { return metrics_; }
  Xoshiro256& rng(PartyIndex i) { return rngs_[i]; }

  /// Per-message overhead added to every wire message (transport framing,
  /// TLS record overhead, ...). Default 64 bytes.
  void set_frame_overhead(size_t bytes) { frame_overhead_ = bytes; }

  /// Attach telemetry (message/byte counters, in-flight gauge, delay
  /// histogram) and — when the journal's causal layer is on — the send/recv
  /// edge recorder. Null detaches.
  void attach_obs(obs::Obs* obs) {
    probe_.attach(obs, processes_.size());
    causal_.attach(obs, processes_.size());
  }

  /// Materialize the causal scribe's buffered send/recv records into the
  /// journal. The harness calls this before any journal read; idempotent.
  void flush_causal() { causal_.flush(); }

 private:
  void deliver(PartyIndex from, PartyIndex to, const std::shared_ptr<const Bytes>& payload);

  Engine* engine_;
  std::unique_ptr<DelayModel> model_;
  SynchronySchedule synchrony_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Context> contexts_;
  std::vector<Xoshiro256> rngs_;
  NetworkMetrics metrics_;
  // One delay-model rng per *sender*: a sender's delay draws then form a
  // deterministic stream in its own program order, independent of how other
  // parties' sends interleave — required for bit-identical runs when
  // parallel mode steps senders concurrently. (A single shared rng would
  // make the draw sequence depend on wall-clock interleaving.)
  std::vector<Xoshiro256> net_rngs_;
  size_t frame_overhead_ = 64;
  obs::NetProbe probe_;
  obs::CausalScribe causal_;
};

}  // namespace icc::sim
