// Convenience wrapper owning an Engine + Network pair.
#pragma once

#include <memory>

#include "sim/network.hpp"

namespace icc::sim {

class Simulation {
 public:
  Simulation(size_t n, std::unique_ptr<DelayModel> model, uint64_t seed)
      : engine_(std::make_unique<Engine>()),
        network_(std::make_unique<Network>(*engine_, n, std::move(model), seed)) {}

  Engine& engine() { return *engine_; }
  Network& network() { return *network_; }

  void start() { network_->start_all(); }
  void run_until(Time deadline) { engine_->run_until(deadline); }

 private:
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Network> network_;
};

}  // namespace icc::sim
