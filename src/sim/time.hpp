// Simulated time.
//
// Virtual time is an integer count of microseconds. Integers (not doubles)
// keep event ordering exact and runs bit-reproducible across platforms —
// a hard requirement for deterministic replay of adversarial schedules.
#pragma once

#include <cstdint>

namespace icc::sim {

/// Microseconds since simulation start.
using Time = int64_t;
/// Microsecond interval.
using Duration = int64_t;

constexpr Duration usec(int64_t v) { return v; }
constexpr Duration msec(int64_t v) { return v * 1000; }
constexpr Duration seconds(int64_t v) { return v * 1000000; }

constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1000.0; }
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1e6; }

constexpr Time kTimeMax = INT64_MAX;

}  // namespace icc::sim
