#include "smr/smr.hpp"

#include "support/serial.hpp"

namespace icc::smr {

Bytes encode_payload(std::span<const Command> commands) {
  Writer w;
  w.u32(static_cast<uint32_t>(commands.size()));
  for (const auto& c : commands) {
    w.u64(c.id);
    w.bytes(c.data);
  }
  return std::move(w).take();
}

std::optional<std::vector<Command>> decode_payload(BytesView payload) {
  if (payload.empty()) return std::vector<Command>{};  // empty block
  try {
    Reader r(payload);
    uint32_t count = r.u32();
    if (count > 1u << 22) return std::nullopt;
    std::vector<Command> out;
    out.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Command c;
      c.id = r.u64();
      c.data = r.bytes();
      out.push_back(std::move(c));
    }
    r.expect_done();
    return out;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

void CommandQueue::submit(Command command) {
  if (committed_ids_.count(command.id)) return;
  pending_.push_back(std::move(command));
}

void CommandQueue::mark_committed(uint64_t id) { committed_ids_.insert(id); }

Bytes CommandQueue::build(types::Round /*round*/, types::PartyIndex /*proposer*/,
                          const std::vector<const types::Block*>& chain) {
  // Ids already scheduled on the chain we are extending must not repeat
  // (paper Section 3.3: getPayload can take the whole path into account).
  std::set<uint64_t> on_chain;
  for (const types::Block* b : chain) {
    auto cmds = decode_payload(b->payload);
    if (!cmds) continue;
    for (const auto& c : *cmds) on_chain.insert(c.id);
  }

  std::vector<Command> batch;
  size_t bytes = 8;
  // Drop committed commands from the head; take fresh ones up to the limits.
  std::deque<Command> keep;
  while (!pending_.empty() && batch.size() < limits_.max_commands_per_block) {
    Command c = std::move(pending_.front());
    pending_.pop_front();
    if (committed_ids_.count(c.id)) continue;  // retired
    if (on_chain.count(c.id)) {
      keep.push_back(std::move(c));  // scheduled but not final; keep for retry
      continue;
    }
    size_t sz = 8 + 4 + c.data.size();
    if (bytes + sz > limits_.max_payload_bytes) {
      keep.push_back(std::move(c));
      break;
    }
    bytes += sz;
    batch.push_back(std::move(c));
  }
  // Batched commands stay queued until committed (a block may never
  // finalize if its proposer's round loses the race).
  for (auto& c : batch) keep.push_back(c);
  for (auto& c : pending_) keep.push_back(std::move(c));
  pending_ = std::move(keep);

  return encode_payload(batch);
}

void KvStore::apply(const Command& command) {
  ++applied_;
  const Bytes& d = command.data;
  if (d.empty()) return;
  if (d[0] == 'P') {
    if (d.size() < 3) return;
    uint16_t keylen = static_cast<uint16_t>(d[1] | (d[2] << 8));
    if (d.size() < 3u + keylen) return;
    std::string key(d.begin() + 3, d.begin() + 3 + keylen);
    std::string value(d.begin() + 3 + keylen, d.end());
    map_[key] = value;
  } else if (d[0] == 'D') {
    std::string key(d.begin() + 1, d.end());
    map_.erase(key);
  }
  // Unknown opcodes: deterministic no-op.
}

crypto::Sha256Digest KvStore::digest() const {
  crypto::Sha256 h;
  for (const auto& [k, v] : map_) {
    uint32_t kl = static_cast<uint32_t>(k.size());
    h.update(BytesView(reinterpret_cast<const uint8_t*>(&kl), 4));
    h.update(k);
    uint32_t vl = static_cast<uint32_t>(v.size());
    h.update(BytesView(reinterpret_cast<const uint8_t*>(&vl), 4));
    h.update(v);
  }
  return h.digest();
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

Command KvStore::put(uint64_t id, std::string_view key, std::string_view value) {
  Command c;
  c.id = id;
  c.data.push_back('P');
  c.data.push_back(static_cast<uint8_t>(key.size()));
  c.data.push_back(static_cast<uint8_t>(key.size() >> 8));
  append(c.data, key);
  append(c.data, value);
  return c;
}

Command KvStore::del(uint64_t id, std::string_view key) {
  Command c;
  c.id = id;
  c.data.push_back('D');
  append(c.data, key);
  return c;
}

void Replica::on_commit(const consensus::CommittedBlock& block) {
  auto cmds = decode_payload(block.payload);
  if (!cmds) return;  // a Byzantine proposer may commit garbage; skip it
  for (const auto& c : *cmds) {
    state_->apply(c);
    queue_->mark_committed(c.id);
    ++applied_commands_;
  }
}

}  // namespace icc::smr
