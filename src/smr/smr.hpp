// Replicated state machine layer on top of atomic broadcast.
//
// The paper frames atomic broadcast as the mechanism behind BFT state
// machine replication (Section 1, [33]): clients submit commands, the
// protocol orders them into block payloads, every replica applies the same
// sequence. This module provides:
//
//   * Command / payload encoding (a batch of commands per block);
//   * CommandQueue — a PayloadBuilder that batches pending commands and
//     de-duplicates against the chain being extended (the paper notes
//     getPayload may inspect the whole chain for exactly this);
//   * StateMachine interface + a replicated key-value store;
//   * Replica — glue binding a queue and a state machine to a party.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "consensus/config.hpp"
#include "crypto/sha256.hpp"

namespace icc::smr {

struct Command {
  uint64_t id = 0;  ///< client-assigned unique id (used for deduplication)
  Bytes data;

  bool operator==(const Command&) const = default;
};

Bytes encode_payload(std::span<const Command> commands);
std::optional<std::vector<Command>> decode_payload(BytesView payload);

/// Batches submitted commands into block payloads. Commands already present
/// in the chain being extended are skipped; commands are retired once they
/// commit.
class CommandQueue final : public consensus::PayloadBuilder {
 public:
  struct Limits {
    size_t max_commands_per_block = 1000;
    size_t max_payload_bytes = 2 * 1024 * 1024;  ///< "a few megabytes" (paper)
  };

  CommandQueue() = default;
  explicit CommandQueue(const Limits& limits) : limits_(limits) {}

  void submit(Command command);
  void mark_committed(uint64_t id);
  size_t pending() const { return pending_.size(); }

  Bytes build(types::Round round, types::PartyIndex proposer,
              const std::vector<const types::Block*>& chain) override;

 private:
  Limits limits_;
  std::deque<Command> pending_;
  std::set<uint64_t> committed_ids_;
};

class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual void apply(const Command& command) = 0;
  /// Digest of the current state — replicas in sync have equal digests.
  virtual crypto::Sha256Digest digest() const = 0;
};

/// Replicated key-value store. Command wire format (after the id):
///   'P' <u16 keylen> key value...  — put
///   'D' key...                     — delete
/// Anything else is a no-op (unknown commands must not diverge replicas).
class KvStore final : public StateMachine {
 public:
  void apply(const Command& command) override;
  crypto::Sha256Digest digest() const override;

  std::optional<std::string> get(const std::string& key) const;
  size_t size() const { return map_.size(); }
  uint64_t applied_count() const { return applied_; }

  static Command put(uint64_t id, std::string_view key, std::string_view value);
  static Command del(uint64_t id, std::string_view key);

 private:
  std::map<std::string, std::string> map_;
  uint64_t applied_ = 0;
};

/// Binds a CommandQueue + StateMachine to one replica: feed its on_commit
/// with committed blocks and it applies the payloads in order.
class Replica {
 public:
  explicit Replica(std::shared_ptr<CommandQueue> queue,
                   std::shared_ptr<StateMachine> state)
      : queue_(std::move(queue)), state_(std::move(state)) {}

  void submit(Command command) { queue_->submit(std::move(command)); }

  /// Apply a committed block's payload (call from PartyConfig::on_commit).
  void on_commit(const consensus::CommittedBlock& block);

  StateMachine& state() { return *state_; }
  CommandQueue& queue() { return *queue_; }
  uint64_t applied_commands() const { return applied_commands_; }

 private:
  std::shared_ptr<CommandQueue> queue_;
  std::shared_ptr<StateMachine> state_;
  uint64_t applied_commands_ = 0;
};

}  // namespace icc::smr
