// Byte-buffer utilities shared across the library.
//
// All wire objects in this codebase serialize to `Bytes` (a std::vector of
// std::byte would be stricter, but uint8_t keeps interop with the crypto
// routines simple and is the conventional choice for byte-oriented code).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace icc {

using Bytes = std::vector<uint8_t>;
using BytesView = std::span<const uint8_t>;

/// Hex-encode a byte span (lowercase, no prefix).
std::string to_hex(BytesView data);

/// Decode a hex string; throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Append `src` to `dst`.
inline void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Append a string's bytes to `dst`.
inline void append(Bytes& dst, std::string_view src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

/// Concatenate any number of byte spans.
template <typename... Spans>
Bytes concat(const Spans&... spans) {
  Bytes out;
  out.reserve((spans.size() + ...));
  (append(out, BytesView(spans)), ...);
  return out;
}

/// Bytes of a string literal / std::string.
inline Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// Little-endian encoding helpers (used by hashing and serialization).
inline void put_u32le(Bytes& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

inline void put_u64le(Bytes& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

inline uint32_t get_u32le(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t get_u64le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Constant-size array view helpers.
template <size_t N>
std::array<uint8_t, N> to_array(BytesView v) {
  std::array<uint8_t, N> a{};
  std::memcpy(a.data(), v.data(), N);
  return a;
}

}  // namespace icc
