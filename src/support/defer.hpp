// Deferred side-effect queue for deterministic parallel execution.
//
// The parallel simulator (sim/engine.hpp, DESIGN.md §6) runs events with
// disjoint party ownership concurrently, but everything those events do to
// *shared* state — journal appends, trace records, gauge writes, harness
// callbacks, event scheduling — must land in the exact order the classic
// sequential loop would have produced, or runs stop being bit-identical
// across thread counts. The contract:
//
//   * While a worker executes one event, the engine installs a thread-local
//     DeferQueue for it. Shared-state mutations route through maybe_defer():
//     inside a parallel region they are captured as closures; outside (the
//     classic single-threaded loop) they run immediately, so the sequential
//     hot path pays one thread-local load and a branch.
//   * After the parallel join, the engine replays each event's queue on the
//     coordinating thread in canonical event order. Closures from one event
//     replay in program order, so the interleaving is exactly the sequential
//     execution's — including order-sensitive effects like the causal
//     scribe's journal-slot reservations.
//
// The queue itself is single-owner (one event execution, one worker); it
// needs no locking. Only the thread-local *installation* is concurrent, and
// each worker touches only its own slot.
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace icc::support {

class DeferQueue {
 public:
  DeferQueue() = default;
  DeferQueue(const DeferQueue&) = delete;
  DeferQueue& operator=(const DeferQueue&) = delete;

  void push(std::function<void()> fn) { fns_.push_back(std::move(fn)); }
  bool empty() const { return fns_.empty(); }
  size_t size() const { return fns_.size(); }

  /// Run every deferred closure in push order, then clear. Called on the
  /// coordinating thread after the parallel join; closures may themselves
  /// call maybe_defer(), which runs inline because no queue is installed on
  /// the replaying thread (replay() detaches first).
  void replay() {
    for (auto& fn : fns_) fn();
    fns_.clear();
  }

  /// The queue installed for the event execution running on this thread;
  /// null outside parallel regions.
  static DeferQueue* current() { return tl_current(); }
  static void set_current(DeferQueue* q) { tl_current() = q; }

  /// Defer `fn` if a queue is installed (returns true); otherwise the caller
  /// must apply the effect inline (returns false). Usage:
  ///   if (!DeferQueue::maybe_defer([=] { mutate_shared(); })) mutate_shared();
  template <typename Fn>
  static bool maybe_defer(Fn&& fn) {
    DeferQueue* q = tl_current();
    if (q == nullptr) return false;
    q->push(std::forward<Fn>(fn));
    return true;
  }

  /// RAII installation for one event execution.
  class Scope {
   public:
    explicit Scope(DeferQueue* q) : prev_(tl_current()) { tl_current() = q; }
    ~Scope() { tl_current() = prev_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    DeferQueue* prev_;
  };

 private:
  static DeferQueue*& tl_current() {
    thread_local DeferQueue* current = nullptr;
    return current;
  }

  std::vector<std::function<void()>> fns_;
};

}  // namespace icc::support
