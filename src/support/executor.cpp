#include "support/executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>

namespace icc::support {

size_t Executor::default_threads() {
  const char* env = std::getenv("ICC_THREADS");
  if (env == nullptr || env[0] == '\0') return 1;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || v < 1) return 1;
  return std::min<long>(v, 256);
}

Executor::Executor(size_t threads) : threads_(threads == 0 ? default_threads() : threads) {
  for (size_t i = 1; i < threads_; ++i) workers_.emplace_back([this] { worker_loop(); });
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::run_slices(Batch& b, TaskProbe* probe, bool stolen) {
  for (;;) {
    size_t idx = b.next.fetch_add(1, std::memory_order_relaxed);
    if (idx >= b.count) return;
    if (probe != nullptr) probe->slice(stolen);
    (*b.body)(idx);
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.count) {
      // Last body done: wake the batch's caller. The lock pairs with the
      // caller's wait so the notify cannot slip between its predicate check
      // and its sleep.
      std::lock_guard<std::mutex> lk(b.done_mu);
      b.done_cv.notify_all();
    }
  }
}

void Executor::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> b;
    TaskProbe* p;
    {
      std::unique_lock<std::mutex> lk(mu_);
      p = probe();
      if (p != nullptr && !stop_ && batches_.empty()) {
        // About to block: bracket the wait so the profiler can attribute
        // this window as idle (the wait releases mu_, so the probe's clock
        // reads never extend the critical section).
        p->idle_begin(true);
        cv_.wait(lk, [&] { return stop_ || !batches_.empty(); });
        p->idle_end();
      } else {
        cv_.wait(lk, [&] { return stop_ || !batches_.empty(); });
      }
      if (stop_) return;  // destructor runs only after every batch completed
      // Drop exhausted batches (their remaining bodies are in flight on
      // other threads; the shared_ptr keeps the object alive for them).
      while (!batches_.empty() &&
             batches_.front()->next.load(std::memory_order_relaxed) >=
                 batches_.front()->count) {
        batches_.pop_front();
      }
      if (batches_.empty()) continue;
      b = batches_.front();
    }
    run_slices(*b, p, /*stolen=*/true);
  }
}

void Executor::parallel_for(size_t count, const std::function<void(size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto b = std::make_shared<Batch>();
  b->count = count;
  b->body = &body;
  TaskProbe* p = probe();
  if (p == nullptr) {
    std::lock_guard<std::mutex> lk(mu_);
    batches_.push_back(b);
  } else {
    // Try-lock-first sampling of the publish-side queue acquisition (the
    // worker side interleaves with cv waits and is not sampled). Only the
    // contended path reads a clock.
    int64_t wait_ns = 0;
    if (!mu_.try_lock()) {
      const auto t0 = std::chrono::steady_clock::now();
      mu_.lock();
      wait_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    }
    batches_.push_back(b);
    mu_.unlock();
    p->queue_lock_wait(wait_ns);
  }
  cv_.notify_all();
  run_slices(*b, p, /*stolen=*/false);  // caller participates
  std::unique_lock<std::mutex> lk(b->done_mu);
  if (p != nullptr && b->done.load(std::memory_order_acquire) != count) {
    p->idle_begin(false);
    b->done_cv.wait(lk, [&] { return b->done.load(std::memory_order_acquire) == count; });
    p->idle_end();
  } else {
    b->done_cv.wait(lk, [&] { return b->done.load(std::memory_order_acquire) == count; });
  }
}

}  // namespace icc::support
