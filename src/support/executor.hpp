// Fixed-size worker pool with caller-participating fork/join.
//
// The simulator's unit of parallelism is a *batch*: N independent closures
// that must all finish before the caller proceeds (engine delivery barriers,
// verifier signature slices — DESIGN.md §6). parallel_for() publishes the
// batch, the caller and every idle worker pull indices from a shared atomic
// cursor, and the call returns when all N bodies have run. Work stealing is
// implicit: there is one global batch deque, so a worker that drains its
// current batch immediately picks up whatever batch is pending — including
// batches spawned from *inside* a running body (a party event that slices a
// signature batch onto the pool). Nested parallel_for() is therefore legal
// and deadlock-free: the nested caller participates in its own batch, and
// any idle worker helps.
//
// Determinism: the executor itself guarantees nothing about ordering — each
// body runs exactly once, on some thread. Deterministic replay is the
// engine's job (support/defer.hpp); bodies that mutate shared state must
// defer. Scheduling here only decides *wall-clock* interleaving, never
// simulation outcome.
//
// Thread count resolution: an explicit count wins; 0 means "use the
// ICC_THREADS environment variable, default 1". With one thread the pool
// spawns no workers and parallel_for() degrades to an inline loop, so a
// threads=1 run never touches an atomic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace icc::support {

/// Wall-clock instrumentation hooks for the pool. Implemented by
/// obs::RuntimeProfiler — support/ cannot depend on obs/, so the executor
/// sees only this interface. A null probe must cost exactly one pointer
/// check per site; the probe callbacks observe scheduling, never influence
/// it, so attaching one cannot change which thread runs which body.
class TaskProbe {
 public:
  virtual ~TaskProbe() = default;
  /// This thread is about to block waiting for work (`worker` = pool thread
  /// in worker_loop, else a parallel_for caller waiting on its join).
  virtual void idle_begin(bool worker) = 0;
  /// The matching wake-up. Always paired with idle_begin on one thread.
  virtual void idle_end() = 0;
  /// One batch index executed on this thread; `stolen` = the batch was
  /// published by some other thread.
  virtual void slice(bool stolen) = 0;
  /// Publish-side acquisition of the batch-queue mutex; wait_ns = 0 when it
  /// was uncontended (try_lock-first sampling, see obs/runtime.hpp).
  virtual void queue_lock_wait(int64_t wait_ns) = 0;
};

class Executor {
 public:
  /// `threads` = total concurrency including the caller; 0 resolves via
  /// ICC_THREADS (default 1). A pool of size T spawns T-1 workers.
  explicit Executor(size_t threads = 0);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t threads() const { return threads_; }

  /// Run body(0..count-1), each exactly once, concurrently on the caller
  /// plus idle workers. Returns when every body has completed. Bodies may
  /// themselves call parallel_for on the same executor.
  void parallel_for(size_t count, const std::function<void(size_t)>& body);

  /// ICC_THREADS environment variable (clamped to [1, 256]); 1 if unset.
  static size_t default_threads();

  /// Attach wall-clock instrumentation (obs::RuntimeProfiler). Null detaches.
  /// Set before the first parallel_for of the measured window; the probe must
  /// outlive the executor (workers call it until their final join).
  void set_probe(TaskProbe* probe) { probe_.store(probe, std::memory_order_release); }

 private:
  struct Batch {
    size_t count = 0;
    const std::function<void(size_t)>* body = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  void worker_loop();
  /// Pull indices from `b` until its cursor is exhausted. `stolen` tags the
  /// probe's slice accounting: false on the publishing caller's own thread.
  static void run_slices(Batch& b, TaskProbe* probe, bool stolen);

  TaskProbe* probe() const { return probe_.load(std::memory_order_acquire); }

  size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> batches_;
  bool stop_ = false;
  std::atomic<TaskProbe*> probe_{nullptr};
};

}  // namespace icc::support
