#pragma once

#include <cstdint>
#include <cstring>

namespace icc::support {

/// Fast 64-bit content fingerprint (two independent multiply-xor lanes,
/// 16 bytes per step, so the multiplies pipeline). This runs once per wire
/// message and has to fit inside the F-OBS < 5% telemetry budget — a
/// cryptographic hash does not.
///
/// Shared by the causal layer (edge ids, DESIGN.md §5) and the artifact
/// intern store (shard/bucket key, DESIGN.md §7). Neither user depends on
/// collision resistance for correctness: causal edge uniqueness comes from
/// the per-link sequence number, and the intern store chains full
/// byte-equality behind the fingerprint.
inline uint64_t fingerprint64(const uint8_t* p, size_t n) {
  uint64_t a = 0x9e3779b97f4a7c15ull ^ (n * 0xff51afd7ed558ccdull);
  uint64_t b = 0xc2b2ae3d27d4eb4full;
  while (n >= 16) {
    uint64_t w0, w1;
    std::memcpy(&w0, p, 8);
    std::memcpy(&w1, p + 8, 8);
    a = (a ^ w0) * 0x2545f4914f6cdd1dull;
    b = (b ^ w1) * 0x9e6c63d0873b66ebull;
    p += 16;
    n -= 16;
  }
  if (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    a = (a ^ w) * 0x2545f4914f6cdd1dull;
    p += 8;
    n -= 8;
  }
  uint64_t tail = 0;
  std::memcpy(&tail, p, n);
  uint64_t h = (a ^ (b >> 32) ^ (b << 32) ^ tail) * 0xff51afd7ed558ccdull;
  return h ^ (h >> 33);
}

}  // namespace icc::support
