#include "support/log.hpp"

namespace icc {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

namespace detail {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLine::LogLine(LogLevel level, const char* tag) {
  stream_ << "[" << level_name(level) << "][" << tag << "] ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  std::cerr << stream_.str();
}

}  // namespace detail
}  // namespace icc
