#include "support/log.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

namespace icc {

namespace {
LogLevel initial_level() {
  const char* env = std::getenv("ICC_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;  // unknown value: keep the default
}
}  // namespace

std::atomic<LogLevel>& log_level() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

std::mutex& log_sink_mutex() {
  static std::mutex sink_mu;
  return sink_mu;
}

namespace detail {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

LogLine::LogLine(LogLevel level, const char* tag) {
  stream_ << "[" << level_name(level) << "][" << tag << "] ";
}

LogLine::~LogLine() {
  stream_ << '\n';
  // One mutex-guarded write per line: pool workers (support/executor.hpp)
  // log concurrently, and operator<< on a shared stream is not atomic —
  // without the lock two lines can interleave mid-byte.
  std::lock_guard<std::mutex> lk(log_sink_mutex());
  std::cerr << stream_.str();
}

}  // namespace detail
}  // namespace icc
