// Leveled logging with near-zero cost when disabled.
//
// The simulator runs millions of events; logging must be off by default and
// cheap to skip. Format strings use ostream-style streaming into a local
// buffer that is flushed as one line under a sink mutex, so lines from
// concurrent pool workers (support/executor.hpp) never interleave mid-byte.
#pragma once

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace icc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold, atomic so benches that run clusters on several
/// threads can flip it safely. Defaults to warn, overridable via the
/// ICC_LOG_LEVEL environment variable (trace|debug|info|warn|error|off,
/// read once at first use).
std::atomic<LogLevel>& log_level();

/// Set the global threshold (tests, examples, CLI flags).
inline void set_log_level(LogLevel level) {
  log_level().store(level, std::memory_order_relaxed);
}

/// The process-wide line-atomic sink mutex every ICC_LOG line is written
/// under. Multi-line summary printers (bench results, runtime profiles) hold
/// it for the whole block so concurrent worker-thread log lines cannot land
/// mid-summary. NOT recursive: never ICC_LOG while holding it.
std::mutex& log_sink_mutex();

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};
}  // namespace detail

#define ICC_LOG(level, tag)                                               \
  if (::icc::log_level().load(std::memory_order_relaxed) > (level)) {     \
  } else                                                                  \
    ::icc::detail::LogLine((level), (tag))

#define ICC_TRACE(tag) ICC_LOG(::icc::LogLevel::kTrace, tag)
#define ICC_DEBUG(tag) ICC_LOG(::icc::LogLevel::kDebug, tag)
#define ICC_INFO(tag) ICC_LOG(::icc::LogLevel::kInfo, tag)
#define ICC_WARN(tag) ICC_LOG(::icc::LogLevel::kWarn, tag)
#define ICC_ERROR(tag) ICC_LOG(::icc::LogLevel::kError, tag)

}  // namespace icc
