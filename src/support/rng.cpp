#include "support/rng.hpp"

namespace icc {

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256 Xoshiro256::fork(uint64_t stream_id) {
  // Mix the stream id through splitmix to decorrelate substreams.
  uint64_t sm = next() ^ (stream_id * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  return Xoshiro256(splitmix64(sm));
}

uint64_t Xoshiro256::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::below(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~bound + 1) % bound;  // = 2^64 mod bound
  for (;;) {
    uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::fill(Bytes& out, size_t n) {
  out.reserve(out.size() + n);
  while (n >= 8) {
    uint64_t v = next();
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
    n -= 8;
  }
  if (n > 0) {
    uint64_t v = next();
    for (size_t i = 0; i < n; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

Bytes Xoshiro256::bytes(size_t n) {
  Bytes out;
  fill(out, n);
  return out;
}

}  // namespace icc
