// Deterministic pseudo-random generators for the simulator and tests.
//
// Simulations must be reproducible from a single 64-bit seed, so everything
// that needs randomness takes an explicit generator; nothing reads global
// entropy. xoshiro256** is used as the workhorse generator; splitmix64 seeds
// it and derives independent substreams.
#pragma once

#include <array>
#include <cstdint>

#include "support/bytes.hpp"

namespace icc {

/// splitmix64 step; also usable standalone for hashing small integers.
uint64_t splitmix64(uint64_t& state);

/// xoshiro256** — fast, high-quality, deterministic PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed);

  /// Derive an independent substream (e.g. one per party) without
  /// correlations between streams.
  Xoshiro256 fork(uint64_t stream_id);

  uint64_t next();
  uint64_t operator()() { return next(); }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }

  /// Uniform in [0, bound) without modulo bias for small bounds.
  uint64_t below(uint64_t bound);

  /// Uniform double in [0, 1).
  double unit();

  /// Fill a buffer with random bytes.
  void fill(Bytes& out, size_t n);
  Bytes bytes(size_t n);

 private:
  std::array<uint64_t, 4> s_{};
};

}  // namespace icc
