// Minimal deterministic binary serialization.
//
// Wire format: fixed-width little-endian integers, length-prefixed byte
// strings. Deterministic encoding matters because protocol messages are
// hashed and signed; two honest encoders must produce identical bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "support/bytes.hpp"

namespace icc {

/// Thrown on malformed input during deserialization. Protocol code treats
/// messages that fail to parse as adversarial and drops them.
struct ParseError : std::runtime_error {
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;

  /// Pre-size the buffer for `n` additional bytes. Serialize hot paths pass
  /// an exact (or slightly generous) size hint so encoding a message is a
  /// single allocation instead of log(n) vector doublings.
  void reserve(size_t n) { buf_.reserve(buf_.size() + n); }

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) { put_u32le(buf_, v); }
  void u64(uint64_t v) { put_u64le(buf_, v); }

  /// Length-prefixed (u32) byte string.
  void bytes(BytesView v) {
    u32(static_cast<uint32_t>(v.size()));
    append(buf_, v);
  }

  /// Raw bytes, no length prefix (for fixed-size fields like hashes).
  void raw(BytesView v) { append(buf_, v); }

  void str(std::string_view s) { bytes(BytesView(reinterpret_cast<const uint8_t*>(s.data()), s.size())); }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  uint8_t u8() { return *take(1); }
  uint16_t u16() {
    const uint8_t* p = take(2);
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
  }
  uint32_t u32() { return get_u32le(take(4)); }
  uint64_t u64() { return get_u64le(take(8)); }

  Bytes bytes() {
    uint32_t n = u32();
    const uint8_t* p = take(n);
    return Bytes(p, p + n);
  }

  /// Fixed-size field.
  Bytes raw(size_t n) {
    const uint8_t* p = take(n);
    return Bytes(p, p + n);
  }

  std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  bool done() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  /// Require the whole buffer to be consumed (tolerating trailing garbage
  /// would let two distinct byte strings decode to the same message).
  void expect_done() const {
    if (!done()) throw ParseError("trailing bytes");
  }

 private:
  const uint8_t* take(size_t n) {
    if (data_.size() - pos_ < n) throw ParseError("truncated input");
    const uint8_t* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace icc
