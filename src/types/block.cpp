#include "types/block.hpp"

#include "support/serial.hpp"

namespace icc::types {

const Hash& root_hash() {
  static const Hash h = crypto::Sha256::hash("icc-root-block-v1");
  return h;
}

Bytes Block::serialize() const {
  Writer w;
  w.reserve(1 + 4 + 4 + parent_hash.size() + 4 + payload.size());
  w.u8(0x42);  // 'B' domain tag
  w.u32(round);
  w.u32(proposer);
  w.raw(BytesView(parent_hash.data(), parent_hash.size()));
  w.bytes(payload);
  return std::move(w).take();
}

std::optional<Block> Block::deserialize(BytesView bytes) {
  try {
    Reader r(bytes);
    if (r.u8() != 0x42) return std::nullopt;
    Block b;
    b.round = r.u32();
    b.proposer = r.u32();
    Bytes ph = r.raw(32);
    std::copy(ph.begin(), ph.end(), b.parent_hash.begin());
    b.payload = r.bytes();
    r.expect_done();
    // The encoding is canonical and expect_done() rejected trailing bytes,
    // so the input IS serialize(); stamp the hash memo without re-encoding.
    b.hash_memo_ = crypto::Sha256::hash(bytes);
    b.hash_known_ = true;
    return b;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

Hash Block::hash() const {
  if (!hash_known_) {
    hash_memo_ = crypto::Sha256::hash(serialize());
    hash_known_ = true;
  }
  return hash_memo_;
}

namespace {
Bytes tagged_message(uint8_t tag, Round round, PartyIndex proposer, const Hash& block_hash) {
  Writer w;
  w.reserve(1 + 4 + 4 + block_hash.size());
  w.u8(tag);
  w.u32(round);
  w.u32(proposer);
  w.raw(BytesView(block_hash.data(), block_hash.size()));
  return std::move(w).take();
}
}  // namespace

Bytes authenticator_message(Round round, PartyIndex proposer, const Hash& block_hash) {
  return tagged_message(0x01, round, proposer, block_hash);
}

Bytes notarization_message(Round round, PartyIndex proposer, const Hash& block_hash) {
  return tagged_message(0x02, round, proposer, block_hash);
}

Bytes finalization_message(Round round, PartyIndex proposer, const Hash& block_hash) {
  return tagged_message(0x03, round, proposer, block_hash);
}

Bytes beacon_message(Round round, BytesView prev_beacon) {
  Writer w;
  w.reserve(1 + 4 + 4 + prev_beacon.size());
  w.u8(0x04);
  w.u32(round);
  w.bytes(prev_beacon);
  return std::move(w).take();
}

Bytes genesis_beacon() { return crypto::sha256(str_bytes("icc-genesis-beacon-v1")); }

}  // namespace icc::types
