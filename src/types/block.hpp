// Blocks and the block-tree vocabulary of the ICC protocols (paper §3.4).
//
// A round-k block is the tuple (block, k, alpha, phash, payload): the round
// number (= depth in the tree), the proposer's index, the parent's hash and
// an application-specific payload. The root of the tree is a special block
// with a well-known hash; it is its own authenticator, notarization and
// finalization.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>

#include "crypto/sha256.hpp"
#include "support/bytes.hpp"

namespace icc::types {

using Hash = crypto::Sha256Digest;
using PartyIndex = uint32_t;
using Round = uint32_t;

struct HashHasher {
  size_t operator()(const Hash& h) const {
    size_t v;
    static_assert(sizeof(size_t) <= 32);
    std::memcpy(&v, h.data(), sizeof(v));
    return v;
  }
};

/// Hash of the special round-0 root block.
const Hash& root_hash();

struct Block {
  Round round = 0;         ///< k >= 1 for real blocks
  PartyIndex proposer = 0; ///< alpha
  Hash parent_hash{};      ///< H(parent block)
  Bytes payload;

  /// Canonical encoding (the input to hashing and signing).
  Bytes serialize() const;
  static std::optional<Block> deserialize(BytesView bytes);

  /// H(B) over the canonical encoding, memoized on first call (and stamped
  /// directly from the input bytes by deserialize(), which never pays the
  /// re-serialize). Moves carry the memo (the fields travel with it); copies
  /// drop it, so the common copy-then-mutate pattern (equivocation tests,
  /// block builders) can never observe a stale hash.
  Hash hash() const;

  Block() = default;
  Block(Block&&) = default;
  Block& operator=(Block&&) = default;
  Block(const Block& o)
      : round(o.round), proposer(o.proposer), parent_hash(o.parent_hash),
        payload(o.payload) {}
  Block& operator=(const Block& o) {
    round = o.round;
    proposer = o.proposer;
    parent_hash = o.parent_hash;
    payload = o.payload;
    hash_known_ = false;
    return *this;
  }

  /// Equality is over the logical fields only; the hash memo is a cache.
  bool operator==(const Block& o) const {
    return round == o.round && proposer == o.proposer &&
           parent_hash == o.parent_hash && payload == o.payload;
  }

 private:
  mutable Hash hash_memo_{};
  mutable bool hash_known_ = false;
};

/// Canonical byte strings that S_auth / S_notary / S_final sign. These match
/// the paper's tuples (authenticator, k, alpha, H(B)), (notarization, k,
/// alpha, H(B)) and (finalization, k, alpha, H(B)).
Bytes authenticator_message(Round round, PartyIndex proposer, const Hash& block_hash);
Bytes notarization_message(Round round, PartyIndex proposer, const Hash& block_hash);
Bytes finalization_message(Round round, PartyIndex proposer, const Hash& block_hash);

/// The message whose threshold signature is the round-k beacon:
/// (beacon, k, R_{k-1}).
Bytes beacon_message(Round round, BytesView prev_beacon);

/// R_0: fixed initial beacon value known to all parties.
Bytes genesis_beacon();

}  // namespace icc::types
