#include "types/messages.hpp"

#include "support/serial.hpp"

namespace icc::types {

namespace {

enum class MsgType : uint8_t {
  kProposal = 1,
  kNotarizationShare = 2,
  kNotarization = 3,
  kFinalizationShare = 4,
  kFinalization = 5,
  kBeaconShare = 6,
  kAdvert = 7,
  kRequest = 8,
  kRbcFragment = 9,
  kCupShare = 10,
  kCupRequest = 11,
  kCup = 12,
};

void put_hash(Writer& w, const Hash& h) { w.raw(BytesView(h.data(), h.size())); }

Hash get_hash(Reader& r) {
  Bytes b = r.raw(32);
  Hash h;
  std::copy(b.begin(), b.end(), h.begin());
  return h;
}

/// serialize() size hints: exact envelope overheads so the Writer allocates
/// once. kHdr covers tag + the fixed u32 fields; each length-prefixed field
/// adds 4 + its size.
struct SerializeVisitor {
  Writer& w;

  void operator()(const ProposalMsg& m) {
    // Block encoding is 45 + payload bytes (tag + round + proposer + parent
    // hash + length-prefixed payload).
    w.reserve(1 + 4 + 45 + m.block.payload.size() + 4 + m.authenticator.size() + 4 +
              m.parent_notarization.size());
    w.u8(static_cast<uint8_t>(MsgType::kProposal));
    w.bytes(m.block.serialize());
    w.bytes(m.authenticator);
    w.bytes(m.parent_notarization);
  }
  void operator()(const NotarizationShareMsg& m) {
    w.reserve(1 + 4 + 4 + 32 + 4 + 4 + m.share.size());
    w.u8(static_cast<uint8_t>(MsgType::kNotarizationShare));
    w.u32(m.round);
    w.u32(m.proposer);
    put_hash(w, m.block_hash);
    w.u32(m.signer);
    w.bytes(m.share);
  }
  void operator()(const NotarizationMsg& m) {
    w.reserve(1 + 4 + 4 + 32 + 4 + m.aggregate.size());
    w.u8(static_cast<uint8_t>(MsgType::kNotarization));
    w.u32(m.round);
    w.u32(m.proposer);
    put_hash(w, m.block_hash);
    w.bytes(m.aggregate);
  }
  void operator()(const FinalizationShareMsg& m) {
    w.reserve(1 + 4 + 4 + 32 + 4 + 4 + m.share.size());
    w.u8(static_cast<uint8_t>(MsgType::kFinalizationShare));
    w.u32(m.round);
    w.u32(m.proposer);
    put_hash(w, m.block_hash);
    w.u32(m.signer);
    w.bytes(m.share);
  }
  void operator()(const FinalizationMsg& m) {
    w.reserve(1 + 4 + 4 + 32 + 4 + m.aggregate.size());
    w.u8(static_cast<uint8_t>(MsgType::kFinalization));
    w.u32(m.round);
    w.u32(m.proposer);
    put_hash(w, m.block_hash);
    w.bytes(m.aggregate);
  }
  void operator()(const BeaconShareMsg& m) {
    w.reserve(1 + 4 + 4 + 4 + m.share.size());
    w.u8(static_cast<uint8_t>(MsgType::kBeaconShare));
    w.u32(m.round);
    w.u32(m.signer);
    w.bytes(m.share);
  }
  void operator()(const AdvertMsg& m) {
    w.reserve(1 + 1 + 4 + 32 + 4);
    w.u8(static_cast<uint8_t>(MsgType::kAdvert));
    w.u8(m.artifact_type);
    w.u32(m.round);
    put_hash(w, m.artifact_id);
    w.u32(m.size_hint);
  }
  void operator()(const RequestMsg& m) {
    w.reserve(1 + 32);
    w.u8(static_cast<uint8_t>(MsgType::kRequest));
    put_hash(w, m.artifact_id);
  }
  void operator()(const CupShareMsg& m) {
    w.reserve(1 + 4 + 32 + 4 + m.beacon_value.size() + 4 + 4 + m.share.size());
    w.u8(static_cast<uint8_t>(MsgType::kCupShare));
    w.u32(m.round);
    put_hash(w, m.block_hash);
    w.bytes(m.beacon_value);
    w.u32(m.signer);
    w.bytes(m.share);
  }
  void operator()(const CupRequestMsg& m) {
    w.reserve(1 + 4);
    w.u8(static_cast<uint8_t>(MsgType::kCupRequest));
    w.u32(m.above_round);
  }
  void operator()(const CupMsg& m) {
    w.reserve(1 + 4 + 4 + m.proposal.size() + 4 + m.notarization.size() + 4 +
              m.finalization.size() + 4 + m.beacon_value.size() + 4 + m.aggregate.size());
    w.u8(static_cast<uint8_t>(MsgType::kCup));
    w.u32(m.round);
    w.bytes(m.proposal);
    w.bytes(m.notarization);
    w.bytes(m.finalization);
    w.bytes(m.beacon_value);
    w.bytes(m.aggregate);
  }
  void operator()(const RbcFragmentMsg& m) {
    w.reserve(1 + 4 + 4 + 32 + 32 + 4 + 4 + 4 + m.fragment.size() + 4 +
              m.merkle_proof.size() + 4 + m.authenticator.size() + 4 +
              m.parent_notarization.size());
    w.u8(static_cast<uint8_t>(MsgType::kRbcFragment));
    w.u32(m.round);
    w.u32(m.proposer);
    put_hash(w, m.block_hash);
    put_hash(w, m.merkle_root);
    w.u32(m.block_len);
    w.u32(m.fragment_index);
    w.bytes(m.fragment);
    w.bytes(m.merkle_proof);
    w.bytes(m.authenticator);
    w.bytes(m.parent_notarization);
  }
};

}  // namespace

Bytes serialize_message(const Message& msg) {
  Writer w;
  std::visit(SerializeVisitor{w}, msg);
  return std::move(w).take();
}

std::optional<Message> parse_message(BytesView bytes) {
  try {
    Reader r(bytes);
    auto type = static_cast<MsgType>(r.u8());
    switch (type) {
      case MsgType::kProposal: {
        ProposalMsg m;
        auto block = Block::deserialize(r.bytes());
        if (!block) return std::nullopt;
        m.block = std::move(*block);
        m.authenticator = r.bytes();
        m.parent_notarization = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kNotarizationShare: {
        NotarizationShareMsg m;
        m.round = r.u32();
        m.proposer = r.u32();
        m.block_hash = get_hash(r);
        m.signer = r.u32();
        m.share = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kNotarization: {
        NotarizationMsg m;
        m.round = r.u32();
        m.proposer = r.u32();
        m.block_hash = get_hash(r);
        m.aggregate = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kFinalizationShare: {
        FinalizationShareMsg m;
        m.round = r.u32();
        m.proposer = r.u32();
        m.block_hash = get_hash(r);
        m.signer = r.u32();
        m.share = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kFinalization: {
        FinalizationMsg m;
        m.round = r.u32();
        m.proposer = r.u32();
        m.block_hash = get_hash(r);
        m.aggregate = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kBeaconShare: {
        BeaconShareMsg m;
        m.round = r.u32();
        m.signer = r.u32();
        m.share = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kAdvert: {
        AdvertMsg m;
        m.artifact_type = r.u8();
        m.round = r.u32();
        m.artifact_id = get_hash(r);
        m.size_hint = r.u32();
        r.expect_done();
        return m;
      }
      case MsgType::kRequest: {
        RequestMsg m;
        m.artifact_id = get_hash(r);
        r.expect_done();
        return m;
      }
      case MsgType::kCupShare: {
        CupShareMsg m;
        m.round = r.u32();
        m.block_hash = get_hash(r);
        m.beacon_value = r.bytes();
        m.signer = r.u32();
        m.share = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kCupRequest: {
        CupRequestMsg m;
        m.above_round = r.u32();
        r.expect_done();
        return m;
      }
      case MsgType::kCup: {
        CupMsg m;
        m.round = r.u32();
        m.proposal = r.bytes();
        m.notarization = r.bytes();
        m.finalization = r.bytes();
        m.beacon_value = r.bytes();
        m.aggregate = r.bytes();
        r.expect_done();
        return m;
      }
      case MsgType::kRbcFragment: {
        RbcFragmentMsg m;
        m.round = r.u32();
        m.proposer = r.u32();
        m.block_hash = get_hash(r);
        m.merkle_root = get_hash(r);
        m.block_len = r.u32();
        m.fragment_index = r.u32();
        m.fragment = r.bytes();
        m.merkle_proof = r.bytes();
        m.authenticator = r.bytes();
        m.parent_notarization = r.bytes();
        r.expect_done();
        return m;
      }
    }
    return std::nullopt;
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

Hash artifact_id(BytesView serialized) { return crypto::Sha256::hash(serialized); }

bool sender_scoped_wire(BytesView serialized) {
  if (serialized.empty()) return false;
  switch (static_cast<MsgType>(serialized[0])) {
    case MsgType::kAdvert:
    case MsgType::kRequest:
    case MsgType::kCupRequest:
      return true;
    default:
      return false;
  }
}

Bytes cup_message(Round round, const Hash& block_hash, BytesView beacon_value) {
  Writer w;
  w.reserve(1 + 4 + 32 + 4 + beacon_value.size());
  w.u8(0x05);  // distinct from authenticator/notarization/finalization/beacon tags
  w.u32(round);
  w.raw(BytesView(block_hash.data(), block_hash.size()));
  w.bytes(beacon_value);
  return std::move(w).take();
}

}  // namespace icc::types
