// Wire messages of the ICC protocols.
//
// One envelope format shared by ICC0/ICC1/ICC2, the gossip sub-layer and the
// RBC subprotocol (distinct tags). All deserialization is defensive: any
// malformed buffer yields nullopt and is dropped by the receiving party, so
// corrupt parties gain nothing from sending garbage.
#pragma once

#include <memory>
#include <optional>
#include <variant>

#include "types/block.hpp"

namespace icc::types {

/// Block proposal / echo bundle (Fig. 1: "broadcast B, B's authenticator,
/// and the notarization for B's parent"). For round-1 blocks the parent is
/// root, which needs no notarization.
struct ProposalMsg {
  Block block;
  Bytes authenticator;                ///< S_auth signature by block.proposer
  Bytes parent_notarization;          ///< empty iff block.round == 1
};

struct NotarizationShareMsg {
  Round round = 0;
  PartyIndex proposer = 0;  ///< proposer of the block being notarized
  Hash block_hash{};
  PartyIndex signer = 0;
  Bytes share;
};

struct NotarizationMsg {
  Round round = 0;
  PartyIndex proposer = 0;
  Hash block_hash{};
  Bytes aggregate;
};

struct FinalizationShareMsg {
  Round round = 0;
  PartyIndex proposer = 0;
  Hash block_hash{};
  PartyIndex signer = 0;
  Bytes share;
};

struct FinalizationMsg {
  Round round = 0;
  PartyIndex proposer = 0;
  Hash block_hash{};
  Bytes aggregate;
};

struct BeaconShareMsg {
  Round round = 0;  ///< the beacon being built (k), signed over (k, R_{k-1})
  PartyIndex signer = 0;
  Bytes share;
};

// --- gossip sub-layer (ICC1) ---

/// Announcement of an artifact the sender holds (identified by its hash).
struct AdvertMsg {
  uint8_t artifact_type = 0;  ///< MsgType of the announced artifact
  Round round = 0;
  Hash artifact_id{};
  uint32_t size_hint = 0;
};

/// Pull request for an advertised artifact.
struct RequestMsg {
  Hash artifact_id{};
};

// --- erasure-coded reliable broadcast (ICC2) ---

struct RbcFragmentMsg {
  Round round = 0;
  PartyIndex proposer = 0;
  Hash block_hash{};      ///< H(B), binding fragment to the proposal
  Hash merkle_root{};     ///< commitment over the n fragments
  uint32_t block_len = 0; ///< original block byte length
  uint32_t fragment_index = 0;
  Bytes fragment;
  Bytes merkle_proof;     ///< serialized MerkleProof for fragment_index
  Bytes authenticator;    ///< proposer's S_auth signature (travels with frags)
  Bytes parent_notarization;
};

// --- catch-up packages (state sync for lagging replicas) ---
//
// The paper's protocols never delete from the pool, but §3.1 notes a real
// implementation checkpoints and garbage-collects like PBFT. Once pools
// prune, a replica that was partitioned for long cannot replay history —
// the Internet Computer solves this with threshold-signed *catch-up
// packages* (CUPs). A CUP share endorses (round, finalized block hash,
// round's beacon value); n-t shares combine into a self-certifying package
// that lets a laggard resume from that round without any earlier state.

struct CupShareMsg {
  Round round = 0;  ///< a checkpoint round (multiple of the CUP interval)
  Hash block_hash{};
  Bytes beacon_value;
  PartyIndex signer = 0;
  Bytes share;
};

struct CupRequestMsg {
  Round above_round = 0;  ///< send me a CUP for a round above this
};

struct CupMsg {
  Round round = 0;
  Bytes proposal;      ///< serialized ProposalMsg for the checkpoint block
  Bytes notarization;  ///< serialized NotarizationMsg
  Bytes finalization;  ///< serialized FinalizationMsg
  Bytes beacon_value;  ///< R_round
  Bytes aggregate;     ///< threshold signature over (cup, round, H(B), R_round)
};

/// Canonical byte string the CUP threshold signature covers.
Bytes cup_message(Round round, const Hash& block_hash, BytesView beacon_value);

using Message =
    std::variant<ProposalMsg, NotarizationShareMsg, NotarizationMsg, FinalizationShareMsg,
                 FinalizationMsg, BeaconShareMsg, AdvertMsg, RequestMsg, RbcFragmentMsg,
                 CupShareMsg, CupRequestMsg, CupMsg>;

Bytes serialize_message(const Message& msg);
std::optional<Message> parse_message(BytesView bytes);

/// Immutable parsed artifact, shared across receivers by the intern store
/// (DESIGN.md §7); also handed out by the per-party fidelity decode path so
/// the consensus layer has one shape either way.
using SharedMessage = std::shared_ptr<const Message>;

/// Stable artifact id for gossip and ingress dedup (hash of the serialized
/// message).
Hash artifact_id(BytesView serialized);

/// True if the serialized message's *meaning* depends on who sent it
/// (adverts register the sender as a source; pull/CUP requests are answered
/// point-to-point). Such messages must bypass content-hash deduplication:
/// two parties legitimately send byte-identical copies that each need
/// processing. Everything else is sender-independent pool/subprotocol state
/// and safe to dedup. Malformed/empty buffers return false (they are dropped
/// in decode either way).
bool sender_scoped_wire(BytesView serialized);

}  // namespace icc::types
