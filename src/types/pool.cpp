#include "types/pool.hpp"

#include <algorithm>

namespace icc::types {

const Block* Pool::block(const Hash& h) const {
  auto it = blocks_.find(h);
  return it == blocks_.end() ? nullptr : it->second.get();
}

bool Pool::add_proposal(const ProposalMsg& msg) { return add_proposal(msg, nullptr); }

bool Pool::add_proposal(const ProposalMsg& msg, std::shared_ptr<const Block> block) {
  const Block& b = msg.block;
  if (b.round < 1 || b.proposer >= n_) return false;

  Hash h = b.hash();
  if (blocks_.count(h)) return false;

  if (!block) block = std::make_shared<const Block>(b);
  blocks_.emplace(h, std::move(block));
  blocks_by_round_[b.round].push_back(h);
  authentic_.insert(h);
  authenticators_.emplace(h, msg.authenticator);
  return true;
}

bool Pool::add_notarization_share(const NotarizationShareMsg& msg) {
  if (msg.signer >= n_) return false;
  auto& set = notar_shares_[msg.block_hash];
  return set.emplace(msg.signer, msg.share).second;
}

bool Pool::add_notarization(const NotarizationMsg& msg) {
  if (notarizations_.count(msg.block_hash)) return false;
  notarizations_.emplace(msg.block_hash, msg);
  notarized_by_round_[msg.round].push_back(msg.block_hash);
  return true;
}

bool Pool::add_finalization_share(const FinalizationShareMsg& msg) {
  if (msg.signer >= n_) return false;
  auto& set = final_shares_[msg.block_hash];
  return set.emplace(msg.signer, msg.share).second;
}

bool Pool::add_finalization(const FinalizationMsg& msg) {
  if (finalizations_.count(msg.block_hash)) return false;
  finalizations_.emplace(msg.block_hash, msg);
  finalized_by_round_[msg.round].push_back(msg.block_hash);
  return true;
}

bool Pool::is_valid(const Hash& h) const {
  if (valid_cache_.count(h)) return true;
  const Block* b = block(h);
  if (!b || !authentic_.count(h)) return false;
  bool parent_ok;
  if (b->round == 1) {
    parent_ok = (b->parent_hash == root_hash());
  } else {
    const Block* parent = block(b->parent_hash);
    parent_ok = parent && parent->round == b->round - 1 && is_valid(b->parent_hash) &&
                notarizations_.count(b->parent_hash) > 0;
  }
  if (!parent_ok) return false;
  valid_cache_.insert(h);
  return true;
}

bool Pool::is_notarized(const Hash& h) const {
  if (h == root_hash()) return true;
  return is_valid(h) && notarizations_.count(h) > 0;
}

bool Pool::is_finalized(const Hash& h) const {
  if (h == root_hash()) return true;
  return is_valid(h) && finalizations_.count(h) > 0;
}

std::vector<Hash> Pool::valid_blocks_at(Round round) const {
  std::vector<Hash> out;
  auto it = blocks_by_round_.find(round);
  if (it == blocks_by_round_.end()) return out;
  for (const Hash& h : it->second)
    if (is_valid(h)) out.push_back(h);
  return out;
}

std::vector<Hash> Pool::notarized_blocks_at(Round round) const {
  if (round == 0) return {root_hash()};
  std::vector<Hash> out;
  auto it = notarized_by_round_.find(round);
  if (it == notarized_by_round_.end()) return out;
  for (const Hash& h : it->second)
    if (is_notarized(h)) out.push_back(h);
  return out;
}

std::optional<Hash> Pool::combinable_notarization_at(Round round) const {
  auto it = blocks_by_round_.find(round);
  if (it == blocks_by_round_.end()) return std::nullopt;
  for (const Hash& h : it->second) {
    if (notarizations_.count(h)) continue;
    auto sh = notar_shares_.find(h);
    if (sh == notar_shares_.end() || sh->second.size() < quorum_) continue;
    if (is_valid(h)) return h;
  }
  return std::nullopt;
}

std::optional<Hash> Pool::combinable_finalization_above(Round above_round) const {
  for (const auto& [h, shares] : final_shares_) {
    if (shares.size() < quorum_) continue;
    if (finalizations_.count(h)) continue;
    const Block* b = block(h);
    if (!b || b->round <= above_round) continue;
    if (is_valid(h)) return h;
  }
  return std::nullopt;
}

std::optional<Hash> Pool::finalized_above(Round above_round) const {
  for (auto it = finalized_by_round_.upper_bound(above_round); it != finalized_by_round_.end();
       ++it) {
    for (const Hash& h : it->second)
      if (is_finalized(h)) return h;
  }
  return std::nullopt;
}

std::vector<std::pair<PartyIndex, Bytes>> Pool::notarization_shares(const Block& b) const {
  std::vector<std::pair<PartyIndex, Bytes>> out;
  auto it = notar_shares_.find(b.hash());
  if (it == notar_shares_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

std::vector<std::pair<PartyIndex, Bytes>> Pool::finalization_shares(const Block& b) const {
  std::vector<std::pair<PartyIndex, Bytes>> out;
  auto it = final_shares_.find(b.hash());
  if (it == final_shares_.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  return out;
}

size_t Pool::notarization_share_count(const Hash& h) const {
  auto it = notar_shares_.find(h);
  return it == notar_shares_.end() ? 0 : it->second.size();
}

size_t Pool::finalization_share_count(const Hash& h) const {
  auto it = final_shares_.find(h);
  return it == final_shares_.end() ? 0 : it->second.size();
}

const NotarizationMsg* Pool::notarization_for(const Hash& h) const {
  auto it = notarizations_.find(h);
  return it == notarizations_.end() ? nullptr : &it->second;
}

const FinalizationMsg* Pool::finalization_for(const Hash& h) const {
  auto it = finalizations_.find(h);
  return it == finalizations_.end() ? nullptr : &it->second;
}

const Bytes* Pool::authenticator_for(const Hash& h) const {
  auto it = authenticators_.find(h);
  return it == authenticators_.end() ? nullptr : &it->second;
}

std::vector<const Block*> Pool::chain_to(const Hash& h, Round above_round) const {
  std::vector<const Block*> chain;
  Hash cur = h;
  while (cur != root_hash()) {
    const Block* b = block(cur);
    if (!b) return {};  // incomplete chain (e.g. pruned)
    if (b->round <= above_round) break;
    chain.push_back(b);
    if (b->round == 1) {
      if (b->parent_hash != root_hash()) return {};
      break;
    }
    cur = b->parent_hash;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

bool Pool::install_checkpoint(const ProposalMsg& proposal,
                              const NotarizationMsg& notarization,
                              const FinalizationMsg& finalization) {
  const Hash h = proposal.block.hash();
  if (notarization.block_hash != h || finalization.block_hash != h) return false;
  if (!add_proposal(proposal) && !blocks_.count(h)) return false;  // structurally bad
  if (!notarizations_.count(h)) add_notarization(notarization);
  if (!finalizations_.count(h)) add_finalization(finalization);
  // The ancestry is not present; the CUP's threshold signature vouches for
  // the block, so validity is granted directly.
  valid_cache_.insert(h);
  return true;
}

void Pool::prune_below(Round round) {
  for (auto it = blocks_by_round_.begin();
       it != blocks_by_round_.end() && it->first < round;) {
    for (const Hash& h : it->second) {
      blocks_.erase(h);
      authentic_.erase(h);
      authenticators_.erase(h);
      notar_shares_.erase(h);
      final_shares_.erase(h);
      // The validity verdict must go with the block: a stale entry would
      // make a replayed copy of the pruned block look valid even though its
      // ancestry is no longer checkable.
      valid_cache_.erase(h);
    }
    it = blocks_by_round_.erase(it);
  }
  // Aggregates go with their rounds. Their removal is driven by the by-round
  // indices, not blocks_by_round_: an aggregate can be added without its
  // block ever arriving, and a per-block-hash erase would strand such
  // entries forever (the pool lives for millions of rounds in soak runs).
  // No surviving block's validity consults a pruned round's notarization —
  // is_valid needs the parent *block* too, and that is already gone.
  for (auto it = notarized_by_round_.begin();
       it != notarized_by_round_.end() && it->first < round;) {
    for (const Hash& h : it->second) notarizations_.erase(h);
    it = notarized_by_round_.erase(it);
  }
  for (auto it = finalized_by_round_.begin();
       it != finalized_by_round_.end() && it->first < round;) {
    for (const Hash& h : it->second) finalizations_.erase(h);
    it = finalized_by_round_.erase(it);
  }
}

}  // namespace icc::types
