// The per-party message pool (paper Section 3.1/3.4).
//
// "Each party has a pool which holds the set of all messages received from
// all parties (including itself)." The pool is a pure data structure: it
// holds PRE-VERIFIED artifacts only. All signature checking happens before
// insertion, in the staged ingress pipeline (src/pipeline/) — decode, dedup,
// verify — so the pool performs no cryptography and holds no provider
// handle; it only needs the protocol parameters n (for signer-range guards)
// and the quorum size (for combinable-share queries). Callers MUST NOT
// insert artifacts whose signatures they have not checked. The pool still
// implements the paper's block classification:
//
//   authentic  — an S_auth authenticator by the proposer is present;
//   valid      — authentic, and the parent is present and notarized
//                (recursively), or the parent is root for round-1 blocks;
//   notarized  — valid + a notarization (n-t threshold signature) present;
//   finalized  — valid + a finalization present.
//
// The paper never deletes from the pool; a real implementation checkpoints
// and garbage-collects (Section 3.1 points at PBFT). prune_below() provides
// that hook so multi-minute simulations stay within memory.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "types/messages.hpp"

namespace icc::types {

class Pool {
 public:
  /// `n` = number of parties (signer/proposer indices must be < n);
  /// `quorum` = shares needed to combine a notarization/finalization (n - t).
  Pool(size_t n, size_t quorum) : n_(n), quorum_(quorum) {}

  // --- insertion (returns true iff the pool state changed) ---
  //
  // Pre-verified contract: every add_* trusts the artifact's signatures.
  // Only structural guards remain (round/index ranges, duplicates). The
  // bundled parent_notarization of a ProposalMsg is NOT processed here —
  // the ingress pipeline verifies and routes it through add_notarization.
  bool add_proposal(const ProposalMsg& msg);
  /// Copy-free variant: `block` must be msg.block (typically an aliasing
  /// shared_ptr into an interned message, DESIGN.md §7); the pool stores the
  /// handle instead of cloning the block. Null falls back to copying.
  bool add_proposal(const ProposalMsg& msg, std::shared_ptr<const Block> block);
  bool add_notarization_share(const NotarizationShareMsg& msg);
  bool add_notarization(const NotarizationMsg& msg);
  bool add_finalization_share(const FinalizationShareMsg& msg);
  bool add_finalization(const FinalizationMsg& msg);

  // --- classification ---
  const Block* block(const Hash& h) const;
  bool is_authentic(const Hash& h) const { return authentic_.count(h) > 0; }
  bool is_valid(const Hash& h) const;
  bool is_notarized(const Hash& h) const;
  bool is_finalized(const Hash& h) const;

  // --- queries used by the protocol logic ---
  /// Hashes of valid round-k blocks currently in the pool.
  std::vector<Hash> valid_blocks_at(Round round) const;
  /// Hashes of notarized round-k blocks (round 0: root).
  std::vector<Hash> notarized_blocks_at(Round round) const;
  /// A valid round-k block with a full set of >= n-t notarization shares but
  /// no notarization yet (Fig. 1 clause (a), combine case).
  std::optional<Hash> combinable_notarization_at(Round round) const;
  /// Same for finalization shares (Fig. 2 case (ii)), restricted to rounds
  /// greater than `above_round`.
  std::optional<Hash> combinable_finalization_above(Round above_round) const;
  /// A finalized block at round > above_round, if any.
  std::optional<Hash> finalized_above(Round above_round) const;

  /// Notarization / finalization shares for a block (canonical message only).
  std::vector<std::pair<PartyIndex, Bytes>> notarization_shares(const Block& b) const;
  std::vector<std::pair<PartyIndex, Bytes>> finalization_shares(const Block& b) const;

  /// Distinct-signer share counts, for callers deciding whether one more
  /// share is even useful (a full quorum makes further shares dead weight).
  size_t notarization_share_count(const Hash& h) const;
  size_t finalization_share_count(const Hash& h) const;

  const NotarizationMsg* notarization_for(const Hash& h) const;
  const FinalizationMsg* finalization_for(const Hash& h) const;

  /// Authenticator bytes for a known block (needed to echo it, Fig. 1 (c)).
  const Bytes* authenticator_for(const Hash& h) const;

  /// The chain of blocks ending at B with rounds > above_round, in ascending
  /// round order (above_round = 0: the whole chain from round 1). Empty if a
  /// needed block is missing from the pool.
  std::vector<const Block*> chain_to(const Hash& h, Round above_round = 0) const;

  /// Drop blocks, shares and aggregates for rounds < round (checkpointing).
  /// Nothing below the cutoff is consulted again: is_valid needs the parent
  /// block, which is pruned with its round, so retaining the parent's
  /// notarization could never rescue a verdict (survivors keep their cached
  /// verdicts). Cached validity verdicts of the pruned blocks are dropped
  /// with them, so a pruned hash cannot resurrect as "valid" if its bytes
  /// are replayed after its ancestry is gone.
  void prune_below(Round round);

  /// Install a catch-up checkpoint: a block whose ancestry this pool does
  /// not hold. The CALLER vouches for all three pieces (the CUP threshold
  /// signature binds them and the pipeline verifies each; see messages.hpp).
  /// The block is force-marked valid so subsequent rounds chain off it.
  /// Returns false only on structural mismatch (hash disagreement).
  bool install_checkpoint(const ProposalMsg& proposal, const NotarizationMsg& notarization,
                          const FinalizationMsg& finalization);

  // --- introspection for tests ---
  size_t block_count() const { return blocks_.size(); }
  size_t n() const { return n_; }
  size_t quorum() const { return quorum_; }

 private:
  size_t n_, quorum_;

  // Blocks are held by shared handle: with interning on, the handle aliases
  // the cluster-shared parsed message (one Block for all n pools); without
  // it, the pool owns a per-party copy — same observable behaviour.
  std::unordered_map<Hash, std::shared_ptr<const Block>, HashHasher> blocks_;
  std::map<Round, std::vector<Hash>> blocks_by_round_;
  std::unordered_set<Hash, HashHasher> authentic_;
  std::unordered_map<Hash, Bytes, HashHasher> authenticators_;

  // Shares keyed by block hash; the ingress pipeline only admits shares
  // matching the block's canonical signed message.
  std::unordered_map<Hash, std::map<PartyIndex, Bytes>, HashHasher> notar_shares_;
  std::unordered_map<Hash, std::map<PartyIndex, Bytes>, HashHasher> final_shares_;

  std::unordered_map<Hash, NotarizationMsg, HashHasher> notarizations_;
  std::unordered_map<Hash, FinalizationMsg, HashHasher> finalizations_;
  std::map<Round, std::vector<Hash>> notarized_by_round_;  // has aggregate (validity checked on query)
  std::map<Round, std::vector<Hash>> finalized_by_round_;

  mutable std::unordered_set<Hash, HashHasher> valid_cache_;
};

}  // namespace icc::types
