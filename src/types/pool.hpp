// The per-party message pool (paper Section 3.1/3.4).
//
// "Each party has a pool which holds the set of all messages received from
// all parties (including itself)." The pool validates every artifact's
// signatures on insertion (invalid ones are dropped — they are adversarial
// by definition) and implements the paper's block classification:
//
//   authentic  — an S_auth authenticator by the proposer is present;
//   valid      — authentic, and the parent is present and notarized
//                (recursively), or the parent is root for round-1 blocks;
//   notarized  — valid + a notarization (n-t threshold signature) present;
//   finalized  — valid + a finalization present.
//
// The paper never deletes from the pool; a real implementation checkpoints
// and garbage-collects (Section 3.1 points at PBFT). prune_below() provides
// that hook so multi-minute simulations stay within memory.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/provider.hpp"
#include "types/messages.hpp"

namespace icc::types {

class Pool {
 public:
  explicit Pool(crypto::CryptoProvider& crypto) : crypto_(&crypto) {}

  // --- insertion (returns true iff the pool state changed) ---
  bool add_proposal(const ProposalMsg& msg);
  bool add_notarization_share(const NotarizationShareMsg& msg);
  bool add_notarization(const NotarizationMsg& msg);
  bool add_finalization_share(const FinalizationShareMsg& msg);
  bool add_finalization(const FinalizationMsg& msg);

  // --- classification ---
  const Block* block(const Hash& h) const;
  bool is_authentic(const Hash& h) const { return authentic_.count(h) > 0; }
  bool is_valid(const Hash& h) const;
  bool is_notarized(const Hash& h) const;
  bool is_finalized(const Hash& h) const;

  // --- queries used by the protocol logic ---
  /// Hashes of valid round-k blocks currently in the pool.
  std::vector<Hash> valid_blocks_at(Round round) const;
  /// Hashes of notarized round-k blocks (round 0: root).
  std::vector<Hash> notarized_blocks_at(Round round) const;
  /// A valid round-k block with a full set of >= n-t notarization shares but
  /// no notarization yet (Fig. 1 clause (a), combine case).
  std::optional<Hash> combinable_notarization_at(Round round) const;
  /// Same for finalization shares (Fig. 2 case (ii)), restricted to rounds
  /// greater than `above_round`.
  std::optional<Hash> combinable_finalization_above(Round above_round) const;
  /// A finalized block at round > above_round, if any.
  std::optional<Hash> finalized_above(Round above_round) const;

  /// Notarization / finalization shares for a block (canonical message only).
  std::vector<std::pair<crypto::PartyIndex, Bytes>> notarization_shares(const Block& b) const;
  std::vector<std::pair<crypto::PartyIndex, Bytes>> finalization_shares(const Block& b) const;

  const NotarizationMsg* notarization_for(const Hash& h) const;
  const FinalizationMsg* finalization_for(const Hash& h) const;

  /// Authenticator bytes for a known block (needed to echo it, Fig. 1 (c)).
  const Bytes* authenticator_for(const Hash& h) const;

  /// The chain of blocks ending at B with rounds > above_round, in ascending
  /// round order (above_round = 0: the whole chain from round 1). Empty if a
  /// needed block is missing from the pool.
  std::vector<const Block*> chain_to(const Hash& h, Round above_round = 0) const;

  /// Drop blocks and shares for rounds < round (checkpointing). Notarization
  /// aggregates are kept (children's validity may still be checked against
  /// them); block payloads dominate memory anyway.
  void prune_below(Round round);

  /// Install a catch-up checkpoint: a block whose ancestry this pool does
  /// not hold, vouched for by externally-verified notarization/finalization
  /// aggregates (the CUP threshold signature binds them; see messages.hpp).
  /// The block is force-marked valid so subsequent rounds chain off it.
  /// Returns false if any piece fails its own signature verification.
  bool install_checkpoint(const ProposalMsg& proposal, const NotarizationMsg& notarization,
                          const FinalizationMsg& finalization);

  // --- introspection for tests ---
  size_t block_count() const { return blocks_.size(); }

 private:
  Bytes canonical_notarization_msg(const NotarizationShareMsg& m) const {
    return notarization_message(m.round, m.proposer, m.block_hash);
  }

  crypto::CryptoProvider* crypto_;

  std::unordered_map<Hash, Block, HashHasher> blocks_;
  std::map<Round, std::vector<Hash>> blocks_by_round_;
  std::unordered_set<Hash, HashHasher> authentic_;
  std::unordered_map<Hash, Bytes, HashHasher> authenticators_;

  // Shares keyed by block hash; only shares matching the block's canonical
  // signed message are stored (mismatched claims fail verification).
  std::unordered_map<Hash, std::map<crypto::PartyIndex, Bytes>, HashHasher> notar_shares_;
  std::unordered_map<Hash, std::map<crypto::PartyIndex, Bytes>, HashHasher> final_shares_;

  std::unordered_map<Hash, NotarizationMsg, HashHasher> notarizations_;
  std::unordered_map<Hash, FinalizationMsg, HashHasher> finalizations_;
  std::map<Round, std::vector<Hash>> notarized_by_round_;  // has aggregate (validity checked on query)
  std::map<Round, std::vector<Hash>> finalized_by_round_;

  mutable std::unordered_set<Hash, HashHasher> valid_cache_;
};

}  // namespace icc::types
