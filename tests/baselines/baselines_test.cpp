// Baseline protocols: correctness smoke tests plus the structural properties
// the ICC paper cites when comparing against them (Section 1.1).
#include <gtest/gtest.h>

#include "harness/baseline_cluster.hpp"

namespace icc::harness {
namespace {

BaselineOptions options(BaselineKind kind, size_t n, size_t t, uint64_t seed = 1) {
  BaselineOptions o;
  o.kind = kind;
  o.n = n;
  o.t = t;
  o.seed = seed;
  o.delta_bnd = sim::msec(100);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

// ---------------------------------------------------------------------------
// HotStuff
// ---------------------------------------------------------------------------

TEST(HotStuffTest, CommitsAndAgrees) {
  BaselineCluster c(options(BaselineKind::kHotStuff, 4, 1));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 20u);
  EXPECT_TRUE(c.outputs_consistent());
}

TEST(HotStuffTest, ThroughputIsTwoDeltaPerBlock) {
  // Views pipeline at ~2*delta (vote trip + proposal trip) per block.
  auto o = options(BaselineKind::kHotStuff, 4, 1, 2);
  BaselineCluster c(o);
  c.run_for(sim::seconds(5));
  // 5 s / (2 * 10 ms) = 250 views max; expect a large fraction.
  EXPECT_GE(c.party(0)->committed().size(), 150u);
}

TEST(HotStuffTest, LatencyIsAboutSixDelta) {
  // Paper Section 1.1: chained HotStuff commit latency is 6*delta (vs ICC0's
  // 3*delta).
  BaselineCluster c(options(BaselineKind::kHotStuff, 4, 1, 3));
  c.run_for(sim::seconds(5));
  ASSERT_FALSE(c.latencies().empty());
  EXPECT_GE(c.avg_latency_ms(), 50.0);
  EXPECT_LE(c.avg_latency_ms(), 75.0);
}

TEST(HotStuffTest, SurvivesCrashedLeaderViaPacemaker) {
  // Note n = 5: the 3-chain commit rule needs four *consecutive* views whose
  // leaders (3 proposers + the vote collector) are all alive; with n = 4 and
  // round-robin rotation, one crashed replica appears in every such window
  // and vanilla chained HotStuff never commits — an interesting fragility
  // that ICC avoids by construction (every round commits with probability
  // >= 2/3 regardless of history).
  auto o = options(BaselineKind::kHotStuff, 5, 1, 4);
  o.crashed = {1};
  BaselineCluster c(o);
  c.run_for(sim::seconds(20));
  EXPECT_GE(c.min_honest_committed(), 10u);
  EXPECT_TRUE(c.outputs_consistent());
}

TEST(HotStuffTest, RoundRobinWithFourRepilcasAndOneCrashNeverCommits) {
  // The flip side documented above, kept as a regression pin: n = 4 with a
  // crashed replica makes the 3-chain rule unsatisfiable under round-robin.
  auto o = options(BaselineKind::kHotStuff, 4, 1, 5);
  o.crashed = {1};
  BaselineCluster c(o);
  c.run_for(sim::seconds(20));
  EXPECT_EQ(c.min_honest_committed(), 0u);
}

// ---------------------------------------------------------------------------
// Tendermint
// ---------------------------------------------------------------------------

TEST(TendermintTest, CommitsAndAgrees) {
  BaselineCluster c(options(BaselineKind::kTendermint, 4, 1));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 5u);
  EXPECT_TRUE(c.outputs_consistent());
}

TEST(TendermintTest, NotOptimisticallyResponsive) {
  // Height rate is bounded by timeout_commit (~delta_bnd), NOT by the actual
  // network delay — the paper's core criticism.
  auto o = options(BaselineKind::kTendermint, 4, 1, 2);
  o.delta_bnd = sim::msec(500);  // timeouts >> network delay (10 ms)
  BaselineCluster c(o);
  c.run_for(sim::seconds(10));
  size_t committed = c.party(0)->committed().size();
  // Max possible heights if responsive: ~10s / 30ms > 300. With the
  // mandatory 500 ms wait: <= 10s / 500ms = 20.
  EXPECT_LE(committed, 21u);
  EXPECT_GE(committed, 10u);
}

TEST(TendermintTest, NilRoundsSkipCrashedProposer) {
  auto o = options(BaselineKind::kTendermint, 4, 1, 3);
  o.crashed = {2};
  BaselineCluster c(o);
  c.run_for(sim::seconds(20));
  EXPECT_GE(c.min_honest_committed(), 5u);
  EXPECT_TRUE(c.outputs_consistent());
}

// ---------------------------------------------------------------------------
// PBFT
// ---------------------------------------------------------------------------

TEST(PbftTest, CommitsAndAgrees) {
  BaselineCluster c(options(BaselineKind::kPbft, 4, 1));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 20u);
  EXPECT_TRUE(c.outputs_consistent());
}

TEST(PbftTest, StableLeaderIsFastWhenHonest) {
  // Sequential instances at ~3*delta each.
  BaselineCluster c(options(BaselineKind::kPbft, 4, 1, 2));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.party(0)->committed().size(), 100u);
}

TEST(PbftTest, SilentLeaderStallsUntilViewChange) {
  // The robustness story of [15]: PBFT's throughput drops to zero under a
  // silent leader for the whole view-change timeout.
  auto o = options(BaselineKind::kPbft, 4, 1, 3);
  o.crashed = {0};  // leader of view 0
  BaselineCluster c(o);
  c.run_for(sim::msec(350));  // view timeout is 4 * delta_bnd = 400 ms
  EXPECT_EQ(c.min_honest_committed(), 0u);  // nothing until the view change
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 20u);  // then the new leader runs fast
  EXPECT_TRUE(c.outputs_consistent());
}

TEST(PbftTest, ViewNumberAdvancesPastCrashedLeaders) {
  auto o = options(BaselineKind::kPbft, 7, 2, 4);
  o.crashed = {0, 1};  // two consecutive crashed leaders
  BaselineCluster c(o);
  c.run_for(sim::seconds(20));
  EXPECT_GE(c.min_honest_committed(), 10u);
  auto* p = dynamic_cast<baselines::PbftParty*>(c.party(2));
  ASSERT_NE(p, nullptr);
  EXPECT_GE(p->view(), 2u);
}

}  // namespace
}  // namespace icc::harness
