#include "codec/gf256.hpp"

#include <gtest/gtest.h>

namespace icc::codec {
namespace {

TEST(GF256Test, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(GF256::add(7, 7), 0);
  EXPECT_EQ(GF256::sub(5, 3), GF256::add(5, 3));
}

TEST(GF256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<uint8_t>(a), 1), a);
    EXPECT_EQ(GF256::mul(static_cast<uint8_t>(a), 0), 0);
  }
}

TEST(GF256Test, KnownProduct) {
  // 0x53 * 0xCA = 0x01 under the AES polynomial (classic AES inverse pair).
  EXPECT_EQ(GF256::mul(0x53, 0xca), 0x01);
  EXPECT_EQ(GF256::mul(0x02, 0x80), 0x1b);  // reduction kicks in
}

TEST(GF256Test, MulCommutativeAssociative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      uint8_t ua = static_cast<uint8_t>(a), ub = static_cast<uint8_t>(b);
      EXPECT_EQ(GF256::mul(ua, ub), GF256::mul(ub, ua));
      for (int c = 1; c < 256; c += 63) {
        uint8_t uc = static_cast<uint8_t>(c);
        EXPECT_EQ(GF256::mul(GF256::mul(ua, ub), uc), GF256::mul(ua, GF256::mul(ub, uc)));
      }
    }
  }
}

TEST(GF256Test, Distributive) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 17) {
      for (int c = 0; c < 256; c += 19) {
        uint8_t ua = static_cast<uint8_t>(a), ub = static_cast<uint8_t>(b),
                uc = static_cast<uint8_t>(c);
        EXPECT_EQ(GF256::mul(ua, GF256::add(ub, uc)),
                  GF256::add(GF256::mul(ua, ub), GF256::mul(ua, uc)));
      }
    }
  }
}

TEST(GF256Test, InverseForAllNonZero) {
  for (int a = 1; a < 256; ++a) {
    uint8_t ua = static_cast<uint8_t>(a);
    EXPECT_EQ(GF256::mul(ua, GF256::inv(ua)), 1) << "a = " << a;
  }
}

TEST(GF256Test, DivMatchesMulByInverse) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 9) {
      uint8_t ua = static_cast<uint8_t>(a), ub = static_cast<uint8_t>(b);
      EXPECT_EQ(GF256::div(ua, ub), GF256::mul(ua, GF256::inv(ub)));
    }
  }
}

TEST(GF256Test, DivisionByZeroThrows) {
  EXPECT_THROW(GF256::div(1, 0), std::domain_error);
  EXPECT_THROW(GF256::inv(0), std::domain_error);
}

TEST(GF256Test, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 23) {
    uint8_t ua = static_cast<uint8_t>(a);
    uint8_t acc = 1;
    for (unsigned e = 0; e < 10; ++e) {
      EXPECT_EQ(GF256::pow(ua, e), acc);
      acc = GF256::mul(acc, ua);
    }
  }
  EXPECT_EQ(GF256::pow(0, 0), 1);
  EXPECT_EQ(GF256::pow(0, 5), 0);
}

TEST(GF256Test, GeneratorHasFullOrder) {
  // 3 must generate all 255 non-zero elements.
  uint8_t x = 1;
  for (int i = 0; i < 254; ++i) {
    x = GF256::mul(x, GF256::kGenerator);
    EXPECT_NE(x, 1) << "order divides " << (i + 1);
  }
  EXPECT_EQ(GF256::mul(x, GF256::kGenerator), 1);
}

}  // namespace
}  // namespace icc::codec
