#include "codec/merkle.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace icc::codec {
namespace {

std::vector<Bytes> make_leaves(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < count; ++i) leaves.push_back(rng.bytes(64 + i));
  return leaves;
}

TEST(MerkleTest, SingleLeaf) {
  auto leaves = make_leaves(1, 1);
  MerkleTree tree(leaves);
  auto proof = tree.prove(0);
  EXPECT_TRUE(proof.path.empty());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), 1, leaves[0], proof));
}

TEST(MerkleTest, AllLeavesProveForVariousSizes) {
  for (size_t count : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u, 40u}) {
    auto leaves = make_leaves(count, count);
    MerkleTree tree(leaves);
    for (size_t i = 0; i < count; ++i) {
      auto proof = tree.prove(i);
      EXPECT_TRUE(MerkleTree::verify(tree.root(), count, leaves[i], proof))
          << "count " << count << " leaf " << i;
    }
  }
}

TEST(MerkleTest, WrongLeafDataRejected) {
  auto leaves = make_leaves(8, 2);
  MerkleTree tree(leaves);
  auto proof = tree.prove(3);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 8, leaves[4], proof));
}

TEST(MerkleTest, WrongIndexRejected) {
  auto leaves = make_leaves(8, 3);
  MerkleTree tree(leaves);
  auto proof = tree.prove(3);
  proof.leaf_index = 5;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 8, leaves[3], proof));
}

TEST(MerkleTest, TamperedPathRejected) {
  auto leaves = make_leaves(8, 4);
  MerkleTree tree(leaves);
  auto proof = tree.prove(2);
  proof.path[1][0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 8, leaves[2], proof));
}

TEST(MerkleTest, WrongRootRejected) {
  auto leaves = make_leaves(4, 5);
  MerkleTree tree(leaves);
  auto proof = tree.prove(0);
  MerkleRoot bad = tree.root();
  bad[0] ^= 1;
  EXPECT_FALSE(MerkleTree::verify(bad, 4, leaves[0], proof));
}

TEST(MerkleTest, PathLengthMismatchRejected) {
  auto leaves = make_leaves(8, 6);
  MerkleTree tree(leaves);
  auto proof = tree.prove(0);
  proof.path.pop_back();
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 8, leaves[0], proof));
  proof = tree.prove(0);
  proof.path.push_back(proof.path[0]);
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 8, leaves[0], proof));
}

TEST(MerkleTest, OutOfRangeIndexRejected) {
  auto leaves = make_leaves(4, 7);
  MerkleTree tree(leaves);
  auto proof = tree.prove(1);
  proof.leaf_index = 9;
  EXPECT_FALSE(MerkleTree::verify(tree.root(), 4, leaves[1], proof));
}

TEST(MerkleTest, DistinctLeavesDistinctRoots) {
  auto a = make_leaves(4, 8);
  auto b = make_leaves(4, 9);
  EXPECT_NE(MerkleTree(a).root(), MerkleTree(b).root());
}

TEST(MerkleTest, LeafNodeDomainSeparation) {
  // A single leaf whose content equals an interior-node preimage must not
  // produce the same root as the two-leaf tree it mimics (0x00/0x01 prefix).
  auto leaves = make_leaves(2, 10);
  MerkleTree two(leaves);
  // Forged "leaf" = concatenation of the two leaf hashes.
  Bytes forged;
  auto h0 = MerkleTree::hash_leaf(leaves[0]);
  auto h1 = MerkleTree::hash_leaf(leaves[1]);
  append(forged, BytesView(h0.data(), 32));
  append(forged, BytesView(h1.data(), 32));
  MerkleTree one({forged});
  EXPECT_NE(one.root(), two.root());
}

TEST(MerkleTest, ProofSerializationRoundTrip) {
  auto leaves = make_leaves(13, 11);
  MerkleTree tree(leaves);
  auto proof = tree.prove(7);
  Bytes ser = proof.serialize();
  auto back = MerkleProof::deserialize(ser);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(MerkleTree::verify(tree.root(), 13, leaves[7], *back));
}

TEST(MerkleTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MerkleProof::deserialize(Bytes(3)).has_value());
  Bytes huge;
  put_u32le(huge, 0);
  put_u32le(huge, 1000);  // absurd path length
  EXPECT_FALSE(MerkleProof::deserialize(huge).has_value());
}

TEST(MerkleTest, ProveOutOfRangeThrows) {
  auto leaves = make_leaves(4, 12);
  MerkleTree tree(leaves);
  EXPECT_THROW(tree.prove(4), std::out_of_range);
}

TEST(MerkleTest, EmptyTreeRejected) {
  EXPECT_THROW(MerkleTree(std::vector<Bytes>{}), std::invalid_argument);
}

}  // namespace
}  // namespace icc::codec
