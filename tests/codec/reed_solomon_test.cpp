#include "codec/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace icc::codec {
namespace {

Bytes random_data(size_t len, uint64_t seed) {
  Xoshiro256 rng(seed);
  return rng.bytes(len);
}

TEST(ReedSolomonTest, SystematicFragmentsAreData) {
  ReedSolomon rs(3, 7);
  Bytes data = random_data(300, 1);
  auto frags = rs.encode(data);
  ASSERT_EQ(frags.size(), 7u);
  Bytes reassembled;
  for (size_t i = 0; i < 3; ++i) append(reassembled, BytesView(frags[i].data));
  reassembled.resize(data.size());
  EXPECT_EQ(reassembled, data);
}

TEST(ReedSolomonTest, DecodeFromDataFragments) {
  ReedSolomon rs(4, 10);
  Bytes data = random_data(1000, 2);
  auto frags = rs.encode(data);
  std::vector<Fragment> subset(frags.begin(), frags.begin() + 4);
  auto decoded = rs.decode(subset, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonTest, DecodeFromParityOnly) {
  ReedSolomon rs(4, 10);
  Bytes data = random_data(777, 3);
  auto frags = rs.encode(data);
  std::vector<Fragment> subset(frags.begin() + 6, frags.begin() + 10);
  auto decoded = rs.decode(subset, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonTest, DecodeFromMixedFragments) {
  ReedSolomon rs(5, 9);
  Bytes data = random_data(512, 4);
  auto frags = rs.encode(data);
  std::vector<Fragment> subset = {frags[0], frags[8], frags[2], frags[7], frags[4]};
  auto decoded = rs.decode(subset, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonTest, TooFewFragmentsFails) {
  ReedSolomon rs(4, 10);
  Bytes data = random_data(100, 5);
  auto frags = rs.encode(data);
  std::vector<Fragment> subset(frags.begin(), frags.begin() + 3);
  EXPECT_FALSE(rs.decode(subset, data.size()).has_value());
}

TEST(ReedSolomonTest, DuplicateIndicesDontCount) {
  ReedSolomon rs(3, 6);
  Bytes data = random_data(90, 6);
  auto frags = rs.encode(data);
  std::vector<Fragment> subset = {frags[0], frags[0], frags[0], frags[1]};
  EXPECT_FALSE(rs.decode(subset, data.size()).has_value());
}

TEST(ReedSolomonTest, OutOfRangeIndicesIgnored) {
  ReedSolomon rs(2, 4);
  Bytes data = random_data(64, 7);
  auto frags = rs.encode(data);
  Fragment bogus{200, Bytes(frags[0].data.size(), 0xaa)};
  std::vector<Fragment> subset = {bogus, frags[1], frags[3]};
  auto decoded = rs.decode(subset, data.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, data);
}

TEST(ReedSolomonTest, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(5, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(1, 256), std::invalid_argument);
}

TEST(ReedSolomonTest, UnalignedDataLengthPadsCorrectly) {
  ReedSolomon rs(3, 5);
  for (size_t len : {1u, 2u, 3u, 4u, 100u, 101u}) {
    Bytes data = random_data(len, 100 + len);
    auto frags = rs.encode(data);
    std::vector<Fragment> subset = {frags[4], frags[1], frags[3]};
    auto decoded = rs.decode(subset, len);
    ASSERT_TRUE(decoded.has_value()) << "len " << len;
    EXPECT_EQ(*decoded, data) << "len " << len;
  }
}

TEST(ReedSolomonTest, EmptyDataRoundTrips) {
  ReedSolomon rs(2, 4);
  auto frags = rs.encode(Bytes{});
  EXPECT_EQ(frags[0].data.size(), 0u);
  std::vector<Fragment> subset(frags.begin(), frags.begin() + 2);
  auto decoded = rs.decode(subset, 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

// Property sweep: BFT-shaped (k = n - 2t) configurations, random erasures.
class RsParamTest : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(RsParamTest, RandomErasuresReconstruct) {
  auto [k, n, data_len] = GetParam();
  ReedSolomon rs(k, n);
  Bytes data = random_data(data_len, 31 * k + n + data_len);
  auto frags = rs.encode(data);
  Xoshiro256 rng(k * 1000 + n);
  for (int trial = 0; trial < 10; ++trial) {
    std::shuffle(frags.begin(), frags.end(), rng);
    std::vector<Fragment> subset(frags.begin(), frags.begin() + k);
    auto decoded = rs.decode(subset, data.size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RsParamTest,
    ::testing::Values(std::make_tuple(2, 4, 1000),      // n=4, t=1
                      std::make_tuple(5, 13, 4096),     // n=13, t=4
                      std::make_tuple(14, 40, 8192),    // n=40, t=13
                      std::make_tuple(1, 3, 128),       // k=1 degenerate: replication
                      std::make_tuple(7, 7, 700),       // no parity
                      std::make_tuple(85, 255, 4096))); // field-limit shape

}  // namespace
}  // namespace icc::codec
