// Adversarial robustness beyond the structured Byzantine behaviours: raw
// garbage injection, replay, partitions/laggards, and invariant checks under
// combined attacks. The bar: honest parties never crash, never violate
// safety, and keep making progress.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::harness {
namespace {

using consensus::ByzantineBehavior;

/// Broadcasts malformed and semi-formed junk at a steady rate, and replays
/// every message it receives back to everyone (amplification + replay).
class GarbageSpammer : public sim::Process {
 public:
  void start(sim::Context& ctx) override { tick(ctx); }

  void receive(sim::Context& ctx, sim::PartyIndex, BytesView payload) override {
    // Replay everything verbatim (stale/duplicate injection).
    if (replayed_ < 2000) {
      ++replayed_;
      ctx.broadcast(Bytes(payload.begin(), payload.end()));
    }
  }

 private:
  void tick(sim::Context& ctx) {
    // 1) pure noise
    ctx.broadcast(ctx.rng().bytes(64));
    // 2) valid envelope, garbage crypto
    types::NotarizationShareMsg ns;
    ns.round = static_cast<types::Round>(ctx.rng().below(50));
    ns.proposer = static_cast<types::PartyIndex>(ctx.rng().below(7));
    ns.signer = static_cast<types::PartyIndex>(ctx.rng().below(7));
    ns.share = ctx.rng().bytes(48);
    ctx.broadcast(types::serialize_message(types::Message{ns}));
    // 3) an unauthenticated block
    types::ProposalMsg pm;
    pm.block.round = static_cast<types::Round>(1 + ctx.rng().below(50));
    pm.block.proposer = static_cast<types::PartyIndex>(ctx.rng().below(7));
    pm.block.parent_hash = types::root_hash();
    pm.block.payload = ctx.rng().bytes(100);
    pm.authenticator = ctx.rng().bytes(64);
    ctx.broadcast(types::serialize_message(types::Message{pm}));

    sim::Context c = ctx;
    ctx.set_timer(sim::msec(20), [this, c]() mutable { tick(c); });
  }

  int replayed_ = 0;
};

TEST(AdversarialTest, GarbageAndReplaySpamIsHarmless) {
  ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 71;
  o.delta_bnd = sim::msec(100);
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  o.custom_process = [](sim::PartyIndex i) -> std::unique_ptr<sim::Process> {
    if (i == 1 || i == 4) return std::make_unique<GarbageSpammer>();
    return nullptr;
  };
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 10u);
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
}

/// Delay model that cuts one party off from everyone for a time window
/// (extreme one-node partition), then heals.
class PartitionedDelay final : public sim::DelayModel {
 public:
  PartitionedDelay(sim::PartyIndex victim, sim::Time heal_at)
      : victim_(victim), heal_at_(heal_at) {}

  sim::Duration delay(sim::PartyIndex from, sim::PartyIndex to, sim::Time now, size_t,
                      Xoshiro256&) override {
    if ((from == victim_ || to == victim_) && now < heal_at_) {
      // Deliver only after healing (eventual delivery preserved).
      return (heal_at_ - now) + sim::msec(10);
    }
    return sim::msec(10);
  }

 private:
  sim::PartyIndex victim_;
  sim::Time heal_at_;
};

TEST(AdversarialTest, PartitionedReplicaCatchesUp) {
  ClusterOptions o;
  o.n = 4;
  o.t = 1;
  o.seed = 72;
  o.delta_bnd = sim::msec(100);
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t) -> std::unique_ptr<sim::DelayModel> {
    return std::make_unique<PartitionedDelay>(3, sim::seconds(5));
  };
  Cluster c(o);
  c.run_for(sim::seconds(4));
  // During the partition the victim is stuck near round 1...
  EXPECT_LE(c.party(3)->current_round(), 2u);
  size_t others = c.party(0)->committed().size();
  EXPECT_GE(others, 10u);  // ...while the other three keep going (n-t = 3).
  c.run_for(sim::seconds(6));
  // After healing, the victim replays the backlog and catches up fully.
  EXPECT_GE(c.party(3)->committed().size(), others);
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
}

TEST(AdversarialTest, CombinedAttackAtThreshold) {
  // t = 4 corrupt out of 13: one equivocator, one censor, one withholder,
  // one crash — all at once, under jittery delays.
  ClusterOptions o;
  o.n = 13;
  o.t = 4;
  o.seed = 73;
  o.delta_bnd = sim::msec(150);
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::UniformDelay>(sim::msec(2), sim::msec(25));
  };
  ByzantineBehavior eq;
  eq.equivocate = true;
  ByzantineBehavior censor;
  censor.empty_payload = true;
  ByzantineBehavior withhold;
  withhold.withhold_notarization = true;
  withhold.withhold_finalization = true;
  o.corrupt = {{1, eq}, {5, censor}, {8, withhold}, {11, Crashed{}}};
  Cluster c(o);
  c.run_for(sim::seconds(15));
  EXPECT_GE(c.min_honest_committed(), 10u);
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
}

TEST(AdversarialTest, RepeatedAsynchronyWindows) {
  ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 74;
  o.delta_bnd = sim::msec(100);
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  consensus::ByzantineBehavior eq;
  eq.equivocate = true;
  o.corrupt = {{2, eq}, {5, eq}};
  Cluster c(o);
  for (int i = 0; i < 8; ++i) {
    c.sim().network().synchrony().add_async_window(sim::seconds(2 * i) + sim::msec(700),
                                                   sim::seconds(2 * i + 2));
  }
  c.run_for(sim::seconds(20));
  EXPECT_GE(c.min_honest_committed(), 5u);
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
}

/// Seed sweep: the safety invariants must hold for every random schedule.
class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, InvariantsHoldUnderRandomSchedules) {
  ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = GetParam();
  o.delta_bnd = sim::msec(80);
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t seed) {
    return std::make_unique<sim::UniformDelay>(sim::msec(1) + seed % 5, sim::msec(40));
  };
  ByzantineBehavior eq;
  eq.equivocate = true;
  eq.withhold_finalization = true;
  o.corrupt = {{GetParam() % 7 == 0 ? 1u : static_cast<sim::PartyIndex>(GetParam() % 7), eq},
               {6, Crashed{}}};
  Cluster c(o);
  c.run_for(sim::seconds(8));
  EXPECT_GE(c.min_honest_committed(), 3u);
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808, 909,
                                           1010, 1111, 1212));

}  // namespace
}  // namespace icc::harness
