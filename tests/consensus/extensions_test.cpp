// Tests of the protocol extensions: catch-up packages (state sync past
// pruned history) and adaptive delay bounds (unknown Delta_bnd).
#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::harness {
namespace {

/// One party cut off from everyone until heal_at, then normal. Messages sent
/// to the victim during the partition are effectively DROPPED (pushed past
/// any experiment horizon): this models a node rejoining after downtime — a
/// real network does not retransmit weeks of history, which is exactly why
/// catch-up packages exist.
class PartitionOne final : public sim::DelayModel {
 public:
  PartitionOne(sim::PartyIndex victim, sim::Time heal_at, sim::Duration base)
      : victim_(victim), heal_at_(heal_at), base_(base) {}

  sim::Duration delay(sim::PartyIndex from, sim::PartyIndex to, sim::Time now, size_t,
                      Xoshiro256&) override {
    if ((from == victim_ || to == victim_) && now < heal_at_) {
      return sim::seconds(100000);  // beyond any experiment horizon
    }
    return base_;
  }

 private:
  sim::PartyIndex victim_;
  sim::Time heal_at_;
  sim::Duration base_;
};

// ---------------------------------------------------------------------------
// Catch-up packages
// ---------------------------------------------------------------------------

TEST(CupTest, PartiesAssemblePackages) {
  ClusterOptions o;
  o.n = 4;
  o.t = 1;
  o.seed = 81;
  o.delta_bnd = sim::msec(100);
  o.cup_interval = 5;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  Cluster c(o);
  c.run_for(sim::seconds(5));
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(c.party(i)->latest_cup().has_value()) << "party " << i;
    EXPECT_GE(c.party(i)->latest_cup()->round, 5u);
    EXPECT_EQ(c.party(i)->latest_cup()->round % 5, 0u);
  }
  EXPECT_FALSE(c.check_safety().has_value());
}

TEST(CupTest, LaggardRejoinsPastPrunedHistory) {
  // Party 3 is partitioned for 20 s while the others run WITH pruning
  // (prune_lag 4 << the ~160 rounds they complete): replaying history is
  // impossible, only a CUP can bring party 3 back.
  ClusterOptions o;
  o.n = 4;
  o.t = 1;
  o.seed = 82;
  o.delta_bnd = sim::msec(100);
  o.cup_interval = 10;
  o.lag_threshold = 8;
  o.prune_lag = 4;
  o.delay_model = [](size_t, uint64_t) -> std::unique_ptr<sim::DelayModel> {
    return std::make_unique<PartitionOne>(3, sim::seconds(20), sim::msec(10));
  };
  Cluster c(o);
  c.run_for(sim::seconds(20));
  Round others_round = c.party(0)->current_round();
  ASSERT_GE(others_round, 100u);  // healthy majority ran far ahead
  EXPECT_LE(c.party(3)->current_round(), 2u);

  c.run_for(sim::seconds(10));
  // After healing, party 3 jumped via CUP and now tracks the tip.
  EXPECT_GT(c.party(3)->current_round(), others_round);
  EXPECT_GE(c.party(3)->last_finalized_round(), others_round - o.lag_threshold - 2);
  // Round-aligned agreement holds (party 3's history starts at a checkpoint).
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  // And it actively participates again: it commits new rounds live.
  size_t committed_after_heal = c.party(3)->committed().size();
  c.run_for(sim::seconds(5));
  EXPECT_GT(c.party(3)->committed().size(), committed_after_heal + 5);
}

TEST(CupTest, WithoutCupsLaggardStaysStuckWhenHistoryPruned) {
  // The control run: same partition, pruning on, CUPs off. The laggard can
  // never validate round 2+ blocks (parents pruned everywhere) and stays
  // near round 1 — demonstrating why the mechanism is necessary.
  ClusterOptions o;
  o.n = 4;
  o.t = 1;
  o.seed = 83;
  o.delta_bnd = sim::msec(100);
  o.cup_interval = 0;
  o.prune_lag = 4;
  o.delay_model = [](size_t, uint64_t) -> std::unique_ptr<sim::DelayModel> {
    return std::make_unique<PartitionOne>(3, sim::seconds(20), sim::msec(10));
  };
  Cluster c(o);
  c.run_for(sim::seconds(35));
  EXPECT_GE(c.party(0)->current_round(), 100u);
  // The laggard received the backlog of round-1 traffic but cannot progress
  // far: blocks for later rounds reference pruned ancestors. (It may limp a
  // few rounds forward from still-buffered early traffic.)
  EXPECT_LT(c.party(3)->current_round(), 30u);
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
}

TEST(CupTest, ForgedCupRejected) {
  ClusterOptions o;
  o.n = 4;
  o.t = 1;
  o.seed = 84;
  o.delta_bnd = sim::msec(100);
  o.cup_interval = 5;
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  Cluster c(o);
  c.run_for(sim::seconds(3));
  Round before = c.party(0)->last_finalized_round();

  // A forged CUP claiming a far-future round with a bogus aggregate.
  types::CupMsg forged;
  forged.round = 1000;
  types::ProposalMsg pm;
  pm.block.round = 1000;
  pm.block.proposer = 0;
  pm.block.parent_hash = types::root_hash();
  pm.authenticator = Bytes(64, 9);
  forged.proposal = types::serialize_message(types::Message{pm});
  forged.notarization = types::serialize_message(
      types::Message{types::NotarizationMsg{1000, 0, pm.block.hash(), Bytes(48, 1)}});
  forged.finalization = types::serialize_message(
      types::Message{types::FinalizationMsg{1000, 0, pm.block.hash(), Bytes(48, 2)}});
  forged.beacon_value = Bytes(32, 3);
  forged.aggregate = Bytes(48, 4);
  Bytes wire = types::serialize_message(types::Message{forged});
  c.sim().engine().schedule_at(c.sim().engine().now(), [&c, wire] {
    sim::Context ctx(c.sim().network(), 1);
    ctx.broadcast(wire);
  });
  c.run_for(sim::seconds(3));
  // Nobody jumped to the forged round 1000; progress stayed organic.
  for (size_t i = 0; i < 4; ++i) EXPECT_LT(c.party(i)->current_round(), 900u);
  EXPECT_GT(c.party(0)->last_finalized_round(), before);
  EXPECT_FALSE(c.check_safety().has_value());
}

// ---------------------------------------------------------------------------
// Adaptive delay bounds
// ---------------------------------------------------------------------------

double finalization_ratio(const Cluster& c) {
  const auto* p = c.party(0);
  if (p->current_round() <= 1) return 0.0;
  return static_cast<double>(p->committed().size()) /
         static_cast<double>(p->current_round());
}

TEST(AdaptiveDelayTest, GrosslyUnderestimatedBoundRecovers) {
  // Delta_bnd starts at 1 ms while the real delay is 20 ms. Without
  // adaptation most rounds never finalize (parties endorse several ranks'
  // blocks, so the N ⊆ {B} finalization condition usually fails).
  auto run = [](bool adaptive) {
    ClusterOptions o;
    o.n = 7;
    o.t = 2;
    o.seed = 85;
    o.delta_bnd = sim::msec(1);  // wrong by 20x
    o.prune_lag = 0;
    o.adaptive.enabled = adaptive;
    o.adaptive.floor = sim::msec(1);
    o.delay_model = [](size_t, uint64_t) {
      return std::make_unique<sim::FixedDelay>(sim::msec(20));
    };
    Cluster c(o);
    c.run_for(sim::seconds(30));
    EXPECT_FALSE(c.check_safety().has_value());
    return std::make_pair(finalization_ratio(c), c.party(0)->delta_bound());
  };
  auto [fixed_ratio, fixed_bound] = run(false);
  auto [adaptive_ratio, adaptive_bound] = run(true);
  EXPECT_EQ(fixed_bound, sim::msec(1));  // stays wrong
  // The bound settles at the equilibrium where rounds are mostly clean
  // (grow/decay balance just under the needed 2*Delta ≈ delta + epsilon);
  // what matters is that it left the gross underestimate far behind.
  EXPECT_GT(adaptive_bound, sim::msec(5));
  EXPECT_GT(adaptive_ratio, 0.8) << "adaptive bound should restore finalization";
  EXPECT_LT(fixed_ratio, 0.6) << "underestimated fixed bound must visibly hurt";
  EXPECT_GT(adaptive_ratio, fixed_ratio + 0.25);
}

TEST(AdaptiveDelayTest, DecaysTowardFloorOnCleanRounds) {
  ClusterOptions o;
  o.n = 4;
  o.t = 1;
  o.seed = 86;
  o.delta_bnd = sim::msec(500);  // much larger than needed
  o.prune_lag = 0;
  o.adaptive.enabled = true;
  o.adaptive.floor = sim::msec(30);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(5));
  };
  Cluster c(o);
  c.run_for(sim::seconds(20));
  // Clean rounds decayed the bound well below the initial overestimate.
  EXPECT_LT(c.party(0)->delta_bound(), sim::msec(100));
  EXPECT_GE(c.party(0)->delta_bound(), sim::msec(30));
  EXPECT_FALSE(c.check_safety().has_value());
}

TEST(AdaptiveDelayTest, ByzantineLeadersCannotBreakSafetyViaAdaptation) {
  ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 87;
  o.delta_bnd = sim::msec(50);
  o.prune_lag = 0;
  o.adaptive.enabled = true;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  consensus::ByzantineBehavior b;
  b.equivocate = true;  // forces unclean rounds -> adversarial growth
  o.corrupt = {{1, b}, {4, b}};
  Cluster c(o);
  c.run_for(sim::seconds(20));
  EXPECT_GE(c.min_honest_committed(), 10u);
  EXPECT_FALSE(c.check_safety().has_value());
  EXPECT_FALSE(c.check_p2().has_value());
  // Growth is capped.
  EXPECT_LE(c.party(0)->delta_bound(), o.adaptive.cap);
}

}  // namespace
}  // namespace icc::harness
