// White-box tests of the Fig. 1 clause semantics, driving a single honest
// Icc0Party with hand-crafted adversarial message sequences and observing
// its broadcasts:
//   * clause (c) endorsement: exactly one notarization share per rank;
//   * equivocation: echo of the second block, rank disqualification, NO
//     second share for that rank, fallback to the next rank;
//   * clause (a): finalization share only when N ⊆ {B}.
#include <gtest/gtest.h>

#include "consensus/icc0.hpp"
#include "consensus/permutation.hpp"
#include "sim/simulation.hpp"

namespace icc::consensus {
namespace {

using types::Message;

/// Captures everything a party broadcasts.
class Recorder : public sim::Process {
 public:
  void start(sim::Context&) override {}
  void receive(sim::Context&, sim::PartyIndex from, BytesView payload) override {
    auto msg = types::parse_message(payload);
    if (msg) received.emplace_back(from, *msg);
  }
  std::vector<std::pair<sim::PartyIndex, Message>> received;

  template <typename T>
  std::vector<T> of_type(sim::PartyIndex from) const {
    std::vector<T> out;
    for (const auto& [f, m] : received) {
      if (f != from) continue;
      if (const T* t = std::get_if<T>(&m)) out.push_back(*t);
    }
    return out;
  }
};

/// Find a provider seed whose round-1 permutation satisfies `pred` (e.g.
/// "the subject, party 0, holds neither rank 0 nor rank 1").
uint64_t find_seed(const std::function<bool(const RoundRanks&)>& pred) {
  for (uint64_t seed = 1; seed < 500; ++seed) {
    auto crypto = crypto::make_fast_provider(4, 1, seed);
    Bytes msg1 = types::beacon_message(1, types::genesis_beacon());
    std::vector<std::pair<crypto::PartyIndex, Bytes>> shares;
    for (crypto::PartyIndex i = 1; i <= 2; ++i)
      shares.emplace_back(i, crypto->beacon_sign_share(i, msg1));
    Bytes beacon = crypto->beacon_combine(msg1, shares);
    if (pred(ranks_from_beacon(beacon, 4))) return seed;
  }
  ADD_FAILURE() << "no suitable seed found";
  return 1;
}

uint64_t seed_with_subject_unranked() {
  return find_seed([](const RoundRanks& r) { return r.by_rank[0] != 0 && r.by_rank[1] != 0; });
}

struct Fixture {
  static constexpr size_t kN = 4, kT = 1;
  std::unique_ptr<crypto::CryptoProvider> crypto;
  sim::Simulation sim;
  Icc0Party* subject = nullptr;  // party 0, the only real party
  Recorder* observer = nullptr;  // party 1 records the subject's broadcasts
  Bytes beacon1;
  RoundRanks ranks;

  explicit Fixture(uint64_t seed)
      : crypto(crypto::make_fast_provider(kN, kT, seed)),
        sim(kN, std::make_unique<sim::FixedDelay>(sim::msec(1)), seed) {
    PartyConfig pc;
    pc.crypto = crypto.get();
    pc.delays.delta_bnd = sim::msec(50);
    pc.payload = std::make_shared<FixedSizePayload>(16);
    auto party = std::make_unique<Icc0Party>(0, pc);
    subject = party.get();
    sim.network().set_process(0, std::move(party));
    for (sim::PartyIndex i = 1; i < kN; ++i) {
      auto rec = std::make_unique<Recorder>();
      if (i == 1) observer = rec.get();
      sim.network().set_process(i, std::move(rec));
    }
    sim.start();

    // Feed beacon shares for round 1 from parties 1, 2 (threshold t+1 = 2).
    Bytes msg1 = types::beacon_message(1, types::genesis_beacon());
    std::vector<std::pair<crypto::PartyIndex, Bytes>> shares;
    for (crypto::PartyIndex i = 1; i <= 2; ++i) {
      Bytes share = crypto->beacon_sign_share(i, msg1);
      shares.emplace_back(i, share);
      send_from(i, Message{types::BeaconShareMsg{1, i, share}});
    }
    beacon1 = crypto->beacon_combine(msg1, shares);
    ranks = ranks_from_beacon(beacon1, kN);
    sim.run_until(sim::msec(5));
    EXPECT_EQ(subject->current_round(), 1u) << "subject should be in round 1";
  }

  void send_from(sim::PartyIndex from, const Message& m) {
    Bytes wire = types::serialize_message(m);
    sim.engine().schedule_at(sim.engine().now(), [this, from, wire] {
      sim::Context ctx(sim.network(), from);
      ctx.send(0, wire);
    });
  }

  types::ProposalMsg make_proposal(types::PartyIndex proposer, uint8_t salt) {
    types::Block b;
    b.round = 1;
    b.proposer = proposer;
    b.parent_hash = types::root_hash();
    b.payload = Bytes{salt};
    types::ProposalMsg pm;
    pm.block = b;
    pm.authenticator = crypto->sign(
        proposer, types::authenticator_message(1, proposer, b.hash()));
    return pm;
  }

  /// Notarization shares the subject (party 0) broadcast, by block hash.
  std::vector<types::NotarizationShareMsg> subject_notar_shares() {
    return observer->of_type<types::NotarizationShareMsg>(0);
  }
};

TEST(Icc0ClausesTest, SharesExactlyOnePerRankAndDisqualifiesEquivocators) {
  Fixture f(seed_with_subject_unranked());
  // Pick a proposer that is NOT the subject.
  types::PartyIndex leader = f.ranks.by_rank[0];
  if (leader == 0) leader = f.ranks.by_rank[1];  // subject leads: use rank 1
  uint32_t leader_rank = f.ranks.rank_of[leader];

  auto block_a = f.make_proposal(leader, 0xA1);
  auto block_b = f.make_proposal(leader, 0xB2);
  f.send_from(leader, Message{block_a});
  f.sim.run_until(f.sim.engine().now() + sim::msec(300));

  // Clause (c): one notarization share for block A.
  auto shares = f.subject_notar_shares();
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].block_hash, block_a.block.hash());
  EXPECT_EQ(shares[0].signer, 0u);

  // The equivocating second block: echoed, but NOT endorsed. (The subject
  // may legitimately endorse a block of a *different* rank afterwards — once
  // rank 0 is disqualified, the next-best valid block, possibly its own,
  // becomes the clause-(c) candidate.)
  f.send_from(leader, Message{block_b});
  f.sim.run_until(f.sim.engine().now() + sim::msec(300));
  shares = f.subject_notar_shares();
  for (const auto& s : shares) {
    EXPECT_NE(s.block_hash, block_b.block.hash())
        << "a second block of an already-endorsed rank must never be endorsed";
  }

  // Echo check: the subject re-broadcast both of the leader's blocks.
  auto echoes = f.observer->of_type<types::ProposalMsg>(0);
  size_t leader_blocks = 0;
  for (const auto& e : echoes) {
    if (e.block.proposer == leader) ++leader_blocks;
  }
  EXPECT_EQ(leader_blocks, 2u) << "both equivocating blocks must be echoed "
                               << "(rank " << leader_rank << ")";
}

TEST(Icc0ClausesTest, FallsBackToNextRankAfterDisqualification) {
  Fixture f(seed_with_subject_unranked());
  types::PartyIndex leader = f.ranks.by_rank[0];
  types::PartyIndex backup = f.ranks.by_rank[1];
  if (leader == 0 || backup == 0) GTEST_SKIP() << "subject holds a needed rank";

  // Equivocating leader first...
  f.send_from(leader, Message{f.make_proposal(leader, 0xA1)});
  f.sim.run_until(f.sim.engine().now() + sim::msec(100));
  f.send_from(leader, Message{f.make_proposal(leader, 0xB2)});
  f.sim.run_until(f.sim.engine().now() + sim::msec(100));
  // ...then a block from the next rank.
  auto backup_block = f.make_proposal(backup, 0xC3);
  f.send_from(backup, Message{backup_block});
  // Wait past Delta_ntry(1) = 2 * 50 ms.
  f.sim.run_until(f.sim.engine().now() + sim::msec(500));

  auto shares = f.subject_notar_shares();
  ASSERT_EQ(shares.size(), 2u) << "leader's block + backup's block";
  EXPECT_EQ(shares[1].block_hash, backup_block.block.hash())
      << "after disqualifying the leader's rank, the next rank is endorsed";
}

TEST(Icc0ClausesTest, NoFinalizationShareWhenMultipleBlocksEndorsed) {
  Fixture f(seed_with_subject_unranked());
  types::PartyIndex leader = f.ranks.by_rank[0];
  types::PartyIndex backup = f.ranks.by_rank[1];
  if (leader == 0 || backup == 0) GTEST_SKIP() << "subject holds a needed rank";

  // Make the subject endorse TWO blocks: leader equivocates (disqualified
  // after the second), then backup's block gets endorsed too.
  auto block_a = f.make_proposal(leader, 0xA1);
  f.send_from(leader, Message{block_a});
  f.sim.run_until(f.sim.engine().now() + sim::msec(100));
  f.send_from(leader, Message{f.make_proposal(leader, 0xB2)});
  auto backup_block = f.make_proposal(backup, 0xC3);
  f.send_from(backup, Message{backup_block});
  f.sim.run_until(f.sim.engine().now() + sim::msec(500));
  ASSERT_EQ(f.subject_notar_shares().size(), 2u);

  // Now notarize the backup block with shares from parties 1-3.
  Bytes canonical = types::notarization_message(1, backup, backup_block.block.hash());
  for (crypto::PartyIndex i = 1; i <= 3; ++i) {
    f.send_from(i, Message{types::NotarizationShareMsg{
                       1, backup, backup_block.block.hash(), i,
                       f.crypto->threshold_sign_share(crypto::Scheme::kNotary, i,
                                                      canonical)}});
  }
  f.sim.run_until(f.sim.engine().now() + sim::msec(200));

  // Clause (a) fired (round finished, notarization broadcast)...
  EXPECT_GE(f.subject->current_round(), 2u);
  EXPECT_FALSE(f.observer->of_type<types::NotarizationMsg>(0).empty());
  // ...but N = {leader's A, backup's C} is not a subset of {C}: NO
  // finalization share.
  EXPECT_TRUE(f.observer->of_type<types::FinalizationShareMsg>(0).empty());
}

TEST(Icc0ClausesTest, FinalizationShareWhenOnlyOneBlockEndorsed) {
  Fixture f(seed_with_subject_unranked());
  types::PartyIndex leader = f.ranks.by_rank[0];
  if (leader == 0) GTEST_SKIP() << "subject is the leader";

  auto block_a = f.make_proposal(leader, 0xA1);
  f.send_from(leader, Message{block_a});
  f.sim.run_until(f.sim.engine().now() + sim::msec(200));
  ASSERT_EQ(f.subject_notar_shares().size(), 1u);

  Bytes canonical = types::notarization_message(1, leader, block_a.block.hash());
  for (crypto::PartyIndex i = 1; i <= 3; ++i) {
    f.send_from(i, Message{types::NotarizationShareMsg{
                       1, leader, block_a.block.hash(), i,
                       f.crypto->threshold_sign_share(crypto::Scheme::kNotary, i,
                                                      canonical)}});
  }
  f.sim.run_until(f.sim.engine().now() + sim::msec(200));

  EXPECT_GE(f.subject->current_round(), 2u);
  auto fshares = f.observer->of_type<types::FinalizationShareMsg>(0);
  ASSERT_EQ(fshares.size(), 1u) << "N = {B} -> finalization share for B";
  EXPECT_EQ(fshares[0].block_hash, block_a.block.hash());
}

TEST(Icc0ClausesTest, LowerRankArrivingLateStillPreferredBeforeShare) {
  // A rank-1 block arrives first but Delta_ntry(1) has not elapsed; then the
  // rank-0 block arrives: the subject must endorse rank 0, not rank 1.
  Fixture f(seed_with_subject_unranked());
  types::PartyIndex leader = f.ranks.by_rank[0];
  types::PartyIndex backup = f.ranks.by_rank[1];
  if (leader == 0 || backup == 0) GTEST_SKIP() << "subject holds a needed rank";

  auto backup_block = f.make_proposal(backup, 0xC3);
  f.send_from(backup, Message{backup_block});
  f.sim.run_until(f.sim.engine().now() + sim::msec(20));  // < ntry(1) = 100 ms
  auto leader_block = f.make_proposal(leader, 0xA1);
  f.send_from(leader, Message{leader_block});
  f.sim.run_until(f.sim.engine().now() + sim::msec(50));

  auto shares = f.subject_notar_shares();
  ASSERT_GE(shares.size(), 1u);
  EXPECT_EQ(shares[0].block_hash, leader_block.block.hash())
      << "the leader's block takes priority while its ntry window is open";
}

}  // namespace
}  // namespace icc::consensus
