// End-to-end tests of Protocol ICC0 over the simulated network: the paper's
// Properties P1 (deadlock-freeness), P2/safety and P3 (liveness), under
// honest, crashed, Byzantine and asynchronous conditions.
#include "consensus/icc0.hpp"

#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::harness {
namespace {

using consensus::ByzantineBehavior;

ClusterOptions base_options(size_t n, size_t t, uint64_t seed = 1) {
  ClusterOptions o;
  o.n = n;
  o.t = t;
  o.seed = seed;
  o.delta_bnd = sim::msec(100);
  o.payload_size = 128;
  o.prune_lag = 0;  // keep everything so invariant checks see all rounds
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

void expect_invariants(const Cluster& c) {
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
}

TEST(Icc0Test, HappyPathCommitsBlocks) {
  Cluster c(base_options(4, 1));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 10u);
  EXPECT_FALSE(c.check_progress(10).has_value());
  expect_invariants(c);
}

TEST(Icc0Test, OutputsAreIdenticalAcrossParties) {
  Cluster c(base_options(4, 1, 7));
  c.run_for(sim::seconds(3));
  ASSERT_GE(c.min_honest_committed(), 5u);
  const auto& a = c.party(0)->committed();
  const auto& b = c.party(3)->committed();
  size_t common = std::min(a.size(), b.size());
  for (size_t i = 0; i < common; ++i) {
    EXPECT_EQ(a[i].hash, b[i].hash);
    EXPECT_EQ(a[i].round, b[i].round);
    EXPECT_EQ(a[i].payload, b[i].payload);
  }
}

TEST(Icc0Test, RoundsAreConsecutiveInOutput) {
  Cluster c(base_options(4, 1, 8));
  c.run_for(sim::seconds(3));
  const auto& out = c.party(0)->committed();
  ASSERT_FALSE(out.empty());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].round, i + 1) << "every round contributes exactly one block";
  }
}

TEST(Icc0Test, DeterministicAcrossRuns) {
  auto run = [] {
    Cluster c(base_options(7, 2, 42));
    c.run_for(sim::seconds(3));
    std::vector<types::Hash> hashes;
    for (const auto& b : c.party(0)->committed()) hashes.push_back(b.hash);
    return hashes;
  };
  EXPECT_EQ(run(), run());
}

TEST(Icc0Test, RealCryptoProviderEndToEnd) {
  auto o = base_options(4, 1, 3);
  o.crypto = CryptoKind::kReal;
  Cluster c(o);
  c.run_for(sim::seconds(2));
  EXPECT_GE(c.min_honest_committed(), 3u);
  expect_invariants(c);
}

class Icc0ParamTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(Icc0ParamTest, ProgressAndSafetyAcrossSizes) {
  auto [n, t] = GetParam();
  Cluster c(base_options(n, t, 100 + n));
  c.run_for(sim::seconds(4));
  EXPECT_GE(c.min_honest_committed(), 5u) << "n=" << n;
  expect_invariants(c);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Icc0ParamTest,
                         ::testing::Values(std::pair<size_t, size_t>{4, 1},
                                           std::pair<size_t, size_t>{7, 2},
                                           std::pair<size_t, size_t>{10, 3},
                                           std::pair<size_t, size_t>{13, 4},
                                           std::pair<size_t, size_t>{19, 6}));

TEST(Icc0Test, ToleratesCrashFaults) {
  auto o = base_options(7, 2, 5);
  o.corrupt = {{1, Crashed{}}, {4, Crashed{}}};
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc0Test, ToleratesMaxCrashFaults) {
  auto o = base_options(10, 3, 6);
  o.corrupt = {{0, Crashed{}}, {5, Crashed{}}, {9, Crashed{}}};
  Cluster c(o);
  c.run_for(sim::seconds(15));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc0Test, EquivocationDoesNotBreakSafety) {
  auto o = base_options(7, 2, 9);
  ByzantineBehavior eq;
  eq.equivocate = true;
  o.corrupt = {{2, eq}, {5, eq}};
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc0Test, WithholdingFinalizationDelaysButDoesNotStop) {
  auto o = base_options(7, 2, 10);
  ByzantineBehavior wf;
  wf.withhold_finalization = true;
  wf.withhold_notarization = true;
  o.corrupt = {{0, wf}, {3, wf}};
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 3u);
  expect_invariants(c);
}

TEST(Icc0Test, CensoringLeaderProposesEmptyBlocks) {
  auto o = base_options(4, 1, 11);
  ByzantineBehavior censor;
  censor.empty_payload = true;
  o.corrupt = {{2, censor}};
  Cluster c(o);
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
  // Some committed blocks from party 2 should be empty; the chain still runs.
  bool saw_empty = false, saw_nonempty = false;
  for (const auto& b : c.party(0)->committed()) {
    if (b.payload_size == 0) saw_empty = true;
    if (b.payload_size > 0) saw_nonempty = true;
  }
  EXPECT_TRUE(saw_nonempty);
  (void)saw_empty;  // probabilistic (depends on leader draws)
}

TEST(Icc0Test, MidRunCrashIsSurvived) {
  auto o = base_options(7, 2, 12);
  ByzantineBehavior mute;
  mute.mute_after = 5;
  o.corrupt = {{1, mute}, {6, mute}};
  Cluster c(o);
  c.run_for(sim::seconds(12));
  EXPECT_GE(c.min_honest_committed(), 8u);
  expect_invariants(c);
}

TEST(Icc0Test, SafetyHoldsDuringAsynchrony) {
  auto o = base_options(4, 1, 13);
  Cluster c(o);
  // Asynchronous from 1s to 4s: all traffic stalls.
  c.sim().network().synchrony().add_async_window(sim::seconds(1), sim::seconds(4));
  c.run_for(sim::seconds(8));
  expect_invariants(c);
  // Liveness resumes after the window: parties keep committing.
  EXPECT_GE(c.min_honest_committed(), 5u);
}

TEST(Icc0Test, ThroughputRecoversAfterAsynchrony) {
  auto o = base_options(4, 1, 14);
  Cluster c(o);
  c.sim().network().synchrony().add_async_window(sim::msec(500), sim::seconds(3));
  c.run_for(sim::seconds(3));
  size_t during = c.min_honest_committed();
  c.run_for(sim::seconds(5));
  size_t after = c.min_honest_committed();
  // P1: every round still produces a block; after synchrony returns, all the
  // backlog commits. Expect substantially more commits after the window.
  EXPECT_GT(after, during + 5);
  expect_invariants(c);
}

TEST(Icc0Test, OptimisticResponsiveness) {
  // Delta_bnd is 100x the actual delay; rounds must pace at ~2*delta, not
  // at Delta_bnd (the paper's optimistic-responsiveness claim).
  auto o = base_options(4, 1, 15);
  o.delta_bnd = sim::msec(1000);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(5));
  };
  Cluster c(o);
  c.run_for(sim::seconds(5));
  // With delta = 5 ms, a round takes ~2*delta = 10 ms when every leader is
  // honest; even with scheduling slack, >= 100 rounds in 5 s proves pacing
  // at network speed rather than Delta_bnd (which would give 5 rounds).
  EXPECT_GE(c.party(0)->current_round(), 100u);
  expect_invariants(c);
}

TEST(Icc0Test, LatencyIsAboutThreeDelta) {
  auto o = base_options(4, 1, 16);
  o.delta_bnd = sim::msec(500);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(20));
  };
  Cluster c(o);
  c.run_for(sim::seconds(5));
  ASSERT_FALSE(c.latencies().empty());
  // Paper: latency (proposal -> all parties commit) = 3 * delta.
  double avg = c.avg_latency_ms();
  EXPECT_GE(avg, 55.0);
  EXPECT_LE(avg, 70.0);
}

TEST(Icc0Test, MaxRoundStopsParticipation) {
  auto o = base_options(4, 1, 17);
  o.max_round = 5;
  Cluster c(o);
  c.run_for(sim::seconds(5));
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_LE(c.party(i)->current_round(), 6u);
  }
}

TEST(Icc0Test, PruningKeepsProtocolRunning) {
  auto o = base_options(4, 1, 18);
  o.prune_lag = 4;
  Cluster c(o);
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 10u);
  EXPECT_FALSE(c.check_safety().has_value());
  // Pool size stays bounded.
  EXPECT_LE(c.party(0)->pool().block_count(), 64u);
}

}  // namespace
}  // namespace icc::harness
