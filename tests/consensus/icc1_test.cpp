// Protocol ICC1: consensus correctness plus the gossip sub-layer's bandwidth
// properties (the leader-bottleneck relief the paper designed it for).
#include "consensus/icc1.hpp"

#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::harness {
namespace {

using consensus::ByzantineBehavior;

ClusterOptions icc1_options(size_t n, size_t t, uint64_t seed = 1) {
  ClusterOptions o;
  o.n = n;
  o.t = t;
  o.seed = seed;
  o.protocol = Protocol::kIcc1;
  o.delta_bnd = sim::msec(100);
  o.payload_size = 512;
  o.prune_lag = 0;
  o.gossip.request_jitter = sim::msec(10);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

void expect_invariants(const Cluster& c) {
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
}

TEST(Icc1Test, HappyPathCommits) {
  Cluster c(icc1_options(4, 1));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 8u);
  expect_invariants(c);
}

class Icc1ParamTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(Icc1ParamTest, ProgressAndSafety) {
  auto [n, t] = GetParam();
  Cluster c(icc1_options(n, t, 50 + n));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 5u) << "n=" << n;
  expect_invariants(c);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Icc1ParamTest,
                         ::testing::Values(std::pair<size_t, size_t>{4, 1},
                                           std::pair<size_t, size_t>{7, 2},
                                           std::pair<size_t, size_t>{13, 4}));

TEST(Icc1Test, ToleratesCrashes) {
  auto o = icc1_options(7, 2, 3);
  o.corrupt = {{2, Crashed{}}, {5, Crashed{}}};
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc1Test, ToleratesEquivocation) {
  auto o = icc1_options(7, 2, 4);
  ByzantineBehavior eq;
  eq.equivocate = true;
  o.corrupt = {{1, eq}, {4, eq}};
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc1Test, SurvivesAsynchrony) {
  Cluster c(icc1_options(4, 1, 5));
  c.sim().network().synchrony().add_async_window(sim::seconds(1), sim::seconds(3));
  c.run_for(sim::seconds(8));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc1Test, GossipReducesLeaderByteBottleneck) {
  // With large blocks, the max-bytes-sent-by-any-party (the bottleneck
  // measure of [35]) must be much lower under ICC1 than under ICC0, where
  // the proposer and every echoing party push full copies to everyone.
  const size_t payload = 200 * 1024;
  auto run = [&](Protocol proto) {
    auto o = icc1_options(7, 2, 9);
    o.protocol = proto;
    o.payload_size = payload;
    o.max_round = 10;
    o.record_payloads = false;
    o.prune_lag = 4;
    Cluster c(o);
    c.run_for(sim::seconds(30));
    EXPECT_GE(c.min_honest_committed(), 5u);
    auto safety = c.check_safety();
    EXPECT_FALSE(safety.has_value()) << *safety;
    return c.sim().network().metrics().max_bytes_sent();
  };
  uint64_t icc0_max = run(Protocol::kIcc0);
  uint64_t icc1_max = run(Protocol::kIcc1);
  EXPECT_LT(icc1_max, icc0_max / 2)
      << "ICC0 bottleneck " << icc0_max << " vs ICC1 " << icc1_max;
}

TEST(Icc1Test, BlocksTravelOncePerPartyNotOncePerEcho) {
  // Total traffic for ICC1 should be near n block-copies per round, not n^2.
  const size_t payload = 100 * 1024;
  auto o = icc1_options(10, 3, 10);
  o.payload_size = payload;
  o.max_round = 8;
  o.record_payloads = false;
  o.prune_lag = 4;
  Cluster c(o);
  c.run_for(sim::seconds(20));
  size_t rounds = c.party(0)->current_round();
  ASSERT_GE(rounds, 8u);
  uint64_t total = c.sim().network().metrics().total_bytes;
  // Upper bound: ~3x (n-1) block transfers per round would already be very
  // lossy gossip; ICC0 would be ~ (n-1)^2 copies (about 8 MB/round here).
  double per_round = static_cast<double>(total) / 8.0;
  EXPECT_LT(per_round, 3.0 * 9 * payload);
}

TEST(Icc1Test, DeterministicAcrossRuns) {
  auto run = [] {
    Cluster c(icc1_options(7, 2, 77));
    c.run_for(sim::seconds(3));
    std::vector<types::Hash> h;
    for (const auto& b : c.party(0)->committed()) h.push_back(b.hash);
    return h;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace icc::harness
