// Protocol ICC2: consensus correctness over the erasure-coded RBC, plus the
// paper's bandwidth and timing claims (O(S) per party; 3-delta reciprocal
// throughput / 4-delta latency).
#include "consensus/icc2.hpp"

#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::harness {
namespace {

using consensus::ByzantineBehavior;

ClusterOptions icc2_options(size_t n, size_t t, uint64_t seed = 1) {
  ClusterOptions o;
  o.n = n;
  o.t = t;
  o.seed = seed;
  o.protocol = Protocol::kIcc2;
  o.delta_bnd = sim::msec(100);
  o.payload_size = 1024;
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(10));
  };
  return o;
}

void expect_invariants(const Cluster& c) {
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
}

TEST(Icc2Test, HappyPathCommits) {
  Cluster c(icc2_options(4, 1));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 8u);
  expect_invariants(c);
}

class Icc2ParamTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(Icc2ParamTest, ProgressAndSafety) {
  auto [n, t] = GetParam();
  Cluster c(icc2_options(n, t, 60 + n));
  c.run_for(sim::seconds(5));
  EXPECT_GE(c.min_honest_committed(), 5u) << "n=" << n;
  expect_invariants(c);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Icc2ParamTest,
                         ::testing::Values(std::pair<size_t, size_t>{4, 1},
                                           std::pair<size_t, size_t>{7, 2},
                                           std::pair<size_t, size_t>{13, 4}));

TEST(Icc2Test, ToleratesCrashes) {
  auto o = icc2_options(7, 2, 3);
  o.corrupt = {{0, Crashed{}}, {3, Crashed{}}};
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc2Test, SurvivesAsynchrony) {
  Cluster c(icc2_options(4, 1, 4));
  c.sim().network().synchrony().add_async_window(sim::seconds(1), sim::seconds(3));
  c.run_for(sim::seconds(8));
  EXPECT_GE(c.min_honest_committed(), 4u);
  expect_invariants(c);
}

TEST(Icc2Test, ToleratesEquivocation) {
  // Equivocating Byzantine parties push full ICC0-style proposals (their
  // prerogative); honest ICC2 parties must stay safe and live.
  auto o = icc2_options(7, 2, 5);
  ByzantineBehavior eq;
  eq.equivocate = true;
  o.corrupt = {{2, eq}};
  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 5u);
  expect_invariants(c);
}

TEST(Icc2Test, LatencyIsAboutFourDelta) {
  // Paper: ICC2 latency = 4 * delta (one extra hop vs ICC0's 3 * delta).
  auto o = icc2_options(7, 2, 6);
  o.delta_bnd = sim::msec(500);
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::FixedDelay>(sim::msec(20));
  };
  Cluster c(o);
  c.run_for(sim::seconds(5));
  ASSERT_FALSE(c.latencies().empty());
  double avg = c.avg_latency_ms();
  EXPECT_GE(avg, 75.0);
  EXPECT_LE(avg, 95.0);
}

TEST(Icc2Test, RemovesLeaderBottleneckForLargeBlocks) {
  const size_t payload = 200 * 1024;
  auto run = [&](Protocol proto) {
    auto o = icc2_options(7, 2, 7);
    o.protocol = proto;
    o.payload_size = payload;
    o.max_round = 10;
    o.record_payloads = false;
    o.prune_lag = 4;
    Cluster c(o);
    c.run_for(sim::seconds(30));
    EXPECT_GE(c.min_honest_committed(), 5u);
    return c.sim().network().metrics().max_bytes_sent();
  };
  uint64_t icc0_max = run(Protocol::kIcc0);
  uint64_t icc2_max = run(Protocol::kIcc2);
  EXPECT_LT(icc2_max, icc0_max / 2)
      << "ICC0 bottleneck " << icc0_max << " vs ICC2 " << icc2_max;
}

TEST(Icc2Test, DeterministicAcrossRuns) {
  auto run = [] {
    Cluster c(icc2_options(7, 2, 88));
    c.run_for(sim::seconds(3));
    std::vector<types::Hash> h;
    for (const auto& b : c.party(0)->committed()) h.push_back(b.hash);
    return h;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace icc::harness
