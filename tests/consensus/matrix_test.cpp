// Full cross-product sweep: every protocol (ICC0/ICC1/ICC2) against every
// adversary class, asserting the safety, P2 and progress invariants. This is
// the broad safety net on top of the targeted suites.
#include <gtest/gtest.h>

#include "harness/cluster.hpp"

namespace icc::harness {
namespace {

using consensus::ByzantineBehavior;

enum class Adversary { kNone, kCrash, kEquivocate, kCensor, kWithhold, kMixed };

const char* adversary_name(Adversary a) {
  switch (a) {
    case Adversary::kNone: return "None";
    case Adversary::kCrash: return "Crash";
    case Adversary::kEquivocate: return "Equivocate";
    case Adversary::kCensor: return "Censor";
    case Adversary::kWithhold: return "Withhold";
    case Adversary::kMixed: return "Mixed";
  }
  return "?";
}

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kIcc0: return "Icc0";
    case Protocol::kIcc1: return "Icc1";
    case Protocol::kIcc2: return "Icc2";
  }
  return "?";
}

class MatrixTest : public ::testing::TestWithParam<std::tuple<Protocol, Adversary>> {};

TEST_P(MatrixTest, InvariantsHold) {
  auto [protocol, adversary] = GetParam();
  ClusterOptions o;
  o.n = 7;
  o.t = 2;
  o.seed = 1000 + static_cast<uint64_t>(adversary) * 17 + static_cast<uint64_t>(protocol);
  o.protocol = protocol;
  o.delta_bnd = sim::msec(120);
  o.payload_size = 300;
  o.prune_lag = 0;
  o.delay_model = [](size_t, uint64_t) {
    return std::make_unique<sim::UniformDelay>(sim::msec(3), sim::msec(18));
  };

  ByzantineBehavior eq;
  eq.equivocate = true;
  ByzantineBehavior censor;
  censor.empty_payload = true;
  ByzantineBehavior withhold;
  withhold.withhold_notarization = true;
  withhold.withhold_finalization = true;
  switch (adversary) {
    case Adversary::kNone: break;
    case Adversary::kCrash: o.corrupt = {{1, Crashed{}}, {4, Crashed{}}}; break;
    case Adversary::kEquivocate: o.corrupt = {{1, eq}, {4, eq}}; break;
    case Adversary::kCensor: o.corrupt = {{1, censor}, {4, censor}}; break;
    case Adversary::kWithhold: o.corrupt = {{1, withhold}, {4, withhold}}; break;
    case Adversary::kMixed: o.corrupt = {{1, eq}, {4, Crashed{}}}; break;
  }

  Cluster c(o);
  c.run_for(sim::seconds(10));
  EXPECT_GE(c.min_honest_committed(), 4u);
  auto safety = c.check_safety();
  EXPECT_FALSE(safety.has_value()) << *safety;
  auto p2 = c.check_p2();
  EXPECT_FALSE(p2.has_value()) << *p2;
  EXPECT_FALSE(c.check_progress(5).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, MatrixTest,
    ::testing::Combine(::testing::Values(Protocol::kIcc0, Protocol::kIcc1, Protocol::kIcc2),
                       ::testing::Values(Adversary::kNone, Adversary::kCrash,
                                         Adversary::kEquivocate, Adversary::kCensor,
                                         Adversary::kWithhold, Adversary::kMixed)),
    [](const auto& info) {
      return std::string(protocol_name(std::get<0>(info.param))) + "_" +
             adversary_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace icc::harness
