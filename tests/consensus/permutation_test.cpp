#include "consensus/permutation.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "crypto/sha256.hpp"

namespace icc::consensus {
namespace {

Bytes beacon(int i) { return crypto::sha256(str_bytes("beacon-" + std::to_string(i))); }

TEST(PermutationTest, IsAPermutation) {
  for (int i = 0; i < 20; ++i) {
    auto r = ranks_from_beacon(beacon(i), 13);
    std::vector<bool> seen(13, false);
    for (auto p : r.by_rank) {
      ASSERT_LT(p, 13u);
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
    for (size_t p = 0; p < 13; ++p) EXPECT_EQ(r.by_rank[r.rank_of[p]], p);
  }
}

TEST(PermutationTest, DeterministicFromBeacon) {
  auto a = ranks_from_beacon(beacon(1), 10);
  auto b = ranks_from_beacon(beacon(1), 10);
  EXPECT_EQ(a.by_rank, b.by_rank);
}

TEST(PermutationTest, DifferentBeaconsDifferentOrder) {
  int identical = 0;
  for (int i = 0; i < 50; ++i) {
    if (ranks_from_beacon(beacon(i), 10).by_rank ==
        ranks_from_beacon(beacon(i + 1000), 10).by_rank)
      ++identical;
  }
  EXPECT_LE(identical, 1);
}

TEST(PermutationTest, LeaderIsRoughlyUniform) {
  // Over many beacons, each of n parties should lead ~1/n of the time.
  const size_t n = 7;
  std::map<types::PartyIndex, int> counts;
  const int trials = 7000;
  for (int i = 0; i < trials; ++i) counts[ranks_from_beacon(beacon(i), n).leader()]++;
  for (size_t p = 0; p < n; ++p) {
    EXPECT_GT(counts[p], trials / n / 2) << "party " << p << " leads too rarely";
    EXPECT_LT(counts[p], trials * 2 / n) << "party " << p << " leads too often";
  }
}

TEST(PermutationTest, SinglePartyDegenerate) {
  auto r = ranks_from_beacon(beacon(0), 1);
  EXPECT_EQ(r.leader(), 0u);
  EXPECT_EQ(r.rank_of[0], 0u);
}

}  // namespace
}  // namespace icc::consensus
