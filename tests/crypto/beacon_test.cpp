#include "crypto/beacon.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace icc::crypto {
namespace {

struct Setup {
  BeaconKeys keys;
  Bytes message;
  std::vector<BeaconShare> shares;  // one per party
};

Setup make_setup(size_t n, size_t t, uint64_t seed) {
  Xoshiro256 rng(seed);
  Setup s;
  s.keys = beacon_keygen(n, t, rng);
  s.message = str_bytes("beacon round 7");
  for (size_t i = 0; i < n; ++i) {
    s.shares.push_back(
        beacon_sign_share(s.message, static_cast<uint32_t>(i), s.keys.secret_shares[i],
                          s.keys.pub));
  }
  return s;
}

TEST(BeaconTest, SharesVerify) {
  auto s = make_setup(7, 2, 1);
  for (const auto& share : s.shares)
    EXPECT_TRUE(beacon_verify_share(s.message, share, s.keys.pub));
}

TEST(BeaconTest, ShareForWrongMessageRejected) {
  auto s = make_setup(4, 1, 2);
  EXPECT_FALSE(beacon_verify_share(str_bytes("other message"), s.shares[0], s.keys.pub));
}

TEST(BeaconTest, ShareWithWrongSignerRejected) {
  auto s = make_setup(4, 1, 3);
  BeaconShare forged = s.shares[0];
  forged.signer = 1;  // claim someone else's share
  EXPECT_FALSE(beacon_verify_share(s.message, forged, s.keys.pub));
}

TEST(BeaconTest, CombinedValueIsUniqueAcrossQuorums) {
  // The defining property of the beacon (Section 2.3): any t+1 shares yield
  // the same sigma.
  auto s = make_setup(7, 2, 4);
  std::vector<BeaconShare> q1(s.shares.begin(), s.shares.begin() + 3);
  std::vector<BeaconShare> q2(s.shares.end() - 3, s.shares.end());
  std::vector<BeaconShare> q3 = {s.shares[0], s.shares[3], s.shares[6]};
  auto s1 = beacon_combine(q1, s.keys.pub);
  auto s2 = beacon_combine(q2, s.keys.pub);
  auto s3 = beacon_combine(q3, s.keys.pub);
  ASSERT_TRUE(s1 && s2 && s3);
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(*s1, *s3);
  // And it equals s * H(m) computed directly from the group secret.
  Sc25519 group_secret = shamir_reconstruct(std::vector<ShamirShare>{
      {1, s.keys.secret_shares[0]}, {2, s.keys.secret_shares[1]}, {3, s.keys.secret_shares[2]}});
  EXPECT_EQ(*s1, beacon_message_point(s.message).mul(group_secret));
}

TEST(BeaconTest, TooFewSharesFail) {
  auto s = make_setup(7, 2, 5);
  std::vector<BeaconShare> q(s.shares.begin(), s.shares.begin() + 2);
  EXPECT_FALSE(beacon_combine(q, s.keys.pub).has_value());
}

TEST(BeaconTest, DuplicateSignersDontCount) {
  auto s = make_setup(7, 2, 6);
  std::vector<BeaconShare> q = {s.shares[0], s.shares[0], s.shares[0], s.shares[1]};
  EXPECT_FALSE(beacon_combine(q, s.keys.pub).has_value());
}

TEST(BeaconTest, ValueIsStableAndMessageDependent) {
  auto s = make_setup(4, 1, 7);
  std::vector<BeaconShare> q(s.shares.begin(), s.shares.begin() + 2);
  auto sigma = beacon_combine(q, s.keys.pub);
  ASSERT_TRUE(sigma);
  Bytes v1 = beacon_value(*sigma);
  EXPECT_EQ(v1.size(), 32u);
  EXPECT_EQ(v1, beacon_value(*sigma));

  Bytes other = str_bytes("different round");
  std::vector<BeaconShare> q2;
  for (size_t i = 0; i < 2; ++i)
    q2.push_back(beacon_sign_share(other, static_cast<uint32_t>(i),
                                   s.keys.secret_shares[i], s.keys.pub));
  auto sigma2 = beacon_combine(q2, s.keys.pub);
  ASSERT_TRUE(sigma2);
  EXPECT_NE(v1, beacon_value(*sigma2));
}

TEST(BeaconTest, ShareSerializationRoundTrip) {
  auto s = make_setup(4, 1, 8);
  Bytes ser = s.shares[2].serialize();
  auto back = BeaconShare::deserialize(ser);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->signer, 2u);
  EXPECT_TRUE(beacon_verify_share(s.message, *back, s.keys.pub));
}

TEST(BeaconTest, DeserializeRejectsBadLengthAndGarbageFailsVerify) {
  EXPECT_FALSE(BeaconShare::deserialize(Bytes(10)).has_value());
  EXPECT_FALSE(BeaconShare::deserialize(Bytes(101)).has_value());
  // A correctly-sized buffer may parse (any y coordinate on the curve), but
  // it can never verify against the share public keys.
  auto s = make_setup(4, 1, 99);
  Bytes junk(100, 0x01);
  auto parsed = BeaconShare::deserialize(junk);
  if (parsed) {
    EXPECT_FALSE(beacon_verify_share(s.message, *parsed, s.keys.pub));
  }
}

TEST(BeaconTest, ChainedBeaconUnpredictableWithoutHonestShare) {
  // R_k = sig(R_{k-1}); holding only t shares, combining fails.
  auto s = make_setup(4, 1, 9);
  std::vector<BeaconShare> adversary_shares = {s.shares[0]};  // t = 1 share
  EXPECT_FALSE(beacon_combine(adversary_shares, s.keys.pub).has_value());
}

class BeaconParamTest : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(BeaconParamTest, EndToEnd) {
  auto [t, n] = GetParam();
  auto s = make_setup(n, t, 1000 + n * 31 + t);
  // Combine from a random (t+1)-subset.
  Xoshiro256 rng(n * 7 + t);
  std::shuffle(s.shares.begin(), s.shares.end(), rng);
  std::vector<BeaconShare> q(s.shares.begin(), s.shares.begin() + t + 1);
  for (const auto& share : q) EXPECT_TRUE(beacon_verify_share(s.message, share, s.keys.pub));
  auto sigma = beacon_combine(q, s.keys.pub);
  ASSERT_TRUE(sigma.has_value());
  EXPECT_EQ(beacon_value(*sigma).size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Configs, BeaconParamTest,
                         ::testing::Values(std::pair<size_t, size_t>{1, 4},
                                           std::pair<size_t, size_t>{2, 7},
                                           std::pair<size_t, size_t>{4, 13},
                                           std::pair<size_t, size_t>{0, 3}));

}  // namespace
}  // namespace icc::crypto
