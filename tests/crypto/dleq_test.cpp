#include "crypto/dleq.hpp"

#include <gtest/gtest.h>

#include "crypto/shamir.hpp"
#include "support/rng.hpp"

namespace icc::crypto {
namespace {

struct Statement {
  Point g1, p1, g2, p2;
  Sc25519 secret;
};

Statement make_statement(uint64_t seed) {
  Xoshiro256 rng(seed);
  Statement s;
  s.secret = random_scalar(rng);
  s.g1 = Point::base();
  s.g2 = hash_to_point("dleq-test", rng.bytes(16));
  s.p1 = s.g1.mul(s.secret);
  s.p2 = s.g2.mul(s.secret);
  return s;
}

TEST(DleqTest, HonestProofVerifies) {
  auto s = make_statement(1);
  auto proof = dleq_prove(s.g1, s.p1, s.g2, s.p2, s.secret);
  EXPECT_TRUE(dleq_verify(s.g1, s.p1, s.g2, s.p2, proof));
}

TEST(DleqTest, WrongSecondPointRejected) {
  auto s = make_statement(2);
  auto proof = dleq_prove(s.g1, s.p1, s.g2, s.p2, s.secret);
  Point wrong = s.p2 + Point::base();
  EXPECT_FALSE(dleq_verify(s.g1, s.p1, s.g2, wrong, proof));
}

TEST(DleqTest, MismatchedExponentsRejected) {
  // p1 = x*g1 but p2 = y*g2 with x != y: prover cannot produce a valid proof
  // with either secret.
  Xoshiro256 rng(3);
  Sc25519 x = random_scalar(rng), y = random_scalar(rng);
  Point g1 = Point::base();
  Point g2 = hash_to_point("dleq-test", str_bytes("g2"));
  Point p1 = g1.mul(x), p2 = g2.mul(y);
  EXPECT_FALSE(dleq_verify(g1, p1, g2, p2, dleq_prove(g1, p1, g2, p2, x)));
  EXPECT_FALSE(dleq_verify(g1, p1, g2, p2, dleq_prove(g1, p1, g2, p2, y)));
}

TEST(DleqTest, TamperedProofRejected) {
  auto s = make_statement(4);
  auto proof = dleq_prove(s.g1, s.p1, s.g2, s.p2, s.secret);
  DleqProof bad = proof;
  bad.z = bad.z + Sc25519::one();
  EXPECT_FALSE(dleq_verify(s.g1, s.p1, s.g2, s.p2, bad));
  bad = proof;
  bad.c = bad.c + Sc25519::one();
  EXPECT_FALSE(dleq_verify(s.g1, s.p1, s.g2, s.p2, bad));
}

TEST(DleqTest, SerializationRoundTrip) {
  auto s = make_statement(5);
  auto proof = dleq_prove(s.g1, s.p1, s.g2, s.p2, s.secret);
  Bytes ser = proof.serialize();
  EXPECT_EQ(ser.size(), 64u);
  auto back = DleqProof::deserialize(ser);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(dleq_verify(s.g1, s.p1, s.g2, s.p2, *back));
}

TEST(DleqTest, DeserializeRejectsBadLength) {
  EXPECT_FALSE(DleqProof::deserialize(Bytes(63)).has_value());
  EXPECT_FALSE(DleqProof::deserialize(Bytes(65)).has_value());
}

TEST(DleqTest, ProofIsDeterministic) {
  auto s = make_statement(6);
  auto p1 = dleq_prove(s.g1, s.p1, s.g2, s.p2, s.secret);
  auto p2 = dleq_prove(s.g1, s.p1, s.g2, s.p2, s.secret);
  EXPECT_EQ(p1.serialize(), p2.serialize());
}

}  // namespace
}  // namespace icc::crypto
