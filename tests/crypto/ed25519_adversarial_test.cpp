// Adversarial Ed25519 inputs: locks the accept/reject semantics of
// ed25519_verify / ed25519_verify_batch / Point::decompress on the edge cases
// where real-world Ed25519 implementations diverge (see "Taming the many
// EdDSAs"). This library implements the *cofactored* check
// 8SB == 8R + 8kA with canonical-S rejection, which means:
//   - non-canonical S (S >= l) is rejected;
//   - small-order and mixed-order A / R are accepted when the cofactored
//     equation holds (torsion components are annihilated by the factor 8);
//   - non-canonical *field* encodings (y >= p) decompress to the reduced
//     point (RFC 7748 convention: from_bytes ignores nothing but the top
//     bit and does not require y < p);
//   - a flipped x-sign bit names a different point and must reject.
// These tests pin that behavior so the optimized scalar-multiplication
// kernels (wNAF / comb / Straus / Pippenger) cannot silently change it.
#include "crypto/ed25519.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "crypto/sha512.hpp"
#include "crypto/shamir.hpp"
#include "support/rng.hpp"

namespace icc::crypto {
namespace {

// Canonical encodings of all eight small-order (torsion) points.
const char* const kSmallOrderEncodings[8] = {
    // identity (order 1)
    "0100000000000000000000000000000000000000000000000000000000000000",
    // (0, -1), order 2
    "ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f",
    // (±sqrt(-1), 0), order 4
    "0000000000000000000000000000000000000000000000000000000000000000",
    "0000000000000000000000000000000000000000000000000000000000000080",
    // order 8
    "c7176a703d4dd84fba3c0b760d10670f2a2053fa2c39ccc64ec7fd7792ac037a",
    "c7176a703d4dd84fba3c0b760d10670f2a2053fa2c39ccc64ec7fd7792ac03fa",
    "26e8958fc2b227b045c3f489f2ef98f0d5dfac05d3c63339b13802886d53fc05",
    "26e8958fc2b227b045c3f489f2ef98f0d5dfac05d3c63339b13802886d53fc85",
};

std::array<uint8_t, 64> make_sig(BytesView r_enc, const Sc25519& s) {
  std::array<uint8_t, 64> sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  s.to_bytes(sig.data() + 32);
  return sig;
}

Sc25519 challenge_scalar(BytesView r_enc, BytesView a_enc, BytesView message) {
  Sha512 kh;
  kh.update(r_enc);
  kh.update(a_enc);
  kh.update(message);
  return Sc25519::from_bytes_wide(kh.digest().data());
}

// The clamped secret scalar of a keypair (what ed25519_sign derives).
Sc25519 secret_scalar(const Ed25519KeyPair& kp, Sha512Digest* hash_out = nullptr) {
  Sha512Digest h = Sha512::hash(BytesView(kp.seed.data(), 32));
  uint8_t sb[32];
  std::memcpy(sb, h.data(), 32);
  sb[0] &= 248;
  sb[31] &= 127;
  sb[31] |= 64;
  if (hash_out) *hash_out = h;
  return Sc25519::from_bytes_mod_l(sb);
}

TEST(Ed25519AdversarialTest, SmallOrderPointsDecompress) {
  for (const char* enc : kSmallOrderEncodings) {
    Bytes b = from_hex(enc);
    auto p = Point::decompress(b.data());
    ASSERT_TRUE(p.has_value()) << enc;
    // All torsion: multiplying by the cofactor annihilates the point.
    EXPECT_TRUE(p->mul_cofactor().is_identity()) << enc;
    // And re-compression round-trips the canonical encoding.
    EXPECT_EQ(to_hex(BytesView(p->compress().data(), 32)), enc);
  }
}

TEST(Ed25519AdversarialTest, NegativeZeroEncodingRejected) {
  // y = 1, x-sign bit set would name (-0, 1): invalid.
  Bytes b = from_hex("0100000000000000000000000000000000000000000000000000000000000080");
  EXPECT_FALSE(Point::decompress(b.data()).has_value());
  // Same for y = -1 (x = 0, order-2 point) with the sign bit set.
  Bytes c = from_hex("ecffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  EXPECT_FALSE(Point::decompress(c.data()).has_value());
}

TEST(Ed25519AdversarialTest, NonCanonicalFieldEncodingsDecompressReduced) {
  // y = p encodes the same point as y = 0 (RFC 7748 from_bytes convention:
  // values >= p are accepted and reduced). Locked as *accepted* here.
  Bytes yp = from_hex("edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
  auto p0 = Point::decompress(yp.data());
  ASSERT_TRUE(p0.has_value());
  Bytes y0 = from_hex("0000000000000000000000000000000000000000000000000000000000000000");
  auto q0 = Point::decompress(y0.data());
  ASSERT_TRUE(q0.has_value());
  EXPECT_EQ(*p0, *q0);

  // y = p + 1 ≡ 1: the identity under a non-canonical encoding.
  Bytes yp1 = from_hex("eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
  auto p1 = Point::decompress(yp1.data());
  ASSERT_TRUE(p1.has_value());
  EXPECT_TRUE(p1->is_identity());
}

TEST(Ed25519AdversarialTest, SmallOrderPublicKeyForgeryAccepted) {
  // With a small-order A, k*A is annihilated by the cofactored check, so
  // (R = S*B, S) "verifies" for any message. The cofactored equation accepts
  // this by design (consensus only ever uses honestly generated keys; this
  // test documents and pins the semantics rather than endorsing them).
  Xoshiro256 rng(101);
  Bytes m = str_bytes("forged-under-torsion-key");
  for (const char* enc : kSmallOrderEncodings) {
    Bytes a_enc = from_hex(enc);
    Sc25519 s = random_scalar(rng);
    auto r_enc = Point::mul_base(s).compress();
    auto sig = make_sig(BytesView(r_enc.data(), 32), s);
    EXPECT_TRUE(ed25519_verify(a_enc.data(), m, sig.data())) << enc;
  }
}

TEST(Ed25519AdversarialTest, SmallOrderRForgeryAccepted) {
  // Small-order R: 8R = identity, so S = k (mod l) satisfies 8SB == 8kA for
  // A = B. Accepted by the cofactored check.
  Bytes m = str_bytes("forged-small-order-R");
  auto a_enc = Point::base().compress();
  for (const char* enc : kSmallOrderEncodings) {
    Bytes r_enc = from_hex(enc);
    Sc25519 k = challenge_scalar(BytesView(r_enc), BytesView(a_enc.data(), 32), m);
    auto sig = make_sig(BytesView(r_enc), k);
    EXPECT_TRUE(ed25519_verify(a_enc.data(), m, sig.data())) << enc;
  }
}

TEST(Ed25519AdversarialTest, MixedOrderPublicKeyAccepted) {
  // A' = A + T8 (honest key plus an order-8 component). A signature produced
  // with the honest scalar but hashing the A' encoding verifies under the
  // cofactored check: 8kA' == 8kA.
  Xoshiro256 rng(102);
  Bytes seed = rng.bytes(32);
  auto kp = ed25519_keypair(seed.data());
  Sha512Digest h;
  Sc25519 s = secret_scalar(kp, &h);

  auto t8 = Point::decompress(from_hex(kSmallOrderEncodings[4]).data());
  ASSERT_TRUE(t8.has_value());
  auto a = Point::decompress(kp.public_key.data());
  ASSERT_TRUE(a.has_value());
  auto a_mixed_enc = (*a + *t8).compress();

  Bytes m = str_bytes("mixed-order-key-message");
  Sha512 rh;
  rh.update(BytesView(h.data() + 32, 32));
  rh.update(m);
  Sc25519 r = Sc25519::from_bytes_wide(rh.digest().data());
  auto r_enc = Point::mul_base(r).compress();
  Sc25519 k = challenge_scalar(BytesView(r_enc.data(), 32),
                               BytesView(a_mixed_enc.data(), 32), m);
  auto sig = make_sig(BytesView(r_enc.data(), 32), r + k * s);
  EXPECT_TRUE(ed25519_verify(a_mixed_enc.data(), m, sig.data()));
  // But the same signature does not verify under the torsion-free key: the
  // challenge hash binds the encoding of A'.
  EXPECT_FALSE(ed25519_verify(kp.public_key.data(), m, sig.data()));
}

TEST(Ed25519AdversarialTest, FlippedSignBitRejected) {
  Xoshiro256 rng(103);
  Bytes seed = rng.bytes(32);
  auto kp = ed25519_keypair(seed.data());
  Bytes m = str_bytes("sign-bit");
  auto sig = ed25519_sign(kp, m);

  auto pk = kp.public_key;
  pk[31] ^= 0x80;  // -A: different point
  EXPECT_FALSE(ed25519_verify(pk.data(), m, sig.data()));

  auto sig2 = sig;
  sig2[31] ^= 0x80;  // -R
  EXPECT_FALSE(ed25519_verify(kp.public_key.data(), m, sig2.data()));
}

TEST(Ed25519AdversarialTest, NonCanonicalSRejectedEverywhere) {
  Xoshiro256 rng(104);
  Bytes seed = rng.bytes(32);
  auto kp = ed25519_keypair(seed.data());
  Bytes m = str_bytes("canonical-S");
  auto sig = ed25519_sign(kp, m);
  // S + l: same residue, non-canonical encoding.
  Bytes l = from_hex("edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  auto bad = sig;
  uint16_t carry = 0;
  for (int i = 0; i < 32; ++i) {
    uint16_t sum = static_cast<uint16_t>(bad[32 + i]) + l[i] + carry;
    bad[32 + i] = static_cast<uint8_t>(sum);
    carry = sum >> 8;
  }
  EXPECT_FALSE(ed25519_verify(kp.public_key.data(), m, bad.data()));

  // The batch path must reject it too (and reject the whole batch).
  std::vector<Ed25519BatchItem> items;
  items.push_back({BytesView(kp.public_key.data(), 32), BytesView(m),
                   BytesView(bad.data(), 64)});
  items.push_back({BytesView(kp.public_key.data(), 32), BytesView(m),
                   BytesView(sig.data(), 64)});
  EXPECT_FALSE(ed25519_verify_batch(items));
}

TEST(Ed25519AdversarialTest, BatchMatchesSingleOnSmallOrderInputs) {
  // Cofactored batch verification accepts the same torsion forgeries the
  // single-signature path accepts; batch and single must agree.
  Xoshiro256 rng(105);
  Bytes m = str_bytes("batch-torsion");
  Bytes a_enc = from_hex(kSmallOrderEncodings[5]);
  Sc25519 s = random_scalar(rng);
  auto r_enc = Point::mul_base(s).compress();
  auto forged = make_sig(BytesView(r_enc.data(), 32), s);
  ASSERT_TRUE(ed25519_verify(a_enc.data(), m, forged.data()));

  Bytes seed = rng.bytes(32);
  auto kp = ed25519_keypair(seed.data());
  Bytes m2 = str_bytes("honest");
  auto honest = ed25519_sign(kp, m2);

  std::vector<Ed25519BatchItem> items;
  items.push_back({BytesView(a_enc), BytesView(m), BytesView(forged.data(), 64)});
  items.push_back({BytesView(kp.public_key.data(), 32), BytesView(m2),
                   BytesView(honest.data(), 64)});
  EXPECT_TRUE(ed25519_verify_batch(items));
}

TEST(Ed25519AdversarialTest, TamperedBatchIdentifiesNoFalseAccept) {
  // A batch with one bit-flipped signature must fail as a whole.
  Xoshiro256 rng(106);
  Bytes m = str_bytes("batch-bitflip");
  std::vector<Ed25519KeyPair> kps;
  std::vector<std::array<uint8_t, 64>> sigs;
  for (int i = 0; i < 8; ++i) {
    Bytes seed = rng.bytes(32);
    kps.push_back(ed25519_keypair(seed.data()));
    sigs.push_back(ed25519_sign(kps.back(), m));
  }
  sigs[3][7] ^= 0x10;
  std::vector<Ed25519BatchItem> items;
  for (int i = 0; i < 8; ++i)
    items.push_back({BytesView(kps[i].public_key.data(), 32), BytesView(m),
                     BytesView(sigs[i].data(), 64)});
  EXPECT_FALSE(ed25519_verify_batch(items));
}

}  // namespace
}  // namespace icc::crypto
