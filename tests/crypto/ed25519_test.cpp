#include "crypto/ed25519.hpp"

#include <gtest/gtest.h>

#include "crypto/shamir.hpp"
#include "support/rng.hpp"

namespace icc::crypto {
namespace {

struct Rfc8032Vector {
  const char* seed;
  const char* public_key;
  const char* message;
  const char* signature;
};

// RFC 8032 Section 7.1, TEST 1-3.
const Rfc8032Vector kVectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a", "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c", "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025", "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

class Rfc8032Test : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Rfc8032Test, KeyDerivation) {
  const auto& v = GetParam();
  Bytes seed = from_hex(v.seed);
  auto kp = ed25519_keypair(seed.data());
  EXPECT_EQ(to_hex(BytesView(kp.public_key.data(), 32)), v.public_key);
}

TEST_P(Rfc8032Test, Signature) {
  const auto& v = GetParam();
  Bytes seed = from_hex(v.seed);
  auto kp = ed25519_keypair(seed.data());
  Bytes msg = from_hex(v.message);
  auto sig = ed25519_sign(kp, msg);
  EXPECT_EQ(to_hex(BytesView(sig.data(), 64)), v.signature);
}

TEST_P(Rfc8032Test, Verification) {
  const auto& v = GetParam();
  Bytes pk = from_hex(v.public_key);
  Bytes msg = from_hex(v.message);
  Bytes sig = from_hex(v.signature);
  EXPECT_TRUE(ed25519_verify(pk.data(), msg, sig.data()));
}

TEST_P(Rfc8032Test, TamperedSignatureRejected) {
  const auto& v = GetParam();
  Bytes pk = from_hex(v.public_key);
  Bytes msg = from_hex(v.message);
  Bytes sig = from_hex(v.signature);
  sig[0] ^= 1;
  EXPECT_FALSE(ed25519_verify(pk.data(), msg, sig.data()));
}

TEST_P(Rfc8032Test, TamperedMessageRejected) {
  const auto& v = GetParam();
  Bytes pk = from_hex(v.public_key);
  Bytes msg = from_hex(v.message);
  msg.push_back(0x42);
  Bytes sig = from_hex(v.signature);
  EXPECT_FALSE(ed25519_verify(pk.data(), msg, sig.data()));
}

INSTANTIATE_TEST_SUITE_P(Rfc8032, Rfc8032Test, ::testing::ValuesIn(kVectors));

TEST(PointTest, IdentityIsNeutral) {
  Point id;
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(Point::base() + id, Point::base());
}

TEST(PointTest, DoubleMatchesAdd) {
  Point b = Point::base();
  EXPECT_EQ(b.dbl(), b + b);
  EXPECT_EQ(b.dbl().dbl(), b + b + b + b);
}

TEST(PointTest, AdditionCommutes) {
  Point b = Point::base();
  Point p = b.dbl();
  EXPECT_EQ(b + p, p + b);
}

TEST(PointTest, NegateCancels) {
  Point b = Point::base();
  EXPECT_TRUE((b - b).is_identity());
  EXPECT_TRUE((b + b.negate()).is_identity());
}

TEST(PointTest, MulBaseMatchesGenericMul) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10; ++i) {
    Sc25519 k = random_scalar(rng);
    EXPECT_EQ(Point::mul_base(k), Point::base().mul(k));
  }
}

TEST(PointTest, MulDistributesOverScalarAdd) {
  Xoshiro256 rng(8);
  Sc25519 a = random_scalar(rng), b = random_scalar(rng);
  EXPECT_EQ(Point::mul_base(a + b), Point::mul_base(a) + Point::mul_base(b));
}

TEST(PointTest, CompressDecompressRoundTrip) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10; ++i) {
    Point p = Point::mul_base(random_scalar(rng));
    auto enc = p.compress();
    auto q = Point::decompress(enc.data());
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, p);
  }
}

TEST(PointTest, DecompressRejectsNonCurvePoints) {
  int rejected = 0;
  Xoshiro256 rng(10);
  for (int i = 0; i < 64; ++i) {
    Bytes b = rng.bytes(32);
    if (!Point::decompress(b.data())) ++rejected;
  }
  // Roughly half of all y values are not on the curve.
  EXPECT_GT(rejected, 10);
}

TEST(PointTest, BasePointEncoding) {
  auto enc = Point::base().compress();
  EXPECT_EQ(to_hex(BytesView(enc.data(), 32)),
            "5866666666666666666666666666666666666666666666666666666666666666");
}

TEST(PointTest, MulByZeroIsIdentity) {
  EXPECT_TRUE(Point::base().mul(Sc25519::zero()).is_identity());
  EXPECT_TRUE(Point::mul_base(Sc25519::zero()).is_identity());
}

TEST(HashToPointTest, DeterministicAndInSubgroup) {
  Bytes m = str_bytes("round-42");
  Point p1 = hash_to_point("domain", m);
  Point p2 = hash_to_point("domain", m);
  EXPECT_EQ(p1, p2);
  EXPECT_FALSE(p1.is_identity());
}

TEST(HashToPointTest, DomainSeparation) {
  Bytes m = str_bytes("message");
  EXPECT_FALSE(hash_to_point("a", m) == hash_to_point("b", m));
}

TEST(HashToPointTest, MessageSeparation) {
  EXPECT_FALSE(hash_to_point("d", str_bytes("x")) == hash_to_point("d", str_bytes("y")));
}

TEST(Ed25519Test, WrongKeyRejected) {
  Xoshiro256 rng(11);
  Bytes s1 = rng.bytes(32), s2 = rng.bytes(32);
  auto kp1 = ed25519_keypair(s1.data());
  auto kp2 = ed25519_keypair(s2.data());
  Bytes msg = str_bytes("hello");
  auto sig = ed25519_sign(kp1, msg);
  EXPECT_TRUE(ed25519_verify(kp1.public_key.data(), msg, sig.data()));
  EXPECT_FALSE(ed25519_verify(kp2.public_key.data(), msg, sig.data()));
}

TEST(Ed25519Test, NonCanonicalScalarRejected) {
  Xoshiro256 rng(12);
  Bytes s = rng.bytes(32);
  auto kp = ed25519_keypair(s.data());
  Bytes msg = str_bytes("m");
  auto sig = ed25519_sign(kp, msg);
  // Add l to S — same value mod l, non-canonical encoding; must be rejected.
  Bytes l = from_hex("edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  uint16_t carry = 0;
  for (int i = 0; i < 32; ++i) {
    uint16_t sum = static_cast<uint16_t>(sig[32 + i]) + l[i] + carry;
    sig[32 + i] = static_cast<uint8_t>(sum);
    carry = sum >> 8;
  }
  EXPECT_FALSE(ed25519_verify(kp.public_key.data(), msg, sig.data()));
}

}  // namespace
}  // namespace icc::crypto
