#include "crypto/fe25519.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace icc::crypto {
namespace {

Fe25519 random_fe(Xoshiro256& rng) {
  Bytes b = rng.bytes(32);
  return Fe25519::from_bytes(b.data());
}

TEST(Fe25519Test, ZeroAndOne) {
  EXPECT_TRUE(Fe25519::zero().is_zero());
  EXPECT_FALSE(Fe25519::one().is_zero());
  EXPECT_EQ(Fe25519::one() * Fe25519::one(), Fe25519::one());
}

TEST(Fe25519Test, AddSubInverse) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    Fe25519 a = random_fe(rng), b = random_fe(rng);
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a - a, Fe25519::zero());
  }
}

TEST(Fe25519Test, MulCommutativeAssociativeDistributive) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 30; ++i) {
    Fe25519 a = random_fe(rng), b = random_fe(rng), c = random_fe(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(Fe25519Test, SquareMatchesMul) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 30; ++i) {
    Fe25519 a = random_fe(rng);
    EXPECT_EQ(a.square(), a * a);
  }
}

TEST(Fe25519Test, InvertIsInverse) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 20; ++i) {
    Fe25519 a = random_fe(rng);
    if (a.is_zero()) continue;
    EXPECT_EQ(a * a.invert(), Fe25519::one());
  }
}

TEST(Fe25519Test, InvertZeroIsZero) {
  EXPECT_TRUE(Fe25519::zero().invert().is_zero());
}

TEST(Fe25519Test, SqrtM1SquaresToMinusOne) {
  Fe25519 i = Fe25519::sqrt_m1();
  EXPECT_EQ(i.square(), Fe25519::one().negate());
}

TEST(Fe25519Test, BytesRoundTrip) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) {
    Bytes b = rng.bytes(32);
    b[31] &= 0x7f;  // clear the bit dropped by from_bytes
    // Skip non-canonical values >= p (top 255 bits all close to p).
    Fe25519 a = Fe25519::from_bytes(b.data());
    Bytes out = a.to_bytes();
    Fe25519 again = Fe25519::from_bytes(out.data());
    EXPECT_EQ(a, again);
  }
}

TEST(Fe25519Test, CanonicalReductionOfP) {
  // p itself must serialize as zero.
  Bytes p = from_hex("edffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
  Fe25519 a = Fe25519::from_bytes(p.data());
  EXPECT_TRUE(a.is_zero());
  // p + 1 must serialize as one.
  Bytes p1 = from_hex("eeffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff7f");
  EXPECT_EQ(Fe25519::from_bytes(p1.data()), Fe25519::one());
}

TEST(Fe25519Test, NegateIsAdditiveInverse) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 30; ++i) {
    Fe25519 a = random_fe(rng);
    EXPECT_TRUE((a + a.negate()).is_zero());
  }
}

TEST(Fe25519Test, EdwardsDConstant) {
  // d = -121665/121666: check 121666 * d == -121665.
  Fe25519 d = Fe25519::edwards_d();
  EXPECT_EQ(Fe25519::from_u64(121666) * d, Fe25519::from_u64(121665).negate());
  EXPECT_EQ(Fe25519::edwards_2d(), d + d);
}

TEST(Fe25519Test, IsNegativeMatchesLsb) {
  EXPECT_FALSE(Fe25519::zero().is_negative());
  EXPECT_TRUE(Fe25519::one().is_negative());
  EXPECT_FALSE(Fe25519::from_u64(2).is_negative());
}

TEST(Fe25519Test, FromU64LargeValue) {
  // 2^52 + 3 spans two limbs.
  Fe25519 a = Fe25519::from_u64((1ULL << 52) + 3);
  Fe25519 b = Fe25519::from_u64(1ULL << 52) + Fe25519::from_u64(3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace icc::crypto
